// Unit + property tests for the paper's calibration model (Eqs (1)-(4)).
#include <gtest/gtest.h>

#include "model/calibration.hpp"
#include "util/rng.hpp"
#include "workflow/swarp.hpp"

namespace bbsim::model {
namespace {

TEST(Amdahl, SerialAndParallelLimits) {
  EXPECT_DOUBLE_EQ(amdahl_time(100.0, 1, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(amdahl_time(100.0, 4, 0.0), 25.0);   // perfect speedup
  EXPECT_DOUBLE_EQ(amdahl_time(100.0, 4, 1.0), 100.0);  // fully serial
  EXPECT_DOUBLE_EQ(amdahl_time(100.0, 2, 0.5), 75.0);
}

TEST(Amdahl, SpeedupBounds) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(8, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(8, 1.0), 1.0);
  // Asymptote: speedup <= 1/alpha.
  EXPECT_LT(amdahl_speedup(1000000, 0.1), 10.0 + 1e-6);
  EXPECT_NEAR(amdahl_speedup(1000000, 0.1), 10.0, 1e-3);
}

TEST(Amdahl, InputValidation) {
  EXPECT_THROW(amdahl_time(1.0, 0, 0.0), util::InvariantError);
  EXPECT_THROW(amdahl_time(1.0, 1, -0.1), util::InvariantError);
  EXPECT_THROW(amdahl_time(1.0, 1, 1.1), util::InvariantError);
  EXPECT_THROW(amdahl_time(-1.0, 1, 0.0), util::InvariantError);
}

TEST(Calibration, Eq1ComputeFraction) {
  // T_c(p) = (1 - lambda) T(p).
  EXPECT_DOUBLE_EQ(compute_time_from_observed(100.0, 0.203), 79.7);
  EXPECT_DOUBLE_EQ(compute_time_from_observed(100.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(compute_time_from_observed(100.0, 1.0), 0.0);
  EXPECT_THROW(compute_time_from_observed(100.0, 1.5), util::InvariantError);
}

TEST(Calibration, Eq4PerfectSpeedup) {
  // T_c(1) = p (1 - lambda) T(p): paper's Resample example shape.
  EXPECT_DOUBLE_EQ(sequential_compute_time_perfect(35.0, 0.203, 32),
                   32.0 * (1.0 - 0.203) * 35.0);
}

TEST(Calibration, Eq3ReducesToEq4WhenAlphaZero) {
  for (const int p : {1, 2, 8, 32}) {
    EXPECT_DOUBLE_EQ(sequential_compute_time(50.0, 0.26, p, 0.0),
                     sequential_compute_time_perfect(50.0, 0.26, p));
  }
}

TEST(Calibration, Eq3WithAlphaIsSmallerThanEq4) {
  // A serial fraction means less sequential work explains the same T(p).
  EXPECT_LT(sequential_compute_time(50.0, 0.2, 32, 0.3),
            sequential_compute_time_perfect(50.0, 0.2, 32));
}

TEST(Calibration, RoundTripThroughAmdahl) {
  // Pick a ground truth, generate the observation, recover the truth.
  const double t_c1 = 480.0;
  const double alpha = 0.12;
  const int p = 16;
  const double lambda = 0.3;
  const double t_c_p = amdahl_time(t_c1, p, alpha);
  const double observed = t_c_p / (1.0 - lambda);  // io fraction lambda
  EXPECT_NEAR(sequential_compute_time(observed, lambda, p, alpha), t_c1, 1e-9);
}

class CalibrationProperty : public ::testing::TestWithParam<int> {};

TEST_P(CalibrationProperty, RecoveryIsExactForRandomProfiles) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const double t_c1 = rng.uniform(1.0, 1000.0);
  const double alpha = rng.uniform(0.0, 1.0);
  const int p = static_cast<int>(rng.uniform_int(1, 64));
  const double lambda = rng.uniform(0.0, 0.9);
  const double observed = amdahl_time(t_c1, p, alpha) / (1.0 - lambda);
  EXPECT_NEAR(sequential_compute_time(observed, lambda, p, alpha) / t_c1, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationProperty, ::testing::Range(0, 30));

TEST(Calibration, WorkflowCalibrationRewritesFlops) {
  wf::Workflow w = wf::make_swarp({});
  std::map<std::string, TaskObservation> obs;
  obs["resample"] = {35.0, 32, kPaperLambdaResample, 0.0};
  obs["combine"] = {50.0, 32, kPaperLambdaCombine, 0.0};
  const std::size_t n = calibrate_workflow(w, obs, 36.80e9);
  EXPECT_EQ(n, 2u);  // one resample + one combine (single pipeline)
  EXPECT_DOUBLE_EQ(w.task("resample_000").flops,
                   32.0 * (1.0 - kPaperLambdaResample) * 35.0 * 36.80e9);
  EXPECT_DOUBLE_EQ(w.task("combine_000").flops,
                   32.0 * (1.0 - kPaperLambdaCombine) * 50.0 * 36.80e9);
  // Stage-in untouched.
  EXPECT_DOUBLE_EQ(w.task("stage_in").flops, 0.0);
}

TEST(Calibration, PaperConstantsExposed) {
  EXPECT_DOUBLE_EQ(kPaperLambdaResample, 0.203);
  EXPECT_DOUBLE_EQ(kPaperLambdaCombine, 0.260);
}

}  // namespace
}  // namespace bbsim::model

// ------------------------------------------------------------- fitting

#include "model/fitting.hpp"
#include "workflow/random_dag.hpp"

namespace bbsim::model {
namespace {

TEST(FitAmdahl, RecoversExactParameters) {
  const double t1 = 120.0;
  const double alpha = 0.15;
  std::vector<ScalingSample> samples;
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    samples.push_back({p, amdahl_time(t1, p, alpha)});
  }
  const AmdahlFit fit = fit_amdahl(samples);
  EXPECT_NEAR(fit.t1, t1, 1e-6);
  EXPECT_NEAR(fit.alpha, alpha, 1e-9);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(FitAmdahl, PerfectSpeedupGivesAlphaZero) {
  std::vector<ScalingSample> samples;
  for (const int p : {1, 2, 4, 8}) samples.push_back({p, 100.0 / p});
  const AmdahlFit fit = fit_amdahl(samples);
  EXPECT_NEAR(fit.alpha, 0.0, 1e-9);
  EXPECT_NEAR(fit.t1, 100.0, 1e-6);
}

TEST(FitAmdahl, FullySerialGivesAlphaOne) {
  std::vector<ScalingSample> samples;
  for (const int p : {1, 4, 16}) samples.push_back({p, 50.0});
  const AmdahlFit fit = fit_amdahl(samples);
  EXPECT_NEAR(fit.alpha, 1.0, 1e-6);
}

TEST(FitAmdahl, RobustToNoise) {
  util::Rng rng(3);
  const double t1 = 200.0;
  const double alpha = 0.3;
  std::vector<ScalingSample> samples;
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    for (int rep = 0; rep < 5; ++rep) {
      samples.push_back({p, amdahl_time(t1, p, alpha) *
                                rng.truncated_normal(1.0, 0.02, 0.9, 1.1)});
    }
  }
  const AmdahlFit fit = fit_amdahl(samples);
  EXPECT_NEAR(fit.alpha, alpha, 0.05);
  EXPECT_NEAR(fit.t1 / t1, 1.0, 0.05);
  EXPECT_GT(fit.rmse, 0.0);
}

TEST(FitAmdahl, RejectsDegenerateInput) {
  EXPECT_THROW(fit_amdahl({}), util::InvariantError);
  EXPECT_THROW(fit_amdahl({{4, 10.0}}), util::InvariantError);
  EXPECT_THROW(fit_amdahl({{4, 10.0}, {4, 11.0}}), util::InvariantError);  // same p
  EXPECT_THROW(fit_amdahl({{0, 10.0}, {2, 5.0}}), util::InvariantError);
  EXPECT_THROW(fit_amdahl({{1, -1.0}, {2, 5.0}}), util::InvariantError);
}

TEST(FitBandwidth, RecoversLatencyAndBandwidth) {
  const double L = 0.05;
  const double B = 800e6;
  std::vector<TransferSample> samples;
  for (const double s : {1e6, 8e6, 64e6, 256e6}) samples.push_back({s, L + s / B});
  const BandwidthFit fit = fit_bandwidth(samples);
  EXPECT_NEAR(fit.latency, L, 1e-9);
  EXPECT_NEAR(fit.bandwidth / B, 1.0, 1e-9);
}

TEST(FitBandwidth, ZeroLatencyClamped) {
  std::vector<TransferSample> samples{{1e6, 0.01}, {2e6, 0.02}, {4e6, 0.04}};
  const BandwidthFit fit = fit_bandwidth(samples);
  EXPECT_NEAR(fit.latency, 0.0, 1e-9);
  EXPECT_NEAR(fit.bandwidth, 1e8, 10.0);
}

TEST(FitBandwidth, RejectsLatencyDominatedData) {
  // Times that shrink with size have no physical bandwidth.
  EXPECT_THROW(fit_bandwidth({{1e6, 2.0}, {2e6, 1.0}}), util::InvariantError);
  EXPECT_THROW(fit_bandwidth({{1e6, 1.0}}), util::InvariantError);
  EXPECT_THROW(fit_bandwidth({{-1.0, 1.0}, {2e6, 1.0}}), util::InvariantError);
}

TEST(FitPipeline, TestbedScalingDataFitsCloseToGroundTruth) {
  // End-to-end: generate noiseless strong-scaling observations with the
  // engine and recover the SWarp resample profile.
  std::vector<ScalingSample> samples;
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    wf::SwarpConfig scfg;
    scfg.cores_per_task = p;
    const wf::Workflow w = wf::make_swarp(scfg);
    // Compute-only observation: use amdahl directly on the profile.
    const wf::Task& t = w.task("resample_000");
    samples.push_back({p, amdahl_time(t.flops / 36.80e9, p, t.alpha)});
  }
  const AmdahlFit fit = fit_amdahl(samples);
  EXPECT_NEAR(fit.alpha, 0.08, 1e-6);
  EXPECT_NEAR(fit.t1, 48.0, 1e-6);
}

}  // namespace
}  // namespace bbsim::model
