// Unit tests for platform specs, presets, JSON round-trip, and the fabric.
#include <gtest/gtest.h>

#include "platform/fabric.hpp"
#include "platform/platform_json.hpp"
#include "platform/presets.hpp"
#include "util/error.hpp"

namespace bbsim::platform {
namespace {

TEST(Presets, CoriMatchesTableOne) {
  const PlatformSpec p = cori_platform();
  EXPECT_EQ(p.name, "cori");
  ASSERT_EQ(p.hosts.size(), 1u);
  EXPECT_EQ(p.hosts[0].cores, 32);
  EXPECT_DOUBLE_EQ(p.hosts[0].core_speed, 36.80e9);
  const StorageSpec& pfs = p.storage[p.find_kind(StorageKind::PFS)];
  EXPECT_DOUBLE_EQ(pfs.disk.read_bw, 100e6);
  EXPECT_DOUBLE_EQ(pfs.link.bandwidth, 1.0e9);
  const StorageSpec& bb = p.storage[p.find_kind(StorageKind::SharedBB)];
  EXPECT_DOUBLE_EQ(bb.disk.read_bw, 950e6);
  EXPECT_DOUBLE_EQ(bb.link.bandwidth, 800e6);
  EXPECT_EQ(bb.mode, BBMode::Private);
}

TEST(Presets, SummitMatchesTableOne) {
  const PlatformSpec p = summit_platform();
  EXPECT_EQ(p.hosts[0].cores, 42);
  EXPECT_DOUBLE_EQ(p.hosts[0].core_speed, 49.12e9);
  const StorageSpec& bb = p.storage[p.find_kind(StorageKind::NodeLocalBB)];
  EXPECT_DOUBLE_EQ(bb.disk.read_bw, 3.3e9);
  EXPECT_DOUBLE_EQ(bb.link.bandwidth, 6.5e9);
  const StorageSpec& pfs = p.storage[p.find_kind(StorageKind::PFS)];
  EXPECT_DOUBLE_EQ(pfs.link.bandwidth, 2.1e9);
}

TEST(Presets, MultiNodeExpansion) {
  PresetOptions opt;
  opt.compute_nodes = 4;
  const PlatformSpec p = summit_platform(opt);
  EXPECT_EQ(p.hosts.size(), 4u);
  // Node-local BB: one device per host.
  const StorageSpec& bb = p.storage[p.find_kind(StorageKind::NodeLocalBB)];
  EXPECT_EQ(bb.num_nodes, 4);
  EXPECT_EQ(p.total_cores(), 4 * 42);
}

TEST(Presets, StripedModeOption) {
  PresetOptions opt;
  opt.bb_mode = BBMode::Striped;
  opt.bb_nodes = 4;
  const PlatformSpec p = cori_platform(opt);
  const StorageSpec& bb = p.storage[p.find_kind(StorageKind::SharedBB)];
  EXPECT_EQ(bb.mode, BBMode::Striped);
  EXPECT_EQ(bb.num_nodes, 4);
}

TEST(Spec, LookupsAndErrors) {
  const PlatformSpec p = cori_platform();
  EXPECT_EQ(p.host_index("cn000"), 0u);
  EXPECT_THROW(p.host_index("missing"), util::NotFoundError);
  EXPECT_EQ(p.storage_index("bb"), 1u);
  EXPECT_THROW(p.storage_index("missing"), util::NotFoundError);
  EXPECT_EQ(p.find_kind(StorageKind::NodeLocalBB), PlatformSpec::npos);
}

TEST(Spec, ValidationCatchesBadConfigs) {
  PlatformSpec p;
  p.name = "bad";
  EXPECT_THROW(p.validate_and_normalize(), util::ConfigError);  // no hosts

  p.hosts.push_back(HostSpec{"h", 0, 1e9, kUnlimited});
  EXPECT_THROW(p.validate_and_normalize(), util::ConfigError);  // zero cores

  p.hosts[0].cores = 4;
  p.hosts.push_back(HostSpec{"h", 2, 1e9, kUnlimited});
  EXPECT_THROW(p.validate_and_normalize(), util::ConfigError);  // dup name

  p.hosts.pop_back();
  StorageSpec s;
  s.name = "s";
  s.disk.read_bw = -1;
  p.storage.push_back(s);
  EXPECT_THROW(p.validate_and_normalize(), util::ConfigError);  // bad disk
}

TEST(Spec, NodeLocalNormalisedToHostCount) {
  PlatformSpec p;
  p.name = "x";
  p.hosts = {HostSpec{"a", 2, 1e9, kUnlimited}, HostSpec{"b", 2, 1e9, kUnlimited}};
  StorageSpec s;
  s.name = "bb";
  s.kind = StorageKind::NodeLocalBB;
  s.num_nodes = 1;  // wrong on purpose
  p.storage.push_back(s);
  p.validate_and_normalize();
  EXPECT_EQ(p.storage[0].num_nodes, 2);
}

TEST(Json, RoundTripPreservesSpec) {
  PresetOptions opt;
  opt.compute_nodes = 2;
  opt.bb_mode = BBMode::Striped;
  opt.bb_nodes = 3;
  const PlatformSpec original = cori_platform(opt);
  const PlatformSpec parsed = from_json(to_json(original));
  EXPECT_EQ(parsed.name, original.name);
  ASSERT_EQ(parsed.hosts.size(), original.hosts.size());
  EXPECT_DOUBLE_EQ(parsed.hosts[0].core_speed, original.hosts[0].core_speed);
  ASSERT_EQ(parsed.storage.size(), original.storage.size());
  for (std::size_t i = 0; i < parsed.storage.size(); ++i) {
    EXPECT_EQ(parsed.storage[i].kind, original.storage[i].kind);
    EXPECT_EQ(parsed.storage[i].num_nodes, original.storage[i].num_nodes);
    EXPECT_DOUBLE_EQ(parsed.storage[i].disk.read_bw, original.storage[i].disk.read_bw);
    EXPECT_DOUBLE_EQ(parsed.storage[i].link.latency, original.storage[i].link.latency);
  }
  const StorageSpec& bb = parsed.storage[parsed.find_kind(StorageKind::SharedBB)];
  EXPECT_EQ(bb.mode, BBMode::Striped);
}

TEST(Json, ParsesUnitStringsAndCounts) {
  const auto doc = json::parse(R"({
    "name": "mini",
    "hosts": [{"name": "cn", "count": 3, "cores": 8,
               "core_speed": "36.8 Gf", "nic_bw": "10 GB/s"}],
    "storage": [
      {"name": "pfs", "kind": "pfs",
       "disk": {"read_bw": "100 MB/s", "write_bw": "100 MB/s"},
       "link": {"bandwidth": "1 GB/s", "latency_ms": 0.5}},
      {"name": "bb", "kind": "shared_bb", "mode": "striped", "num_nodes": 2,
       "disk": {"read_bw": "950 MB/s", "write_bw": "950 MB/s",
                "capacity": "6.4 TB"},
       "link": {"bandwidth": "800 MB/s", "latency_ms": 0.25}}
    ]})");
  const PlatformSpec p = from_json(doc);
  ASSERT_EQ(p.hosts.size(), 3u);
  EXPECT_EQ(p.hosts[1].name, "cn001");
  EXPECT_DOUBLE_EQ(p.hosts[0].core_speed, 36.8e9);
  EXPECT_DOUBLE_EQ(p.hosts[0].nic_bw, 10e9);
  const StorageSpec& bb = p.storage[1];
  EXPECT_DOUBLE_EQ(bb.disk.capacity, 6.4e12);
  EXPECT_DOUBLE_EQ(bb.link.latency, 0.25e-3);
  EXPECT_EQ(bb.mode, BBMode::Striped);
}

TEST(Json, MissingHostsRejected) {
  EXPECT_THROW(from_json(json::parse(R"({"name": "x"})")), util::ParseError);
}

TEST(Fabric, CreatesAllResources) {
  PresetOptions opt;
  opt.compute_nodes = 2;
  opt.bb_nodes = 3;
  Fabric fabric(cori_platform(opt));
  // Hosts: 2 * (nic_up + nic_down) = 4; storage: pfs (4 + meta) and
  // bb 3 nodes * 4 + meta.
  EXPECT_EQ(fabric.flows().network().resource_count(), 4u + 5u + 13u);
  const StorageResources& bb = fabric.storage_resources(1);
  EXPECT_EQ(bb.disk_read.size(), 3u);
  EXPECT_EQ(bb.link_up.size(), 3u);
  const HostResources& h1 = fabric.host_resources(1);
  EXPECT_NE(h1.nic_up, h1.nic_down);
}

TEST(Fabric, ResourceCapacitiesMatchSpec) {
  Fabric fabric(cori_platform());
  const StorageResources& bb = fabric.storage_resources(1);
  EXPECT_DOUBLE_EQ(fabric.flows().network().resource(bb.disk_read[0]).capacity, 950e6);
  EXPECT_DOUBLE_EQ(fabric.flows().network().resource(bb.link_down[0]).capacity, 800e6);
}

TEST(Fabric, ScaleStorageCapacity) {
  Fabric fabric(cori_platform());
  const StorageResources& bb = fabric.storage_resources(1);
  fabric.scale_storage_capacity(1, 0.5);
  EXPECT_DOUBLE_EQ(fabric.flows().network().resource(bb.disk_read[0]).capacity, 475e6);
  // Back to nominal.
  fabric.scale_storage_capacity(1, 1.0);
  EXPECT_DOUBLE_EQ(fabric.flows().network().resource(bb.disk_read[0]).capacity, 950e6);
  EXPECT_THROW(fabric.scale_storage_capacity(1, 0.0), util::InvariantError);
}

TEST(Fabric, OutOfRangeLookupsThrow) {
  Fabric fabric(cori_platform());
  EXPECT_THROW(fabric.host_resources(5), util::NotFoundError);
  EXPECT_THROW(fabric.storage_resources(5), util::NotFoundError);
}

}  // namespace
}  // namespace bbsim::platform
