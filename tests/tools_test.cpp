// End-to-end tests of the bbsim_run driver (run_cli), plus the Gantt and
// DOT renderers it surfaces.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/runner.hpp"
#include "exec/engine.hpp"
#include "exec/gantt.hpp"
#include "json/json.hpp"
#include "util/error.hpp"
#include "workflow/dot.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RunCli, DefaultRunSucceeds) {
  cli::CliOptions opt;
  opt.quiet = true;
  EXPECT_EQ(cli::run_cli(opt), 0);
}

TEST(RunCli, WritesTraceCsvAndDot) {
  const std::string dir = ::testing::TempDir();
  cli::CliOptions opt;
  opt.quiet = true;
  opt.trace_path = dir + "/bbsim_cli_trace.json";
  opt.csv_path = dir + "/bbsim_cli_tasks.csv";
  opt.dot_path = dir + "/bbsim_cli_wf.dot";
  EXPECT_EQ(cli::run_cli(opt), 0);

  const json::Value trace = json::parse_file(opt.trace_path);
  EXPECT_TRUE(trace.contains("makespan"));
  EXPECT_EQ(trace.at("tasks").as_array().size(), 3u);  // stage_in + 2 tasks

  const std::string csv = slurp(opt.csv_path);
  EXPECT_NE(csv.find("task,type,host"), std::string::npos);
  EXPECT_NE(csv.find("resample_000"), std::string::npos);

  const std::string dot = slurp(opt.dot_path);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("stage_in"), std::string::npos);

  std::remove(opt.trace_path.c_str());
  std::remove(opt.csv_path.c_str());
  std::remove(opt.dot_path.c_str());
}

TEST(RunCli, TimelineOutWritesStablePerfettoJson) {
  const std::string path = ::testing::TempDir() + "/bbsim_cli_timeline.json";
  cli::CliOptions opt;
  opt.quiet = true;
  opt.profile = true;
  opt.timeline_path = path;
  ASSERT_EQ(cli::run_cli(opt), 0);
  const std::string first = slurp(path);
  ASSERT_FALSE(first.empty());

  const json::Value doc = json::parse(first);
  EXPECT_EQ(doc.at("otherData").at("schema").as_string(), "bbsim.timeline.v1");
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());

  // --profile measures wall-clock time but must not leak into the
  // timeline: a repeated run exports byte-identically.
  ASSERT_EQ(cli::run_cli(opt), 0);
  EXPECT_EQ(slurp(path), first);
  std::remove(path.c_str());
}

TEST(RunCli, TestbedRepetitions) {
  cli::CliOptions opt;
  opt.quiet = true;
  opt.testbed_system = testbed::System::Summit;
  opt.repetitions = 2;
  EXPECT_EQ(cli::run_cli(opt), 0);
}

TEST(RunCli, HelpReturnsZero) {
  cli::CliOptions opt;
  opt.help = true;
  EXPECT_EQ(cli::run_cli(opt), 0);
}

TEST(RunCli, AuditFlagsParse) {
  const cli::CliOptions opt =
      cli::parse_cli({"--audit", "--audit-out", "a.json", "--quiet"});
  EXPECT_TRUE(opt.audit);
  EXPECT_EQ(opt.audit_path, "a.json");
  EXPECT_TRUE(cli::parse_cli({"--audit"}).audit);
  EXPECT_FALSE(cli::parse_cli({}).audit);
  // --audit-out without --audit is a config error naming the option.
  try {
    cli::parse_cli({"--audit-out", "a.json"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--audit-out"), std::string::npos);
  }
}

#if defined(BBSIM_AUDIT_ENABLED)
TEST(RunCli, AuditedRunIsCleanAndWritesReport) {
  const std::string path = ::testing::TempDir() + "/bbsim_cli_audit.json";
  cli::CliOptions opt;
  opt.quiet = true;
  opt.pipelines = 2;
  opt.audit_path = path;
  opt.audit = true;
  EXPECT_EQ(cli::run_cli(opt), 0);
  const json::Value report = json::parse(slurp(path));
  EXPECT_EQ(report.at("schema").as_string(), "bbsim.audit.v1");
  EXPECT_TRUE(report.at("clean").as_bool());
  EXPECT_EQ(report.at("total_violations").as_number(), 0.0);
}

TEST(RunCli, AuditedTestbedRepetitionsReturnZero) {
  cli::CliOptions opt;
  opt.quiet = true;
  opt.audit = true;
  opt.testbed_system = testbed::System::Summit;
  opt.repetitions = 2;
  EXPECT_EQ(cli::run_cli(opt), 0);
}

TEST(MainImpl, AuditSmokeRun) {
  const char* argv[] = {"bbsim_run", "--quiet", "--workflow", "genomes",
                        "--chromosomes", "2", "--audit"};
  EXPECT_EQ(cli::main_impl(7, argv), 0);
}
#endif  // BBSIM_AUDIT_ENABLED

TEST(MainImpl, BadFlagReturnsNonZero) {
  const char* argv[] = {"bbsim_run", "--bogus"};
  EXPECT_EQ(cli::main_impl(2, argv), 1);
}

TEST(MainImpl, QuietRunReturnsZero) {
  const char* argv[] = {"bbsim_run", "--quiet", "--pipelines", "2"};
  EXPECT_EQ(cli::main_impl(4, argv), 0);
}

// ----------------------------------------------------------------- gantt

exec::Result run_swarp() {
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(testbed::paper_platform(testbed::System::CoriPrivate),
                       wf::make_swarp({.pipelines = 2}), cfg);
  return sim.run();
}

TEST(Gantt, RendersAllTasks) {
  const exec::Result r = run_swarp();
  const std::string chart = exec::render_gantt(r);
  EXPECT_NE(chart.find("stage_in"), std::string::npos);
  EXPECT_NE(chart.find("resample_000"), std::string::npos);
  EXPECT_NE(chart.find("combine_001"), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  // Compute bars exist.
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(Gantt, TruncatesLargeWorkflows) {
  const exec::Result r = run_swarp();
  exec::GanttOptions opt;
  opt.max_rows = 2;
  const std::string chart = exec::render_gantt(r, opt);
  EXPECT_NE(chart.find("more tasks"), std::string::npos);
}

TEST(Gantt, RespectsWidth) {
  const exec::Result r = run_swarp();
  exec::GanttOptions opt;
  opt.width = 30;
  opt.show_host = false;
  const std::string chart = exec::render_gantt(r, opt);
  // Every bar line is label + " |" + 30 chars + "|".
  std::istringstream lines(chart);
  std::string line;
  std::getline(lines, line);  // time header
  std::getline(lines, line);  // legend
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;
    const auto first = line.find('|');
    const auto last = line.rfind('|');
    EXPECT_EQ(last - first - 1, 30u) << line;
  }
}

// ------------------------------------------------------------------- dot

TEST(Dot, TaskGraphStructure) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 1});
  const std::string dot = wf::to_dot(w);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"stage_in\" -> \"resample_000\""), std::string::npos);
  EXPECT_NE(dot.find("\"resample_000\" -> \"combine_000\""), std::string::npos);
}

TEST(Dot, FileVerticesMode) {
  wf::Workflow w;
  w.add_file({"data.bin", 1e6});
  w.add_task({"p", "producer", 1, 0, 1, {}, {"data.bin"}});
  w.add_task({"c", "consumer", 1, 0, 1, {"data.bin"}, {}});
  wf::DotOptions opt;
  opt.show_files = true;
  const std::string dot = wf::to_dot(w, opt);
  EXPECT_NE(dot.find("\"p\" -> \"file:data.bin\""), std::string::npos);
  EXPECT_NE(dot.find("\"file:data.bin\" -> \"c\""), std::string::npos);
  EXPECT_NE(dot.find("1.00 MB"), std::string::npos);
}

TEST(Dot, ControlDepsDashedInFileMode) {
  wf::Workflow w;
  w.add_task({"a", "t", 1, 0, 1, {}, {}});
  w.add_task({"b", "t", 1, 0, 1, {}, {}});
  w.add_control_dep("a", "b");
  wf::DotOptions opt;
  opt.show_files = true;
  EXPECT_NE(wf::to_dot(w, opt).find("style=dashed"), std::string::npos);
}

TEST(Dot, SaveToDisk) {
  const std::string path = ::testing::TempDir() + "/bbsim_dot_test.dot";
  wf::save_dot(path, wf::make_swarp({}));
  EXPECT_NE(slurp(path).find("digraph"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsim
