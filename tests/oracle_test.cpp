// Differential tests of the reference oracle (src/oracle): the brute-force
// max-min solver against flow::Network::solve, and the straight-line
// replayer against exec::Simulation on preset platforms and real
// workloads. A deliberately perturbed engine must be caught.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "exec/engine.hpp"
#include "flow/network.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "oracle/diff.hpp"
#include "oracle/maxmin_ref.hpp"
#include "oracle/replay.hpp"
#include "platform/presets.hpp"
#include "util/rng.hpp"
#include "workflow/genomes.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------ reference solver

TEST(MaxminRef, EqualShareOnOneResource) {
  oracle::RefProblem p;
  p.capacities = {100.0};
  for (int i = 0; i < 4; ++i) p.flows.push_back({{0}, kInf, 1.0});
  const auto rates = oracle::reference_maxmin(p);
  for (const double r : rates) EXPECT_DOUBLE_EQ(r, 25.0);
}

TEST(MaxminRef, CapFreesBandwidthForOthers) {
  oracle::RefProblem p;
  p.capacities = {100.0};
  p.flows.push_back({{0}, 10.0, 1.0});  // capped
  p.flows.push_back({{0}, kInf, 1.0});
  const auto rates = oracle::reference_maxmin(p);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(MaxminRef, WeightsScaleShares) {
  oracle::RefProblem p;
  p.capacities = {90.0};
  p.flows.push_back({{0}, kInf, 1.0});
  p.flows.push_back({{0}, kInf, 2.0});
  const auto rates = oracle::reference_maxmin(p);
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  EXPECT_DOUBLE_EQ(rates[1], 60.0);
}

TEST(MaxminRef, UnconstrainedFlowIsUnlimited) {
  oracle::RefProblem p;
  p.capacities = {kInf};
  p.flows.push_back({{0}, kInf, 1.0});
  p.flows.push_back({{}, kInf, 1.0});  // empty path
  const auto rates = oracle::reference_maxmin(p);
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_TRUE(std::isinf(rates[1]));
}

TEST(MaxminRef, MultiBottleneckChain) {
  // f0 crosses both resources; f1 only r0, f2 only r1. r0 = 100, r1 = 40:
  // level fills r1 first (f0 = f2 = 20), then f1 takes the r0 remainder.
  oracle::RefProblem p;
  p.capacities = {100.0, 40.0};
  p.flows.push_back({{0, 1}, kInf, 1.0});
  p.flows.push_back({{0}, kInf, 1.0});
  p.flows.push_back({{1}, kInf, 1.0});
  const auto rates = oracle::reference_maxmin(p);
  EXPECT_DOUBLE_EQ(rates[0], 20.0);
  EXPECT_DOUBLE_EQ(rates[2], 20.0);
  EXPECT_DOUBLE_EQ(rates[1], 80.0);
}

TEST(MaxminRef, AgreesWithEngineSolverOnRandomProblems) {
  const auto result = fuzz::run_solver_campaign(/*seed=*/2024, /*iterations=*/500);
  EXPECT_EQ(result.iterations_run, 500);
  EXPECT_TRUE(result.clean()) << result.first_divergence;
}

TEST(MaxminRef, CatchesPerturbedEngineSolver) {
  // Scaling one engine-side capacity must produce rate divergences.
  const auto result = fuzz::run_solver_campaign(/*seed=*/2024, /*iterations=*/200,
                                                /*engine_capacity_scale=*/0.7);
  EXPECT_FALSE(result.clean());
}

// ---------------------------------------------------- reference replayer

fuzz::Scenario preset_scenario(platform::PlatformSpec platform, wf::Workflow workflow) {
  fuzz::Scenario sc;
  sc.platform = std::move(platform);
  sc.workflow = std::move(workflow);
  return sc;
}

TEST(ReplayOracle, MatchesEngineOnSwarpCoriPrivate) {
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  auto sc = preset_scenario(platform::cori_platform(popt), wf::make_swarp({}));
  const auto outcome = fuzz::run_scenario(sc);
  EXPECT_TRUE(outcome.engine_error.empty()) << outcome.engine_error;
  EXPECT_FALSE(outcome.diverged)
      << (outcome.divergences.empty() ? "" : outcome.divergences.front().describe());
}

TEST(ReplayOracle, MatchesEngineOnSwarpCoriStriped) {
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  popt.bb_nodes = 2;
  popt.bb_mode = platform::BBMode::Striped;
  auto sc = preset_scenario(platform::cori_platform(popt), wf::make_swarp({}));
  sc.config.stage_out = true;
  const auto outcome = fuzz::run_scenario(sc);
  EXPECT_TRUE(outcome.engine_error.empty()) << outcome.engine_error;
  EXPECT_FALSE(outcome.diverged)
      << (outcome.divergences.empty() ? "" : outcome.divergences.front().describe());
}

TEST(ReplayOracle, MatchesEngineOnGenomesSummit) {
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  wf::GenomesConfig gopt;
  gopt.chromosomes = 2;
  gopt.individuals_per_chromosome = 4;
  gopt.populations = 3;
  auto sc = preset_scenario(platform::summit_platform(popt), wf::make_1000genomes(gopt));
  sc.config.stage_in_mode = exec::StageInMode::Instant;
  const auto outcome = fuzz::run_scenario(sc);
  EXPECT_TRUE(outcome.engine_error.empty()) << outcome.engine_error;
  EXPECT_FALSE(outcome.diverged)
      << (outcome.divergences.empty() ? "" : outcome.divergences.front().describe());
}

TEST(ReplayOracle, MatchesEngineOnRandomShapes) {
  util::Rng root(99);
  for (int i = 0; i < 25; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    const auto outcome = fuzz::run_scenario(sc);
    EXPECT_FALSE(outcome.diverged)
        << "iter " << i << ": "
        << (outcome.divergences.empty() ? "" : outcome.divergences.front().describe());
  }
}

TEST(ReplayOracle, CatchesPerturbedEngine) {
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  auto sc = preset_scenario(platform::cori_platform(popt), wf::make_swarp({}));
  fuzz::RunOptions options;
  options.engine_bb_capacity_scale = 0.5;  // slow the engine's BB only
  const auto outcome = fuzz::run_scenario(sc, options);
  EXPECT_TRUE(outcome.diverged);
}

TEST(ReplayOracle, SchedulerPoliciesAgree) {
  const exec::SchedulerPolicy policies[] = {
      exec::SchedulerPolicy::Fcfs, exec::SchedulerPolicy::CriticalPathFirst,
      exec::SchedulerPolicy::LargestFirst, exec::SchedulerPolicy::SmallestFirst};
  for (const auto policy : policies) {
    platform::PresetOptions popt;
    popt.compute_nodes = 2;
    auto sc = preset_scenario(platform::cori_platform(popt), wf::make_swarp({}));
    sc.config.scheduler = policy;
    const auto outcome = fuzz::run_scenario(sc);
    EXPECT_FALSE(outcome.diverged)
        << exec::to_string(policy) << ": "
        << (outcome.divergences.empty() ? "" : outcome.divergences.front().describe());
  }
}

// ------------------------------------------------------------------ diff

TEST(Diff, ToleranceAndExactFields) {
  oracle::DiffOptions opts;
  EXPECT_TRUE(oracle::values_agree(1.0, 1.0 + 1e-9, opts));
  EXPECT_FALSE(oracle::values_agree(1.0, 1.1, opts));
  EXPECT_TRUE(oracle::values_agree(kInf, kInf, opts));
  EXPECT_FALSE(oracle::values_agree(kInf, 1.0, opts));
  EXPECT_FALSE(oracle::values_agree(std::nan(""), std::nan(""), opts));

  exec::Result engine;
  engine.makespan = 10.0;
  oracle::RefResult reference;
  reference.makespan = 10.0 + 1e-9;
  EXPECT_TRUE(oracle::diff_results(engine, reference).empty());
  reference.demoted_writes = 1;  // counters compare exactly
  EXPECT_EQ(oracle::diff_results(engine, reference).size(), 1u);
}

TEST(Diff, ReportsMissingTasks) {
  exec::Result engine;
  engine.tasks["a"] = exec::TaskRecord{};
  oracle::RefResult reference;
  reference.tasks["b"] = oracle::RefTask{};
  const auto divergences = oracle::diff_results(engine, reference);
  ASSERT_EQ(divergences.size(), 2u);
  EXPECT_EQ(divergences[0].field, "task_missing_in_reference");
  EXPECT_EQ(divergences[1].field, "task_missing_in_engine");
}

}  // namespace
}  // namespace bbsim
