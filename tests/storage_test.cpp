// Unit tests for storage services: routing, modes, latency, capacity,
// transfers, and timing against hand-computed expectations.
#include <gtest/gtest.h>

#include "platform/presets.hpp"
#include "storage/system.hpp"
#include "util/error.hpp"

namespace bbsim::storage {
namespace {

using platform::BBMode;
using platform::Fabric;
using platform::PlatformSpec;
using platform::PresetOptions;
using platform::StorageKind;

/// A tiny deterministic platform where timing is easy to compute by hand:
/// PFS disk 100 B/s, PFS link 1000 B/s, BB disk 950 B/s, BB link 800 B/s,
/// all latencies zero.
PlatformSpec tiny_platform(StorageKind bb_kind, BBMode mode = BBMode::Private,
                           int bb_nodes = 1, int hosts = 1) {
  PlatformSpec p;
  p.name = "tiny";
  for (int i = 0; i < hosts; ++i) {
    p.hosts.push_back({"h" + std::to_string(i), 4, 1e9, platform::kUnlimited});
  }
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = bb_kind;
  bb.mode = mode;
  bb.num_nodes = bb_nodes;
  bb.disk = {950.0, 950.0, 10000.0};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

TEST(PfsServiceTest, ReadTimeIsBottleneckBandwidth) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);
  double done = -1;
  sys.pfs().read({"f", 1000.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 10.0);  // 1000 B / min(100 disk, 1000 link)
}

TEST(PfsServiceTest, WriteRegistersReplicaOnCompletion) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  bool during = true;
  sys.pfs().write({"out", 500.0}, 0, [&] { during = sys.pfs().has_file("out"); });
  EXPECT_FALSE(sys.pfs().has_file("out"));  // not visible until done
  fabric.engine().run();
  EXPECT_TRUE(during);
  EXPECT_DOUBLE_EQ(sys.pfs().used_bytes(), 500.0);
}

TEST(PfsServiceTest, MissingFileReadThrows) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  EXPECT_THROW(sys.pfs().read({"ghost", 1.0}, 0, nullptr), util::NotFoundError);
}

TEST(PfsServiceTest, ConcurrentReadsShareDisk) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"a", 1000.0}, 0);
  sys.pfs().register_file({"b", 1000.0}, 0);
  double ta = -1, tb = -1;
  sys.pfs().read({"a", 1000.0}, 0, [&] { ta = fabric.engine().now(); });
  sys.pfs().read({"b", 1000.0}, 0, [&] { tb = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(ta, 20.0);  // two flows share 100 B/s
  EXPECT_DOUBLE_EQ(tb, 20.0);
}

TEST(SharedBBTest, PrivateModeRestrictsReader) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Private, 1, 2));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  ASSERT_NE(bb, nullptr);
  bb->register_file({"f", 100.0}, /*host=*/0);
  EXPECT_TRUE(bb->readable_from("f", 0));
  EXPECT_FALSE(bb->readable_from("f", 1));
  EXPECT_THROW(bb->read({"f", 100.0}, 1, nullptr), util::InvariantError);
}

TEST(SharedBBTest, StripedModeReadableFromAnyHost) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Striped, 2, 2));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"f", 100.0}, 0);
  EXPECT_TRUE(bb->readable_from("f", 0));
  EXPECT_TRUE(bb->readable_from("f", 1));
  EXPECT_EQ(bb->replica("f")->node, -1);  // striped marker
}

TEST(SharedBBTest, StripedReadTimeUsesAllNodes) {
  // 2 BB nodes, each disk 950 / link 800: a striped 1600-byte file moves as
  // two 800-byte sub-flows in parallel -> 1 second on the links.
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Striped, 2));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"f", 1600.0}, 0);
  double done = -1;
  bb->read({"f", 1600.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 1.0);
}

TEST(SharedBBTest, PrivateModePinsToOneNode) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Private, 2, 2));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"f0", 10.0}, 0);
  bb->register_file({"f1", 10.0}, 1);
  EXPECT_EQ(bb->replica("f0")->node, 0);
  EXPECT_EQ(bb->replica("f1")->node, 1);
}

TEST(SharedBBTest, CapacityEnforced) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));  // 10000 bytes capacity
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"big", 9000.0}, 0);
  EXPECT_THROW(bb->register_file({"more", 2000.0}, 0), util::ConfigError);
  // Overwriting the same file does not double-count.
  bb->register_file({"big", 9500.0}, 0);
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 9500.0);
  bb->erase_file("big");
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 0.0);
}

TEST(NodeLocalBBTest, OnlyHolderHostReads) {
  Fabric fabric(tiny_platform(StorageKind::NodeLocalBB, BBMode::Private, 1, 2));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"f", 100.0}, 1);
  EXPECT_FALSE(bb->readable_from("f", 0));
  EXPECT_TRUE(bb->readable_from("f", 1));
  auto* local = dynamic_cast<NodeLocalBurstBuffer*>(bb);
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->holder_host("f"), 1u);
  EXPECT_EQ(local->holder_host("ghost"), NodeLocalBurstBuffer::npos);
}

TEST(NodeLocalBBTest, LocalReadTimeUsesDeviceOnly) {
  Fabric fabric(tiny_platform(StorageKind::NodeLocalBB));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"f", 1600.0}, 0);
  double done = -1;
  bb->read({"f", 1600.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 2.0);  // 1600 / min(950 disk, 800 iface)
}

TEST(ServiceTest, LatencyDelaysData) {
  PlatformSpec p = tiny_platform(StorageKind::SharedBB);
  p.storage[0].link.latency = 0.5;
  p.storage[0].base_latency = 0.25;
  Fabric fabric(std::move(p));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 100.0}, 0);
  double done = -1;
  sys.pfs().read({"f", 100.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 0.75 + 1.0);  // latency + 100 B at 100 B/s
}

TEST(ServiceTest, StreamCapLimitsSingleFlow) {
  PlatformSpec p = tiny_platform(StorageKind::SharedBB);
  p.storage[0].stream_bw = 10.0;
  Fabric fabric(std::move(p));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 100.0}, 0);
  double done = -1;
  sys.pfs().read({"f", 100.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 10.0);  // capped at 10 B/s despite 100 B/s disk
}

TEST(ServiceTest, MetadataServerSerialisesOps) {
  PlatformSpec p = tiny_platform(StorageKind::SharedBB);
  p.storage[0].metadata_ops_per_sec = 2.0;  // 0.5 s per exclusive op
  Fabric fabric(std::move(p));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 100.0}, 0);
  double done = -1;
  sys.pfs().read({"f", 100.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 0.5 + 1.0);  // metadata op then data
}

TEST(ServiceTest, PerturbationHookAddsLatencyAndScalesCap) {
  PlatformSpec p = tiny_platform(StorageKind::SharedBB);
  p.storage[0].stream_bw = 100.0;
  Fabric fabric(std::move(p));
  StorageSystem sys(fabric);
  sys.pfs().set_perturbation([](const FileRef&, bool, std::size_t) {
    return IoPerturbation{2.0, 0.5};  // +2 s latency, cap halved to 50 B/s
  });
  sys.pfs().register_file({"f", 100.0}, 0);
  double done = -1;
  sys.pfs().read({"f", 100.0}, 0, [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 2.0 + 2.0);  // 2 s latency + 100 B at 50 B/s
}

TEST(SystemTest, BestSourcePrefersReadableBB) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Private, 1, 2));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 10.0}, 0);
  sys.burst_buffer()->register_file({"f", 10.0}, 0);
  EXPECT_EQ(sys.best_source("f", 0), sys.burst_buffer());
  EXPECT_EQ(sys.best_source("f", 1), &sys.pfs());  // private replica hidden
  EXPECT_EQ(sys.best_source("ghost", 0), nullptr);
}

TEST(SystemTest, ReplicasOfListsAllHolders) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 10.0}, 0);
  EXPECT_EQ(sys.replicas_of("f").size(), 1u);
  sys.burst_buffer()->register_file({"f", 10.0}, 0);
  EXPECT_EQ(sys.replicas_of("f").size(), 2u);
}

TEST(SystemTest, TransferCoupledBottleneck) {
  // PFS -> BB copy of 1000 bytes: rate = min(100 pfs disk, ... , 800 bb link)
  // = 100 B/s -> 10 s.
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);
  double done = -1;
  sys.transfer({"f", 1000.0}, sys.pfs(), *sys.burst_buffer(), 0,
               [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(done, 10.0);
  EXPECT_TRUE(sys.burst_buffer()->has_file("f"));
  EXPECT_DOUBLE_EQ(sys.burst_buffer()->used_bytes(), 1000.0);
}

TEST(SystemTest, TransferToStripedSplitsAcrossNodes) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB, BBMode::Striped, 2));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);
  double done = -1;
  sys.transfer({"f", 1000.0}, sys.pfs(), *sys.burst_buffer(), 0,
               [&] { done = fabric.engine().now(); });
  fabric.engine().run();
  // Both stripes share the PFS read path (100 B/s total) -> still 10 s.
  EXPECT_DOUBLE_EQ(done, 10.0);
  EXPECT_EQ(sys.burst_buffer()->replica("f")->node, -1);
}

TEST(SystemTest, ServiceLookupByName) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  EXPECT_EQ(&sys.service("pfs"), &sys.pfs());
  EXPECT_THROW(sys.service("nope"), util::NotFoundError);
  EXPECT_EQ(sys.service_count(), 2u);
}

TEST(SystemTest, WriteReservesCapacityUpFront) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));  // BB capacity 10000
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->write({"a", 6000.0}, 0, nullptr);
  // Second concurrent write would overflow: reservation catches it now.
  EXPECT_THROW(bb->write({"b", 6000.0}, 0, nullptr), util::ConfigError);
  fabric.engine().run();
  EXPECT_TRUE(bb->has_file("a"));
}

// ------------------------------------------------------- cancellable I/O

TEST(CancellableIo, CancelledWriteReleasesReservationAndReplicaNeverAppears) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bool fired = false;
  const IoHandle op = bb->write_cancellable({"out", 6000.0}, 0, [&] { fired = true; });
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 6000.0);  // reserved up front
  fabric.engine().schedule_at(1.0, [&] { op->cancel(); });
  fabric.engine().run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(op->cancelled());
  EXPECT_FALSE(bb->has_file("out"));
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 0.0);  // reservation rolled back
}

TEST(CancellableIo, CancelAfterCompletionIsNoOp) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bool fired = false;
  const IoHandle op = bb->write_cancellable({"out", 800.0}, 0, [&] { fired = true; });
  fabric.engine().run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(op->finished());
  EXPECT_DOUBLE_EQ(op->cancel(), 800.0);  // no-op: reports bytes moved
  EXPECT_TRUE(bb->has_file("out"));       // replica survives
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 800.0);
}

TEST(CancellableIo, CancelDuringLatencyWindowMovesNoBytes) {
  // The PFS read below spends its whole latency window before any byte
  // moves; cancelling inside it must move nothing and fire no callback.
  PlatformSpec p = tiny_platform(StorageKind::SharedBB);
  p.storage[0].base_latency = 5.0;
  Fabric fabric(p);
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);
  bool fired = false;
  const IoHandle op = sys.pfs().read_cancellable({"f", 1000.0}, 0, [&] { fired = true; });
  fabric.engine().schedule_at(1.0, [&] { EXPECT_DOUBLE_EQ(op->cancel(), 0.0); });
  fabric.engine().run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(op->moved(), 0.0);
}

TEST(CancellableIo, CancelledReadSettlesPartialBytes) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);  // reads at 100 B/s
  bool fired = false;
  const IoHandle op = sys.pfs().read_cancellable({"f", 1000.0}, 0, [&] { fired = true; });
  double moved = -1.0;
  fabric.engine().schedule_at(4.0, [&] { moved = op->cancel(); });
  fabric.engine().run();
  EXPECT_FALSE(fired);
  // ~4 s at 100 B/s (the metadata flow finishes effectively instantly on
  // the unlimited metadata resource, so the data flow spans the window).
  EXPECT_NEAR(moved, 400.0, 1.0);
}

TEST(CancellableIo, CancelledTransferRollsBackDestination) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  sys.pfs().register_file({"f", 1000.0}, 0);
  StorageService* bb = sys.burst_buffer();
  bool fired = false;
  const IoHandle op = sys.transfer_cancellable({"f", 1000.0}, sys.pfs(), *bb, 0,
                                               [&] { fired = true; });
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 1000.0);  // destination reservation
  fabric.engine().schedule_at(2.0, [&] { op->cancel(); });
  fabric.engine().run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(bb->has_file("f"));
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 0.0);
  EXPECT_TRUE(sys.pfs().has_file("f"));  // source untouched
}

TEST(CancellableIo, CancelledOverwriteKeepsOldReplica) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  bb->register_file({"out", 300.0}, 0);
  const IoHandle op = bb->write_cancellable({"out", 900.0}, 0, nullptr);
  // Overwrite reservation: delta = 900 - 300.
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 900.0);
  fabric.engine().schedule_at(0.25, [&] { op->cancel(); });
  fabric.engine().run();
  ASSERT_TRUE(bb->has_file("out"));
  EXPECT_DOUBLE_EQ(bb->replica("out")->size, 300.0);  // old replica survives
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 300.0);
}

TEST(CancellableIo, DoubleCancelIsIdempotent) {
  Fabric fabric(tiny_platform(StorageKind::SharedBB));
  StorageSystem sys(fabric);
  StorageService* bb = sys.burst_buffer();
  const IoHandle op = bb->write_cancellable({"out", 6000.0}, 0, nullptr);
  fabric.engine().schedule_at(1.0, [&] {
    const double first = op->cancel();
    EXPECT_DOUBLE_EQ(op->cancel(), first);  // second cancel changes nothing
  });
  fabric.engine().run();
  EXPECT_DOUBLE_EQ(bb->used_bytes(), 0.0);  // reservation released once
}

}  // namespace
}  // namespace bbsim::storage
