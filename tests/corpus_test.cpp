// Replays every checked-in fuzzcase under tests/corpus/ through the
// differential harness: each case must parse as bbsim.fuzzcase.v1, run on
// both the engine and the reference replayer, and diff clean. Fuzz-found
// (then minimized) divergences get checked in here so they stay fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "json/json.hpp"
#include "resil/fault.hpp"

#ifndef BBSIM_CORPUS_DIR
#error "BBSIM_CORPUS_DIR must point at tests/corpus (set by tests/CMakeLists.txt)"
#endif

namespace bbsim {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(BBSIM_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, IsNotEmpty) {
  // An empty corpus means the glob is broken, not that everything passes.
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(Corpus, EveryCaseParsesAsFuzzcaseV1) {
  for (const std::string& path : corpus_files()) {
    const json::Value doc = json::parse_file(path);
    EXPECT_EQ(doc.at("schema").as_string(), fuzz::kFuzzcaseSchema) << path;
    EXPECT_NO_THROW(fuzz::scenario_from_file(path)) << path;
  }
}

TEST(Corpus, EveryCaseReplaysDivergenceFree) {
  for (const std::string& path : corpus_files()) {
    const auto outcome = fuzz::replay_case_file(path);
    EXPECT_FALSE(outcome.diverged)
        << path << ": "
        << (outcome.divergences.empty() ? "(no detail)"
                                        : outcome.divergences.front().describe());
    EXPECT_TRUE(outcome.engine_error.empty()) << path << ": " << outcome.engine_error;
  }
}

TEST(Corpus, ReplayIsExactRoundTrip) {
  // Replaying a corpus file must be identical to re-running its parsed
  // scenario: the file format loses nothing the harness cares about.
  for (const std::string& path : corpus_files()) {
    const fuzz::Scenario sc = fuzz::scenario_from_file(path);
    const auto from_file = fuzz::replay_case_file(path);
    const auto from_memory = fuzz::run_scenario(sc);
    EXPECT_EQ(from_file.diverged, from_memory.diverged) << path;
    EXPECT_EQ(from_file.divergences.size(), from_memory.divergences.size()) << path;
  }
}

TEST(Corpus, ResilCasesActuallyExerciseTheInjector) {
  // The resil corpus cases must genuinely fire the fault injector when run
  // on the engine -- a case whose faults never trigger regression-tests
  // nothing. (Plain corpus cases have no specs and are skipped.)
  std::size_t armed = 0;
  for (const std::string& path : corpus_files()) {
    const fuzz::Scenario sc = fuzz::scenario_from_file(path);
    if (sc.config.fault_spec.empty() && sc.config.checkpoint_spec.empty()) {
      continue;
    }
    ++armed;
    exec::Simulation sim(sc.platform, sc.workflow, sc.exec_config());
    const exec::Result result = sim.run();
    ASSERT_NE(result.resil_stats, nullptr) << path;
    const resil::RunStats& rs = *result.resil_stats;
    const int events = rs.node_crashes + rs.bb_degradations +
                       rs.pfs_brownouts + rs.checkpoints_taken;
    EXPECT_GT(events, 0) << path << ": armed specs but zero resil events";
  }
  EXPECT_GE(armed, 3u) << "expected the three minimized resil repros";
}

}  // namespace
}  // namespace bbsim
