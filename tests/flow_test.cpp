// Unit + property tests for the max-min fair-sharing flow model.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "flow/manager.hpp"
#include "flow/network.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bbsim::flow {
namespace {

// ------------------------------------------------------------ solver (pure)

TEST(Network, SingleFlowGetsFullCapacity) {
  Network net;
  const ResourceId r = net.add_resource("link", 100.0);
  const FlowId f = net.add_flow({1000.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f).rate, 100.0);
  net.check_invariants();
}

TEST(Network, EqualShareAmongEqualFlows) {
  Network net;
  const ResourceId r = net.add_resource("link", 90.0);
  const FlowId a = net.add_flow({1.0, {r}});
  const FlowId b = net.add_flow({1.0, {r}});
  const FlowId c = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 30.0);
  EXPECT_DOUBLE_EQ(net.flow(b).rate, 30.0);
  EXPECT_DOUBLE_EQ(net.flow(c).rate, 30.0);
  net.check_invariants();
}

TEST(Network, BottleneckIsMinAlongPath) {
  Network net;
  const ResourceId fast = net.add_resource("fast", 1000.0);
  const ResourceId slow = net.add_resource("slow", 10.0);
  const FlowId f = net.add_flow({1.0, {fast, slow}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f).rate, 10.0);
}

TEST(Network, MaxMinRedistribution) {
  // Classic example: r1 capacity 10 shared by f1,f2; r2 capacity 100 used by
  // f2,f3. f1 and f2 get 5 each (r1 bottleneck); f3 gets the r2 remainder 95.
  Network net;
  const ResourceId r1 = net.add_resource("r1", 10.0);
  const ResourceId r2 = net.add_resource("r2", 100.0);
  const FlowId f1 = net.add_flow({1.0, {r1}});
  const FlowId f2 = net.add_flow({1.0, {r1, r2}});
  const FlowId f3 = net.add_flow({1.0, {r2}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f1).rate, 5.0);
  EXPECT_DOUBLE_EQ(net.flow(f2).rate, 5.0);
  EXPECT_DOUBLE_EQ(net.flow(f3).rate, 95.0);
  net.check_invariants();
}

TEST(Network, RateCapFreezesFlowEarly) {
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  FlowSpec capped{1.0, {r}};
  capped.rate_cap = 10.0;
  const FlowId a = net.add_flow(capped);
  const FlowId b = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 10.0);
  EXPECT_TRUE(net.flow(a).bottlenecked_by_cap);
  EXPECT_DOUBLE_EQ(net.flow(b).rate, 90.0);
  net.check_invariants();
}

TEST(Network, WeightsSkewShares) {
  Network net;
  const ResourceId r = net.add_resource("r", 90.0);
  FlowSpec heavy{1.0, {r}};
  heavy.weight = 2.0;
  const FlowId a = net.add_flow(heavy);
  const FlowId b = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 60.0);
  EXPECT_DOUBLE_EQ(net.flow(b).rate, 30.0);
}

TEST(Network, UnlimitedResourceDoesNotConstrain) {
  Network net;
  const ResourceId inf = net.add_resource("inf", kUnlimited);
  const ResourceId fin = net.add_resource("fin", 50.0);
  const FlowId f = net.add_flow({1.0, {inf, fin}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f).rate, 50.0);
}

TEST(Network, FullyUnconstrainedFlowGetsInfiniteRate) {
  Network net;
  const ResourceId inf = net.add_resource("inf", kUnlimited);
  const FlowId f = net.add_flow({1.0, {inf}});
  net.solve();
  EXPECT_EQ(net.flow(f).rate, kUnlimited);
}

TEST(Network, PathlessCappedFlowRunsAtCap) {
  Network net;
  FlowSpec s{1.0, {}};
  s.rate_cap = 7.0;
  const FlowId f = net.add_flow(s);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f).rate, 7.0);
}

TEST(Network, RemoveFlowFreesCapacity) {
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  const FlowId a = net.add_flow({1.0, {r}});
  const FlowId b = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 50.0);
  net.remove_flow(b);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 100.0);
  EXPECT_FALSE(net.has_flow(b));
}

TEST(Network, RejectsInvalidSpecs) {
  Network net;
  const ResourceId r = net.add_resource("r", 10.0);
  EXPECT_THROW(net.add_flow({-1.0, {r}}), util::InvariantError);
  FlowSpec bad_weight{1.0, {r}};
  bad_weight.weight = 0.0;
  EXPECT_THROW(net.add_flow(bad_weight), util::InvariantError);
  EXPECT_THROW(net.add_flow({1.0, {99}}), util::NotFoundError);
  EXPECT_THROW(net.add_resource("neg", -1.0), util::InvariantError);
}

TEST(Network, ZeroCapacityStarvesFlows) {
  Network net;
  const ResourceId r = net.add_resource("r", 0.0);
  const FlowId f = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f).rate, 0.0);
}

// Property sweep: random networks satisfy feasibility + max-min optimality.
class NetworkPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NetworkPropertyTest, RandomNetworksSatisfyInvariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Network net;
  const int n_res = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n_res; ++i) {
    const double cap = rng.chance(0.15) ? kUnlimited : rng.uniform(1.0, 1000.0);
    net.add_resource("r" + std::to_string(i), cap);
  }
  const int n_flows = static_cast<int>(rng.uniform_int(1, 40));
  for (int i = 0; i < n_flows; ++i) {
    FlowSpec s;
    s.volume = rng.uniform(0.0, 100.0);
    const int path_len = static_cast<int>(rng.uniform_int(0, std::min(4, n_res)));
    for (int k = 0; k < path_len; ++k) {
      s.path.push_back(static_cast<ResourceId>(rng.uniform_int(0, n_res - 1)));
    }
    if (rng.chance(0.3)) s.rate_cap = rng.uniform(1.0, 200.0);
    if (rng.chance(0.3)) s.weight = rng.uniform(0.5, 4.0);
    net.add_flow(s);
  }
  net.solve();
  net.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest, ::testing::Range(0, 50));

// --------------------------------------------------------- manager (timed)

TEST(FlowManager, SingleFlowCompletionTime) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double done_at = -1;
  fm.start({1000.0, {r}}, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST(FlowManager, ZeroVolumeCompletesImmediately) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double done_at = -1;
  fm.start({0.0, {r}}, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(FlowManager, TwoEqualFlowsShareAndFinishTogether) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double a = -1, b = -1;
  fm.start({1000.0, {r}}, [&] { a = engine.now(); });
  fm.start({1000.0, {r}}, [&] { b = engine.now(); });
  engine.run();
  // Each gets 50 B/s -> both complete at t = 20.
  EXPECT_DOUBLE_EQ(a, 20.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
}

TEST(FlowManager, LateArrivalSlowsExistingFlow) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double a = -1, b = -1;
  fm.start({1000.0, {r}}, [&] { a = engine.now(); });
  engine.schedule_at(5.0, [&] { fm.start({1000.0, {r}}, [&] { b = engine.now(); }); });
  engine.run();
  // Flow A: 500 bytes alone (t=0..5), then shares 50/50. Remaining 500 at
  // 50 B/s -> finishes at t=15. Flow B then runs alone: remaining 500 at
  // 100 B/s -> finishes at t=20.
  EXPECT_DOUBLE_EQ(a, 15.0);
  EXPECT_DOUBLE_EQ(b, 20.0);
}

TEST(FlowManager, CompletionFreesBandwidthForRemainder) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double small = -1, big = -1;
  fm.start({200.0, {r}}, [&] { small = engine.now(); });
  fm.start({1000.0, {r}}, [&] { big = engine.now(); });
  engine.run();
  // Shared 50/50 until small finishes at t=4 (200/50); big then has
  // 800 left at 100 B/s -> t = 4 + 8 = 12.
  EXPECT_DOUBLE_EQ(small, 4.0);
  EXPECT_DOUBLE_EQ(big, 12.0);
}

TEST(FlowManager, AbortSuppressesCallback) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  bool fired = false;
  const FlowId f = fm.start({1000.0, {r}}, [&] { fired = true; });
  engine.schedule_at(1.0, [&] { EXPECT_TRUE(fm.abort(f)); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fm.active_count(), 0u);
}

TEST(FlowManager, CancelMidTransferSettlesPartialBytes) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  bool fired = false;
  const FlowId f = fm.start({1000.0, {r}}, [&] { fired = true; });
  std::optional<double> moved;
  engine.schedule_at(4.0, [&] { moved = fm.cancel(f); });
  engine.run();
  EXPECT_FALSE(fired);
  ASSERT_TRUE(moved.has_value());
  // 4 s at 100 B/s before the cancel.
  EXPECT_NEAR(*moved, 400.0, 1e-6);
  // The partial bytes are settled into the resource ledger, and the busy
  // window covers only the time the flow actually ran.
  EXPECT_NEAR(fm.network().resource(r).bytes_served, 400.0, 1e-6);
  EXPECT_NEAR(fm.network().resource(r).busy_time, 4.0, 1e-9);
  EXPECT_EQ(fm.active_count(), 0u);
}

TEST(FlowManager, CancelBeforeAnyProgressReturnsZero) {
  // Cancel at the same instant the flow starts: known flow, zero bytes moved.
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  bool fired = false;
  std::optional<double> moved;
  engine.schedule_at(0.0, [&] {
    const FlowId f = fm.start({1000.0, {r}}, [&] { fired = true; });
    moved = fm.cancel(f);
  });
  engine.run();
  EXPECT_FALSE(fired);
  ASSERT_TRUE(moved.has_value());
  EXPECT_DOUBLE_EQ(*moved, 0.0);
  EXPECT_DOUBLE_EQ(fm.network().resource(r).bytes_served, 0.0);
}

TEST(FlowManager, CancelAfterFinishIsNoOp) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  bool fired = false;
  const FlowId f = fm.start({100.0, {r}}, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  // The flow completed and its handler ran; cancel must not find it.
  EXPECT_FALSE(fm.cancel(f).has_value());
  EXPECT_NEAR(fm.network().resource(r).bytes_served, 100.0, 1e-6);
}

TEST(FlowManager, CancelOfUnknownFlowIsNullopt) {
  sim::Engine engine;
  FlowManager fm(engine);
  EXPECT_FALSE(fm.cancel(9876).has_value());
}

TEST(FlowManager, CancelFreesBandwidthForSurvivors) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double survivor_done = -1;
  const FlowId victim = fm.start({1000.0, {r}}, nullptr);
  fm.start({1000.0, {r}}, [&] { survivor_done = engine.now(); });
  engine.schedule_at(10.0, [&] { fm.cancel(victim); });
  engine.run();
  // Shared 50/50 for 10 s (500 B each), then the survivor gets the full
  // 100 B/s: 500 remaining -> done at t = 15.
  EXPECT_DOUBLE_EQ(survivor_done, 15.0);
}

TEST(FlowManager, CapacityChangeMidFlight) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double done = -1;
  fm.start({1000.0, {r}}, [&] { done = engine.now(); });
  engine.schedule_at(5.0, [&] { fm.set_capacity(r, 50.0); });
  engine.run();
  // 500 bytes in the first 5 s, then 500 at 50 B/s -> t = 15.
  EXPECT_DOUBLE_EQ(done, 15.0);
}

TEST(FlowManager, CompletionCallbackCanStartNextFlow) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  double second_done = -1;
  fm.start({500.0, {r}}, [&] {
    fm.start({500.0, {r}}, [&] { second_done = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(second_done, 10.0);
}

TEST(FlowManager, ResourceAccountingTracksBytesAndBusyTime) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  fm.start({1000.0, {r}}, nullptr);
  engine.run();
  EXPECT_NEAR(fm.network().resource(r).bytes_served, 1000.0, 1e-6);
  EXPECT_NEAR(fm.network().resource(r).busy_time, 10.0, 1e-9);
}

TEST(FlowManager, BusyTimeExcludesIdleGaps) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  fm.start({100.0, {r}}, nullptr);  // busy t=0..1
  engine.schedule_at(5.0, [&] { fm.start({100.0, {r}}, nullptr); });  // busy t=5..6
  engine.run();
  EXPECT_NEAR(fm.network().resource(r).busy_time, 2.0, 1e-9);
  EXPECT_NEAR(fm.network().resource(r).bytes_served, 200.0, 1e-6);
}

TEST(FlowManager, ManyConcurrentFlowsConserveWork) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 123.0);
  const int n = 64;
  int completed = 0;
  util::Rng rng(5);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    const double volume = rng.uniform(1.0, 500.0);
    total += volume;
    fm.start({volume, {r}}, [&] { ++completed; });
  }
  const double finish = engine.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(fm.network().resource(r).bytes_served, total, 1e-3);
  // Work conservation: single saturated resource -> finish = total/capacity.
  EXPECT_NEAR(finish, total / 123.0, 1e-6);
}

}  // namespace
}  // namespace bbsim::flow

namespace bbsim::flow {
namespace {

TEST(NetworkEdge, WeightAndCapInteract) {
  // A heavy flow capped below its fair share: the cap wins, and the
  // remainder redistributes to the light flow.
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  FlowSpec heavy{1.0, {r}};
  heavy.weight = 9.0;
  heavy.rate_cap = 30.0;
  const FlowId a = net.add_flow(heavy);
  const FlowId b = net.add_flow({1.0, {r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(a).rate, 30.0);
  EXPECT_DOUBLE_EQ(net.flow(b).rate, 70.0);
  net.check_invariants();
}

TEST(NetworkEdge, RepeatedResourceInPathCountsTwice) {
  // A flow crossing the same link twice (e.g. through a relay) consumes a
  // double share of it.
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  const FlowId twice = net.add_flow({1.0, {r, r}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(twice).rate, 50.0);
  net.check_invariants();
}

TEST(NetworkEdge, ManySmallPlusOneHuge) {
  sim::Engine engine;
  FlowManager fm(engine);
  const ResourceId r = fm.network().add_resource("r", 100.0);
  int small_done = 0;
  double huge_done = -1;
  for (int i = 0; i < 9; ++i) fm.start({10.0, {r}}, [&] { ++small_done; });
  fm.start({1000.0, {r}}, [&] { huge_done = engine.now(); });
  engine.run();
  EXPECT_EQ(small_done, 9);
  // Work conservation: total 1090 bytes over a 100 B/s resource.
  EXPECT_DOUBLE_EQ(huge_done, 10.9);
}

TEST(NetworkEdge, AbortOfUnknownFlowIsFalse) {
  sim::Engine engine;
  FlowManager fm(engine);
  EXPECT_FALSE(fm.abort(12345));
}

// --------------------------------------------- NaN / degenerate hardening

TEST(NetworkHardening, NanRateCapIsRejected) {
  // NaN sails through `rate_cap <= 0` (every comparison with NaN is false),
  // so before the fix a NaN cap entered the solver and poisoned the level
  // scan. It must be rejected at the door instead.
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  FlowSpec nan_cap{1.0, {r}};
  nan_cap.rate_cap = std::nan("");
  EXPECT_THROW(net.add_flow(nan_cap), util::InvariantError);
  try {
    net.add_flow(nan_cap);
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos);
  }
}

TEST(NetworkHardening, NanCapacityErrorNamesNaN) {
  // "negative capacity nan" misdiagnoses the violation; the message must
  // name NaN so the real input bug is findable.
  Network net;
  try {
    net.add_resource("r", std::nan(""));
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos);
  }
  const ResourceId r = net.add_resource("r", 1.0);
  try {
    net.set_capacity(r, std::nan(""));
    FAIL() << "expected InvariantError";
  } catch (const util::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos);
  }
}

TEST(NetworkHardening, TinyWeightSurvivesCancellation) {
  // Regression for the zero-unfrozen-weight bug. Two normal flows freeze at
  // their caps in earlier rounds; the remaining flow's weight (1e-13) fell
  // below the old incremental bookkeeping's absorption clamp, leaving
  // unfrozen_weight[r] == 0 while an unfrozen flow still crossed r. The
  // saturation scan then computed 0/0 = NaN (or skipped the resource
  // entirely), and the tiny flow froze at its cap of 100 -- ten times the
  // resource's total capacity -- so check_invariants() threw.
  Network net;
  const ResourceId r = net.add_resource("r", 10.0);
  FlowSpec a{1.0, {r}};
  a.rate_cap = 2.0;
  FlowSpec b{1.0, {r}};
  b.weight = 1e-13;
  b.rate_cap = 100.0;
  FlowSpec c{1.0, {r}};
  c.rate_cap = 3.0;
  const FlowId fa = net.add_flow(a);
  const FlowId fb = net.add_flow(b);
  const FlowId fc = net.add_flow(c);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(fa).rate, 2.0);
  EXPECT_DOUBLE_EQ(net.flow(fc).rate, 3.0);
  // The tiny flow soaks up exactly the spare capacity, no more.
  EXPECT_TRUE(std::isfinite(net.flow(fb).rate));
  EXPECT_NEAR(net.flow(fb).rate, 5.0, 1e-6);
  EXPECT_NO_THROW(net.check_invariants());
}

TEST(NetworkHardening, ExhaustedResourceDoesNotPoisonLaterRounds) {
  // fa's cap exactly equals r's capacity, so after round 1 the resource is
  // fully consumed with zero unfrozen weight. The unguarded level scan then
  // computed (capacity - frozen_load) / unfrozen_weight = 0/0 = NaN in
  // round 2; the fix skips resources with no unfrozen weight.
  Network net;
  const ResourceId r = net.add_resource("r", 10.0);
  const ResourceId s = net.add_resource("s", 100.0);
  FlowSpec capped{1.0, {r}};
  capped.rate_cap = 10.0;
  const FlowId fa = net.add_flow(capped);
  const FlowId fb = net.add_flow({1.0, {s}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(fa).rate, 10.0);
  EXPECT_TRUE(net.flow(fa).bottlenecked_by_cap);
  EXPECT_DOUBLE_EQ(net.flow(fb).rate, 100.0);
  EXPECT_NO_THROW(net.check_invariants());
}

TEST(NetworkHardening, FlowIdTableStaysBoundedUnderChurn) {
  // Ids are recycled through a free-list: the id -> index table must stay
  // bounded by the concurrent high-water mark, not grow with every flow
  // ever created (it previously leaked one slot per add_flow forever).
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  for (int round = 0; round < 1000; ++round) {
    const FlowId a = net.add_flow({1.0, {r}});
    const FlowId b = net.add_flow({1.0, {r}});
    net.solve();
    net.remove_flow(a);
    net.remove_flow(b);
  }
  EXPECT_EQ(net.flow_count(), 0u);
  EXPECT_LE(net.id_table_size(), 2u);
}

TEST(NetworkHardening, RecycledIdsStayDistinct) {
  // Recycling must never hand out an id that is still live.
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  const FlowId a = net.add_flow({1.0, {r}});
  const FlowId b = net.add_flow({1.0, {r}});
  net.remove_flow(a);
  const FlowId c = net.add_flow({2.0, {r}});
  EXPECT_NE(c, b);
  EXPECT_TRUE(net.has_flow(b));
  EXPECT_TRUE(net.has_flow(c));
  EXPECT_FALSE(net.has_flow(a) && a != c);  // a's slot may be reused by c
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(b).rate, 50.0);
  EXPECT_DOUBLE_EQ(net.flow(c).rate, 50.0);
}

TEST(NetworkHardening, FlowIdsStayInCreationOrderAfterRecycling) {
  // flow_ids() documents creation order. It used to sort numerically,
  // which silently stopped being creation order once the free-list started
  // recycling retired ids: a recycled (numerically small) id belongs to the
  // *youngest* flow. Churn past the high-water mark and verify the order
  // tracks creation, not id value.
  Network net;
  const ResourceId r = net.add_resource("r", 100.0);
  std::vector<FlowId> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(net.add_flow({1.0, {r}}));
  for (int round = 0; round < 200; ++round) {
    // Retire the oldest and one from the middle, then admit replacements
    // (which recycle the retired ids).
    net.remove_flow(expect.front());
    expect.erase(expect.begin());
    net.remove_flow(expect[expect.size() / 2]);
    expect.erase(expect.begin() + static_cast<std::ptrdiff_t>(expect.size() / 2));
    expect.push_back(net.add_flow({1.0, {r}}));
    expect.push_back(net.add_flow({1.0, {r}}));
    ASSERT_EQ(net.flow_ids(), expect) << "round " << round;
  }
  // The order must also be what for_each_flow walks and what the solver
  // referees see: rates after churn agree with a fresh full re-solve.
  net.solve();
  net.check_invariants();
  std::vector<double> incremental;
  net.for_each_flow([&incremental](FlowId, const FlowState& st) {
    incremental.push_back(st.rate);
  });
  net.set_incremental(false);
  net.solve();
  std::size_t i = 0;
  net.for_each_flow([&](FlowId, const FlowState& st) {
    EXPECT_NEAR(st.rate, incremental[i], 1e-6 * st.rate + 1e-12);
    ++i;
  });
}

// -------------------------------------------------------- incremental solve

TEST(IncrementalSolve, UntouchedComponentKeepsConvergedRates) {
  Network net;
  const ResourceId a = net.add_resource("a", 100.0);
  const ResourceId b = net.add_resource("b", 60.0);
  const FlowId f1 = net.add_flow({1.0, {a}});
  const FlowId f2 = net.add_flow({1.0, {a}});
  const FlowId f3 = net.add_flow({1.0, {b}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f1).rate, 50.0);
  EXPECT_DOUBLE_EQ(net.flow(f3).rate, 60.0);

  // Mutating component {a} must re-solve it and leave {b} untouched but
  // still correct.
  net.remove_flow(f2);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f1).rate, 100.0);
  EXPECT_DOUBLE_EQ(net.flow(f3).rate, 60.0);
  net.check_invariants();
}

TEST(IncrementalSolve, SetCapacityRedirtiesItsComponent) {
  Network net;
  const ResourceId a = net.add_resource("a", 100.0);
  const ResourceId b = net.add_resource("b", 60.0);
  const FlowId f1 = net.add_flow({1.0, {a}});
  const FlowId f3 = net.add_flow({1.0, {b}});
  net.solve();
  net.set_capacity(a, 30.0);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f1).rate, 30.0);
  EXPECT_DOUBLE_EQ(net.flow(f3).rate, 60.0);
  net.check_invariants();
}

TEST(IncrementalSolve, ResolvedFlowCounterCountsOnlyTheDirtyComponent) {
  stats::MetricsRegistry metrics;
  Network net;
  net.set_metrics(&metrics);
  const ResourceId a = net.add_resource("a", 100.0);
  const ResourceId b = net.add_resource("b", 60.0);
  net.add_flow({1.0, {a}});
  const FlowId f2 = net.add_flow({1.0, {a}});
  net.add_flow({1.0, {b}});
  net.solve();  // first solve is always full: 3 flows
  EXPECT_DOUBLE_EQ(metrics.counter("flow.solve_flows_resolved").value(), 3.0);
  net.remove_flow(f2);
  net.solve();  // only component {a} re-solves: 1 remaining flow
  EXPECT_DOUBLE_EQ(metrics.counter("flow.solve_flows_resolved").value(), 4.0);
}

TEST(IncrementalSolve, FullModeMatchesIncrementalOnSharedBottleneck) {
  // Two hosts coupled through a shared link: the dirty closure must pull in
  // the whole connected component, not just the directly touched resource.
  Network net;
  const ResourceId h0 = net.add_resource("h0", 100.0);
  const ResourceId h1 = net.add_resource("h1", 100.0);
  const ResourceId shared = net.add_resource("shared", 90.0);
  const FlowId f0 = net.add_flow({1.0, {h0, shared}});
  const FlowId f1 = net.add_flow({1.0, {h1, shared}});
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f0).rate, 45.0);
  // Adding a flow on h1 re-solves the whole component through `shared`.
  const FlowId f2 = net.add_flow({1.0, {h1}});
  net.solve();
  net.check_invariants();
  const double r0 = net.flow(f0).rate;
  const double r1 = net.flow(f1).rate;
  const double r2 = net.flow(f2).rate;
  net.set_incremental(false);
  net.solve();
  EXPECT_DOUBLE_EQ(net.flow(f0).rate, r0);
  EXPECT_DOUBLE_EQ(net.flow(f1).rate, r1);
  EXPECT_DOUBLE_EQ(net.flow(f2).rate, r2);
}

}  // namespace
}  // namespace bbsim::flow
