// Golden regression tests: exact end-to-end makespans for fixed scenarios.
//
// These pin the simulator's observable behaviour. A change that moves any
// of these numbers is a *model change* and must be deliberate: re-derive
// the value, update the constant, and record the reason in the commit.
// (Values were captured from the deterministic engine; they are exact up to
// floating-point noise, hence the 1e-6 relative tolerance.)
#include <gtest/gtest.h>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "workflow/genomes.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

double run_scenario(const cli::CliOptions& opt) {
  exec::ExecutionConfig cfg;
  cfg.placement = cli::make_policy(opt.policy);
  cfg.stage_in_mode = opt.stage_in;
  exec::Simulation sim(cli::resolve_platform(opt), cli::resolve_workflow(opt), cfg);
  return sim.run().makespan;
}

TEST(Golden, SwarpTwoPipelinesCoriPrivateAllBB) {
  cli::CliOptions opt;
  opt.pipelines = 2;
  EXPECT_NEAR(run_scenario(opt) / 96.187191, 1.0, 1e-6);
}

TEST(Golden, SwarpStripedHalfStaged) {
  cli::CliOptions opt;
  opt.bb_mode = platform::BBMode::Striped;
  opt.policy = "fraction:0.5";
  EXPECT_NEAR(run_scenario(opt) / 47.075213, 1.0, 1e-6);
}

TEST(Golden, GenomesOneChromosomeSummitInstant) {
  cli::CliOptions opt;
  opt.platform = "summit";
  opt.workflow = "genomes";
  opt.chromosomes = 1;
  opt.nodes = 2;
  opt.stage_in = exec::StageInMode::Instant;
  EXPECT_NEAR(run_scenario(opt) / 374.948991, 1.0, 1e-6);
}

TEST(Golden, TestbedNoiselessSwarpIsStable) {
  // The noiseless emulator is deterministic end to end.
  testbed::TestbedOptions opt;
  opt.noise = false;
  opt.repetitions = 1;
  const testbed::Testbed tb(testbed::System::CoriPrivate, opt);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto results = tb.run_repetitions(wf::make_swarp({}), cfg, 1.0);
  // Pin only coarse structure (exact value is asserted by re-running).
  const double again =
      tb.run_repetitions(wf::make_swarp({}), cfg, 1.0).front().makespan;
  EXPECT_DOUBLE_EQ(results.front().makespan, again);
  EXPECT_GT(results.front().stage_in_duration, 0.0);
}

}  // namespace
}  // namespace bbsim
