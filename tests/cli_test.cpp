// Unit tests for the command-line option parser and resolvers.
#include <gtest/gtest.h>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "util/error.hpp"

namespace bbsim::cli {
namespace {

using util::ConfigError;

TEST(CliParse, Defaults) {
  const CliOptions opt = parse_cli({});
  EXPECT_EQ(opt.platform, "cori");
  EXPECT_EQ(opt.workflow, "swarp");
  EXPECT_EQ(opt.policy, "all_bb");
  EXPECT_EQ(opt.nodes, 1);
  EXPECT_EQ(opt.repetitions, 1);
  EXPECT_FALSE(opt.testbed_system.has_value());
  EXPECT_FALSE(opt.help);
}

TEST(CliParse, AllFlagsRoundTrip) {
  const CliOptions opt = parse_cli(
      {"--platform", "summit", "--nodes", "4", "--workflow", "genomes",
       "--chromosomes", "2", "--policy", "fraction:0.5", "--scheduler",
       "critical_path", "--stage-in", "instant", "--stage-out", "--evict",
       "--testbed", "summit", "--reps", "5", "--seed", "7", "--trace", "t.json",
       "--csv", "t.csv", "--dot", "t.dot", "--gantt", "--quiet"});
  EXPECT_EQ(opt.platform, "summit");
  EXPECT_EQ(opt.nodes, 4);
  EXPECT_EQ(opt.workflow, "genomes");
  EXPECT_EQ(opt.chromosomes, 2);
  EXPECT_EQ(opt.policy, "fraction:0.5");
  EXPECT_EQ(opt.scheduler, exec::SchedulerPolicy::CriticalPathFirst);
  EXPECT_EQ(opt.stage_in, exec::StageInMode::Instant);
  EXPECT_TRUE(opt.stage_out);
  EXPECT_TRUE(opt.evict);
  ASSERT_TRUE(opt.testbed_system.has_value());
  EXPECT_EQ(*opt.testbed_system, testbed::System::Summit);
  EXPECT_EQ(opt.repetitions, 5);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.trace_path, "t.json");
  EXPECT_EQ(opt.csv_path, "t.csv");
  EXPECT_EQ(opt.dot_path, "t.dot");
  EXPECT_TRUE(opt.gantt);
  EXPECT_TRUE(opt.quiet);
}

TEST(CliParse, BbModeParsing) {
  EXPECT_EQ(parse_cli({"--bb-mode", "striped"}).bb_mode, platform::BBMode::Striped);
  EXPECT_EQ(parse_cli({"--bb-mode", "private"}).bb_mode, platform::BBMode::Private);
  EXPECT_THROW(parse_cli({"--bb-mode", "weird"}), ConfigError);
}

TEST(CliParse, Errors) {
  EXPECT_THROW(parse_cli({"--bogus"}), ConfigError);
  EXPECT_THROW(parse_cli({"--nodes"}), ConfigError);       // missing value
  EXPECT_THROW(parse_cli({"--nodes", "0"}), ConfigError);  // invalid value
  EXPECT_THROW(parse_cli({"--reps", "0"}), ConfigError);
  EXPECT_THROW(parse_cli({"--policy", "nope"}), ConfigError);
  EXPECT_THROW(parse_cli({"--scheduler", "nope"}), ConfigError);
  EXPECT_THROW(parse_cli({"--stage-in", "nope"}), ConfigError);
  EXPECT_THROW(parse_cli({"--testbed", "nope"}), ConfigError);
}

TEST(CliParse, HelpFlag) {
  EXPECT_TRUE(parse_cli({"--help"}).help);
  EXPECT_TRUE(parse_cli({"-h"}).help);
  EXPECT_NE(usage().find("--policy"), std::string::npos);
}

TEST(CliPolicy, SpecsResolve) {
  EXPECT_NE(make_policy("all_pfs")->name().find("0%"), std::string::npos);
  EXPECT_NE(make_policy("all_bb")->name().find("100%"), std::string::npos);
  EXPECT_NE(make_policy("fraction:0.25")->name().find("25%"), std::string::npos);
  EXPECT_NE(make_policy("size:64MB")->name().find("64"), std::string::npos);
  EXPECT_NE(make_policy("size_inv:64MB")->name().find(">"), std::string::npos);
  EXPECT_NE(make_policy("locality")->name().find("locality"), std::string::npos);
  EXPECT_NE(make_policy("greedy:4GB")->name().find("4.0GB"), std::string::npos);
  EXPECT_THROW(make_policy("fraction"), ConfigError);
  EXPECT_THROW(make_policy("greedy"), ConfigError);
}

TEST(CliResolve, PlatformPresets) {
  CliOptions opt;
  opt.platform = "summit";
  opt.nodes = 3;
  const auto plat = resolve_platform(opt);
  EXPECT_EQ(plat.name, "summit");
  EXPECT_EQ(plat.hosts.size(), 3u);

  opt.platform = "cori";
  opt.bb_mode = platform::BBMode::Striped;
  const auto cori = resolve_platform(opt);
  EXPECT_EQ(cori.storage[cori.find_kind(platform::StorageKind::SharedBB)].mode,
            platform::BBMode::Striped);
}

TEST(CliResolve, TestbedOverridesPlatform) {
  CliOptions opt;
  opt.testbed_system = testbed::System::CoriStriped;
  const auto plat = resolve_platform(opt);
  // Testbed platforms carry fidelity overlays.
  const auto& bb = plat.storage[plat.find_kind(platform::StorageKind::SharedBB)];
  EXPECT_LT(bb.metadata_ops_per_sec, platform::kUnlimited);
}

TEST(CliResolve, WorkflowGenerators) {
  CliOptions opt;
  opt.workflow = "swarp";
  opt.pipelines = 3;
  EXPECT_EQ(resolve_workflow(opt).task_count(), 7u);
  opt.workflow = "genomes";
  opt.chromosomes = 1;
  EXPECT_EQ(resolve_workflow(opt).task_count(), 42u);
  opt.workflow = "/nonexistent.json";
  EXPECT_THROW(resolve_workflow(opt), util::ParseError);
}

TEST(CliResolve, CoresOverrideAppliesToSwarp) {
  CliOptions opt;
  opt.workflow = "swarp";
  opt.cores = 8;
  const auto w = resolve_workflow(opt);
  EXPECT_EQ(w.task("resample_000").requested_cores, 8);
}

}  // namespace
}  // namespace bbsim::cli

namespace cluster_flag_tests {

using namespace bbsim;

TEST(CliParse, ClusterFlag) {
  EXPECT_TRUE(cli::parse_cli({"--cluster"}).cluster);
  EXPECT_FALSE(cli::parse_cli({}).cluster);
}

TEST(RunCliCluster, ClusteredRunSucceeds) {
  cli::CliOptions opt;
  opt.cluster = true;
  opt.pipelines = 2;
  opt.quiet = true;
  EXPECT_EQ(cli::run_cli(opt), 0);
}

}  // namespace cluster_flag_tests
