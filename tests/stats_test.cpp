// Unit + end-to-end tests for the metrics subsystem (src/stats) and its
// wiring through the simulation layers and the CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "exec/engine.hpp"
#include "json/json.hpp"
#include "stats/metrics.hpp"
#include "testbed/testbed.hpp"
#include "workflow/swarp.hpp"

namespace bbsim::stats {
namespace {

// ----------------------------------------------------------------- Counter

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

// ------------------------------------------------------------------- Gauge

TEST(Gauge, TracksValueAndPeak) {
  Gauge g;
  g.set(5.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.peak(), 5.0);
  g.add(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  EXPECT_DOUBLE_EQ(g.peak(), 12.0);
}

// -------------------------------------------------------------- TimeSeries

TEST(TimeSeries, SummaryIsExact) {
  TimeSeries ts;
  ts.sample(0.0, 4.0);
  ts.sample(1.0, 2.0);
  ts.sample(2.0, 6.0);
  const SeriesSummary s = ts.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.peak, 6.0);
  EXPECT_DOUBLE_EQ(s.last, 6.0);
}

TEST(TimeSeries, WeightedMeanUsesWeights) {
  TimeSeries ts;
  ts.sample(0.0, 1.0, /*weight=*/3.0);
  ts.sample(1.0, 5.0, /*weight=*/1.0);
  EXPECT_DOUBLE_EQ(ts.summary().mean, 2.0);  // (3*1 + 1*5) / 4
}

TEST(TimeSeries, DecimationBoundsBufferButNotSummary) {
  const std::size_t max = 16;
  TimeSeries ts(max);
  const std::size_t total = 10000;
  for (std::size_t i = 0; i < total; ++i) {
    ts.sample(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_LE(ts.samples().size(), max);
  EXPECT_GE(ts.stride(), total / max);
  const SeriesSummary s = ts.summary();
  EXPECT_EQ(s.count, total);  // exact even after decimation
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.peak, static_cast<double>(total - 1));
  EXPECT_DOUBLE_EQ(s.last, static_cast<double>(total - 1));
  // Retained samples stay in time order.
  for (std::size_t i = 1; i < ts.samples().size(); ++i) {
    EXPECT_LT(ts.samples()[i - 1].time, ts.samples()[i].time);
  }
}

// --------------------------------------------------------------- Histogram

TEST(Histogram, DegenerateValuesLandInTheUnderflowBucket) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-300), 0u);  // below the bottom edge
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            0u);
  // Beyond the top edge: saturates into the last bucket instead of UB.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketEdgesArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(0), 0.0);
  // Bucket i spans [lower, 2*lower): the lower edge belongs to the bucket,
  // the upper edge to the next one.
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const double lower = Histogram::bucket_lower_bound(i);
    EXPECT_GT(lower, Histogram::bucket_lower_bound(i - 1));
    EXPECT_EQ(Histogram::bucket_index(lower), i);
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(2.0 * lower, 0.0)), i);
    EXPECT_EQ(Histogram::bucket_index(2.0 * lower), i + 1);
  }
  // Unit values sit in the bucket whose lower edge is exactly 1.
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(1.0)),
                   1.0);
}

TEST(Histogram, RecordKeepsExactSummary) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // no division by zero on the empty case
  h.record(2.0);
  h.record(8.0);
  h.record(0.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0 / 3.0);
  EXPECT_EQ(h.buckets()[0], 1u);  // the zero
  EXPECT_EQ(h.buckets()[Histogram::bucket_index(2.0)], 1u);
  EXPECT_EQ(h.buckets()[Histogram::bucket_index(8.0)], 1u);
}

TEST(Histogram, QuantileEndpointsAreExact) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int v = 1; v <= 100; ++v) h.record(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);    // exact recorded min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // exact recorded max
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 100.0);  // clamped
}

TEST(Histogram, QuantileIsBucketAccurate) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  // Power-of-two buckets: the interpolated quantile is within one bucket
  // width (a factor of 2) of the exact order statistic.
  for (const double q : {0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double exact = 1.0 + q * 999.0;
    const double approx = h.quantile(q);
    EXPECT_GE(approx, exact / 2.0) << "q=" << q;
    EXPECT_LE(approx, exact * 2.0) << "q=" << q;
  }
  // Monotone in q.
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, QuantileOfSingleValueIsThatValue) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

// ---------------------------------------------------------------- Registry

TEST(MetricsRegistry, ReferencesAreStableAcrossInserts) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  a.add(1.0);
  // Force rebalancing pressure: many later insertions must not move "a".
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  a.add(1.0);
  EXPECT_DOUBLE_EQ(reg.counter("a").value(), 2.0);
  EXPECT_EQ(reg.counter_count(), 101u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_series("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.counter_count(), 0u);
  EXPECT_EQ(reg.histogram_count(), 0u);
  reg.counter("hit").add(7.0);
  ASSERT_NE(reg.find_counter("hit"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_counter("hit")->value(), 7.0);
}

TEST(MetricsRegistry, JsonExportIsDeterministicAndTyped) {
  MetricsRegistry reg;
  reg.counter("z.count").add(3.0);
  reg.counter("a.count").add(1.0);
  reg.gauge("depth").set(4.0);
  reg.series("util").sample(0.0, 0.5);
  const json::Value v = reg.to_json();
  EXPECT_EQ(v.at("schema").as_string(), "bbsim.metrics.v1");
  EXPECT_DOUBLE_EQ(v.at("counters").at("a.count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("counters").at("z.count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("depth").at("peak").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(v.at("series").at("util").at("mean").as_number(), 0.5);
  // Round-trips through the writer/parser and is byte-stable.
  const std::string once = v.dump(2);
  EXPECT_EQ(json::parse(once).dump(2), once);
  EXPECT_EQ(reg.to_json().dump(2), once);
  // Summaries-only export drops the sample arrays.
  const json::Value lean = reg.to_json(/*include_samples=*/false);
  EXPECT_FALSE(lean.at("series").at("util").contains("samples"));
}

TEST(MetricsRegistry, HistogramJsonExportsNonEmptyBucketsInOrder) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("durations");
  h.record(1.0);
  h.record(1.5);  // same [1, 2) bucket as the 1.0
  h.record(1024.0);
  ASSERT_NE(reg.find_histogram("durations"), nullptr);
  const json::Value v = reg.to_json();
  const json::Value& entry = v.at("histograms").at("durations");
  EXPECT_DOUBLE_EQ(entry.at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(entry.at("sum").as_number(), 1026.5);
  EXPECT_DOUBLE_EQ(entry.at("min").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(entry.at("max").as_number(), 1024.0);
  // Only the two occupied buckets export, as [lower_edge, count] pairs in
  // ascending edge order.
  const json::Array& buckets = entry.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[0].as_array()[1].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(buckets[1].as_array()[0].as_number(), 1024.0);
  EXPECT_DOUBLE_EQ(buckets[1].as_array()[1].as_number(), 1.0);
  // Byte-stable across repeated dumps (golden-file friendly).
  EXPECT_EQ(reg.to_json().dump(2), v.dump(2));
}

}  // namespace
}  // namespace bbsim::stats

// ------------------------------------------------- end-to-end (simulation)

namespace bbsim {
namespace {

exec::Result run_swarp_with_metrics(stats::MetricsRegistry** out = nullptr) {
  wf::SwarpConfig scfg;
  scfg.pipelines = 2;
  scfg.cores_per_task = 1;
  exec::ExecutionConfig cfg;
  cfg.collect_metrics = true;
  static std::unique_ptr<exec::Simulation> sim;  // keep registry alive
  sim = std::make_unique<exec::Simulation>(
      testbed::paper_platform(testbed::System::CoriPrivate), wf::make_swarp(scfg),
      cfg);
  exec::Result r = sim->run();
  if (out != nullptr) *out = sim->metrics();
  return r;
}

TEST(SimulationMetrics, RegistryIsNullWhenDisabled) {
  wf::SwarpConfig scfg;
  scfg.cores_per_task = 1;
  exec::Simulation sim(testbed::paper_platform(testbed::System::CoriPrivate),
                       wf::make_swarp(scfg), {});
  EXPECT_EQ(sim.metrics(), nullptr);
  const exec::Result r = sim.run();
  EXPECT_TRUE(r.metrics.is_null());
}

TEST(SimulationMetrics, CollectsEngineSolverAndStorageMetrics) {
  stats::MetricsRegistry* reg = nullptr;
  const exec::Result result = run_swarp_with_metrics(&reg);
  ASSERT_NE(reg, nullptr);
  // Engine event counts.
  ASSERT_NE(reg->find_counter("sim.events_scheduled"), nullptr);
  ASSERT_NE(reg->find_counter("sim.events_executed"), nullptr);
  EXPECT_GT(reg->find_counter("sim.events_executed")->value(), 0.0);
  EXPECT_GE(reg->find_counter("sim.events_scheduled")->value(),
            reg->find_counter("sim.events_executed")->value());
  // Solver totals.
  ASSERT_NE(reg->find_counter("flow.solve_calls"), nullptr);
  ASSERT_NE(reg->find_counter("flow.solve_rounds"), nullptr);
  EXPECT_GE(reg->find_counter("flow.solve_rounds")->value(),
            reg->find_counter("flow.solve_calls")->value());
  EXPECT_GT(reg->find_gauge("flow.active_flows")->peak(), 0.0);
  // BB occupancy timeline: SWarp stages files into the BB, so the peak
  // occupancy must be positive.
  const stats::Gauge* bb = reg->find_gauge("storage.bb.occupancy_bytes");
  ASSERT_NE(bb, nullptr);
  EXPECT_GT(bb->peak(), 0.0);
  const stats::TimeSeries* bb_ts = reg->find_series("storage.bb.occupancy_bytes");
  ASSERT_NE(bb_ts, nullptr);
  EXPECT_DOUBLE_EQ(bb_ts->summary().peak, bb->peak());
  // Task breakdown aggregates.
  EXPECT_DOUBLE_EQ(reg->find_counter("exec.tasks_completed")->value(),
                   static_cast<double>(result.tasks.size()));
  EXPECT_GT(reg->find_counter("exec.task_compute_time")->value(), 0.0);
  // Per-resource utilization series exist and stay within [0, 1]-ish.
  bool saw_util = false;
  const json::Value v = result.metrics;
  ASSERT_TRUE(v.is_object());
  for (const auto& [name, entry] : v.at("series").as_object()) {
    if (name.rfind("flow.util.", 0) != 0) continue;
    saw_util = true;
    EXPECT_GE(entry.at("min").as_number(), 0.0);
    EXPECT_LE(entry.at("peak").as_number(), 1.0 + 1e-6) << name;
  }
  EXPECT_TRUE(saw_util);
}

TEST(SimulationMetrics, HistogramsTrackSolverRoundsAndTransferDurations) {
  stats::MetricsRegistry* reg = nullptr;
  run_swarp_with_metrics(&reg);
  ASSERT_NE(reg, nullptr);
  // Solver rounds per solve(): the histogram's exact count/sum must agree
  // with the scalar counters the solver already publishes.
  const stats::Histogram* rounds =
      reg->find_histogram("flow.solve_rounds_per_call");
  ASSERT_NE(rounds, nullptr);
  EXPECT_DOUBLE_EQ(static_cast<double>(rounds->count()),
                   reg->find_counter("flow.solve_calls")->value());
  EXPECT_DOUBLE_EQ(rounds->sum(),
                   reg->find_counter("flow.solve_rounds")->value());
  // Empty re-solves (last flow just retired) record zero rounds; any real
  // solve records at least one.
  EXPECT_GE(rounds->min(), 0.0);
  EXPECT_GE(rounds->max(), 1.0);
  // Per-flow transfer durations.
  const stats::Histogram* transfers =
      reg->find_histogram("flow.transfer_seconds");
  ASSERT_NE(transfers, nullptr);
  EXPECT_GT(transfers->count(), 0u);
  EXPECT_GE(transfers->min(), 0.0);
  EXPECT_GE(transfers->max(), transfers->min());
}

TEST(SimulationMetrics, ResultJsonEmbedsMetrics) {
  const exec::Result result = run_swarp_with_metrics();
  const json::Value v = result.to_json();
  ASSERT_TRUE(v.contains("metrics"));
  EXPECT_EQ(v.at("metrics").at("schema").as_string(), "bbsim.metrics.v1");
}

}  // namespace
}  // namespace bbsim

// ------------------------------------------------------ CLI --metrics-out

namespace bbsim::cli {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CliMetrics, MetricsOutWritesStableWellFormedJson) {
  const std::string path = "cli_metrics_test.json";
  const std::vector<std::string> args = {"--workflow", "swarp",
                                         "--pipelines", "2",
                                         "--quiet",
                                         "--metrics-out", path};
  ASSERT_EQ(run_cli(parse_cli(args)), 0);
  const std::string first = slurp(path);
  ASSERT_FALSE(first.empty());
  // Well-formed, with the contract's minimum content.
  const json::Value v = json::parse(first);
  EXPECT_EQ(v.at("schema").as_string(), "bbsim.metrics.v1");
  EXPECT_GT(v.at("counters").at("sim.events_executed").as_number(), 0.0);
  EXPECT_GT(v.at("counters").at("flow.solve_rounds").as_number(), 0.0);
  EXPECT_GT(v.at("gauges").at("storage.bb.occupancy_bytes").at("peak").as_number(),
            0.0);
  bool saw_util = false;
  for (const auto& [name, entry] : v.at("series").as_object()) {
    if (name.rfind("flow.util.", 0) == 0) {
      saw_util = true;
      EXPECT_TRUE(entry.contains("mean"));
      EXPECT_TRUE(entry.contains("peak"));
    }
  }
  EXPECT_TRUE(saw_util);
  // Golden stability: the same run serialises byte-identically.
  ASSERT_EQ(run_cli(parse_cli(args)), 0);
  EXPECT_EQ(slurp(path), first);
  std::remove(path.c_str());
}

TEST(CliMetrics, ParseRoundTrip) {
  const CliOptions opt = parse_cli({"--metrics-out", "m.json"});
  EXPECT_EQ(opt.metrics_path, "m.json");
  EXPECT_TRUE(parse_cli({}).metrics_path.empty());
}

}  // namespace
}  // namespace bbsim::cli
