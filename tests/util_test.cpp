// Unit tests for the util substrate: units, strings, rng.
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::util {
namespace {

// ------------------------------------------------------------------- units

TEST(Units, ParseSizePlainNumberIsBytes) {
  EXPECT_DOUBLE_EQ(parse_size("512"), 512.0);
  EXPECT_DOUBLE_EQ(parse_size("0"), 0.0);
}

TEST(Units, ParseSizeSiSuffixes) {
  EXPECT_DOUBLE_EQ(parse_size("1kB"), 1e3);
  EXPECT_DOUBLE_EQ(parse_size("2MB"), 2e6);
  EXPECT_DOUBLE_EQ(parse_size("1.5 GB"), 1.5e9);
  EXPECT_DOUBLE_EQ(parse_size("3TB"), 3e12);
}

TEST(Units, ParseSizeIecSuffixes) {
  EXPECT_DOUBLE_EQ(parse_size("1KiB"), 1024.0);
  EXPECT_DOUBLE_EQ(parse_size("32MiB"), 32.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(parse_size("2 GiB"), 2.0 * 1024 * 1024 * 1024);
}

TEST(Units, ParseSizeScientificNotation) {
  EXPECT_DOUBLE_EQ(parse_size("1e6"), 1e6);
  EXPECT_DOUBLE_EQ(parse_size("2.5e3 MB"), 2.5e9);
}

TEST(Units, ParseSizeRejectsGarbage) {
  EXPECT_THROW(parse_size("abc"), ParseError);
  EXPECT_THROW(parse_size("12 XB"), ParseError);
  EXPECT_THROW(parse_size(""), ParseError);
  EXPECT_THROW(parse_size("-5 MB"), ParseError);
}

TEST(Units, ParseBandwidthVariants) {
  EXPECT_DOUBLE_EQ(parse_bandwidth("800MB/s"), 800e6);
  EXPECT_DOUBLE_EQ(parse_bandwidth("6.5 GB/s"), 6.5e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth("950 MBps"), 950e6);
  EXPECT_DOUBLE_EQ(parse_bandwidth("100"), 100.0);
}

TEST(Units, FormatRoundTripMagnitudes) {
  EXPECT_EQ(format_size(1.5e9), "1.50 GB");
  EXPECT_EQ(format_bandwidth(6.5e9), "6.50 GB/s");
  EXPECT_EQ(format_time(0.0), "0 s");
  EXPECT_EQ(format_time(12.345), "12.35 s");
  EXPECT_EQ(format_time(0.0032), "3.20 ms");
  EXPECT_EQ(format_time(1200.0), "20.00 min");
}

// ----------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(Strings, JoinInverseOfSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, PrefixSuffixChecks) {
  EXPECT_TRUE(starts_with("resample_001", "resample"));
  EXPECT_FALSE(starts_with("re", "resample"));
  EXPECT_TRUE(ends_with("a.fits", ".fits"));
  EXPECT_FALSE(ends_with("x", ".fits"));
}

TEST(Strings, FormatPrintfStyle) {
  EXPECT_EQ(format("%s=%d", "cores", 32), "cores=32");
  EXPECT_EQ(format("%.2f", 1.0 / 3.0), "0.33");
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng base(42);
  Rng f1 = base.fork(1);
  Rng f1b = Rng(42).fork(1);
  Rng f2 = base.fork(2);
  EXPECT_DOUBLE_EQ(f1.uniform(0, 1), f1b.uniform(0, 1));
  // Different salts give different streams (overwhelmingly likely).
  EXPECT_NE(Rng(42).fork(1).next_u64(), Rng(42).fork(2).next_u64());
  (void)f2;
}

TEST(Rng, ForkByLabelStable) {
  EXPECT_EQ(Rng(1).fork("bb").next_u64(), Rng(1).fork("bb").next_u64());
  EXPECT_NE(Rng(1).fork("bb").next_u64(), Rng(1).fork("pfs").next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(Rng, TruncatedNormalStaysInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.truncated_normal(1.0, 0.5, 0.8, 1.2);
    EXPECT_GE(x, 0.8);
    EXPECT_LE(x, 1.2);
  }
}

TEST(Rng, TruncatedNormalZeroSigmaClamps) {
  Rng r(9);
  EXPECT_DOUBLE_EQ(r.truncated_normal(5.0, 0.0, 0.0, 1.0), 1.0);
}

TEST(Rng, LognormalMeanMatchesTarget) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_mean(2.0, 0.4);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, LognormalZeroSigmaIsExact) {
  Rng r(1);
  EXPECT_DOUBLE_EQ(r.lognormal_mean(3.0, 0.0), 3.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(13);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[r.weighted_index({1.0, 9.0})]++;
  }
  EXPECT_GT(counts[1], counts[0] * 5);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng r(1);
  EXPECT_THROW(r.weighted_index({}), InvariantError);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), InvariantError);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

}  // namespace
}  // namespace bbsim::util
