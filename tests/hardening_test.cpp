// Parser-hardening and negative-path tests: truncated, duplicate-key and
// NaN/overflow-containing inputs to the JSON parser, the WfFormat workflow
// loader and the platform loader must surface typed util errors (never
// crash), and the CLI drivers must reject bad flag combinations with a
// non-zero exit naming the offending option.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "cli/sweep_cli.hpp"
#include "json/json.hpp"
#include "platform/platform_json.hpp"
#include "util/error.hpp"
#include "workflow/wfformat.hpp"

namespace bbsim {
namespace {

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

// ----------------------------------------------------------- json parser

TEST(JsonHardening, TruncatedDocumentsThrowParseError) {
  for (const char* doc : {"", "{", "[1, 2", R"({"a": )", R"({"a": "unterminated)",
                          R"({"a": 1,})", "nul", "1e"}) {
    EXPECT_THROW(json::parse(doc), util::ParseError) << "input: " << doc;
  }
}

TEST(JsonHardening, DuplicateKeysThrowParseError) {
  try {
    json::parse(R"({"a": 1, "b": 2, "a": 3})");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'a'"), std::string::npos);
  }
  // Nested objects are checked independently: this is legal.
  EXPECT_NO_THROW(json::parse(R"({"a": {"x": 1}, "b": {"x": 2}})"));
}

TEST(JsonHardening, NonFiniteNumbersThrowParseError) {
  // JSON has no NaN/Infinity literals, and overflowing doubles must not
  // smuggle an infinity into the simulator either.
  for (const char* doc : {"NaN", "Infinity", "-Infinity", "1e999", "[1, 1e999]"}) {
    EXPECT_THROW(json::parse(doc), util::ParseError) << "input: " << doc;
  }
}

TEST(JsonHardening, TrailingGarbageThrowsParseError) {
  EXPECT_THROW(json::parse("{} {}"), util::ParseError);
  EXPECT_THROW(json::parse("1 2"), util::ParseError);
}

// ------------------------------------------------------ workflow loader

TEST(WfFormatHardening, TruncatedFileThrowsTypedError) {
  const std::string path =
      write_temp("bbsim_trunc.json", R"({"name": "w", "workflow": {"specVersion")");
  EXPECT_THROW(wf::load_workflow(path), util::ParseError);
  std::remove(path.c_str());
}

TEST(WfFormatHardening, WrongShapeThrowsTypedError) {
  // Structurally valid JSON that is not a WfFormat document.
  for (const char* doc : {"[1, 2, 3]", R"({"tasks": "nope"})", R"({"workflow": 5})"}) {
    EXPECT_THROW(wf::from_wfformat(json::parse(doc)), util::Error) << doc;
  }
}

TEST(WfFormatHardening, MissingFileThrowsTypedError) {
  EXPECT_THROW(wf::load_workflow("/nonexistent/bbsim_wf.json"), util::Error);
}

// ------------------------------------------------------ platform loader

TEST(PlatformHardening, TruncatedFileThrowsTypedError) {
  const std::string path =
      write_temp("bbsim_plat_trunc.json", R"({"hosts": [{"cores": )");
  EXPECT_THROW(platform::load_platform(path), util::ParseError);
  std::remove(path.c_str());
}

TEST(PlatformHardening, WrongShapeThrowsTypedError) {
  for (const char* doc : {"[]", R"({"hosts": 3})", R"({"hosts": [], "storage": []})"}) {
    EXPECT_THROW(platform::from_json(json::parse(doc)), util::Error) << doc;
  }
}

// ------------------------------------------------------------- run CLI

TEST(CliHardening, UnknownFlagNamesTheFlag) {
  try {
    cli::parse_cli({"--frobnicate"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--frobnicate"), std::string::npos);
  }
}

TEST(CliHardening, MissingValueNamesTheFlag) {
  try {
    cli::parse_cli({"--pipelines"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--pipelines"), std::string::npos);
  }
}

TEST(CliHardening, AuditOutWithoutAuditIsRejected) {
  try {
    cli::parse_cli({"--audit-out", "report.json"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--audit-out"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--audit"), std::string::npos);
  }
  // The pair together stays legal.
  EXPECT_NO_THROW(cli::parse_cli({"--audit", "--audit-out", "report.json"}));
}

TEST(CliHardening, TimelineOutMissingValueNamesTheFlag) {
  try {
    cli::parse_cli({"--timeline-out"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--timeline-out"), std::string::npos);
  }
}

TEST(CliHardening, TimelineOutUnwritablePathNamesTheFlag) {
  // The run itself succeeds; the export must fail loudly, naming the flag
  // that pointed at the unwritable destination.
  const cli::CliOptions opt = cli::parse_cli(
      {"--workflow", "swarp", "--pipelines", "1", "--quiet", "--timeline-out",
       "/nonexistent-bbsim-dir/timeline.json"});
  try {
    cli::run_cli(opt);
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--timeline-out"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("/nonexistent-bbsim-dir/timeline.json"),
              std::string::npos);
  }
}

TEST(CliHardening, OutOfRangeValuesAreRejected) {
  EXPECT_THROW(cli::parse_cli({"--jobs", "-1"}), util::ConfigError);
  EXPECT_THROW(cli::parse_cli({"--nodes", "0"}), util::ConfigError);
  EXPECT_THROW(cli::parse_cli({"--reps", "0"}), util::ConfigError);
  EXPECT_THROW(cli::parse_cli({"--stage-width", "0"}), util::ConfigError);
}

TEST(CliHardening, MainImplExitsNonZeroOnBadFlags) {
  {
    const char* argv[] = {"bbsim_run", "--audit-out", "x.json"};
    EXPECT_NE(cli::main_impl(3, argv), 0);
  }
  {
    const char* argv[] = {"bbsim_run", "--jobs", "-2"};
    EXPECT_NE(cli::main_impl(3, argv), 0);
  }
}

// ------------------------------------------------------------ sweep CLI

TEST(SweepCliHardening, UnknownFlagNamesTheFlag) {
  try {
    cli::parse_sweep_cli({"spec.json", "--bogus"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
  }
}

TEST(SweepCliHardening, MalformedSpecFileExitsNonZero) {
  const std::string path =
      write_temp("bbsim_bad_spec.json", R"({"axes": {"a": []}})");
  const std::string truncated =
      write_temp("bbsim_trunc_spec.json", R"({"name": )");
  {
    const char* argv[] = {"bbsim_sweep", path.c_str(), "--quiet"};
    EXPECT_NE(cli::sweep_main_impl(3, argv), 0);
  }
  {
    const char* argv[] = {"bbsim_sweep", truncated.c_str(), "--quiet"};
    EXPECT_NE(cli::sweep_main_impl(3, argv), 0);
  }
  {
    const char* argv[] = {"bbsim_sweep", "/nonexistent/spec.json", "--quiet"};
    EXPECT_NE(cli::sweep_main_impl(3, argv), 0);
  }
  std::remove(path.c_str());
  std::remove(truncated.c_str());
}

TEST(SweepCliHardening, OutOfRangeJobsRejected) {
  EXPECT_THROW(cli::parse_sweep_cli({"spec.json", "--jobs", "-1"}),
               util::ConfigError);
}

TEST(SweepCliHardening, TimelineDirWithParallelJobsNamesTheOptions) {
  try {
    cli::parse_sweep_cli({"spec.json", "--timeline-dir", "d", "--jobs", "2"});
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--timeline-dir"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
  }
  // The serial combination stays legal.
  EXPECT_NO_THROW(
      cli::parse_sweep_cli({"spec.json", "--timeline-dir", "d", "--jobs", "1"}));
  // And the default --jobs is 1, so --timeline-dir alone is too.
  EXPECT_NO_THROW(cli::parse_sweep_cli({"spec.json", "--timeline-dir", "d"}));
}

}  // namespace
}  // namespace bbsim
