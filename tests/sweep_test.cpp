// Tests for the parallel sweep engine: deterministic ordering, failure
// isolation, cancel-on-error, spec expansion, report aggregation, and
// byte-identical serial/parallel reports through the bbsim_sweep path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "cli/sweep_cli.hpp"
#include "exec/engine.hpp"
#include "platform/presets.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "testbed/characterize.hpp"
#include "testbed/testbed.hpp"
#include "util/error.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

// ---------------------------------------------------------------- helpers

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A tiny real simulation whose makespan depends on `pipelines` -- cheap,
/// deterministic, and exercising the full sim/flow/exec stack.
exec::Result tiny_run(int pipelines) {
  wf::SwarpConfig cfg;
  cfg.pipelines = pipelines;
  exec::ExecutionConfig ecfg;
  ecfg.collect_trace = false;
  exec::Simulation sim(platform::cori_platform(), wf::make_swarp(cfg), ecfg);
  return sim.run();
}

std::vector<sweep::RunSpec> tiny_specs(int n) {
  std::vector<sweep::RunSpec> specs;
  for (int i = 1; i <= n; ++i) {
    specs.push_back(sweep::RunSpec{"p" + std::to_string(i), [i] { return tiny_run(i); }});
  }
  return specs;
}

// ------------------------------------------------------------ SweepRunner

TEST(SweepRunner, EffectiveJobs) {
  EXPECT_EQ(sweep::effective_jobs(1), 1);
  EXPECT_EQ(sweep::effective_jobs(7), 7);
  EXPECT_GE(sweep::effective_jobs(0), 1);  // hardware threads, at least one
  EXPECT_THROW(sweep::effective_jobs(-1), util::ConfigError);
}

TEST(SweepRunner, EmptySweep) {
  EXPECT_TRUE(sweep::SweepRunner().run({}).empty());
}

// Acceptance (c): result order is stable across --jobs values, and equals
// spec order regardless of completion order.
TEST(SweepRunner, ResultOrderIndependentOfJobs) {
  const std::vector<sweep::RunSpec> specs = tiny_specs(6);
  sweep::SweepOptions serial_opt;
  serial_opt.jobs = 1;
  const auto serial = sweep::SweepRunner(serial_opt).run(specs);
  ASSERT_EQ(serial.size(), 6u);
  for (const int jobs : {2, 3, 8}) {
    sweep::SweepOptions opt;
    opt.jobs = jobs;
    const auto parallel = sweep::SweepRunner(opt).run(specs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].name, serial[i].name) << "jobs=" << jobs;
      ASSERT_TRUE(parallel[i].ok);
      EXPECT_EQ(parallel[i].result.makespan, serial[i].result.makespan)
          << "jobs=" << jobs << " run=" << i;
      EXPECT_EQ(parallel[i].result.tasks.size(), serial[i].result.tasks.size());
    }
  }
}

// Acceptance (b): a failing config is reported without poisoning siblings.
TEST(SweepRunner, FailureIsolated) {
  std::vector<sweep::RunSpec> specs = tiny_specs(4);
  specs.insert(specs.begin() + 2,
               sweep::RunSpec{"boom", []() -> exec::Result {
                                throw util::ConfigError("deliberate failure");
                              }});
  sweep::SweepOptions opt;
  opt.jobs = 3;
  const auto outcomes = sweep::SweepRunner(opt).run(specs);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_NE(outcomes[2].error.find("deliberate failure"), std::string::npos);
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_TRUE(outcomes[i].ok) << "sibling " << i << " poisoned";
    EXPECT_TRUE(outcomes[i].error.empty());
    EXPECT_GT(outcomes[i].result.makespan, 0.0);
  }
}

TEST(SweepRunner, CancelOnErrorSkipsUnstartedRuns) {
  std::vector<sweep::RunSpec> specs;
  specs.push_back(sweep::RunSpec{"fail", []() -> exec::Result {
                                   throw util::ConfigError("first run fails");
                                 }});
  for (auto& s : tiny_specs(3)) specs.push_back(std::move(s));
  sweep::SweepOptions opt;
  opt.jobs = 1;  // serial: everything after the failure must be skipped
  opt.cancel_on_error = true;
  const auto outcomes = sweep::SweepRunner(opt).run(specs);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_FALSE(outcomes[0].ok);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].skipped) << "run " << i;
    EXPECT_FALSE(outcomes[i].ok);
    EXPECT_EQ(outcomes[i].name, specs[i].name);  // named even when skipped
  }
}

TEST(SweepRunner, ProgressCallbackSerializedAndComplete) {
  const std::vector<sweep::RunSpec> specs = tiny_specs(5);
  std::vector<std::size_t> finished_counts;
  std::set<std::string> names;
  sweep::SweepOptions opt;
  opt.jobs = 4;
  opt.on_progress = [&](const sweep::Progress& p) {
    finished_counts.push_back(p.finished);  // safe: callbacks are serialized
    names.insert(p.name);
    EXPECT_EQ(p.total, 5u);
  };
  sweep::SweepRunner(opt).run(specs);
  ASSERT_EQ(finished_counts.size(), 5u);
  for (std::size_t i = 0; i < finished_counts.size(); ++i) {
    EXPECT_EQ(finished_counts[i], i + 1);  // monotonic under the lock
  }
  EXPECT_EQ(names.size(), 5u);
}

// ------------------------------------------------------------- sweep spec

TEST(SweepSpec, ExpandCrossProductDeterministically) {
  const json::Value doc = json::parse(R"({
    "name": "study",
    "base": {"workflow": "swarp"},
    "axes": {"a": [1, 2], "b": ["x", "y", "z"]},
    "repetitions": 2
  })");
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(doc);
  const auto runs = sweep::expand(spec);
  ASSERT_EQ(runs.size(), 2u * 3u * 2u);
  // Last axis fastest, repetitions fastest of all.
  EXPECT_EQ(runs[0].name, "a=1,b=x#rep0");
  EXPECT_EQ(runs[1].name, "a=1,b=x#rep1");
  EXPECT_EQ(runs[2].name, "a=1,b=y#rep0");
  EXPECT_EQ(runs[6].name, "a=2,b=x#rep0");
  EXPECT_EQ(runs[11].name, "a=2,b=z#rep1");
  EXPECT_EQ(runs[6].settings.at("a").as_int(), 2);
  EXPECT_EQ(runs[6].settings.at("workflow").as_string(), "swarp");
  EXPECT_EQ(runs[1].repetition, 1);
}

TEST(SweepSpec, SingleRepetitionOmitsSuffix) {
  const json::Value doc =
      json::parse(R"({"axes": {"pipelines": [1, 2]}})");
  const auto runs = sweep::expand(sweep::parse_sweep_spec(doc));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].name, "pipelines=1");
  EXPECT_EQ(runs[1].name, "pipelines=2");
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(sweep::parse_sweep_spec(json::parse("[1,2]")), util::ParseError);
  EXPECT_THROW(sweep::parse_sweep_spec(json::parse(R"({"axes": {"a": []}})")),
               util::ParseError);
  EXPECT_THROW(sweep::parse_sweep_spec(json::parse(R"({"bogus": 1})")),
               util::ParseError);
  EXPECT_THROW(sweep::parse_sweep_spec(json::parse(R"({"repetitions": 0})")),
               util::ConfigError);
  // A key cannot be both a base setting and an axis.
  EXPECT_THROW(sweep::parse_sweep_spec(json::parse(
                   R"({"base": {"a": 1}, "axes": {"a": [1, 2]}})")),
               util::ConfigError);
}

TEST(SweepSpec, SettingsValueToString) {
  EXPECT_EQ(sweep::settings_value_to_string(json::Value("fraction:0.5")),
            "fraction:0.5");
  EXPECT_EQ(sweep::settings_value_to_string(json::Value(8)), "8");
  EXPECT_EQ(sweep::settings_value_to_string(json::Value(0.25)), "0.25");
  EXPECT_EQ(sweep::settings_value_to_string(json::Value(true)), "1");
}

// ----------------------------------------------------------- sweep report

TEST(SweepReport, AggregatesOutcomes) {
  sweep::SweepOptions opt;
  opt.jobs = 2;
  std::vector<sweep::RunSpec> specs = tiny_specs(2);
  specs.push_back(sweep::RunSpec{"bad", []() -> exec::Result {
                                   throw util::ConfigError("nope");
                                 }});
  const auto outcomes = sweep::SweepRunner(opt).run(specs);
  const json::Value report = sweep::sweep_report("unit", outcomes, false);
  EXPECT_EQ(report.at("schema").as_string(), "bbsim.sweep.v1");
  EXPECT_EQ(report.at("name").as_string(), "unit");
  const json::Array& runs = report.at("runs").as_array();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].at("ok").as_bool());
  EXPECT_GT(runs[0].at("makespan").as_number(), 0.0);
  EXPECT_FALSE(runs[0].contains("wall_seconds"));  // timings off by default
  EXPECT_FALSE(runs[2].at("ok").as_bool());
  EXPECT_NE(runs[2].at("error").as_string().find("nope"), std::string::npos);
  const json::Value& summary = report.at("summary");
  EXPECT_EQ(summary.at("total").as_int(), 3);
  EXPECT_EQ(summary.at("ok").as_int(), 2);
  EXPECT_EQ(summary.at("failed").as_int(), 1);
  EXPECT_GT(summary.at("makespan").at("mean").as_number(), 0.0);
}

TEST(SweepReport, TimingsAreOptIn) {
  const auto outcomes = sweep::SweepRunner().run(tiny_specs(1));
  const json::Value with = sweep::sweep_report("t", outcomes, true);
  EXPECT_TRUE(with.at("runs").as_array()[0].contains("wall_seconds"));
}

// ----------------------------------------------- bbsim_sweep (cli) path

sweep::SweepSpec small_spec() {
  return sweep::parse_sweep_spec(json::parse(R"({
    "name": "cli-sweep",
    "base": {"workflow": "swarp", "cores": 8},
    "axes": {"pipelines": [1, 2], "policy": ["all_pfs", "all_bb"]}
  })"));
}

// Acceptance (a): parallel and serial runs of the same spec produce
// byte-identical reports.
TEST(SweepCli, SerialAndParallelReportsByteIdentical) {
  cli::SweepCliOptions serial;
  serial.jobs = 1;
  serial.quiet = true;
  cli::SweepCliOptions parallel;
  parallel.jobs = 4;
  parallel.quiet = true;
  const std::string a = cli::run_sweep_to_json(small_spec(), serial).dump(2);
  const std::string b = cli::run_sweep_to_json(small_spec(), parallel).dump(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"ok\": true"), std::string::npos);
}

TEST(SweepCli, TestbedRepetitionsVaryButStayDeterministic) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "testbed": "cori-private"},
    "repetitions": 2
  })"));
  cli::SweepCliOptions opt;
  opt.jobs = 2;
  opt.quiet = true;
  const auto o1 = cli::execute_sweep_spec(spec, opt);
  const auto o2 = cli::execute_sweep_spec(spec, opt);
  ASSERT_EQ(o1.size(), 2u);
  ASSERT_TRUE(o1[0].ok && o1[1].ok);
  // Different noise per repetition, identical across invocations.
  EXPECT_NE(o1[0].result.makespan, o1[1].result.makespan);
  EXPECT_EQ(o1[0].result.makespan, o2[0].result.makespan);
  EXPECT_EQ(o1[1].result.makespan, o2[1].result.makespan);
}

TEST(SweepCli, ForbidsPerRunOutputFlags) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "trace": "out.json"}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  const auto outcomes = cli::execute_sweep_spec(spec, opt);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("not allowed"), std::string::npos);
}

TEST(SweepCli, MetricsSwitchEmbedsMetrics) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "metrics": true}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  const json::Value report = cli::run_sweep_to_json(spec, opt);
  const json::Value& run = report.at("runs").as_array()[0];
  ASSERT_TRUE(run.at("ok").as_bool());
  EXPECT_TRUE(run.contains("metrics"));
  EXPECT_EQ(run.at("metrics").at("schema").as_string(), "bbsim.metrics.v1");
}

#if defined(BBSIM_AUDIT_ENABLED)
TEST(SweepCli, AuditSwitchEmbedsViolationCounts) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp"},
    "axes": {"pipelines": [1, 2]}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  opt.audit = true;
  const json::Value report = cli::run_sweep_to_json(spec, opt);
  const json::Array& runs = report.at("runs").as_array();
  ASSERT_EQ(runs.size(), 2u);
  for (const json::Value& run : runs) {
    ASSERT_TRUE(run.at("ok").as_bool());
    EXPECT_EQ(run.at("audit_violations").as_number(), 0.0);
  }
  EXPECT_EQ(report.at("summary").at("audit").at("runs_audited").as_number(), 2.0);
  EXPECT_EQ(report.at("summary").at("audit").at("violations").as_number(), 0.0);
}

TEST(SweepCli, SpecLevelAuditKeyOptsARunIn) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "audit": true}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;  // note: no --audit; the spec asks by itself
  const json::Value report = cli::run_sweep_to_json(spec, opt);
  const json::Value& run = report.at("runs").as_array()[0];
  ASSERT_TRUE(run.at("ok").as_bool());
  EXPECT_TRUE(run.contains("audit_violations"));
}
#endif  // BBSIM_AUDIT_ENABLED

TEST(SweepCli, UnauditedReportHasNoAuditFields) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp"}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  const json::Value report = cli::run_sweep_to_json(spec, opt);
  EXPECT_FALSE(report.at("runs").as_array()[0].contains("audit_violations"));
  EXPECT_FALSE(report.at("summary").contains("audit"));
}

TEST(SweepCli, ForbidsAuditOutInsideASweep) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "audit-out": "a.json"}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  const auto outcomes = cli::execute_sweep_spec(spec, opt);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("not allowed"), std::string::npos);
}

TEST(SweepCli, ForbidsTimelineOutAndProfileInsideASweep) {
  // Per-run output/profiling flags stay banned from sweep specs; runs opt
  // into timelines with the sweep-level "timeline": true switch instead.
  for (const char* body :
       {R"({"base": {"workflow": "swarp", "timeline-out": "t.json"}})",
        R"({"base": {"workflow": "swarp", "profile": true}})"}) {
    const auto spec = sweep::parse_sweep_spec(json::parse(body));
    cli::SweepCliOptions opt;
    opt.quiet = true;
    const auto outcomes = cli::execute_sweep_spec(spec, opt);
    ASSERT_EQ(outcomes.size(), 1u) << body;
    EXPECT_FALSE(outcomes[0].ok) << body;
    EXPECT_NE(outcomes[0].error.find("not allowed"), std::string::npos) << body;
  }
}

TEST(SweepCli, SpecTimelineWithoutDirFailsBeforeRunning) {
  const auto spec = sweep::parse_sweep_spec(json::parse(R"({
    "base": {"workflow": "swarp", "timeline": true}
  })"));
  cli::SweepCliOptions opt;
  opt.quiet = true;
  try {
    cli::execute_sweep_spec(spec, opt);
    FAIL() << "expected ConfigError";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--timeline-dir"), std::string::npos);
  }
}

TEST(SweepCli, TimelineDirExportIsByteStableAndMatchesDirectRun) {
  const auto make_spec = [] {
    return sweep::parse_sweep_spec(json::parse(R"({
      "name": "tl",
      "base": {"workflow": "swarp", "pipelines": 2, "timeline": true}
    })"));
  };
  const std::string dir = ::testing::TempDir() + "/bbsim_sweep_tl";
  const std::string run_file = dir + "/base.json";  // run name: "base"
  cli::SweepCliOptions opt;
  opt.quiet = true;
  opt.timeline_dir = dir;
  cli::run_sweep_to_json(make_spec(), opt);
  const std::string first = slurp(run_file);
  ASSERT_FALSE(first.empty());
  // Byte-identical on a repeated sweep...
  cli::run_sweep_to_json(make_spec(), opt);
  EXPECT_EQ(slurp(run_file), first);
  // ...and identical to what bbsim_run --timeline-out exports for the same
  // configuration: the timeline depends only on the simulated run.
  const std::string direct = dir + "/direct.json";
  ASSERT_EQ(cli::run_cli(cli::parse_cli({"--workflow", "swarp", "--pipelines",
                                         "2", "--quiet", "--timeline-out",
                                         direct})),
            0);
  EXPECT_EQ(slurp(direct), first);
  std::remove(run_file.c_str());
  std::remove(direct.c_str());
}

TEST(SweepCli, ParseRejectsBadArgs) {
  EXPECT_THROW(cli::parse_sweep_cli({"--jobs", "-2", "s.json"}), util::ConfigError);
  EXPECT_THROW(cli::parse_sweep_cli({}), util::ConfigError);
  EXPECT_THROW(cli::parse_sweep_cli({"a.json", "b.json"}), util::ConfigError);
  EXPECT_THROW(cli::parse_sweep_cli({"--bogus"}), util::ConfigError);
  const auto opt =
      cli::parse_sweep_cli({"spec.json", "--jobs", "0", "--timings", "--audit"});
  EXPECT_EQ(opt.jobs, 0);
  EXPECT_TRUE(opt.timings);
  EXPECT_TRUE(opt.audit);
  EXPECT_EQ(opt.spec_path, "spec.json");
}

// --------------------------------------------- testbed parallel repetitions

TEST(TestbedParallel, RepetitionsIdenticalAcrossJobCounts) {
  testbed::TestbedOptions topt;
  topt.repetitions = 4;
  const testbed::Testbed tb(testbed::System::CoriPrivate, topt);
  const wf::Workflow workflow = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.collect_trace = false;
  const auto serial = tb.run_repetitions(workflow, cfg, 0.5, /*jobs=*/1);
  const auto parallel = tb.run_repetitions(workflow, cfg, 0.5, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].makespan, parallel[i].makespan) << "rep " << i;
  }
}

TEST(TestbedParallel, CharacterizationOverSweepOutcomes) {
  sweep::SweepOptions opt;
  opt.jobs = 2;
  std::vector<sweep::RunSpec> specs = tiny_specs(2);
  specs.push_back(sweep::RunSpec{"bad", []() -> exec::Result {
                                   throw util::ConfigError("dead run");
                                 }});
  const auto outcomes = sweep::SweepRunner(opt).run(specs);
  EXPECT_EQ(testbed::ok_results(outcomes).size(), 2u);
  const std::string report = testbed::characterization_report(outcomes);
  EXPECT_NE(report.find("per task type:"), std::string::npos);
  EXPECT_NE(report.find("FAILED bad: configuration error: dead run"),
            std::string::npos);
}

}  // namespace
}  // namespace bbsim
