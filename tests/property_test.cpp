// Property tests: cross-module invariants on randomized scenarios.
//
//  * flow layer: work conservation and bandwidth bounds under random timed
//    arrivals;
//  * execution engine: analytic lower bounds, record consistency and
//    determinism on random DAGs over all three platform models;
//  * storage: operation time never beats the physical bottleneck.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exec/engine.hpp"
#include "flow/manager.hpp"
#include "fuzz/runner.hpp"
#include "model/calibration.hpp"
#include "platform/presets.hpp"
#include "storage/system.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"
#include "workflow/random_dag.hpp"

namespace bbsim {
namespace {

// -------------------------------------------------------------- flow layer

class FlowTimedProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowTimedProperty, WorkConservationUnderRandomArrivals) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  sim::Engine engine;
  flow::FlowManager fm(engine);

  const int n_res = static_cast<int>(rng.uniform_int(1, 5));
  std::vector<flow::ResourceId> resources;
  double min_capacity = 1e18;
  for (int i = 0; i < n_res; ++i) {
    const double cap = rng.uniform(10.0, 500.0);
    min_capacity = std::min(min_capacity, cap);
    resources.push_back(fm.network().add_resource("r" + std::to_string(i), cap));
  }

  const int n_flows = static_cast<int>(rng.uniform_int(1, 30));
  std::map<flow::ResourceId, double> expected_bytes;  // volume per traversal
  double last_arrival = 0.0;
  int completed = 0;
  for (int i = 0; i < n_flows; ++i) {
    flow::FlowSpec spec;
    spec.volume = rng.uniform(1.0, 2000.0);
    const int hops = static_cast<int>(rng.uniform_int(1, n_res));
    for (int h = 0; h < hops; ++h) {
      spec.path.push_back(resources[static_cast<std::size_t>(
          rng.uniform_int(0, n_res - 1))]);
    }
    if (rng.chance(0.3)) spec.rate_cap = rng.uniform(5.0, 100.0);
    for (const flow::ResourceId r : spec.path) expected_bytes[r] += spec.volume;
    const double arrival = rng.uniform(0.0, 50.0);
    last_arrival = std::max(last_arrival, arrival);
    engine.schedule_at(arrival, [&fm, spec, &completed] {
      fm.start(spec, [&completed] { ++completed; });
    });
  }

  const double finish = engine.run();
  EXPECT_EQ(completed, n_flows);
  EXPECT_EQ(fm.active_count(), 0u);

  // Work conservation: bytes accounted on each resource match the volumes
  // of the flows that crossed it (once per traversal), and nothing finishes
  // before physics allows.
  for (const flow::ResourceId r : resources) {
    EXPECT_NEAR(fm.network().resource(r).bytes_served, expected_bytes[r],
                1e-6 * std::max(1.0, expected_bytes[r]) + 1e-3)
        << "resource " << r;
  }
  // The busiest resource cannot have delivered faster than its capacity.
  for (const flow::ResourceId r : resources) {
    const auto& res = fm.network().resource(r);
    if (res.busy_time > 0) {
      EXPECT_LE(res.bytes_served / res.busy_time, res.capacity * (1 + 1e-6))
          << "resource over-delivered";
    }
  }
  EXPECT_GE(finish, last_arrival);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTimedProperty, ::testing::Range(0, 30));

// ---------------------------------------------------------------- engine

class EngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(EngineProperty, RandomDagsRespectBoundsOnAllPlatforms) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  wf::RandomDagConfig cfg;
  cfg.levels = static_cast<int>(rng.uniform_int(1, 5));
  cfg.max_width = 6;
  cfg.max_requested_cores = 4;
  const wf::Workflow w = wf::make_random_layered(cfg, rng);

  for (const auto system :
       {testbed::System::CoriPrivate, testbed::System::CoriStriped,
        testbed::System::Summit}) {
    const platform::PlatformSpec plat = testbed::paper_platform(system, 2);
    exec::ExecutionConfig ecfg;
    ecfg.placement = exec::all_bb_policy();
    ecfg.stage_in_mode = exec::StageInMode::Instant;
    exec::Simulation sim(plat, w, ecfg);
    const exec::Result r = sim.run();

    // All tasks ran, with consistent per-task phases.
    ASSERT_EQ(r.tasks.size(), w.task_count());
    double compute_lower_bound = 0.0;  // critical path of compute times
    std::map<std::string, double> finish_at_least;
    for (const std::string& name : w.topological_order()) {
      const wf::Task& t = w.task(name);
      const double t_seq = t.flops / plat.hosts[0].core_speed;
      const double compute =
          model::amdahl_time(t_seq, r.tasks.at(name).cores, t.alpha);
      double start = 0.0;
      for (const std::string& p : w.parents(name)) {
        start = std::max(start, finish_at_least[p]);
      }
      finish_at_least[name] = start + compute;
      compute_lower_bound = std::max(compute_lower_bound, finish_at_least[name]);

      const exec::TaskRecord& rec = r.tasks.at(name);
      EXPECT_LE(rec.t_ready, rec.t_start + 1e-9) << name;
      EXPECT_LE(rec.t_start, rec.t_reads_done + 1e-9) << name;
      EXPECT_LE(rec.t_reads_done, rec.t_compute_done + 1e-9) << name;
      EXPECT_LE(rec.t_compute_done, rec.t_end + 1e-9) << name;
      EXPECT_GE(rec.compute_time(), compute - 1e-6) << name;
    }
    EXPECT_GE(r.makespan, compute_lower_bound - 1e-6) << to_string(system);

    // Parents complete before children start.
    for (const std::string& name : w.task_names()) {
      for (const std::string& p : w.parents(name)) {
        EXPECT_LE(r.tasks.at(p).t_end, r.tasks.at(name).t_start + 1e-9)
            << p << " -> " << name;
      }
    }
    sim.fabric().flows().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty, ::testing::Range(0, 12));

TEST(EngineDeterminism, IdenticalRunsProduceIdenticalResults) {
  util::Rng rng(77);
  const wf::Workflow w = wf::make_random_layered({}, rng);
  auto run = [&w] {
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    exec::Simulation sim(testbed::paper_platform(testbed::System::CoriPrivate, 2), w,
                         cfg);
    return sim.run();
  };
  const exec::Result a = run();
  const exec::Result b = run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (const auto& [name, rec] : a.tasks) {
    EXPECT_DOUBLE_EQ(rec.t_start, b.tasks.at(name).t_start) << name;
    EXPECT_DOUBLE_EQ(rec.t_end, b.tasks.at(name).t_end) << name;
    EXPECT_EQ(rec.host, b.tasks.at(name).host) << name;
  }
}

// --------------------------------------------------------------- storage

class StorageProperty : public ::testing::TestWithParam<int> {};

TEST_P(StorageProperty, OperationTimeNeverBeatsBottleneck) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  for (const auto system :
       {testbed::System::CoriPrivate, testbed::System::CoriStriped,
        testbed::System::Summit}) {
    platform::Fabric fabric(testbed::paper_platform(system));
    storage::StorageSystem sys(fabric);
    storage::StorageService* bb = sys.burst_buffer();
    ASSERT_NE(bb, nullptr);

    const double size = rng.uniform(1e6, 1e9);
    double write_done = -1;
    bb->write({"f", size}, 0, [&] { write_done = fabric.engine().now(); });
    fabric.engine().run();
    ASSERT_GT(write_done, 0.0);
    const auto& spec = bb->spec();
    // Aggregate write bandwidth bound across BB nodes.
    const double peak = spec.disk.write_bw * spec.num_nodes;
    EXPECT_GE(write_done, size / peak - 1e-6);

    const double start = fabric.engine().now();
    double read_done = -1;
    bb->read({"f", size}, 0, [&] { read_done = fabric.engine().now(); });
    fabric.engine().run();
    EXPECT_GE(read_done - start, size / (spec.disk.read_bw * spec.num_nodes) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageProperty, ::testing::Range(0, 10));

// ------------------------------------------------ incremental solver churn

TEST(IncrementalSolverProperty, MatchesFullResolveAndOracleUnderChurn) {
  // 500 fuzz-sampled mutation sequences (add_flow / remove_flow of
  // arbitrary live flows / set_capacity mid-run); after every mutation the
  // incremental solve must agree with an immediate full re-solve AND the
  // long-double oracle within 1e-6. Arbitrary-victim removals force the
  // free-list to recycle ids under younger survivors -- the recycled-id
  // churn that broke creation ordering.
  const fuzz::SolverCampaignResult result =
      fuzz::run_solver_churn_campaign(20260809, 500, 1e-6);
  EXPECT_EQ(result.iterations_run, 500);
  EXPECT_TRUE(result.clean()) << result.first_divergence;
}

}  // namespace
}  // namespace bbsim
