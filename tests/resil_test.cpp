// Unit + property tests for the resilience layer: fault/checkpoint spec
// parsing, the seeded fault sampler, and (below) the integrated
// crash/checkpoint/recovery machinery in exec::Simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "exec/engine.hpp"
#include "exec/placement.hpp"
#include "platform/presets.hpp"
#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::resil {
namespace {

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpec, EmptyTextParsesToDisabledSpec) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_FALSE(spec.enabled());
  EXPECT_DOUBLE_EQ(spec.node_mtbf, 0.0);
}

TEST(FaultSpec, ParsesKeyValueList) {
  const FaultSpec spec = FaultSpec::parse(
      "node_mtbf=3600,node_repair=60,node_shape=0.7,seed=42,"
      "bb_mtbf=7200,bb_degrade=0.25,bb_duration=90,"
      "pfs_mtbf=1800,pfs_brownout=0.5,pfs_duration=30,horizon=1e5");
  EXPECT_TRUE(spec.enabled());
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.node_mtbf, 3600.0);
  EXPECT_DOUBLE_EQ(spec.node_repair, 60.0);
  EXPECT_DOUBLE_EQ(spec.node_shape, 0.7);
  EXPECT_DOUBLE_EQ(spec.bb_degrade, 0.25);
  EXPECT_DOUBLE_EQ(spec.pfs_duration, 30.0);
  EXPECT_DOUBLE_EQ(spec.horizon, 1e5);
}

TEST(FaultSpec, WhitespaceAroundEntriesIsTolerated) {
  const FaultSpec spec = FaultSpec::parse(" node_mtbf = 100 , seed = 3 ");
  EXPECT_DOUBLE_EQ(spec.node_mtbf, 100.0);
  EXPECT_EQ(spec.seed, 3u);
}

TEST(FaultSpec, UnknownKeyThrows) {
  EXPECT_THROW(FaultSpec::parse("bogus=1"), util::ConfigError);
}

TEST(FaultSpec, BadNumberThrows) {
  EXPECT_THROW(FaultSpec::parse("node_mtbf=abc"), util::ConfigError);
  EXPECT_THROW(FaultSpec::parse("node_mtbf"), util::ConfigError);
}

TEST(FaultSpec, OutOfRangeValuesThrow) {
  EXPECT_THROW(FaultSpec::parse("node_mtbf=-1"), util::ConfigError);
  EXPECT_THROW(FaultSpec::parse("node_shape=0"), util::ConfigError);
  EXPECT_THROW(FaultSpec::parse("bb_degrade=0"), util::ConfigError);
  EXPECT_THROW(FaultSpec::parse("bb_degrade=1.5"), util::ConfigError);
  EXPECT_THROW(FaultSpec::parse("pfs_brownout=-0.1"), util::ConfigError);
}

TEST(FaultSpec, JsonRoundTrip) {
  const FaultSpec spec =
      FaultSpec::parse("node_mtbf=3600,node_repair=45,seed=9,bb_mtbf=100");
  const FaultSpec back = FaultSpec::from_json(spec.to_json());
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_DOUBLE_EQ(back.node_mtbf, spec.node_mtbf);
  EXPECT_DOUBLE_EQ(back.node_repair, spec.node_repair);
  EXPECT_DOUBLE_EQ(back.bb_mtbf, spec.bb_mtbf);
  EXPECT_DOUBLE_EQ(back.bb_degrade, spec.bb_degrade);
}

// -------------------------------------------------------- CheckpointSpec

TEST(CheckpointSpec, EmptyTextIsDisabled) {
  const CheckpointSpec spec = CheckpointSpec::parse("");
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.mode, CheckpointSpec::Mode::None);
}

TEST(CheckpointSpec, IntervalModeWithSizes) {
  const CheckpointSpec spec =
      CheckpointSpec::parse("interval=600,bytes=2G,restart=30,min_compute=10");
  EXPECT_EQ(spec.mode, CheckpointSpec::Mode::Interval);
  EXPECT_DOUBLE_EQ(spec.interval, 600.0);
  EXPECT_DOUBLE_EQ(spec.bytes, 2e9);
  EXPECT_DOUBLE_EQ(spec.restart_latency, 30.0);
  EXPECT_DOUBLE_EQ(spec.min_compute, 10.0);
}

TEST(CheckpointSpec, DalyMode) {
  const CheckpointSpec spec = CheckpointSpec::parse("daly,fraction=0.2");
  EXPECT_EQ(spec.mode, CheckpointSpec::Mode::Daly);
  EXPECT_DOUBLE_EQ(spec.fraction, 0.2);
}

TEST(CheckpointSpec, InvalidValuesThrow) {
  EXPECT_THROW(CheckpointSpec::parse("interval=0"), util::ConfigError);
  EXPECT_THROW(CheckpointSpec::parse("interval=-5"), util::ConfigError);
  EXPECT_THROW(CheckpointSpec::parse("daly,fraction=2"), util::ConfigError);
  EXPECT_THROW(CheckpointSpec::parse("nonsense"), util::ConfigError);
  EXPECT_THROW(CheckpointSpec::parse("daly,wat=1"), util::ConfigError);
}

TEST(CheckpointSpec, JsonRoundTrip) {
  const CheckpointSpec spec = CheckpointSpec::parse("interval=120,bytes=1M,restart=5");
  const CheckpointSpec back = CheckpointSpec::from_json(spec.to_json());
  EXPECT_EQ(back.mode, CheckpointSpec::Mode::Interval);
  EXPECT_DOUBLE_EQ(back.interval, 120.0);
  EXPECT_DOUBLE_EQ(back.bytes, 1e6);
  EXPECT_DOUBLE_EQ(back.restart_latency, 5.0);
}

// ------------------------------------------------------------ FaultModel

TEST(FaultModel, SameSeedSameGapSequence) {
  const FaultSpec spec = FaultSpec::parse("node_mtbf=1000,bb_mtbf=500,seed=7");
  FaultModel a(spec, 4);
  FaultModel b(spec, 4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.next_node_gap(2), b.next_node_gap(2));
    EXPECT_DOUBLE_EQ(a.next_bb_gap(), b.next_bb_gap());
  }
}

TEST(FaultModel, HostStreamsAreIndependent) {
  // Draining host 0's stream must not perturb host 1's draws.
  const FaultSpec spec = FaultSpec::parse("node_mtbf=1000,seed=7");
  FaultModel a(spec, 2);
  FaultModel b(spec, 2);
  for (int i = 0; i < 20; ++i) (void)a.next_node_gap(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.next_node_gap(1), b.next_node_gap(1));
  }
}

TEST(FaultModel, GapsArePositiveAndMeanRoughlyMtbf) {
  const FaultSpec spec = FaultSpec::parse("node_mtbf=100,seed=11");
  FaultModel m(spec, 1);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double g = m.next_node_gap(0);
    ASSERT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 100.0, 10.0);  // SE ~ 100/sqrt(4000) ~ 1.6
}

TEST(FaultModel, WeibullShapeChangesDistributionNotDeterminism) {
  const FaultSpec bursty = FaultSpec::parse("node_mtbf=100,node_shape=0.5,seed=3");
  FaultModel a(bursty, 1);
  FaultModel b(bursty, 1);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double g = a.next_node_gap(0);
    EXPECT_DOUBLE_EQ(g, b.next_node_gap(0));
    sum += g;
  }
  // weibull_mean keeps the target mean regardless of shape.
  EXPECT_NEAR(sum / 2000, 100.0, 20.0);
}

// -------------------------------------------------------------- RunStats

TEST(RunStats, ReportSchemaAndWasteDecomposition) {
  RunStats stats;
  stats.node_crashes = 2;
  stats.lost_core_seconds = 10.0;
  stats.checkpoint_core_seconds = 3.0;
  stats.rework_core_seconds = 7.0;
  stats.tasks["t0"].attempts = 2;
  stats.tasks["t0"].kills = 1;
  stats.tasks["quiet"].attempts = 1;  // undisturbed: omitted from the report
  const json::Value doc = stats.to_json();
  EXPECT_EQ(doc.get_string("schema", ""), "bbsim.resil.v1");
  EXPECT_DOUBLE_EQ(doc.get_number("wasted_core_seconds", -1), 20.0);
  EXPECT_TRUE(doc.at("tasks").contains("t0"));
  EXPECT_FALSE(doc.at("tasks").contains("quiet"));
}

// =====================================================================
// Integrated crash / checkpoint / recovery machinery (exec::Simulation).
// =====================================================================

using exec::ExecutionConfig;
using exec::Result;
using exec::Simulation;
using exec::TraceEventKind;
using platform::BBMode;
using platform::PlatformSpec;
using platform::StorageKind;

/// Same tiny platform the exec tests hand-compute against: hosts x 4 cores
/// at 1 Gflop/s/core; PFS 100 B/s disk + 1000 B/s link; BB 950 B/s disk +
/// 800 B/s link; no latency or caps.
PlatformSpec tiny(StorageKind bb_kind = StorageKind::SharedBB,
                  int hosts = 1, int cores = 4) {
  PlatformSpec p;
  p.name = "tiny";
  for (int i = 0; i < hosts; ++i) {
    p.hosts.push_back({"h" + std::to_string(i), cores, 1e9, platform::kUnlimited});
  }
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = bb_kind;
  bb.mode = BBMode::Private;
  bb.disk = {950.0, 950.0, platform::kUnlimited};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

/// One 4-core task of `seconds` seconds pure compute, no files.
wf::Workflow compute_only(double seconds) {
  wf::Workflow w;
  w.add_task({"t", "compute", seconds * 4e9, 0.0, 4, {}, {}});
  return w;
}

int count_kind(const Result& r, TraceEventKind kind) {
  int n = 0;
  for (const auto& ev : r.trace) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

TEST(ResilExec, DisabledSpecsLeaveResultByteIdentical) {
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_file({"mid", 400.0});
  w.add_task({"a", "compute", 4e9, 0, 4, {"in"}, {"mid"}});
  w.add_task({"b", "compute", 8e9, 0, 4, {"mid"}, {}});

  ExecutionConfig base;
  base.audit = true;
  base.collect_timeline = true;
  const Result r0 = Simulation(tiny(), w, base).run();

  ExecutionConfig with_specs = base;
  with_specs.faults = FaultSpec::parse("");         // disabled
  with_specs.checkpoint = CheckpointSpec::parse("");  // disabled
  const Result r1 = Simulation(tiny(), w, with_specs).run();

  EXPECT_EQ(r0.resil_stats, nullptr);
  EXPECT_EQ(r1.resil_stats, nullptr);
  EXPECT_EQ(r0.to_json().dump(), r1.to_json().dump());
}

TEST(ResilExec, ArmedButQuiescentFaultProcessKeepsScheduleExact) {
  // A horizon shorter than the first sampled gap means no fault is ever
  // scheduled: the resil layer is live, yet the schedule must not move.
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_task({"t", "compute", 4e9, 0, 4, {"in"}, {}});

  ExecutionConfig base;
  base.audit = true;
  const Result r0 = Simulation(tiny(), w, base).run();

  ExecutionConfig armed = base;
  armed.faults = FaultSpec::parse("node_mtbf=1000,horizon=1e-9,seed=5");
  const Result r1 = Simulation(tiny(), w, armed).run();

  ASSERT_NE(r1.resil_stats, nullptr);
  EXPECT_EQ(r1.resil_stats->node_crashes, 0);
  EXPECT_DOUBLE_EQ(r1.resil_stats->wasted_core_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(r0.makespan, r1.makespan);
  ASSERT_EQ(r0.tasks.size(), r1.tasks.size());
  for (const auto& [name, rec] : r0.tasks) {
    const auto& rec1 = r1.tasks.at(name);
    EXPECT_DOUBLE_EQ(rec.t_start, rec1.t_start);
    EXPECT_DOUBLE_EQ(rec.t_end, rec1.t_end);
    EXPECT_DOUBLE_EQ(rec.bytes_read, rec1.bytes_read);
  }
  EXPECT_EQ(r0.audit_violations, 0u);
  EXPECT_EQ(r1.audit_violations, 0u);
  // The report section exists and carries the schema marker.
  EXPECT_EQ(r1.to_json().at("resil").get_string("schema", ""), "bbsim.resil.v1");
}

TEST(ResilExec, CrashMidComputeRestartsFromZero) {
  // 100 s pure compute on one host. Find a seed whose first crash lands
  // mid-task and whose second crash lands after the re-run finishes, then
  // hand-compute the whole schedule:
  //   crash at g0, repair at g0+30, re-run 100 s -> makespan g0+130,
  //   lost work = 4 cores * g0.
  double g0 = 0.0;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 200 && seed == 0; ++s) {
    FaultModel probe(FaultSpec::parse("node_mtbf=60,seed=" + std::to_string(s)), 1);
    const double a = probe.next_node_gap(0);
    const double b = probe.next_node_gap(0);
    if (a > 10.0 && a < 90.0 && b > 110.0) {
      seed = s;
      g0 = a;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed with a usable crash schedule in 200 tries";

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.faults = FaultSpec::parse("node_mtbf=60,node_repair=30,seed=" +
                                std::to_string(seed));
  const Result r = Simulation(tiny(), compute_only(100.0), cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  const RunStats& st = *r.resil_stats;
  EXPECT_EQ(st.node_crashes, 1);
  EXPECT_EQ(st.node_repairs, 1);
  EXPECT_EQ(st.tasks_killed, 1);
  EXPECT_EQ(st.restarts, 1);
  EXPECT_EQ(st.tasks.at("t").attempts, 2);
  EXPECT_EQ(st.tasks.at("t").kills, 1);
  EXPECT_NEAR(st.lost_core_seconds, 4.0 * g0, 1e-6);
  EXPECT_NEAR(r.makespan, g0 + 30.0 + 100.0, 1e-9);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(count_kind(r, TraceEventKind::NodeCrash), 1);
  EXPECT_EQ(count_kind(r, TraceEventKind::TaskKilled), 1);
  EXPECT_EQ(count_kind(r, TraceEventKind::TaskRestart), 1);
}

TEST(ResilExec, IntervalCheckpointOverheadExact) {
  // 100 s compute, checkpoint every 10 s, 800 B images to the BB.
  // Each image writes at min(link 800, disk 950) = 800 B/s -> 1 s stall;
  // the final 10 s segment does not checkpoint (remaining == interval),
  // so 9 checkpoints and makespan 100 + 9 = 109 s. Each drain BB -> PFS
  // runs at the PFS disk's 100 B/s -> 8 s, asynchronously inside the next
  // 10 s segment, so all 9 images become durable.
  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.checkpoint = CheckpointSpec::parse("interval=10,bytes=800");
  const Result r = Simulation(tiny(), compute_only(100.0), cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  const RunStats& st = *r.resil_stats;
  EXPECT_EQ(st.checkpoints_taken, 9);
  EXPECT_NEAR(st.checkpoint_bytes_written, 9 * 800.0, 1e-6);
  EXPECT_NEAR(st.checkpoint_bytes_drained, 9 * 800.0, 1e-6);
  // Task completion discards the final image's BB and PFS copies.
  EXPECT_NEAR(st.checkpoint_bytes_discarded, 1600.0, 1e-6);
  EXPECT_NEAR(st.checkpoint_core_seconds, 4.0 * 9.0, 1e-6);
  EXPECT_NEAR(st.wasted_core_seconds(), 36.0, 1e-6);
  EXPECT_NEAR(r.makespan, 109.0, 1e-9);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(count_kind(r, TraceEventKind::Checkpoint), 9);
  EXPECT_EQ(count_kind(r, TraceEventKind::CheckpointDrained), 9);
}

TEST(ResilExec, DalyIntervalFollowsFormula) {
  // Young/Daly: tau = sqrt(2 * C * MTBF) with C = bytes / BB disk write bw.
  // The horizon keeps the armed fault process from ever firing, so the
  // checkpoint cadence is the only resil effect.
  const double bytes = 800.0;
  const double mtbf = 50.0;
  const double tau = std::sqrt(2.0 * (bytes / 950.0) * mtbf);
  int expected = 0;
  double remaining = 100.0;
  while (remaining > tau) {
    remaining -= tau;
    ++expected;
  }
  ASSERT_GT(expected, 0);

  ExecutionConfig cfg;
  cfg.faults = FaultSpec::parse("node_mtbf=50,horizon=1e-9,seed=2");
  cfg.checkpoint = CheckpointSpec::parse("daly,bytes=800");
  const Result r = Simulation(tiny(), compute_only(100.0), cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  EXPECT_EQ(r.resil_stats->checkpoints_taken, expected);
  // Each 800 B image stalls compute for 1 s on the 800 B/s BB path.
  EXPECT_NEAR(r.makespan, 100.0 + expected * 1.0, 1e-6);
}

TEST(ResilExec, CrashWithDrainedCheckpointResumes) {
  // Same crash scenario as CrashMidComputeRestartsFromZero, but with
  // 10 s interval checkpoints: once the first image drains (t = 19),
  // a crash can only lose work past the last durable checkpoint.
  double g0 = 0.0;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 400 && seed == 0; ++s) {
    FaultModel probe(FaultSpec::parse("node_mtbf=60,seed=" + std::to_string(s)), 1);
    const double a = probe.next_node_gap(0);
    const double b = probe.next_node_gap(0);
    if (a > 30.0 && a < 85.0 && b > 200.0) {
      seed = s;
      g0 = a;
    }
  }
  ASSERT_NE(seed, 0u);

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.faults = FaultSpec::parse("node_mtbf=60,node_repair=30,seed=" +
                                std::to_string(seed));
  cfg.checkpoint = CheckpointSpec::parse("interval=10,bytes=800,restart=2");
  const Result r = Simulation(tiny(), compute_only(100.0), cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  const RunStats& st = *r.resil_stats;
  EXPECT_EQ(st.tasks.at("t").kills, 1);
  EXPECT_EQ(st.tasks.at("t").attempts, 2);
  EXPECT_GE(st.checkpoint_bytes_drained, 800.0);
  // At g0 > 30 at least the first image (10 s of progress) was durable, so
  // strictly less than the whole attempt is lost.
  EXPECT_LE(st.lost_core_seconds, 4.0 * (g0 - 10.0) + 1e-6);
  EXPECT_GT(st.lost_core_seconds, 0.0);
  // The restarted attempt resumes from the checkpoint: at most 90 s of
  // compute plus at most 9 more 1 s checkpoint stalls.
  const auto& rec = r.tasks.at("t");
  EXPECT_LE(rec.t_compute_done - rec.t_reads_done, 99.0 + 1e-6);
  EXPECT_EQ(r.audit_violations, 0u);
}

TEST(ResilExec, NodeLocalCrashRollsBackDoneProducer) {
  // p writes a BB-only intermediate; c1 consumes it and finishes; c2 is
  // mid-read when the node dies. The node-local replica dies with the
  // node, so p (already done) must roll back and re-produce it -- and the
  // attempt-aware precedence audit must accept c1 having started before
  // p's *re-run* finished.
  wf::Workflow w;
  w.add_file({"f", 4000.0});
  w.add_task({"p", "compute", 4e10, 0, 4, {}, {"f"}});
  w.add_task({"c1", "compute", 4e9, 0, 4, {"f"}, {}});
  w.add_task({"c2", "compute", 2e11, 0, 4, {"f"}, {}});

  ExecutionConfig base;
  base.audit = true;
  const Result twin = Simulation(tiny(StorageKind::NodeLocalBB), w, base).run();
  ASSERT_EQ(twin.audit_violations, 0u);
  const double rd_start = twin.tasks.at("c2").t_start;
  const double rd_end = twin.tasks.at("c2").t_reads_done;
  ASSERT_GT(rd_end, rd_start + 1.0);

  double g0 = 0.0;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 5000 && seed == 0; ++s) {
    FaultModel probe(FaultSpec::parse("node_mtbf=60,seed=" + std::to_string(s)), 1);
    const double a = probe.next_node_gap(0);
    const double b = probe.next_node_gap(0);
    // The re-run needs ~100 s after the repair; b > 110 keeps the second
    // crash clear of it.
    if (a > rd_start + 0.5 && a < rd_end - 0.5 && b > 110.0) {
      seed = s;
      g0 = a;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed crashes inside c2's read window";

  ExecutionConfig cfg = base;
  cfg.faults = FaultSpec::parse("node_mtbf=60,node_repair=30,seed=" +
                                std::to_string(seed));
  const Result r = Simulation(tiny(StorageKind::NodeLocalBB), w, cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  const RunStats& st = *r.resil_stats;
  EXPECT_EQ(st.rollbacks, 1);
  EXPECT_GE(st.files_invalidated, 1);
  EXPECT_EQ(st.tasks.at("p").attempts, 2);
  EXPECT_EQ(st.tasks.at("c1").attempts, 1);  // its result survived
  EXPECT_GE(st.tasks.at("c2").kills, 1);
  // p's first run re-executes: 10 s of 4-core compute becomes rework.
  EXPECT_NEAR(st.rework_core_seconds, 40.0, 1e-6);
  EXPECT_GT(r.makespan, twin.makespan);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_GE(count_kind(r, TraceEventKind::Rollback), 1);
  (void)g0;
}

TEST(ResilExec, BbDegradationWindowSlowsStagedRead) {
  // Input staged to the BB reads 8000 B at 800 B/s. A 0.5x degradation at
  // t = g rescales the remaining bytes to 400 B/s:
  //   read ends at g + (8000 - 800 g) / 400 = 20 - g, compute 1 s,
  //   makespan 21 - g. The window clears after the run without touching
  //   the records.
  wf::Workflow w;
  w.add_file({"in", 8000.0});
  w.add_task({"t", "compute", 4e9, 0, 4, {"in"}, {}});

  double g = 0.0;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 500 && seed == 0; ++s) {
    FaultModel probe(FaultSpec::parse("bb_mtbf=3,seed=" + std::to_string(s)), 1);
    const double a = probe.next_bb_gap();
    if (a > 1.0 && a < 8.0) {
      seed = s;
      g = a;
    }
  }
  ASSERT_NE(seed, 0u);

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.stage_in_mode = exec::StageInMode::Instant;
  cfg.faults = FaultSpec::parse("bb_mtbf=3,bb_degrade=0.5,bb_duration=60,seed=" +
                                std::to_string(seed));
  const Result r = Simulation(tiny(), w, cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  EXPECT_EQ(r.resil_stats->bb_degradations, 1);
  EXPECT_NEAR(r.makespan, 21.0 - g, 1e-6);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(count_kind(r, TraceEventKind::BbDegraded), 1);
  EXPECT_EQ(count_kind(r, TraceEventKind::FaultCleared), 1);
}

TEST(ResilExec, PfsBrownoutSlowsRead) {
  // All-PFS run: 1000 B read at 100 B/s. A 0.5x brownout at t = g leaves
  // (1000 - 100 g) bytes at 50 B/s: read ends at 20 - g, makespan 21 - g.
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_task({"t", "compute", 4e9, 0, 4, {"in"}, {}});

  double g = 0.0;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 500 && seed == 0; ++s) {
    FaultModel probe(FaultSpec::parse("pfs_mtbf=3,seed=" + std::to_string(s)), 1);
    const double a = probe.next_pfs_gap();
    if (a > 1.0 && a < 8.0) {
      seed = s;
      g = a;
    }
  }
  ASSERT_NE(seed, 0u);

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.placement = exec::all_pfs_policy();
  cfg.faults = FaultSpec::parse(
      "pfs_mtbf=3,pfs_brownout=0.5,pfs_duration=60,seed=" + std::to_string(seed));
  const Result r = Simulation(tiny(), w, cfg).run();

  ASSERT_NE(r.resil_stats, nullptr);
  EXPECT_EQ(r.resil_stats->pfs_brownouts, 1);
  EXPECT_NEAR(r.makespan, 21.0 - g, 1e-6);
  EXPECT_EQ(r.audit_violations, 0u);
}

TEST(ResilExec, FaultyRunIsReproducibleEndToEnd) {
  wf::Workflow w;
  w.add_file({"f", 4000.0});
  w.add_task({"p", "compute", 4e10, 0, 4, {}, {"f"}});
  w.add_task({"c1", "compute", 4e9, 0, 4, {"f"}, {}});
  w.add_task({"c2", "compute", 2e11, 0, 4, {"f"}, {}});

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.faults = FaultSpec::parse("node_mtbf=40,node_repair=15,seed=11");
  cfg.checkpoint = CheckpointSpec::parse("interval=8,fraction=0.2,restart=1");

  const Result a = Simulation(tiny(StorageKind::NodeLocalBB), w, cfg).run();
  const Result b = Simulation(tiny(StorageKind::NodeLocalBB), w, cfg).run();
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  ASSERT_NE(a.resil_stats, nullptr);
  ASSERT_NE(b.resil_stats, nullptr);
  EXPECT_EQ(a.resil_stats->to_json().dump(), b.resil_stats->to_json().dump());
  EXPECT_EQ(a.audit_violations, 0u);
}

// =====================================================================
// Property sweep: 200 seeded fault/recovery scenarios.
// =====================================================================

/// Small random DAGs sized for the tiny platform: transfers of a few
/// seconds, compute of a few seconds, so fault windows interleave with
/// every phase.
wf::RandomDagConfig small_dag_config() {
  wf::RandomDagConfig cfg;
  cfg.levels = 3;
  cfg.min_width = 2;
  cfg.max_width = 3;
  cfg.min_file_size = 200.0;
  cfg.max_file_size = 2000.0;
  cfg.min_seq_seconds = 1.0;
  cfg.max_seq_seconds = 10.0;
  cfg.reference_core_speed = 1e9;
  cfg.max_requested_cores = 4;
  return cfg;
}

// --- empty fault process => bitwise-identical run, zero waste ----------

class ResilPropertyIdentity : public ::testing::TestWithParam<int> {};

TEST_P(ResilPropertyIdentity, EmptyFaultProcessChangesNothing) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  const wf::Workflow w = wf::make_random_layered(small_dag_config(), rng);

  ExecutionConfig base;
  base.audit = true;
  const Result r0 = Simulation(tiny(StorageKind::SharedBB, 2), w, base).run();

  // Disabled specs: the whole serialized result must match byte for byte.
  ExecutionConfig off = base;
  off.faults = FaultSpec::parse("");
  off.checkpoint = CheckpointSpec::parse("");
  const Result r1 = Simulation(tiny(StorageKind::SharedBB, 2), w, off).run();
  EXPECT_EQ(r0.to_json().dump(), r1.to_json().dump());
  EXPECT_EQ(r1.resil_stats, nullptr);

  // Armed-but-quiescent process (horizon below the first gap): same
  // makespan and schedule, zero waste.
  ExecutionConfig armed = base;
  armed.faults = FaultSpec::parse("node_mtbf=500,horizon=1e-9,seed=" +
                                  std::to_string(GetParam() + 1));
  const Result r2 = Simulation(tiny(StorageKind::SharedBB, 2), w, armed).run();
  ASSERT_NE(r2.resil_stats, nullptr);
  EXPECT_DOUBLE_EQ(r2.resil_stats->wasted_core_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(r0.makespan, r2.makespan);
  for (const auto& [name, rec] : r0.tasks) {
    EXPECT_DOUBLE_EQ(rec.t_start, r2.tasks.at(name).t_start);
    EXPECT_DOUBLE_EQ(rec.t_end, r2.tasks.at(name).t_end);
  }
  EXPECT_EQ(r0.audit_violations, 0u);
  EXPECT_EQ(r2.audit_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilPropertyIdentity, ::testing::Range(0, 50));

// --- random faults + recovery keep every ledger clean ------------------

class ResilPropertyRecovery : public ::testing::TestWithParam<int> {};

TEST_P(ResilPropertyRecovery, AuditCleanWithConsistentAccounting) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) + 7000);
  const auto shape = static_cast<wf::DagShape>(seed % 5);
  const wf::Workflow w = wf::make_shaped_dag(shape, small_dag_config(), rng);

  // Random fault cocktail. The horizon guarantees the run eventually sees
  // a fault-free tail and terminates.
  std::string faults = "seed=" + std::to_string(seed + 1) +
                       ",node_mtbf=" + std::to_string(rng.uniform(50.0, 300.0)) +
                       ",node_repair=" + std::to_string(rng.uniform(5.0, 30.0)) +
                       ",horizon=" + std::to_string(rng.uniform(100.0, 400.0));
  if (rng.chance(0.5)) {
    faults += ",bb_mtbf=" + std::to_string(rng.uniform(50.0, 400.0)) +
              ",bb_degrade=" + std::to_string(rng.uniform(0.2, 0.9)) +
              ",bb_duration=" + std::to_string(rng.uniform(5.0, 60.0));
  }
  if (rng.chance(0.5)) {
    faults += ",pfs_mtbf=" + std::to_string(rng.uniform(50.0, 400.0)) +
              ",pfs_brownout=" + std::to_string(rng.uniform(0.2, 0.9)) +
              ",pfs_duration=" + std::to_string(rng.uniform(5.0, 60.0));
  }

  ExecutionConfig cfg;
  cfg.audit = true;
  cfg.faults = FaultSpec::parse(faults);
  switch (seed % 3) {
    case 0:
      break;  // no checkpointing: recovery restarts from zero
    case 1:
      cfg.checkpoint = CheckpointSpec::parse(
          "interval=" + std::to_string(rng.uniform(2.0, 20.0)) +
          ",fraction=0.2,restart=" + std::to_string(rng.uniform(0.0, 3.0)));
      break;
    default:
      cfg.checkpoint = CheckpointSpec::parse(
          "daly,bytes=" + std::to_string(rng.uniform(100.0, 4000.0)));
      break;
  }

  const auto kind = (seed % 2 == 0) ? StorageKind::SharedBB : StorageKind::NodeLocalBB;
  const Result r = Simulation(tiny(kind, 2), w, cfg).run();

  // Every task completed and the full invariant audit is clean -- schedule
  // legality, attempt-aware precedence, core budgets, byte conservation.
  EXPECT_EQ(r.tasks.size(), w.task_names().size());
  EXPECT_EQ(r.audit_violations, 0u) << "faults: " << faults;

  ASSERT_NE(r.resil_stats, nullptr);
  const RunStats& st = *r.resil_stats;
  EXPECT_GE(st.lost_core_seconds, 0.0);
  EXPECT_GE(st.checkpoint_core_seconds, 0.0);
  EXPECT_GE(st.rework_core_seconds, 0.0);
  EXPECT_NEAR(st.wasted_core_seconds(),
              st.lost_core_seconds + st.checkpoint_core_seconds +
                  st.rework_core_seconds,
              1e-9);
  EXPECT_LE(st.checkpoint_bytes_drained, st.checkpoint_bytes_written + 1e-6);
  EXPECT_GE(st.checkpoint_bytes_discarded, 0.0);
  EXPECT_EQ(st.tasks_killed, count_kind(r, TraceEventKind::TaskKilled));
  int attempts_beyond_first = 0;
  for (const auto& [name, tr] : st.tasks) {
    EXPECT_GE(tr.attempts, 1) << name;
    EXPECT_GE(tr.kills, 0) << name;
    attempts_beyond_first += tr.attempts - 1;
  }
  EXPECT_EQ(st.restarts, attempts_beyond_first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilPropertyRecovery, ::testing::Range(0, 100));

// --- fault-rate ladder: more faults never help -------------------------

TEST(ResilProperty, FaultRateLadderNeverShortensChains) {
  // Chains on a single host execute strictly serially, so every crash can
  // only delay completion: each faulty makespan dominates the fault-free
  // one, and the aggregate over 50 seeds grows with the fault rate.
  const double rates_mtbf[] = {0.0, 200.0, 50.0, 12.5};
  double total[4] = {0.0, 0.0, 0.0, 0.0};
  for (int seed = 0; seed < 50; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 4000);
    const wf::Workflow w =
        wf::make_shaped_dag(wf::DagShape::Chain, small_dag_config(), rng);
    double baseline = 0.0;
    for (int rung = 0; rung < 4; ++rung) {
      ExecutionConfig cfg;
      if (rates_mtbf[rung] > 0.0) {
        cfg.faults = FaultSpec::parse(
            "node_mtbf=" + std::to_string(rates_mtbf[rung]) +
            ",node_repair=10,horizon=300,seed=" + std::to_string(seed + 1));
      }
      const Result r = Simulation(tiny(), w, cfg).run();
      total[rung] += r.makespan;
      if (rung == 0) {
        baseline = r.makespan;
      } else {
        EXPECT_GE(r.makespan, baseline - 1e-9)
            << "seed " << seed << " rung " << rung;
      }
    }
  }
  EXPECT_GE(total[1], total[0] - 1e-9);
  EXPECT_GE(total[2], total[1] - 1e-9);
  EXPECT_GE(total[3], total[2] - 1e-9);
}

}  // namespace
}  // namespace bbsim::resil
