// Tests for the multi-tenant batch layer: the bbsim.jobs.v1 stream model,
// the synthetic generator, the two-resource scheduler policies (golden
// schedules + the backfilling soundness property), payload resolution,
// fleet accounting, the bbsim.batch.v1 report and the bbsim_batch CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "batch/generator.hpp"
#include "batch/job.hpp"
#include "batch/payload.hpp"
#include "batch/report.hpp"
#include "batch/scheduler.hpp"
#include "cli/batch_cli.hpp"
#include "resil/fault.hpp"
#include "trace/timeline.hpp"
#include "util/error.hpp"

namespace bbsim {
namespace {

using batch::FleetResult;
using batch::Job;
using batch::JobStream;
using batch::MachineSpec;
using batch::Policy;
using batch::SchedulerConfig;
using util::ConfigError;

// ---------------------------------------------------------------- helpers

Job make_job(std::size_t id, double submit, int nodes, double estimate,
             double actual, double bb) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.walltime_estimate = estimate;
  j.walltime_actual = actual;
  j.bb_bytes = bb;
  return j;
}

/// Machine of 4 nodes + 100 B of burst buffer; three jobs submitted at
/// t = 0 whose schedule separates every policy:
///   j0: 2 nodes, 60 BB, runs [0, 100) everywhere
///   j1: 4 nodes, 60 BB -- must wait for the whole machine (shadow = 100)
///   j2: 2 nodes,  0 BB, 50 s -- backfillable beside j0, but FCFS holds it
///       behind j1
MachineSpec tiny_machine() {
  MachineSpec m;
  m.nodes = 4;
  m.bb_bytes = 100.0;
  return m;
}

JobStream tiny_stream() {
  JobStream s;
  s.name = "tiny";
  s.jobs = {make_job(0, 0.0, 2, 100.0, 100.0, 60.0),
            make_job(1, 0.0, 4, 100.0, 100.0, 60.0),
            make_job(2, 0.0, 2, 50.0, 50.0, 0.0)};
  return s;
}

FleetResult run_tiny(Policy policy, SchedulerConfig cfg = {}) {
  JobStream s = tiny_stream();
  batch::validate_stream(s);
  cfg.policy = policy;
  return batch::run_scheduler(tiny_machine(), s, cfg);
}

/// High-BB-contention synthetic stream with the given estimate regime.
batch::StreamConfig contended_config(double estimate_factor) {
  batch::StreamConfig cfg;
  cfg.job_count = 200;
  cfg.machine_nodes = 16;
  cfg.machine_bb_bytes = 1e12;
  cfg.load = 1.2;
  cfg.max_job_nodes = 8;
  cfg.bb_hog_fraction = 0.25;
  cfg.bb_hog_share = 0.6;
  cfg.estimate_factor = estimate_factor;
  cfg.seed = 11;
  return cfg;
}

// --------------------------------------------------------------- job model

TEST(BatchJob, PolicyNamesRoundTrip) {
  for (const Policy p : batch::kAllPolicies) {
    EXPECT_EQ(batch::policy_from_string(batch::to_string(p)), p);
  }
  EXPECT_EQ(batch::policy_from_string("plan_based"), Policy::PlanBased);
  EXPECT_THROW(batch::policy_from_string("lifo"), ConfigError);
}

TEST(BatchJob, BbAllocRoundsUpToWholeGranules) {
  MachineSpec m;
  m.bb_granule = 20.0;
  EXPECT_DOUBLE_EQ(m.bb_alloc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.bb_alloc(1.0), 20.0);
  EXPECT_DOUBLE_EQ(m.bb_alloc(20.0), 20.0);  // exact multiple: no waste
  EXPECT_DOUBLE_EQ(m.bb_alloc(20.5), 40.0);
  m.bb_granule = 0.0;  // byte-granular pool
  EXPECT_DOUBLE_EQ(m.bb_alloc(13.0), 13.0);
}

TEST(BatchJob, StreamJsonRoundTrips) {
  JobStream s;
  s.name = "roundtrip";
  s.seed = 99;
  s.jobs = {make_job(0, 0.0, 2, 100.0, 80.0, 5e9),
            make_job(1, 3.5, 1, 60.0, 0.0, 0.0)};
  s.jobs[1].payload.kind = batch::PayloadKind::FanOut;
  s.jobs[1].payload.tasks = 12;
  s.jobs[1].payload.width = 3;
  batch::validate_stream(s);

  const json::Value doc = batch::stream_to_json(s);
  EXPECT_EQ(doc.get_string("schema", ""), "bbsim.jobs.v1");
  JobStream back = batch::stream_from_json(doc);
  EXPECT_EQ(back.name, "roundtrip");
  EXPECT_EQ(back.seed, 99u);
  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[1].payload.kind, batch::PayloadKind::FanOut);
  EXPECT_EQ(back.jobs[1].payload.tasks, 12u);
  // Byte-identical re-serialisation: the format is a stable golden surface.
  EXPECT_EQ(batch::stream_to_json(back).dump(2), doc.dump(2));
}

TEST(BatchJob, ValidateStreamRejectsBrokenJobs) {
  {
    JobStream s;
    s.jobs = {make_job(0, 0, 1, 10, 10, 0), make_job(0, 1, 1, 10, 10, 0)};
    EXPECT_THROW(batch::validate_stream(s), ConfigError);  // duplicate id
  }
  {
    JobStream s;
    s.jobs = {make_job(0, 0, 0, 10, 10, 0)};
    EXPECT_THROW(batch::validate_stream(s), ConfigError);  // zero nodes
  }
  {
    JobStream s;
    s.jobs = {make_job(0, 0, 1, 0, 10, 0)};
    EXPECT_THROW(batch::validate_stream(s), ConfigError);  // no estimate
  }
  {
    JobStream s;  // no actual runtime and no payload to derive it from
    s.jobs = {make_job(0, 0, 1, 10, 0, 0)};
    EXPECT_THROW(batch::validate_stream(s), ConfigError);
  }
  {
    JobStream s;  // wider than the machine: could never start
    s.jobs = {make_job(0, 0, 8, 10, 10, 0)};
    EXPECT_THROW(batch::validate_stream(s, /*machine_nodes=*/4), ConfigError);
  }
  {
    JobStream s;  // more BB than the machine owns
    s.jobs = {make_job(0, 0, 1, 10, 10, 200.0)};
    EXPECT_THROW(batch::validate_stream(s, 4, /*machine_bb_bytes=*/100.0),
                 ConfigError);
  }
}

TEST(BatchJob, ValidateStreamSortsBySubmitThenId) {
  JobStream s;
  s.jobs = {make_job(2, 5.0, 1, 10, 10, 0), make_job(1, 5.0, 1, 10, 10, 0),
            make_job(0, 9.0, 1, 10, 10, 0)};
  batch::validate_stream(s);
  EXPECT_EQ(s.jobs[0].id, 1u);
  EXPECT_EQ(s.jobs[1].id, 2u);
  EXPECT_EQ(s.jobs[2].id, 0u);
  EXPECT_EQ(s.jobs[0].name, "job1");  // defaulted display name
}

// --------------------------------------------------------------- generator

TEST(BatchGenerator, IsDeterministic) {
  const batch::StreamConfig cfg = contended_config(3.0);
  const JobStream a = batch::make_stream(cfg);
  const JobStream b = batch::make_stream(cfg);
  EXPECT_EQ(batch::stream_to_json(a).dump(), batch::stream_to_json(b).dump());
  EXPECT_EQ(a.jobs.size(), cfg.job_count);
}

TEST(BatchGenerator, TargetsTheOfferedLoad) {
  batch::StreamConfig cfg;
  cfg.job_count = 400;
  cfg.machine_nodes = 32;
  cfg.load = 0.8;
  cfg.seed = 5;
  const JobStream s = batch::make_stream(cfg);
  double node_seconds = 0.0, last_submit = 0.0;
  for (const Job& j : s.jobs) {
    node_seconds += j.nodes * j.walltime_actual;
    last_submit = std::max(last_submit, j.submit);
    EXPECT_GE(j.walltime_estimate, j.walltime_actual);  // overshoot only
    EXPECT_LE(j.nodes, cfg.max_job_nodes);
  }
  ASSERT_GT(last_submit, 0.0);
  const double offered = node_seconds / (cfg.machine_nodes * last_submit);
  EXPECT_GT(offered, 0.8 * 0.7);  // within ~30% of the target...
  EXPECT_LT(offered, 0.8 * 1.4);  // ...for a 400-job Poisson stream
}

TEST(BatchGenerator, WeibullArrivalsDifferFromPoisson) {
  batch::StreamConfig cfg = contended_config(3.0);
  const JobStream poisson = batch::make_stream(cfg);
  cfg.arrivals = batch::ArrivalProcess::Weibull;
  const JobStream weibull = batch::make_stream(cfg);
  EXPECT_NE(batch::stream_to_json(poisson).dump(),
            batch::stream_to_json(weibull).dump());
}

TEST(BatchGenerator, RejectsNonsense) {
  batch::StreamConfig cfg;
  cfg.job_count = 0;
  EXPECT_THROW(batch::make_stream(cfg), ConfigError);
  cfg = batch::StreamConfig{};
  cfg.load = 0.0;
  EXPECT_THROW(batch::make_stream(cfg), ConfigError);
}

// --------------------------------------------------- golden schedules

TEST(BatchScheduler, GoldenFcfsHoldsEveryoneBehindTheHead) {
  const FleetResult r = run_tiny(Policy::Fcfs);
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(r.jobs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start, 200.0);  // never skips ahead
  EXPECT_DOUBLE_EQ(r.makespan, 250.0);
  EXPECT_EQ(r.backfilled_jobs, 0u);
}

TEST(BatchScheduler, GoldenEasyBackfillsBesideTheShadow) {
  const FleetResult r = run_tiny(Policy::Easy);
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(r.jobs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].start, 100.0);  // exactly its shadow promise
  EXPECT_DOUBLE_EQ(r.jobs[1].reserved_start, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start, 0.0);  // backfilled: ends before shadow
  EXPECT_TRUE(r.jobs[2].backfilled);
  EXPECT_DOUBLE_EQ(r.makespan, 200.0);
  EXPECT_EQ(r.backfilled_jobs, 1u);
}

TEST(BatchScheduler, GoldenConservativeReservesEveryQueuedJob) {
  const FleetResult r = run_tiny(Policy::Conservative);
  EXPECT_DOUBLE_EQ(r.jobs[1].start, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[1].reserved_start, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 200.0);
}

TEST(BatchScheduler, GoldenPlanMatchesTheObviousOptimum) {
  const FleetResult r = run_tiny(Policy::PlanBased);
  EXPECT_DOUBLE_EQ(r.jobs[1].start, 100.0);
  EXPECT_DOUBLE_EQ(r.jobs[2].start, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 200.0);
}

TEST(BatchScheduler, KillAtEstimateCapsTheRuntime) {
  JobStream s;
  s.jobs = {make_job(0, 0.0, 1, 50.0, 100.0, 0.0)};  // lies about its length
  batch::validate_stream(s);
  SchedulerConfig cfg;
  cfg.policy = Policy::Fcfs;
  const FleetResult r = batch::run_scheduler(tiny_machine(), s, cfg);
  EXPECT_DOUBLE_EQ(r.jobs[0].runtime, 50.0);  // min(actual, estimate)
  EXPECT_DOUBLE_EQ(r.jobs[0].end, 50.0);
  EXPECT_TRUE(r.jobs[0].killed);
  EXPECT_EQ(r.killed_jobs, 1u);
}

TEST(BatchScheduler, BbBlockedFractionCountsBbOnlyStalls) {
  // j1 always fits on nodes; only the BB dimension holds it back.
  JobStream s;
  s.jobs = {make_job(0, 0.0, 1, 100.0, 100.0, 80.0),
            make_job(1, 0.0, 1, 100.0, 100.0, 50.0)};
  batch::validate_stream(s);
  SchedulerConfig cfg;
  cfg.policy = Policy::Fcfs;
  const FleetResult r = batch::run_scheduler(tiny_machine(), s, cfg);
  EXPECT_DOUBLE_EQ(r.jobs[1].start, 100.0);
  EXPECT_DOUBLE_EQ(r.bb_blocked_seconds, 100.0);
  EXPECT_DOUBLE_EQ(r.bb_blocked_fraction(), 0.5);  // 100 s of a 200 s run
}

TEST(BatchScheduler, UtilizationAndFragmentationAccounting) {
  MachineSpec m = tiny_machine();
  m.bb_granule = 25.0;  // 60 B requests round up to 75 B allocations
  JobStream s;
  s.jobs = {make_job(0, 0.0, 2, 100.0, 100.0, 60.0)};
  batch::validate_stream(s);
  SchedulerConfig cfg;
  cfg.policy = Policy::Fcfs;
  const FleetResult r = batch::run_scheduler(m, s, cfg);
  EXPECT_DOUBLE_EQ(r.jobs[0].bb_alloc, 75.0);
  EXPECT_DOUBLE_EQ(r.node_utilization(m), 0.5);       // 2 of 4 nodes busy
  EXPECT_DOUBLE_EQ(r.bb_utilization(m), 0.75);        // 75 of 100 B held
  EXPECT_DOUBLE_EQ(r.bb_internal_fragmentation(), 15.0 / 75.0);
}

// --------------------------------------------- properties and regressions

TEST(BatchScheduler, BackfillingNeverDelaysAReservationWithExactEstimates) {
  // With exact estimates the shadow/profile promises are exact: no job may
  // ever start later than the reservation it was given. This is the
  // soundness property of both EASY and conservative backfilling.
  const JobStream s = batch::make_stream(contended_config(/*exact*/ 1.0));
  for (const Policy policy : {Policy::Easy, Policy::Conservative}) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    const FleetResult r = batch::run_scheduler(
        MachineSpec{16, 1e12, 0.0}, s, cfg);
    std::size_t promised = 0;
    for (const batch::JobOutcome& j : r.jobs) {
      if (j.reserved_start < 0) continue;
      ++promised;
      EXPECT_LE(j.start, j.reserved_start + 1e-6)
          << batch::to_string(policy) << " delayed job " << j.id;
    }
    EXPECT_GT(promised, 0u);  // the scenario actually exercised promises
  }
}

TEST(BatchScheduler, EasyBeatsFcfsUnderBbContention) {
  // The checked-in regression scenario of docs/batch.md: heavy BB hogs at
  // load 1.2. Backfilling must pay off on mean bounded slowdown.
  const JobStream s = batch::make_stream(contended_config(3.0));
  const MachineSpec m{16, 1e12, 0.0};
  SchedulerConfig cfg;
  cfg.policy = Policy::Fcfs;
  const batch::FleetSummary fcfs =
      batch::summarize(batch::run_scheduler(m, s, cfg), m, cfg.tau);
  cfg.policy = Policy::Easy;
  const batch::FleetSummary easy =
      batch::summarize(batch::run_scheduler(m, s, cfg), m, cfg.tau);
  EXPECT_LT(easy.bsld_mean, fcfs.bsld_mean);
  EXPECT_GT(easy.backfilled_jobs, 0u);
}

TEST(BatchScheduler, AuditCleanEndToEndWithContention) {
  batch::StreamConfig gen = contended_config(3.0);
  gen.job_count = 150;
  const JobStream s = batch::make_stream(gen);
  MachineSpec m{16, 1e12, 20e9};
  for (const Policy policy : batch::kAllPolicies) {
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.audit = true;
    const FleetResult r = batch::run_scheduler(m, s, cfg);
    EXPECT_EQ(r.audit_violations, 0u) << batch::to_string(policy);
    EXPECT_FALSE(r.audit.is_null());
    EXPECT_TRUE(r.audit.get_bool("clean", false)) << batch::to_string(policy);
    ASSERT_EQ(r.jobs.size(), s.jobs.size());
    for (const batch::JobOutcome& j : r.jobs) {
      EXPECT_GE(j.start, j.submit);
      EXPECT_DOUBLE_EQ(j.end, j.start + j.runtime);
    }
  }
}

TEST(BatchScheduler, IsDeterministicAcrossRuns) {
  const JobStream s = batch::make_stream(contended_config(3.0));
  const MachineSpec m{16, 1e12, 0.0};
  SchedulerConfig cfg;
  cfg.policy = Policy::Easy;
  const json::Value a =
      batch::batch_report(s, m, cfg.tau, {batch::run_scheduler(m, s, cfg)});
  const json::Value b =
      batch::batch_report(s, m, cfg.tau, {batch::run_scheduler(m, s, cfg)});
  EXPECT_EQ(a.dump(2), b.dump(2));
}

// ----------------------------------------------------------------- payload

TEST(BatchPayload, ResolvesMissingRuntimesDeterministically) {
  JobStream s;
  s.seed = 7;
  s.jobs = {make_job(0, 0.0, 2, 10000.0, 0.0, 1e9),
            make_job(1, 1.0, 1, 100.0, 40.0, 0.0)};
  s.jobs[0].payload.kind = batch::PayloadKind::Scale;
  s.jobs[0].payload.tasks = 8;
  s.jobs[0].payload.width = 2;
  batch::validate_stream(s);
  JobStream twin = s;
  EXPECT_EQ(batch::resolve_payloads(s), 1u);
  EXPECT_GT(s.jobs[0].walltime_actual, 0.0);
  EXPECT_DOUBLE_EQ(s.jobs[1].walltime_actual, 40.0);  // explicit: untouched
  batch::resolve_payloads(twin);
  EXPECT_DOUBLE_EQ(twin.jobs[0].walltime_actual, s.jobs[0].walltime_actual);
  // Already resolved: a second pass is a no-op.
  EXPECT_EQ(batch::resolve_payloads(s), 0u);
}

// ---------------------------------------------------------- report + trace

TEST(BatchReport, ComparisonNamesTheBestPolicy) {
  const MachineSpec m = tiny_machine();
  std::vector<FleetResult> runs;
  runs.push_back(run_tiny(Policy::Fcfs));
  runs.push_back(run_tiny(Policy::Easy));
  const json::Value doc =
      batch::batch_report(tiny_stream(), m, 10.0, runs, /*include_jobs=*/true);
  EXPECT_EQ(doc.get_string("schema", ""), "bbsim.batch.v1");
  ASSERT_TRUE(doc.contains("comparison"));
  EXPECT_EQ(doc.at("comparison").get_string("best_policy", ""), "easy");
  const json::Array& rs = doc.at("runs").as_array();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].at("jobs").as_array().size(), 3u);
  // Single-run reports carry no comparison section.
  runs.pop_back();
  EXPECT_FALSE(batch::batch_report(tiny_stream(), m, 10.0, runs)
                   .contains("comparison"));
}

TEST(BatchTrace, TimelineCarriesWaitSpans) {
  SchedulerConfig cfg;
  cfg.collect_timeline = true;
  const FleetResult r = run_tiny(Policy::Fcfs, cfg);
  ASSERT_NE(r.timeline, nullptr);
  const std::string dump = r.timeline->to_perfetto().dump();
  // j2 waited 200 s under FCFS: its lane shows an explicit wait span.
  EXPECT_NE(dump.find("wait job2"), std::string::npos);
  EXPECT_NE(dump.find("job0"), std::string::npos);
}

// --------------------------------------------------------------------- CLI

TEST(BatchCli, RequiresExactlyOneStreamSource) {
  EXPECT_THROW(cli::parse_batch_cli({}), ConfigError);
  EXPECT_THROW(cli::parse_batch_cli({"--jobs-file", "a.json", "--gen", "5"}),
               ConfigError);
  EXPECT_THROW(cli::parse_batch_cli({"--gen", "0"}), ConfigError);
  EXPECT_THROW(cli::parse_batch_cli({"--gen", "5", "--policy", "bogus"}),
               ConfigError);
  EXPECT_NO_THROW(cli::parse_batch_cli({"--gen", "5"}));
}

TEST(BatchCli, ParsesSizesArrivalsAndPolicies) {
  const cli::BatchCliOptions opt = cli::parse_batch_cli(
      {"--gen", "50", "--bb-capacity", "2TB", "--bb-granule", "20GiB",
       "--arrival", "weibull:0.4", "--policy", "all", "--load", "1.1"});
  EXPECT_DOUBLE_EQ(opt.bb_capacity, 2e12);
  EXPECT_DOUBLE_EQ(opt.bb_granule, 20.0 * 1024 * 1024 * 1024);
  EXPECT_EQ(cli::resolve_policies(opt.policy).size(), 4u);
  const batch::StreamConfig cfg = cli::stream_config_from(opt);
  EXPECT_EQ(cfg.arrivals, batch::ArrivalProcess::Weibull);
  EXPECT_DOUBLE_EQ(cfg.weibull_shape, 0.4);
  EXPECT_DOUBLE_EQ(cfg.load, 1.1);
  EXPECT_EQ(cfg.job_count, 50u);
}

// ------------------------------------------------------------ node outages

TEST(BatchOutage, DisabledFaultsLeaveReportByteIdentical) {
  SchedulerConfig off;
  off.faults = resil::FaultSpec::parse("");
  const FleetResult base = run_tiny(Policy::Easy);
  const FleetResult with = run_tiny(Policy::Easy, off);
  EXPECT_FALSE(base.faults_enabled);
  EXPECT_FALSE(with.faults_enabled);
  const JobStream s = tiny_stream();
  EXPECT_EQ(batch::batch_report(s, tiny_machine(), 10.0, {base}, true).dump(),
            batch::batch_report(s, tiny_machine(), 10.0, {with}, true).dump());
}

TEST(BatchOutage, ArmedButQuiescentProcessKeepsScheduleExact) {
  // horizon ~0 arms the process but schedules no crash: everything must
  // match the faultless run except the (all-zero) outage section.
  SchedulerConfig cfg;
  cfg.faults = resil::FaultSpec::parse("node_mtbf=100,horizon=1e-9");
  const FleetResult base = run_tiny(Policy::Conservative);
  const FleetResult with = run_tiny(Policy::Conservative, cfg);
  EXPECT_TRUE(with.faults_enabled);
  EXPECT_EQ(with.node_outages, 0u);
  EXPECT_EQ(with.resubmitted_jobs, 0u);
  EXPECT_DOUBLE_EQ(with.down_node_seconds, 0.0);
  EXPECT_DOUBLE_EQ(with.makespan, base.makespan);
  ASSERT_EQ(with.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(with.jobs[i].start, base.jobs[i].start);
    EXPECT_DOUBLE_EQ(with.jobs[i].end, base.jobs[i].end);
  }
}

TEST(BatchOutage, CrashKillsYoungestJobAndResubmitsIt) {
  // One node, one 100 s job: any crash while it runs must kill it, hold
  // the node down for node_repair, then rerun the job from scratch. Scan
  // for a seed whose first crash lands mid-run and whose re-armed crash
  // (sampled at the repair) falls past the horizon.
  MachineSpec m;
  m.nodes = 1;
  m.bb_bytes = 0.0;
  const double kRepair = 50.0;
  std::uint64_t seed = 0;
  double g0 = 0.0;
  for (std::uint64_t s = 1; s < 500 && seed == 0; ++s) {
    resil::FaultSpec probe;
    probe.seed = s;
    probe.node_mtbf = 60.0;
    resil::FaultModel model(probe, 1);
    const double a = model.next_node_gap(0);
    const double b = model.next_node_gap(0);
    // Crash in (40, 90); after repair at a+50 the next crash a+50+b must
    // land beyond horizon=95 so exactly one outage fires.
    if (a > 40.0 && a < 90.0 && b > 10.0) {
      seed = s;
      g0 = a;
    }
  }
  ASSERT_NE(seed, 0u);

  JobStream s;
  s.name = "one";
  s.jobs = {make_job(0, 0.0, 1, 100.0, 100.0, 0.0)};
  batch::validate_stream(s);
  SchedulerConfig cfg;
  cfg.policy = Policy::Fcfs;
  cfg.audit = true;
  cfg.faults = resil::FaultSpec::parse(
      "node_mtbf=60,node_repair=" + std::to_string(kRepair) +
      ",horizon=95,seed=" + std::to_string(seed));
  const FleetResult r = batch::run_scheduler(m, s, cfg);

  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(r.node_outages, 1u);
  EXPECT_EQ(r.resubmitted_jobs, 1u);
  ASSERT_EQ(r.jobs.size(), 1u);
  const batch::JobOutcome& j = r.jobs.front();
  EXPECT_EQ(j.resubmits, 1);
  // Lost work = one node held from the start to the crash.
  EXPECT_NEAR(j.lost_node_seconds, g0, 1e-9);
  EXPECT_NEAR(r.lost_node_seconds, g0, 1e-9);
  // The rerun starts at the repair and runs to completion.
  EXPECT_NEAR(j.start, g0 + kRepair, 1e-9);
  EXPECT_NEAR(r.makespan, g0 + kRepair + 100.0, 1e-9);
  EXPECT_NEAR(r.down_node_seconds, kRepair, 1e-9);
  EXPECT_FALSE(j.killed);  // estimate kill is a different mechanism
}

TEST(BatchOutage, FaultSweepStaysAuditCleanAcrossPolicies) {
  // Property sweep: every policy under a live outage process must stay
  // audit-clean, finish every job, and keep its loss accounting additive.
  batch::StreamConfig gen = contended_config(3.0);
  gen.job_count = 60;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    gen.seed = 100 + seed;
    const JobStream s = batch::make_stream(gen);
    for (const Policy policy : batch::kAllPolicies) {
      SchedulerConfig cfg;
      cfg.policy = policy;
      cfg.audit = true;
      cfg.faults = resil::FaultSpec::parse(
          "node_mtbf=5000,node_repair=400,horizon=40000,seed=" +
          std::to_string(seed));
      const FleetResult r = batch::run_scheduler(MachineSpec{16, 1e12, 0.0}, s, cfg);
      EXPECT_EQ(r.audit_violations, 0u) << to_string(policy) << " seed " << seed;
      ASSERT_EQ(r.jobs.size(), s.jobs.size());
      int resubmits = 0;
      double lost = 0.0;
      for (const batch::JobOutcome& j : r.jobs) {
        EXPECT_GE(j.start, j.submit);
        EXPECT_GE(j.end, j.start);
        resubmits += j.resubmits;
        lost += j.lost_node_seconds;
      }
      EXPECT_EQ(static_cast<std::size_t>(resubmits), r.resubmitted_jobs);
      EXPECT_NEAR(lost, r.lost_node_seconds, 1e-6);
      EXPECT_GE(r.makespan, 0.0);
    }
  }
}

TEST(BatchOutage, FaultyRunIsDeterministic) {
  const JobStream s = batch::make_stream(contended_config(3.0));
  SchedulerConfig cfg;
  cfg.policy = Policy::Easy;
  cfg.faults =
      resil::FaultSpec::parse("node_mtbf=3000,node_repair=300,seed=9,horizon=50000");
  const MachineSpec m{16, 1e12, 0.0};
  const FleetResult a = batch::run_scheduler(m, s, cfg);
  const FleetResult b = batch::run_scheduler(m, s, cfg);
  EXPECT_EQ(batch::batch_report(s, m, 10.0, {a}, true).dump(),
            batch::batch_report(s, m, 10.0, {b}, true).dump());
}

TEST(BatchOutage, ReportCarriesOutageSectionOnlyWhenArmed) {
  SchedulerConfig cfg;
  cfg.faults = resil::FaultSpec::parse("node_mtbf=100,horizon=1e-9");
  const FleetResult armed = run_tiny(Policy::Fcfs, cfg);
  const FleetResult off = run_tiny(Policy::Fcfs);
  const JobStream s = tiny_stream();
  const std::string with =
      batch::batch_report(s, tiny_machine(), 10.0, {armed}, false).dump();
  const std::string without =
      batch::batch_report(s, tiny_machine(), 10.0, {off}, false).dump();
  EXPECT_NE(with.find("\"outages\""), std::string::npos);
  EXPECT_EQ(without.find("\"outages\""), std::string::npos);
}

TEST(BatchCli, ParsesAndValidatesFaultsSpec) {
  const cli::BatchCliOptions opt = cli::parse_batch_cli(
      {"--gen", "5", "--faults", "node_mtbf=3600,node_repair=120,seed=3"});
  EXPECT_EQ(opt.faults, "node_mtbf=3600,node_repair=120,seed=3");
  const resil::FaultSpec spec = resil::FaultSpec::parse(opt.faults);
  EXPECT_DOUBLE_EQ(spec.node_mtbf, 3600.0);
  EXPECT_THROW(cli::parse_batch_cli({"--gen", "5", "--faults", "bogus=1"}),
               ConfigError);
}

}  // namespace
}  // namespace bbsim
