// Tests for the timeline/self-profiling subsystem (src/trace): recorder
// semantics, Perfetto export shape and determinism, profiler aggregation,
// and the wiring through engine, flows, storage and exec.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "json/json.hpp"
#include "platform/presets.hpp"
#include "stats/metrics.hpp"
#include "trace/profiler.hpp"
#include "trace/timeline.hpp"
#include "workflow/swarp.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::trace {
namespace {

// ------------------------------------------------------- TimelineRecorder

TEST(TimelineRecorder, CounterTracksDeduplicateByName) {
  TimelineRecorder rec;
  const TrackId a = rec.counter_track("bb.occupancy", "bytes");
  const TrackId b = rec.counter_track("bb.occupancy", "bytes");
  const TrackId c = rec.counter_track("queue", "events");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(rec.counter_track_count(), 2u);
}

TEST(TimelineRecorder, SamplesAtSameInstantCoalesceLastWins) {
  TimelineRecorder rec;
  const TrackId t = rec.counter_track("q", "events");
  rec.counter_sample(t, 0.0, 1.0);
  rec.counter_sample(t, 0.0, 2.0);
  rec.counter_sample(t, 1.0, 3.0);
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.counters.size(), 1u);
  ASSERT_EQ(tl.counters[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(tl.counters[0].samples[0].value, 2.0);
  EXPECT_DOUBLE_EQ(tl.counters[0].samples[1].value, 3.0);
}

TEST(TimelineRecorder, FlowLifecycleAndRateDedup) {
  TimelineRecorder rec;
  rec.flow_begin(7, 1.0, "transfer a", 100.0);
  rec.flow_rate(7, 1.0, 50.0);
  rec.flow_rate(7, 2.0, 50.0);  // unchanged: collapses
  rec.flow_rate(7, 3.0, 25.0);
  rec.flow_rate(7, 3.0, 20.0);  // same instant: last wins
  rec.flow_end(7, 5.0, true);
  EXPECT_EQ(rec.open_flow_count(), 0u);
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.flows.size(), 1u);
  const FlowSpan& f = tl.flows[0];
  EXPECT_EQ(f.label, "transfer a");
  EXPECT_TRUE(f.completed);
  EXPECT_DOUBLE_EQ(f.duration(), 4.0);
  EXPECT_DOUBLE_EQ(f.mean_rate(), 25.0);
  ASSERT_EQ(f.rates.size(), 2u);
  EXPECT_DOUBLE_EQ(f.rates[0].rate, 50.0);
  EXPECT_DOUBLE_EQ(f.rates[1].rate, 20.0);
}

TEST(TimelineRecorder, RecycledFlowIdOpensAFreshSpan) {
  TimelineRecorder rec;
  rec.flow_begin(0, 0.0, "first", 10.0);
  rec.flow_end(0, 1.0, true);
  rec.flow_begin(0, 2.0, "second", 20.0);  // the network recycled id 0
  rec.flow_end(0, 3.0, true);
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.flows.size(), 2u);
  EXPECT_EQ(tl.flows[0].label, "first");
  EXPECT_EQ(tl.flows[1].label, "second");
}

TEST(TimelineRecorder, FinishClosesOpenFlowsAsIncomplete) {
  TimelineRecorder rec;
  rec.flow_begin(3, 1.0, "hung", 10.0);
  rec.flow_rate(3, 4.0, 2.0);
  EXPECT_EQ(rec.open_flow_count(), 1u);
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.flows.size(), 1u);
  EXPECT_FALSE(tl.flows[0].completed);
  EXPECT_DOUBLE_EQ(tl.flows[0].t_end, 4.0);  // last known instant
}

TEST(TimelineRecorder, InfiniteRatesAreSkipped) {
  TimelineRecorder rec;
  rec.flow_begin(1, 0.0, "", 0.0);
  rec.flow_rate(1, 0.0, std::numeric_limits<double>::infinity());
  rec.flow_end(1, 0.0, true);
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.flows.size(), 1u);
  EXPECT_TRUE(tl.flows[0].rates.empty());
}

TaskSpan make_task(const std::string& name, std::size_t host, double start,
                   double end) {
  TaskSpan t;
  t.name = name;
  t.host = host;
  t.t_ready = start;
  t.t_start = start;
  t.t_reads_done = start;
  t.t_compute_done = end;
  t.t_end = end;
  return t;
}

TEST(TimelineRecorder, FinishSortsTasksAndAssignsLanes) {
  TimelineRecorder rec;
  rec.add_task(make_task("late", 0, 5.0, 6.0));
  rec.add_task(make_task("early", 0, 0.0, 2.0));
  rec.add_task(make_task("overlap", 0, 1.0, 3.0));
  rec.add_task(make_task("other_host", 1, 0.0, 4.0));
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.tasks.size(), 4u);
  EXPECT_EQ(tl.tasks[0].name, "early");
  EXPECT_EQ(tl.tasks[1].name, "overlap");
  EXPECT_EQ(tl.tasks[2].name, "late");
  EXPECT_EQ(tl.tasks[3].name, "other_host");
  EXPECT_EQ(tl.tasks[0].lane, 0u);
  EXPECT_EQ(tl.tasks[1].lane, 1u);  // overlaps "early": next lane
  EXPECT_EQ(tl.tasks[2].lane, 0u);  // "early" ended: first lane reused
  EXPECT_EQ(tl.tasks[3].lane, 0u);  // lanes restart per host
}

TEST(TimelineRecorder, FinishSortsCounterTracksByName) {
  TimelineRecorder rec;
  rec.counter_track("zeta", "");
  rec.counter_track("alpha", "");
  const Timeline tl = rec.finish();
  ASSERT_EQ(tl.counters.size(), 2u);
  EXPECT_EQ(tl.counters[0].name, "alpha");
  EXPECT_EQ(tl.counters[1].name, "zeta");
}

// -------------------------------------------------------------- to_perfetto

TEST(Perfetto, ExportHasTraceEventShape) {
  TimelineRecorder rec;
  rec.set_host_names({"h0"});
  rec.add_task(make_task("t", 0, 0.0, 2.0));
  rec.flow_begin(0, 0.5, "transfer x", 100.0);
  rec.flow_rate(0, 0.5, 200.0);
  rec.flow_end(0, 1.0, true);
  const TrackId q = rec.counter_track("queue", "events");
  rec.counter_sample(q, 0.0, 1.0);
  const json::Value doc = rec.finish().to_perfetto();

  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("otherData").at("schema").as_string(), "bbsim.timeline.v1");
  std::set<std::string> phases;
  bool saw_host_name = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    phases.insert(e.at("ph").as_string());
    EXPECT_GE(e.at("pid").as_int(), 1);  // pid 0 stays reserved
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "process_name" && e.at("pid").as_int() == 1) {
      EXPECT_EQ(e.at("args").at("name").as_string(), "h0");
      saw_host_name = true;
    }
    if (e.at("ph").as_string() == "X") {
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_EQ(phases, (std::set<std::string>{"M", "X", "C"}));
  EXPECT_TRUE(saw_host_name);
}

TEST(Perfetto, TaskPhasesNestWithinTheTaskSpan) {
  TimelineRecorder rec;
  TaskSpan t = make_task("t", 0, 1.0, 4.0);
  t.t_reads_done = 2.0;
  t.t_compute_done = 3.0;
  rec.add_task(t);
  const json::Value doc = rec.finish().to_perfetto();
  std::vector<std::string> phase_names;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("cat").as_string() == "phase") {
      phase_names.push_back(e.at("name").as_string());
      // Microseconds, inside [1s, 4s].
      EXPECT_GE(e.at("ts").as_number(), 1e6);
      EXPECT_LE(e.at("ts").as_number() + e.at("dur").as_number(), 4e6);
    }
  }
  EXPECT_EQ(phase_names, (std::vector<std::string>{"read", "compute", "write"}));
}

TEST(Perfetto, ZeroLengthPhasesAreOmitted) {
  TimelineRecorder rec;
  rec.add_task(make_task("t", 0, 0.0, 2.0));  // reads_done == start: no read
  const json::Value doc = rec.finish().to_perfetto();
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.at("cat").as_string() == "phase") {
      EXPECT_EQ(e.at("name").as_string(), "compute");
    }
  }
}

// ----------------------------------------------------------------- Profiler

TEST(Profiler, SectionsAggregateAndPointersAreStable) {
  Profiler p;
  ProfileSection* s = p.section("solver");
  EXPECT_EQ(p.section("solver"), s);
  s->record(0.5);
  s->record(1.5);
  EXPECT_EQ(s->calls, 2u);
  EXPECT_DOUBLE_EQ(s->total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s->max_seconds, 1.5);
}

TEST(Profiler, ScopedTimerWithNullSectionIsFree) {
  { const ScopedTimer t(nullptr); }  // must not crash or record anything
  Profiler p;
  ProfileSection* s = p.section("x");
  { const ScopedTimer t(s); }
  EXPECT_EQ(s->calls, 1u);
  EXPECT_GE(s->total_seconds, 0.0);
}

TEST(Profiler, MergeFoldsSections) {
  Profiler a, b;
  a.section("solver")->record(1.0);
  b.section("solver")->record(3.0);
  b.section("dispatch")->record(0.5);
  a.merge(b);
  EXPECT_EQ(a.section("solver")->calls, 2u);
  EXPECT_DOUBLE_EQ(a.section("solver")->total_seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.section("solver")->max_seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.section("dispatch")->total_seconds, 0.5);
}

TEST(Profiler, JsonIsMarkedNondeterministicAndInsertionOrdered) {
  Profiler p;
  p.section("zeta")->record(1.0);
  p.section("alpha")->record(2.0);
  const json::Value v = p.to_json();
  EXPECT_TRUE(v.at("nondeterministic").as_bool());
  // Sections report in registration order: registering a new section never
  // reshuffles the existing ones in the report.
  const json::Array& sections = v.at("sections").as_array();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].at("name").as_string(), "zeta");
  EXPECT_EQ(sections[1].at("name").as_string(), "alpha");
  EXPECT_DOUBLE_EQ(sections[0].at("mean_seconds").as_number(), 1.0);
}

TEST(Profiler, PublishesIntoMetricsRegistry) {
  Profiler p;
  p.section("solver")->record(2.0);
  stats::MetricsRegistry reg;
  p.publish(reg);
  ASSERT_NE(reg.find_counter("profile.solver.calls"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_counter("profile.solver.calls")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_counter("profile.solver.seconds")->value(), 2.0);
}

// ------------------------------------------------- end-to-end through exec

platform::PlatformSpec tiny() {
  platform::PlatformSpec p;
  p.name = "tiny";
  p.hosts.push_back({"h0", 4, 1e9, platform::kUnlimited});
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = platform::StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = platform::StorageKind::SharedBB;
  bb.disk = {950.0, 950.0, platform::kUnlimited};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

wf::Workflow io_workflow() {
  wf::Workflow w;
  w.add_file({"in", 100.0});
  w.add_file({"out", 50.0});
  w.add_task({"t", "compute", 4e9, 0.0, 4, {"in"}, {"out"}});
  return w;
}

TEST(SimulationTimeline, NullUnlessOptedIn) {
  exec::Simulation sim(tiny(), io_workflow(), {});
  EXPECT_EQ(sim.timeline_recorder(), nullptr);
  EXPECT_EQ(sim.profiler(), nullptr);
  const exec::Result r = sim.run();
  EXPECT_EQ(r.timeline, nullptr);
  EXPECT_TRUE(r.profile.is_null());
}

TEST(SimulationTimeline, RecordsTasksFlowsAndCounters) {
  exec::ExecutionConfig cfg;
  cfg.collect_timeline = true;
  exec::Simulation sim(tiny(), io_workflow(), cfg);
  ASSERT_NE(sim.timeline_recorder(), nullptr);
  const exec::Result r = sim.run();
  ASSERT_NE(r.timeline, nullptr);
  const Timeline& tl = *r.timeline;

  ASSERT_GE(tl.tasks.size(), 1u);  // "t" plus the synthesised stage-in task
  const auto t = std::find_if(tl.tasks.begin(), tl.tasks.end(),
                              [](const TaskSpan& s) { return s.name == "t"; });
  ASSERT_NE(t, tl.tasks.end());
  EXPECT_DOUBLE_EQ(t->bytes_read, 100.0);
  EXPECT_DOUBLE_EQ(t->bytes_written, 50.0);
  EXPECT_GT(t->t_end, t->t_start);

  // Stage-in transfer + task read + task write, each with a label. Data
  // flows carry at least one solver-granted rate; metadata flows on the
  // tiny platform are unconstrained (rate = inf, skipped by design).
  ASSERT_GE(tl.flows.size(), 3u);
  for (const FlowSpan& f : tl.flows) {
    EXPECT_FALSE(f.label.empty());
    EXPECT_TRUE(f.completed);
    if (f.label.find("[meta]") == std::string::npos) {
      EXPECT_FALSE(f.rates.empty()) << f.label;
    }
  }
  const auto read = std::find_if(
      tl.flows.begin(), tl.flows.end(), [](const FlowSpan& f) {
        return f.label.find("read in") != std::string::npos &&
               f.label.find("[meta]") == std::string::npos;
      });
  ASSERT_NE(read, tl.flows.end());
  EXPECT_DOUBLE_EQ(read->bytes, 100.0);

  std::vector<std::string> names;
  for (const CounterTrack& c : tl.counters) names.push_back(c.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "sim.queue_depth"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "storage.bb.occupancy_bytes"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "storage.bb.achieved_bandwidth"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "storage.pfs.achieved_bandwidth"),
            names.end());
}

TEST(SimulationTimeline, ResultsStayIdenticalWithTimelineOn) {
  // The observer must never change the physics.
  exec::Simulation plain(tiny(), io_workflow(), {});
  exec::ExecutionConfig cfg;
  cfg.collect_timeline = true;
  cfg.profile = true;
  exec::Simulation observed(tiny(), io_workflow(), cfg);
  EXPECT_DOUBLE_EQ(plain.run().makespan, observed.run().makespan);
}

TEST(SimulationTimeline, PerfettoExportIsDeterministic) {
  const auto run_once = [] {
    exec::ExecutionConfig cfg;
    cfg.collect_timeline = true;
    wf::SwarpConfig swarp;
    swarp.pipelines = 2;
    exec::Simulation sim(platform::cori_platform({}), wf::make_swarp(swarp), cfg);
    return sim.run().timeline->to_perfetto().dump(2);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulationProfile, CollectsSectionsAndPublishesMetrics) {
  exec::ExecutionConfig cfg;
  cfg.profile = true;
  cfg.collect_metrics = true;
  exec::Simulation sim(tiny(), io_workflow(), cfg);
  ASSERT_NE(sim.profiler(), nullptr);
  const exec::Result r = sim.run();
  ASSERT_FALSE(r.profile.is_null());
  EXPECT_TRUE(r.profile.at("nondeterministic").as_bool());
  std::set<std::string> names;
  for (const json::Value& s : r.profile.at("sections").as_array()) {
    names.insert(s.at("name").as_string());
    EXPECT_GE(s.at("calls").as_number(), 1.0);
  }
  EXPECT_TRUE(names.count("flow.solve"));
  EXPECT_TRUE(names.count("sim.dispatch"));
  EXPECT_TRUE(names.count("exec.placement"));
  // Published into the registry too.
  ASSERT_TRUE(r.metrics.contains("counters"));
  EXPECT_TRUE(r.metrics.at("counters").contains("profile.flow.solve.calls"));
  // The profile rides along in the full result JSON.
  EXPECT_TRUE(r.to_json().contains("profile"));
}

TEST(SimulationMetrics, BandwidthSeriesLandsInStorageCounters) {
  exec::ExecutionConfig cfg;
  cfg.collect_metrics = true;
  exec::Simulation sim(tiny(), io_workflow(), cfg);
  const exec::Result r = sim.run();
  bool saw_nonempty = false;
  for (const exec::StorageCounters& s : r.storage) {
    if (s.bytes_served > 0.0) {
      EXPECT_FALSE(s.bandwidth_series.empty())
          << s.service << " served bytes but has no bandwidth series";
    }
    for (const auto& [time, bw] : s.bandwidth_series) {
      EXPECT_GE(time, 0.0);
      EXPECT_GE(bw, 0.0);
      saw_nonempty = true;
    }
  }
  EXPECT_TRUE(saw_nonempty);
  // And to_json carries it.
  const json::Value v = r.to_json();
  bool json_has_series = false;
  for (const json::Value& s : v.at("storage").as_array()) {
    if (s.contains("bandwidth_series")) json_has_series = true;
  }
  EXPECT_TRUE(json_has_series);
}

// -------------------------------------------------------- TraceEventKind

TEST(TraceEventKind, AllKindsHaveUniqueWireNames) {
  std::set<std::string> names;
  for (const exec::TraceEventKind kind : exec::kAllTraceEventKinds) {
    const std::string name = exec::to_string(kind);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate wire name " << name;
  }
  EXPECT_EQ(names.size(), std::size(exec::kAllTraceEventKinds));
  // The documented closed set, spelled out: a new kind must be added here
  // (and to docs/observability.md) deliberately.
  EXPECT_EQ(names,
            (std::set<std::string>{
                "task_ready", "task_start", "reads_done", "compute_done",
                "write", "task_end", "stage_file", "stage_skipped", "stage_out",
                "evict",
                // resilience events (src/resil)
                "node_crash", "node_repair", "bb_degraded", "pfs_brownout",
                "fault_cleared", "task_killed", "task_restart", "rollback",
                "checkpoint", "checkpoint_drained"}));
}

}  // namespace
}  // namespace bbsim::trace
