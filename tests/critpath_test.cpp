// Tests for the causal critical-path layer (src/critpath): unit tests on
// critpath::analyze over hand-built recorders (segment partition, blame
// arithmetic, slack, what-if replay, report schema), then integrated tests
// through exec::Simulation (opt-in invisibility, path length == makespan,
// fault rework attribution) and the S3 observability matrix: timeline
// counter tracks under resil.hosts_down combined with --critpath flow
// links, byte-determinism across repeated runs and --jobs 1 vs 8 sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cli/sweep_cli.hpp"
#include "critpath/critpath.hpp"
#include "exec/engine.hpp"
#include "json/json.hpp"
#include "platform/spec.hpp"
#include "resil/fault.hpp"
#include "sweep/spec.hpp"
#include "trace/timeline.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::critpath {
namespace {

// ------------------------------------------------------------ unit: analyze

/// Shorthand: final task timings with no parents and no stage-in flag.
TaskTimes times(std::string name, double ready, double start,
                double reads_done, double compute_done, double end,
                std::vector<std::string> parents = {}) {
  TaskTimes t;
  t.name = std::move(name);
  t.t_ready = ready;
  t.t_start = start;
  t.t_reads_done = reads_done;
  t.t_compute_done = compute_done;
  t.t_end = end;
  t.parents = std::move(parents);
  return t;
}

double blame_of(const Report& r, Blame b) {
  return r.blame[static_cast<std::size_t>(b)];
}

const WhatIf* find_what_if(const Report& r, const std::string& scenario) {
  for (const WhatIf& w : r.what_ifs) {
    if (w.scenario == scenario) return &w;
  }
  return nullptr;
}

TEST(CritpathUnit, BlameNamesAreSchemaConstants) {
  EXPECT_STREQ(to_string(Blame::kCompute), "compute");
  EXPECT_STREQ(to_string(Blame::kBbTransfer), "bb_transfer");
  EXPECT_STREQ(to_string(Blame::kPfsTransfer), "pfs_transfer");
  EXPECT_STREQ(to_string(Blame::kBbCapacityWait), "bb_capacity_wait");
  EXPECT_STREQ(to_string(Blame::kQueueWait), "queue_wait");
  EXPECT_STREQ(to_string(Blame::kRecoveryRework), "recovery_rework");
  EXPECT_EQ(kAllBlames.size(), kBlameCount);
}

TEST(CritpathUnit, SingleTaskPartitionsMakespanExactly) {
  // One task: wait [0,2], BB reads [2,5], compute [5,9], PFS write [9,10].
  Recorder rec;
  rec.record_ready("t", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});
  rec.record_read_bytes("t", 100.0, /*burst_buffer=*/true);
  rec.record_write_bytes("t", 50.0, /*burst_buffer=*/false);

  AnalyzeInput input;
  input.tasks.push_back(times("t", 0.0, 2.0, 5.0, 9.0, 10.0));
  input.makespan = 10.0;

  const Report r = analyze(rec, input);
  ASSERT_EQ(r.path.size(), 4u);
  EXPECT_EQ(r.path[0].phase, "wait");
  EXPECT_EQ(r.path[0].blame, Blame::kQueueWait);
  EXPECT_EQ(r.path[1].phase, "read");
  EXPECT_EQ(r.path[1].blame, Blame::kBbTransfer);
  EXPECT_EQ(r.path[2].phase, "compute");
  EXPECT_EQ(r.path[3].phase, "write");
  EXPECT_EQ(r.path[3].blame, Blame::kPfsTransfer);

  // Contiguous cover of [0, makespan]: both identities hold exactly here.
  EXPECT_DOUBLE_EQ(r.path_length(), 10.0);
  EXPECT_DOUBLE_EQ(r.blame_total(), 10.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kQueueWait), 2.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kBbTransfer), 3.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kCompute), 4.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kPfsTransfer), 1.0);
  // The sink task has no slack.
  ASSERT_EQ(r.slack.count("t"), 1u);
  EXPECT_NEAR(r.slack.at("t"), 0.0, 1e-12);

  // Replay: baseline reproduces the makespan; removing the BB transfer
  // saves exactly its 3 s share.
  const WhatIf* baseline = find_what_if(r, "baseline");
  ASSERT_NE(baseline, nullptr);
  EXPECT_NEAR(baseline->makespan, 10.0, 1e-12);
  const WhatIf* inf_bb = find_what_if(r, "infinite_bb_bandwidth");
  ASSERT_NE(inf_bb, nullptr);
  EXPECT_NEAR(inf_bb->makespan, 7.0, 1e-12);
  const WhatIf* no_queue = find_what_if(r, "no_queue_wait");
  ASSERT_NE(no_queue, nullptr);
  EXPECT_NEAR(no_queue->makespan, 8.0, 1e-12);
  for (const WhatIf& w : r.what_ifs) {
    EXPECT_LE(w.makespan, r.makespan + 1e-12) << w.scenario;
  }
}

TEST(CritpathUnit, ParentEdgeExtendsPathAndOffPathTaskHasSlack) {
  // a: [0,4] compute; b waits on a, then [4..6] queued, [6,9] compute;
  // c: [0,3] compute off the critical path (slack 6).
  Recorder rec;
  rec.record_ready("a", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});
  rec.record_ready("b", 4.0, {ReadyCause::Kind::kParent, "a"});
  rec.record_ready("c", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});

  AnalyzeInput input;
  input.tasks.push_back(times("a", 0.0, 0.0, 0.0, 4.0, 4.0));
  input.tasks.push_back(times("b", 4.0, 6.0, 6.0, 9.0, 9.0, {"a"}));
  input.tasks.push_back(times("c", 0.0, 0.0, 0.0, 3.0, 3.0));
  input.makespan = 9.0;

  const Report r = analyze(rec, input);
  ASSERT_EQ(r.path.size(), 3u);
  EXPECT_EQ(r.path[0].task, "a");
  EXPECT_EQ(r.path[0].phase, "compute");
  EXPECT_EQ(r.path[1].task, "b");
  EXPECT_EQ(r.path[1].phase, "wait");
  EXPECT_EQ(r.path[2].task, "b");
  EXPECT_EQ(r.path[2].phase, "compute");
  EXPECT_DOUBLE_EQ(r.path_length(), 9.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kCompute), 7.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kQueueWait), 2.0);

  EXPECT_NEAR(r.slack.at("a"), 0.0, 1e-12);
  EXPECT_NEAR(r.slack.at("b"), 0.0, 1e-12);
  EXPECT_NEAR(r.slack.at("c"), 6.0, 1e-12);

  // Deleting queue wait compresses the chain to a 4 s + 3 s rigid spine.
  const WhatIf* no_queue = find_what_if(r, "no_queue_wait");
  ASSERT_NE(no_queue, nullptr);
  EXPECT_NEAR(no_queue->makespan, 7.0, 1e-12);
}

TEST(CritpathUnit, AbortedAttemptsChargeRecoveryRework) {
  // Attempt 1 waits [0,1], runs [1,6], dies; requeued at 6, waits [6,7],
  // computes [7,10]. The thrown-away window is recovery rework.
  Recorder rec;
  rec.record_ready("t", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});
  rec.record_abort("t", 0.0, 1.0, 6.0);
  rec.record_ready("t", 6.0, {ReadyCause::Kind::kRequeue, ""});

  AnalyzeInput input;
  input.tasks.push_back(times("t", 6.0, 7.0, 7.0, 10.0, 10.0));
  input.makespan = 10.0;

  const Report r = analyze(rec, input);
  EXPECT_NEAR(r.path_length(), 10.0, 1e-12);
  EXPECT_NEAR(r.blame_total(), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kRecoveryRework), 5.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kQueueWait), 2.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kCompute), 3.0);
  // The path reaches back to t=0 through the dead attempt.
  ASSERT_FALSE(r.path.empty());
  EXPECT_DOUBLE_EQ(r.path.front().start, 0.0);
  bool has_rework = false;
  for (const Segment& s : r.path) has_rework |= (s.phase == "rework");
  EXPECT_TRUE(has_rework);

  // A fault-free replay deletes the dead attempt and its waits around it.
  const WhatIf* no_faults = find_what_if(r, "no_faults");
  ASSERT_NE(no_faults, nullptr);
  EXPECT_NEAR(no_faults->makespan, 5.0, 1e-12);
}

TEST(CritpathUnit, ImplicitStageInHeadsThePath) {
  Recorder rec;
  rec.record_implicit_stage(0.0, 3.0);
  rec.record_ready("t", 3.0, {ReadyCause::Kind::kWorkflowStart, ""});

  AnalyzeInput input;
  input.tasks.push_back(times("t", 3.0, 3.0, 3.0, 8.0, 8.0));
  input.makespan = 8.0;

  const Report r = analyze(rec, input);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front().task, "implicit_stage_in");
  EXPECT_EQ(r.path.front().blame, Blame::kPfsTransfer);
  EXPECT_DOUBLE_EQ(r.path.front().start, 0.0);
  EXPECT_DOUBLE_EQ(r.path.front().end, 3.0);
  EXPECT_NEAR(r.path_length(), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kPfsTransfer), 3.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kCompute), 5.0);
}

TEST(CritpathUnit, StageOutDrainIsAPfsTailSegment) {
  Recorder rec;
  rec.record_ready("t", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});

  AnalyzeInput input;
  input.tasks.push_back(times("t", 0.0, 0.0, 0.0, 8.0, 8.0));
  input.makespan = 10.0;
  input.stage_out_duration = 2.0;

  const Report r = analyze(rec, input);
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.back().task, "stage_out");
  EXPECT_EQ(r.path.back().blame, Blame::kPfsTransfer);
  EXPECT_DOUBLE_EQ(r.path.back().start, 8.0);
  EXPECT_DOUBLE_EQ(r.path.back().end, 10.0);
  EXPECT_NEAR(r.path_length(), 10.0, 1e-12);
}

TEST(CritpathUnit, EmptyInputYieldsBaselineOnlyReport) {
  const Report r = analyze(Recorder(), AnalyzeInput());
  EXPECT_TRUE(r.path.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.blame_total(), 0.0);
  const WhatIf* baseline = find_what_if(r, "baseline");
  ASSERT_NE(baseline, nullptr);
  EXPECT_DOUBLE_EQ(baseline->makespan, 0.0);
}

TEST(CritpathUnit, SetBlameFromPathRederivesTotals) {
  Report r;
  r.path.push_back({"x", "wait", Blame::kQueueWait, 0.0, 2.5});
  r.path.push_back({"x", "read", Blame::kBbTransfer, 2.5, 4.0});
  r.path.push_back({"x", "compute", Blame::kCompute, 4.0, 9.0});
  r.set_blame_from_path();
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kQueueWait), 2.5);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kBbTransfer), 1.5);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kCompute), 5.0);
  EXPECT_DOUBLE_EQ(blame_of(r, Blame::kPfsTransfer), 0.0);
  EXPECT_DOUBLE_EQ(r.blame_total(), r.path_length());
}

TEST(CritpathUnit, ReportJsonIsSchemaTaggedCompleteAndByteStable) {
  Recorder rec;
  rec.record_ready("t", 0.0, {ReadyCause::Kind::kWorkflowStart, ""});
  rec.record_read_bytes("t", 100.0, true);
  AnalyzeInput input;
  input.tasks.push_back(times("t", 0.0, 2.0, 5.0, 9.0, 10.0));
  input.makespan = 10.0;

  const json::Value doc = analyze(rec, input).to_json();
  EXPECT_EQ(doc.get_string("schema", ""), "bbsim.critpath.v1");
  EXPECT_DOUBLE_EQ(doc.get_number("makespan", -1.0), 10.0);
  EXPECT_DOUBLE_EQ(doc.get_number("path_length", -1.0), 10.0);
  // All six classes appear (zero or not) in both maps, fractions sum to 1.
  double frac_sum = 0.0;
  for (const Blame b : kAllBlames) {
    EXPECT_TRUE(doc.at("blame").contains(to_string(b))) << to_string(b);
    ASSERT_TRUE(doc.at("blame_fractions").contains(to_string(b)));
    frac_sum += doc.at("blame_fractions").at(to_string(b)).as_number();
  }
  EXPECT_NEAR(frac_sum, 1.0, 1e-12);
  ASSERT_TRUE(doc.at("path").is_array());
  ASSERT_TRUE(doc.at("what_if").is_array());
  EXPECT_FALSE(doc.at("what_if").as_array().empty());
  // Pure function of its inputs: repeated analysis is byte-identical.
  EXPECT_EQ(doc.dump(2), analyze(rec, input).to_json().dump(2));
}

// --------------------------------------------- integrated: exec::Simulation

using exec::ExecutionConfig;
using exec::Result;
using exec::Simulation;
using platform::BBMode;
using platform::PlatformSpec;
using platform::StorageKind;

/// Same tiny platform the exec tests hand-compute against: hosts x 4 cores
/// at 1 Gflop/s/core; PFS 100 B/s disk + 1000 B/s link; BB 950 B/s disk +
/// 800 B/s link; no latency or caps.
PlatformSpec tiny(StorageKind bb_kind = StorageKind::SharedBB,
                  int hosts = 1, int cores = 4) {
  PlatformSpec p;
  p.name = "tiny";
  for (int i = 0; i < hosts; ++i) {
    p.hosts.push_back({"h" + std::to_string(i), cores, 1e9, platform::kUnlimited});
  }
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = bb_kind;
  bb.mode = BBMode::Private;
  bb.disk = {950.0, 950.0, platform::kUnlimited};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

/// Two-task pipeline with real files, so the path sees transfer windows.
wf::Workflow pipeline_workflow() {
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_file({"mid", 400.0});
  w.add_task({"a", "compute", 4e9, 0, 4, {"in"}, {"mid"}});
  w.add_task({"b", "compute", 8e9, 0, 4, {"mid"}, {}});
  return w;
}

TEST(CritpathExec, OffByDefaultLeavesNoReportSection) {
  const Result r = Simulation(tiny(), pipeline_workflow(), ExecutionConfig()).run();
  EXPECT_TRUE(r.critpath.is_null());
  EXPECT_FALSE(r.to_json().contains("critpath"));
}

#if defined(BBSIM_CRITPATH_ENABLED)

/// The report document with the opt-in "critpath" key removed — the rest
/// must be bitwise-identical to a run that never had the recorder.
std::string dump_without_critpath(const Result& r) {
  const json::Value doc = r.to_json();
  json::Object out;
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "critpath") out.set(key, value);
  }
  return json::Value(std::move(out)).dump(2);
}

TEST(CritpathExec, EnabledRunIsInvisibleOutsideItsOwnSection) {
  const Result off = Simulation(tiny(), pipeline_workflow(), ExecutionConfig()).run();
  ExecutionConfig cfg;
  cfg.critpath = true;
  const Result on = Simulation(tiny(), pipeline_workflow(), cfg).run();
  ASSERT_TRUE(on.critpath.is_object());
  EXPECT_EQ(dump_without_critpath(on), off.to_json().dump(2));
  EXPECT_DOUBLE_EQ(on.makespan, off.makespan);
}

TEST(CritpathExec, PathLengthAndBlameEqualMakespanUnderAudit) {
  ExecutionConfig cfg;
  cfg.critpath = true;
  cfg.audit = true;
  const Result r = Simulation(tiny(), pipeline_workflow(), cfg).run();
  ASSERT_TRUE(r.critpath.is_object());
  EXPECT_EQ(r.critpath.get_string("schema", ""), "bbsim.critpath.v1");
  EXPECT_EQ(r.audit_violations, 0u);

  const double tol = 1e-9 * std::max(1.0, r.makespan);
  EXPECT_NEAR(r.critpath.get_number("path_length", -1.0), r.makespan, tol);
  double blame_sum = 0.0;
  for (const auto& [name, seconds] : r.critpath.at("blame").as_object()) {
    EXPECT_GE(seconds.as_number(), 0.0) << name;
    blame_sum += seconds.as_number();
  }
  EXPECT_NEAR(blame_sum, r.makespan, tol);

  // Replay oracle: baseline reproduces the makespan, every scenario helps.
  bool saw_baseline = false;
  for (const json::Value& w : r.critpath.at("what_if").as_array()) {
    const double m = w.get_number("makespan", -1.0);
    EXPECT_LE(m, r.makespan + tol) << w.get_string("scenario", "?");
    if (w.get_string("scenario", "") == "baseline") {
      saw_baseline = true;
      EXPECT_NEAR(m, r.makespan, tol);
      EXPECT_NEAR(w.get_number("speedup", -1.0), 1.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_baseline);
}

TEST(CritpathExec, ReportByteIdenticalAcrossRepeatedRuns) {
  ExecutionConfig cfg;
  cfg.critpath = true;
  const Result r0 = Simulation(tiny(), pipeline_workflow(), cfg).run();
  const Result r1 = Simulation(tiny(), pipeline_workflow(), cfg).run();
  ASSERT_TRUE(r0.critpath.is_object());
  EXPECT_EQ(r0.critpath.dump(2), r1.critpath.dump(2));
  EXPECT_EQ(r0.to_json().dump(2), r1.to_json().dump(2));
}

TEST(CritpathExec, CrashedRunChargesRecoveryRework) {
  // Scan seeds until a crash actually kills an attempt; the lost window
  // must surface as recovery_rework while both identities keep holding.
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_task({"t", "compute", 400e9, 0, 4, {"in"}, {}});  // 100 s compute

  bool found = false;
  for (std::uint64_t seed = 1; seed <= 200 && !found; ++seed) {
    ExecutionConfig cfg;
    cfg.critpath = true;
    cfg.audit = true;
    cfg.faults = resil::FaultSpec::parse(
        "node_mtbf=60,node_repair=30,seed=" + std::to_string(seed));
    const Result r = Simulation(tiny(), w, cfg).run();
    if (r.resil_stats == nullptr || r.resil_stats->tasks_killed == 0) continue;
    found = true;
    ASSERT_TRUE(r.critpath.is_object());
    EXPECT_EQ(r.audit_violations, 0u);
    const double tol = 1e-9 * std::max(1.0, r.makespan);
    EXPECT_NEAR(r.critpath.get_number("path_length", -1.0), r.makespan, tol);
    EXPECT_GT(r.critpath.at("blame").at("recovery_rework").as_number(), 0.0);
    // no_faults replay must beat the disturbed makespan by the rework share.
    for (const json::Value& wi : r.critpath.at("what_if").as_array()) {
      if (wi.get_string("scenario", "") == "no_faults") {
        EXPECT_LT(wi.get_number("makespan", -1.0), r.makespan);
      }
    }
  }
  EXPECT_TRUE(found) << "no seed in [1,200] produced a killed attempt";
}

// ---------------------------------------- S3: timeline x resil x critpath

constexpr const char* kFaults = "node_mtbf=40,node_repair=5,seed=9,horizon=400";
constexpr const char* kCheckpoint = "interval=15,fraction=0.1,restart=2";

ExecutionConfig faulty_timeline_config(bool critpath) {
  ExecutionConfig cfg;
  cfg.collect_timeline = true;
  cfg.critpath = critpath;
  cfg.faults = resil::FaultSpec::parse(kFaults);
  cfg.checkpoint = resil::CheckpointSpec::parse(kCheckpoint);
  return cfg;
}

struct TimelineCounts {
  int hosts_down_samples = 0;
  int flow_starts = 0;
  int flow_finishes = 0;
};

TimelineCounts count_timeline(const json::Value& perfetto) {
  TimelineCounts c;
  for (const json::Value& e : perfetto.at("traceEvents").as_array()) {
    const std::string ph = e.get_string("ph", "");
    if (ph == "C" && e.get_string("name", "") == "resil.hosts_down") {
      ++c.hosts_down_samples;
    } else if (ph == "s") {
      ++c.flow_starts;
    } else if (ph == "f") {
      ++c.flow_finishes;
    }
  }
  return c;
}

TEST(CritpathExec, TimelineCarriesHostsDownCounterAndBalancedFlowLinks) {
  const Result r =
      Simulation(tiny(), pipeline_workflow(), faulty_timeline_config(true)).run();
  ASSERT_NE(r.timeline, nullptr);
  const json::Value perfetto = r.timeline->to_perfetto();
  const TimelineCounts c = count_timeline(perfetto);
  // The resil layer samples hosts_down at setup and on every crash/repair.
  EXPECT_GE(c.hosts_down_samples, 1);
  // The a -> b dependency crossing puts at least one link on the path, and
  // every flow start has its finish (the check_trace.py balance invariant).
  EXPECT_GE(c.flow_starts, 1);
  EXPECT_EQ(c.flow_starts, c.flow_finishes);
}

TEST(CritpathExec, FaultyTimelineByteIdenticalAcrossRuns) {
  const Result r0 =
      Simulation(tiny(), pipeline_workflow(), faulty_timeline_config(true)).run();
  const Result r1 =
      Simulation(tiny(), pipeline_workflow(), faulty_timeline_config(true)).run();
  ASSERT_NE(r0.timeline, nullptr);
  ASSERT_NE(r1.timeline, nullptr);
  EXPECT_EQ(r0.timeline->to_perfetto().dump(2), r1.timeline->to_perfetto().dump(2));
}

TEST(CritpathExec, TimelineWithoutCritpathHasNoFlowEvents) {
  const Result r =
      Simulation(tiny(), pipeline_workflow(), faulty_timeline_config(false)).run();
  ASSERT_NE(r.timeline, nullptr);
  const TimelineCounts c = count_timeline(r.timeline->to_perfetto());
  EXPECT_EQ(c.flow_starts, 0);
  EXPECT_EQ(c.flow_finishes, 0);
  EXPECT_GE(c.hosts_down_samples, 1);  // the counter track is critpath-free
}

// S3 determinism matrix: a faulty sweep with "critpath": true must lift the
// attribution into every run record and stay byte-identical across workers.
sweep::SweepSpec critpath_sweep_spec() {
  return sweep::parse_sweep_spec(json::parse(R"({
    "name": "critpath-determinism",
    "base": {"workflow": "swarp", "testbed": "cori-private", "pipelines": 1,
             "critpath": true,
             "faults": ")" + std::string(kFaults) + R"(",
             "checkpoint": ")" + std::string(kCheckpoint) + R"("},
    "axes": {"policy": ["all_pfs", "all_bb"], "seed": [7, 8]}
  })"));
}

std::string critpath_sweep_dump(int jobs) {
  cli::SweepCliOptions opt;
  opt.jobs = jobs;
  opt.quiet = true;
  return cli::run_sweep_to_json(critpath_sweep_spec(), opt).dump(2);
}

TEST(CritpathExec, SweepReportByteIdenticalAcrossJobs1And8) {
  const std::string serial = critpath_sweep_dump(/*jobs=*/1);
  EXPECT_NE(serial.find("\"schema\": \"bbsim.sweep.v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"ok\": true"), std::string::npos);
  // The lifted attribution summary rides on every run record.
  EXPECT_NE(serial.find("\"blame_fractions\""), std::string::npos);
  EXPECT_NE(serial.find("\"node_crashes\""), std::string::npos);
  EXPECT_EQ(critpath_sweep_dump(/*jobs=*/8), serial);
}

#endif  // BBSIM_CRITPATH_ENABLED

}  // namespace
}  // namespace bbsim::critpath
