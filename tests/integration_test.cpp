// Integration tests: full paper methodology end-to-end -- testbed
// characterization, Eq (4) calibration, simple-model prediction, error
// computation -- plus case-study smoke runs.
#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "exec/engine.hpp"
#include "model/calibration.hpp"
#include "testbed/testbed.hpp"
#include "workflow/genomes.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

using exec::ExecutionConfig;
using exec::FractionPolicy;
using exec::Simulation;
using exec::Tier;
using testbed::System;
using testbed::Testbed;
using testbed::TestbedOptions;

/// Calibrate from testbed observations and predict with the simple model --
/// the complete Section IV-B pipeline. Returns the pipeline span (the
/// quantity Figure 10 compares; stage-in cost is Figure 4's experiment).
double predict_with_simple_model(System system, const wf::Workflow& workflow,
                                 const std::map<std::string, model::TaskObservation>& obs,
                                 const ExecutionConfig& cfg) {
  wf::Workflow calibrated = workflow;
  const platform::PlatformSpec plat = testbed::paper_platform(system);
  model::calibrate_workflow(calibrated, obs, plat.hosts[0].core_speed);
  Simulation sim(plat, calibrated, cfg);
  return sim.run().workflow_span;
}

/// Mean measured pipeline span over repetitions.
double mean_span(const std::vector<exec::Result>& results) {
  std::vector<double> spans;
  for (const exec::Result& r : results) spans.push_back(r.workflow_span);
  return analysis::describe(spans).mean;
}

TEST(Validation, SimpleModelTracksTestbedForPrivateMode) {
  // Reference scenario: 1 pipeline, 32 cores, everything in the BB.
  const wf::Workflow w = wf::make_swarp({});
  ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();

  TestbedOptions opt;
  opt.repetitions = 5;
  Testbed tb(System::CoriPrivate, opt);
  const auto measured = tb.run_repetitions(w, cfg, 1.0);
  const auto obs = Testbed::observations(measured);
  const double measured_mean = mean_span(measured);

  const double predicted = predict_with_simple_model(System::CoriPrivate, w, obs, cfg);
  // The paper reports ~5.6% average error for the private mode; accept a
  // loose envelope here (the tight numbers live in the benches).
  EXPECT_LT(analysis::relative_error(predicted, measured_mean), 0.35)
      << "predicted=" << predicted << " measured=" << measured_mean;
}

TEST(Validation, SimpleModelTracksTestbedForSummit) {
  const wf::Workflow w = wf::make_swarp({});
  ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  TestbedOptions opt;
  opt.repetitions = 5;
  Testbed tb(System::Summit, opt);
  const auto measured = tb.run_repetitions(w, cfg, 1.0);
  const auto obs = Testbed::observations(measured);
  const double measured_mean = mean_span(measured);
  const double predicted = predict_with_simple_model(System::Summit, w, obs, cfg);
  EXPECT_LT(analysis::relative_error(predicted, measured_mean), 0.35);
}

TEST(Validation, MoreStagingIsFasterInSimpleModel) {
  // Paper Figure 10 discussion: "the simulator behaves as expected, the
  // more the workflow uses burst buffers the faster it runs". The figure
  // plots the pipeline span (the stage-in cost is Figure 4's experiment),
  // so the monotonicity property applies to the span excluding stage-in.
  const wf::Workflow w = wf::make_swarp({});
  double previous = 1e100;
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ExecutionConfig cfg;
    cfg.placement = std::make_shared<FractionPolicy>(fraction, Tier::BurstBuffer);
    Simulation sim(testbed::paper_platform(System::CoriPrivate), w, cfg);
    const double span = sim.run().workflow_span;
    EXPECT_LE(span, previous * 1.0001) << "fraction=" << fraction;
    previous = span;
  }
}

TEST(Validation, ContentionGrowsWithPipelines) {
  // Paper Figures 7/11: concurrent pipelines contend for the BB.
  auto run = [](int pipelines) {
    wf::SwarpConfig scfg;
    scfg.pipelines = pipelines;
    scfg.cores_per_task = 1;
    const wf::Workflow w = wf::make_swarp(scfg);
    ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    TestbedOptions opt;
    opt.repetitions = 1;
    opt.noise = false;
    Testbed tb(System::CoriPrivate, opt);
    const auto results = tb.run_repetitions(w, cfg, 1.0);
    return Testbed::summarize(results).duration_by_type.at("resample").mean;
  };
  const double solo = run(1);
  const double crowded = run(32);
  EXPECT_GT(crowded, solo * 1.3);
}

TEST(CaseStudy, GenomesRunsOnBothPlatforms) {
  // Small instance (2 chromosomes) for test speed.
  wf::GenomesConfig gcfg;
  gcfg.chromosomes = 2;
  const wf::Workflow w = wf::make_1000genomes(gcfg);

  for (const System system : {System::CoriPrivate, System::Summit}) {
    ExecutionConfig cfg;
    cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer);
    cfg.stage_in_mode = exec::StageInMode::Instant;
    platform::PlatformSpec plat = testbed::paper_platform(system, 4);
    Simulation sim(std::move(plat), w, cfg);
    const exec::Result r = sim.run();
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_EQ(r.tasks.size(), w.task_count());
  }
}

TEST(CaseStudy, GenomesStagingImprovesMakespan) {
  wf::GenomesConfig gcfg;
  gcfg.chromosomes = 2;
  const wf::Workflow w = wf::make_1000genomes(gcfg);
  auto run = [&](double fraction) {
    ExecutionConfig cfg;
    cfg.placement = std::make_shared<FractionPolicy>(fraction, Tier::BurstBuffer);
    cfg.stage_in_mode = exec::StageInMode::Instant;
    Simulation sim(testbed::paper_platform(System::CoriPrivate, 4), w, cfg);
    return sim.run().makespan;
  };
  EXPECT_LT(run(1.0), run(0.0));
}

TEST(CaseStudy, SummitBeatsCoriOnGenomes) {
  // Paper Figure 13: "Summit outperforms Cori mainly due to its larger BB
  // bandwidth".
  wf::GenomesConfig gcfg;
  gcfg.chromosomes = 2;
  const wf::Workflow w = wf::make_1000genomes(gcfg);
  auto run = [&](System system) {
    ExecutionConfig cfg;
    cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer);
    cfg.stage_in_mode = exec::StageInMode::Instant;
    Simulation sim(testbed::paper_platform(system, 4), w, cfg);
    return sim.run().makespan;
  };
  EXPECT_LT(run(System::Summit), run(System::CoriPrivate));
}

TEST(Invariants, MakespanRespectsLowerBounds) {
  // Makespan >= critical path compute time; >= total flops / machine flops.
  const wf::Workflow w = wf::make_swarp({.pipelines = 4});
  ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const platform::PlatformSpec plat = testbed::paper_platform(System::CoriPrivate);
  Simulation sim(plat, w, cfg);
  const exec::Result r = sim.run();
  const double machine_flops =
      plat.hosts[0].core_speed * plat.hosts[0].cores * plat.hosts.size();
  EXPECT_GE(r.makespan, w.total_flops() / machine_flops - 1e-6);
  // Work conservation in the flow layer held throughout (spot check).
  sim.fabric().flows().check_invariants();
}

TEST(Invariants, TaskRecordsAreConsistent) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 2});
  ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  Simulation sim(testbed::paper_platform(System::Summit), w, cfg);
  const exec::Result r = sim.run();
  for (const auto& [name, rec] : r.tasks) {
    EXPECT_LE(rec.t_ready, rec.t_start) << name;
    EXPECT_LE(rec.t_start, rec.t_reads_done) << name;
    EXPECT_LE(rec.t_reads_done, rec.t_compute_done) << name;
    EXPECT_LE(rec.t_compute_done, rec.t_end) << name;
    EXPECT_GE(rec.lambda_io(), 0.0) << name;
    EXPECT_LE(rec.lambda_io(), 1.0) << name;
  }
}

TEST(Invariants, StorageNeverExceedsCapacity) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 2});
  ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  Simulation sim(testbed::testbed_platform(System::CoriPrivate, {}), w, cfg);
  sim.run();
  const storage::StorageService* bb = sim.storage().burst_buffer();
  EXPECT_LE(bb->used_bytes(), bb->total_capacity());
}

}  // namespace
}  // namespace bbsim
