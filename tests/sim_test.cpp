// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "stats/metrics.hpp"
#include "util/error.hpp"

namespace bbsim::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ClockMatchesEventTimeInsideHandler) {
  Engine e;
  double seen = -1;
  e.schedule_in(2.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Engine, HandlersMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_in(1.0, [&] {
      ++fired;
      e.schedule_in(1.0, [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  double when = -1;
  e.schedule_at(4.0, [&] { e.schedule_in(0.0, [&] { when = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(when, 4.0);
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(4.0, [] {}), util::InvariantError);
}

TEST(Engine, NonFiniteTimeThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {}),
               util::InvariantError);
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               util::InvariantError);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceIsNoop) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelFromWithinHandler) {
  Engine e;
  bool fired = false;
  const EventId victim = e.schedule_at(2.0, [&] { fired = true; });
  e.schedule_at(1.0, [&] { e.cancel(victim); });
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1.0); });
  e.schedule_at(2.0, [&] { fired.push_back(2.0); });
  e.schedule_at(3.0, [&] { fired.push_back(3.0); });
  EXPECT_TRUE(e.run_until(2.0));  // events at t <= 2 fire
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_FALSE(e.run_until(10.0));
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, ExecutedCountExcludesCancelled) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.executed_count(), 1u);
}

TEST(Engine, PendingCountTracksQueue) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending_count(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending_count(), 1u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    e.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executed_count(), 10000u);
}

TEST(Engine, NaNTimeErrorNamesNaN) {
  // NaN compares false with everything, so a past-time check that runs
  // first used to misreport NaN as "in the past". The finiteness check must
  // run first and the error must say NaN.
  Engine e;
  try {
    e.schedule_at(std::numeric_limits<double>::quiet_NaN(), [] {});
    FAIL() << "NaN time must throw";
  } catch (const util::InvariantError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("NaN"), std::string::npos) << what;
    EXPECT_EQ(what.find("past"), std::string::npos) << what;
  }
}

TEST(Engine, QueueDepthMetricIsLiveCountAfterCancelBursts) {
  // Tombstones sit in the queue until popped or compacted; the queue-depth
  // gauge and pending_count() must report the live count anyway.
  stats::MetricsRegistry metrics;
  Engine e;
  e.set_metrics(&metrics);
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(e.schedule_at(static_cast<double>(i) + 1.0, [] {}));
  }
  for (int i = 0; i < 200; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(e.pending_count(), 100u);
  EXPECT_DOUBLE_EQ(metrics.gauge("sim.queue_depth").value(), 100.0);
  // Executing events keeps the gauge in sync too (it used to be updated
  // only by schedule_at).
  e.step();
  EXPECT_EQ(e.pending_count(), 99u);
  EXPECT_DOUBLE_EQ(metrics.gauge("sim.queue_depth").value(), 99.0);
  e.run();
  EXPECT_EQ(e.pending_count(), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("sim.queue_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sim.events_executed").value(), 100.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sim.events_cancelled").value(), 100.0);
}

TEST(Engine, CancelHeavyChurnExecutesSurvivorsInOrder) {
  // Interleaved schedule/cancel bursts (the tombstone-compaction path) must
  // not lose or reorder surviving events.
  Engine e;
  std::vector<double> fired;
  std::vector<EventId> cancelled;
  int expected = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      const double t = static_cast<double>((round * 40 + i) % 97) + 1.0;
      const EventId id = e.schedule_at(t, [&fired, t] { fired.push_back(t); });
      if (i % 4 != 0) {
        cancelled.push_back(id);
      } else {
        ++expected;
      }
    }
    for (const EventId id : cancelled) e.cancel(id);
    cancelled.clear();
  }
  e.run();
  EXPECT_EQ(static_cast<int>(fired.size()), expected);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Engine, CalendarHandlesClusteredAndFarApartTimes) {
  // Sub-nanosecond clusters next to year-scale gaps exercise the calendar's
  // rebuild and direct-search fallback paths; ordering must survive.
  Engine e;
  double last = -1.0;
  bool monotone = true;
  auto probe = [&](double t) {
    e.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  };
  for (int i = 0; i < 500; ++i) probe(1.0 + 1e-9 * i);
  for (int i = 0; i < 500; ++i) probe(3.1e7 * (i + 1));
  for (int i = 0; i < 500; ++i) probe(2.0 + 1e-9 * i);
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.executed_count(), 1500u);
}

TEST(CalendarQueue, ShrinkRebuildMovingEverythingToFarHeapStillPops) {
  // Regression: a shrink rebuild re-derives the bucket width from the
  // survivors' time span. When the only survivors are a 1-ulp-wide cluster
  // at a large timestamp, the re-derived width is so small that every
  // survivor's day index overflows 2^53 and the whole pending set lands in
  // the far_ overflow heap -- the calendar-empty case must be re-checked
  // after the rebuild or the fallback scan reads past the bucket array.
  CalendarQueue q;
  std::uint64_t seq = 0;
  auto push = [&](double t) {
    EventRecord r;
    r.time = t;
    r.seq = seq++;
    r.id = seq;
    q.push(r);
  };
  // 500 spread records grow the calendar well past kMinBuckets, so popping
  // them back out triggers the shrink-rebuild cascade.
  for (int i = 0; i < 500; ++i) push(static_cast<double>(i));
  const double t0 = 1.0e6;
  for (int i = 0; i < 7; ++i) push(t0);
  push(std::nextafter(t0, 2.0 * t0));

  EventRecord r;
  double last = -1.0;
  std::size_t popped = 0;
  while (q.pop_min(r)) {
    EXPECT_GE(r.time, last);
    last = r.time;
    ++popped;
  }
  EXPECT_EQ(popped, 508u);
  EXPECT_TRUE(q.empty());
}

TEST(Engine, FifoAmongEqualTimestampsSurvivesCancelChurn) {
  Engine e;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(e.schedule_at(5.0, [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 100; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  e.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    EXPECT_LT(order[k], order[k + 1]);  // insertion order among equal times
  }
}

}  // namespace
}  // namespace bbsim::sim
