// Unit tests for the synthetic testbed emulator.
#include <gtest/gtest.h>

#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "workflow/swarp.hpp"

namespace bbsim::testbed {
namespace {

using platform::BBMode;
using platform::PlatformSpec;
using platform::StorageKind;

TEST(TestbedPlatform, OverlaysApplied) {
  TestbedOptions opt;
  const PlatformSpec p = testbed_platform(System::CoriPrivate, opt);
  const platform::StorageSpec& bb = p.storage[p.find_kind(StorageKind::SharedBB)];
  EXPECT_LT(bb.stream_bw, platform::kUnlimited);
  EXPECT_GT(bb.base_latency, 0.0);
  EXPECT_LT(bb.metadata_ops_per_sec, platform::kUnlimited);
  EXPECT_EQ(bb.mode, BBMode::Private);
}

TEST(TestbedPlatform, StripedSpreadsTableOneAggregate) {
  const PlatformSpec p = testbed_platform(System::CoriStriped, {});
  const platform::StorageSpec& bb = p.storage[p.find_kind(StorageKind::SharedBB)];
  EXPECT_EQ(bb.mode, BBMode::Striped);
  EXPECT_GT(bb.num_nodes, 1);
  // Aggregate disk bandwidth stays at Table I's 950 MB/s.
  EXPECT_NEAR(bb.disk.read_bw * bb.num_nodes, 950e6, 1.0);
  EXPECT_NEAR(bb.link.bandwidth * bb.num_nodes, 800e6, 1.0);
}

TEST(TestbedPlatform, SummitAsymmetricDevice) {
  const PlatformSpec p = testbed_platform(System::Summit, {});
  const platform::StorageSpec& bb = p.storage[p.find_kind(StorageKind::NodeLocalBB)];
  EXPECT_DOUBLE_EQ(bb.disk.read_bw, 6.0e9);   // PM1725a read
  EXPECT_DOUBLE_EQ(bb.disk.write_bw, 2.1e9);  // PM1725a write
}

TEST(TestbedPlatform, PaperPlatformIsPlainTableOne) {
  const PlatformSpec p = paper_platform(System::CoriStriped);
  const platform::StorageSpec& bb = p.storage[p.find_kind(StorageKind::SharedBB)];
  EXPECT_EQ(bb.stream_bw, platform::kUnlimited);
  EXPECT_EQ(bb.metadata_ops_per_sec, platform::kUnlimited);
  EXPECT_DOUBLE_EQ(bb.disk.read_bw, 950e6);
  EXPECT_EQ(bb.mode, BBMode::Striped);
}

TEST(Testbed, NoNoiseIsDeterministic) {
  TestbedOptions opt;
  opt.noise = false;
  opt.repetitions = 3;
  Testbed tb(System::CoriPrivate, opt);
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto results = tb.run_repetitions(w, cfg);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].makespan, results[1].makespan);
  EXPECT_DOUBLE_EQ(results[1].makespan, results[2].makespan);
}

TEST(Testbed, NoiseCreatesRunToRunVariation) {
  TestbedOptions opt;
  opt.repetitions = 5;
  Testbed tb(System::CoriStriped, opt);
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto results = tb.run_repetitions(w, cfg);
  const MeasuredStats stats = Testbed::summarize(results);
  EXPECT_GT(stats.makespan.stddev, 0.0);
}

TEST(Testbed, SameSeedSameResults) {
  TestbedOptions opt;
  opt.repetitions = 2;
  opt.seed = 123;
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto a = Testbed(System::CoriPrivate, opt).run_repetitions(w, cfg);
  const auto b = Testbed(System::CoriPrivate, opt).run_repetitions(w, cfg);
  EXPECT_DOUBLE_EQ(a[0].makespan, b[0].makespan);
  EXPECT_DOUBLE_EQ(a[1].makespan, b[1].makespan);
}

TEST(Testbed, SummarizeAggregatesTypes) {
  TestbedOptions opt;
  opt.repetitions = 3;
  opt.noise = false;
  Testbed tb(System::Summit, opt);
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto results = tb.run_repetitions(w, cfg);
  const MeasuredStats stats = Testbed::summarize(results);
  EXPECT_TRUE(stats.duration_by_type.count("resample"));
  EXPECT_TRUE(stats.duration_by_type.count("combine"));
  EXPECT_GT(stats.duration_by_type.at("resample").mean, 0.0);
  EXPECT_GT(stats.lambda_by_type.at("resample"), 0.0);
  EXPECT_LT(stats.lambda_by_type.at("resample"), 1.0);
}

TEST(Testbed, ObservationsFeedCalibration) {
  TestbedOptions opt;
  opt.repetitions = 2;
  opt.noise = false;
  Testbed tb(System::CoriPrivate, opt);
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_pfs_policy();
  const auto obs = Testbed::observations(tb.run_repetitions(w, cfg));
  ASSERT_TRUE(obs.count("resample"));
  ASSERT_TRUE(obs.count("combine"));
  EXPECT_FALSE(obs.count("stage_in"));  // not a compute task
  EXPECT_EQ(obs.at("resample").observed_cores, 32);
  EXPECT_GT(obs.at("resample").observed_time, 0.0);
  EXPECT_GT(obs.at("resample").lambda_io, 0.0);
  EXPECT_DOUBLE_EQ(obs.at("resample").alpha, 0.0);  // paper's Eq (4)
}

TEST(Testbed, StripedSlowerThanPrivateForSwarp) {
  // The headline qualitative result of paper Figure 5: the striped mode is
  // pathological for SWarp's 1:N small-file pattern.
  TestbedOptions opt;
  opt.repetitions = 3;
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto priv = Testbed::summarize(
      Testbed(System::CoriPrivate, opt).run_repetitions(w, cfg, 1.0));
  const auto striped = Testbed::summarize(
      Testbed(System::CoriStriped, opt).run_repetitions(w, cfg, 1.0));
  EXPECT_GT(striped.makespan.mean, priv.makespan.mean * 1.5);
}

TEST(Testbed, SummitFastestAndMostStable) {
  TestbedOptions opt;
  opt.repetitions = 5;
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  const auto summit = Testbed::summarize(
      Testbed(System::Summit, opt).run_repetitions(w, cfg, 1.0));
  const auto striped = Testbed::summarize(
      Testbed(System::CoriStriped, opt).run_repetitions(w, cfg, 1.0));
  EXPECT_LT(summit.makespan.mean, striped.makespan.mean);
  EXPECT_LT(summit.makespan.cv(), striped.makespan.cv());
}

TEST(Testbed, StripedAnomalyRaisesStageInAt75) {
  TestbedOptions opt;
  opt.repetitions = 3;
  Testbed tb(System::CoriStriped, opt);
  const wf::Workflow w = wf::make_swarp({});
  exec::ExecutionConfig cfg;
  cfg.placement = std::make_shared<exec::FractionPolicy>(0.75, exec::Tier::BurstBuffer);
  const auto with_anomaly = Testbed::summarize(tb.run_repetitions(w, cfg, 0.75));
  TestbedOptions opt2 = opt;
  opt2.striped_anomaly = false;
  const auto without = Testbed::summarize(
      Testbed(System::CoriStriped, opt2).run_repetitions(w, cfg, 0.75));
  EXPECT_GT(with_anomaly.stage_in.mean, without.stage_in.mean);
}

TEST(Testbed, InvalidOptionsRejected) {
  TestbedOptions opt;
  opt.repetitions = 0;
  EXPECT_THROW(Testbed(System::Summit, opt), util::ConfigError);
}

}  // namespace
}  // namespace bbsim::testbed

// --------------------------------------------------------- characterization

#include "testbed/characterize.hpp"

namespace bbsim::testbed {
namespace {

std::vector<exec::Result> sample_results() {
  TestbedOptions opt;
  opt.repetitions = 2;
  opt.noise = false;
  Testbed tb(System::CoriPrivate, opt);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  return tb.run_repetitions(wf::make_swarp({}), cfg);
}

TEST(Characterize, TableHasRowPerType) {
  const auto table = characterization_table(sample_results());
  EXPECT_EQ(table.row_count(), 3u);  // stage_in, resample, combine
  const std::string text = table.to_string();
  EXPECT_NE(text.find("resample"), std::string::npos);
  EXPECT_NE(text.find("lambda_io"), std::string::npos);
}

TEST(Characterize, StorageTableListsServices) {
  const std::string text = storage_table(sample_results()).to_string();
  EXPECT_NE(text.find("pfs"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
}

TEST(Characterize, ReportCombinesBoth) {
  const std::string report = characterization_report(sample_results());
  EXPECT_NE(report.find("per task type"), std::string::npos);
  EXPECT_NE(report.find("per storage service"), std::string::npos);
}

TEST(Characterize, EmptyInputRejected) {
  EXPECT_THROW(characterization_table({}), util::InvariantError);
  EXPECT_THROW(storage_table({}), util::InvariantError);
}

}  // namespace
}  // namespace bbsim::testbed
