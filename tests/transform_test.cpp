// Tests for the workflow clustering transformation and the post-run
// result validator.
#include <gtest/gtest.h>

#include "exec/engine.hpp"
#include "exec/validate.hpp"
#include "model/calibration.hpp"
#include "platform/presets.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"
#include "workflow/clustering.hpp"
#include "workflow/montage.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

// ------------------------------------------------------------- clustering

TEST(Clustering, MergesSwarpPipelines) {
  // Each resample -> combine pair is a maximal chain (the intermediates
  // have a single consumer); stage_in fans out so it stays separate.
  const wf::Workflow w = wf::make_swarp({.pipelines = 3});
  const wf::ClusteringResult r = wf::cluster_chains(w);
  EXPECT_EQ(r.chains_merged, 3u);
  // 3 merged pipelines + stage_in.
  EXPECT_EQ(r.workflow.task_count(), 4u);
  // The 32 intermediates per pipeline disappeared.
  EXPECT_EQ(r.files_internalised, 3u * 32u);
  EXPECT_EQ(r.mapping.at("resample_001"), r.mapping.at("combine_001"));
  EXPECT_NE(r.mapping.at("resample_001"), r.mapping.at("combine_002"));
  // Work is conserved.
  EXPECT_DOUBLE_EQ(r.workflow.total_flops(), w.total_flops());
  // Merged profile: cores are the max along the chain; alpha is the
  // equivalent fraction that preserves the chain's time at 1 and at 32
  // cores (back-to-back execution of the members).
  const wf::Task& merged = r.workflow.task(r.mapping.at("resample_000"));
  EXPECT_EQ(merged.requested_cores, 32);
  const double speed = 36.80e9;
  const double member_time =
      model::amdahl_time(48.0, 32, 0.08) + model::amdahl_time(36.0, 32, 0.85);
  EXPECT_NEAR(model::amdahl_time(merged.flops / speed, 32, merged.alpha),
              member_time, 1e-6);
  // Final coadd outputs survive; raw inputs survive.
  EXPECT_TRUE(r.workflow.has_file("p000_coadd.fits"));
  EXPECT_TRUE(r.workflow.has_file("p000_img_00.fits"));
  EXPECT_FALSE(r.workflow.has_file("p000_img_00.resamp.fits"));
}

TEST(Clustering, RespectsInternalFileSizeLimit) {
  const wf::Workflow w = wf::make_swarp({});
  wf::ClusteringOptions opt;
  opt.max_internal_file_bytes = 1.0;  // nothing may be internalised
  const wf::ClusteringResult r = wf::cluster_chains(w, opt);
  EXPECT_EQ(r.chains_merged, 0u);
  EXPECT_EQ(r.workflow.task_count(), w.task_count());
}

TEST(Clustering, RespectsMergedWorkLimit) {
  // resample 48 s + combine 36 s sequential at reference speed: a 60 s
  // budget forbids the merge.
  const wf::Workflow w = wf::make_swarp({});
  wf::ClusteringOptions opt;
  opt.max_merged_seconds = 60.0;
  EXPECT_EQ(wf::cluster_chains(w, opt).chains_merged, 0u);
  opt.max_merged_seconds = 120.0;
  EXPECT_EQ(wf::cluster_chains(w, opt).chains_merged, 1u);
}

TEST(Clustering, FanInFanOutUntouched) {
  // Montage's concat/add fan-ins cannot be merged; only project->difffit
  // style chains could, but projections feed two difffits each.
  const wf::Workflow w = wf::make_montage({.tiles = 6});
  const wf::ClusteringResult r = wf::cluster_chains(w);
  // Seismogram-style chains do not exist here: nothing merges.
  EXPECT_EQ(r.chains_merged, 0u);
  EXPECT_EQ(r.workflow.task_count(), w.task_count());
}

TEST(Clustering, ClusteredWorkflowRunsAndIsNotSlower) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 4});
  const wf::ClusteringResult c = wf::cluster_chains(w);
  auto run = [](const wf::Workflow& workflow) {
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    exec::Simulation sim(testbed::paper_platform(testbed::System::CoriPrivate),
                         workflow, cfg);
    return sim.run().makespan;
  };
  const double plain = run(w);
  const double clustered = run(c.workflow);
  // Internalised intermediates skip the storage layer entirely, so the
  // clustered run can only be as fast or faster here.
  EXPECT_LE(clustered, plain + 1e-6);
}

TEST(Clustering, RandomDagsStayValid) {
  for (int seed = 0; seed < 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const wf::Workflow w = wf::make_random_layered({}, rng);
    const wf::ClusteringResult r = wf::cluster_chains(w);
    r.workflow.validate();  // throws on violation
    EXPECT_NEAR(r.workflow.total_flops(), w.total_flops(), 1e-3);
    EXPECT_EQ(r.mapping.size(), w.task_count());
  }
}

// -------------------------------------------------------------- validator

TEST(Validate, CleanRunPasses) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 2});
  const platform::PlatformSpec plat =
      testbed::paper_platform(testbed::System::CoriPrivate);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(plat, w, cfg);
  const exec::Result r = sim.run();
  EXPECT_TRUE(exec::validate_result(r, w, plat).empty());
  EXPECT_NO_THROW(exec::expect_valid(r, w, plat));
}

TEST(Validate, DetectsMissingTask) {
  const wf::Workflow w = wf::make_swarp({});
  const platform::PlatformSpec plat =
      testbed::paper_platform(testbed::System::CoriPrivate);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(plat, w, cfg);
  exec::Result r = sim.run();
  r.tasks.erase("combine_000");
  const auto issues = exec::validate_result(r, w, plat);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().what.find("no record"), std::string::npos);
  EXPECT_THROW(exec::expect_valid(r, w, plat), util::InvariantError);
}

TEST(Validate, DetectsPrecedenceViolation) {
  const wf::Workflow w = wf::make_swarp({});
  const platform::PlatformSpec plat =
      testbed::paper_platform(testbed::System::CoriPrivate);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(plat, w, cfg);
  exec::Result r = sim.run();
  // Start (and be "ready") before the parent resample ends.
  r.tasks.at("combine_000").t_ready = 0.0;
  r.tasks.at("combine_000").t_start = 0.0;
  bool found = false;
  for (const auto& issue : exec::validate_result(r, w, plat)) {
    if (issue.what.find("precedence") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsOversubscription) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 2});
  const platform::PlatformSpec plat =
      testbed::paper_platform(testbed::System::CoriPrivate);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(plat, w, cfg);
  exec::Result r = sim.run();
  // Force both 32-core resamples to overlap on the single 32-core host.
  auto& a = r.tasks.at("resample_000");
  auto& b = r.tasks.at("resample_001");
  b.t_start = a.t_start;
  b.t_reads_done = std::max(b.t_start, b.t_reads_done);
  bool found = false;
  for (const auto& issue : exec::validate_result(r, w, plat)) {
    if (issue.what.find("oversubscribed") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsPhaseDisorder) {
  const wf::Workflow w = wf::make_swarp({});
  const platform::PlatformSpec plat =
      testbed::paper_platform(testbed::System::CoriPrivate);
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  exec::Simulation sim(plat, w, cfg);
  exec::Result r = sim.run();
  r.tasks.at("resample_000").t_compute_done =
      r.tasks.at("resample_000").t_reads_done - 1.0;
  bool found = false;
  for (const auto& issue : exec::validate_result(r, w, plat)) {
    if (issue.what.find("out of order") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, EveryEngineRunOnRandomDagsValidates) {
  for (int seed = 0; seed < 8; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 333);
    const wf::Workflow w = wf::make_random_layered({}, rng);
    const platform::PlatformSpec plat =
        testbed::paper_platform(testbed::System::Summit, 2);
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    cfg.stage_in_mode = exec::StageInMode::Instant;
    cfg.scheduler = seed % 2 == 0 ? exec::SchedulerPolicy::Fcfs
                                  : exec::SchedulerPolicy::CriticalPathFirst;
    exec::Simulation sim(plat, w, cfg);
    EXPECT_NO_THROW(exec::expect_valid(sim.run(), w, plat)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bbsim
