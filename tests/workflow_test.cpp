// Unit + property tests for the workflow DAG, parsers, and generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "json/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workflow/genomes.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/swarp.hpp"
#include "workflow/wfformat.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::wf {
namespace {

Workflow diamond() {
  // a -> {b, c} -> d through files.
  Workflow w;
  w.add_file({"in", 10});
  w.add_file({"ab", 10});
  w.add_file({"ac", 10});
  w.add_file({"bd", 10});
  w.add_file({"cd", 10});
  w.add_file({"out", 10});
  w.add_task({"a", "t", 1e9, 0, 1, {"in"}, {"ab", "ac"}});
  w.add_task({"b", "t", 1e9, 0, 1, {"ab"}, {"bd"}});
  w.add_task({"c", "t", 1e9, 0, 1, {"ac"}, {"cd"}});
  w.add_task({"d", "t", 1e9, 0, 1, {"bd", "cd"}, {"out"}});
  return w;
}

TEST(Workflow, StructureQueriesOnDiamond) {
  const Workflow w = diamond();
  w.validate();
  EXPECT_EQ(w.task_count(), 4u);
  EXPECT_EQ(w.file_count(), 6u);
  EXPECT_EQ(w.entry_tasks(), (std::vector<std::string>{"a"}));
  EXPECT_EQ(w.exit_tasks(), (std::vector<std::string>{"d"}));
  EXPECT_EQ(w.input_files(), (std::vector<std::string>{"in"}));
  EXPECT_EQ(w.output_files(), (std::vector<std::string>{"out"}));
  EXPECT_EQ(w.intermediate_files().size(), 4u);
  EXPECT_EQ(*w.producer("ab"), "a");
  EXPECT_FALSE(w.producer("in").has_value());
  EXPECT_EQ(w.consumers("in"), (std::vector<std::string>{"a"}));
  const auto parents_d = w.parents("d");
  EXPECT_EQ(std::set<std::string>(parents_d.begin(), parents_d.end()),
            (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(w.critical_path_length(), 3u);
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
  const Workflow w = diamond();
  const auto order = w.topological_order();
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos["a"], pos["b"]);
  EXPECT_LT(pos["a"], pos["c"]);
  EXPECT_LT(pos["b"], pos["d"]);
  EXPECT_LT(pos["c"], pos["d"]);
}

TEST(Workflow, CycleDetected) {
  Workflow w;
  w.add_file({"x", 1});
  w.add_file({"y", 1});
  w.add_task({"a", "t", 1, 0, 1, {"y"}, {"x"}});
  w.add_task({"b", "t", 1, 0, 1, {"x"}, {"y"}});
  EXPECT_THROW(w.topological_order(), util::InvariantError);
}

TEST(Workflow, ControlDepCycleDetected) {
  Workflow w;
  w.add_task({"a", "t", 1, 0, 1, {}, {}});
  w.add_task({"b", "t", 1, 0, 1, {}, {}});
  w.add_control_dep("a", "b");
  w.add_control_dep("b", "a");
  EXPECT_THROW(w.validate(), util::InvariantError);
}

TEST(Workflow, SingleWriterEnforced) {
  Workflow w;
  w.add_file({"f", 1});
  w.add_task({"a", "t", 1, 0, 1, {}, {"f"}});
  w.add_task({"b", "t", 1, 0, 1, {}, {"f"}});
  EXPECT_THROW(w.validate(), util::InvariantError);
}

TEST(Workflow, ValidationCatchesMistakes) {
  Workflow w;
  w.add_file({"f", 1});
  EXPECT_THROW(w.add_task({"", "t", 1, 0, 1, {}, {}}), util::ConfigError);
  EXPECT_THROW(w.add_task({"t", "t", -1, 0, 1, {}, {}}), util::ConfigError);
  EXPECT_THROW(w.add_task({"t", "t", 1, 1.5, 1, {}, {}}), util::ConfigError);
  EXPECT_THROW(w.add_task({"t", "t", 1, 0, 0, {}, {}}), util::ConfigError);
  EXPECT_THROW(w.add_file({"g", -1}), util::ConfigError);

  w.add_task({"t", "t", 1, 0, 1, {"missing"}, {}});
  EXPECT_THROW(w.validate(), util::ConfigError);

  Workflow w2;
  w2.add_file({"f", 1});
  w2.add_task({"t", "t", 1, 0, 1, {"f"}, {"f"}});  // reads and writes same file
  EXPECT_THROW(w2.validate(), util::ConfigError);

  Workflow w3;
  w3.add_task({"t", "t", 1, 0, 1, {}, {}});
  w3.add_control_dep("t", "ghost");
  EXPECT_THROW(w3.validate(), util::ConfigError);

  Workflow w4;
  w4.add_task({"t", "t", 1, 0, 1, {}, {}});
  EXPECT_THROW(w4.add_task({"t", "t", 1, 0, 1, {}, {}}), util::ConfigError);
}

TEST(Workflow, Aggregates) {
  const Workflow w = diamond();
  EXPECT_DOUBLE_EQ(w.total_data_bytes(), 60.0);
  EXPECT_DOUBLE_EQ(w.total_flops(), 4e9);
  EXPECT_DOUBLE_EQ(w.input_data_bytes(), 10.0);
}

// --------------------------------------------------------------- generators

TEST(Swarp, StructureMatchesPaperFigure2) {
  SwarpConfig cfg;
  cfg.pipelines = 3;
  const Workflow w = make_swarp(cfg);
  // 1 stage-in + 2 tasks per pipeline.
  EXPECT_EQ(w.task_count(), 1u + 2u * 3u);
  EXPECT_EQ(w.entry_tasks(), (std::vector<std::string>{"stage_in"}));
  // Each resample depends on stage_in only; each combine on its resample.
  EXPECT_EQ(w.parents("resample_001"), (std::vector<std::string>{"stage_in"}));
  EXPECT_EQ(w.parents("combine_001"), (std::vector<std::string>{"resample_001"}));
  EXPECT_EQ(w.critical_path_length(), 3u);
  // 16 images + 16 weights per pipeline as inputs.
  EXPECT_EQ(w.input_files().size(), 3u * 32u);
}

TEST(Swarp, FileSizesMatchPaper) {
  const Workflow w = make_swarp({});
  EXPECT_DOUBLE_EQ(w.file("p000_img_00.fits").size, 32.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(w.file("p000_wgt_00.fits").size, 16.0 * 1024 * 1024);
  // Input data: 16*32 + 16*16 MiB = 768 MiB per pipeline.
  EXPECT_DOUBLE_EQ(w.input_data_bytes(), 768.0 * 1024 * 1024);
}

TEST(Swarp, TaskProfiles) {
  const Workflow w = make_swarp({});
  const Task& r = w.task("resample_000");
  EXPECT_DOUBLE_EQ(r.flops, 48.0 * 36.80e9);
  EXPECT_EQ(r.requested_cores, 32);
  const Task& c = w.task("combine_000");
  EXPECT_GT(c.alpha, r.alpha);  // combine parallelises worse (paper Fig. 6)
  const Task& s = w.task("stage_in");
  EXPECT_DOUBLE_EQ(s.flops, 0.0);
  EXPECT_EQ(s.requested_cores, 1);
}

TEST(Swarp, NoStageInOption) {
  SwarpConfig cfg;
  cfg.with_stage_in = false;
  cfg.pipelines = 2;
  const Workflow w = make_swarp(cfg);
  EXPECT_EQ(w.task_count(), 4u);
  EXPECT_EQ(w.entry_tasks().size(), 2u);
}

TEST(Genomes, TaskCountMatchesPaper) {
  const Workflow w = make_1000genomes({});
  EXPECT_EQ(w.task_count(), 903u);  // paper Section IV-C
}

TEST(Genomes, DataFootprintMatchesPaper) {
  const Workflow w = make_1000genomes({});
  // ~67 GB total, ~52 GB input (paper: "total workflow data footprint of
  // ~67 GB", "total input data is about 52 GB, i.e. 77%").
  EXPECT_NEAR(w.total_data_bytes() / 1e9, 67.0, 2.0);
  EXPECT_NEAR(w.input_data_bytes() / 1e9, 52.0, 1.5);
  EXPECT_NEAR(w.input_data_bytes() / w.total_data_bytes(), 0.77, 0.03);
}

TEST(Genomes, StructureMatchesFigure12) {
  GenomesConfig cfg;
  cfg.chromosomes = 2;
  const Workflow w = make_1000genomes(cfg);
  // per chromosome: 25 ind + merge + sifting + 7 pair + 7 freq, plus one
  // global populations task.
  EXPECT_EQ(w.task_count(), 2u * 41u + 1u);
  // pair tasks depend on merge, sifting and populations.
  const auto parents = w.parents("pair_overlap_c00_p0");
  const std::set<std::string> pset(parents.begin(), parents.end());
  EXPECT_TRUE(pset.count("individuals_merge_c00"));
  EXPECT_TRUE(pset.count("sifting_c00"));
  EXPECT_TRUE(pset.count("populations"));
  EXPECT_EQ(w.critical_path_length(), 3u);  // ind -> merge -> pair
}

TEST(RandomDag, ValidatesAndIsDeterministic) {
  RandomDagConfig cfg;
  util::Rng rng1(7);
  util::Rng rng2(7);
  const Workflow a = make_random_layered(cfg, rng1);
  const Workflow b = make_random_layered(cfg, rng2);
  a.validate();
  EXPECT_EQ(a.task_count(), b.task_count());
  EXPECT_EQ(a.total_data_bytes(), b.total_data_bytes());
}

class RandomDagProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperty, AlwaysAcyclicSingleWriterConnected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomDagConfig cfg;
  cfg.levels = static_cast<int>(rng.uniform_int(1, 6));
  const Workflow w = make_random_layered(cfg, rng);
  w.validate();  // throws on violation
  // Every non-entry task has at least one parent (layer connectivity).
  for (const std::string& t : w.task_names()) {
    if (util::starts_with(t, "t_l00_")) continue;
    EXPECT_FALSE(w.parents(t).empty()) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, ::testing::Range(0, 25));

// ------------------------------------------------------------------ formats

TEST(WfFormat, LegacyRoundTrip) {
  const Workflow original = make_swarp({});
  const json::Value doc = to_wfformat(original);
  const Workflow parsed = from_wfformat(doc);
  EXPECT_EQ(parsed.task_count(), original.task_count());
  EXPECT_EQ(parsed.file_count(), original.file_count());
  const Task& r1 = parsed.task("resample_000");
  const Task& r2 = original.task("resample_000");
  EXPECT_DOUBLE_EQ(r1.flops, r2.flops);
  EXPECT_DOUBLE_EQ(r1.alpha, r2.alpha);
  EXPECT_EQ(r1.inputs.size(), r2.inputs.size());
  EXPECT_EQ(parsed.parents("combine_000"), original.parents("combine_000"));
}

TEST(WfFormat, LegacyRuntimeToFlopsViaEq4) {
  const auto doc = json::parse(R"({
    "name": "t", "workflow": { "jobs": [
      {"name": "j", "runtime": 10.0, "cores": 4, "ioFraction": 0.25,
       "files": [{"name": "in", "size": 100, "link": "input"}]}
    ]}})");
  WfFormatOptions opt;
  opt.reference_core_speed = 1e9;
  const Workflow w = from_wfformat(doc, opt);
  // Eq (4): flops = p (1 - lambda) T(p) * speed = 4 * 0.75 * 10 * 1e9.
  EXPECT_DOUBLE_EQ(w.task("j").flops, 30e9);
}

TEST(WfFormat, ModernSpecificationLayout) {
  const auto doc = json::parse(R"({
    "name": "modern", "workflow": {
      "specification": {
        "tasks": [
          {"id": "t1", "inputFiles": ["f1"], "outputFiles": ["f2"]},
          {"id": "t2", "inputFiles": ["f2"], "outputFiles": [], "parents": ["t1"]}
        ],
        "files": [{"id": "f1", "sizeInBytes": 100}, {"id": "f2", "sizeInBytes": 200}]
      },
      "execution": {
        "tasks": [{"id": "t1", "runtimeInSeconds": 5, "coreCount": 2}]
      }
    }})");
  const Workflow w = from_wfformat(doc);
  EXPECT_EQ(w.task_count(), 2u);
  EXPECT_EQ(w.task("t1").requested_cores, 2);
  EXPECT_GT(w.task("t1").flops, 0.0);
  EXPECT_EQ(w.parents("t2"), (std::vector<std::string>{"t1"}));
  EXPECT_DOUBLE_EQ(w.file("f2").size, 200.0);
}

TEST(WfFormat, RejectsMalformedDocuments) {
  EXPECT_THROW(from_wfformat(json::parse(R"({"name": "x"})")), util::ParseError);
  EXPECT_THROW(from_wfformat(json::parse(R"({"workflow": {}})")), util::ParseError);
  EXPECT_THROW(from_wfformat(json::parse(
                   R"({"workflow": {"jobs": [{"runtime": 1}]}})")),
               util::ParseError);
}

TEST(WfFormat, FileRoundTripOnDisk) {
  const std::string path = ::testing::TempDir() + "/bbsim_wf_test.json";
  const Workflow original = make_1000genomes({.chromosomes = 1});
  save_workflow(path, original);
  const Workflow loaded = load_workflow(path);
  EXPECT_EQ(loaded.task_count(), original.task_count());
  EXPECT_DOUBLE_EQ(loaded.total_data_bytes(), original.total_data_bytes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsim::wf

// ------------------------------------------- extra generators and describe

#include "exec/engine.hpp"
#include "platform/presets.hpp"
#include "workflow/describe.hpp"
#include "workflow/montage.hpp"

namespace bbsim::wf {
namespace {

TEST(Montage, StructureIsFanInFanOut) {
  MontageConfig cfg;
  cfg.tiles = 8;
  const Workflow w = make_montage(cfg);
  w.validate();
  // 8 project + 7 difffit + 1 concat + 8 background + 1 add.
  EXPECT_EQ(w.task_count(), 8u + 7u + 1u + 8u + 1u);
  // mConcatFit fans in from every diff; mAdd from every corrected tile.
  EXPECT_EQ(w.parents("mConcatFit").size(), 7u);
  EXPECT_EQ(w.parents("mAdd").size(), 8u);
  // fits.tbl is a broadcast file read by all background tasks.
  EXPECT_EQ(w.consumers("fits.tbl").size(), 8u);
  // Depth: project -> difffit -> concat -> background -> add.
  EXPECT_EQ(w.critical_path_length(), 5u);
  EXPECT_EQ(w.exit_tasks(), (std::vector<std::string>{"mAdd"}));
}

TEST(Montage, RejectsTooFewTiles) {
  MontageConfig cfg;
  cfg.tiles = 1;
  EXPECT_THROW(make_montage(cfg), util::ConfigError);
}

TEST(CyberShake, StructureMatches) {
  CyberShakeConfig cfg;
  cfg.variations = 2;
  cfg.ruptures = 5;
  const Workflow w = make_cybershake(cfg);
  w.validate();
  // 2 extract + 2*5 seismogram + 2*5 peak + 1 zip.
  EXPECT_EQ(w.task_count(), 2u + 10u + 10u + 1u);
  EXPECT_EQ(w.parents("ZipSeis").size(), 10u);
  // Each seismogram depends on its variation's extract only.
  EXPECT_EQ(w.parents("Seismogram_1_003"),
            (std::vector<std::string>{"ExtractSGT_1"}));
  EXPECT_EQ(w.critical_path_length(), 4u);
}

TEST(CyberShake, RunsOnEngine) {
  CyberShakeConfig cfg;
  cfg.variations = 2;
  cfg.ruptures = 3;
  const Workflow w = make_cybershake(cfg);
  exec::ExecutionConfig ecfg;
  ecfg.placement = exec::all_bb_policy();
  ecfg.stage_in_mode = exec::StageInMode::Instant;
  exec::Simulation sim(platform::cori_platform(), w, ecfg);
  const exec::Result r = sim.run();
  EXPECT_EQ(r.tasks.size(), w.task_count());
}

TEST(Describe, SummaryMatchesHandCounts) {
  const Workflow w = make_swarp({.pipelines = 2});
  const WorkflowSummary s = summarize(w);
  EXPECT_EQ(s.tasks, 5u);
  EXPECT_EQ(s.files, 2u * 66u);  // 64 in/out pairs + 2 coadds per pipeline
  EXPECT_EQ(s.levels, 3u);
  EXPECT_EQ(s.max_level_width, 2u);
  EXPECT_EQ(s.max_fan_in, 32u);
  EXPECT_EQ(s.max_fan_out, 1u);
  EXPECT_DOUBLE_EQ(s.total_bytes, w.total_data_bytes());
  EXPECT_DOUBLE_EQ(s.input_bytes + s.intermediate_bytes + s.output_bytes,
                   s.total_bytes);
  EXPECT_EQ(s.by_type.at("resample").count, 2u);
  EXPECT_EQ(s.by_type.at("resample").max_requested_cores, 32);
}

TEST(Describe, ReportMentionsKeyNumbers) {
  const std::string text = describe(make_swarp({}));
  EXPECT_NE(text.find("tasks 3"), std::string::npos);
  EXPECT_NE(text.find("resample"), std::string::npos);
  EXPECT_NE(text.find("max fan-in 32"), std::string::npos);
}

TEST(ScaleDag, GeneratesExactTaskCountWithBoundedFanIn) {
  util::Rng rng(7);
  ScaleDagConfig cfg;
  cfg.task_count = 2500;
  cfg.width = 64;
  cfg.max_extra_fan_in = 2;
  const Workflow w = make_scale_dag(cfg, rng);
  EXPECT_EQ(w.task_count(), 2500u);
  // Fan-in is constant-bounded -- the property that makes generation
  // O(task_count) and the 1M tier feasible.
  for (const std::string& name : w.task_names()) {
    const Task& t = w.task(name);
    EXPECT_GE(t.inputs.size(), 1u);
    EXPECT_LE(t.inputs.size(), 3u);
    EXPECT_EQ(t.outputs.size(), 1u);
  }
  EXPECT_NO_THROW(w.validate());
}

TEST(ScaleDag, IsDeterministicPerSeed) {
  ScaleDagConfig cfg;
  cfg.task_count = 300;
  cfg.width = 16;
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const Workflow a = make_scale_dag(cfg, rng_a);
  const Workflow b = make_scale_dag(cfg, rng_b);
  ASSERT_EQ(a.task_count(), b.task_count());
  EXPECT_EQ(a.task_names(), b.task_names());
  for (const std::string& name : a.task_names()) {
    EXPECT_EQ(a.task(name).inputs, b.task(name).inputs);
    EXPECT_DOUBLE_EQ(a.task(name).flops, b.task(name).flops);
  }
}

TEST(ScaleDag, PartialLastLevelStillValidates) {
  ScaleDagConfig cfg;
  cfg.task_count = 70;  // not a multiple of width
  cfg.width = 32;
  util::Rng rng(3);
  const Workflow w = make_scale_dag(cfg, rng);
  EXPECT_EQ(w.task_count(), 70u);
  EXPECT_NO_THROW(w.validate());
}

}  // namespace
}  // namespace bbsim::wf
