// Unit tests for statistics and reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "util/error.hpp"

namespace bbsim::analysis {
namespace {

TEST(Stats, DescribeBasics) {
  const Stats s = describe({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);  // sample stddev
  EXPECT_NEAR(s.cv(), 0.527, 1e-3);
}

TEST(Stats, SingleElement) {
  const Stats s = describe({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, EmptyThrows) { EXPECT_THROW(describe({}), util::InvariantError); }

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({4, 1, 3, 2}, 50), 2.5);  // unsorted input ok
  EXPECT_THROW(percentile({1}, 101), util::InvariantError);
}

TEST(Errors, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.10);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.10);
  EXPECT_THROW(relative_error(1, 0), util::InvariantError);
}

TEST(Errors, Mape) {
  EXPECT_DOUBLE_EQ(mean_absolute_percentage_error({110, 90}, {100, 100}), 0.10);
  EXPECT_THROW(mean_absolute_percentage_error({1}, {1, 2}), util::InvariantError);
  EXPECT_THROW(mean_absolute_percentage_error({}, {}), util::InvariantError);
}

TEST(SeriesTest, AddAndSize) {
  Series s;
  s.label = "cori";
  s.add(0, 10.5, 0.4);
  s.add(25, 12.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.yerr[0], 0.4);
}

TEST(TableTest, AlignedRendering) {
  Table t({"x", "long_column"});
  t.add_row({"1", "a"});
  t.add_row({"100", "bb"});
  const std::string out = t.to_string();
  // Header present, separator line, both rows.
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("long_column"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.234, 5.0}, 1);
  EXPECT_NE(t.to_string().find("1.2"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  const std::string path = ::testing::TempDir() + "/bbsim_table.csv";
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  t.write_csv(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), util::InvariantError);
}

TEST(SeriesTableTest, MergesOnX) {
  Series a;
  a.label = "a";
  a.add(0, 1.0);
  a.add(50, 2.0);
  Series b;
  b.label = "b";
  b.add(0, 3.0);
  b.add(100, 4.0);
  const Table t = series_table("pct", {a, b});
  EXPECT_EQ(t.row_count(), 3u);  // x = 0, 50, 100
  const std::string out = t.to_string();
  EXPECT_NE(out.find("pct"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
}

TEST(SeriesTableTest, ErrorBarsShown) {
  Series a;
  a.label = "m";
  a.add(1, 10.0, 0.5);
  const Table t = series_table("x", {a});
  EXPECT_NE(t.to_string().find("±"), std::string::npos);
}

TEST(PercentTest, Formats) {
  EXPECT_EQ(percent(0.128), "12.8%");
  EXPECT_EQ(percent(0.05599, 1), "5.6%");
}

}  // namespace
}  // namespace bbsim::analysis

// ---------------------------------------------------------------- plots

#include "analysis/plot.hpp"

namespace bbsim::analysis {
namespace {

Series line(const std::string& label, double slope) {
  Series s;
  s.label = label;
  for (int i = 0; i <= 10; ++i) s.add(i, slope * i);
  return s;
}

TEST(AsciiPlot, RendersAxesAndLegend) {
  const std::string plot = ascii_plot({line("up", 2.0)});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("up"), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);   // axis corner
  EXPECT_NE(plot.find("20"), std::string::npos);  // ymax label
}

TEST(AsciiPlot, MultipleSeriesUseDistinctGlyphs) {
  const std::string plot = ascii_plot({line("a", 1.0), line("b", 2.0)});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("  * a"), std::string::npos);
  EXPECT_NE(plot.find("  + b"), std::string::npos);
}

TEST(AsciiPlot, LabelsIncluded) {
  PlotOptions opt;
  opt.x_label = "pipelines";
  opt.y_label = "makespan (s)";
  const std::string plot = ascii_plot({line("m", 1.0)}, opt);
  EXPECT_NE(plot.find("pipelines"), std::string::npos);
  EXPECT_NE(plot.find("makespan (s)"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  Series flat;
  flat.label = "flat";
  flat.add(1, 5.0);
  flat.add(2, 5.0);
  EXPECT_NO_THROW(ascii_plot({flat}));
}

TEST(AsciiPlot, RejectsEmptyInput) {
  EXPECT_THROW(ascii_plot({}), util::InvariantError);
  Series empty;
  empty.label = "none";
  EXPECT_THROW(ascii_plot({empty}), util::InvariantError);
}

}  // namespace
}  // namespace bbsim::analysis
