// Tests for the simulation invariant auditor (src/audit): the collector,
// the per-layer probes under deliberately corrupted event streams, the
// max-min fairness certificate, post-run result auditing, and clean
// end-to-end audits of the paper's two case-study workflows.
#include <gtest/gtest.h>

#include "audit/auditor.hpp"
#include "audit/probes.hpp"
#include "exec/engine.hpp"
#include "exec/validate.hpp"
#include "flow/network.hpp"
#include "platform/presets.hpp"
#include "stats/metrics.hpp"
#include "storage/system.hpp"
#include "workflow/genomes.hpp"
#include "workflow/swarp.hpp"

namespace bbsim {
namespace {

using audit::Auditor;
using audit::Code;

// ------------------------------------------------------------- collector

TEST(Auditor, StartsClean) {
  Auditor a;
  EXPECT_TRUE(a.clean());
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.count(Code::kClockRegression), 0u);
  EXPECT_TRUE(a.violations().empty());
}

TEST(Auditor, CountsPerCodeExactly) {
  Auditor a;
  a.report(Code::kClockRegression, 1.0, "e1", "m1");
  a.report(Code::kClockRegression, 2.0, "e2", "m2");
  a.report(Code::kCapacityExceeded, 3.0, "bb", "m3");
  EXPECT_FALSE(a.clean());
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(Code::kClockRegression), 2u);
  EXPECT_EQ(a.count(Code::kCapacityExceeded), 1u);
  EXPECT_EQ(a.count(Code::kPrecedence), 0u);
  ASSERT_EQ(a.violations().size(), 3u);
  EXPECT_EQ(a.violations()[0].subject, "e1");
  EXPECT_EQ(a.violations()[2].code, Code::kCapacityExceeded);
}

TEST(Auditor, StoredSampleIsBoundedButCountsStayExact) {
  Auditor a(/*max_stored=*/2);
  for (int i = 0; i < 5; ++i) a.report(Code::kEventLifecycle, i, "e", "m");
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.count(Code::kEventLifecycle), 5u);
  EXPECT_EQ(a.violations().size(), 2u);
  const json::Value j = a.to_json();
  EXPECT_TRUE(j.at("truncated").as_bool());
  EXPECT_EQ(j.at("total_violations").as_number(), 5.0);
}

TEST(Auditor, JsonFollowsSchema) {
  Auditor a;
  a.report(Code::kByteConservation, 4.5, "file.fits", "size mismatch");
  const json::Value j = a.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "bbsim.audit.v1");
  EXPECT_FALSE(j.at("clean").as_bool());
  EXPECT_EQ(j.at("counts").at("byte_conservation").as_number(), 1.0);
  const json::Array& v = j.at("violations").as_array();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].at("code").as_string(), "byte_conservation");
  EXPECT_EQ(v[0].at("time").as_number(), 4.5);
  EXPECT_EQ(v[0].at("subject").as_string(), "file.fits");
}

TEST(Auditor, PublishesMetricsCounters) {
  stats::MetricsRegistry metrics;
  Auditor a;
  a.report(Code::kPrecedence, 1.0, "t", "early");  // before attach: back-filled
  a.set_metrics(&metrics);
  a.report(Code::kPrecedence, 2.0, "t", "again");
  EXPECT_EQ(metrics.counter("audit.violations").value(), 2.0);
  EXPECT_EQ(metrics.counter("audit.violations.precedence").value(), 2.0);
}

TEST(Auditor, CodeNamesAreStable) {
  EXPECT_STREQ(audit::to_string(Code::kClockRegression), "clock_regression");
  EXPECT_STREQ(audit::to_string(Code::kFlowNotMaxMin), "flow_not_max_min");
  EXPECT_STREQ(audit::to_string(Code::kCoreOversubscription),
               "core_oversubscription");
}

// ----------------------------------------------------------- EngineProbe

TEST(EngineProbe, AcceptsLegalEventStream) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_scheduled(1, 0.0, 1.0);
  probe.on_scheduled(2, 0.0, 2.0);
  probe.on_executed(1, 1.0);
  probe.on_cancelled(2);
  EXPECT_TRUE(a.clean());
  EXPECT_EQ(probe.live_events(), 0u);
}

TEST(EngineProbe, PastDatedScheduleIsClockRegression) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_scheduled(1, 5.0, 4.0);  // when < now
  EXPECT_EQ(a.count(Code::kClockRegression), 1u);
}

TEST(EngineProbe, NonMonotoneExecutionIsClockRegression) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_scheduled(1, 0.0, 2.0);
  probe.on_scheduled(2, 0.0, 1.0);
  probe.on_executed(1, 2.0);
  probe.on_executed(2, 1.0);  // the clock already reached 2.0
  EXPECT_EQ(a.count(Code::kClockRegression), 1u);
}

TEST(EngineProbe, UnknownExecutionIsLifecycleViolation) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_executed(7, 1.0);  // never scheduled
  EXPECT_EQ(a.count(Code::kEventLifecycle), 1u);
}

TEST(EngineProbe, DoubleFireIsLifecycleViolation) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_scheduled(1, 0.0, 1.0);
  probe.on_executed(1, 1.0);
  probe.on_executed(1, 1.0);  // fired twice
  EXPECT_EQ(a.count(Code::kEventLifecycle), 1u);
}

TEST(EngineProbe, IdReuseWhilePendingIsLifecycleViolation) {
  Auditor a;
  audit::EngineProbe probe(a);
  probe.on_scheduled(1, 0.0, 1.0);
  probe.on_scheduled(1, 0.0, 2.0);  // same id scheduled again
  EXPECT_EQ(a.count(Code::kEventLifecycle), 1u);
}

TEST(EngineProbe, ObservesARealEngineCleanly) {
  Auditor a;
  audit::EngineProbe probe(a);
  sim::Engine engine;
  engine.set_observer(&probe);
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  const sim::EventId cancelled = engine.schedule_at(2.0, [&] { ++fired; });
  engine.schedule_at(1.5, [&] { ++fired; });
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(a.clean()) << a.to_json().dump(2);
  EXPECT_EQ(probe.live_events(), 0u);
}

// ---------------------------------------------------------- StorageProbe

/// A platform with a 10 kB burst buffer (see tests/storage_test.cpp).
platform::PlatformSpec probe_platform() {
  platform::PlatformSpec p;
  p.name = "probe";
  p.hosts.push_back({"h0", 4, 1e9, platform::kUnlimited});
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = platform::StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = platform::StorageKind::SharedBB;
  bb.mode = platform::BBMode::Private;
  bb.disk = {950.0, 950.0, 10000.0};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

TEST(StorageProbe, CleanLifecycleOnRealServices) {
  platform::Fabric fabric(probe_platform());
  storage::StorageSystem sys(fabric);
  Auditor a;
  audit::StorageProbe probe(a, [&] { return fabric.engine().now(); });
  probe.set_expected_size("f", 4000.0);
  sys.set_observer(&probe);

  sys.pfs().register_file({"f", 4000.0}, 0);
  bool done = false;
  sys.transfer({"f", 4000.0}, sys.pfs(), *sys.burst_buffer(), 0, [&] { done = true; });
  fabric.engine().run();
  ASSERT_TRUE(done);
  sys.burst_buffer()->erase_file("f");
  probe.finalize();
  EXPECT_TRUE(a.clean()) << a.to_json().dump(2);
}

TEST(StorageProbe, OversubscribedBufferIsCapacityViolation) {
  platform::Fabric fabric(probe_platform());
  storage::StorageSystem sys(fabric);
  Auditor a;
  audit::StorageProbe probe(a, [&] { return fabric.engine().now(); });

  // Feed the probe a corrupted event stream directly: the service claims an
  // occupancy above its 10 kB capacity (the real service would throw before
  // ever reaching this state).
  const storage::StorageService& bb = *sys.burst_buffer();
  probe.on_occupancy_change(bb, "big", 15000.0, 15000.0);
  EXPECT_EQ(a.count(Code::kCapacityExceeded), 1u);
}

TEST(StorageProbe, DroppedBytesAreByteConservationViolations) {
  platform::Fabric fabric(probe_platform());
  storage::StorageSystem sys(fabric);
  Auditor a;
  audit::StorageProbe probe(a, [&] { return fabric.engine().now(); });
  probe.set_expected_size("f", 4000.0);

  const storage::StorageService& bb = *sys.burst_buffer();
  probe.on_replica_created(bb, {"f", 3999.0});  // one byte went missing
  EXPECT_EQ(a.count(Code::kByteConservation), 1u);
  probe.on_replica_erased(bb, "f", 2000.0);  // released half of the file
  EXPECT_EQ(a.count(Code::kByteConservation), 2u);
  probe.on_replica_created(bb, {"undeclared", 1.0});  // unknown files skipped
  EXPECT_EQ(a.count(Code::kByteConservation), 2u);
}

TEST(StorageProbe, LedgerDivergenceIsAllocationImbalance) {
  platform::Fabric fabric(probe_platform());
  storage::StorageSystem sys(fabric);
  Auditor a;
  audit::StorageProbe probe(a, [&] { return fabric.engine().now(); });

  const storage::StorageService& bb = *sys.burst_buffer();
  probe.on_occupancy_change(bb, "f", 100.0, 100.0);  // consistent
  probe.on_occupancy_change(bb, "g", 100.0, 300.0);  // service says 300, ledger 200
  EXPECT_EQ(a.count(Code::kAllocationImbalance), 1u);
  // The probe resynchronises: a consistent follow-up adds no violation.
  probe.on_occupancy_change(bb, "h", 50.0, 350.0);
  EXPECT_EQ(a.count(Code::kAllocationImbalance), 1u);
}

#if defined(BBSIM_AUDIT_ENABLED)
// Needs the service-side observer hooks, which -DBBSIM_AUDIT=OFF compiles out.
TEST(StorageProbe, FinalImbalanceIsReportedPostRun) {
  platform::Fabric fabric(probe_platform());
  storage::StorageSystem sys(fabric);
  Auditor a;
  audit::StorageProbe probe(a, [&] { return fabric.engine().now(); });

  // Reserve 100 bytes that never become a replica (a leaked reservation).
  storage::StorageService& bb = *sys.burst_buffer();
  bb.set_observer(&probe);
  bb.begin_external_write({"leak", 100.0});
  probe.finalize();
  EXPECT_GE(a.count(Code::kAllocationImbalance), 1u);
}
#endif

// ----------------------------------------------------- max-min certificate

TEST(FlowAudit, ConvergedSolveIsCertifiedFair) {
  flow::Network net;
  const flow::ResourceId r = net.add_resource("disk", 100.0);
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.solve();
  Auditor a;
  audit::audit_flow_network(a, net, 1.0);
  EXPECT_TRUE(a.clean()) << a.to_json().dump(2);
}

TEST(FlowAudit, StaleAllocationOverShrunkCapacityIsOverCapacity) {
  flow::Network net;
  const flow::ResourceId r = net.add_resource("disk", 100.0);
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.solve();  // 50 + 50
  net.set_capacity(r, 60.0);  // stale rates now sum over capacity
  Auditor a;
  audit::audit_flow_network(a, net, 2.0);
  EXPECT_EQ(a.count(Code::kFlowOverCapacity), 1u);
}

TEST(FlowAudit, StaleAllocationUnderGrownCapacityIsNotMaxMin) {
  flow::Network net;
  const flow::ResourceId r = net.add_resource("disk", 100.0);
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.add_flow({1e9, {r}, flow::kUnlimited, 1.0});
  net.solve();  // 50 + 50 saturates the disk
  net.set_capacity(r, 1000.0);  // nobody is saturated or capped any more
  Auditor a;
  audit::audit_flow_network(a, net, 3.0);
  EXPECT_GE(a.count(Code::kFlowNotMaxMin), 1u);
  EXPECT_EQ(a.count(Code::kFlowOverCapacity), 0u);
}

TEST(FlowAudit, PostSolveHookFiresOnEverySolve) {
  flow::Network net;
  const flow::ResourceId r = net.add_resource("disk", 100.0);
  int calls = 0;
  net.set_post_solve_hook([&calls](const flow::Network&, int) { ++calls; });
  net.add_flow({1000.0, {r}, flow::kUnlimited, 1.0});
  net.solve();
  net.solve();
#if defined(BBSIM_AUDIT_ENABLED)
  EXPECT_EQ(calls, 2);
#else
  EXPECT_EQ(calls, 0);  // the hook is compiled out
#endif
}

// ------------------------------------------------------ post-run auditing

TEST(AuditResult, CorruptedRecordsTriggerSpecificCodes) {
  wf::SwarpConfig cfg;
  cfg.pipelines = 1;
  const wf::Workflow w = wf::make_swarp(cfg);
  platform::PresetOptions popt;
  popt.compute_nodes = 1;
  const platform::PlatformSpec plat = platform::cori_platform(popt);

  exec::Simulation sim(plat, w, {});
  exec::Result r = sim.run();
  {
    Auditor a;
    exec::audit_result(r, w, plat, a);
    EXPECT_TRUE(a.clean()) << a.to_json().dump(2);
  }
  // Break precedence: the first resample starts before the stage-in ends.
  exec::Result broken = r;
  for (auto& [name, rec] : broken.tasks) {
    if (rec.type == "resample") {
      rec.t_ready = rec.t_start = 0.0;
      break;
    }
  }
  {
    Auditor a;
    exec::audit_result(broken, w, plat, a);
    EXPECT_GE(a.count(Code::kPrecedence), 1u);
  }
  // Drop bytes: a task read less than its declared inputs.
  broken = r;
  for (auto& [name, rec] : broken.tasks) {
    if (rec.type == "resample") {
      rec.bytes_read -= 1000.0;
      break;
    }
  }
  {
    Auditor a;
    exec::audit_result(broken, w, plat, a);
    EXPECT_EQ(a.count(Code::kByteConservation), 1u);
  }
  // Oversubscribe: all tasks run concurrently on host 0, each wanting most
  // of its cores (records stay individually well-formed so the sweep-line
  // check is reached).
  broken = r;
  for (auto& [name, rec] : broken.tasks) {
    rec.t_ready = 0.0;
    rec.t_start = 1.0;
    rec.t_reads_done = 1.5;
    rec.t_compute_done = 1.5;
    rec.t_end = 2.0;
    rec.host = 0;
    rec.cores = plat.hosts[0].cores - 1;
  }
  broken.makespan = 2.0;
  {
    Auditor a;
    exec::audit_result(broken, w, plat, a);
    EXPECT_GE(a.count(Code::kCoreOversubscription), 1u);
  }
}

// --------------------------------------------------------- end to end

#if defined(BBSIM_AUDIT_ENABLED)

TEST(AuditEndToEnd, SwarpPipelinesRunClean) {
  wf::SwarpConfig wcfg;
  wcfg.pipelines = 2;
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  exec::ExecutionConfig cfg;
  cfg.audit = true;
  exec::Simulation sim(platform::cori_platform(popt), wf::make_swarp(wcfg), cfg);
  const exec::Result r = sim.run();
  ASSERT_FALSE(r.audit.is_null());
  EXPECT_EQ(r.audit_violations, 0u) << r.audit.dump(2);
  EXPECT_EQ(r.audit.at("schema").as_string(), "bbsim.audit.v1");
  EXPECT_TRUE(r.audit.at("clean").as_bool());
}

TEST(AuditEndToEnd, GenomesRunsClean) {
  wf::GenomesConfig wcfg;
  wcfg.chromosomes = 4;
  platform::PresetOptions popt;
  popt.compute_nodes = 2;
  exec::ExecutionConfig cfg;
  cfg.audit = true;
  cfg.stage_in_mode = exec::StageInMode::Instant;
  exec::Simulation sim(platform::cori_platform(popt), wf::make_1000genomes(wcfg), cfg);
  const exec::Result r = sim.run();
  ASSERT_FALSE(r.audit.is_null());
  EXPECT_EQ(r.audit_violations, 0u) << r.audit.dump(2);
}

TEST(AuditEndToEnd, EvictionAndStageOutRunClean) {
  // Stress the storage ledger: tiny striped BB forces demotions/evictions.
  wf::SwarpConfig wcfg;
  wcfg.pipelines = 2;
  platform::PresetOptions popt;
  popt.compute_nodes = 1;
  popt.bb_mode = platform::BBMode::Striped;
  platform::PlatformSpec plat = platform::cori_platform(popt);
  for (platform::StorageSpec& s : plat.storage) {
    if (s.kind != platform::StorageKind::PFS) s.disk.capacity = 2e9;
  }
  exec::ExecutionConfig cfg;
  cfg.audit = true;
  cfg.bb_eviction = true;
  cfg.stage_out = true;
  exec::Simulation sim(plat, wf::make_swarp(wcfg), cfg);
  const exec::Result r = sim.run();
  ASSERT_FALSE(r.audit.is_null());
  EXPECT_EQ(r.audit_violations, 0u) << r.audit.dump(2);
}

TEST(AuditEndToEnd, AuditOffLeavesResultNull) {
  exec::Simulation sim(platform::cori_platform({}), wf::make_swarp({}), {});
  const exec::Result r = sim.run();
  EXPECT_TRUE(r.audit.is_null());
  EXPECT_EQ(r.audit_violations, 0u);
}

TEST(AuditEndToEnd, MetricsExportAuditCounters) {
  exec::ExecutionConfig cfg;
  cfg.audit = true;
  cfg.collect_metrics = true;
  exec::Simulation sim(platform::cori_platform({}), wf::make_swarp({}), cfg);
  const exec::Result r = sim.run();
  ASSERT_FALSE(r.metrics.is_null());
  EXPECT_EQ(r.metrics.at("counters").at("audit.violations").as_number(), 0.0);
}

#endif  // BBSIM_AUDIT_ENABLED

}  // namespace
}  // namespace bbsim
