// Unit tests for the execution engine: scheduling, I/O windows, staging,
// placement, pinning, demotion -- with hand-computed timings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "exec/engine.hpp"
#include "exec/pinning.hpp"
#include "exec/placement.hpp"
#include "platform/presets.hpp"
#include "workflow/swarp.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::exec {
namespace {

using platform::BBMode;
using platform::PlatformSpec;
using platform::StorageKind;

/// 1 host x 4 cores at 1 Gflop/s/core; PFS 100 B/s disk, 1000 B/s link;
/// BB 950 B/s disk, 800 B/s link; no latency/caps/metadata.
PlatformSpec tiny(StorageKind bb_kind = StorageKind::SharedBB,
                  BBMode mode = BBMode::Private, int hosts = 1, int cores = 4) {
  PlatformSpec p;
  p.name = "tiny";
  for (int i = 0; i < hosts; ++i) {
    p.hosts.push_back({"h" + std::to_string(i), cores, 1e9, platform::kUnlimited});
  }
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = {100.0, 100.0, platform::kUnlimited};
  pfs.link = {1000.0, 0.0};
  p.storage.push_back(pfs);
  platform::StorageSpec bb;
  bb.name = "bb";
  bb.kind = bb_kind;
  bb.mode = mode;
  bb.disk = {950.0, 950.0, platform::kUnlimited};
  bb.link = {800.0, 0.0};
  p.storage.push_back(bb);
  p.validate_and_normalize();
  return p;
}

wf::Workflow single_task(double flops = 4e9, int cores = 4, double alpha = 0.0) {
  wf::Workflow w;
  w.add_task({"t", "compute", flops, alpha, cores, {}, {}});
  return w;
}

TEST(Engine, PureComputeDuration) {
  // 4e9 flops at 1e9 flop/s/core on 4 cores, alpha 0 -> 1 s.
  Simulation sim(tiny(), single_task(), {});
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
  EXPECT_DOUBLE_EQ(r.tasks.at("t").compute_time(), 1.0);
  EXPECT_DOUBLE_EQ(r.tasks.at("t").io_time(), 0.0);
}

TEST(Engine, AmdahlAlphaSlowsParallelTask) {
  // alpha = 1 -> fully serial: 4 s despite 4 cores.
  Simulation sim(tiny(), single_task(4e9, 4, 1.0), {});
  EXPECT_DOUBLE_EQ(sim.run().makespan, 4.0);
}

TEST(Engine, ReadComputeWritePhases) {
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_file({"out", 500.0});
  w.add_task({"t", "compute", 4e9, 0, 4, {"in"}, {"out"}});
  ExecutionConfig cfg;
  cfg.placement = all_pfs_policy();
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  const TaskRecord& rec = r.tasks.at("t");
  EXPECT_DOUBLE_EQ(rec.read_time(), 10.0);    // 1000 B at 100 B/s
  EXPECT_DOUBLE_EQ(rec.compute_time(), 1.0);  // 4e9 / (4 * 1e9)
  EXPECT_DOUBLE_EQ(rec.write_time(), 5.0);    // 500 B at 100 B/s
  EXPECT_DOUBLE_EQ(r.makespan, 16.0);
  EXPECT_NEAR(rec.lambda_io(), 15.0 / 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(rec.bytes_read, 1000.0);
  EXPECT_DOUBLE_EQ(rec.bytes_written, 500.0);
}

TEST(Engine, DependencyChainSerialises) {
  wf::Workflow w;
  w.add_file({"mid", 0.0});
  w.add_task({"a", "compute", 4e9, 0, 4, {}, {"mid"}});
  w.add_task({"b", "compute", 4e9, 0, 4, {"mid"}, {}});
  Simulation sim(tiny(), w, {});
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_GE(r.tasks.at("b").t_start, r.tasks.at("a").t_end);
}

TEST(Engine, CoreContentionQueuesTasks) {
  wf::Workflow w;
  w.add_task({"a", "c", 4e9, 0, 4, {}, {}});
  w.add_task({"b", "c", 4e9, 0, 4, {}, {}});
  Simulation sim(tiny(), w, {});  // one 4-core host: b waits for a
  EXPECT_DOUBLE_EQ(sim.run().makespan, 2.0);
}

TEST(Engine, IndependentTasksPackOntoFreeCores) {
  wf::Workflow w;
  w.add_task({"a", "c", 2e9, 0, 2, {}, {}});
  w.add_task({"b", "c", 2e9, 0, 2, {}, {}});
  Simulation sim(tiny(), w, {});  // both fit the 4-core host
  EXPECT_DOUBLE_EQ(sim.run().makespan, 1.0);
}

TEST(Engine, MultiHostSpreadsLoad) {
  wf::Workflow w;
  w.add_task({"a", "c", 4e9, 0, 4, {}, {}});
  w.add_task({"b", "c", 4e9, 0, 4, {}, {}});
  Simulation sim(tiny(StorageKind::SharedBB, BBMode::Striped, 2), w, {});
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
  EXPECT_NE(r.tasks.at("a").host, r.tasks.at("b").host);
}

TEST(Engine, IoWindowLimitsConcurrentReads) {
  // 1-core task with 4 inputs of 100 B: reads are sequential (window = 1),
  // 1 s each at 100 B/s -> 4 s of read time. With 4 cores they all share
  // the 100 B/s disk concurrently -> also 4 s. Distinguish via a stream cap.
  PlatformSpec p = tiny();
  p.storage[0].stream_bw = 50.0;  // a single stream gets at most 50 B/s
  wf::Workflow w;
  for (int i = 0; i < 4; ++i) w.add_file({"f" + std::to_string(i), 100.0});
  w.add_task({"t", "c", 0.0, 0, 1, {"f0", "f1", "f2", "f3"}, {}});
  ExecutionConfig cfg;
  cfg.placement = all_pfs_policy();
  Simulation sim(std::move(p), w, cfg);
  const Result r = sim.run();
  // Sequential: 4 files x (100 B / 50 B/s) = 8 s.
  EXPECT_DOUBLE_EQ(r.tasks.at("t").read_time(), 8.0);

  // Same workflow with 4 cores: 4 concurrent capped streams share the
  // 100 B/s disk -> 25 B/s each -> 4 s total.
  PlatformSpec p2 = tiny();
  p2.storage[0].stream_bw = 50.0;
  wf::Workflow w2;
  for (int i = 0; i < 4; ++i) w2.add_file({"f" + std::to_string(i), 100.0});
  w2.add_task({"t", "c", 0.0, 0, 4, {"f0", "f1", "f2", "f3"}, {}});
  Simulation sim2(std::move(p2), w2, cfg);
  EXPECT_DOUBLE_EQ(sim2.run().tasks.at("t").read_time(), 4.0);
}

TEST(Engine, StageInTaskCopiesSequentially) {
  // Two 1000 B inputs staged PFS -> BB at 100 B/s each, sequentially.
  wf::Workflow w;
  w.add_file({"i0", 1000.0});
  w.add_file({"i1", 1000.0});
  w.add_task({"stage_in", "stage_in", 0.0, 0, 1, {}, {}});
  w.add_task({"t", "c", 0.0, 0, 1, {"i0", "i1"}, {}});
  w.add_control_dep("stage_in", "t");
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.stage_in_duration, 20.0);
  // Task then reads from the BB: 2 x (1000 / 800) sequential (1 core).
  EXPECT_NEAR(r.tasks.at("t").read_time(), 2.5, 1e-9);
  EXPECT_NEAR(r.makespan, 22.5, 1e-9);
  EXPECT_NEAR(r.workflow_span, 2.5, 1e-9);
}

TEST(Engine, InstantStagingIsFree) {
  wf::Workflow w;
  w.add_file({"i0", 1000.0});
  w.add_task({"stage_in", "stage_in", 0.0, 0, 1, {}, {}});
  w.add_task({"t", "c", 0.0, 0, 1, {"i0"}, {}});
  w.add_control_dep("stage_in", "t");
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  cfg.stage_in_mode = StageInMode::Instant;
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.stage_in_duration, 0.0);
  EXPECT_NEAR(r.makespan, 1.25, 1e-9);  // 1000 B / 800 B/s from the BB
}

TEST(Engine, FractionPolicyStagesPrefix) {
  const wf::Workflow w = wf::make_swarp({});
  FractionPolicy half(0.5, Tier::BurstBuffer);
  const auto staged = half.files_to_stage(w);
  EXPECT_EQ(staged.size(), 16u);  // ceil(0.5 * 32)
  FractionPolicy none(0.0, Tier::PFS);
  EXPECT_TRUE(none.files_to_stage(w).empty());
  FractionPolicy all(1.0, Tier::BurstBuffer);
  EXPECT_EQ(all.files_to_stage(w).size(), 32u);
}

TEST(Engine, IntermediateTierRouting) {
  // Intermediates to BB: consumer reads at BB speed.
  wf::Workflow w;
  w.add_file({"mid", 800.0});
  w.add_task({"a", "c", 0.0, 0, 1, {}, {"mid"}});
  w.add_task({"b", "c", 0.0, 0, 1, {"mid"}, {}});
  ExecutionConfig cfg;
  cfg.placement = std::make_shared<FractionPolicy>(0.0, Tier::BurstBuffer);
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  EXPECT_DOUBLE_EQ(r.tasks.at("a").write_time(), 1.0);  // 800 B at 800 B/s
  EXPECT_DOUBLE_EQ(r.tasks.at("b").read_time(), 1.0);

  // Intermediates to PFS: 8 s each way.
  wf::Workflow w2;
  w2.add_file({"mid", 800.0});
  w2.add_task({"a", "c", 0.0, 0, 1, {}, {"mid"}});
  w2.add_task({"b", "c", 0.0, 0, 1, {"mid"}, {}});
  ExecutionConfig cfg2;
  cfg2.placement = all_pfs_policy();
  Simulation sim2(tiny(), w2, cfg2);
  const Result r2 = sim2.run();
  EXPECT_DOUBLE_EQ(r2.tasks.at("a").write_time(), 8.0);
  EXPECT_DOUBLE_EQ(r2.tasks.at("b").read_time(), 8.0);
}

TEST(Engine, FinalOutputsGoToPfsUnderAllBB) {
  wf::Workflow w;
  w.add_file({"out", 100.0});
  w.add_task({"a", "c", 0.0, 0, 1, {}, {"out"}});
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  Simulation sim(tiny(), w, cfg);
  sim.run();
  EXPECT_TRUE(sim.storage().pfs().has_file("out"));
  EXPECT_FALSE(sim.storage().burst_buffer()->has_file("out"));
}

TEST(Engine, NodeLocalDemotionForCrossHostConsumers) {
  // Two connected components, but the shared file forces cross-host access:
  // producer on one host, consumers pinned elsewhere -> demote to PFS.
  wf::Workflow w;
  w.add_file({"shared", 100.0});
  w.add_file({"sink0", 1.0});
  w.add_file({"sink1", 1.0});
  w.add_task({"p", "c", 4e9, 0, 4, {}, {"shared"}});
  // Two heavy consumers that cannot fit on one host together force the
  // pinner to split them (balancing by flops).
  w.add_task({"c0", "c", 40e9, 0, 4, {"shared"}, {"sink0"}});
  w.add_task({"c1", "c", 40e9, 0, 4, {"shared"}, {"sink1"}});
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  cfg.pinning.broadcast_threshold = 1;  // "shared" (2 readers) is broadcast
  Simulation sim(tiny(StorageKind::NodeLocalBB, BBMode::Private, 2), w, cfg);
  const Result r = sim.run();
  // The producer's BB write was demoted because a consumer lives elsewhere.
  EXPECT_GE(r.demoted_writes, 1u);
  EXPECT_TRUE(sim.storage().pfs().has_file("shared"));
}

TEST(Engine, PinningKeepsChainsLocal) {
  // Two independent 2-task chains on a 2-host node-local platform: each
  // chain runs on one host and its intermediate stays in the local BB.
  wf::Workflow w;
  for (int c = 0; c < 2; ++c) {
    const std::string mid = "mid" + std::to_string(c);
    w.add_file({mid, 800.0});
    w.add_task({"p" + std::to_string(c), "c", 4e9, 0, 4, {}, {mid}});
    w.add_task({"q" + std::to_string(c), "c", 4e9, 0, 4, {mid}, {}});
  }
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  Simulation sim(tiny(StorageKind::NodeLocalBB, BBMode::Private, 2), w, cfg);
  const Result r = sim.run();
  EXPECT_EQ(r.demoted_writes, 0u);
  EXPECT_EQ(r.tasks.at("p0").host, r.tasks.at("q0").host);
  EXPECT_EQ(r.tasks.at("p1").host, r.tasks.at("q1").host);
  EXPECT_NE(r.tasks.at("p0").host, r.tasks.at("p1").host);
}

TEST(Engine, ForceCoresOverride) {
  wf::Workflow w = single_task(4e9, 4);
  ExecutionConfig cfg;
  cfg.force_cores = 1;
  Simulation sim(tiny(), w, cfg);
  EXPECT_DOUBLE_EQ(sim.run().makespan, 4.0);  // 4e9 flops on 1 core
}

TEST(Engine, CoresByTypeOverride) {
  wf::Workflow w = single_task(4e9, 1);
  ExecutionConfig cfg;
  cfg.cores_by_type["compute"] = 4;
  Simulation sim(tiny(), w, cfg);
  EXPECT_DOUBLE_EQ(sim.run().makespan, 1.0);
}

TEST(Engine, OversizedTaskRejected) {
  wf::Workflow w = single_task(1e9, 8);  // 8 cores > 4-core host
  EXPECT_THROW(Simulation(tiny(), w, {}).run(), util::ConfigError);
}

TEST(Engine, RunTwiceRejected) {
  Simulation sim(tiny(), single_task(), {});
  sim.run();
  EXPECT_THROW(sim.run(), util::InvariantError);
}

TEST(Engine, ComputeNoiseHookScalesDurations) {
  ExecutionConfig cfg;
  cfg.compute_noise = [](const wf::Task&, std::size_t) { return 2.0; };
  Simulation sim(tiny(), single_task(), cfg);
  EXPECT_DOUBLE_EQ(sim.run().makespan, 2.0);
}

TEST(Engine, TraceRecordsLifecycle) {
  Simulation sim(tiny(), single_task(), {});
  const Result r = sim.run();
  std::vector<std::string> kinds;
  for (const TraceEvent& e : r.trace) kinds.emplace_back(to_string(e.kind));
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "task_ready"), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "task_start"), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "task_end"), kinds.end());
  // Times are monotone.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].time, r.trace[i - 1].time);
  }
}

TEST(Engine, TraceDisabled) {
  ExecutionConfig cfg;
  cfg.collect_trace = false;
  Simulation sim(tiny(), single_task(), cfg);
  EXPECT_TRUE(sim.run().trace.empty());
}

TEST(Engine, ResultJsonSerialises) {
  Simulation sim(tiny(), single_task(), {});
  const json::Value v = sim.run().to_json();
  EXPECT_TRUE(v.contains("makespan"));
  EXPECT_EQ(v.at("tasks").as_array().size(), 1u);
}

TEST(Engine, StorageCountersTrackBytes) {
  wf::Workflow w;
  w.add_file({"in", 1000.0});
  w.add_task({"t", "c", 0.0, 0, 1, {"in"}, {}});
  ExecutionConfig cfg;
  cfg.placement = all_pfs_policy();
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  double pfs_bytes = 0;
  for (const StorageCounters& s : r.storage) {
    if (s.service == "pfs") pfs_bytes = s.bytes_served;
  }
  EXPECT_DOUBLE_EQ(pfs_bytes, 1000.0);
}

// ------------------------------------------------------- placement policies

TEST(Policies, SizeThreshold) {
  wf::Workflow w;
  w.add_file({"small", 10.0});
  w.add_file({"big", 1000.0});
  w.add_task({"t", "c", 0, 0, 1, {"small", "big"}, {}});
  SizeThresholdPolicy policy(100.0);
  EXPECT_EQ(policy.files_to_stage(w), (std::vector<std::string>{"small"}));
  SizeThresholdPolicy inverted(100.0, true);
  EXPECT_EQ(inverted.files_to_stage(w), (std::vector<std::string>{"big"}));
}

TEST(Policies, LocalitySingleConsumer) {
  wf::Workflow w;
  w.add_file({"solo", 10.0});
  w.add_file({"popular", 10.0});
  w.add_file({"o1", 1.0});
  w.add_file({"o2", 1.0});
  w.add_task({"a", "c", 0, 0, 1, {"solo", "popular"}, {"o1"}});
  w.add_task({"b", "c", 0, 0, 1, {"popular", "o1"}, {"o2"}});
  LocalityPolicy policy;
  EXPECT_EQ(policy.files_to_stage(w), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(policy.place_output(w, "a", "o1"), Tier::BurstBuffer);  // 1 reader
  EXPECT_EQ(policy.place_output(w, "b", "o2"), Tier::PFS);          // final
}

TEST(Policies, GreedyBytesRespectsBudget) {
  wf::Workflow w;
  w.add_file({"a", 600.0});
  w.add_file({"b", 500.0});
  w.add_file({"c", 100.0});
  w.add_task({"t1", "c", 0, 0, 1, {"a", "b", "c"}, {}});
  w.add_task({"t2", "c", 0, 0, 1, {"a"}, {}});  // a has 2 consumers
  GreedyBytesPolicy policy(700.0);
  const auto staged = policy.files_to_stage(w);
  // "a" has the highest benefit (600 x 2); then budget only fits "c".
  EXPECT_EQ(staged, (std::vector<std::string>{"a", "c"}));
}

TEST(Policies, NamesAreDescriptive) {
  EXPECT_NE(FractionPolicy(0.5, Tier::BurstBuffer).name().find("50%"),
            std::string::npos);
  EXPECT_NE(all_pfs_policy()->name().find("0%"), std::string::npos);
  EXPECT_NE(SizeThresholdPolicy(1e6).name().find("1MB"), std::string::npos);
}

// ---------------------------------------------------------------- pinning

TEST(Pinning, ComponentsLandOnDistinctHosts) {
  const wf::Workflow w = wf::make_swarp({.pipelines = 4, .with_stage_in = false});
  platform::PresetOptions opt;
  opt.compute_nodes = 4;
  const auto homes = compute_home_hosts(w, platform::summit_platform(opt));
  // Each pipeline is one component; 4 pipelines on 4 hosts -> all 4 used,
  // and resample/combine of the same pipeline share a home.
  std::set<std::size_t> used(homes.begin(), homes.end());
  EXPECT_EQ(used.size(), 4u);
  const auto& names = w.task_names();
  std::map<std::string, std::size_t> home_by_name;
  for (std::size_t i = 0; i < names.size(); ++i) home_by_name[names[i]] = homes[i];
  EXPECT_EQ(home_by_name["resample_002"], home_by_name["combine_002"]);
}

TEST(Pinning, BroadcastFilesDoNotGlue) {
  // Two chains sharing one broadcast input should still split.
  wf::Workflow w;
  w.add_file({"bcast", 1.0});
  for (int c = 0; c < 2; ++c) {
    const std::string mid = "m" + std::to_string(c);
    w.add_file({mid, 1.0});
    w.add_task({"p" + std::to_string(c), "c", 1e9, 0, 1, {"bcast"}, {mid}});
    w.add_task({"q" + std::to_string(c), "c", 1e9, 0, 1, {mid}, {}});
  }
  platform::PresetOptions opt;
  opt.compute_nodes = 2;
  PinningConfig cfg;
  cfg.broadcast_threshold = 1;
  const auto homes = compute_home_hosts(w, platform::summit_platform(opt), cfg);
  std::set<std::size_t> used(homes.begin(), homes.end());
  EXPECT_EQ(used.size(), 2u);
}

}  // namespace
}  // namespace bbsim::exec

namespace scheduler_tests {

using namespace bbsim;
using namespace bbsim::exec;
using platform::PlatformSpec;
using platform::StorageKind;
using platform::BBMode;

PlatformSpec tiny1() {
  PlatformSpec p;
  p.name = "tiny1";
  p.hosts.push_back({"h0", 1, 1e9, platform::kUnlimited});
  platform::StorageSpec pfs;
  pfs.name = "pfs";
  pfs.kind = StorageKind::PFS;
  pfs.disk = {1e9, 1e9, platform::kUnlimited};
  pfs.link = {1e9, 0.0};
  p.storage.push_back(pfs);
  p.validate_and_normalize();
  return p;
}

TEST(Scheduler, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulerPolicy::Fcfs), "fcfs");
  EXPECT_STREQ(to_string(SchedulerPolicy::CriticalPathFirst), "critical_path");
  EXPECT_STREQ(to_string(SchedulerPolicy::LargestFirst), "largest_first");
  EXPECT_STREQ(to_string(SchedulerPolicy::SmallestFirst), "smallest_first");
}

TEST(Scheduler, LargestFirstRunsBigTaskFirst) {
  wf::Workflow w;
  w.add_task({"small", "c", 1e9, 0, 1, {}, {}});
  w.add_task({"big", "c", 4e9, 0, 1, {}, {}});
  ExecutionConfig cfg;
  cfg.scheduler = SchedulerPolicy::LargestFirst;
  Simulation sim(tiny1(), w, cfg);
  const Result r = sim.run();
  EXPECT_LT(r.tasks.at("big").t_start, r.tasks.at("small").t_start);
}

TEST(Scheduler, SmallestFirstRunsSmallTaskFirst) {
  wf::Workflow w;
  w.add_task({"big", "c", 4e9, 0, 1, {}, {}});
  w.add_task({"small", "c", 1e9, 0, 1, {}, {}});
  ExecutionConfig cfg;
  cfg.scheduler = SchedulerPolicy::SmallestFirst;
  Simulation sim(tiny1(), w, cfg);
  const Result r = sim.run();
  EXPECT_LT(r.tasks.at("small").t_start, r.tasks.at("big").t_start);
}

TEST(Scheduler, CriticalPathFirstPrefersLongChain) {
  // chain_head leads a 3-task chain; lone is heavier than chain_head alone
  // but has no successors. CP-first must start chain_head first.
  wf::Workflow w;
  w.add_file({"c1", 0.0});
  w.add_file({"c2", 0.0});
  w.add_task({"chain_head", "c", 1e9, 0, 1, {}, {"c1"}});
  w.add_task({"chain_mid", "c", 3e9, 0, 1, {"c1"}, {"c2"}});
  w.add_task({"chain_tail", "c", 3e9, 0, 1, {"c2"}, {}});
  w.add_task({"lone", "c", 2e9, 0, 1, {}, {}});
  ExecutionConfig cfg;
  cfg.scheduler = SchedulerPolicy::CriticalPathFirst;
  Simulation sim(tiny1(), w, cfg);
  const Result r = sim.run();
  EXPECT_LT(r.tasks.at("chain_head").t_start, r.tasks.at("lone").t_start);
  // FCFS (insertion order) would have run lone before chain_mid/tail; the
  // critical-path order finishes the whole DAG no later than FCFS.
  ExecutionConfig fcfs_cfg;
  Simulation fcfs(tiny1(), w, fcfs_cfg);
  EXPECT_LE(r.makespan, fcfs.run().makespan + 1e-9);
}

TEST(StageOut, DrainsBBOutputsToPfs) {
  wf::Workflow w;
  w.add_file({"out", 800.0});
  w.add_task({"t", "c", 0.0, 0, 1, {}, {"out"}});
  ExecutionConfig cfg;
  // Policy keeps even final outputs in the BB; stage-out must drain them.
  cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer,
                                                   Tier::BurstBuffer);
  cfg.stage_out = true;
  Simulation sim(tiny(), w, cfg);
  const Result r = sim.run();
  EXPECT_GT(r.stage_out_duration, 0.0);
  EXPECT_TRUE(sim.storage().pfs().has_file("out"));
  // Drain rate: min(bb read 950/800 link, pfs write 100) = 100 B/s -> 8 s.
  EXPECT_NEAR(r.stage_out_duration, 8.0, 0.1);
  EXPECT_NEAR(r.makespan, r.workflow_span + 8.0, 0.1);
}

TEST(StageOut, NoopWhenOutputsAlreadyOnPfs) {
  wf::Workflow w;
  w.add_file({"out", 100.0});
  w.add_task({"t", "c", 0.0, 0, 1, {}, {"out"}});
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();  // final outputs -> PFS directly
  cfg.stage_out = true;
  Simulation sim(tiny(), w, cfg);
  EXPECT_DOUBLE_EQ(sim.run().stage_out_duration, 0.0);
}

TEST(Eviction, LruEvictsStagedInputsToMakeRoom) {
  // BB capacity fits the staged inputs but not the intermediate write;
  // eviction should kick out the least-recently-read staged file.
  platform::PlatformSpec p = tiny();
  p.storage[1].disk.capacity = 2000.0;
  wf::Workflow w;
  w.add_file({"in_a", 900.0});
  w.add_file({"in_b", 900.0});
  w.add_file({"mid", 900.0});
  w.add_task({"a", "c", 0.0, 0, 1, {"in_a", "in_b"}, {"mid"}});
  w.add_task({"b", "c", 0.0, 0, 1, {"mid"}, {}});
  ExecutionConfig cfg;
  cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer);
  cfg.stage_in_mode = StageInMode::Instant;
  cfg.bb_eviction = true;
  Simulation sim(std::move(p), w, cfg);
  const Result r = sim.run();
  EXPECT_GE(r.evicted_files, 1u);
  EXPECT_EQ(r.demoted_writes, 0u);  // the write fit after eviction
  EXPECT_TRUE(sim.storage().burst_buffer()->has_file("mid"));
}

TEST(Eviction, WithoutEvictionWriteDemotes) {
  platform::PlatformSpec p = tiny();
  p.storage[1].disk.capacity = 2000.0;
  wf::Workflow w;
  w.add_file({"in_a", 900.0});
  w.add_file({"in_b", 900.0});
  w.add_file({"mid", 900.0});
  w.add_task({"a", "c", 0.0, 0, 1, {"in_a", "in_b"}, {"mid"}});
  w.add_task({"b", "c", 0.0, 0, 1, {"mid"}, {}});
  ExecutionConfig cfg;
  cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer);
  cfg.stage_in_mode = StageInMode::Instant;
  Simulation sim(std::move(p), w, cfg);
  const Result r = sim.run();
  EXPECT_EQ(r.evicted_files, 0u);
  EXPECT_EQ(r.demoted_writes, 1u);
  EXPECT_TRUE(sim.storage().pfs().has_file("mid"));
}

TEST(Eviction, SkipsStagingWhenFullWithoutEviction) {
  platform::PlatformSpec p = tiny();
  p.storage[1].disk.capacity = 1000.0;
  wf::Workflow w;
  w.add_file({"in_a", 900.0});
  w.add_file({"in_b", 900.0});
  w.add_task({"a", "c", 0.0, 0, 1, {"in_a", "in_b"}, {}});
  ExecutionConfig cfg;
  cfg.placement = std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer);
  cfg.stage_in_mode = StageInMode::Instant;
  Simulation sim(std::move(p), w, cfg);
  const Result r = sim.run();
  EXPECT_EQ(r.skipped_stage_files, 1u);
}

TEST(MultiStageIn, PerPipelineStageInsPartitionFiles) {
  wf::SwarpConfig scfg;
  scfg.pipelines = 2;
  scfg.cores_per_task = 1;
  scfg.stage_in_per_pipeline = true;
  const wf::Workflow w = wf::make_swarp(scfg);
  EXPECT_EQ(w.entry_tasks().size(), 2u);
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  Simulation sim(tiny(StorageKind::SharedBB, BBMode::Private, 1, 64), w, cfg);
  const Result r = sim.run();
  // Each stage-in moved exactly its own pipeline's 32 files.
  const double per_pipeline_bytes = 16 * (32.0 + 16.0) * 1024 * 1024;
  EXPECT_NEAR(r.tasks.at("stage_in_000").bytes_written, per_pipeline_bytes, 1.0);
  EXPECT_NEAR(r.tasks.at("stage_in_001").bytes_written, per_pipeline_bytes, 1.0);
  // And they overlapped (both started at t=0 on free cores).
  EXPECT_DOUBLE_EQ(r.tasks.at("stage_in_000").t_start, 0.0);
  EXPECT_DOUBLE_EQ(r.tasks.at("stage_in_001").t_start, 0.0);
}

}  // namespace scheduler_tests

namespace stage_width_tests {

using namespace bbsim;
using namespace bbsim::exec;

TEST(StageWidth, ParallelStagingBoundedByPhysics) {
  // Two staged files: sequential staging takes 2 x t_file; with width 2 the
  // transfers share the PFS read path, so the total is the same aggregate
  // time -- but with per-file *latency* dominating, width 2 halves it.
  platform::PlatformSpec p = exec::tiny();
  p.storage[1].stage_latency = 10.0;  // per-file overhead dominates
  wf::Workflow w;
  w.add_file({"i0", 100.0});
  w.add_file({"i1", 100.0});
  w.add_task({"stage_in", "stage_in", 0.0, 0, 1, {}, {}});
  w.add_task({"t", "c", 0.0, 0, 1, {"i0", "i1"}, {}});
  w.add_control_dep("stage_in", "t");

  auto run_width = [&](int width) {
    ExecutionConfig cfg;
    cfg.placement = all_bb_policy();
    cfg.stage_in_width = width;
    Simulation sim(p, w, cfg);
    return sim.run().stage_in_duration;
  };
  const double seq = run_width(1);
  const double par = run_width(2);
  // Sequential: 2 x (10 latency + 1 transfer) = 22; parallel: ~12.
  EXPECT_NEAR(seq, 22.0, 0.1);
  EXPECT_NEAR(par, 12.0, 0.1);
}

TEST(StageWidth, InvalidWidthClampedToOne) {
  wf::Workflow w;
  w.add_file({"i0", 100.0});
  w.add_task({"stage_in", "stage_in", 0.0, 0, 1, {}, {}});
  w.add_task({"t", "c", 0.0, 0, 1, {"i0"}, {}});
  w.add_control_dep("stage_in", "t");
  ExecutionConfig cfg;
  cfg.placement = all_bb_policy();
  cfg.stage_in_width = 0;  // engine clamps
  Simulation sim(exec::tiny(), w, cfg);
  EXPECT_NO_THROW(sim.run());
}

}  // namespace stage_width_tests
