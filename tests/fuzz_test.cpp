// Tests of the fuzz subsystem itself: scenario sampling determinism,
// fuzzcase JSON round-tripping, clean campaigns on the shipped engine,
// and the self-test that a perturbed engine is caught and the failing
// case minimized down to a handful of tasks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fuzz/minimize.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "json/json.hpp"
#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bbsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------- sampling

TEST(Sampler, SameSeedSameScenario) {
  util::Rng a(7), b(7);
  const fuzz::Scenario sa = fuzz::sample_scenario(a);
  const fuzz::Scenario sb = fuzz::sample_scenario(b);
  EXPECT_EQ(sa.to_json().dump(2), sb.to_json().dump(2));
}

TEST(Sampler, DifferentSeedsDiffer) {
  util::Rng a(7), b(8);
  const fuzz::Scenario sa = fuzz::sample_scenario(a);
  const fuzz::Scenario sb = fuzz::sample_scenario(b);
  EXPECT_NE(sa.to_json().dump(2), sb.to_json().dump(2));
}

TEST(Sampler, ScenariosAreFeasible) {
  util::Rng root(11);
  for (int i = 0; i < 20; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    EXPECT_GT(sc.workflow.task_count(), 0u);
    EXPECT_FALSE(sc.platform.hosts.empty());
    // Every task's core request fits the largest host.
    int max_cores = 0;
    for (const auto& h : sc.platform.hosts) max_cores = std::max(max_cores, h.cores);
    for (const auto& name : sc.workflow.task_names())
      EXPECT_LE(sc.workflow.task(name).requested_cores, max_cores) << name;
  }
}

// ----------------------------------------------------------- round-trip

TEST(Fuzzcase, JsonRoundTripIsByteIdentical) {
  util::Rng root(23);
  for (int i = 0; i < 10; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    const std::string once = sc.to_json().dump(2);
    const fuzz::Scenario back = fuzz::scenario_from_json(json::parse(once));
    EXPECT_EQ(back.to_json().dump(2), once) << "iter " << i;
  }
}

TEST(Fuzzcase, RoundTripPreservesOutcome) {
  util::Rng rng(31);
  const fuzz::Scenario sc = fuzz::sample_scenario(rng);
  const fuzz::Scenario back = fuzz::scenario_from_json(sc.to_json());
  const auto a = fuzz::run_scenario(sc);
  const auto b = fuzz::run_scenario(back);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.engine_error, b.engine_error);
}

TEST(Fuzzcase, RejectsWrongSchema) {
  json::Object doc;
  doc.set("schema", "bbsim.run.v1");
  EXPECT_THROW(fuzz::scenario_from_json(json::Value(std::move(doc))),
               util::Error);
}

TEST(Fuzzcase, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bbsim_fuzzcase_rt.json";
  util::Rng rng(37);
  const fuzz::Scenario sc = fuzz::sample_scenario(rng);
  json::write_file(path, sc.to_json());
  const fuzz::Scenario back = fuzz::scenario_from_file(path);
  EXPECT_EQ(back.to_json().dump(2), sc.to_json().dump(2));
  std::remove(path.c_str());
}

// ------------------------------------------------------------ campaigns

TEST(Campaign, ShippedEngineIsCleanAndDeterministic) {
  fuzz::CampaignOptions opt;
  opt.seed = 42;
  opt.iterations = 40;
  const auto first = fuzz::run_campaign(opt);
  EXPECT_TRUE(first.clean())
      << first.failures.front().divergences.front().describe();
  EXPECT_EQ(first.iterations_run, 40);
  const auto second = fuzz::run_campaign(opt);
  EXPECT_EQ(second.clean(), first.clean());
  EXPECT_EQ(second.iterations_run, first.iterations_run);
}

TEST(Campaign, PerturbedEngineIsCaughtAndMinimized) {
  fuzz::CampaignOptions opt;
  opt.seed = 42;
  opt.iterations = 50;
  opt.run.engine_bb_capacity_scale = 0.5;
  opt.max_failures = 1;
  const std::string dir = ::testing::TempDir();
  opt.out_dir = dir;
  const auto result = fuzz::run_campaign(opt);
  ASSERT_FALSE(result.clean());
  const auto& failure = result.failures.front();
  EXPECT_FALSE(failure.divergences.empty());
  // Acceptance criterion: the minimizer shrinks the repro to <= 5 tasks.
  EXPECT_LE(failure.minimized.workflow.task_count(), 5u);
  // The written fuzzcase replays: same divergence under the perturbation,
  // no divergence on the unperturbed engine.
  ASSERT_FALSE(failure.written_path.empty());
  const auto replayed = fuzz::replay_case_file(failure.written_path, opt.run);
  EXPECT_TRUE(replayed.diverged);
  const auto clean_replay = fuzz::replay_case_file(failure.written_path);
  EXPECT_FALSE(clean_replay.diverged);
  // The file itself carries the schema tag.
  const json::Value doc = json::parse(slurp(failure.written_path));
  EXPECT_EQ(doc.at("schema").as_string(), fuzz::kFuzzcaseSchema);
  std::remove(failure.written_path.c_str());
}

// ----------------------------------------------------------------- resil

TEST(ResilFuzz, CocktailSamplerIsDeterministicAndArmed) {
  util::Rng a(5), b(5);
  const fuzz::Scenario sa = fuzz::sample_resil_scenario(a);
  const fuzz::Scenario sb = fuzz::sample_resil_scenario(b);
  EXPECT_EQ(sa.to_json().dump(2), sb.to_json().dump(2));
  // Every cocktail pins a seed and a horizon (the termination guarantee),
  // and both specs must parse under the resil grammar.
  ASSERT_FALSE(sa.config.fault_spec.empty());
  EXPECT_NE(sa.config.fault_spec.find("seed="), std::string::npos);
  EXPECT_NE(sa.config.fault_spec.find("horizon="), std::string::npos);
  EXPECT_NO_THROW((void)resil::FaultSpec::parse(sa.config.fault_spec));
  EXPECT_NO_THROW((void)resil::CheckpointSpec::parse(sa.config.checkpoint_spec));
}

TEST(ResilFuzz, CocktailSometimesArmsEachIngredient) {
  // Over a modest seed range the cocktail should hit node faults, tier
  // windows and both checkpoint modes -- otherwise the fuzzer has a blind
  // spot. Counted over forks of one root so the test stays deterministic.
  int node = 0, bb = 0, pfs = 0, interval = 0, daly = 0;
  util::Rng root(77);
  for (int i = 0; i < 60; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_resil_scenario(rng);
    if (sc.config.fault_spec.find("node_mtbf=") != std::string::npos) ++node;
    if (sc.config.fault_spec.find("bb_mtbf=") != std::string::npos) ++bb;
    if (sc.config.fault_spec.find("pfs_mtbf=") != std::string::npos) ++pfs;
    if (sc.config.checkpoint_spec.find("interval=") != std::string::npos)
      ++interval;
    if (sc.config.checkpoint_spec.find("daly") != std::string::npos) ++daly;
  }
  EXPECT_GT(node, 0);
  EXPECT_GT(bb, 0);
  EXPECT_GT(pfs, 0);
  EXPECT_GT(interval, 0);
  EXPECT_GT(daly, 0);
}

TEST(ResilFuzz, SpecsRoundTripAndStayAbsentWhenEmpty) {
  // Plain scenarios must not grow "faults"/"checkpoint" keys: pre-resil
  // corpus files stay byte-stable through load/save.
  util::Rng plain_rng(9);
  const fuzz::Scenario plain = fuzz::sample_scenario(plain_rng);
  const std::string plain_doc = plain.to_json().dump(2);
  EXPECT_EQ(plain_doc.find("\"faults\""), std::string::npos);
  EXPECT_EQ(plain_doc.find("\"checkpoint\""), std::string::npos);

  util::Rng armed_rng(5);
  const fuzz::Scenario armed = fuzz::sample_resil_scenario(armed_rng);
  const fuzz::Scenario back = fuzz::scenario_from_json(armed.to_json());
  EXPECT_EQ(back.config.fault_spec, armed.config.fault_spec);
  EXPECT_EQ(back.config.checkpoint_spec, armed.config.checkpoint_spec);
  EXPECT_EQ(back.to_json().dump(2), armed.to_json().dump(2));
}

TEST(ResilFuzz, BatteryPassesOnArmedScenario) {
  // run_scenario dispatches armed scenarios to the invariant battery; a
  // shipped engine must come back clean, and repeatably so.
  util::Rng rng(5);
  const fuzz::Scenario sc = fuzz::sample_resil_scenario(rng);
  const auto first = fuzz::run_scenario(sc);
  EXPECT_FALSE(first.diverged)
      << first.divergences.front().describe();
  util::Rng rng2(5);
  const auto second = fuzz::run_scenario(fuzz::sample_resil_scenario(rng2));
  EXPECT_EQ(second.diverged, first.diverged);
}

TEST(ResilFuzz, CocktailCampaignOnShippedEngineIsClean) {
  fuzz::CampaignOptions opt;
  opt.seed = 7;
  opt.iterations = 12;
  opt.resil_cocktail = true;
  const auto result = fuzz::run_campaign(opt);
  EXPECT_TRUE(result.clean())
      << result.failures.front().divergences.front().describe();
  EXPECT_EQ(result.iterations_run, 12);
}

TEST(Minimizer, KeepsReproAndShrinks) {
  // Find a failing scenario under perturbation, then minimize by hand and
  // check the invariants the campaign relies on.
  fuzz::RunOptions perturbed;
  perturbed.engine_bb_capacity_scale = 0.5;
  util::Rng root(42);
  for (int i = 0; i < 50; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    const auto outcome = fuzz::run_scenario(sc, perturbed);
    if (!outcome.diverged) continue;
    const fuzz::Scenario small = fuzz::minimize_scenario(sc, perturbed);
    EXPECT_LE(small.workflow.task_count(), sc.workflow.task_count());
    EXPECT_TRUE(fuzz::run_scenario(small, perturbed).diverged);
    small.workflow.validate();  // still a legal workflow
    return;
  }
  FAIL() << "perturbation produced no divergence in 50 scenarios";
}

}  // namespace
}  // namespace bbsim
