// Tests of the fuzz subsystem itself: scenario sampling determinism,
// fuzzcase JSON round-tripping, clean campaigns on the shipped engine,
// and the self-test that a perturbed engine is caught and the failing
// case minimized down to a handful of tasks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fuzz/minimize.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"
#include "json/json.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bbsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------- sampling

TEST(Sampler, SameSeedSameScenario) {
  util::Rng a(7), b(7);
  const fuzz::Scenario sa = fuzz::sample_scenario(a);
  const fuzz::Scenario sb = fuzz::sample_scenario(b);
  EXPECT_EQ(sa.to_json().dump(2), sb.to_json().dump(2));
}

TEST(Sampler, DifferentSeedsDiffer) {
  util::Rng a(7), b(8);
  const fuzz::Scenario sa = fuzz::sample_scenario(a);
  const fuzz::Scenario sb = fuzz::sample_scenario(b);
  EXPECT_NE(sa.to_json().dump(2), sb.to_json().dump(2));
}

TEST(Sampler, ScenariosAreFeasible) {
  util::Rng root(11);
  for (int i = 0; i < 20; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    EXPECT_GT(sc.workflow.task_count(), 0u);
    EXPECT_FALSE(sc.platform.hosts.empty());
    // Every task's core request fits the largest host.
    int max_cores = 0;
    for (const auto& h : sc.platform.hosts) max_cores = std::max(max_cores, h.cores);
    for (const auto& name : sc.workflow.task_names())
      EXPECT_LE(sc.workflow.task(name).requested_cores, max_cores) << name;
  }
}

// ----------------------------------------------------------- round-trip

TEST(Fuzzcase, JsonRoundTripIsByteIdentical) {
  util::Rng root(23);
  for (int i = 0; i < 10; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    const std::string once = sc.to_json().dump(2);
    const fuzz::Scenario back = fuzz::scenario_from_json(json::parse(once));
    EXPECT_EQ(back.to_json().dump(2), once) << "iter " << i;
  }
}

TEST(Fuzzcase, RoundTripPreservesOutcome) {
  util::Rng rng(31);
  const fuzz::Scenario sc = fuzz::sample_scenario(rng);
  const fuzz::Scenario back = fuzz::scenario_from_json(sc.to_json());
  const auto a = fuzz::run_scenario(sc);
  const auto b = fuzz::run_scenario(back);
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.engine_error, b.engine_error);
}

TEST(Fuzzcase, RejectsWrongSchema) {
  json::Object doc;
  doc.set("schema", "bbsim.run.v1");
  EXPECT_THROW(fuzz::scenario_from_json(json::Value(std::move(doc))),
               util::Error);
}

TEST(Fuzzcase, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bbsim_fuzzcase_rt.json";
  util::Rng rng(37);
  const fuzz::Scenario sc = fuzz::sample_scenario(rng);
  json::write_file(path, sc.to_json());
  const fuzz::Scenario back = fuzz::scenario_from_file(path);
  EXPECT_EQ(back.to_json().dump(2), sc.to_json().dump(2));
  std::remove(path.c_str());
}

// ------------------------------------------------------------ campaigns

TEST(Campaign, ShippedEngineIsCleanAndDeterministic) {
  fuzz::CampaignOptions opt;
  opt.seed = 42;
  opt.iterations = 40;
  const auto first = fuzz::run_campaign(opt);
  EXPECT_TRUE(first.clean())
      << first.failures.front().divergences.front().describe();
  EXPECT_EQ(first.iterations_run, 40);
  const auto second = fuzz::run_campaign(opt);
  EXPECT_EQ(second.clean(), first.clean());
  EXPECT_EQ(second.iterations_run, first.iterations_run);
}

TEST(Campaign, PerturbedEngineIsCaughtAndMinimized) {
  fuzz::CampaignOptions opt;
  opt.seed = 42;
  opt.iterations = 50;
  opt.run.engine_bb_capacity_scale = 0.5;
  opt.max_failures = 1;
  const std::string dir = ::testing::TempDir();
  opt.out_dir = dir;
  const auto result = fuzz::run_campaign(opt);
  ASSERT_FALSE(result.clean());
  const auto& failure = result.failures.front();
  EXPECT_FALSE(failure.divergences.empty());
  // Acceptance criterion: the minimizer shrinks the repro to <= 5 tasks.
  EXPECT_LE(failure.minimized.workflow.task_count(), 5u);
  // The written fuzzcase replays: same divergence under the perturbation,
  // no divergence on the unperturbed engine.
  ASSERT_FALSE(failure.written_path.empty());
  const auto replayed = fuzz::replay_case_file(failure.written_path, opt.run);
  EXPECT_TRUE(replayed.diverged);
  const auto clean_replay = fuzz::replay_case_file(failure.written_path);
  EXPECT_FALSE(clean_replay.diverged);
  // The file itself carries the schema tag.
  const json::Value doc = json::parse(slurp(failure.written_path));
  EXPECT_EQ(doc.at("schema").as_string(), fuzz::kFuzzcaseSchema);
  std::remove(failure.written_path.c_str());
}

TEST(Minimizer, KeepsReproAndShrinks) {
  // Find a failing scenario under perturbation, then minimize by hand and
  // check the invariants the campaign relies on.
  fuzz::RunOptions perturbed;
  perturbed.engine_bb_capacity_scale = 0.5;
  util::Rng root(42);
  for (int i = 0; i < 50; ++i) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    const fuzz::Scenario sc = fuzz::sample_scenario(rng);
    const auto outcome = fuzz::run_scenario(sc, perturbed);
    if (!outcome.diverged) continue;
    const fuzz::Scenario small = fuzz::minimize_scenario(sc, perturbed);
    EXPECT_LE(small.workflow.task_count(), sc.workflow.task_count());
    EXPECT_TRUE(fuzz::run_scenario(small, perturbed).diverged);
    small.workflow.validate();  // still a legal workflow
    return;
  }
  FAIL() << "perturbation produced no divergence in 50 scenarios";
}

}  // namespace
}  // namespace bbsim
