// Unit tests for the JSON substrate: parsing, errors, round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "json/json.hpp"
#include "util/error.hpp"

namespace bbsim::json {
namespace {

using util::NotFoundError;
using util::ParseError;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n \"a\" : [ 1 , 2 ] }\t");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": {"b": [1, {"c": "d"}]}})");
  EXPECT_EQ(v.at("a").at("b").as_array()[1].at("c").as_string(), "d");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(parse(R"("中")").as_string(), "\xe4\xb8\xad");      // 中
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    parse("{\n  \"a\": nulll\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("[1] trailing"), ParseError);
  EXPECT_THROW(parse("'single'"), ParseError);
  EXPECT_THROW(parse("01x"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("\"bad\\q\""), ParseError);
  EXPECT_THROW(parse("\"ctrl\x01\""), ParseError);
}

TEST(JsonObject, PreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  std::vector<std::string> keys;
  for (const auto& [k, _] : v.as_object()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonObject, DuplicateKeysRejected) {
  // A duplicate key is almost always a hand-edited config mistake; since
  // silently letting the last value win hides it, the parser rejects it.
  EXPECT_THROW(parse(R"({"a": 1, "a": 2})"), util::ParseError);
  // Object::set still overwrites programmatically.
  Object o;
  o.set("a", Value(1));
  o.set("a", Value(2));
  EXPECT_DOUBLE_EQ(o.at("a").as_number(), 2.0);
  EXPECT_EQ(o.size(), 1u);
}

TEST(JsonObject, AtThrowsNotFound) {
  const Value v = parse("{}");
  EXPECT_THROW(v.at("missing"), NotFoundError);
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), ParseError);
  EXPECT_THROW(v.as_string(), ParseError);
  EXPECT_THROW(parse("1.5").as_int(), ParseError);
}

TEST(JsonValue, LenientGetters) {
  const Value v = parse(R"({"n": 5, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(v.get_number("n", -1), 5.0);
  EXPECT_DOUBLE_EQ(v.get_number("missing", -1), -1.0);
  EXPECT_DOUBLE_EQ(v.get_number("s", -1), -1.0);  // wrong type -> fallback
  EXPECT_EQ(v.get_string("s", "d"), "x");
  EXPECT_EQ(v.get_string("n", "d"), "d");
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_EQ(v.get_int("n", 0), 5);
}

TEST(JsonValue, EqualityIsDeep) {
  EXPECT_EQ(parse(R"({"a":[1,2],"b":"x"})"), parse(R"({ "a" : [1, 2], "b": "x" })"));
  EXPECT_NE(parse("[1,2]"), parse("[2,1]"));
  EXPECT_NE(parse(R"({"a":1})"), parse(R"({"b":1})"));
}

TEST(JsonValue, CopySemantics) {
  Value a = parse(R"({"k": [1, 2, 3]})");
  Value b = a;
  b.as_object()["k"].as_array().push_back(Value(4.0));
  EXPECT_EQ(a.at("k").as_array().size(), 3u);
  EXPECT_EQ(b.at("k").as_array().size(), 4u);
}

TEST(JsonDump, RoundTripCompact) {
  const std::string doc = R"({"a":[1,2.5,"s",null,true],"b":{"c":-3}})";
  EXPECT_EQ(parse(parse(doc).dump()), parse(doc));
}

TEST(JsonDump, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Value(42.0).dump(), "42");
  EXPECT_EQ(Value(-1.0).dump(), "-1");
}

TEST(JsonDump, StringsEscaped) {
  EXPECT_EQ(Value("a\"b\n").dump(), R"("a\"b\n")");
}

TEST(JsonDump, PrettyPrintIndents) {
  Object o;
  o.set("a", Value(1.0));
  const std::string pretty = Value(std::move(o)).dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonFile, WriteAndParseFile) {
  const std::string path = ::testing::TempDir() + "/bbsim_json_test.json";
  const Value original = parse(R"({"x": [1, {"y": "z"}]})");
  write_file(path, original);
  EXPECT_EQ(parse_file(path), original);
  std::remove(path.c_str());
}

TEST(JsonFile, MissingFileThrows) {
  EXPECT_THROW(parse_file("/nonexistent/path.json"), ParseError);
}

}  // namespace
}  // namespace bbsim::json

namespace json_edge_tests {

using namespace bbsim::json;
using bbsim::util::ParseError;

TEST(JsonEdge, DeepNestingRoundTrips) {
  std::string doc;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) doc += "[";
  doc += "42";
  for (int i = 0; i < depth; ++i) doc += "]";
  Value v = parse(doc);
  for (int i = 0; i < depth; ++i) {
    ASSERT_EQ(v.as_array().size(), 1u);
    v = v.as_array()[0];
  }
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
}

TEST(JsonEdge, NumberPrecisionSurvivesRoundTrip) {
  for (const double x : {1e-300, 1e300, 0.1, 1.0 / 3.0, 6.5e9, 36.80e9}) {
    EXPECT_DOUBLE_EQ(parse(Value(x).dump()).as_number(), x) << x;
  }
}

TEST(JsonEdge, LargeArrayParses) {
  std::string doc = "[";
  for (int i = 0; i < 10000; ++i) {
    if (i) doc += ",";
    doc += std::to_string(i);
  }
  doc += "]";
  const Value v = parse(doc);
  EXPECT_EQ(v.as_array().size(), 10000u);
  EXPECT_DOUBLE_EQ(v.as_array()[9999].as_number(), 9999.0);
}

TEST(JsonEdge, SurrogatePairDecodes) {
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // 😀
  EXPECT_THROW(parse(R"("\ud83d")"), ParseError);          // lone high surrogate
  EXPECT_THROW(parse(R"("\ud83dA")"), ParseError);    // bad low surrogate
}

TEST(JsonEdge, MoveSemanticsLeaveSourceReusable) {
  Value a = parse(R"({"k": [1, 2]})");
  Value b = std::move(a);
  EXPECT_EQ(b.at("k").as_array().size(), 2u);
  a = parse("[3]");  // reassignment after move is fine
  EXPECT_EQ(a.as_array().size(), 1u);
}

}  // namespace json_edge_tests
