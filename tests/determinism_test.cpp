// Determinism regression tests: an identical seed + spec must serialize
// byte-identical bbsim.run.v1 / bbsim.sweep.v1 reports across --jobs
// 1/2/4 and across audit ON/OFF (audit-only fields stripped before the
// byte compare -- the audit must observe, never perturb).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "cli/sweep_cli.hpp"
#include "json/json.hpp"
#include "sweep/spec.hpp"

namespace bbsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deep-copies `v` with every audit-only key removed, at any depth. The
/// json::Object API has no erase, so filtered copies are rebuilt.
json::Value strip_audit_fields(const json::Value& v) {
  if (v.is_object()) {
    json::Object out;
    for (const auto& [key, value] : v.as_object()) {
      if (key == "audit" || key == "audit_violations") continue;
      out.set(key, strip_audit_fields(value));
    }
    return json::Value(std::move(out));
  }
  if (v.is_array()) {
    json::Array out;
    out.reserve(v.as_array().size());
    for (const auto& element : v.as_array()) {
      out.push_back(strip_audit_fields(element));
    }
    return json::Value(std::move(out));
  }
  return v;
}

sweep::SweepSpec determinism_spec() {
  return sweep::parse_sweep_spec(json::parse(R"({
    "name": "determinism",
    "base": {"workflow": "swarp", "testbed": "cori-private", "seed": 7},
    "axes": {"pipelines": [1, 2], "policy": ["all_pfs", "all_bb"]},
    "repetitions": 2
  })"));
}

std::string sweep_report_dump(int jobs, bool audit) {
  cli::SweepCliOptions opt;
  opt.jobs = jobs;
  opt.quiet = true;
  opt.audit = audit;
  return cli::run_sweep_to_json(determinism_spec(), opt).dump(2);
}

TEST(Determinism, SweepReportByteIdenticalAcrossJobs) {
  const std::string serial = sweep_report_dump(/*jobs=*/1, /*audit=*/false);
  EXPECT_NE(serial.find("\"schema\": \"bbsim.sweep.v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"ok\": true"), std::string::npos);
  for (const int jobs : {2, 4}) {
    EXPECT_EQ(sweep_report_dump(jobs, false), serial) << "jobs=" << jobs;
  }
}

TEST(Determinism, SweepReportStableAcrossInvocations) {
  EXPECT_EQ(sweep_report_dump(2, false), sweep_report_dump(2, false));
}

std::string run_report_dump(bool audit) {
  const std::string path = ::testing::TempDir() + "/bbsim_determinism_run.json";
  cli::CliOptions opt;
  opt.quiet = true;
  opt.pipelines = 2;
  opt.trace_path = path;
  opt.audit = audit;
  EXPECT_EQ(cli::run_cli(opt), 0);
  // Reserialize through the parser so the comparison is formatting-stable.
  const std::string report = json::parse(slurp(path)).dump(2);
  std::remove(path.c_str());
  return report;
}

TEST(Determinism, RunReportByteIdenticalAcrossInvocations) {
  const std::string first = run_report_dump(false);
  EXPECT_NE(first.find("\"schema\": \"bbsim.run.v1\""), std::string::npos);
  EXPECT_EQ(run_report_dump(false), first);
}

#if defined(BBSIM_AUDIT_ENABLED)
TEST(Determinism, SweepReportUnchangedByAudit) {
  const std::string off = sweep_report_dump(/*jobs=*/2, /*audit=*/false);
  const std::string on = sweep_report_dump(/*jobs=*/2, /*audit=*/true);
  EXPECT_NE(on, off);  // audit fields are present when auditing...
  const std::string off_stripped =
      strip_audit_fields(json::parse(off)).dump(2);
  const std::string on_stripped = strip_audit_fields(json::parse(on)).dump(2);
  EXPECT_EQ(on_stripped, off_stripped);  // ...and are the ONLY difference
  EXPECT_EQ(off_stripped, off);  // stripping a no-audit report is a no-op
}

TEST(Determinism, RunReportUnchangedByAudit) {
  const std::string off = run_report_dump(false);
  const std::string on = run_report_dump(true);
  const std::string off_stripped =
      strip_audit_fields(json::parse(off)).dump(2);
  const std::string on_stripped = strip_audit_fields(json::parse(on)).dump(2);
  EXPECT_EQ(on_stripped, off_stripped);
  EXPECT_EQ(off_stripped, off);
}
#endif  // BBSIM_AUDIT_ENABLED

}  // namespace
}  // namespace bbsim
