// Determinism regression tests: an identical seed + spec must serialize
// byte-identical bbsim.run.v1 / bbsim.sweep.v1 reports across --jobs
// 1/2/4 and across audit ON/OFF (audit-only fields stripped before the
// byte compare -- the audit must observe, never perturb). Runs with
// --faults/--checkpoint armed must be just as reproducible: identical
// bbsim.resil.v1 sections and FNV-1a schedule hashes across repeated
// runs and across --jobs 1 vs 8 sweeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/options.hpp"
#include "cli/runner.hpp"
#include "cli/sweep_cli.hpp"
#include "json/json.hpp"
#include "sweep/spec.hpp"

namespace bbsim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deep-copies `v` with every audit-only key removed, at any depth. The
/// json::Object API has no erase, so filtered copies are rebuilt.
json::Value strip_audit_fields(const json::Value& v) {
  if (v.is_object()) {
    json::Object out;
    for (const auto& [key, value] : v.as_object()) {
      if (key == "audit" || key == "audit_violations") continue;
      out.set(key, strip_audit_fields(value));
    }
    return json::Value(std::move(out));
  }
  if (v.is_array()) {
    json::Array out;
    out.reserve(v.as_array().size());
    for (const auto& element : v.as_array()) {
      out.push_back(strip_audit_fields(element));
    }
    return json::Value(std::move(out));
  }
  return v;
}

sweep::SweepSpec determinism_spec() {
  return sweep::parse_sweep_spec(json::parse(R"({
    "name": "determinism",
    "base": {"workflow": "swarp", "testbed": "cori-private", "seed": 7},
    "axes": {"pipelines": [1, 2], "policy": ["all_pfs", "all_bb"]},
    "repetitions": 2
  })"));
}

std::string sweep_report_dump(int jobs, bool audit) {
  cli::SweepCliOptions opt;
  opt.jobs = jobs;
  opt.quiet = true;
  opt.audit = audit;
  return cli::run_sweep_to_json(determinism_spec(), opt).dump(2);
}

TEST(Determinism, SweepReportByteIdenticalAcrossJobs) {
  const std::string serial = sweep_report_dump(/*jobs=*/1, /*audit=*/false);
  EXPECT_NE(serial.find("\"schema\": \"bbsim.sweep.v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"ok\": true"), std::string::npos);
  for (const int jobs : {2, 4}) {
    EXPECT_EQ(sweep_report_dump(jobs, false), serial) << "jobs=" << jobs;
  }
}

TEST(Determinism, SweepReportStableAcrossInvocations) {
  EXPECT_EQ(sweep_report_dump(2, false), sweep_report_dump(2, false));
}

std::string run_report_dump(bool audit) {
  const std::string path = ::testing::TempDir() + "/bbsim_determinism_run.json";
  cli::CliOptions opt;
  opt.quiet = true;
  opt.pipelines = 2;
  opt.trace_path = path;
  opt.audit = audit;
  EXPECT_EQ(cli::run_cli(opt), 0);
  // Reserialize through the parser so the comparison is formatting-stable.
  const std::string report = json::parse(slurp(path)).dump(2);
  std::remove(path.c_str());
  return report;
}

TEST(Determinism, RunReportByteIdenticalAcrossInvocations) {
  const std::string first = run_report_dump(false);
  EXPECT_NE(first.find("\"schema\": \"bbsim.run.v1\""), std::string::npos);
  EXPECT_EQ(run_report_dump(false), first);
}

// ------------------------------------------------------------------ resil

/// The fault/checkpoint cocktail the resil determinism tests pin: on
/// swarp/cori-private with 2 pipelines it fires several crashes, kills and
/// checkpoints, so the hashes below cover a genuinely disturbed schedule.
constexpr const char* kFaults = "node_mtbf=40,node_repair=5,seed=9,horizon=400";
constexpr const char* kCheckpoint = "interval=15,fraction=0.1,restart=2";

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the serialized per-task records (host, cores, full-precision
/// start/end times): any schedule drift between two runs flips this hash
/// even if headline numbers happen to agree.
std::uint64_t schedule_hash(const json::Value& report) {
  return fnv1a(report.at("tasks").dump());
}

std::string resil_run_report_dump() {
  const std::string path = ::testing::TempDir() + "/bbsim_determinism_resil.json";
  cli::CliOptions opt;
  opt.quiet = true;
  opt.pipelines = 2;
  opt.trace_path = path;
  opt.faults = kFaults;
  opt.checkpoint = kCheckpoint;
  EXPECT_EQ(cli::run_cli(opt), 0);
  const std::string report = json::parse(slurp(path)).dump(2);
  std::remove(path.c_str());
  return report;
}

TEST(Determinism, ResilReportAndScheduleHashStableAcrossRuns) {
  const std::string first = resil_run_report_dump();
  // The run really was disturbed and carries the resil section.
  EXPECT_NE(first.find("\"schema\": \"bbsim.resil.v1\""), std::string::npos);
  EXPECT_NE(first.find("\"node_crashes\""), std::string::npos);
  const std::string second = resil_run_report_dump();
  EXPECT_EQ(second, first);
  EXPECT_EQ(schedule_hash(json::parse(second)),
            schedule_hash(json::parse(first)));
}

sweep::SweepSpec resil_determinism_spec() {
  return sweep::parse_sweep_spec(json::parse(R"({
    "name": "resil-determinism",
    "base": {"workflow": "swarp", "testbed": "cori-private", "pipelines": 2,
             "faults": ")" + std::string(kFaults) + R"(",
             "checkpoint": ")" + std::string(kCheckpoint) + R"("},
    "axes": {"policy": ["all_pfs", "all_bb"],
             "seed": [7, 8]},
    "repetitions": 2
  })"));
}

std::string resil_sweep_dump(int jobs) {
  cli::SweepCliOptions opt;
  opt.jobs = jobs;
  opt.quiet = true;
  return cli::run_sweep_to_json(resil_determinism_spec(), opt).dump(2);
}

TEST(Determinism, ResilSweepByteIdenticalAcrossJobs1And8) {
  const std::string serial = resil_sweep_dump(/*jobs=*/1);
  EXPECT_NE(serial.find("\"schema\": \"bbsim.sweep.v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"ok\": true"), std::string::npos);
  // Fault axes lift resil headline counters into every run record.
  EXPECT_NE(serial.find("\"node_crashes\""), std::string::npos);
  EXPECT_EQ(resil_sweep_dump(/*jobs=*/8), serial);
}

TEST(Determinism, ResilSweepStableAcrossInvocations) {
  EXPECT_EQ(resil_sweep_dump(8), resil_sweep_dump(8));
}

#if defined(BBSIM_AUDIT_ENABLED)
TEST(Determinism, SweepReportUnchangedByAudit) {
  const std::string off = sweep_report_dump(/*jobs=*/2, /*audit=*/false);
  const std::string on = sweep_report_dump(/*jobs=*/2, /*audit=*/true);
  EXPECT_NE(on, off);  // audit fields are present when auditing...
  const std::string off_stripped =
      strip_audit_fields(json::parse(off)).dump(2);
  const std::string on_stripped = strip_audit_fields(json::parse(on)).dump(2);
  EXPECT_EQ(on_stripped, off_stripped);  // ...and are the ONLY difference
  EXPECT_EQ(off_stripped, off);  // stripping a no-audit report is a no-op
}

TEST(Determinism, RunReportUnchangedByAudit) {
  const std::string off = run_report_dump(false);
  const std::string on = run_report_dump(true);
  const std::string off_stripped =
      strip_audit_fields(json::parse(off)).dump(2);
  const std::string on_stripped = strip_audit_fields(json::parse(on)).dump(2);
  EXPECT_EQ(on_stripped, off_stripped);
  EXPECT_EQ(off_stripped, off);
}
#endif  // BBSIM_AUDIT_ENABLED

}  // namespace
}  // namespace bbsim
