// bbsim-tidy-fixture: as-path=src/resil/fault.cpp
// Flagging fixture for bbsim-nondeterminism-source in the resil layer: a
// fault sampler that draws crash times from a wall clock or from hardware
// entropy instead of the seeded util::Rng stream would make failure
// injection unreproducible (and break the bitwise-identity guarantee of
// faults-disabled runs). Every such source must be diagnosed.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

// A "fault model" whose arrival process leaks real time: the classic
// mistake when porting a production chaos injector into a simulator.
class WallClockFaultModel {
 public:
  double next_crash_gap() {
    const auto now = std::chrono::steady_clock::now();  // CHECK: bbsim-nondeterminism-source
    const double jitter =
        static_cast<double>(rand()) / RAND_MAX;  // CHECK: bbsim-nondeterminism-source
    return std::chrono::duration<double>(now.time_since_epoch()).count() *
           jitter;
  }

  unsigned reseed_from_hardware() {
    std::random_device rd;  // CHECK: bbsim-nondeterminism-source
    return rd();
  }

  double repair_time_from_env() {
    const char* env = std::getenv("BBSIM_MTTR");  // CHECK: bbsim-nondeterminism-source
    return env != nullptr ? atof(env) : 0.0;
  }

  long outage_epoch() {
    return static_cast<long>(time(nullptr));  // CHECK: bbsim-nondeterminism-source
  }
};

}  // namespace fixture
