// bbsim-tidy-fixture: as-path=src/report/summary.cpp
// Flagging fixture for bbsim-unordered-iteration: direct walks over
// unordered containers in a (virtual) report path must be diagnosed,
// whether by range-for or by explicit iterator.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Index = std::unordered_map<std::string, std::size_t>;

struct Summary {
  std::unordered_map<std::string, double> totals;
  std::unordered_set<int> seen;
  Index by_name;

  double sum_direct() const {
    double sum = 0.0;
    for (const auto& entry : totals) {  // CHECK: bbsim-unordered-iteration
      sum += entry.second;
    }
    return sum;
  }

  int count_direct() const {
    int n = 0;
    for (const int id : seen) {  // CHECK: bbsim-unordered-iteration
      n += id;
    }
    return n;
  }

  std::size_t walk_alias() const {
    std::size_t sum = 0;
    for (const auto& entry : by_name) {  // CHECK: bbsim-unordered-iteration
      sum += entry.second;
    }
    return sum;
  }

  double iterator_walk() const {
    double sum = 0.0;
    for (auto it = totals.begin(); it != totals.end(); ++it) {  // CHECK: bbsim-unordered-iteration
      sum += it->second;
    }
    return sum;
  }
};

}  // namespace fixture
