// bbsim-tidy-fixture: as-path=src/flow/clean_widget.cpp
// Negative fixture: idiomatic bbsim code placed in the strictest scope
// (src/flow is covered by every check, including bbsim-float-equality)
// must produce zero diagnostics from the full bbsim-* check set.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace fixture {

constexpr double kEps = 1e-12;

struct Resource {
  std::string name;
  double capacity = 0.0;
  int busy = 0;
};

class Widget {
 public:
  void add(const std::string& name, double capacity) {
    resources_.push_back(Resource{name, capacity, 0});
  }

  // std::map iterates in key order: deterministic, never flagged.
  double total(const std::map<std::string, double>& by_name) const {
    double sum = 0.0;
    for (const auto& entry : by_name) sum += entry.second;
    return sum;
  }

  bool saturated(double used, double capacity) const {
    return used >= capacity - kEps;
  }

  std::vector<std::string> names_sorted() const {
    std::vector<std::string> names;
    names.reserve(resources_.size());
    for (const Resource& r : resources_) names.push_back(r.name);
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  std::vector<Resource> resources_;
};

}  // namespace fixture
