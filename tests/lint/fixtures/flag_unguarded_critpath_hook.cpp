// bbsim-tidy-fixture: as-path=src/exec/engine_critpath_wiring.cpp
// Flagging fixture for bbsim-unguarded-critpath-hook: recorder calls
// outside BBSIM_CRITPATH_HOOK survive -DBBSIM_CRITPATH=OFF builds, which
// breaks the layer's off-means-bitwise-identical contract, and must be
// diagnosed.

#include <string>

namespace bbsim::critpath {

enum class ReadyCause { kWorkflowStart, kParent, kRequeue };

class Recorder {
 public:
  void record_ready(const std::string& task, double time, ReadyCause cause);
  void record_read_bytes(const std::string& task, double bytes, bool from_bb);
  void record_abort(const std::string& task, double t_ready, double t_start,
                    double t_abort);
};

}  // namespace bbsim::critpath

#define BBSIM_CRITPATH_HOOK(stmt) stmt

namespace bbsim::exec {

class Engine {
 public:
  void on_ready(const std::string& task, double now) {
    if (critpath_ != nullptr) {
      critpath_->record_ready(task, now,  // CHECK: bbsim-unguarded-critpath-hook
                              critpath::ReadyCause::kParent);
    }
  }

  void on_read(const std::string& task, double bytes) {
    if (critpath_ != nullptr) critpath_->record_read_bytes(task, bytes, true);  // CHECK: bbsim-unguarded-critpath-hook
  }

  void on_abort(const std::string& task, double ready, double start,
                double now) {
    BBSIM_CRITPATH_HOOK(if (critpath_ != nullptr) {
      critpath_->record_abort(task, ready, start, now);
    });
  }

 private:
  critpath::Recorder* critpath_ = nullptr;
};

}  // namespace bbsim::exec
