// bbsim-tidy-fixture: as-path=src/exec/placement_guard.cpp
// Flagging fixture for bbsim-raw-assert: raw assert()/abort() in library
// code bypass the BBSIM_ASSERT / BBSIM_AUDIT_CHECK error discipline
// (file:line context, audit collection) and must be diagnosed.

#include <cassert>
#include <cstdlib>

namespace fixture {

int checked_div(int a, int b) {
  assert(b != 0);  // CHECK: bbsim-raw-assert
  return a / b;
}

void die_on_bad_state(bool ok) {
  if (!ok) {
    abort();  // CHECK: bbsim-raw-assert
  }
}

void die_qualified(bool ok) {
  if (!ok) {
    std::abort();  // CHECK: bbsim-raw-assert
  }
}

}  // namespace fixture
