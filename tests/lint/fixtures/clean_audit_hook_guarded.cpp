// bbsim-tidy-fixture: as-path=src/storage/service_probe_wiring.cpp
// Allowlist fixture for bbsim-unguarded-audit-hook: probe calls wrapped in
// BBSIM_AUDIT_HOOK (including multi-line statement bodies) compile out
// under -DBBSIM_AUDIT=OFF and are clean; observer *declarations* are not
// calls.

#include <string>

namespace bbsim::storage {

struct StorageService;

struct StorageObserver {
  virtual ~StorageObserver() = default;
  virtual void on_occupancy_change(const StorageService& svc,
                                   const std::string& file, double delta,
                                   double used_after) = 0;
  virtual void on_replica_erased(const StorageService& svc,
                                 const std::string& file, double size) = 0;
};

#define BBSIM_AUDIT_HOOK(stmt) stmt

struct StorageService {
  void erase(const std::string& file, double size) {
    used_ -= size;
    BBSIM_AUDIT_HOOK(if (observer_ != nullptr) {
      observer_->on_occupancy_change(*this, file, -size, used_);
      observer_->on_replica_erased(*this, file, size);
    });
  }

  double used_ = 0.0;
  StorageObserver* observer_ = nullptr;
};

}  // namespace bbsim::storage
