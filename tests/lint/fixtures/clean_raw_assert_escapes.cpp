// bbsim-tidy-fixture: as-path=src/exec/placement_checked.cpp
// Allowlist fixture for bbsim-raw-assert: the project assertion macros,
// static_assert, same-named member functions and a justified NOLINT are
// all clean.

#include <cstdlib>
#include <stdexcept>
#include <string>

#define BBSIM_ASSERT(cond, msg) \
  do {                          \
    if (!(cond)) throw std::runtime_error(msg); \
  } while (false)

namespace fixture {

static_assert(sizeof(int) >= 4, "ILP32 or wider required");

// A member function named abort() is domain vocabulary, not the libc kill
// switch (FlowManager::abort aborts a *flow*).
struct Transfer {
  bool abort(int id) { return id >= 0; }
};

int checked_div(int a, int b) {
  BBSIM_ASSERT(b != 0, "division by zero");
  return a / b;
}

bool cancel(Transfer& t, int id) { return t.abort(id); }

void last_resort(bool ok) {
  // Handler of last resort in a noexcept teardown path, reviewed:
  if (!ok) std::abort();  // NOLINT(bbsim-raw-assert)
}

}  // namespace fixture
