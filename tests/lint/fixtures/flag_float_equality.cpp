// bbsim-tidy-fixture: as-path=src/flow/level_select.cpp
// Flagging fixture for bbsim-float-equality: exact ==/!= between
// floating-point expressions in solver/scheduler code is the PR 7
// epsilon-deadlock defect class and must be diagnosed.

namespace fixture {

bool levels_tie(double cap_level, double next_level) {
  return cap_level == next_level;  // CHECK: bbsim-float-equality
}

bool drained(double remaining) {
  return remaining == 0.0;  // CHECK: bbsim-float-equality
}

bool rate_changed(double before, double after) {
  if (before != after) {  // CHECK: bbsim-float-equality
    return true;
  }
  return false;
}

bool literal_lhs(double x) {
  return 1.5e-9 == x;  // CHECK: bbsim-float-equality
}

}  // namespace fixture
