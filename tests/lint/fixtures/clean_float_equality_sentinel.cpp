// bbsim-tidy-fixture: as-path=src/flow/level_select_eps.cpp
// Allowlist fixture for bbsim-float-equality: epsilon comparisons, integer
// comparisons, comparisons against the assigned-only kUnlimited sentinel,
// and a justified NOLINT are all clean.

#include <cmath>
#include <cstddef>

namespace fixture {

constexpr double kUnlimited = 1e300;
constexpr double kEps = 1e-9;

bool drained(double remaining) { return std::abs(remaining) <= kEps; }

bool unconstrained(double rate_cap) {
  // Sentinel doubles are only ever assigned, never computed, so exact
  // comparison is the intended idiom (allowlisted by name).
  return rate_cap == kUnlimited;
}

bool same_count(std::size_t a, std::size_t b) { return a == b; }

bool exact_change_detect(double stored, double incoming) {
  // Change detection between two assigned values, reviewed and waived:
  return stored == incoming;  // NOLINT(bbsim-float-equality)
}

}  // namespace fixture
