// bbsim-tidy-fixture: as-path=src/exec/scheduler_state.cpp
// Flagging fixture for bbsim-nondeterminism-source: wall clocks, libc
// randomness, random_device and environment reads anywhere outside the
// sanctioned profiler/bench files must be diagnosed.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

using Clock = std::chrono::steady_clock;

double wall_now() {
  const auto t0 = std::chrono::steady_clock::now();  // CHECK: bbsim-nondeterminism-source
  const auto t1 = std::chrono::system_clock::now();  // CHECK: bbsim-nondeterminism-source
  const auto t2 = Clock::now();  // CHECK: bbsim-nondeterminism-source
  (void)t1;
  return std::chrono::duration<double>(t2 - t0).count();
}

int libc_entropy() {
  int x = rand();  // CHECK: bbsim-nondeterminism-source
  x += static_cast<int>(time(nullptr));  // CHECK: bbsim-nondeterminism-source
  return x;
}

unsigned hardware_entropy() {
  std::random_device rd;  // CHECK: bbsim-nondeterminism-source
  return rd();
}

const char* env_read() {
  return std::getenv("BBSIM_SEED");  // CHECK: bbsim-nondeterminism-source
}

}  // namespace fixture
