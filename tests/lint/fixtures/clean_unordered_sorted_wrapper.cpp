// bbsim-tidy-fixture: as-path=src/report/summary_sorted.cpp
// Allowlist fixture for bbsim-unordered-iteration: the sanctioned ways to
// walk an unordered container -- the util::sorted_keys()/sorted_items()
// wrappers, lookups that never iterate, and an explicitly justified NOLINT
// -- must produce zero diagnostics.

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bbsim::util {

// Stand-in for src/util/sorted_view.hpp (fixtures are self-contained).
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& entry : m) keys.push_back(entry.first);  // NOLINT(bbsim-unordered-iteration)
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace bbsim::util

namespace fixture {

struct Summary {
  std::unordered_map<std::string, double> totals;

  double sum_sorted() const {
    double sum = 0.0;
    for (const auto& key : bbsim::util::sorted_keys(totals)) {
      sum += totals.at(key);
    }
    return sum;
  }

  // Point lookups do not depend on iteration order.
  bool has(const std::string& key) const {
    return totals.find(key) != totals.end();
  }

  // Order-independent accumulation, reviewed and waived at the call site.
  std::size_t checksum() const {
    std::size_t n = 0;
    for (const auto& entry : totals) {  // NOLINT(bbsim-unordered-iteration): commutative sum
      n += entry.first.size();
    }
    return n;
  }
};

}  // namespace fixture
