// bbsim-tidy-fixture: as-path=src/exec/engine_critpath_guarded.cpp
// Allowlist fixture for bbsim-unguarded-critpath-hook: recorder calls
// wrapped in BBSIM_CRITPATH_HOOK (including multi-line statement bodies)
// compile out under -DBBSIM_CRITPATH=OFF and are clean; recorder method
// *declarations* are not calls, and trace::TimelineRecorder calls are a
// different (always-on) observer.

#include <string>

namespace bbsim::critpath {

class Recorder {
 public:
  void record_write_bytes(const std::string& task, double bytes, bool to_bb);
  void record_restart_delay(const std::string& task, double seconds);
  void record_implicit_stage(double start, double end);
};

}  // namespace bbsim::critpath

namespace bbsim::trace {

class TimelineRecorder {
 public:
  void add_critpath_link(const std::string& from, const std::string& to,
                         double time);
};

}  // namespace bbsim::trace

#define BBSIM_CRITPATH_HOOK(stmt) stmt

namespace bbsim::exec {

class Engine {
 public:
  void on_write(const std::string& task, double bytes, double delay) {
    BBSIM_CRITPATH_HOOK(if (critpath_ != nullptr) {
      critpath_->record_write_bytes(task, bytes, true);
      critpath_->record_restart_delay(task, delay);
    });
    BBSIM_CRITPATH_HOOK(
        if (critpath_ != nullptr) critpath_->record_implicit_stage(0.0, 1.0));
  }

  void on_link(const std::string& from, const std::string& to, double time) {
    // The timeline recorder is not the critpath recorder: flow-link
    // emission stays on when the critpath layer is compiled out.
    if (timeline_ != nullptr) timeline_->add_critpath_link(from, to, time);
  }

 private:
  critpath::Recorder* critpath_ = nullptr;
  trace::TimelineRecorder* timeline_ = nullptr;
};

}  // namespace bbsim::exec
