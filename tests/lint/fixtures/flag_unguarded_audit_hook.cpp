// bbsim-tidy-fixture: as-path=src/sim/engine_probe_wiring.cpp
// Flagging fixture for bbsim-unguarded-audit-hook: audit observer probe
// calls outside BBSIM_AUDIT_HOOK survive -DBBSIM_AUDIT=OFF builds, which
// defeats the compile-out guarantee, and must be diagnosed.

namespace bbsim::sim {

using EventId = unsigned long long;
using Time = double;

struct EngineObserver {
  virtual ~EngineObserver() = default;
  virtual void on_scheduled(EventId id, Time now, Time when) = 0;
  virtual void on_executed(EventId id, Time when) = 0;
  virtual void on_cancelled(EventId id) = 0;
};

#define BBSIM_AUDIT_HOOK(stmt) stmt

class Engine {
 public:
  void schedule(EventId id, Time now, Time when) {
    if (observer_ != nullptr) {
      observer_->on_scheduled(id, now, when);  // CHECK: bbsim-unguarded-audit-hook
    }
  }

  void execute(EventId id, Time when) {
    if (observer_ != nullptr) observer_->on_executed(id, when);  // CHECK: bbsim-unguarded-audit-hook
  }

  void cancel(EventId id) {
    BBSIM_AUDIT_HOOK(if (observer_ != nullptr) observer_->on_cancelled(id));
  }

 private:
  EngineObserver* observer_ = nullptr;
};

}  // namespace bbsim::sim
