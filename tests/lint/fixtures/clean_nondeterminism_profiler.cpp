// bbsim-tidy-fixture: as-path=src/trace/profiler.cpp
// Allowlist fixture for bbsim-nondeterminism-source: the wall-clock
// profiler is the one sanctioned nondeterministic report section, so the
// same clock reads that flag elsewhere are clean here (path allowlist).

#include <chrono>

namespace fixture {

double self_time() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Simulated virtual time is always fine: it comes from the engine, not the
// host.
double virtual_now(double engine_now) { return engine_now; }

}  // namespace fixture
