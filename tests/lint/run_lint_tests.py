#!/usr/bin/env python3
"""Fixture self-tests for the bbsim-tidy static checks.

Each ``tests/lint/fixtures/*.cpp`` file is an annotated fixture:

  * an optional first-comment directive
    ``// bbsim-tidy-fixture: as-path=src/flow/foo.cpp`` places the fixture
    at a virtual repo-relative path (the checks scope and allowlist by
    path);
  * every line that must produce a diagnostic carries a trailing
    ``// CHECK: bbsim-check-name[, bbsim-other-check]`` comment;
  * a fixture with no CHECK comments asserts zero diagnostics.

The runner executes a checker backend over each fixture, parses the emitted
``file:line:col: warning: ... [check]`` diagnostics, and diffs the set of
(line, check) pairs against the CHECK expectations. Backends:

  --tool mirror      tools/tidy/bbsim_tidy.py (no toolchain needed; default)
  --tool clang-tidy  clang-tidy -load <plugin>  (requires --plugin)
  --tool both        run both and require each to match the expectations

With ``--tool clang-tidy`` the fixture is copied into a temp directory at
its virtual path so that clang-tidy sees the same path the allowlists match
against. Exit status is non-zero on any mismatch, which is how ctest and
the CI bbsim-tidy job consume this script.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
MIRROR = os.path.join(REPO, "tools", "tidy", "bbsim_tidy.py")

DIRECTIVE = re.compile(r"bbsim-tidy-fixture:\s*as-path=(\S+)")
CHECK_RX = re.compile(r"//\s*CHECK:\s*([a-z0-9,\s-]+)")
DIAG_RX = re.compile(r"^(.*?):(\d+):(\d+):\s+warning:\s+.*\[([\w.-]+)\]\s*$")


def parse_fixture(path):
    """Return (as_path, expected) where expected is a set of (line, check)."""
    as_path = None
    expected = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if as_path is None:
                m = DIRECTIVE.search(line)
                if m:
                    as_path = m.group(1)
            m = CHECK_RX.search(line)
            if m:
                for name in m.group(1).split(","):
                    name = name.strip()
                    if name:
                        expected.add((lineno, name))
    return as_path or os.path.basename(path), expected


def parse_diagnostics(output):
    found = set()
    for line in output.splitlines():
        m = DIAG_RX.match(line)
        if m:
            found.add((int(m.group(2)), m.group(4)))
    return found


def run_mirror(fixture, as_path):
    proc = subprocess.run(
        [sys.executable, MIRROR, "--as-path", as_path, fixture],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if proc.returncode not in (0, 1):
        raise RuntimeError("mirror failed on %s:\n%s" % (fixture, proc.stderr))
    return parse_diagnostics(proc.stdout)


def run_clang_tidy(fixture, as_path, clang_tidy, plugin):
    with tempfile.TemporaryDirectory(prefix="bbsim-tidy-") as tmp:
        staged = os.path.join(tmp, as_path)
        os.makedirs(os.path.dirname(staged), exist_ok=True)
        shutil.copyfile(fixture, staged)
        cmd = [
            clang_tidy,
            "-load", plugin,
            "-checks=-*,bbsim-*",
            "-warnings-as-errors=",  # report, do not escalate: we diff
            staged,
            "--",
            "-std=c++20",
        ]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, text=True)
        # clang-tidy exits non-zero when warnings were emitted; a compile
        # error in the fixture itself shows up on stderr.
        if "error:" in proc.stdout or "Error while processing" in proc.stderr:
            raise RuntimeError("clang-tidy failed on %s:\n%s\n%s"
                               % (fixture, proc.stdout, proc.stderr))
        return parse_diagnostics(proc.stdout)


def describe(pairs):
    return ", ".join("line %d [%s]" % p for p in sorted(pairs)) or "(none)"


def run_one(fixture, backends, verbose):
    as_path, expected = parse_fixture(fixture)
    ok = True
    for name, runner in backends:
        found = runner(fixture, as_path)
        missing = expected - found
        surplus = found - expected
        if missing or surplus:
            ok = False
            print("FAIL %s [%s] (as %s)" % (os.path.basename(fixture), name,
                                            as_path))
            if missing:
                print("  expected but not emitted: " + describe(missing))
            if surplus:
                print("  emitted but not expected: " + describe(surplus))
        elif verbose:
            print("ok   %s [%s]: %d diagnostic(s)"
                  % (os.path.basename(fixture), name, len(expected)))
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fixtures", default=os.path.join(HERE, "fixtures"),
                    help="fixture directory (default: tests/lint/fixtures)")
    ap.add_argument("--only", action="append", default=[],
                    help="run only fixtures whose basename matches")
    ap.add_argument("--tool", choices=["mirror", "clang-tidy", "both"],
                    default="mirror")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy binary (for --tool clang-tidy/both)")
    ap.add_argument("--plugin", help="path to bbsim_tidy plugin .so")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    backends = []
    if args.tool in ("mirror", "both"):
        backends.append(("mirror", run_mirror))
    if args.tool in ("clang-tidy", "both"):
        if not args.plugin:
            ap.error("--tool %s requires --plugin" % args.tool)
        backends.append(
            ("clang-tidy",
             lambda fx, ap_, ct=args.clang_tidy, pl=args.plugin:
                 run_clang_tidy(fx, ap_, ct, pl)))

    fixtures = sorted(
        os.path.join(args.fixtures, f) for f in os.listdir(args.fixtures)
        if f.endswith(".cpp"))
    if args.only:
        fixtures = [f for f in fixtures
                    if any(pat in os.path.basename(f) for pat in args.only)]
    if not fixtures:
        print("no fixtures matched", file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        if not run_one(fixture, backends, args.verbose):
            failures += 1
    total = len(fixtures)
    if failures:
        print("%d/%d fixture(s) failed" % (failures, total))
        return 1
    print("all %d fixture(s) passed (%s)"
          % (total, "+".join(n for n, _ in backends)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
