#!/usr/bin/env python3
"""Header self-sufficiency gate: every public header must compile standalone.

For each ``src/**/*.hpp`` this script synthesizes a one-line translation
unit ``#include "<header>"`` and compiles it with ``-fsyntax-only`` using
the include paths, defines and standard taken from the build's
``compile_commands.json`` (pass the build directory with ``-p``; configure
with ``-DCMAKE_EXPORT_COMPILE_COMMANDS=ON``, which the top-level
CMakeLists now sets). A header that only compiles because every current
includer happens to pull its dependencies in first is one refactor away
from breaking; this pins the property statically.

Exit status: 0 when every header compiles, 1 otherwise (each failure is
reported with the compiler's own diagnostics). Wired into ctest as
``lint.headers`` and into the CI clang-tidy job.

Usage:
  check_headers.py -p build [--compiler g++] [--root .] [src ...]
"""

import argparse
import concurrent.futures
import json
import os
import shlex
import subprocess
import sys
import tempfile

# Flags lifted from a reference compile command that do not apply to a
# syntax-only TU (output control, dependency files).
_DROP_WITH_ARG = {"-o", "-c", "-MF", "-MT", "-MQ", "--output"}
_DROP = {"-MD", "-MMD", "-MP", "--coverage"}


def reference_flags(build_dir, root):
    """Include/define/standard flags from the first src/ entry of the
    compile database, or conservative defaults when there is none."""
    db_path = os.path.join(build_dir, "compile_commands.json") if build_dir else None
    if db_path and os.path.exists(db_path):
        with open(db_path, "r", encoding="utf-8") as f:
            db = json.load(f)
        for entry in sorted(db, key=lambda e: e.get("file", "")):
            path = entry.get("file", "")
            if "/src/" not in path.replace(os.sep, "/"):
                continue
            args = entry.get("arguments")
            if not args:
                args = shlex.split(entry.get("command", ""))
            flags = []
            skip = False
            for arg in args[1:]:  # drop the compiler itself
                if skip:
                    skip = False
                    continue
                if arg in _DROP_WITH_ARG:
                    skip = True
                    continue
                if arg in _DROP or arg.endswith(".cpp") or arg.endswith(".o"):
                    continue
                flags.append(arg)
            return flags, entry.get("directory", build_dir)
    # Fallback: enough for this repo's layout.
    return (["-std=c++20", "-I" + os.path.join(root, "src"),
             "-DBBSIM_AUDIT_ENABLED=1"], root)


def headers_under(root, subdirs):
    out = []
    for sub in subdirs:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, sub)):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(".hpp"):
                    out.append(os.path.join(dirpath, fn))
    return out


def check_header(header, flags, workdir, compiler, root):
    rel = os.path.relpath(header, os.path.join(root, "src"))
    with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", prefix="hdr_", dir=None, delete=False) as tu:
        tu.write('#include "%s"\n' % rel.replace(os.sep, "/"))
        tu_path = tu.name
    try:
        cmd = [compiler] + flags + ["-fsyntax-only", "-x", "c++", tu_path]
        proc = subprocess.run(cmd, cwd=workdir, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        return proc.returncode == 0, proc.stdout
    finally:
        os.unlink(tu_path)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("subdirs", nargs="*", default=None,
                    help="directories under --root to scan (default: src)")
    ap.add_argument("-p", "--build-dir",
                    help="build directory containing compile_commands.json")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's repo)")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 1)
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    flags, workdir = reference_flags(args.build_dir, args.root)
    # The headers include each other root-relative ("util/error.hpp"), so
    # <root>/src must be on the path even when --root overrides the repo the
    # compile database was built for.
    flags = flags + ["-I" + os.path.join(args.root, "src")]
    headers = headers_under(args.root, args.subdirs or ["src"])
    if not headers:
        print("no headers found", file=sys.stderr)
        return 2

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        results = pool.map(
            lambda h: check_header(h, flags, workdir, args.compiler,
                                   args.root), headers)
        for header, (ok, output) in zip(headers, results):
            rel = os.path.relpath(header, args.root)
            if not ok:
                failures += 1
                print("FAIL %s" % rel)
                sys.stdout.write(output)
            elif args.verbose:
                print("ok   %s" % rel)

    if failures:
        print("%d/%d header(s) are not self-sufficient"
              % (failures, len(headers)))
        return 1
    print("all %d header(s) compile standalone" % len(headers))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
