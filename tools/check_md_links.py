#!/usr/bin/env python3
"""Fail on dead relative links in the repository's Markdown files.

Scans every tracked *.md file for inline links and images
(``[text](target)`` / ``![alt](target)``) and verifies that each relative
target exists on disk. External schemes (http/https/mailto) and pure
in-page anchors (``#section``) are skipped; a ``path#anchor`` target is
checked for the path only. Exit code 1 lists every dead link.

Run from anywhere inside the repo: ``python3 tools/check_md_links.py``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

# Inline links, excluding images' leading "!" only for the report label.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True,
        capture_output=True,
        text=True,
    )
    return Path(out.stdout.strip())


def markdown_files(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        check=True,
        capture_output=True,
        text=True,
        cwd=root,
    )
    return sorted({root / line for line in out.stdout.splitlines() if line})


def strip_code_blocks(text: str) -> str:
    """Blank out fenced code blocks so example links are not checked."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return "\n".join(lines)


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    text = strip_code_blocks(md.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (root / path_part) if path_part.startswith("/") else (md.parent / path_part)
        if not resolved.exists():
            line_no = text[: match.start()].count("\n") + 1
            errors.append(f"{md.relative_to(root)}:{line_no}: dead link -> {target}")
    return errors


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    errors: list[str] = []
    for md in files:
        errors.extend(check_file(md, root))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} dead relative link(s) across {len(files)} Markdown files.")
        return 1
    print(f"OK: {len(files)} Markdown files, all relative links resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
