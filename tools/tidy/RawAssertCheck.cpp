//===--- RawAssertCheck.cpp - bbsim-raw-assert ----------------------------===//

#include "RawAssertCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

namespace {

class AssertPPCallbacks : public clang::PPCallbacks {
public:
  AssertPPCallbacks(RawAssertCheck *Check, const clang::SourceManager &SM)
      : Check(Check), SM(SM) {}

  void MacroExpands(const clang::Token &MacroNameTok,
                    const clang::MacroDefinition &,
                    clang::SourceRange Range,
                    const clang::MacroArgs *) override {
    const clang::IdentifierInfo *II = MacroNameTok.getIdentifierInfo();
    if (II != nullptr && II->getName() == "assert")
      Check->flagAssert(Range.getBegin(), SM);
  }

private:
  RawAssertCheck *Check;
  const clang::SourceManager &SM;
};

} // namespace

RawAssertCheck::RawAssertCheck(llvm::StringRef Name,
                               clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      FilesRegex(Options.get("FilesRegex", "(^|/)src/")), Files(FilesRegex) {}

void RawAssertCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "FilesRegex", FilesRegex);
}

void RawAssertCheck::registerPPCallbacks(const clang::SourceManager &SM,
                                         clang::Preprocessor *PP,
                                         clang::Preprocessor *) {
  PP->addPPCallbacks(std::make_unique<AssertPPCallbacks>(this, SM));
}

void RawAssertCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::abort", "::std::abort"))))
          .bind("abort"),
      this);
}

void RawAssertCheck::flagAssert(clang::SourceLocation Loc,
                                const clang::SourceManager &SM) {
  if (!pathMatches(Files, SM, Loc))
    return;
  diag(SM.getExpansionLoc(Loc),
       "raw 'assert()' in library code; use BBSIM_ASSERT (hard invariant) "
       "or BBSIM_AUDIT_CHECK (recorded violation) from util/error.hpp");
}

void RawAssertCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<clang::CallExpr>("abort");
  if (Call == nullptr)
    return;
  const clang::SourceManager &SM = *Result.SourceManager;
  const clang::SourceLocation Loc = Call->getBeginLoc();
  if (!pathMatches(Files, SM, Loc))
    return;
  diag(SM.getExpansionLoc(Loc),
       "raw 'abort()' in library code; use BBSIM_ASSERT (hard invariant) "
       "or BBSIM_AUDIT_CHECK (recorded violation) from util/error.hpp");
}

} // namespace bbsim_tidy
