//===--- UnguardedCritpathHookCheck.cpp - bbsim-unguarded-critpath-hook ---===//

#include "UnguardedCritpathHookCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

UnguardedCritpathHookCheck::UnguardedCritpathHookCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      FilesRegex(Options.get("FilesRegex", "(^|/)src/")),
      AllowedFilesRegex(
          Options.get("AllowedFilesRegex", "(^|/)src/critpath/")),
      // The qualified-name anchor matters: trace::TimelineRecorder also ends
      // in "Recorder" and is *supposed* to be called unguarded.
      RecorderClassRegex(
          Options.get("RecorderClassRegex", "critpath::Recorder$")),
      GuardMacro(Options.get("GuardMacro", "BBSIM_CRITPATH_HOOK")),
      Files(FilesRegex), AllowedFiles(AllowedFilesRegex) {}

void UnguardedCritpathHookCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "FilesRegex", FilesRegex);
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
  Options.store(Opts, "RecorderClassRegex", RecorderClassRegex);
  Options.store(Opts, "GuardMacro", GuardMacro);
}

void UnguardedCritpathHookCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(
                            ofClass(cxxRecordDecl(
                                matchesName(RecorderClassRegex))))))
          .bind("probe"),
      this);
}

void UnguardedCritpathHookCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("probe");
  if (Call == nullptr)
    return;
  const clang::SourceManager &SM = *Result.SourceManager;
  const clang::SourceLocation Loc = Call->getBeginLoc();
  if (!pathMatches(Files, SM, Loc) || pathMatches(AllowedFiles, SM, Loc))
    return;
  if (insideMacro(Loc, SM, getLangOpts(), GuardMacro))
    return;
  diag(SM.getExpansionLoc(Loc),
       "critpath recorder call outside %0; it would survive "
       "-DBBSIM_CRITPATH=OFF builds")
      << GuardMacro;
}

} // namespace bbsim_tidy
