//===--- UnorderedIterationCheck.cpp - bbsim-unordered-iteration ----------===//

#include "UnorderedIterationCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

UnorderedIterationCheck::UnorderedIterationCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(Options.get("AllowedFilesRegex",
                                    "(^|/)src/util/sorted_view\\.hpp$")),
      AllowedFiles(AllowedFilesRegex) {}

void UnorderedIterationCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void UnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedDecl = classTemplateSpecializationDecl(
      hasAnyName("::std::unordered_map", "::std::unordered_set",
                 "::std::unordered_multimap", "::std::unordered_multiset"));
  const auto UnorderedType = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(UnorderedDecl))));

  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(UnorderedType)).bind("range")))
          .bind("loop"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        on(expr(hasType(UnorderedType))))
          .bind("begin"),
      this);
}

void UnorderedIterationCheck::check(const MatchFinder::MatchResult &Result) {
  clang::SourceLocation Loc;
  if (const auto *Loop =
          Result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop"))
    Loc = Loop->getForLoc();
  else if (const auto *Begin =
               Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("begin"))
    Loc = Begin->getBeginLoc();
  else
    return;

  const clang::SourceManager &SM = *Result.SourceManager;
  if (pathMatches(AllowedFiles, SM, Loc))
    return;
  diag(SM.getExpansionLoc(Loc),
       "iteration order over an unordered container is unspecified and "
       "breaks report determinism; iterate util::sorted_keys()/"
       "sorted_items() instead");
}

} // namespace bbsim_tidy
