//===--- RawAssertCheck.h - bbsim-raw-assert ------------------------------===//
//
// Flags raw assert() macro expansions and abort()/std::abort() calls in
// library code (src/). bbsim invariants must go through BBSIM_ASSERT (hard
// failure with file:line context, catchable as util::InvariantError) or
// BBSIM_AUDIT_CHECK (recorded into the audit sink without stopping the
// run) from util/error.hpp; raw asserts vanish under NDEBUG and raw aborts
// skip both the error taxonomy and the audit trail. tools/ mains and
// bench/ harnesses are out of scope.
//
// Options:
//   FilesRegex  paths the check applies to (default: src/)
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_RAWASSERTCHECK_H
#define BBSIM_TIDY_RAWASSERTCHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class RawAssertCheck : public clang::tidy::ClangTidyCheck {
public:
  RawAssertCheck(llvm::StringRef Name, clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void registerPPCallbacks(const clang::SourceManager &SM,
                           clang::Preprocessor *PP,
                           clang::Preprocessor *ModuleExpanderPP) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

  /// Called by the preprocessor hook for each assert() expansion.
  void flagAssert(clang::SourceLocation Loc, const clang::SourceManager &SM);

private:
  const std::string FilesRegex;
  llvm::Regex Files;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_RAWASSERTCHECK_H
