//===--- FloatEqualityCheck.h - bbsim-float-equality ----------------------===//
//
// Flags exact ==/!= between floating-point expressions in solver and
// scheduler arithmetic (src/flow, src/batch): the PR 7 BB-deadlock bugs in
// the plan-based/backfilling schedulers were exactly this defect class
// (absolute-epsilon comparisons that silently never fire at fleet scale).
// Comparisons against named sentinel constants that are only ever assigned
// -- never computed -- (kUnlimited and friends) are the intended idiom and
// are allowlisted by name; anything else needs an epsilon or a NOLINT with
// a recorded justification.
//
// Options:
//   FilesRegex        paths the check applies to (default: src/flow|batch)
//   AllowedConstants  semicolon-separated sentinel names whose exact
//                     comparison is sanctioned
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_FLOATEQUALITYCHECK_H
#define BBSIM_TIDY_FLOATEQUALITYCHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/StringSet.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class FloatEqualityCheck : public clang::tidy::ClangTidyCheck {
public:
  FloatEqualityCheck(llvm::StringRef Name,
                     clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

private:
  const std::string FilesRegex;
  const std::string AllowedConstantsList;
  llvm::Regex Files;
  llvm::StringSet<> AllowedConstants;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_FLOATEQUALITYCHECK_H
