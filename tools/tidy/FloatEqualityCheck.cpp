//===--- FloatEqualityCheck.cpp - bbsim-float-equality --------------------===//

#include "FloatEqualityCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

FloatEqualityCheck::FloatEqualityCheck(llvm::StringRef Name,
                                       clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      FilesRegex(Options.get("FilesRegex", "(^|/)src/(flow|batch)/")),
      AllowedConstantsList(
          Options.get("AllowedConstants", "kUnlimited;kPostRun;kNoEstimate")),
      Files(FilesRegex) {
  llvm::SmallVector<llvm::StringRef, 8> Names;
  llvm::StringRef(AllowedConstantsList).split(Names, ';', -1, false);
  for (llvm::StringRef N : Names)
    AllowedConstants.insert(N.trim());
}

void FloatEqualityCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "FilesRegex", FilesRegex);
  Options.store(Opts, "AllowedConstants", AllowedConstantsList);
}

void FloatEqualityCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("==", "!="),
                     hasEitherOperand(ignoringImpCasts(
                         expr(hasType(realFloatingPointType())))))
          .bind("cmp"),
      this);
}

static llvm::StringRef sentinelName(const clang::Expr *E) {
  E = E->IgnoreParenImpCasts();
  if (const auto *Ref = llvm::dyn_cast<clang::DeclRefExpr>(E))
    return Ref->getDecl()->getName();
  if (const auto *Member = llvm::dyn_cast<clang::MemberExpr>(E))
    return Member->getMemberDecl()->getName();
  return llvm::StringRef();
}

void FloatEqualityCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cmp = Result.Nodes.getNodeAs<clang::BinaryOperator>("cmp");
  if (Cmp == nullptr)
    return;
  const clang::SourceManager &SM = *Result.SourceManager;
  const clang::SourceLocation Loc = Cmp->getOperatorLoc();
  if (!pathMatches(Files, SM, Loc))
    return;
  const llvm::StringRef L = sentinelName(Cmp->getLHS());
  const llvm::StringRef R = sentinelName(Cmp->getRHS());
  if ((!L.empty() && AllowedConstants.contains(L)) ||
      (!R.empty() && AllowedConstants.contains(R)))
    return;
  diag(SM.getExpansionLoc(Loc),
       "exact floating-point '%0' in scheduler/solver code; compare "
       "against an epsilon or a named sentinel")
      << clang::BinaryOperator::getOpcodeStr(Cmp->getOpcode());
}

} // namespace bbsim_tidy
