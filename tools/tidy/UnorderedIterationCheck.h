//===--- UnorderedIterationCheck.h - bbsim-unordered-iteration ------------===//
//
// Flags range-for loops and explicit begin()/cbegin() iterator walks over
// std::unordered_{map,set,multimap,multiset}: iteration order is
// unspecified, so any such walk that feeds serialized output silently
// breaks bbsim's byte-identical-report guarantee. The sanctioned escape is
// util::sorted_keys()/sorted_items() (src/util/sorted_view.hpp, whose own
// implementation is the one allowlisted walk), or NOLINT with a recorded
// justification for provably order-independent folds.
//
// Options:
//   AllowedFilesRegex  paths where direct walks are sanctioned
//                      (default: the sorted_view.hpp wrapper itself)
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_UNORDEREDITERATIONCHECK_H
#define BBSIM_TIDY_UNORDEREDITERATIONCHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class UnorderedIterationCheck : public clang::tidy::ClangTidyCheck {
public:
  UnorderedIterationCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_UNORDEREDITERATIONCHECK_H
