//===--- NondeterminismSourceCheck.h - bbsim-nondeterminism-source --------===//
//
// Flags reads of host state that would leak nondeterminism into simulation
// results: wall clocks (std::chrono::{system,steady,high_resolution}_clock
// ::now), libc time()/rand()/srand(), std::random_device, and getenv. The
// wall-clock self-profiler (src/trace/profiler.*) is the only sanctioned
// nondeterministic report section; bench/ harnesses measure host time by
// design and tests/ may use clocks for timeouts, so those paths are
// allowlisted. Everything else must derive time from the simulation engine
// and randomness from seeded util::rng.
//
// Options:
//   AllowedFilesRegex  paths where host-state reads are sanctioned
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_NONDETERMINISMSOURCECHECK_H
#define BBSIM_TIDY_NONDETERMINISMSOURCECHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class NondeterminismSourceCheck : public clang::tidy::ClangTidyCheck {
public:
  NondeterminismSourceCheck(llvm::StringRef Name,
                            clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedFilesRegex;
  llvm::Regex AllowedFiles;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_NONDETERMINISMSOURCECHECK_H
