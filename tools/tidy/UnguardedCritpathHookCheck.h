//===--- UnguardedCritpathHookCheck.h - bbsim-unguarded-critpath-hook -----===//
//
// Flags direct calls to the causal-event recorder (critpath::Recorder) that
// are not wrapped in BBSIM_CRITPATH_HOOK. The macro is what makes
// -DBBSIM_CRITPATH=OFF compile the recording probes out entirely; an
// unwrapped call survives that configuration and silently re-introduces
// recording overhead into builds that promised bitwise identity with the
// recorder absent. src/critpath/ implements the recorder and may call it
// directly.
//
// Options:
//   FilesRegex          paths the check applies to (default: src/)
//   AllowedFilesRegex   paths exempt from the check (default: src/critpath/)
//   RecorderClassRegex  qualified-name regex of the recorder class
//   GuardMacro          the wrapper macro name (default: BBSIM_CRITPATH_HOOK)
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_UNGUARDEDCRITPATHHOOKCHECK_H
#define BBSIM_TIDY_UNGUARDEDCRITPATHHOOKCHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class UnguardedCritpathHookCheck : public clang::tidy::ClangTidyCheck {
public:
  UnguardedCritpathHookCheck(llvm::StringRef Name,
                             clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

private:
  const std::string FilesRegex;
  const std::string AllowedFilesRegex;
  const std::string RecorderClassRegex;
  const std::string GuardMacro;
  llvm::Regex Files;
  llvm::Regex AllowedFiles;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_UNGUARDEDCRITPATHHOOKCHECK_H
