//===--- UnguardedAuditHookCheck.cpp - bbsim-unguarded-audit-hook ---------===//

#include "UnguardedAuditHookCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

UnguardedAuditHookCheck::UnguardedAuditHookCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      FilesRegex(Options.get("FilesRegex", "(^|/)src/")),
      AllowedFilesRegex(Options.get("AllowedFilesRegex", "(^|/)src/audit/")),
      ObserverClassRegex(Options.get(
          "ObserverClassRegex", "(EngineObserver|StorageObserver)$")),
      GuardMacro(Options.get("GuardMacro", "BBSIM_AUDIT_HOOK")),
      Files(FilesRegex), AllowedFiles(AllowedFilesRegex) {}

void UnguardedAuditHookCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "FilesRegex", FilesRegex);
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
  Options.store(Opts, "ObserverClassRegex", ObserverClassRegex);
  Options.store(Opts, "GuardMacro", GuardMacro);
}

void UnguardedAuditHookCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(
                            ofClass(cxxRecordDecl(
                                matchesName(ObserverClassRegex))))))
          .bind("probe"),
      this);
}

void UnguardedAuditHookCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("probe");
  if (Call == nullptr)
    return;
  const clang::SourceManager &SM = *Result.SourceManager;
  const clang::SourceLocation Loc = Call->getBeginLoc();
  if (!pathMatches(Files, SM, Loc) || pathMatches(AllowedFiles, SM, Loc))
    return;
  if (insideMacro(Loc, SM, getLangOpts(), GuardMacro))
    return;
  diag(SM.getExpansionLoc(Loc),
       "audit observer call outside %0; it would survive "
       "-DBBSIM_AUDIT=OFF builds")
      << GuardMacro;
}

} // namespace bbsim_tidy
