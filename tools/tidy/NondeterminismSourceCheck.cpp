//===--- NondeterminismSourceCheck.cpp - bbsim-nondeterminism-source ------===//

#include "NondeterminismSourceCheck.h"

#include "BbsimTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace bbsim_tidy {

NondeterminismSourceCheck::NondeterminismSourceCheck(
    llvm::StringRef Name, clang::tidy::ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFilesRegex(Options.get(
          "AllowedFilesRegex",
          "(^|/)(src/trace/profiler\\.(hpp|cpp)$|bench/|tests/)")),
      AllowedFiles(AllowedFilesRegex) {}

void NondeterminismSourceCheck::storeOptions(
    clang::tidy::ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex);
}

void NondeterminismSourceCheck::registerMatchers(MatchFinder *Finder) {
  // Free functions from libc / <cstdlib> / <ctime>.
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::time", "::std::time", "::rand", "::std::rand",
                              "::srand", "::std::srand", "::getenv",
                              "::std::getenv"))))
          .bind("call"),
      this);
  // Wall clocks: static member now(). high_resolution_clock is a typedef of
  // one of the other two in every mainstream stdlib, so naming all three is
  // belt and braces.
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::steady_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("call"),
      this);
  // Hardware entropy.
  Finder->addMatcher(
      varDecl(hasType(cxxRecordDecl(hasName("::std::random_device"))))
          .bind("rd"),
      this);
}

void NondeterminismSourceCheck::check(const MatchFinder::MatchResult &Result) {
  clang::SourceLocation Loc;
  llvm::StringRef What;
  if (const auto *Call = Result.Nodes.getNodeAs<clang::CallExpr>("call")) {
    Loc = Call->getBeginLoc();
    What = "host clock/entropy/environment call";
  } else if (const auto *RD = Result.Nodes.getNodeAs<clang::VarDecl>("rd")) {
    Loc = RD->getLocation();
    What = "std::random_device";
  } else {
    return;
  }

  const clang::SourceManager &SM = *Result.SourceManager;
  if (pathMatches(AllowedFiles, SM, Loc))
    return;
  diag(SM.getExpansionLoc(Loc),
       "%0 is a nondeterminism source; only the src/trace profiler and "
       "bench harnesses may read host state")
      << What;
}

} // namespace bbsim_tidy
