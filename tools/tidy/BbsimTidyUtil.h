//===--- BbsimTidyUtil.h - shared helpers for the bbsim-* checks ----------===//
//
// Shared helpers for the bbsim clang-tidy checks: path scoping/allowlisting
// and macro-guard detection. Kept header-only so every check stays a single
// .cpp. The defaults here mirror tools/tidy/bbsim_tidy.py -- change both
// together (docs/static-analysis.md documents the pairing).
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_BBSIMTIDYUTIL_H
#define BBSIM_TIDY_BBSIMTIDYUTIL_H

#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

/// True when `Loc`'s (expansion) file path matches `Re`. Paths are matched
/// with regex *search* semantics, as in the Python mirror; absolute build
/// paths still match `(^|/)src/...` style patterns.
inline bool pathMatches(const llvm::Regex &Re, const clang::SourceManager &SM,
                        clang::SourceLocation Loc) {
  if (Loc.isInvalid())
    return false;
  llvm::StringRef Path = SM.getFilename(SM.getExpansionLoc(Loc));
  return !Path.empty() && Re.match(Path);
}

/// True when `Loc` lies (at any macro-nesting level) inside an expansion of
/// the macro named `MacroName`.
inline bool insideMacro(clang::SourceLocation Loc,
                        const clang::SourceManager &SM,
                        const clang::LangOptions &LangOpts,
                        llvm::StringRef MacroName) {
  while (Loc.isMacroID()) {
    if (clang::Lexer::getImmediateMacroName(Loc, SM, LangOpts) == MacroName)
      return true;
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return false;
}

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_BBSIMTIDYUTIL_H
