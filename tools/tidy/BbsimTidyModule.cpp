//===--- BbsimTidyModule.cpp - bbsim clang-tidy plugin entry point --------===//
//
// Registers the bbsim-* determinism and simulation-invariant checks as a
// clang-tidy plugin module. Load with
//
//   clang-tidy -load /path/to/bbsim_tidy.so -checks='-*,bbsim-*' ...
//
// The checks are grounded in real bbsim defect classes; docs/
// static-analysis.md carries the catalog and rationale, and
// tools/tidy/bbsim_tidy.py is the portable mirror used where Clang dev
// headers are unavailable. tests/lint/ fixtures pin both implementations.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "FloatEqualityCheck.h"
#include "NondeterminismSourceCheck.h"
#include "RawAssertCheck.h"
#include "UnguardedAuditHookCheck.h"
#include "UnguardedCritpathHookCheck.h"
#include "UnorderedIterationCheck.h"

namespace bbsim_tidy {

class BbsimTidyModule : public clang::tidy::ClangTidyModule {
public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<UnorderedIterationCheck>(
        "bbsim-unordered-iteration");
    CheckFactories.registerCheck<NondeterminismSourceCheck>(
        "bbsim-nondeterminism-source");
    CheckFactories.registerCheck<RawAssertCheck>("bbsim-raw-assert");
    CheckFactories.registerCheck<FloatEqualityCheck>("bbsim-float-equality");
    CheckFactories.registerCheck<UnguardedAuditHookCheck>(
        "bbsim-unguarded-audit-hook");
    CheckFactories.registerCheck<UnguardedCritpathHookCheck>(
        "bbsim-unguarded-critpath-hook");
  }
};

} // namespace bbsim_tidy

namespace clang::tidy {

// Register the module with clang-tidy's global registry so -load picks the
// checks up.
static ClangTidyModuleRegistry::Add<bbsim_tidy::BbsimTidyModule>
    X("bbsim-module", "bbsim determinism and simulation-invariant checks.");

// Anchor symbol so the shared object is not dead-stripped.
volatile int BbsimTidyModuleAnchorSource = 0;

} // namespace clang::tidy
