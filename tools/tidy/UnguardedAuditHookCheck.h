//===--- UnguardedAuditHookCheck.h - bbsim-unguarded-audit-hook -----------===//
//
// Flags direct calls to audit observer interfaces (sim::EngineObserver,
// storage::StorageObserver) that are not wrapped in BBSIM_AUDIT_HOOK. The
// macro is what makes -DBBSIM_AUDIT=OFF compile the probes out entirely;
// an unwrapped call survives that configuration and silently re-introduces
// audit overhead (and an ODR-visible dependency) into release builds.
// src/audit/ implements the observers and may call them directly.
//
// Options:
//   FilesRegex          paths the check applies to (default: src/)
//   AllowedFilesRegex   paths exempt from the check (default: src/audit/)
//   ObserverClassRegex  qualified-name regex of the observer interfaces
//   GuardMacro          the wrapper macro name (default: BBSIM_AUDIT_HOOK)
//
//===----------------------------------------------------------------------===//
#ifndef BBSIM_TIDY_UNGUARDEDAUDITHOOKCHECK_H
#define BBSIM_TIDY_UNGUARDEDAUDITHOOKCHECK_H

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/Support/Regex.h"

namespace bbsim_tidy {

class UnguardedAuditHookCheck : public clang::tidy::ClangTidyCheck {
public:
  UnguardedAuditHookCheck(llvm::StringRef Name,
                          clang::tidy::ClangTidyContext *Context);
  void registerMatchers(clang::ast_matchers::MatchFinder *Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(clang::tidy::ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(
      const clang::LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

private:
  const std::string FilesRegex;
  const std::string AllowedFilesRegex;
  const std::string ObserverClassRegex;
  const std::string GuardMacro;
  llvm::Regex Files;
  llvm::Regex AllowedFiles;
};

} // namespace bbsim_tidy

#endif // BBSIM_TIDY_UNGUARDEDAUDITHOOKCHECK_H
