#!/usr/bin/env python3
"""bbsim-tidy: portable mirror of the bbsim clang-tidy checks.

The authoritative implementations of the ``bbsim-*`` checks live in the
clang-tidy plugin next to this file (``tools/tidy/*.cpp``, built when Clang
development headers are present).  This script is a dependency-free lexical
mirror of the same six checks so that

  * the fixture self-tests under ``tests/lint/`` run under ctest on every
    machine, including containers without any Clang toolchain, and
  * the zero-findings gate over ``src/ tools/ bench/`` is enforced by the
    regular test suite, not only by the CI job that can build the plugin.

Both implementations emit the same diagnostic format

    <file>:<line>:<col>: warning: <message> [bbsim-<check>]

honour the same ``// NOLINT(bbsim-...)`` / ``// NOLINTNEXTLINE(bbsim-...)``
escape hatches, and share the same per-check path allowlists.  The mirror is
lexical, not semantic: it tokenizes enough C++ (comments, strings, raw
strings, template brackets) to track declared names, but it does not build an
AST.  The checks and their heuristics are documented in
docs/static-analysis.md; fixtures in tests/lint/fixtures/ pin the behaviour
of both implementations.

Checks:
  bbsim-unordered-iteration   range-for / .begin() walks over std::unordered_
                              containers (determinism hazard in report paths)
  bbsim-nondeterminism-source wall clocks, rand, random_device, getenv
                              outside the sanctioned profiler/bench files
  bbsim-raw-assert            raw assert()/abort() in src/ instead of
                              BBSIM_ASSERT / BBSIM_AUDIT_CHECK
  bbsim-float-equality        ==/!= between floating-point operands in
                              src/flow and src/batch scheduler code
  bbsim-unguarded-audit-hook  observer probe calls outside BBSIM_AUDIT_HOOK
  bbsim-unguarded-critpath-hook
                              critpath recorder calls outside
                              BBSIM_CRITPATH_HOOK

Usage:
  bbsim_tidy.py [--as-path REL] file.cpp ...      # lint explicit files
  bbsim_tidy.py --root REPO src tools bench       # sweep directories
  bbsim_tidy.py --list-checks
  bbsim_tidy.py --checks bbsim-raw-assert,... ... # restrict the check set
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Check registry and per-check configuration (kept in lockstep with the
# plugin's defaults in tools/tidy/*.cpp -- change both together).
# --------------------------------------------------------------------------

ALL_CHECKS = [
    "bbsim-unordered-iteration",
    "bbsim-nondeterminism-source",
    "bbsim-raw-assert",
    "bbsim-float-equality",
    "bbsim-unguarded-audit-hook",
    "bbsim-unguarded-critpath-hook",
]

# Paths are matched as repo-relative POSIX paths (regex search, not match).
# unordered-iteration: the sorted-wrapper implementation must itself walk the
# unordered container once; it is the one sanctioned place.
UNORDERED_ALLOWED_PATHS = r"(^|/)src/util/sorted_view\.hpp$"

# nondeterminism-source: the wall-clock profiler is the only sanctioned
# nondeterministic *report* section; bench/ binaries measure host time by
# design (their gates compare hashes and same-runner ratios, never wall
# time); tests may use clocks for timeouts.
NONDET_ALLOWED_PATHS = r"(^|/)(src/trace/profiler\.(hpp|cpp)$|bench/|tests/)"

# raw-assert: only library code is gated; tools/ mains and bench/ harnesses
# may abort on CLI misuse.
RAW_ASSERT_SCOPE = r"(^|/)src/"

# float-equality: the epsilon-deadlock defect class (PR 7) lives in the
# solver and scheduler arithmetic.
FLOAT_EQ_SCOPE = r"(^|/)src/(flow|batch)/"
# Sentinel doubles that are only ever *assigned*, never computed: exact
# comparison against them is the intended idiom.
FLOAT_EQ_SENTINELS = {"kUnlimited", "kPostRun", "kNoEstimate"}

# unguarded-audit-hook: probes and the auditor implement the observer
# interfaces, so src/audit/ calls them directly by design.
AUDIT_HOOK_SCOPE = r"(^|/)src/"
AUDIT_HOOK_ALLOWED_PATHS = r"(^|/)src/audit/"
AUDIT_HOOK_METHODS = {
    "on_scheduled",
    "on_executed",
    "on_cancelled",
    "on_occupancy_change",
    "on_replica_created",
    "on_replica_erased",
}
AUDIT_HOOK_MACRO = "BBSIM_AUDIT_HOOK"

# unguarded-critpath-hook: the recorder and its analyzer live in
# src/critpath/, which calls the recorder directly by design.
CRITPATH_HOOK_SCOPE = r"(^|/)src/"
CRITPATH_HOOK_ALLOWED_PATHS = r"(^|/)src/critpath/"
CRITPATH_HOOK_METHODS = {
    "record_ready",
    "record_abort",
    "record_read_bytes",
    "record_write_bytes",
    "record_ckpt_stall",
    "record_restart_delay",
    "record_implicit_stage",
}
CRITPATH_HOOK_MACRO = "BBSIM_CRITPATH_HOOK"

MESSAGES = {
    "bbsim-unordered-iteration": (
        "iteration order over '{what}' is unspecified and breaks report "
        "determinism; iterate util::sorted_keys()/sorted_items() instead"
    ),
    "bbsim-nondeterminism-source": (
        "'{what}' is a nondeterminism source; only the src/trace profiler "
        "and bench harnesses may read host state"
    ),
    "bbsim-raw-assert": (
        "raw '{what}' in library code; use BBSIM_ASSERT (hard invariant) or "
        "BBSIM_AUDIT_CHECK (recorded violation) from util/error.hpp"
    ),
    "bbsim-float-equality": (
        "exact floating-point {what} in scheduler/solver code; compare "
        "against an epsilon or a named sentinel"
    ),
    "bbsim-unguarded-audit-hook": (
        "audit observer call '{what}' outside BBSIM_AUDIT_HOOK; it would "
        "survive -DBBSIM_AUDIT=OFF builds"
    ),
    "bbsim-unguarded-critpath-hook": (
        "critpath recorder call '{what}' outside BBSIM_CRITPATH_HOOK; it "
        "would survive -DBBSIM_CRITPATH=OFF builds"
    ),
}


class Diagnostic:
    __slots__ = ("path", "line", "col", "check", "message")

    def __init__(self, path, line, col, check, message):
        self.path = path
        self.line = line
        self.col = col
        self.check = check
        self.message = message

    def render(self):
        return "%s:%d:%d: warning: %s [%s]" % (
            self.path, self.line, self.col, self.message, self.check)


# --------------------------------------------------------------------------
# Lexing: blank out comments and string literals while preserving offsets,
# and record comment text per line for NOLINT handling.
# --------------------------------------------------------------------------

_RAW_OPEN = re.compile(r'R"([^()\\ \t\n]*)\(')


def sanitize(text):
    """Return (code, comments) where `code` is `text` with comments and
    string/char literal contents replaced by spaces (newlines preserved) and
    `comments` maps line number -> concatenated comment text on that line."""
    out = list(text)
    comments = {}
    i, n = 0, len(text)
    line = 1

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    def note_comment(start, end):
        ln = text.count("\n", 0, start) + 1
        for part in text[start:end].split("\n"):
            comments[ln] = comments.get(ln, "") + part
            ln += 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                j = n if j < 0 else j
                note_comment(i, j)
                blank(i, j)
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j < 0 else j + 2
                note_comment(i, j)
                blank(i, j)
                i = j
                continue
        if c == "R" and text.startswith('R"', i):
            m = _RAW_OPEN.match(text, i)
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, m.end())
                j = n if j < 0 else j + len(close)
                blank(i, j)
                i = j
                continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
            continue
        i += 1
    return "".join(out), comments


_NOLINT = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")


def suppressed(comments, line, check):
    """True when a NOLINT / NOLINTNEXTLINE comment covers `check` on `line`."""
    for ln, same in ((line, True), (line - 1, False)):
        blob = comments.get(ln)
        if not blob:
            continue
        for m in _NOLINT.finditer(blob):
            nextline = m.group(1) is not None
            if nextline == same:
                continue  # NOLINT on the previous line does not carry over
            names = m.group(2)
            if names is None or check in [s.strip() for s in names.split(",")]:
                return True
    return False


def line_col(code, offset):
    line = code.count("\n", 0, offset) + 1
    last_nl = code.rfind("\n", 0, offset)
    return line, offset - last_nl


def match_balanced(code, start, open_ch, close_ch):
    """Offset just past the bracket closing `open_ch` at `start`, or -1."""
    depth = 0
    for k in range(start, len(code)):
        if code[k] == open_ch:
            depth += 1
        elif code[k] == close_ch:
            depth -= 1
            if depth == 0:
                return k + 1
    return -1


IDENT = r"[A-Za-z_]\w*"


# --------------------------------------------------------------------------
# bbsim-unordered-iteration
# --------------------------------------------------------------------------

_UNORDERED_DECL = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<")
_USING_ALIAS = re.compile(r"\busing\s+(" + IDENT + r")\s*=")


def _unordered_names(code):
    """Names declared (in this file) with an unordered container type, plus
    type aliases for unordered containers."""
    names, aliases = set(), set()
    for m in _UNORDERED_DECL.finditer(code):
        open_angle = code.find("<", m.start())
        end = match_balanced(code, open_angle, "<", ">")
        if end < 0:
            continue
        # `using Alias = std::unordered_map<...>;`
        line_start = code.rfind("\n", 0, m.start()) + 1
        am = _USING_ALIAS.search(code, line_start, m.start())
        if am:
            aliases.add(am.group(1))
            continue
        dm = re.match(r"\s*&?\s*(" + IDENT + r")\s*[;={(,)]", code[end:])
        if dm:
            names.add(dm.group(1))
    for alias in aliases:
        for m in re.finditer(r"\b" + alias + r"\s+(" + IDENT + r")\s*[;={(,]",
                             code):
            names.add(m.group(1))
    return names


def _normalize_range_expr(expr):
    expr = expr.strip()
    expr = re.sub(r"^\*+", "", expr)
    expr = re.sub(r"^this\s*->\s*", "", expr).strip()
    return expr


# Names declared with unordered types anywhere in the linted set: a member
# declared in foo.hpp is routinely iterated in foo.cpp, so --root sweeps
# collect declarations globally before flagging (single-file/fixture runs
# see only their own declarations).
GLOBAL_UNORDERED_NAMES = set()


def check_unordered_iteration(path, code, text):
    diags = []
    names = _unordered_names(code) | GLOBAL_UNORDERED_NAMES
    check = "bbsim-unordered-iteration"
    # Range-for whose range expression is a known unordered name.
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = code.find("(", m.start())
        end = match_balanced(code, open_paren, "(", ")")
        if end < 0:
            continue
        body = code[open_paren + 1:end - 1]
        colon = -1
        depth = 0
        for k, ch in enumerate(body):
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
            elif ch == ":" and depth == 0:
                if k + 1 < len(body) and body[k + 1] == ":":
                    continue
                if k > 0 and body[k - 1] == ":":
                    continue
                colon = k
                break
        if colon < 0:
            continue
        expr = _normalize_range_expr(body[colon + 1:])
        if expr in names:
            line, col = line_col(code, m.start())
            diags.append(Diagnostic(path, line, col, check,
                                    MESSAGES[check].format(what=expr)))
    # Explicit iterator walks: name.begin() / name.cbegin().
    for name in names:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\.\s*c?begin\s*\(",
                             code):
            line, col = line_col(code, m.start())
            diags.append(Diagnostic(path, line, col, check,
                                    MESSAGES[check].format(what=name)))
    return diags


# --------------------------------------------------------------------------
# bbsim-nondeterminism-source
# --------------------------------------------------------------------------

_CLOCK_ALIAS = re.compile(
    r"\busing\s+(" + IDENT + r")\s*=\s*(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:system|steady|high_resolution)_clock\b")

_NONDET_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?(?:chrono\s*::\s*)?"
                r"(?:system_clock|steady_clock|high_resolution_clock)"
                r"\s*::\s*now\s*\("), "wall-clock ::now()"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?s?rand\s*\("), "rand/srand"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*"
                r"(?:nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?getenv\s*\("), "getenv"),
]


def check_nondeterminism_source(path, code, text):
    check = "bbsim-nondeterminism-source"
    diags = []
    patterns = list(_NONDET_PATTERNS)
    for m in _CLOCK_ALIAS.finditer(code):
        patterns.append((re.compile(r"\b" + m.group(1) + r"\s*::\s*now\s*\("),
                         "wall-clock ::now()"))
    for rx, what in patterns:
        for m in rx.finditer(code):
            line, col = line_col(code, m.start())
            diags.append(Diagnostic(path, line, col, check,
                                    MESSAGES[check].format(what=what)))
    return diags


# --------------------------------------------------------------------------
# bbsim-raw-assert
# --------------------------------------------------------------------------

_ASSERT = re.compile(r"(?<![\w.>:])assert\s*\(")
_ABORT = re.compile(r"(?<![\w.>])(?:std\s*::\s*)?abort\s*\(\s*\)")


def check_raw_assert(path, code, text):
    check = "bbsim-raw-assert"
    diags = []
    for m in _ASSERT.finditer(code):
        line, col = line_col(code, m.start())
        diags.append(Diagnostic(path, line, col, check,
                                MESSAGES[check].format(what="assert()")))
    for m in _ABORT.finditer(code):
        # Qualified calls other than std::abort (e.g. FlowManager::abort)
        # are member functions, not the libc kill switch.
        before = code[:m.start()]
        if before.rstrip().endswith("::") and not m.group(0).startswith("std"):
            continue
        line, col = line_col(code, m.start())
        diags.append(Diagnostic(path, line, col, check,
                                MESSAGES[check].format(what="abort()")))
    return diags


# --------------------------------------------------------------------------
# bbsim-float-equality
# --------------------------------------------------------------------------

_FLOAT_DECL = re.compile(
    r"\b(?:long\s+double|double|float)\s+(" + IDENT + r")\s*[=;,)\]{]")
_FLOAT_LITERAL = re.compile(
    r"^(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+|\d+\.)f?$")
_EQ_OP = re.compile(r"(?<![=!<>+\-*/%&|^])([=!]=)(?!=)")


def _float_names(code):
    names = set()
    for m in _FLOAT_DECL.finditer(code):
        names.add(m.group(1))
    return names


def _operand_left(code, pos):
    """Token text of the operand ending just before `pos`."""
    k = pos
    while k > 0 and code[k - 1] in " \t":
        k -= 1
    end = k
    depth = 0
    while k > 0:
        ch = code[k - 1]
        if ch in ")]":
            depth += 1
        elif ch in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and not (ch.isalnum() or ch in "_.:->"):
            break
        k -= 1
    return code[k:end].strip()


def _operand_right(code, pos):
    k = pos
    while k < len(code) and code[k] in " \t":
        k += 1
    start = k
    depth = 0
    while k < len(code):
        ch = code[k]
        if ch in "([":
            depth += 1
        elif ch in ")]":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and not (ch.isalnum() or ch in "_.:->"):
            break
        k += 1
    return code[start:k].strip()


def _trailing_ident(operand):
    m = re.search(r"(" + IDENT + r")\s*(?:\(\s*\))?$", operand)
    return m.group(1) if m else ""


# Zero-argument members that return iterators/sizes regardless of any
# same-named double elsewhere in the file (`queue_.end()` vs `double end`).
_NON_FLOAT_MEMBERS = {"begin", "end", "cbegin", "cend", "rbegin", "rend",
                      "size", "count", "find"}


def _is_floaty(operand, float_names):
    if not operand:
        return False
    if _FLOAT_LITERAL.match(operand):
        return True
    ident = _trailing_ident(operand)
    if operand.endswith(")") and ident in _NON_FLOAT_MEMBERS:
        return False
    return ident in float_names


def check_float_equality(path, code, text):
    check = "bbsim-float-equality"
    diags = []
    float_names = _float_names(code) | FLOAT_EQ_SENTINELS
    for m in _EQ_OP.finditer(code):
        lhs = _operand_left(code, m.start())
        rhs = _operand_right(code, m.end())
        if not (_is_floaty(lhs, float_names) or _is_floaty(rhs, float_names)):
            continue
        if (_trailing_ident(lhs) in FLOAT_EQ_SENTINELS
                or _trailing_ident(rhs) in FLOAT_EQ_SENTINELS):
            continue
        line, col = line_col(code, m.start())
        op = "==" if m.group(1) == "==" else "!="
        diags.append(Diagnostic(path, line, col, check,
                                MESSAGES[check].format(what="'" + op + "'")))
    return diags


# --------------------------------------------------------------------------
# bbsim-unguarded-audit-hook / bbsim-unguarded-critpath-hook
# --------------------------------------------------------------------------


def _hook_regions(code, macro):
    regions = []
    for m in re.finditer(r"\b" + macro + r"\s*\(", code):
        open_paren = code.find("(", m.start())
        end = match_balanced(code, open_paren, "(", ")")
        if end > 0:
            regions.append((m.start(), end))
    return regions


def _check_unguarded_hook(check, methods, macro, path, code):
    diags = []
    regions = _hook_regions(code, macro)
    method_rx = re.compile(
        r"(?:->|\.)\s*(" + "|".join(sorted(methods)) + r")\s*\(")
    for m in method_rx.finditer(code):
        if any(a <= m.start() < b for a, b in regions):
            continue
        # Declarations / overrides, not calls: `void on_executed(...) override`
        line_start = code.rfind("\n", 0, m.start()) + 1
        prefix = code[line_start:m.start()]
        if re.search(r"\b(?:void|virtual)\s*$", prefix):
            continue
        line, col = line_col(code, m.start())
        diags.append(Diagnostic(path, line, col, check,
                                MESSAGES[check].format(what=m.group(1))))
    return diags


def check_unguarded_audit_hook(path, code, text):
    return _check_unguarded_hook("bbsim-unguarded-audit-hook",
                                 AUDIT_HOOK_METHODS, AUDIT_HOOK_MACRO,
                                 path, code)


def check_unguarded_critpath_hook(path, code, text):
    return _check_unguarded_hook("bbsim-unguarded-critpath-hook",
                                 CRITPATH_HOOK_METHODS, CRITPATH_HOOK_MACRO,
                                 path, code)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

CHECK_TABLE = [
    # (name, function, scope regex or None, allowlist regex or None)
    ("bbsim-unordered-iteration", check_unordered_iteration,
     None, UNORDERED_ALLOWED_PATHS),
    ("bbsim-nondeterminism-source", check_nondeterminism_source,
     None, NONDET_ALLOWED_PATHS),
    ("bbsim-raw-assert", check_raw_assert, RAW_ASSERT_SCOPE, None),
    ("bbsim-float-equality", check_float_equality, FLOAT_EQ_SCOPE, None),
    ("bbsim-unguarded-audit-hook", check_unguarded_audit_hook,
     AUDIT_HOOK_SCOPE, AUDIT_HOOK_ALLOWED_PATHS),
    ("bbsim-unguarded-critpath-hook", check_unguarded_critpath_hook,
     CRITPATH_HOOK_SCOPE, CRITPATH_HOOK_ALLOWED_PATHS),
]


def lint_file(real_path, rel_path, enabled):
    with open(real_path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    code, comments = sanitize(text)
    diags = []
    for name, fn, scope, allow in CHECK_TABLE:
        if name not in enabled:
            continue
        if scope and not re.search(scope, rel_path):
            continue
        if allow and re.search(allow, rel_path):
            continue
        for d in fn(rel_path, code, text):
            if not suppressed(comments, d.line, d.check):
                diags.append(d)
    diags.sort(key=lambda d: (d.line, d.col, d.check))
    return diags


def iter_sources(root, subdirs):
    exts = (".cpp", ".hpp", ".cc", ".h")
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base):
            yield base, os.path.relpath(base, root).replace(os.sep, "/")
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    full = os.path.join(dirpath, fn)
                    yield full, os.path.relpath(full, root).replace(os.sep, "/")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files to lint, or subdirectories under --root")
    ap.add_argument("--root", help="repository root: lint the named "
                    "subdirectories, reporting repo-relative paths")
    ap.add_argument("--as-path", help="treat a single input file as if it "
                    "lived at this repo-relative path (fixture testing)")
    ap.add_argument("--checks", help="comma-separated subset of checks")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name in ALL_CHECKS:
            print(name)
        return 0

    enabled = set(ALL_CHECKS)
    if args.checks:
        enabled = set(s.strip() for s in args.checks.split(",") if s.strip())
        unknown = enabled - set(ALL_CHECKS)
        if unknown:
            sys.stderr.write("unknown checks: %s\n" % ", ".join(sorted(unknown)))
            return 2

    targets = []
    if args.root:
        targets = list(iter_sources(args.root, args.paths or ["src"]))
    else:
        for p in args.paths:
            rel = args.as_path if args.as_path else p.replace(os.sep, "/")
            targets.append((p, rel))
    if not targets:
        sys.stderr.write("no input files\n")
        return 2

    if args.root and "bbsim-unordered-iteration" in enabled:
        for real, rel in targets:
            with open(real, "r", encoding="utf-8", errors="replace") as f:
                code, _ = sanitize(f.read())
            GLOBAL_UNORDERED_NAMES.update(_unordered_names(code))

    count = 0
    for real, rel in targets:
        for d in lint_file(real, rel, enabled):
            print(d.render())
            count += 1
    if count:
        sys.stderr.write("bbsim-tidy: %d finding(s)\n" % count)
    return 1 if count else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
