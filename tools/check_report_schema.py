#!/usr/bin/env python3
"""Validate bbsim.critpath.v1 documents.

Accepts any of the shapes the simulators emit:

  * a bare report (``bbsim_run --critpath-out FILE.json``);
  * a run report carrying a ``"critpath"`` section (``--trace`` output of
    a ``--critpath`` run);
  * an object keyed by policy name whose values are reports
    (``bbsim_batch --critpath-out`` with several ``--policy`` values).

Checks, per report:

  * ``schema`` is ``bbsim.critpath.v1``;
  * ``makespan`` and ``path_length`` are finite, non-negative, and agree
    within ``1e-9 * max(1, makespan)`` — as do the summed ``blame``
    classes (the partition-of-the-makespan contract the auditor enforces
    at runtime);
  * ``blame`` / ``blame_fractions`` carry exactly the six known classes,
    every value non-negative, fractions summing to 1 when makespan > 0;
  * ``path`` segments are chronological, contiguous, start at 0, end at
    the makespan, and each carries a known class and a consistent
    ``duration``;
  * ``slack`` entries are non-negative and name-sorted;
  * ``what_if`` contains a ``baseline`` scenario reproducing the makespan
    (speedup 1) and no scenario exceeding it.

Exit code 0 = every file valid (one summary line per file), 1 = every
violation is listed, 2 = bad input.
Usage: ``python3 tools/check_report_schema.py REPORT.json [...]``.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA = "bbsim.critpath.v1"
BLAME_CLASSES = (
    "compute",
    "bb_transfer",
    "pfs_transfer",
    "bb_capacity_wait",
    "queue_wait",
    "recovery_rework",
)


def is_finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_blame_map(report: dict, key: str, errors, where: str) -> dict:
    blame = report.get(key)
    if not isinstance(blame, dict):
        errors.append(f"{where}: {key!r} is not an object")
        return {}
    for cls in BLAME_CLASSES:
        if cls not in blame:
            errors.append(f"{where}: {key!r} is missing class {cls!r}")
        elif not is_finite_number(blame[cls]) or blame[cls] < 0:
            errors.append(
                f"{where}: {key}.{cls} is not a finite non-negative "
                f"number: {blame[cls]!r}"
            )
    for cls in blame:
        if cls not in BLAME_CLASSES:
            errors.append(f"{where}: {key!r} has unknown class {cls!r}")
    return blame


def check_report(report, errors, where: str) -> None:
    if not isinstance(report, dict):
        errors.append(f"{where}: not an object")
        return
    if report.get("schema") != SCHEMA:
        errors.append(f"{where}: schema is {report.get('schema')!r}, "
                      f"want {SCHEMA!r}")
        return

    makespan = report.get("makespan")
    path_length = report.get("path_length")
    for key, value in (("makespan", makespan), ("path_length", path_length)):
        if not is_finite_number(value) or value < 0:
            errors.append(f"{where}: {key!r} is not a finite non-negative "
                          f"number: {value!r}")
            return
    tol = 1e-9 * max(1.0, makespan)
    if abs(path_length - makespan) > tol:
        errors.append(f"{where}: path_length {path_length} != makespan "
                      f"{makespan} (tol {tol:g})")

    blame = check_blame_map(report, "blame", errors, where)
    if blame and abs(sum(blame.values()) - makespan) > tol:
        errors.append(f"{where}: blame classes sum to {sum(blame.values())} "
                      f"!= makespan {makespan} (tol {tol:g})")
    fractions = check_blame_map(report, "blame_fractions", errors, where)
    if fractions and makespan > 0:
        total = sum(fractions.values())
        if abs(total - 1.0) > 1e-9:
            errors.append(f"{where}: blame_fractions sum to {total} != 1")

    path = report.get("path")
    if not isinstance(path, list):
        errors.append(f"{where}: 'path' is not an array")
        path = []
    prev_end = 0.0
    for i, seg in enumerate(path):
        seg_where = f"{where}: path[{i}]"
        if not isinstance(seg, dict):
            errors.append(f"{seg_where}: not an object")
            continue
        for key in ("task", "phase"):
            if not isinstance(seg.get(key), str) or not seg[key]:
                errors.append(f"{seg_where}: missing or empty {key!r}")
        if seg.get("class") not in BLAME_CLASSES:
            errors.append(f"{seg_where}: unknown class {seg.get('class')!r}")
        start, end = seg.get("start"), seg.get("end")
        if not is_finite_number(start) or not is_finite_number(end):
            errors.append(f"{seg_where}: non-finite start/end")
            continue
        if end <= start:
            errors.append(f"{seg_where}: empty or reversed [{start}, {end}]")
        if abs(start - prev_end) > tol:
            errors.append(f"{seg_where}: starts at {start}, previous segment "
                          f"ended at {prev_end} (path must be contiguous)")
        duration = seg.get("duration")
        if not is_finite_number(duration) or abs(duration - (end - start)) > tol:
            errors.append(f"{seg_where}: duration {duration!r} != end - start")
        prev_end = end
    if path and abs(prev_end - makespan) > tol:
        errors.append(f"{where}: path ends at {prev_end} != makespan "
                      f"{makespan}")

    slack = report.get("slack")
    if not isinstance(slack, list):
        errors.append(f"{where}: 'slack' is not an array")
        slack = []
    names = []
    for i, entry in enumerate(slack):
        if not isinstance(entry, dict) or not isinstance(entry.get("task"), str):
            errors.append(f"{where}: slack[{i}]: missing 'task'")
            continue
        names.append(entry["task"])
        if not is_finite_number(entry.get("slack")) or entry["slack"] < 0:
            errors.append(f"{where}: slack[{i}] ({entry['task']}): not a "
                          f"finite non-negative number: {entry.get('slack')!r}")
    if names != sorted(names):
        errors.append(f"{where}: slack entries are not name-sorted")

    what_if = report.get("what_if")
    if not isinstance(what_if, list) or not what_if:
        errors.append(f"{where}: 'what_if' is not a non-empty array")
        return
    baseline = None
    for i, w in enumerate(what_if):
        if not isinstance(w, dict) or not isinstance(w.get("scenario"), str):
            errors.append(f"{where}: what_if[{i}]: missing 'scenario'")
            continue
        m = w.get("makespan")
        if not is_finite_number(m) or m < 0:
            errors.append(f"{where}: what_if[{i}] ({w['scenario']}): bad "
                          f"makespan {m!r}")
            continue
        if m > makespan + tol:
            errors.append(f"{where}: what_if[{i}] ({w['scenario']}): makespan "
                          f"{m} exceeds the observed {makespan}")
        if w["scenario"] == "baseline":
            baseline = w
    if baseline is None:
        errors.append(f"{where}: what_if has no 'baseline' scenario")
    else:
        if abs(baseline["makespan"] - makespan) > tol:
            errors.append(f"{where}: baseline what-if {baseline['makespan']} "
                          f"!= makespan {makespan} (replay identity)")
        speedup = baseline.get("speedup")
        if makespan > 0 and (not is_finite_number(speedup)
                             or abs(speedup - 1.0) > 1e-9):
            errors.append(f"{where}: baseline speedup {speedup!r} != 1")


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: not a JSON object"]

    if doc.get("schema") == SCHEMA:
        reports = {"<report>": doc}
    elif isinstance(doc.get("critpath"), dict):
        reports = {"critpath": doc["critpath"]}
    elif doc and all(isinstance(v, dict) and v.get("schema") == SCHEMA
                     for v in doc.values()):
        reports = dict(doc)  # bbsim_batch --critpath-out: keyed by policy
    else:
        return [f"{path}: no {SCHEMA} report found (not a bare report, a run "
                f"report with a 'critpath' section, or a per-policy map)"]

    for name, report in reports.items():
        check_report(report, errors, f"{path}: {name}")
    if not errors:
        labels = ", ".join(reports)
        print(f"{path}: OK -- {len(reports)} {SCHEMA} report(s) ({labels})")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list[str] = []
    for arg in argv[1:]:
        errors.extend(check_file(Path(arg)))
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
