#!/usr/bin/env python3
"""Validate a bbsim timeline against the Chrome trace-event format.

Checks the JSON that ``bbsim_run --timeline-out`` (and
``bbsim_sweep --timeline-dir``) produces:

  * the document is a JSON-array-container: ``{"traceEvents": [...]}``;
  * every event has a known phase (``X`` complete span, ``C`` counter,
    ``M`` metadata, ``s``/``f`` flow start/finish from ``--critpath``)
    and integer-like ``pid``/``tid`` fields;
  * ``X`` events carry finite ``ts`` and non-negative ``dur``;
  * flow events carry an ``id`` and every ``s`` has a matching ``f``;
  * per (pid, tid) track, ``X`` events are sorted by ``ts`` and spans on
    one lane never overlap (a lane is one host core / one flow slot);
  * per counter name, ``C`` samples have strictly increasing ``ts`` and
    finite values;
  * metadata names are from the documented set and ``process_name`` /
    ``thread_name`` carry an ``args.name`` string.

Exit code 0 = valid (prints a one-line summary), 1 = every violation is
listed. Usage: ``python3 tools/check_trace.py TIMELINE.json [...]``.
"""

from __future__ import annotations

import json
import math
import sys
from collections import defaultdict
from pathlib import Path

KNOWN_PHASES = {"X", "C", "M", "s", "f"}

# Span boundaries are converted seconds -> microseconds independently, so
# adjacent spans may disagree by a few ulps. One nanosecond is far below
# anything the simulator resolves and cannot mask a real overlap.
OVERLAP_TOLERANCE_US = 1e-3
KNOWN_METADATA = {
    "process_name",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}


def is_intlike(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def is_finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def check_timeline(path: Path) -> list[str]:
    errors: list[str] = []

    def err(index: int, message: str) -> None:
        errors.append(f"{path}: event {index}: {message}")

    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: not a trace-event container (no 'traceEvents' key)"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' is not an array"]

    # (pid, tid) -> list of (ts, dur, index) for X events, in file order.
    spans: dict[tuple, list[tuple]] = defaultdict(list)
    # counter name -> list of (ts, index), in file order.
    counters: dict[str, list[tuple]] = defaultdict(list)
    # flow id -> count of "s" minus count of "f" events.
    flow_balance: dict[object, int] = defaultdict(int)

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            err(i, "not an object")
            continue
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            err(i, f"unknown phase {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not is_intlike(e.get(field)) or e.get(field) < 0:
                err(i, f"{field!r} is not a non-negative integer: {e.get(field)!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            err(i, "missing or empty 'name'")
            continue

        if ph == "M":
            if e["name"] not in KNOWN_METADATA:
                err(i, f"unknown metadata event {e['name']!r}")
            if e["name"] in ("process_name", "thread_name") and not isinstance(
                e.get("args", {}).get("name"), str
            ):
                err(i, f"metadata {e['name']!r} lacks a string args.name")
            continue

        if not is_finite_number(e.get("ts")):
            err(i, f"'ts' is not a finite number: {e.get('ts')!r}")
            continue
        if ph == "X":
            if not is_finite_number(e.get("dur")) or e["dur"] < 0:
                err(i, f"'dur' is not a finite non-negative number: {e.get('dur')!r}")
                continue
            spans[(e["pid"], e["tid"])].append((e["ts"], e["dur"], i))
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not is_finite_number(value):
                err(i, f"counter 'args.value' is not a finite number: {value!r}")
            counters[e["name"]].append((e["ts"], i))
        elif ph in ("s", "f"):
            if "id" not in e:
                err(i, f"flow event (ph={ph!r}) has no 'id'")
                continue
            flow_balance[e["id"]] += 1 if ph == "s" else -1

    for (pid, tid), track in spans.items():
        prev_ts = None
        for ts, dur, i in track:
            if prev_ts is not None and ts < prev_ts:
                err(i, f"track pid={pid} tid={tid}: 'ts' not monotonic "
                       f"({ts} after {prev_ts})")
            prev_ts = ts
        # Nested phase spans share the task's lane, so containment is fine;
        # only *partial* overlap (neither span contains the other) is a bug.
        open_spans: list[tuple] = []  # (start, end, index) stack
        for ts, dur, i in track:
            end = ts + dur
            while open_spans and open_spans[-1][1] <= ts + OVERLAP_TOLERANCE_US:
                open_spans.pop()
            if open_spans and end > open_spans[-1][1] + OVERLAP_TOLERANCE_US:
                err(i, f"track pid={pid} tid={tid}: span [{ts}, {end}) partially "
                       f"overlaps span starting at {open_spans[-1][0]}")
            open_spans.append((ts, end, i))

    for name, samples in counters.items():
        prev_ts = None
        for ts, i in samples:
            if prev_ts is not None and ts <= prev_ts:
                err(i, f"counter {name!r}: 'ts' not strictly increasing "
                       f"({ts} after {prev_ts})")
            prev_ts = ts

    for flow_id, balance in flow_balance.items():
        if balance != 0:
            errors.append(
                f"{path}: flow id {flow_id!r}: unbalanced start/finish "
                f"events (s - f = {balance})"
            )

    if not errors:
        n_spans = sum(len(t) for t in spans.values())
        n_samples = sum(len(s) for s in counters.values())
        n_flows = len(flow_balance)
        print(
            f"{path}: OK -- {len(events)} events "
            f"({n_spans} spans on {len(spans)} tracks, "
            f"{n_samples} samples on {len(counters)} counters, "
            f"{n_flows} flow links)"
        )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list[str] = []
    for arg in argv[1:]:
        errors.extend(check_timeline(Path(arg)))
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
