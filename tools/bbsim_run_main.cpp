// bbsim_run -- command-line driver for the bbsim simulator. See --help.
#include "cli/runner.hpp"

int main(int argc, char** argv) { return bbsim::cli::main_impl(argc, argv); }
