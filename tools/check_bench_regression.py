#!/usr/bin/env python3
"""Compare a fresh bench JSON against the checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.20]
                                 [--relative]

Supports two bench schemas; both files must carry the SAME schema, and the
schema selects the gate:

bbsim.bench.flow_solver.v1 (BENCH_flow_solver.json)
  For every tier present in BOTH files, `solves_per_second` in CURRENT must
  be at least (1 - threshold) x the BASELINE value. Tiers only present on
  one side are reported but do not fail the check (CI measures a subset of
  the checked-in tiers). Divergence fields are also validated: the
  incremental solver must still agree with the full re-solve and the oracle
  to 1e-6.

  With --relative, the absolute solves_per_second comparison is skipped:
  absolute throughput measured on shared CI runners is not comparable to a
  baseline captured on different hardware. Instead the gate uses
  hardware-insensitive quantities only -- divergence, and `speedup_vs_full`
  (incremental vs full re-solve, both measured back-to-back on the SAME
  machine within the run), which must stay within --speedup-threshold of
  the baseline's speedup and never drop below --min-speedup.

bbsim.bench.critpath.v1 (BENCH_critpath.json)
  Hardware-insensitive gates, always applied (the overhead ratio is
  measured back-to-back on one machine, so it transfers across hardware):
    - `off_bitwise_identical` must be true: a --critpath run's report
      minus its "critpath" key is byte-identical to a run without the
      recorder, i.e. the layer costs nothing when off.
    - `attribution_exact` must be true: path length, blame sum, and the
      baseline what-if replay all reproduce the makespan within 1e-9.
    - `overhead_ratio` (enabled wall / disabled wall) must stay at or
      below 1 + --critpath-overhead (default 0.05).
  Baseline tiers are reported for context only.

bbsim.bench.batch.v1 (BENCH_batch.json)
  Hardware-insensitive gates, always applied:
    - `schedule_hash` (combined and per-policy) must match the baseline
      exactly: the batch scheduler is deterministic, so any hash drift
      means scheduling behaviour changed and the baseline must be
      re-recorded deliberately.
    - `fcfs_over_easy_slowdown` must stay >= max(--min-ratio, baseline
      ratio x (1 - --ratio-threshold)): EASY must keep beating FCFS on
      mean bounded slowdown under BB contention.
  Without --relative, `jobs_per_second` is additionally gated against the
  baseline with --threshold, like solves_per_second above.

Exit status: 0 = pass, 1 = regression or divergence, 2 = bad input.
"""

import argparse
import json
import sys

DIVERGENCE_TOL = 1e-6
SCHEMAS = ("bbsim.bench.flow_solver.v1", "bbsim.bench.batch.v1",
           "bbsim.bench.critpath.v1")


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        print(f"error: {path}: schema is {schema!r}, want one of {SCHEMAS}",
              file=sys.stderr)
        sys.exit(2)
    tiers = {}
    for tier in doc.get("tiers", []):
        tiers[tier["tier"]] = tier
    if not tiers:
        print(f"error: {path}: no tiers", file=sys.stderr)
        sys.exit(2)
    return schema, tiers


def gate_throughput(label, key, base_tier, cur_tier, threshold):
    """Absolute throughput floor; returns True when the tier regressed."""
    base_tp = base_tier[key]
    cur_tp = cur_tier[key]
    floor = base_tp * (1.0 - threshold)
    ratio = cur_tp / base_tp if base_tp > 0 else float("inf")
    verdict = "ok" if cur_tp >= floor else "FAIL"
    print(f"tier {label}: {verdict} {key} {cur_tp:,.0f} vs baseline "
          f"{base_tp:,.0f} ({ratio:.2f}x, floor {floor:,.0f})")
    return cur_tp < floor


def check_flow_solver(baseline, current, args):
    failed = False
    for label in sorted(set(baseline) | set(current)):
        if label not in current:
            print(f"tier {label}: only in baseline -- skipped")
            continue
        cur = current[label]

        for key in ("max_rel_divergence_full", "max_rel_divergence_oracle"):
            div = cur.get(key, 0.0)
            if div > DIVERGENCE_TOL:
                print(f"tier {label}: FAIL {key} = {div:.3e} > {DIVERGENCE_TOL:.0e}")
                failed = True

        if args.relative:
            cur_sp = cur.get("speedup_vs_full", 0.0)
            floor = args.min_speedup
            if label in baseline:
                base_sp = baseline[label].get("speedup_vs_full", 0.0)
                floor = max(floor, base_sp * (1.0 - args.speedup_threshold))
                detail = f"vs baseline {base_sp:,.0f}x"
            else:
                detail = "no baseline tier"
            verdict = "ok" if cur_sp >= floor else "FAIL"
            print(f"tier {label}: {verdict} speedup_vs_full {cur_sp:,.0f}x "
                  f"{detail} (floor {floor:,.0f}x)")
            if cur_sp < floor:
                failed = True
            continue

        if label not in baseline:
            print(f"tier {label}: only in current -- no baseline to compare")
            continue
        if gate_throughput(label, "solves_per_second",
                           baseline[label], cur, args.threshold):
            failed = True
    return failed


def check_batch(baseline, current, args):
    failed = False
    for label in sorted(set(baseline) | set(current)):
        if label not in current:
            print(f"tier {label}: only in baseline -- skipped")
            continue
        cur = current[label]
        if label not in baseline:
            print(f"tier {label}: only in current -- no baseline to compare")
            continue
        base = baseline[label]

        # Determinism: schedules must be bit-identical to the baseline.
        hashes = [("schedule_hash", base.get("schedule_hash"),
                   cur.get("schedule_hash"))]
        for policy, base_entry in base.get("policies", {}).items():
            cur_entry = cur.get("policies", {}).get(policy, {})
            hashes.append((f"policies.{policy}.schedule_hash",
                           base_entry.get("schedule_hash"),
                           cur_entry.get("schedule_hash")))
        hash_failed = False
        for key, base_hash, cur_hash in hashes:
            if cur_hash != base_hash:
                print(f"tier {label}: FAIL {key} {cur_hash} != "
                      f"baseline {base_hash}")
                hash_failed = True
        if hash_failed:
            failed = True
        else:
            print(f"tier {label}: ok schedule hashes match "
                  f"({len(hashes)} checked)")

        # Policy quality: EASY must keep beating FCFS on mean BSLD.
        base_ratio = base.get("fcfs_over_easy_slowdown", 0.0)
        cur_ratio = cur.get("fcfs_over_easy_slowdown", 0.0)
        floor = max(args.min_ratio, base_ratio * (1.0 - args.ratio_threshold))
        verdict = "ok" if cur_ratio >= floor else "FAIL"
        print(f"tier {label}: {verdict} fcfs_over_easy_slowdown "
              f"{cur_ratio:.2f}x vs baseline {base_ratio:.2f}x "
              f"(floor {floor:.2f}x)")
        if cur_ratio < floor:
            failed = True

        if not args.relative:
            if gate_throughput(label, "jobs_per_second", base, cur,
                               args.threshold):
                failed = True
    return failed


def check_critpath(baseline, current, args):
    failed = False
    ceiling = 1.0 + args.critpath_overhead
    for label in sorted(set(baseline) | set(current)):
        if label not in current:
            print(f"tier {label}: only in baseline -- skipped")
            continue
        cur = current[label]

        for key in ("off_bitwise_identical", "attribution_exact"):
            if cur.get(key) is not True:
                print(f"tier {label}: FAIL {key} = {cur.get(key)!r}")
                failed = True

        ratio = cur.get("overhead_ratio", float("inf"))
        base_note = ""
        if label in baseline:
            base_note = (f" (baseline "
                         f"{baseline[label].get('overhead_ratio', 0.0):.3f}x)")
        verdict = "ok" if ratio <= ceiling else "FAIL"
        print(f"tier {label}: {verdict} overhead_ratio {ratio:.3f}x "
              f"<= {ceiling:.2f}x{base_note}")
        if ratio > ceiling:
            failed = True
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional throughput drop (default 0.20)")
    parser.add_argument("--relative", action="store_true",
                        help="skip absolute throughput comparisons (different "
                             "hardware); gate on hardware-insensitive "
                             "quantities only")
    parser.add_argument("--speedup-threshold", type=float, default=0.50,
                        help="flow_solver with --relative: allowed fractional "
                             "drop in speedup_vs_full (default 0.50)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="flow_solver with --relative: absolute floor on "
                             "speedup_vs_full (default 5.0)")
    parser.add_argument("--ratio-threshold", type=float, default=0.50,
                        help="batch: allowed fractional drop in "
                             "fcfs_over_easy_slowdown (default 0.50)")
    parser.add_argument("--min-ratio", type=float, default=1.0,
                        help="batch: absolute floor on "
                             "fcfs_over_easy_slowdown (default 1.0)")
    parser.add_argument("--critpath-overhead", type=float, default=0.05,
                        help="critpath: allowed fractional wall-clock "
                             "overhead with the recorder enabled "
                             "(default 0.05)")
    args = parser.parse_args()

    base_schema, baseline = load_doc(args.baseline)
    cur_schema, current = load_doc(args.current)
    if base_schema != cur_schema:
        print(f"error: schema mismatch: baseline {base_schema!r} vs "
              f"current {cur_schema!r}", file=sys.stderr)
        sys.exit(2)

    if base_schema == "bbsim.bench.batch.v1":
        failed = check_batch(baseline, current, args)
    elif base_schema == "bbsim.bench.critpath.v1":
        failed = check_critpath(baseline, current, args)
    else:
        failed = check_flow_solver(baseline, current, args)

    if failed:
        print("bench regression check FAILED", file=sys.stderr)
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
