#!/usr/bin/env python3
"""Compare a fresh BENCH_flow_solver.json against the checked-in baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.20]
                                 [--relative]

For every tier present in BOTH files, `solves_per_second` in CURRENT must be
at least (1 - threshold) x the BASELINE value. Tiers only present on one side
are reported but do not fail the check (CI measures a subset of the
checked-in tiers). Divergence fields are also validated: the incremental
solver must still agree with the full re-solve and the oracle to 1e-6.

With --relative, the absolute solves_per_second comparison is skipped:
absolute throughput measured on shared CI runners is not comparable to a
baseline captured on different hardware. Instead the gate uses
hardware-insensitive quantities only -- divergence, and `speedup_vs_full`
(incremental vs full re-solve, both measured back-to-back on the SAME
machine within the run), which must stay within --speedup-threshold of the
baseline's speedup and never drop below --min-speedup.

Exit status: 0 = pass, 1 = regression or divergence, 2 = bad input.
"""

import argparse
import json
import sys

DIVERGENCE_TOL = 1e-6
SCHEMA = "bbsim.bench.flow_solver.v1"


def load_tiers(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}",
              file=sys.stderr)
        sys.exit(2)
    tiers = {}
    for tier in doc.get("tiers", []):
        tiers[tier["tier"]] = tier
    if not tiers:
        print(f"error: {path}: no tiers", file=sys.stderr)
        sys.exit(2)
    return tiers


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional throughput drop (default 0.20)")
    parser.add_argument("--relative", action="store_true",
                        help="skip the absolute solves/s comparison (different "
                             "hardware); gate on divergence and speedup_vs_full")
    parser.add_argument("--speedup-threshold", type=float, default=0.50,
                        help="with --relative: allowed fractional drop in "
                             "speedup_vs_full versus baseline (default 0.50)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="with --relative: absolute floor on "
                             "speedup_vs_full (default 5.0)")
    args = parser.parse_args()

    baseline = load_tiers(args.baseline)
    current = load_tiers(args.current)

    failed = False
    for label in sorted(set(baseline) | set(current)):
        if label not in current:
            print(f"tier {label}: only in baseline -- skipped")
            continue
        cur = current[label]

        for key in ("max_rel_divergence_full", "max_rel_divergence_oracle"):
            div = cur.get(key, 0.0)
            if div > DIVERGENCE_TOL:
                print(f"tier {label}: FAIL {key} = {div:.3e} > {DIVERGENCE_TOL:.0e}")
                failed = True

        if args.relative:
            cur_sp = cur.get("speedup_vs_full", 0.0)
            floor = args.min_speedup
            if label in baseline:
                base_sp = baseline[label].get("speedup_vs_full", 0.0)
                floor = max(floor, base_sp * (1.0 - args.speedup_threshold))
                detail = f"vs baseline {base_sp:,.0f}x"
            else:
                detail = "no baseline tier"
            verdict = "ok" if cur_sp >= floor else "FAIL"
            print(f"tier {label}: {verdict} speedup_vs_full {cur_sp:,.0f}x "
                  f"{detail} (floor {floor:,.0f}x)")
            if cur_sp < floor:
                failed = True
            continue

        if label not in baseline:
            print(f"tier {label}: only in current -- no baseline to compare")
            continue

        base_tp = baseline[label]["solves_per_second"]
        cur_tp = cur["solves_per_second"]
        floor = base_tp * (1.0 - args.threshold)
        ratio = cur_tp / base_tp if base_tp > 0 else float("inf")
        verdict = "ok" if cur_tp >= floor else "FAIL"
        print(f"tier {label}: {verdict} solves/s {cur_tp:,.0f} vs baseline "
              f"{base_tp:,.0f} ({ratio:.2f}x, floor {floor:,.0f})")
        if cur_tp < floor:
            failed = True

    if failed:
        print("bench regression check FAILED", file=sys.stderr)
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
