#include "cli/batch_cli.hpp"

int main(int argc, char** argv) { return bbsim::cli::batch_main_impl(argc, argv); }
