// bbsim_fuzz -- differential fuzzer driving the production engine against
// the naive reference implementation (src/oracle). See --help.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/runner.hpp"
#include "util/error.hpp"

namespace {

const char* kUsage = R"(bbsim_fuzz -- differential testing of bbsim against a naive reference

  --mode <exec|solver|churn|resil>  what to fuzz (default: exec)
                            exec: full engine vs reference replayer
                            solver: flow::Network::solve vs brute-force max-min
                            churn: incremental solve under add/remove/
                            set_capacity churn vs full re-solve and oracle
                            resil: scenarios with a fault/checkpoint cocktail;
                            each is checked for baseline oracle agreement,
                            faults-disabled bitwise identity, faulty-run
                            determinism, audit cleanliness and accounting
  --seed S                  campaign seed (default: 42)
  --iters N                 scenarios to sample (default: 100)
  --rel-tol X               relative diff tolerance (default: 1e-6)
  --abs-tol X               absolute diff tolerance (default: 1e-6)
  --max-failures N          stop after N minimized failures (default: 1)
  --out DIR                 write minimized fuzzcase JSON files to DIR
  --no-minimize             keep failing cases unminimized
  --perturb-bb F            scale the engine-side BB capacity by F
                            (fault injection; any F != 1 must be caught)
  --replay FILE.json        replay one bbsim.fuzzcase.v1 file and diff
  --help

Exit status: 0 = no divergence, 1 = divergence found, 2 = usage error.
)";

}  // namespace

int main(int argc, char** argv) {
  using bbsim::fuzz::CampaignOptions;
  using bbsim::fuzz::RunOptions;

  std::string mode = "exec";
  std::string replay_path;
  CampaignOptions options;
  options.iterations = 100;

  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    std::size_t i = 0;
    auto next_value = [&](const std::string& flag) -> std::string {
      if (i + 1 >= args.size()) {
        throw bbsim::util::ConfigError("missing value for " + flag);
      }
      return args[++i];
    };
    for (; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--help" || a == "-h") {
        std::cout << kUsage;
        return 0;
      } else if (a == "--mode") {
        mode = next_value(a);
        if (mode != "exec" && mode != "solver" && mode != "churn" &&
            mode != "resil") {
          throw bbsim::util::ConfigError("unknown --mode '" + mode + "'");
        }
      } else if (a == "--seed") {
        options.seed = std::stoull(next_value(a));
      } else if (a == "--iters") {
        options.iterations = std::stoi(next_value(a));
      } else if (a == "--rel-tol") {
        options.run.diff.rel_tol = std::stod(next_value(a));
      } else if (a == "--abs-tol") {
        options.run.diff.abs_tol = std::stod(next_value(a));
      } else if (a == "--max-failures") {
        options.max_failures = std::stoi(next_value(a));
      } else if (a == "--out") {
        options.out_dir = next_value(a);
      } else if (a == "--no-minimize") {
        options.minimize = false;
      } else if (a == "--perturb-bb") {
        options.run.engine_bb_capacity_scale = std::stod(next_value(a));
      } else if (a == "--replay") {
        replay_path = next_value(a);
      } else {
        throw bbsim::util::ConfigError("unknown argument '" + a + "' (try --help)");
      }
    }
    if (options.iterations < 1) {
      throw bbsim::util::ConfigError("--iters must be >= 1");
    }
    if (!options.out_dir.empty()) {
      std::filesystem::create_directories(options.out_dir);
    }
  } catch (const std::exception& e) {
    std::cerr << "bbsim_fuzz: " << e.what() << "\n";
    return 2;
  }

  try {
    if (!replay_path.empty()) {
      const bbsim::fuzz::RunOutcome outcome =
          bbsim::fuzz::replay_case_file(replay_path, options.run);
      if (!outcome.engine_error.empty()) {
        std::cout << "engine error: " << outcome.engine_error << "\n";
      }
      if (!outcome.reference_error.empty()) {
        std::cout << "reference error: " << outcome.reference_error << "\n";
      }
      for (const auto& d : outcome.divergences) {
        std::cout << "DIVERGENCE " << d.describe() << "\n";
      }
      std::cout << (outcome.diverged ? "case diverges\n" : "case agrees\n");
      return outcome.diverged ? 1 : 0;
    }

    if (mode == "churn") {
      const auto result = bbsim::fuzz::run_solver_churn_campaign(
          options.seed, options.iterations, options.run.diff.rel_tol);
      std::cout << "churn campaign: " << result.iterations_run << " iterations, "
                << result.divergent << " divergent\n";
      if (!result.clean()) {
        std::cout << "first divergence: " << result.first_divergence << "\n";
      }
      return result.clean() ? 0 : 1;
    }

    if (mode == "solver") {
      const auto result = bbsim::fuzz::run_solver_campaign(
          options.seed, options.iterations, options.run.engine_bb_capacity_scale,
          options.run.diff.rel_tol);
      std::cout << "solver campaign: " << result.iterations_run << " iterations, "
                << result.divergent << " divergent\n";
      if (!result.clean()) {
        std::cout << "first divergence: " << result.first_divergence << "\n";
      }
      return result.clean() ? 0 : 1;
    }

    options.resil_cocktail = mode == "resil";
    const auto result = bbsim::fuzz::run_campaign(options);
    std::cout << mode << " campaign: " << result.iterations_run << " iterations, "
              << result.failures.size() << " failing\n";
    for (const auto& failure : result.failures) {
      std::cout << "failure at iteration " << failure.iteration << " (minimized to "
                << failure.minimized.workflow.task_count() << " tasks, "
                << failure.minimized.platform.hosts.size() << " hosts)\n";
      for (const auto& d : failure.divergences) {
        std::cout << "  " << d.describe() << "\n";
      }
      if (!failure.written_path.empty()) {
        std::cout << "  written: " << failure.written_path << "\n";
      }
    }
    return result.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bbsim_fuzz: " << e.what() << "\n";
    return 2;
  }
}
