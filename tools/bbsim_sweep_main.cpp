// bbsim_sweep -- run a JSON-specified multi-configuration study in
// parallel and write one aggregated report. All logic lives in
// src/cli/sweep_cli.cpp so it is unit-testable.
#include "cli/sweep_cli.hpp"

int main(int argc, char** argv) { return bbsim::cli::sweep_main_impl(argc, argv); }
