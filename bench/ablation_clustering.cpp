// Ablation -- task clustering x data placement: merging pipeline chains
// internalises the intermediate files that the burst buffer would otherwise
// serve. How much of the BB's benefit can clustering capture by itself?
#include "bench_common.hpp"
#include "workflow/clustering.hpp"
#include "workflow/montage.hpp"

using namespace bbsim;

namespace {

double run(const wf::Workflow& w, std::shared_ptr<exec::PlacementPolicy> policy,
           testbed::System system) {
  exec::ExecutionConfig cfg;
  cfg.placement = std::move(policy);
  cfg.stage_in_mode = exec::StageInMode::Instant;
  cfg.collect_trace = false;
  exec::Simulation sim(testbed::paper_platform(system, 2), w, cfg);
  return sim.run().makespan;
}

}  // namespace

int main() {
  bench::banner("Ablation: task clustering", "workflow transformation",
                "Chain-merged vs. plain workflows under all-PFS and all-BB "
                "placement (2 Cori nodes, instant staging).");

  const std::vector<std::pair<std::string, wf::Workflow>> workloads = {
      {"swarp-8p", wf::make_swarp({.pipelines = 8, .cores_per_task = 8})},
      {"cybershake", wf::make_cybershake({.variations = 4, .ruptures = 16})},
  };

  analysis::Table t({"workload", "variant", "tasks", "files", "all-PFS (s)",
                     "all-BB (s)", "BB benefit"});
  for (const auto& [name, w] : workloads) {
    const wf::ClusteringResult c = wf::cluster_chains(w);
    struct Variant {
      std::string label;
      const wf::Workflow* wf;
    };
    for (const Variant& v : {Variant{"plain", &w}, Variant{"clustered", &c.workflow}}) {
      const double pfs = run(*v.wf, exec::all_pfs_policy(), testbed::System::CoriPrivate);
      const double bb = run(*v.wf, exec::all_bb_policy(), testbed::System::CoriPrivate);
      t.add_row({name, v.label, std::to_string(v.wf->task_count()),
                 std::to_string(v.wf->file_count()), util::format("%.1f", pfs),
                 util::format("%.1f", bb), util::format("%.2fx", pfs / bb)});
    }
    std::printf("%s: %zu chains merged, %zu intermediates internalised\n",
                name.c_str(), c.chains_merged, c.files_internalised);
  }
  std::printf("\n");
  t.print();
  bench::save_csv(t, "ablation_clustering.csv");
  std::printf("\nReading: clustering removes the intermediate I/O entirely, so "
              "it shrinks both the PFS pain and the BB benefit -- the two "
              "mechanisms compete for the same bytes.\n");
  return 0;
}
