// bench_flow_solver -- the incremental max-min solver scale trajectory.
//
// Drives the solver with the churn profile of a large pipeline-parallel
// workflow run (wf::make_scale_dag): a sliding window of active transfers
// over per-host burst-buffer channels plus a shared PFS link, with flows
// added/removed as tasks start/finish and occasional capacity changes
// (interference injection). Tiers of 10k / 100k / 1M tasks.
//
// Three referees keep the numbers honest:
//   * sampled steps re-run a full from-scratch solve on the same state and
//     compare every rate (reported as max_rel_divergence_full);
//   * a few sampled steps also run the long-double oracle
//     (oracle::reference_maxmin) over the whole window;
//   * an engine-driven phase times end-to-end event dispatch through
//     FlowManager + the calendar queue.
//
// Writes BENCH_flow_solver.json (schema bbsim.bench.flow_solver.v1) -- the
// trajectory later PRs must not regress (tools/check_bench_regression.py).
//
// Usage: bench_flow_solver [--tiers 10k,100k,1m] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "flow/manager.hpp"
#include "flow/network.hpp"
#include "json/json.hpp"
#include "oracle/maxmin_ref.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/workflow.hpp"

namespace {

using namespace bbsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Relative disagreement between two rates; infinities must match exactly.
double rel_diff(double a, double b) {
  if (std::isinf(a) || std::isinf(b)) return a == b ? 0.0 : 1.0;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
  return std::fabs(a - b) / scale;
}

struct Tier {
  std::string label;
  std::size_t tasks;
};

struct Platform {
  std::size_t hosts;
  std::vector<flow::ResourceId> bb_read;
  std::vector<flow::ResourceId> bb_write;
  flow::ResourceId pfs;
};

Platform build_platform(flow::Network& net, std::size_t tasks, util::Rng& rng) {
  Platform p;
  std::size_t hosts = 16;
  while (hosts * 512 < tasks) hosts *= 2;
  p.hosts = hosts;
  for (std::size_t h = 0; h < hosts; ++h) {
    p.bb_read.push_back(
        net.add_resource("bb_read_" + std::to_string(h), rng.uniform(1e9, 10e9)));
    p.bb_write.push_back(
        net.add_resource("bb_write_" + std::to_string(h), rng.uniform(1e9, 10e9)));
  }
  p.pfs = net.add_resource("pfs_link", 500e9);
  return p;
}

/// One transfer derived from the scale DAG: which host channel it crosses,
/// whether it also crosses the shared PFS link, and its shaping parameters.
struct TransferPlan {
  flow::ResourceId channel;
  bool crosses_pfs;
  double volume;
  double rate_cap;
  double weight;
};

/// Flattens the DAG's task I/O into the transfer sequence the window churns
/// through: every input is a read on the task's host, every output a write.
std::vector<TransferPlan> plan_transfers(const wf::Workflow& dag,
                                         const Platform& p, util::Rng& rng) {
  std::vector<TransferPlan> plans;
  plans.reserve(dag.task_count() * 3);
  std::size_t k = 0;
  for (const std::string& name : dag.task_names()) {
    const wf::Task& task = dag.task(name);
    const std::size_t h = k % p.hosts;
    for (const std::string& f : task.inputs) {
      TransferPlan t{};
      t.channel = p.bb_read[h];
      t.crosses_pfs = rng.chance(0.002);
      t.volume = dag.file(f).size;
      t.rate_cap = rng.chance(0.3) ? rng.uniform(0.5e9, 2e9) : flow::kUnlimited;
      t.weight = (k % 3 == 0) ? 2.0 : 1.0;
      plans.push_back(t);
    }
    for (const std::string& f : task.outputs) {
      TransferPlan t{};
      t.channel = p.bb_write[h];
      t.crosses_pfs = rng.chance(0.002);
      t.volume = dag.file(f).size;
      t.rate_cap = flow::kUnlimited;
      t.weight = 1.0;
      plans.push_back(t);
    }
    ++k;
  }
  return plans;
}

flow::FlowSpec to_spec(const TransferPlan& t, const Platform& p) {
  flow::FlowSpec spec;
  spec.volume = t.volume;
  spec.path.push_back(t.channel);
  if (t.crosses_pfs) spec.path.push_back(p.pfs);
  spec.rate_cap = t.rate_cap;
  spec.weight = t.weight;
  return spec;
}

/// Snapshot of every active rate in creation order, for divergence checks.
std::vector<std::pair<flow::FlowId, double>> snapshot(const flow::Network& net) {
  std::vector<std::pair<flow::FlowId, double>> rates;
  rates.reserve(net.flow_count());
  net.for_each_flow([&rates](flow::FlowId id, const flow::FlowState& st) {
    rates.emplace_back(id, st.rate);
  });
  return rates;
}

double oracle_divergence(const flow::Network& net) {
  oracle::RefProblem problem;
  problem.capacities.reserve(net.resource_count());
  for (flow::ResourceId r = 0; r < net.resource_count(); ++r) {
    problem.capacities.push_back(net.resource(r).capacity);
  }
  std::vector<double> ours;
  net.for_each_flow([&](flow::FlowId, const flow::FlowState& st) {
    oracle::RefFlow f;
    f.path = st.spec.path;
    f.rate_cap = st.spec.rate_cap;
    f.weight = st.spec.weight;
    problem.flows.push_back(std::move(f));
    ours.push_back(st.rate);
  });
  const std::vector<double> ref = oracle::reference_maxmin(problem);
  double worst = 0.0;
  for (std::size_t i = 0; i < ours.size(); ++i) {
    worst = std::max(worst, rel_diff(ours[i], ref[i]));
  }
  return worst;
}

json::Value run_tier(const Tier& tier) {
  std::printf("== tier %s (%zu tasks)\n", tier.label.c_str(), tier.tasks);
  util::Rng rng(20260809);

  const auto t_gen = Clock::now();
  wf::ScaleDagConfig dag_cfg;
  dag_cfg.task_count = tier.tasks;
  const wf::Workflow dag = wf::make_scale_dag(dag_cfg, rng);
  const double gen_seconds = seconds_since(t_gen);

  flow::Network net;
  Platform platform = build_platform(net, tier.tasks, rng);
  const std::vector<TransferPlan> plans = plan_transfers(dag, platform, rng);
  const std::size_t window = 8 * platform.hosts;

  // Prefill the window (solve once at the end, like a warm simulation).
  std::deque<flow::FlowId> active;
  std::size_t next_plan = 0;
  while (active.size() < window && next_plan < plans.size()) {
    active.push_back(net.add_flow(to_spec(plans[next_plan], platform)));
    ++next_plan;
  }
  net.solve();

  // Steady-state churn: retire the oldest transfers, admit the next ones,
  // occasionally shift a channel capacity -- solving after every mutation,
  // exactly as FlowManager does. Sampled steps time a full re-solve of the
  // same state and diff every rate; a few also consult the oracle.
  const std::size_t total_steps = plans.size() - next_plan;
  // Referees are expensive at the big tiers (a full solve touches the whole
  // window; the oracle is O(F^2)): take fewer samples there and skip the
  // oracle entirely past 4096 active flows.
  const std::size_t target_samples = window > 4096 ? 32 : 200;
  const bool oracle_enabled = window <= 4096;
  const std::size_t sample_every =
      std::max<std::size_t>(1, total_steps / target_samples);
  std::size_t solves = 0;
  std::size_t full_solves = 0;
  double full_seconds = 0.0;
  double referee_seconds = 0.0;
  double incremental_sampled_seconds = 0.0;
  std::size_t incremental_sampled = 0;
  double worst_full = 0.0;
  double worst_oracle = 0.0;
  std::size_t oracle_checks = 0;
  std::size_t step = 0;

  // Throughput is reported as the best of ~16 timed blocks rather than the
  // whole-loop average: the loop only runs for tens of milliseconds at the
  // small tiers, so a single scheduler hiccup (or a CI neighbour) would
  // otherwise swing the number by 20%+ run to run.
  const std::size_t block_steps = std::max<std::size_t>(1, total_steps / 16);
  double best_throughput = 0.0;
  double block_referee = 0.0;
  std::size_t block_solves_start = 0;
  auto t_block = Clock::now();

  const auto t_churn = Clock::now();
  while (next_plan < plans.size()) {
    net.remove_flow(active.front());
    active.pop_front();
    net.solve();
    ++solves;

    active.push_back(net.add_flow(to_spec(plans[next_plan], platform)));
    ++next_plan;
    if (step % sample_every == 17 % sample_every) {
      const auto t0 = Clock::now();
      net.solve();
      incremental_sampled_seconds += seconds_since(t0);
      ++incremental_sampled;
    } else {
      net.solve();
    }
    ++solves;

    if (step % 997 == 996) {
      net.set_capacity(platform.bb_read[(step / 997) % platform.hosts],
                       rng.uniform(1e9, 10e9));
      net.solve();
      ++solves;
    }

    if (step % sample_every == 0) {
      const auto t_ref = Clock::now();
      const std::vector<std::pair<flow::FlowId, double>> before = snapshot(net);
      net.set_incremental(false);
      const auto t0 = Clock::now();
      net.solve();
      full_seconds += seconds_since(t0);
      ++full_solves;
      net.set_incremental(true);
      const std::vector<std::pair<flow::FlowId, double>> after = snapshot(net);
      for (std::size_t i = 0; i < before.size(); ++i) {
        worst_full = std::max(worst_full,
                              rel_diff(before[i].second, after[i].second));
      }
      if (oracle_enabled && step % (sample_every * 64) == 0) {
        worst_oracle = std::max(worst_oracle, oracle_divergence(net));
        ++oracle_checks;
      }
      const double ref_elapsed = seconds_since(t_ref);
      referee_seconds += ref_elapsed;
      block_referee += ref_elapsed;
    }
    ++step;

    if (step % block_steps == 0 || next_plan == plans.size()) {
      const double block_seconds = seconds_since(t_block) - block_referee;
      const std::size_t block_solves = solves - block_solves_start;
      if (block_seconds > 0.0 && block_solves > 0) {
        best_throughput =
            std::max(best_throughput,
                     static_cast<double>(block_solves) / block_seconds);
      }
      t_block = Clock::now();
      block_referee = 0.0;
      block_solves_start = solves;
    }
  }
  // Referee time (rate snapshots, full re-solves, oracle runs) is
  // measurement apparatus, not solver cost: report throughput without it.
  const double churn_seconds = seconds_since(t_churn) - referee_seconds;

  // End-to-end engine phase: the same transfers driven through FlowManager
  // completions, exercising the calendar queue's schedule/cancel churn.
  const std::size_t engine_flows = std::min<std::size_t>(plans.size(), 200000);
  sim::Engine engine;
  flow::FlowManager fm(engine);
  Platform eng_platform = build_platform(fm.network(), tier.tasks, rng);
  std::size_t started = 0;
  std::function<void()> start_next = [&] {
    while (started < engine_flows && fm.active_count() < window) {
      fm.start(to_spec(plans[started], eng_platform), [&] { start_next(); });
      ++started;
    }
  };
  const auto t_engine = Clock::now();
  start_next();
  engine.run();
  const double engine_seconds = seconds_since(t_engine);

  const double inc_us = incremental_sampled > 0
                            ? 1e6 * incremental_sampled_seconds /
                                  static_cast<double>(incremental_sampled)
                            : 0.0;
  const double full_us =
      full_solves > 0 ? 1e6 * full_seconds / static_cast<double>(full_solves) : 0.0;
  const double speedup = inc_us > 0.0 ? full_us / inc_us : 0.0;
  const double solves_per_second = best_throughput;

  std::printf("   dag: %zu tasks in %.2fs; window %zu over %zu hosts\n",
              dag.task_count(), gen_seconds, window, platform.hosts);
  std::printf("   churn: %zu solves in %.2fs (best block %.0f solves/s)\n",
              solves, churn_seconds, solves_per_second);
  std::printf("   incremental %.2f us/solve vs full %.2f us/solve -> %.1fx\n",
              inc_us, full_us, speedup);
  std::printf("   divergence: full %.3g, oracle %.3g (%zu oracle checks)\n",
              worst_full, worst_oracle, oracle_checks);
  std::printf("   engine: %zu flows, %zu events in %.2fs (%.0f events/s)\n",
              started, engine.executed_count(), engine_seconds,
              static_cast<double>(engine.executed_count()) / engine_seconds);

  json::Object out;
  out.set("tier", tier.label);
  out.set("tasks", static_cast<double>(tier.tasks));
  out.set("hosts", static_cast<double>(platform.hosts));
  out.set("window", static_cast<double>(window));
  out.set("transfers", static_cast<double>(plans.size()));
  out.set("dag_generation_seconds", gen_seconds);
  out.set("solves", static_cast<double>(solves));
  out.set("churn_seconds", churn_seconds);
  out.set("solves_per_second", solves_per_second);
  out.set("incremental_us_per_solve", inc_us);
  out.set("full_us_per_solve", full_us);
  out.set("speedup_vs_full", speedup);
  out.set("max_rel_divergence_full", worst_full);
  out.set("max_rel_divergence_oracle", worst_oracle);
  out.set("oracle_checks", static_cast<double>(oracle_checks));
  json::Object eng;
  eng.set("flows", static_cast<double>(started));
  eng.set("events", static_cast<double>(engine.executed_count()));
  eng.set("wall_seconds", engine_seconds);
  eng.set("events_per_second",
          static_cast<double>(engine.executed_count()) / engine_seconds);
  out.set("engine", json::Value(std::move(eng)));
  return json::Value(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  std::string tiers_arg = "10k,100k";
  std::string out_path = "BENCH_flow_solver.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiers" && i + 1 < argc) {
      tiers_arg = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_flow_solver [--tiers 10k,100k,1m] [--out FILE]\n");
      return 1;
    }
  }

  std::vector<Tier> tiers;
  std::size_t pos = 0;
  while (pos < tiers_arg.size()) {
    const std::size_t comma = tiers_arg.find(',', pos);
    const std::string label =
        tiers_arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? tiers_arg.size() : comma + 1;
    if (label == "10k") {
      tiers.push_back({label, 10000});
    } else if (label == "100k") {
      tiers.push_back({label, 100000});
    } else if (label == "1m" || label == "1M") {
      tiers.push_back({label, 1000000});
    } else {
      std::fprintf(stderr, "unknown tier '%s' (use 10k, 100k, 1m)\n",
                   label.c_str());
      return 1;
    }
  }

  json::Array tier_results;
  for (const Tier& tier : tiers) {
    tier_results.push_back(run_tier(tier));
  }
  json::Object root;
  root.set("schema", std::string("bbsim.bench.flow_solver.v1"));
  root.set("tiers", json::Value(std::move(tier_results)));
  json::write_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
