// Figure 11 -- real vs. simulated makespan when increasing the number of
// concurrent pipelines (1 core per task, all files in the BB).
//
// Paper numbers for context: average errors ~11.8% (private), ~11.6%
// (striped), ~15.9% (on-node); predicted trends follow the measured ones,
// and accuracy improves as concurrency grows (the contention model captures
// the bandwidth competition).
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 11", "model accuracy vs. pipeline concurrency",
                "Measured (testbed) vs. simulated (Table I model) makespan as "
                "pipelines scale; per-mode mean relative error.");

  const std::vector<int> pipeline_sweep = {1, 2, 4, 8, 16, 32};
  analysis::Table summary({"system", "avg error %", "error@1", "error@32",
                           "paper error %"});
  const std::map<std::string, std::string> paper_errors = {
      {"cori-private", "11.8"}, {"cori-striped", "11.6"}, {"summit", "15.9"}};

  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions calib_opt;
    calib_opt.campaign = 1;  // characterization campaign (see Figure 10)
    const testbed::Testbed tb_calib(system, calib_opt);
    testbed::TestbedOptions opt;
    opt.repetitions = 5;
    opt.campaign = 2;  // validation campaign
    const testbed::Testbed tb(system, opt);

    // Calibrate once from the single-pipeline all-PFS reference, 1 core.
    wf::SwarpConfig ref_cfg_wf;
    ref_cfg_wf.cores_per_task = 1;
    const wf::Workflow ref_workflow = wf::make_swarp(ref_cfg_wf);
    exec::ExecutionConfig ref_cfg;
    ref_cfg.placement = exec::all_pfs_policy();
    const auto observations = testbed::Testbed::observations(
        tb_calib.run_repetitions(ref_workflow, ref_cfg, 0.0));

    analysis::Series measured, simulated;
    measured.label = "measured";
    simulated.label = "simulated";
    std::vector<double> errors;
    for (const int pipelines : pipeline_sweep) {
      wf::SwarpConfig scfg;
      scfg.pipelines = pipelines;
      scfg.cores_per_task = 1;
      scfg.stage_in_per_pipeline = true;  // N independent instances (paper)
      const wf::Workflow workflow = wf::make_swarp(scfg);
      exec::ExecutionConfig cfg;
      cfg.placement = exec::all_bb_policy();
      cfg.collect_trace = false;
      // Stage-ins overlap the other instances' pipelines here, so the
      // turnaround (makespan) is the quantity compared on both sides.
      const auto results = tb.run_repetitions(workflow, cfg, 1.0);
      std::vector<double> makespans;
      for (const exec::Result& r : results) makespans.push_back(r.makespan);
      const double measured_mean = analysis::describe(makespans).mean;
      const double predicted =
          bench::simple_model_run(system, workflow, observations, cfg).makespan;
      measured.add(pipelines, measured_mean);
      simulated.add(pipelines, predicted);
      errors.push_back(analysis::relative_error(predicted, measured_mean));
    }
    analysis::Table t = analysis::series_table("pipelines", {measured, simulated});
    std::printf("--- %s ---\n", to_string(system));
    t.print();
    bench::save_csv(t, util::format("fig11_%s.csv", to_string(system)));
    const double avg_error = analysis::describe(errors).mean;
    std::printf("  average relative error: %.1f%%  (paper: %s%%)\n\n",
                avg_error * 100.0, paper_errors.at(to_string(system)).c_str());
    summary.add_row({to_string(system), util::format("%.1f", avg_error * 100.0),
                     util::format("%.1f", errors.front() * 100.0),
                     util::format("%.1f", errors.back() * 100.0),
                     paper_errors.at(to_string(system))});
  }
  std::printf("Summary (paper: accuracy improves as concurrency increases):\n");
  summary.print();
  bench::save_csv(summary, "fig11_summary.csv");
  return 0;
}
