// Figure 7 -- task execution time vs. number of concurrent pipelines on one
// compute node (1 core per task, all files in burst buffers).
//
// Paper findings reproduced here:
//   * on Cori, Resample/Combine slow down by up to ~3x at 32 pipelines --
//     the BB bandwidth saturates although usage is far below peak;
//   * on Summit the slowdown is nearly negligible for Stage-In/Resample and
//     more visible for Combine.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 7", "pipeline concurrency",
                "Mean task time (s) vs. # concurrent pipelines (1 core per "
                "task, all files in the BB).");

  const std::vector<int> pipeline_sweep = {1, 2, 4, 8, 16, 32};

  for (const char* task_type : {"stage_in", "resample", "combine"}) {
    std::vector<analysis::Series> panel;
    for (const auto system : bench::kAllSystems) {
      testbed::TestbedOptions opt;
      opt.repetitions = 5;  // sweep is wide; 5 repetitions keep it quick
      const testbed::Testbed tb(system, opt);
      analysis::Series s;
      s.label = to_string(system);
      for (const int pipelines : pipeline_sweep) {
        wf::SwarpConfig scfg;
        scfg.pipelines = pipelines;
        scfg.cores_per_task = 1;
        scfg.stage_in_per_pipeline = true;  // N independent instances (paper)
        const wf::Workflow workflow = wf::make_swarp(scfg);
        exec::ExecutionConfig cfg;
        cfg.placement = exec::all_bb_policy();
        const auto results = tb.run_repetitions(workflow, cfg, 1.0);
        const auto stats = testbed::Testbed::summarize(results);
        if (std::string(task_type) == "stage_in") {
          s.add(pipelines, stats.stage_in.mean, stats.stage_in.stddev);
        } else {
          const auto& d = stats.duration_by_type.at(task_type);
          s.add(pipelines, d.mean, d.stddev);
        }
      }
      panel.push_back(std::move(s));
    }
    analysis::Table t = analysis::series_table("pipelines", panel);
    std::printf("--- %s ---\n", task_type);
    t.print();
    bench::save_csv(t, util::format("fig07_%s.csv", task_type));
    for (const analysis::Series& s : panel) {
      std::printf("  %s slowdown 1 -> 32 pipelines: %.2fx\n", s.label.c_str(),
                  s.y.back() / s.y.front());
    }
    std::printf("\n");
  }
  return 0;
}
