// Ablation -- dispatch-order policies: how much does the ready-task order
// matter next to data placement? (The paper holds FCFS fixed; this bench
// bounds what a smarter scheduler could add on top of BB placement.)
#include "bench_common.hpp"
#include "workflow/genomes.hpp"
#include "workflow/random_dag.hpp"
#include "util/rng.hpp"

using namespace bbsim;

int main() {
  bench::banner("Ablation: scheduler policies", "engine extension",
                "Makespan under different ready-queue orders (Cori model, "
                "4 nodes, all inputs staged).");

  util::Rng rng(7);
  wf::RandomDagConfig rcfg;
  rcfg.levels = 6;
  rcfg.max_width = 10;
  rcfg.max_requested_cores = 16;
  const std::vector<std::pair<std::string, wf::Workflow>> workloads = {
      {"swarp-16p", wf::make_swarp({.pipelines = 16, .cores_per_task = 8})},
      {"1000genomes-8ch", wf::make_1000genomes({.chromosomes = 8})},
      {"random-dag", wf::make_random_layered(rcfg, rng)},
  };
  const std::vector<exec::SchedulerPolicy> policies = {
      exec::SchedulerPolicy::Fcfs, exec::SchedulerPolicy::CriticalPathFirst,
      exec::SchedulerPolicy::LargestFirst, exec::SchedulerPolicy::SmallestFirst};

  std::vector<std::string> header{"scheduler"};
  for (const auto& [name, _] : workloads) header.push_back(name + " (s)");
  analysis::Table t(header);

  for (const auto policy : policies) {
    std::vector<std::string> row{to_string(policy)};
    for (const auto& [name, w] : workloads) {
      exec::ExecutionConfig cfg;
      cfg.placement = exec::all_bb_policy();
      cfg.stage_in_mode = exec::StageInMode::Instant;
      cfg.scheduler = policy;
      cfg.collect_trace = false;
      exec::Simulation sim(testbed::paper_platform(testbed::System::CoriPrivate, 4),
                           w, cfg);
      row.push_back(util::format("%.1f", sim.run().makespan));
    }
    t.add_row(std::move(row));
  }
  t.print();
  bench::save_csv(t, "ablation_scheduler.csv");
  std::printf("\nReading: for these wide, homogeneous workflows the dispatch "
              "order barely moves the makespan -- data placement (see "
              "ablation_placement) is the lever that matters, which supports "
              "the paper's focus on placement over scheduling.\n");
  return 0;
}
