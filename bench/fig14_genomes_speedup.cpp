// Figure 14 -- the Figure 13 data expressed as speedup over the all-PFS
// execution, with the prior-study reference points from Ferreira da Silva
// et al. [10] overlaid.
//
// The paper overlays measurements from [10] (Cori, 2-chromosome config,
// a few staging fractions) as a loose reference: system upgrades, load and
// the different configuration make a tight match impossible; the observed
// gap is ~29%. Our reference series encodes the published shape for the
// same purpose (see DESIGN.md substitutions).
#include "bench_common.hpp"
#include "workflow/genomes.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 14", "1000Genomes speedup",
                "Speedup vs. all-PFS when staging input into the BB, with "
                "prior-study reference points [10].");

  const wf::Workflow workflow = wf::make_1000genomes({});
  const int kComputeNodes = 8;

  auto makespan_at = [&](testbed::System system, double fraction) {
    exec::ExecutionConfig cfg;
    cfg.placement =
        std::make_shared<exec::FractionPolicy>(fraction, exec::Tier::BurstBuffer);
    cfg.stage_in_mode = exec::StageInMode::Instant;
    cfg.collect_trace = false;
    exec::Simulation sim(testbed::paper_platform(system, kComputeNodes), workflow, cfg);
    return sim.run().makespan;
  };

  std::vector<analysis::Series> series;
  for (const auto system : {testbed::System::CoriPrivate, testbed::System::Summit}) {
    analysis::Series s;
    s.label = system == testbed::System::Summit ? "summit" : "cori";
    const double base = makespan_at(system, 0.0);
    for (int pct = 0; pct <= 100; pct += 10) {
      s.add(pct, base / makespan_at(system, pct / 100.0));
    }
    series.push_back(std::move(s));
  }

  // Prior-study reference points (shape digitised from [10]'s published
  // speedups on Cori with a smaller 2-chromosome configuration).
  analysis::Series prior;
  prior.label = "prior study [10] (2-chr, Cori)";
  for (const auto& [pct, speedup] : std::vector<std::pair<double, double>>{
           {0, 1.0}, {50, 1.25}, {100, 1.59}}) {
    prior.add(pct, speedup);
  }
  series.push_back(prior);

  analysis::Table t = analysis::series_table("% input in BB", series);
  t.print();
  bench::save_csv(t, "fig14_genomes_speedup.csv");

  // Error vs the prior-study points (paper: ~29%).
  std::vector<double> sim_at, ref_at;
  const analysis::Series& cori = series[0];
  for (std::size_t i = 0; i < prior.size(); ++i) {
    for (std::size_t j = 0; j < cori.size(); ++j) {
      if (cori.x[j] == prior.x[i]) {
        sim_at.push_back(cori.y[j]);
        ref_at.push_back(prior.y[i]);
      }
    }
  }
  // The all-PFS anchor (speedup 1.0 vs 1.0) is excluded from the error.
  sim_at.erase(sim_at.begin());
  ref_at.erase(ref_at.begin());
  const double err = analysis::mean_absolute_percentage_error(sim_at, ref_at);
  std::printf("\nmean gap vs prior-study points: %.0f%% (paper: ~29%%; see the "
              "paper's caveats on config/load/upgrade differences)\n",
              err * 100.0);
  return 0;
}
