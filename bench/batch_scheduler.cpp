// Batch-scheduler throughput and policy-quality benchmark.
//
// Generates a deterministic synthetic job stream under heavy burst-buffer
// contention, runs every scheduling policy over it, and writes
// BENCH_batch.json (schema bbsim.bench.batch.v1). Two kinds of numbers:
//
//   - jobs_per_second / seconds: wall-clock throughput. Hardware-sensitive;
//     gated only against a same-machine baseline.
//   - bsld_mean per policy, fcfs_over_easy_slowdown, schedule_hash:
//     hardware-INSENSITIVE. The slowdown ratio encodes "EASY beats FCFS
//     under BB contention" (must stay >= 1); the FNV-1a hash over every
//     (job id, start time) pair pins the schedules bit-for-bit, so any
//     change to scheduler behaviour shows up as a hash mismatch in CI.
//
// Usage: bench_batch [--tiers 500,2k] [--out FILE]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "batch/generator.hpp"
#include "batch/report.hpp"
#include "batch/scheduler.hpp"
#include "json/json.hpp"

namespace {

using namespace bbsim;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Tier {
  std::string label;
  std::size_t jobs;
};

// FNV-1a over raw bytes; the stream of (id, start-bit-pattern) pairs is a
// stable fingerprint of one policy's whole schedule.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t schedule_hash(const batch::FleetResult& result) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const batch::JobOutcome& job : result.jobs) {
    const std::uint64_t id = job.id;
    std::uint64_t start_bits = 0;
    static_assert(sizeof(start_bits) == sizeof(job.start));
    std::memcpy(&start_bits, &job.start, sizeof(start_bits));
    hash = fnv1a(hash, &id, sizeof(id));
    hash = fnv1a(hash, &start_bits, sizeof(start_bits));
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// A contended regime: offered load past capacity, a quarter of the jobs
// hogging most of the BB pool. This is where the policies separate.
batch::StreamConfig tier_config(const Tier& tier) {
  batch::StreamConfig config;
  config.name = "bench-" + tier.label;
  config.job_count = tier.jobs;
  config.machine_nodes = 32;
  config.machine_bb_bytes = 6.4e12;
  config.load = 1.15;
  config.max_job_nodes = 16;
  config.estimate_factor = 3.0;
  config.bb_hog_fraction = 0.25;
  config.bb_hog_share = 0.6;
  config.seed = 20260809;
  return config;
}

json::Value run_tier(const Tier& tier) {
  const batch::StreamConfig config = tier_config(tier);
  const batch::JobStream stream = batch::make_stream(config);
  batch::MachineSpec machine;
  machine.nodes = config.machine_nodes;
  machine.bb_bytes = config.machine_bb_bytes;

  std::printf("tier %s: %zu jobs on %d nodes, %.1f TB BB, load %.2f\n",
              tier.label.c_str(), stream.jobs.size(), machine.nodes,
              machine.bb_bytes / 1e12, config.load);

  json::Object policies;
  double total_seconds = 0.0;
  double fcfs_bsld = 0.0, easy_bsld = 0.0;
  std::uint64_t combined = 1469598103934665603ULL;
  for (const batch::Policy policy : batch::kAllPolicies) {
    batch::SchedulerConfig sched;
    sched.policy = policy;
    const Clock::time_point t0 = Clock::now();
    const batch::FleetResult result = run_scheduler(machine, stream, sched);
    const double elapsed = seconds_since(t0);
    total_seconds += elapsed;

    const batch::FleetSummary summary =
        batch::summarize(result, machine, sched.tau);
    const std::uint64_t hash = schedule_hash(result);
    combined = fnv1a(combined, &hash, sizeof(hash));
    if (policy == batch::Policy::Fcfs) fcfs_bsld = summary.bsld_mean;
    if (policy == batch::Policy::Easy) easy_bsld = summary.bsld_mean;

    std::printf("   %-12s %8.3fs  bsld %8.3f  util %.3f  bb.util %.3f  "
                "backfills %zu  hash %s\n",
                batch::to_string(policy), elapsed, summary.bsld_mean,
                summary.node_utilization, summary.bb_utilization,
                summary.backfilled_jobs, hex64(hash).c_str());

    json::Object entry;
    entry.set("seconds", elapsed);
    entry.set("jobs_per_second",
              static_cast<double>(stream.jobs.size()) / elapsed);
    entry.set("bsld_mean", summary.bsld_mean);
    entry.set("wait_mean", summary.wait_mean);
    entry.set("node_utilization", summary.node_utilization);
    entry.set("bb_utilization", summary.bb_utilization);
    entry.set("backfilled_jobs",
              static_cast<double>(summary.backfilled_jobs));
    entry.set("schedule_hash", hex64(hash));
    policies.set(batch::to_string(policy), json::Value(std::move(entry)));
  }

  const double ratio = easy_bsld > 0.0 ? fcfs_bsld / easy_bsld : 0.0;
  const double jobs_per_second =
      static_cast<double>(stream.jobs.size() * 4) / total_seconds;
  std::printf("   fcfs/easy slowdown ratio %.2fx, %.0f scheduled jobs/s\n",
              ratio, jobs_per_second);

  json::Object out;
  out.set("tier", tier.label);
  out.set("jobs", static_cast<double>(stream.jobs.size()));
  out.set("nodes", static_cast<double>(machine.nodes));
  out.set("bb_bytes", machine.bb_bytes);
  out.set("load", config.load);
  out.set("seed", static_cast<double>(config.seed));
  out.set("seconds", total_seconds);
  out.set("jobs_per_second", jobs_per_second);
  out.set("fcfs_over_easy_slowdown", ratio);
  out.set("schedule_hash", hex64(combined));
  out.set("policies", json::Value(std::move(policies)));
  return json::Value(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  std::string tiers_arg = "500,2k";
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiers" && i + 1 < argc) {
      tiers_arg = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_batch [--tiers 500,2k] [--out FILE]\n");
      return 1;
    }
  }

  std::vector<Tier> tiers;
  std::size_t pos = 0;
  while (pos < tiers_arg.size()) {
    const std::size_t comma = tiers_arg.find(',', pos);
    const std::string label =
        tiers_arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? tiers_arg.size() : comma + 1;
    if (label == "500") {
      tiers.push_back({label, 500});
    } else if (label == "2k") {
      tiers.push_back({label, 2000});
    } else {
      std::fprintf(stderr, "unknown tier '%s' (use 500, 2k)\n", label.c_str());
      return 1;
    }
  }

  json::Array tier_results;
  for (const Tier& tier : tiers) {
    tier_results.push_back(run_tier(tier));
  }
  json::Object root;
  root.set("schema", std::string("bbsim.bench.batch.v1"));
  root.set("tiers", json::Value(std::move(tier_results)));
  json::write_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
