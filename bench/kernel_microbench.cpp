// Micro-benchmarks of the simulation substrates (google-benchmark):
// event-queue throughput, max-min solver scaling, end-to-end engine rate.
// The solver scaling record (BENCH_flow_solver.json) is produced by
// bench_flow_solver (flow_solver.cpp), not here.
#include <benchmark/benchmark.h>

#include "exec/engine.hpp"
#include "flow/manager.hpp"
#include "flow/network.hpp"
#include "sim/engine.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"
#include "workflow/genomes.hpp"
#include "workflow/swarp.hpp"

namespace {

using namespace bbsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>((i * 7919) % 1000), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MaxMinSolve(benchmark::State& state) {
  const int n_flows = static_cast<int>(state.range(0));
  const int n_res = static_cast<int>(state.range(1));
  util::Rng rng(7);
  flow::Network net;
  for (int r = 0; r < n_res; ++r) {
    net.add_resource("r" + std::to_string(r), rng.uniform(100.0, 1000.0));
  }
  for (int f = 0; f < n_flows; ++f) {
    flow::FlowSpec spec;
    spec.volume = 1.0;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      spec.path.push_back(static_cast<flow::ResourceId>(rng.uniform_int(0, n_res - 1)));
    }
    net.add_flow(spec);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.solve());
  }
  state.SetItemsProcessed(state.iterations() * n_flows);
}
BENCHMARK(BM_MaxMinSolve)->Args({16, 8})->Args({128, 16})->Args({1024, 32});

void BM_FlowManagerChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    flow::FlowManager fm(engine);
    const flow::ResourceId r = fm.network().add_resource("r", 1000.0);
    for (int i = 0; i < n; ++i) {
      fm.start({100.0 + i, {r}}, nullptr);
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlowManagerChurn)->Arg(64)->Arg(512);

void BM_SwarpSimulation(benchmark::State& state) {
  const int pipelines = static_cast<int>(state.range(0));
  wf::SwarpConfig scfg;
  scfg.pipelines = pipelines;
  scfg.cores_per_task = 1;
  const wf::Workflow workflow = wf::make_swarp(scfg);
  for (auto _ : state) {
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    cfg.collect_trace = false;
    exec::Simulation sim(
        testbed::paper_platform(testbed::System::CoriPrivate), workflow, cfg);
    benchmark::DoNotOptimize(sim.run().makespan);
  }
  state.SetItemsProcessed(state.iterations() * workflow.task_count());
}
BENCHMARK(BM_SwarpSimulation)->Arg(1)->Arg(8)->Arg(32);

void BM_GenomesSimulation(benchmark::State& state) {
  wf::GenomesConfig gcfg;
  gcfg.chromosomes = static_cast<int>(state.range(0));
  const wf::Workflow workflow = wf::make_1000genomes(gcfg);
  for (auto _ : state) {
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    cfg.stage_in_mode = exec::StageInMode::Instant;
    cfg.collect_trace = false;
    exec::Simulation sim(testbed::paper_platform(testbed::System::Summit, 8),
                         workflow, cfg);
    benchmark::DoNotOptimize(sim.run().makespan);
  }
  state.SetItemsProcessed(state.iterations() * workflow.task_count());
}
BENCHMARK(BM_GenomesSimulation)->Arg(2)->Arg(22);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
