// Figure 9 -- average achieved I/O bandwidth (MB/s) for Cori's shared
// implementation (private and striped) and Summit's on-node implementation.
//
// Paper finding reproduced here: the effective bandwidth achieved by the
// POSIX-I/O workflow is far below the peak of Table I, and the ranking is
// on-node > private > striped.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 9", "achieved bandwidth",
                "Average achieved BB bandwidth (bytes served / busy time) for "
                "the SWarp workload, vs. the Table I peak.");

  analysis::Table t({"system", "perceived bw (MB/s)", "device bw (MB/s)",
                     "peak (MB/s)", "efficiency %"});

  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions opt;
    const testbed::Testbed tb(system, opt);
    // Reference workload: 8 concurrent pipelines, everything on the BB.
    wf::SwarpConfig scfg;
    scfg.pipelines = 8;
    scfg.cores_per_task = 4;
    const wf::Workflow workflow = wf::make_swarp(scfg);
    exec::ExecutionConfig cfg;
    cfg.placement = exec::all_bb_policy();
    cfg.collect_trace = false;
    const auto results = tb.run_repetitions(workflow, cfg, 1.0);

    // Application-perceived bandwidth: bytes a task moved divided by the
    // wall time it spent in I/O (includes metadata stalls and latency --
    // what the paper's instrumentation sees).
    double bytes = 0, io_time = 0;
    std::vector<double> device_bw;
    for (const exec::Result& r : results) {
      for (const auto& [name, rec] : r.tasks) {
        if (rec.type == "stage_in") continue;
        bytes += rec.bytes_read + rec.bytes_written;
        io_time += rec.io_time();
      }
      for (const exec::StorageCounters& s : r.storage) {
        if (s.service == "bb" && s.busy_time > 0) {
          device_bw.push_back(s.achieved_bandwidth());
        }
      }
    }
    const double perceived = io_time > 0 ? bytes / io_time : 0;
    const double device = device_bw.empty() ? 0 : analysis::describe(device_bw).mean;

    // Peak per Table I: aggregate BB disk bandwidth of the simple model.
    const auto paper = testbed::paper_platform(system);
    double peak = 0;
    for (const auto& s : paper.storage) {
      if (s.kind != platform::StorageKind::PFS) peak = s.disk.read_bw;
    }
    t.add_row({to_string(system), util::format("%.1f", perceived / 1e6),
               util::format("%.1f", device / 1e6), util::format("%.1f", peak / 1e6),
               util::format("%.1f", 100.0 * perceived / peak)});
  }
  t.print();
  bench::save_csv(t, "fig09_bandwidth.csv");
  std::printf("\n(paper: achieved bandwidth well below peak; on-node highest, "
              "striped lowest)\n");
  return 0;
}
