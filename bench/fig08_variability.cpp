// Figure 8 -- distribution of Resample execution time when varying the
// number of pipelines (all files in the BB): measuring I/O at scale on a
// shared machine is noisy.
//
// Paper findings reproduced here:
//   * on-node (Summit) is the fastest and the most stable;
//   * private beats striped by about an order of magnitude and is steadier;
//   * striped-mode runs vary by ~15%.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 8", "runtime variability",
                "Resample execution time distribution per # pipelines "
                "(15 repetitions; all files in the BB; 1 core per task).");

  const std::vector<int> pipeline_sweep = {1, 4, 16, 32};

  analysis::Table t({"system", "pipelines", "mean (s)", "stddev", "cv %", "min",
                     "median", "max"});
  std::map<std::string, double> worst_cv;

  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions opt;
    const testbed::Testbed tb(system, opt);
    for (const int pipelines : pipeline_sweep) {
      wf::SwarpConfig scfg;
      scfg.pipelines = pipelines;
      scfg.cores_per_task = 1;
      scfg.stage_in_per_pipeline = true;  // N independent instances (paper)
      const wf::Workflow workflow = wf::make_swarp(scfg);
      exec::ExecutionConfig cfg;
      cfg.placement = exec::all_bb_policy();
      cfg.collect_trace = false;
      const auto results = tb.run_repetitions(workflow, cfg, 1.0);

      std::vector<double> durations;
      for (const exec::Result& r : results) {
        for (const auto* rec : r.records_of("resample")) {
          durations.push_back(rec->duration());
        }
      }
      const analysis::Stats s = analysis::describe(durations);
      t.add_row({to_string(system), std::to_string(pipelines),
                 util::format("%.2f", s.mean), util::format("%.2f", s.stddev),
                 util::format("%.1f", s.cv() * 100.0), util::format("%.2f", s.min),
                 util::format("%.2f", s.median), util::format("%.2f", s.max)});
      worst_cv[to_string(system)] = std::max(worst_cv[to_string(system)], s.cv());
    }
  }
  t.print();
  bench::save_csv(t, "fig08_variability.csv");

  std::printf("\nWorst-case coefficient of variation per system:\n");
  for (const auto& [system, cv] : worst_cv) {
    std::printf("  %-14s %.1f%%\n", system.c_str(), cv * 100.0);
  }
  std::printf("(paper: striped ~15%%, private ~1 order steadier, on-node lowest)\n");
  return 0;
}
