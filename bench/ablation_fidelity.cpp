// Ablation -- which testbed fidelity ingredient produces which published
// effect? Toggle each overlay off and measure the impact on the SWarp
// makespan per system. Justifies the DESIGN.md modelling choices.
#include "bench_common.hpp"

using namespace bbsim;

namespace {

double run_with(const platform::PlatformSpec& plat, const wf::Workflow& w) {
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  cfg.collect_trace = false;
  exec::Simulation sim(plat, w, cfg);
  return sim.run().makespan;
}

}  // namespace

int main() {
  bench::banner("Ablation: fidelity overlays", "DESIGN.md section 3",
                "SWarp makespan with each testbed overlay disabled "
                "(deterministic, noise off).");

  const wf::Workflow workflow = wf::make_swarp({.pipelines = 8, .cores_per_task = 4});

  analysis::Table t({"system", "full testbed (s)", "no stream caps", "no latency",
                     "no metadata limit", "no stage overhead", "plain Table I"});
  for (const auto system : bench::kAllSystems) {
    const platform::PlatformSpec full = testbed::testbed_platform(system, {});

    auto variant = [&](auto mutate) {
      platform::PlatformSpec p = full;
      for (platform::StorageSpec& s : p.storage) mutate(s);
      return run_with(p, workflow);
    };

    const double base = run_with(full, workflow);
    const double no_caps =
        variant([](platform::StorageSpec& s) { s.stream_bw = platform::kUnlimited; });
    const double no_latency = variant([](platform::StorageSpec& s) {
      s.base_latency = 0.0;
      s.link.latency = 0.0;
    });
    const double no_meta = variant([](platform::StorageSpec& s) {
      s.metadata_ops_per_sec = platform::kUnlimited;
    });
    const double no_stage =
        variant([](platform::StorageSpec& s) { s.stage_latency = 0.0; });
    const double plain = run_with(testbed::paper_platform(system), workflow);

    t.add_row({to_string(system), util::format("%.1f", base),
               util::format("%.1f (-%.0f%%)", no_caps, 100 * (1 - no_caps / base)),
               util::format("%.1f (-%.0f%%)", no_latency, 100 * (1 - no_latency / base)),
               util::format("%.1f (-%.0f%%)", no_meta, 100 * (1 - no_meta / base)),
               util::format("%.1f (-%.0f%%)", no_stage, 100 * (1 - no_stage / base)),
               util::format("%.1f", plain)});
  }
  t.print();
  bench::save_csv(t, "ablation_fidelity.csv");
  std::printf("\nReading: the striped mode's cost is dominated by the metadata "
              "limit; the DataWarp stage overhead dominates the shared modes' "
              "stage-in; Summit is latency-insensitive and closest to plain "
              "Table I.\n");
  return 0;
}
