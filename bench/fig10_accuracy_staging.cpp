// Figure 10 -- real vs. simulated makespan when varying the fraction of
// input files staged into the BB (1 pipeline, 32 cores per task).
//
// Methodology exactly as the paper's Section IV-B: calibrate each task
// type's sequential compute time from the *reference characterization*
// (the all-PFS run, as in Daley et al. [24]) using Eq. (4), feed Table I to
// the simple model, and compare against the (emulated) measurements.
//
// Paper numbers for context: average error ~5.6% (private), ~12.8%
// (striped, underestimated -- fragmentation latency not modelled), ~6.5%
// (on-node); the private panel is the one case whose measured trend
// diverges from the simulated trend.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 10", "model accuracy vs. staging fraction",
                "Measured (testbed) vs. simulated (Table I model) makespan; "
                "per-mode mean relative error.");

  const wf::Workflow workflow = wf::make_swarp({});
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};

  analysis::Table summary({"system", "avg error %", "bias", "paper error %"});
  const std::map<std::string, std::string> paper_errors = {
      {"cori-private", "5.6"}, {"cori-striped", "12.8"}, {"summit", "6.5"}};

  for (const auto system : bench::kAllSystems) {
    // Two measurement campaigns, as in reality: the characterization that
    // feeds the calibration happened earlier than the validation sweep (the
    // paper's lambda values come from a separate study [24]).
    testbed::TestbedOptions calib_opt;
    calib_opt.campaign = 1;
    const testbed::Testbed tb_calib(system, calib_opt);
    testbed::TestbedOptions opt;
    opt.campaign = 2;
    const testbed::Testbed tb(system, opt);

    // Reference characterization: everything on the PFS (as in [24]).
    exec::ExecutionConfig ref_cfg;
    ref_cfg.placement = exec::all_pfs_policy();
    const auto observations =
        testbed::Testbed::observations(tb_calib.run_repetitions(workflow, ref_cfg, 0.0));

    analysis::Series measured, simulated;
    measured.label = "measured";
    simulated.label = "simulated";
    std::vector<double> errors;
    double bias = 0;
    for (const double fraction : fractions) {
      exec::ExecutionConfig cfg;
      cfg.placement =
          std::make_shared<exec::FractionPolicy>(fraction, exec::Tier::BurstBuffer);
      const auto results = tb.run_repetitions(workflow, cfg, fraction);
      // The figure plots the pipeline span; the stage-in phase (whose cost
      // is Figure 4's experiment) is excluded on both sides.
      std::vector<double> spans;
      for (const exec::Result& r : results) spans.push_back(r.workflow_span);
      const double measured_mean = analysis::describe(spans).mean;
      const double predicted =
          bench::simple_model_run(system, workflow, observations, cfg).workflow_span;
      measured.add(fraction * 100.0, measured_mean);
      simulated.add(fraction * 100.0, predicted);
      errors.push_back(analysis::relative_error(predicted, measured_mean));
      bias += predicted - measured_mean;
    }
    analysis::Table t = analysis::series_table("% staged", {measured, simulated});
    std::printf("--- %s ---\n", to_string(system));
    t.print();
    bench::save_csv(t, util::format("fig10_%s.csv", to_string(system)));
    const double avg_error = analysis::describe(errors).mean;
    std::printf("  average relative error: %.1f%%  (paper: %s%%)\n\n",
                avg_error * 100.0, paper_errors.at(to_string(system)).c_str());
    summary.add_row({to_string(system), util::format("%.1f", avg_error * 100.0),
                     bias < 0 ? "underestimates" : "overestimates",
                     paper_errors.at(to_string(system))});
  }
  std::printf("Summary:\n");
  summary.print();
  bench::save_csv(summary, "fig10_summary.csv");
  return 0;
}
