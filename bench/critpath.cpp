// Critical-path layer overhead benchmark.
//
// Runs the same SWarp configuration with the critpath recorder off and on,
// back-to-back on the same machine, and writes BENCH_critpath.json (schema
// bbsim.bench.critpath.v1). Three kinds of numbers:
//
//   - off_seconds / on_seconds: min wall-clock over the repetitions.
//     Hardware-sensitive in absolute terms, but their ratio
//     (overhead_ratio) is measured back-to-back on one machine, so CI
//     gates it at <= 1.05 via tools/check_bench_regression.py.
//   - off_bitwise_identical: the report of a --critpath run with its
//     "critpath" key removed must be byte-identical to a run that never
//     had the recorder -- the "0% when off" half of the contract.
//   - attribution_exact: path_length and the blame-class sum both equal
//     the makespan within 1e-9, and the baseline what-if replay
//     reproduces it. Hardware-insensitive; always gated.
//
// Usage: bench_critpath [--tiers swarp-8,swarp-32] [--reps 9] [--out FILE]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "exec/placement.hpp"
#include "json/json.hpp"
#include "platform/presets.hpp"
#include "workflow/swarp.hpp"

namespace {

using namespace bbsim;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Tier {
  std::string label;
  int pipelines = 0;
};

exec::ExecutionConfig base_config() {
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();
  return cfg;
}

exec::Result run_once(const platform::PlatformSpec& platform,
                      const wf::Workflow& workflow, bool critpath) {
  exec::ExecutionConfig cfg = base_config();
  cfg.critpath = critpath;
  return exec::Simulation(platform, workflow, cfg).run();
}

struct WallPair {
  double off = 0.0;
  double on = 0.0;
};

/// Min wall over `reps` interleaved off/on pairs: alternating the two
/// configurations inside one loop cancels thermal and scheduler drift,
/// and min is robust to one-off noise spikes.
WallPair min_wall_pair(const platform::PlatformSpec& platform,
                       const wf::Workflow& workflow, int reps) {
  WallPair best{std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::infinity()};
  for (int i = 0; i < reps; ++i) {
    Clock::time_point t0 = Clock::now();
    run_once(platform, workflow, /*critpath=*/false);
    best.off = std::min(best.off, seconds_since(t0));
    t0 = Clock::now();
    run_once(platform, workflow, /*critpath=*/true);
    best.on = std::min(best.on, seconds_since(t0));
  }
  return best;
}

std::string dump_without_critpath(const exec::Result& r) {
  const json::Value doc = r.to_json();
  json::Object out;
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "critpath") out.set(key, value);
  }
  return json::Value(std::move(out)).dump(2);
}

json::Value run_tier(const Tier& tier, int reps) {
  const platform::PlatformSpec platform = platform::cori_platform();
  wf::SwarpConfig scfg;
  scfg.pipelines = tier.pipelines;
  const wf::Workflow workflow = wf::make_swarp(scfg);

  std::printf("tier %s: swarp x%d pipelines, %d repetitions per config\n",
              tier.label.c_str(), tier.pipelines, reps);

  // Correctness half first (also warms caches for the timing half).
  const exec::Result off = run_once(platform, workflow, /*critpath=*/false);
  const exec::Result on = run_once(platform, workflow, /*critpath=*/true);
  const bool off_identical =
      off.critpath.is_null() && dump_without_critpath(on) == off.to_json().dump(2);

  bool attribution_exact = false;
  if (on.critpath.is_object()) {
    const double tol = 1e-9 * std::max(1.0, on.makespan);
    const double path_length = on.critpath.get_number("path_length", -1.0);
    double blame_sum = 0.0;
    for (const auto& [name, seconds] : on.critpath.at("blame").as_object()) {
      (void)name;
      blame_sum += seconds.as_number();
    }
    double baseline = -1.0;
    for (const json::Value& w : on.critpath.at("what_if").as_array()) {
      if (w.get_string("scenario", "") == "baseline") {
        baseline = w.get_number("makespan", -1.0);
      }
    }
    attribution_exact = std::abs(path_length - on.makespan) <= tol &&
                        std::abs(blame_sum - on.makespan) <= tol &&
                        std::abs(baseline - on.makespan) <= tol;
  }

  const WallPair wall = min_wall_pair(platform, workflow, reps);
  const double off_seconds = wall.off;
  const double on_seconds = wall.on;
  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 0.0;

  std::printf("   off %.4fs  on %.4fs  overhead %.3fx  "
              "off-identical %s  attribution-exact %s\n",
              off_seconds, on_seconds, ratio, off_identical ? "yes" : "NO",
              attribution_exact ? "yes" : "NO");

  json::Object out;
  out.set("tier", tier.label);
  out.set("pipelines", static_cast<double>(tier.pipelines));
  out.set("tasks", static_cast<double>(on.tasks.size()));
  out.set("reps", static_cast<double>(reps));
  out.set("makespan", on.makespan);
  out.set("off_seconds", off_seconds);
  out.set("on_seconds", on_seconds);
  out.set("overhead_ratio", ratio);
  out.set("off_bitwise_identical", off_identical);
  out.set("attribution_exact", attribution_exact);
  return json::Value(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  std::string tiers_arg = "swarp-8,swarp-32";
  std::string out_path = "BENCH_critpath.json";
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiers" && i + 1 < argc) {
      tiers_arg = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: bench_critpath [--tiers swarp-8,swarp-32] "
                   "[--reps 9] [--out FILE]\n");
      return 1;
    }
  }

#if !defined(BBSIM_CRITPATH_ENABLED)
  std::fprintf(stderr,
               "bench_critpath: this build has no critpath hooks "
               "(reconfigure with -DBBSIM_CRITPATH=ON); nothing to measure\n");
  return 0;
#else
  std::vector<Tier> tiers;
  std::size_t pos = 0;
  while (pos < tiers_arg.size()) {
    const std::size_t comma = tiers_arg.find(',', pos);
    const std::string label =
        tiers_arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? tiers_arg.size() : comma + 1;
    if (label == "swarp-8") {
      tiers.push_back({label, 8});
    } else if (label == "swarp-32") {
      tiers.push_back({label, 32});
    } else {
      std::fprintf(stderr, "unknown tier '%s' (use swarp-8, swarp-32)\n",
                   label.c_str());
      return 1;
    }
  }

  json::Array tier_results;
  for (const Tier& tier : tiers) {
    tier_results.push_back(run_tier(tier, reps));
  }
  json::Object root;
  root.set("schema", std::string("bbsim.bench.critpath.v1"));
  root.set("tiers", json::Value(std::move(tier_results)));
  json::write_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
#endif
}
