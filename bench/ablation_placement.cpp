// Ablation -- the data-placement heuristic space (the paper's stated future
// work): compare placement policies on the 1000Genomes workflow on both
// architectures.
#include "bench_common.hpp"
#include "workflow/genomes.hpp"

using namespace bbsim;

int main() {
  bench::banner("Ablation: data placement heuristics", "paper Section V",
                "1000Genomes (903 tasks) makespan under different placement "
                "policies, Cori vs. Summit models (8 nodes).");

  const wf::Workflow workflow = wf::make_1000genomes({});
  const int kComputeNodes = 8;

  std::vector<std::shared_ptr<exec::PlacementPolicy>> policies = {
      exec::all_pfs_policy(),
      exec::all_bb_policy(),
      std::make_shared<exec::FractionPolicy>(0.5, exec::Tier::BurstBuffer),
      std::make_shared<exec::SizeThresholdPolicy>(100e6),
      std::make_shared<exec::SizeThresholdPolicy>(100e6, /*invert=*/true),
      std::make_shared<exec::LocalityPolicy>(),
      std::make_shared<exec::GreedyBytesPolicy>(20e9),
  };

  analysis::Table t({"policy", "cori makespan (s)", "cori vs all-PFS",
                     "summit makespan (s)", "summit vs all-PFS", "demoted writes"});
  std::map<std::string, double> base;
  for (const auto& policy : policies) {
    std::vector<std::string> row{policy->name()};
    std::size_t demoted = 0;
    for (const auto system : {testbed::System::CoriPrivate, testbed::System::Summit}) {
      exec::ExecutionConfig cfg;
      cfg.placement = policy;
      cfg.stage_in_mode = exec::StageInMode::Instant;
      cfg.collect_trace = false;
      exec::Simulation sim(testbed::paper_platform(system, kComputeNodes), workflow,
                           cfg);
      const exec::Result r = sim.run();
      const std::string key = to_string(system);
      if (base.count(key) == 0) base[key] = r.makespan;  // first policy = all-PFS
      row.push_back(util::format("%.0f", r.makespan));
      row.push_back(util::format("%.2fx", base[key] / r.makespan));
      demoted += r.demoted_writes;
    }
    row.push_back(std::to_string(demoted));
    t.add_row(std::move(row));
  }
  t.print();
  bench::save_csv(t, "ablation_placement.csv");
  std::printf("\nReading: staging the heavy, high-fan-out inputs (greedy/all-BB) "
              "dominates; size-threshold catches the many small files; on "
              "Summit, locality demotions show the on-node sharing limits the "
              "paper discusses.\n");
  return 0;
}
