// Table I -- input parameters used in simulation (paper Section IV-A).
//
// Prints the calibration parameters fed to the simple model (exactly the
// paper's Table I) and the fidelity overlays the testbed emulator adds on
// top of them (our substitution for the real machines).
#include "bench_common.hpp"
#include "platform/presets.hpp"
#include "util/units.hpp"

using namespace bbsim;

namespace {

std::string fmt_bw(double v) {
  return v == platform::kUnlimited ? "unlimited" : util::format_bandwidth(v);
}

}  // namespace

int main() {
  bench::banner("Table I", "paper Section IV-A",
                "Input parameters used in simulation for evaluating the accuracy "
                "of the proposed model.");

  analysis::Table t({"system", "core speed", "BB net", "BB disk", "PFS net",
                     "PFS disk", "cores/node"});
  {
    const auto cori = testbed::paper_platform(testbed::System::CoriPrivate);
    const auto& bb = cori.storage[cori.find_kind(platform::StorageKind::SharedBB)];
    const auto& pfs = cori.storage[cori.find_kind(platform::StorageKind::PFS)];
    t.add_row({"Cori", util::format("%.2f GFlop/s/core", cori.hosts[0].core_speed / 1e9),
               fmt_bw(bb.link.bandwidth), fmt_bw(bb.disk.read_bw),
               fmt_bw(pfs.link.bandwidth), fmt_bw(pfs.disk.read_bw),
               std::to_string(cori.hosts[0].cores)});
  }
  {
    const auto summit = testbed::paper_platform(testbed::System::Summit);
    const auto& bb = summit.storage[summit.find_kind(platform::StorageKind::NodeLocalBB)];
    const auto& pfs = summit.storage[summit.find_kind(platform::StorageKind::PFS)];
    t.add_row({"Summit",
               util::format("%.2f GFlop/s/core", summit.hosts[0].core_speed / 1e9),
               fmt_bw(bb.link.bandwidth), fmt_bw(bb.disk.read_bw),
               fmt_bw(pfs.link.bandwidth), fmt_bw(pfs.disk.read_bw),
               std::to_string(summit.hosts[0].cores)});
  }
  std::printf("Paper Table I (simple-model inputs):\n");
  t.print();
  bench::save_csv(t, "table1_platforms.csv");

  std::printf("\nTestbed fidelity overlays (our substitution for the real "
              "machines; see DESIGN.md):\n");
  analysis::Table f({"system", "BB nodes", "BB stream cap", "BB latency",
                     "BB metadata", "device read/write"});
  for (const auto system : bench::kAllSystems) {
    const auto p = testbed::testbed_platform(system, {});
    const auto& bb = p.storage[1];
    f.add_row({to_string(system), std::to_string(bb.num_nodes),
               fmt_bw(bb.stream_bw), util::format_time(bb.base_latency),
               util::format("%.0f ops/s", bb.metadata_ops_per_sec),
               fmt_bw(bb.disk.read_bw) + " / " + fmt_bw(bb.disk.write_bw)});
  }
  f.print();
  bench::save_csv(f, "table1_testbed_overlays.csv");
  return 0;
}
