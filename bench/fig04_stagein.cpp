// Figure 4 -- execution time of the SWarp Stage-In task vs. the percentage
// of input files stored in burst buffers (1 pipeline, 32 cores per task).
//
// Paper findings reproduced here:
//   * stage-in time grows linearly with the staged volume;
//   * the on-node implementation (Summit) outperforms the shared one (Cori)
//     by up to ~5x;
//   * both Cori modes show run-to-run variability (competing load);
//   * the striped mode shows a reproducible anomaly at 75% staged.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 4", "stage-in cost",
                "Stage-In execution time vs. % of input files staged into the BB "
                "(SWarp, 1 pipeline, 32 cores; mean ± stddev over 15 runs).");

  const wf::Workflow workflow = wf::make_swarp({});
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::vector<analysis::Series> series;
  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions opt;
    const testbed::Testbed tb(system, opt);
    analysis::Series s;
    s.label = to_string(system);
    for (const double fraction : fractions) {
      exec::ExecutionConfig cfg;
      cfg.placement =
          std::make_shared<exec::FractionPolicy>(fraction, exec::Tier::BurstBuffer);
      const auto results = tb.run_repetitions(workflow, cfg, fraction);
      const auto stats = testbed::Testbed::summarize(results);
      s.add(fraction * 100.0, stats.stage_in.mean, stats.stage_in.stddev);
    }
    series.push_back(std::move(s));
  }

  analysis::Table t = analysis::series_table("% files in BB", series);
  std::printf("Stage-In execution time (seconds):\n");
  t.print();
  bench::save_csv(t, "fig04_stagein.csv");

  // Headline checks (printed, not asserted -- benches report, tests assert).
  const analysis::Series& priv = series[0];
  const analysis::Series& summit = series[2];
  if (priv.y.back() > 0 && summit.y.back() > 0) {
    std::printf("\nShared(private)/on-node stage-in ratio at 100%%: %.1fx "
                "(paper: up to ~5x)\n",
                priv.y.back() / summit.y.back());
  }
  const analysis::Series& striped = series[1];
  std::printf("Striped anomaly: t(75%%)=%.2fs vs linear-expected=%.2fs\n",
              striped.y[3], 0.75 * striped.y.back());
  return 0;
}
