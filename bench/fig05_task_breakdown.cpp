// Figure 5 -- Resample and Combine execution time vs. % of input files in
// the BB, with intermediate files on either the BB or the PFS; six panels:
// {private, striped, on-node} x {Resample, Combine} (1 pipeline, 32 cores).
//
// Paper findings reproduced here:
//   * private mode: writing intermediates to the BB beats the PFS (up to
//     ~1.5x) and more inputs in the BB helps Resample;
//   * striped mode: much slower overall (metadata pathology of the 1:N
//     pattern), reads from the PFS can beat reads from the BB;
//   * on-node: fast and flat, with BB placement slightly ahead.
#include "bench_common.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 5", "task-level storage impact",
                "Resample/Combine execution time (s) vs. % input files in BB; "
                "intermediates in BB or PFS (SWarp, 1 pipeline, 32 cores).");

  const wf::Workflow workflow = wf::make_swarp({});
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};

  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions opt;
    const testbed::Testbed tb(system, opt);

    for (const char* task_type : {"resample", "combine"}) {
      std::vector<analysis::Series> panel;
      for (const exec::Tier tier : {exec::Tier::BurstBuffer, exec::Tier::PFS}) {
        analysis::Series s;
        s.label = std::string("intermediates=") + exec::to_string(tier);
        for (const double fraction : fractions) {
          exec::ExecutionConfig cfg;
          cfg.placement = std::make_shared<exec::FractionPolicy>(fraction, tier);
          const auto results = tb.run_repetitions(workflow, cfg, fraction);
          const auto stats = testbed::Testbed::summarize(results);
          const auto& d = stats.duration_by_type.at(task_type);
          s.add(fraction * 100.0, d.mean, d.stddev);
        }
        panel.push_back(std::move(s));
      }
      analysis::Table t = analysis::series_table("% input in BB", panel);
      std::printf("--- %s / %s ---\n", to_string(system), task_type);
      t.print();
      bench::save_csv(t, util::format("fig05_%s_%s.csv", to_string(system), task_type));
      std::printf("\n");
    }
  }

  std::printf("Summary: compare panel magnitudes -- private ~ seconds, striped "
              "~ 10-100x slower, on-node fastest (paper Fig. 5).\n");
  return 0;
}
