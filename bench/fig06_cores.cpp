// Figure 6 -- task execution time vs. cores per task (1 pipeline, all input
// files staged into burst buffers).
//
// Paper findings reproduced here:
//   * Resample benefits from parallelism up to ~8 cores (shared BB) /
//     ~16 cores (on-node), then flattens;
//   * Combine barely benefits (its coaddition serialises on locks);
//   * the mode/architecture ranking does not depend on the core count.
#include "bench_common.hpp"
#include "model/fitting.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 6", "cores per task",
                "Resample/Combine execution time (s) vs. cores per task "
                "(SWarp, 1 pipeline, all inputs staged into the BB).");

  const std::vector<int> cores_sweep = {1, 2, 4, 8, 16, 32};

  for (const char* task_type : {"resample", "combine"}) {
    std::vector<analysis::Series> panel;
    for (const auto system : bench::kAllSystems) {
      testbed::TestbedOptions opt;
      const testbed::Testbed tb(system, opt);
      analysis::Series s;
      s.label = to_string(system);
      for (const int cores : cores_sweep) {
        wf::SwarpConfig scfg;
        scfg.cores_per_task = cores;
        const wf::Workflow workflow = wf::make_swarp(scfg);
        exec::ExecutionConfig cfg;
        cfg.placement = exec::all_bb_policy();
        const auto results = tb.run_repetitions(workflow, cfg, 1.0);
        const auto stats = testbed::Testbed::summarize(results);
        const auto& d = stats.duration_by_type.at(task_type);
        s.add(cores, d.mean, d.stddev);
      }
      panel.push_back(std::move(s));
    }
    analysis::Table t = analysis::series_table("cores", panel);
    std::printf("--- %s ---\n", task_type);
    t.print();
    bench::save_csv(t, util::format("fig06_%s.csv", task_type));

    // Where does the speedup flatten? (plateau = first core count whose
    // gain over the previous step is < 10%), plus the Amdahl alpha the
    // "measurements" imply -- the parameter the paper's Eq. (4) sets to 0.
    for (const analysis::Series& s : panel) {
      int plateau = cores_sweep.back();
      for (std::size_t i = 1; i < s.y.size(); ++i) {
        if (s.y[i - 1] / s.y[i] < 1.10) {
          plateau = static_cast<int>(s.x[i - 1]);
          break;
        }
      }
      std::vector<model::ScalingSample> samples;
      for (std::size_t i = 0; i < s.size(); ++i) {
        samples.push_back({static_cast<int>(s.x[i]), s.y[i]});
      }
      const model::AmdahlFit fit = model::fit_amdahl(samples);
      std::printf("  %-14s plateau ~%2d cores, fitted Amdahl alpha %.2f "
                  "(paper's model assumes 0)\n",
                  s.label.c_str(), plateau, fit.alpha);
    }
    std::printf("\n");
  }
  return 0;
}
