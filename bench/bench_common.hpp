// Shared helpers for the experiment binaries.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "exec/engine.hpp"
#include "model/calibration.hpp"
#include "testbed/testbed.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"
#include "workflow/swarp.hpp"

namespace bbsim::bench {

/// Print a standard experiment banner.
inline void banner(const std::string& experiment, const std::string& paper_ref,
                   const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s  (%s)\n", experiment.c_str(), paper_ref.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

/// The three systems of the paper's characterization, in figure order.
inline const std::vector<testbed::System> kAllSystems = {
    testbed::System::CoriPrivate, testbed::System::CoriStriped,
    testbed::System::Summit};

/// Calibrate a copy of `workflow` from testbed observations and run the
/// simple (Table I) model -- the paper's Section IV-B methodology.
inline exec::Result simple_model_run(
    testbed::System system, const wf::Workflow& workflow,
    const std::map<std::string, model::TaskObservation>& observations,
    const exec::ExecutionConfig& config, int compute_nodes = 1) {
  wf::Workflow calibrated = workflow;
  const platform::PlatformSpec plat = testbed::paper_platform(system, compute_nodes);
  model::calibrate_workflow(calibrated, observations, plat.hosts[0].core_speed);
  exec::Simulation sim(plat, calibrated, config);
  return sim.run();
}

/// Write a CSV and tell the user where it went.
inline void save_csv(const analysis::Table& table, const std::string& filename) {
  table.write_csv(filename);
  std::printf("\n[csv] wrote %s\n", filename.c_str());
}

}  // namespace bbsim::bench
