// Sweep scaling -- serial vs. parallel execution of the SWarp validation
// sweep (the Figure 10 campaign: systems x staged fractions x repetitions).
//
// Every simulation in the campaign is independent, so sweep::SweepRunner
// should scale with worker count while producing a byte-identical report.
// This bench measures the wall time of the same sweep at 1/2/4/8 workers,
// verifies report identity, and writes BENCH_sweep.json.
//
// Speedups are bounded by the physical core count: on an N-core machine
// expect ~min(jobs, N)x; the JSON records hardware_threads so results can
// be interpreted.
#include <chrono>

#include "bench_common.hpp"
#include "json/json.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

using namespace bbsim;

namespace {

/// The Figure 10 measurement campaign as independent sweep runs.
std::vector<sweep::RunSpec> validation_sweep(const wf::Workflow& workflow,
                                             const std::vector<testbed::Testbed>& tbs,
                                             int reps) {
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<sweep::RunSpec> specs;
  for (const testbed::Testbed& tb : tbs) {
    for (const double fraction : fractions) {
      for (int rep = 0; rep < reps; ++rep) {
        specs.push_back(sweep::RunSpec{
            util::format("%s/frac%.2f/rep%d", to_string(tb.system()), fraction, rep),
            [&tb, &workflow, fraction, rep] {
              exec::ExecutionConfig cfg;
              cfg.placement = std::make_shared<exec::FractionPolicy>(
                  fraction, exec::Tier::BurstBuffer);
              cfg.collect_trace = false;
              return tb.run_once(workflow, cfg,
                                 static_cast<unsigned long long>(rep), fraction);
            }});
      }
    }
  }
  return specs;
}

}  // namespace

int main() {
  bench::banner("Sweep scaling", "engine extension, no paper counterpart",
                "Wall time of the SWarp validation sweep (Fig. 10 campaign) at "
                "1/2/4/8 workers; parallel reports must be byte-identical to "
                "serial.");

  const wf::Workflow workflow = wf::make_swarp({});
  constexpr int kReps = 5;
  std::vector<testbed::Testbed> testbeds;
  for (const auto system : bench::kAllSystems) {
    testbed::TestbedOptions opt;
    opt.repetitions = kReps;
    testbeds.emplace_back(system, opt);
  }
  const std::vector<sweep::RunSpec> specs = validation_sweep(workflow, testbeds, kReps);
  std::printf("campaign: %zu independent simulations, %d hardware threads\n\n",
              specs.size(), sweep::effective_jobs(0));

  analysis::Table t({"jobs", "wall (s)", "speedup", "report"});
  json::Array measurements;
  double serial_wall = 0.0;
  std::string serial_report;
  bool all_identical = true;
  for (const int jobs : {1, 2, 4, 8}) {
    sweep::SweepOptions sopt;
    sopt.jobs = jobs;
    const sweep::SweepRunner runner(sopt);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<sweep::RunOutcome> outcomes = runner.run(specs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // Timings excluded: the deterministic report must not depend on `jobs`.
    const std::string report =
        sweep::sweep_report("swarp-validation", outcomes, false).dump();
    if (jobs == 1) {
      serial_wall = wall;
      serial_report = report;
    }
    const bool identical = report == serial_report;
    all_identical = all_identical && identical;
    const double speedup = wall > 0 ? serial_wall / wall : 0.0;
    t.add_row({std::to_string(jobs), util::format("%.3f", wall),
               util::format("%.2fx", speedup), identical ? "identical" : "DIVERGED"});
    json::Object m;
    m.set("jobs", jobs);
    m.set("wall_seconds", wall);
    m.set("speedup_vs_serial", speedup);
    m.set("report_identical", identical);
    measurements.push_back(json::Value(std::move(m)));
  }
  t.print();
  bench::save_csv(t, "sweep_scaling.csv");

  json::Object doc;
  doc.set("schema", "bbsim.bench.sweep.v1");
  doc.set("campaign", "swarp-validation (Fig. 10: 3 systems x 5 fractions x 5 reps)");
  doc.set("runs", specs.size());
  doc.set("hardware_threads", sweep::effective_jobs(0));
  doc.set("reports_identical", all_identical);
  doc.set("measurements", json::Value(std::move(measurements)));
  json::write_file("BENCH_sweep.json", json::Value(std::move(doc)));
  std::printf("[json] wrote BENCH_sweep.json\n");
  std::printf("\nExpected: near-linear speedup up to the physical core count; "
              "identical reports at every worker count.\n");
  return !all_identical;
}
