// Figure 13 -- predicted makespan of the 903-task 1000Genomes workflow on
// the Cori and Summit models, varying the fraction of input files allocated
// in the BB (input data ~52 GB = 77% of the ~67 GB footprint).
//
// Paper findings reproduced here:
//   * makespan decreases (performance increases) as more input lives in
//     the BB;
//   * Summit outperforms Cori (larger BB bandwidth);
//   * Cori plateaus when ~80% of the input is in the BB (bandwidth
//     saturation); Summit plateaus later (near 100%).
//
// As in the paper, this experiment is simulation-only (same calibration as
// Figures 10/11); staging happens outside the measured makespan.
#include "analysis/plot.hpp"
#include "bench_common.hpp"
#include "workflow/genomes.hpp"

using namespace bbsim;

int main() {
  bench::banner("Figure 13", "1000Genomes case study",
                "Simulated makespan vs. % of input files allocated in the BB "
                "(903 tasks, ~52 GB input, 8 compute nodes).");

  const wf::Workflow workflow = wf::make_1000genomes({});
  std::printf("workflow: %zu tasks, %.1f GB footprint, %.1f GB input (%.0f%%)\n\n",
              workflow.task_count(), workflow.total_data_bytes() / 1e9,
              workflow.input_data_bytes() / 1e9,
              100.0 * workflow.input_data_bytes() / workflow.total_data_bytes());

  const int kComputeNodes = 8;
  std::vector<analysis::Series> series;
  for (const auto system : {testbed::System::CoriPrivate, testbed::System::Summit}) {
    analysis::Series s;
    s.label = system == testbed::System::Summit ? "summit" : "cori";
    for (int pct = 0; pct <= 100; pct += 10) {
      exec::ExecutionConfig cfg;
      cfg.placement =
          std::make_shared<exec::FractionPolicy>(pct / 100.0, exec::Tier::BurstBuffer);
      cfg.stage_in_mode = exec::StageInMode::Instant;
      cfg.collect_trace = false;
      exec::Simulation sim(testbed::paper_platform(system, kComputeNodes), workflow,
                           cfg);
      s.add(pct, sim.run().makespan);
    }
    series.push_back(std::move(s));
  }

  analysis::Table t = analysis::series_table("% input in BB", series);
  t.print();
  bench::save_csv(t, "fig13_genomes_makespan.csv");

  analysis::PlotOptions popt;
  popt.x_label = "% input in BB";
  popt.y_label = "makespan (s)";
  std::printf("\n%s\n", analysis::ascii_plot(series, popt).c_str());

  // Plateau detection: first fraction after which the remaining improvement
  // is under 2% of the total gain.
  for (const analysis::Series& s : series) {
    const double total_gain = s.y.front() - s.y.back();
    double plateau = 100;
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      if (total_gain > 0 && (s.y[i] - s.y.back()) <= 0.02 * total_gain) {
        plateau = s.x[i];
        break;
      }
    }
    std::printf("%s: makespan %.0fs -> %.0fs, plateau at ~%.0f%% staged\n",
                s.label.c_str(), s.y.front(), s.y.back(), plateau);
  }
  std::printf("(paper: Cori plateaus ~80%%, Summit near 100%%; Summit faster)\n");
  return 0;
}
