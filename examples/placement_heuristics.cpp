// Placement heuristics: the paper's future-work direction -- explore the
// data-placement heuristic space on several workflow shapes and both BB
// architectures, under a constrained BB capacity so the policies actually
// have to choose.
#include <cstdio>

#include "analysis/report.hpp"
#include "util/strings.hpp"
#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"
#include "workflow/genomes.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/swarp.hpp"

using namespace bbsim;

namespace {

double run(const platform::PlatformSpec& plat, const wf::Workflow& w,
           std::shared_ptr<exec::PlacementPolicy> policy) {
  exec::ExecutionConfig cfg;
  cfg.placement = std::move(policy);
  cfg.stage_in_mode = exec::StageInMode::Instant;
  cfg.collect_trace = false;
  exec::Simulation sim(plat, w, cfg);
  return sim.run().makespan;
}

}  // namespace

int main() {
  // Workload zoo: the paper's two applications plus a random layered DAG.
  util::Rng rng(2026);
  wf::RandomDagConfig rcfg;
  rcfg.levels = 5;
  rcfg.max_width = 12;
  const std::vector<std::pair<std::string, wf::Workflow>> workloads = {
      {"swarp-8p", wf::make_swarp({.pipelines = 8, .cores_per_task = 4})},
      {"1000genomes-4ch", wf::make_1000genomes({.chromosomes = 4})},
      {"random-dag", wf::make_random_layered(rcfg, rng)},
  };

  const std::vector<std::shared_ptr<exec::PlacementPolicy>> policies = {
      exec::all_pfs_policy(),
      exec::all_bb_policy(),
      std::make_shared<exec::SizeThresholdPolicy>(64e6),
      std::make_shared<exec::LocalityPolicy>(),
      std::make_shared<exec::GreedyBytesPolicy>(4e9),
  };

  for (const auto system : {testbed::System::CoriPrivate, testbed::System::Summit}) {
    // Constrain the BB so placement is a real decision (4 GB per node).
    platform::PlatformSpec plat = testbed::paper_platform(system, 4);
    for (platform::StorageSpec& s : plat.storage) {
      if (s.kind != platform::StorageKind::PFS) s.disk.capacity = 4e9;
    }

    std::printf("=== %s (BB capacity 4 GB/node) ===\n", to_string(system));
    std::vector<std::string> header{"policy"};
    for (const auto& [name, _] : workloads) header.push_back(name + " (s)");
    analysis::Table t(header);
    std::map<std::string, double> best;
    std::map<std::string, std::string> best_policy;
    for (const auto& policy : policies) {
      std::vector<std::string> row{policy->name()};
      for (const auto& [name, w] : workloads) {
        const double makespan = run(plat, w, policy);
        row.push_back(util::format("%.1f", makespan));
        if (best.count(name) == 0 || makespan < best[name]) {
          best[name] = makespan;
          best_policy[name] = policy->name();
        }
      }
      t.add_row(std::move(row));
    }
    t.print();
    for (const auto& [name, policy] : best_policy) {
      std::printf("  best for %-18s %s (%.1f s)\n", name.c_str(), policy.c_str(),
                  best[name]);
    }
    std::printf("\n");
  }
  std::printf("Takeaway: no single policy wins everywhere -- exactly why the "
              "paper calls for simulator-driven heuristic exploration.\n");
  return 0;
}
