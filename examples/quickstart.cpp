// Quickstart: build a platform, describe a workflow, pick a placement
// policy, simulate, and inspect the result. Mirrors the README walkthrough.
#include <cstdio>

#include "exec/engine.hpp"
#include "platform/presets.hpp"
#include "util/units.hpp"
#include "workflow/workflow.hpp"

using namespace bbsim;

int main() {
  // 1. A platform: Cori-like, one 32-core Haswell node, shared burst buffer
  //    in private mode (all Table I values preloaded).
  platform::PresetOptions popt;
  popt.bb_mode = platform::BBMode::Private;
  platform::PlatformSpec machine = platform::cori_platform(popt);

  // 2. A workflow: two tasks connected by a 256 MB intermediate file.
  wf::Workflow w;
  w.name = "quickstart";
  w.add_file({"input.dat", 1 * util::GB});
  w.add_file({"intermediate.dat", 256 * util::MB});
  w.add_file({"result.dat", 64 * util::MB});
  wf::Task producer;
  producer.name = "produce";
  producer.type = "compute";
  producer.flops = 60.0 * machine.hosts[0].core_speed;  // 60 s sequential
  producer.requested_cores = 16;
  producer.inputs = {"input.dat"};
  producer.outputs = {"intermediate.dat"};
  w.add_task(producer);
  wf::Task consumer;
  consumer.name = "consume";
  consumer.type = "compute";
  consumer.flops = 30.0 * machine.hosts[0].core_speed;
  consumer.requested_cores = 16;
  consumer.inputs = {"intermediate.dat"};
  consumer.outputs = {"result.dat"};
  w.add_task(consumer);

  // 3. A placement policy: stage all inputs into the BB, keep intermediates
  //    there too, final results on the PFS.
  exec::ExecutionConfig cfg;
  cfg.placement = exec::all_bb_policy();

  // 4. Simulate.
  exec::Simulation sim(machine, w, cfg);
  const exec::Result r = sim.run();

  // 5. Inspect.
  std::printf("makespan: %.2f s (stage-in %.2f s + workflow %.2f s)\n", r.makespan,
              r.stage_in_duration, r.workflow_span);
  for (const auto& [name, rec] : r.tasks) {
    std::printf("  %-10s host=%zu cores=%d read=%.2fs compute=%.2fs write=%.2fs "
                "(lambda_io=%.2f)\n",
                name.c_str(), rec.host, rec.cores, rec.read_time(),
                rec.compute_time(), rec.write_time(), rec.lambda_io());
  }
  for (const auto& s : r.storage) {
    std::printf("  storage %-4s served %s at %s\n", s.service.c_str(),
                util::format_size(s.bytes_served).c_str(),
                util::format_bandwidth(s.achieved_bandwidth()).c_str());
  }

  // 6. Compare against an all-PFS run.
  exec::ExecutionConfig pfs_cfg;
  pfs_cfg.placement = exec::all_pfs_policy();
  exec::Simulation pfs_sim(machine, w, pfs_cfg);
  const double pfs_makespan = pfs_sim.run().makespan;
  std::printf("all-PFS makespan: %.2f s -> burst buffer speedup %.2fx\n",
              pfs_makespan, pfs_makespan / r.makespan);
  return 0;
}
