// SWarp study: the paper's Section III characterization in miniature --
// run the SWarp workflow on all three testbed systems, sweep the staging
// fraction, and print a compact comparison (the full sweeps live in bench/).
//
// The (system x fraction x repetition) grid is embarrassingly parallel, so
// it runs through sweep::SweepRunner: one isolated simulation stack per
// repetition, results in deterministic grid order regardless of worker
// count. Usage: swarp_study [pipelines] [jobs]   (jobs 0 = all hardware
// threads, the default).
#include <cstdio>

#include "analysis/report.hpp"
#include "sweep/runner.hpp"
#include "util/strings.hpp"
#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "workflow/swarp.hpp"
#include "workflow/wfformat.hpp"

using namespace bbsim;

int main(int argc, char** argv) {
  int pipelines = 4;
  if (argc > 1) pipelines = std::max(1, std::atoi(argv[1]));
  int jobs = 0;  // default: one worker per hardware thread
  if (argc > 2) jobs = std::max(0, std::atoi(argv[2]));

  wf::SwarpConfig scfg;
  scfg.pipelines = pipelines;
  scfg.cores_per_task = 8;
  const wf::Workflow workflow = wf::make_swarp(scfg);
  std::printf("SWarp: %d pipelines, %zu tasks, %.0f MiB input per pipeline\n\n",
              pipelines, workflow.task_count(),
              workflow.input_data_bytes() / (1024.0 * 1024.0) / pipelines);

  // Export the workflow so it can be inspected / reloaded.
  wf::save_workflow("swarp_workflow.json", workflow);
  std::printf("[json] wrote swarp_workflow.json\n\n");

  const std::vector<testbed::System> systems = {testbed::System::CoriPrivate,
                                                testbed::System::CoriStriped,
                                                testbed::System::Summit};
  const std::vector<double> fractions = {0.0, 0.5, 1.0};
  constexpr int kReps = 5;

  // One testbed per system; run_once is const and safe to share between
  // workers. One sweep run per repetition of every (system, fraction) cell.
  std::vector<testbed::Testbed> testbeds;
  for (const auto system : systems) {
    testbed::TestbedOptions opt;
    opt.repetitions = kReps;
    testbeds.emplace_back(system, opt);
  }
  std::vector<sweep::RunSpec> specs;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (const double fraction : fractions) {
      for (int rep = 0; rep < kReps; ++rep) {
        const testbed::Testbed& tb = testbeds[s];
        specs.push_back(sweep::RunSpec{
            util::format("%s/frac%.1f/rep%d", to_string(systems[s]), fraction, rep),
            [&tb, &workflow, fraction, rep] {
              exec::ExecutionConfig cfg;
              cfg.placement = std::make_shared<exec::FractionPolicy>(
                  fraction, exec::Tier::BurstBuffer);
              cfg.collect_trace = false;
              return tb.run_once(workflow, cfg,
                                 static_cast<unsigned long long>(rep), fraction);
            }});
      }
    }
  }

  sweep::SweepOptions sopt;
  sopt.jobs = jobs;
  const std::vector<sweep::RunOutcome> outcomes = sweep::SweepRunner(sopt).run(specs);

  analysis::Table t({"system", "% staged", "stage-in (s)", "resample (s)",
                     "combine (s)", "makespan (s)"});
  std::size_t next = 0;  // outcomes are in grid order: system, fraction, rep
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (const double fraction : fractions) {
      std::vector<exec::Result> cell;
      for (int rep = 0; rep < kReps; ++rep, ++next) {
        if (!outcomes[next].ok) {
          std::fprintf(stderr, "FAILED %s: %s\n", outcomes[next].name.c_str(),
                       outcomes[next].error.c_str());
          continue;
        }
        cell.push_back(outcomes[next].result);
      }
      if (cell.empty()) continue;
      const auto stats = testbed::Testbed::summarize(cell);
      t.add_row({to_string(systems[s]), util::format("%.0f", fraction * 100),
                 util::format("%.2f", stats.stage_in.mean),
                 util::format("%.2f", stats.duration_by_type.at("resample").mean),
                 util::format("%.2f", stats.duration_by_type.at("combine").mean),
                 util::format("%.2f", stats.makespan.mean)});
    }
  }
  t.print();
  std::printf("\nExpected shape (paper Figs 4-8): on-node < private << striped;\n"
              "staging more input helps private/on-node, hurts striped little.\n");
  return 0;
}
