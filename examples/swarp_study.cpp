// SWarp study: the paper's Section III characterization in miniature --
// run the SWarp workflow on all three testbed systems, sweep the staging
// fraction, and print a compact comparison (the full sweeps live in bench/).
#include <cstdio>

#include "analysis/report.hpp"
#include "util/strings.hpp"
#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "workflow/swarp.hpp"
#include "workflow/wfformat.hpp"

using namespace bbsim;

int main(int argc, char** argv) {
  int pipelines = 4;
  if (argc > 1) pipelines = std::max(1, std::atoi(argv[1]));

  wf::SwarpConfig scfg;
  scfg.pipelines = pipelines;
  scfg.cores_per_task = 8;
  const wf::Workflow workflow = wf::make_swarp(scfg);
  std::printf("SWarp: %d pipelines, %zu tasks, %.0f MiB input per pipeline\n\n",
              pipelines, workflow.task_count(),
              workflow.input_data_bytes() / (1024.0 * 1024.0) / pipelines);

  // Export the workflow so it can be inspected / reloaded.
  wf::save_workflow("swarp_workflow.json", workflow);
  std::printf("[json] wrote swarp_workflow.json\n\n");

  analysis::Table t({"system", "% staged", "stage-in (s)", "resample (s)",
                     "combine (s)", "makespan (s)"});
  for (const auto system : {testbed::System::CoriPrivate, testbed::System::CoriStriped,
                            testbed::System::Summit}) {
    testbed::TestbedOptions opt;
    opt.repetitions = 5;
    const testbed::Testbed tb(system, opt);
    for (const double fraction : {0.0, 0.5, 1.0}) {
      exec::ExecutionConfig cfg;
      cfg.placement =
          std::make_shared<exec::FractionPolicy>(fraction, exec::Tier::BurstBuffer);
      cfg.collect_trace = false;
      const auto stats =
          testbed::Testbed::summarize(tb.run_repetitions(workflow, cfg, fraction));
      t.add_row({to_string(system), util::format("%.0f", fraction * 100),
                 util::format("%.2f", stats.stage_in.mean),
                 util::format("%.2f", stats.duration_by_type.at("resample").mean),
                 util::format("%.2f", stats.duration_by_type.at("combine").mean),
                 util::format("%.2f", stats.makespan.mean)});
    }
  }
  t.print();
  std::printf("\nExpected shape (paper Figs 4-8): on-node < private << striped;\n"
              "staging more input helps private/on-node, hurts striped little.\n");
  return 0;
}
