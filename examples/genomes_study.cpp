// 1000Genomes study: the paper's Section IV-C case study -- simulate the
// 903-task workflow on the Cori and Summit models, sweep the staged input
// fraction, and report makespans and speedups.
//
// The 6 fractions x 2 platforms grid runs through sweep::SweepRunner: the
// simulations are independent, so workers execute them concurrently and
// the outcomes come back in grid order for the table below. Usage:
// genomes_study [chromosomes] [jobs]   (jobs 0 = all hardware threads,
// the default).
#include <cstdio>

#include "analysis/report.hpp"
#include "sweep/runner.hpp"
#include "util/strings.hpp"
#include "exec/engine.hpp"
#include "testbed/testbed.hpp"
#include "workflow/genomes.hpp"
#include "workflow/wfformat.hpp"

using namespace bbsim;

int main(int argc, char** argv) {
  wf::GenomesConfig gcfg;
  if (argc > 1) gcfg.chromosomes = std::max(1, std::atoi(argv[1]));
  int jobs = 0;  // default: one worker per hardware thread
  if (argc > 2) jobs = std::max(0, std::atoi(argv[2]));
  const wf::Workflow workflow = wf::make_1000genomes(gcfg);
  std::printf("1000Genomes: %zu tasks over %d chromosomes, %.1f GB footprint "
              "(%.1f GB input)\n\n",
              workflow.task_count(), gcfg.chromosomes,
              workflow.total_data_bytes() / 1e9, workflow.input_data_bytes() / 1e9);

  wf::save_workflow("genomes_workflow.json", workflow);
  std::printf("[json] wrote genomes_workflow.json\n\n");

  // Scale the machine with the instance so smaller configurations still
  // exercise contention (one node per ~3 chromosomes, as 8 nodes serve the
  // full 22-chromosome instance in bench_fig13).
  const int kComputeNodes = std::max(2, gcfg.chromosomes * 8 / 22);
  const std::vector<testbed::System> systems = {testbed::System::CoriPrivate,
                                                testbed::System::Summit};

  std::vector<sweep::RunSpec> specs;
  for (int pct = 0; pct <= 100; pct += 20) {
    for (const auto system : systems) {
      specs.push_back(sweep::RunSpec{
          util::format("%s/%d%%", to_string(system), pct),
          [&workflow, system, pct, kComputeNodes] {
            exec::ExecutionConfig cfg;
            cfg.placement = std::make_shared<exec::FractionPolicy>(
                pct / 100.0, exec::Tier::BurstBuffer);
            cfg.stage_in_mode = exec::StageInMode::Instant;
            cfg.collect_trace = false;
            exec::Simulation sim(testbed::paper_platform(system, kComputeNodes),
                                 workflow, cfg);
            return sim.run();
          }});
    }
  }
  sweep::SweepOptions sopt;
  sopt.jobs = jobs;
  const std::vector<sweep::RunOutcome> outcomes = sweep::SweepRunner(sopt).run(specs);

  analysis::Table t({"% input in BB", "cori (s)", "cori speedup", "summit (s)",
                     "summit speedup"});
  double cori_base = 0, summit_base = 0;
  std::size_t next = 0;  // outcomes in grid order: pct, then system
  for (int pct = 0; pct <= 100; pct += 20) {
    std::vector<std::string> row{util::format("%d", pct)};
    for (const auto system : systems) {
      const sweep::RunOutcome& outcome = outcomes[next++];
      if (!outcome.ok) {
        std::fprintf(stderr, "FAILED %s: %s\n", outcome.name.c_str(),
                     outcome.error.c_str());
        row.push_back("-");
        row.push_back("-");
        continue;
      }
      const double makespan = outcome.result.makespan;
      double& base = system == testbed::System::Summit ? summit_base : cori_base;
      if (pct == 0) base = makespan;
      row.push_back(util::format("%.0f", makespan));
      row.push_back(util::format("%.2fx", base / makespan));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nExpected shape (paper Figs 13-14): both improve with staging; "
              "Summit faster; Cori plateaus earlier (~80%%).\n");
  return 0;
}
