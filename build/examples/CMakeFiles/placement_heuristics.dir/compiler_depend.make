# Empty compiler generated dependencies file for placement_heuristics.
# This may be replaced when dependencies are built.
