file(REMOVE_RECURSE
  "CMakeFiles/placement_heuristics.dir/placement_heuristics.cpp.o"
  "CMakeFiles/placement_heuristics.dir/placement_heuristics.cpp.o.d"
  "placement_heuristics"
  "placement_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
