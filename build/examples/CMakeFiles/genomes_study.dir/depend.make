# Empty dependencies file for genomes_study.
# This may be replaced when dependencies are built.
