file(REMOVE_RECURSE
  "CMakeFiles/genomes_study.dir/genomes_study.cpp.o"
  "CMakeFiles/genomes_study.dir/genomes_study.cpp.o.d"
  "genomes_study"
  "genomes_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomes_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
