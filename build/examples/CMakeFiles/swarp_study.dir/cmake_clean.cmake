file(REMOVE_RECURSE
  "CMakeFiles/swarp_study.dir/swarp_study.cpp.o"
  "CMakeFiles/swarp_study.dir/swarp_study.cpp.o.d"
  "swarp_study"
  "swarp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
