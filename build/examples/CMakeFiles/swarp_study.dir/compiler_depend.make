# Empty compiler generated dependencies file for swarp_study.
# This may be replaced when dependencies are built.
