file(REMOVE_RECURSE
  "CMakeFiles/bbsim_run.dir/bbsim_run_main.cpp.o"
  "CMakeFiles/bbsim_run.dir/bbsim_run_main.cpp.o.d"
  "bbsim_run"
  "bbsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
