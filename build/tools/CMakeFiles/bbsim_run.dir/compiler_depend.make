# Empty compiler generated dependencies file for bbsim_run.
# This may be replaced when dependencies are built.
