# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
