file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_stagein.dir/fig04_stagein.cpp.o"
  "CMakeFiles/bench_fig04_stagein.dir/fig04_stagein.cpp.o.d"
  "bench_fig04_stagein"
  "bench_fig04_stagein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_stagein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
