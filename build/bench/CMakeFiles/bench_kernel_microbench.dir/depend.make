# Empty dependencies file for bench_kernel_microbench.
# This may be replaced when dependencies are built.
