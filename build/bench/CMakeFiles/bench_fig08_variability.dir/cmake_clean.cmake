file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_variability.dir/fig08_variability.cpp.o"
  "CMakeFiles/bench_fig08_variability.dir/fig08_variability.cpp.o.d"
  "bench_fig08_variability"
  "bench_fig08_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
