# Empty dependencies file for bench_fig14_genomes_speedup.
# This may be replaced when dependencies are built.
