file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_genomes_speedup.dir/fig14_genomes_speedup.cpp.o"
  "CMakeFiles/bench_fig14_genomes_speedup.dir/fig14_genomes_speedup.cpp.o.d"
  "bench_fig14_genomes_speedup"
  "bench_fig14_genomes_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_genomes_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
