# Empty compiler generated dependencies file for bench_fig13_genomes_makespan.
# This may be replaced when dependencies are built.
