file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_genomes_makespan.dir/fig13_genomes_makespan.cpp.o"
  "CMakeFiles/bench_fig13_genomes_makespan.dir/fig13_genomes_makespan.cpp.o.d"
  "bench_fig13_genomes_makespan"
  "bench_fig13_genomes_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_genomes_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
