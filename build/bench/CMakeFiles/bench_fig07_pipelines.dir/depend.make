# Empty dependencies file for bench_fig07_pipelines.
# This may be replaced when dependencies are built.
