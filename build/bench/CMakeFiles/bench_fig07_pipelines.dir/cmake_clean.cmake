file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_pipelines.dir/fig07_pipelines.cpp.o"
  "CMakeFiles/bench_fig07_pipelines.dir/fig07_pipelines.cpp.o.d"
  "bench_fig07_pipelines"
  "bench_fig07_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
