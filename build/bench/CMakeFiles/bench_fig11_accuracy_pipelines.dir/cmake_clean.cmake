file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_accuracy_pipelines.dir/fig11_accuracy_pipelines.cpp.o"
  "CMakeFiles/bench_fig11_accuracy_pipelines.dir/fig11_accuracy_pipelines.cpp.o.d"
  "bench_fig11_accuracy_pipelines"
  "bench_fig11_accuracy_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_accuracy_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
