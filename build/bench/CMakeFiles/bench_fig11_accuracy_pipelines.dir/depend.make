# Empty dependencies file for bench_fig11_accuracy_pipelines.
# This may be replaced when dependencies are built.
