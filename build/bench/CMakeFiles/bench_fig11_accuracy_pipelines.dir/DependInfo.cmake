
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_accuracy_pipelines.cpp" "bench/CMakeFiles/bench_fig11_accuracy_pipelines.dir/fig11_accuracy_pipelines.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_accuracy_pipelines.dir/fig11_accuracy_pipelines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/bbsim_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/bbsim_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bbsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bbsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bbsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/bbsim_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/bbsim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/bbsim_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/bbsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
