file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_bandwidth.dir/fig09_bandwidth.cpp.o"
  "CMakeFiles/bench_fig09_bandwidth.dir/fig09_bandwidth.cpp.o.d"
  "bench_fig09_bandwidth"
  "bench_fig09_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
