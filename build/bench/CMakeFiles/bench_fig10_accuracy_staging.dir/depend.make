# Empty dependencies file for bench_fig10_accuracy_staging.
# This may be replaced when dependencies are built.
