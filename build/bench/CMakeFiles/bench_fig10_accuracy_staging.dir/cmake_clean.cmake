file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_accuracy_staging.dir/fig10_accuracy_staging.cpp.o"
  "CMakeFiles/bench_fig10_accuracy_staging.dir/fig10_accuracy_staging.cpp.o.d"
  "bench_fig10_accuracy_staging"
  "bench_fig10_accuracy_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_accuracy_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
