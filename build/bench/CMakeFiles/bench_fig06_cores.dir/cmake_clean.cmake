file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cores.dir/fig06_cores.cpp.o"
  "CMakeFiles/bench_fig06_cores.dir/fig06_cores.cpp.o.d"
  "bench_fig06_cores"
  "bench_fig06_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
