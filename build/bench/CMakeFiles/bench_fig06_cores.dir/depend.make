# Empty dependencies file for bench_fig06_cores.
# This may be replaced when dependencies are built.
