file(REMOVE_RECURSE
  "CMakeFiles/bbsim_analysis.dir/plot.cpp.o"
  "CMakeFiles/bbsim_analysis.dir/plot.cpp.o.d"
  "CMakeFiles/bbsim_analysis.dir/report.cpp.o"
  "CMakeFiles/bbsim_analysis.dir/report.cpp.o.d"
  "CMakeFiles/bbsim_analysis.dir/stats.cpp.o"
  "CMakeFiles/bbsim_analysis.dir/stats.cpp.o.d"
  "libbbsim_analysis.a"
  "libbbsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
