file(REMOVE_RECURSE
  "libbbsim_analysis.a"
)
