# Empty dependencies file for bbsim_analysis.
# This may be replaced when dependencies are built.
