
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/plot.cpp" "src/analysis/CMakeFiles/bbsim_analysis.dir/plot.cpp.o" "gcc" "src/analysis/CMakeFiles/bbsim_analysis.dir/plot.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/bbsim_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/bbsim_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/bbsim_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/bbsim_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
