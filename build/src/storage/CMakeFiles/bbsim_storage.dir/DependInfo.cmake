
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/node_local_bb.cpp" "src/storage/CMakeFiles/bbsim_storage.dir/node_local_bb.cpp.o" "gcc" "src/storage/CMakeFiles/bbsim_storage.dir/node_local_bb.cpp.o.d"
  "/root/repo/src/storage/pfs.cpp" "src/storage/CMakeFiles/bbsim_storage.dir/pfs.cpp.o" "gcc" "src/storage/CMakeFiles/bbsim_storage.dir/pfs.cpp.o.d"
  "/root/repo/src/storage/service.cpp" "src/storage/CMakeFiles/bbsim_storage.dir/service.cpp.o" "gcc" "src/storage/CMakeFiles/bbsim_storage.dir/service.cpp.o.d"
  "/root/repo/src/storage/shared_bb.cpp" "src/storage/CMakeFiles/bbsim_storage.dir/shared_bb.cpp.o" "gcc" "src/storage/CMakeFiles/bbsim_storage.dir/shared_bb.cpp.o.d"
  "/root/repo/src/storage/system.cpp" "src/storage/CMakeFiles/bbsim_storage.dir/system.cpp.o" "gcc" "src/storage/CMakeFiles/bbsim_storage.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/bbsim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/bbsim_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/bbsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
