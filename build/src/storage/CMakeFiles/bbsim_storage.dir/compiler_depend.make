# Empty compiler generated dependencies file for bbsim_storage.
# This may be replaced when dependencies are built.
