file(REMOVE_RECURSE
  "CMakeFiles/bbsim_storage.dir/node_local_bb.cpp.o"
  "CMakeFiles/bbsim_storage.dir/node_local_bb.cpp.o.d"
  "CMakeFiles/bbsim_storage.dir/pfs.cpp.o"
  "CMakeFiles/bbsim_storage.dir/pfs.cpp.o.d"
  "CMakeFiles/bbsim_storage.dir/service.cpp.o"
  "CMakeFiles/bbsim_storage.dir/service.cpp.o.d"
  "CMakeFiles/bbsim_storage.dir/shared_bb.cpp.o"
  "CMakeFiles/bbsim_storage.dir/shared_bb.cpp.o.d"
  "CMakeFiles/bbsim_storage.dir/system.cpp.o"
  "CMakeFiles/bbsim_storage.dir/system.cpp.o.d"
  "libbbsim_storage.a"
  "libbbsim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
