file(REMOVE_RECURSE
  "libbbsim_storage.a"
)
