# Empty compiler generated dependencies file for bbsim_platform.
# This may be replaced when dependencies are built.
