file(REMOVE_RECURSE
  "libbbsim_platform.a"
)
