file(REMOVE_RECURSE
  "CMakeFiles/bbsim_platform.dir/fabric.cpp.o"
  "CMakeFiles/bbsim_platform.dir/fabric.cpp.o.d"
  "CMakeFiles/bbsim_platform.dir/platform_json.cpp.o"
  "CMakeFiles/bbsim_platform.dir/platform_json.cpp.o.d"
  "CMakeFiles/bbsim_platform.dir/presets.cpp.o"
  "CMakeFiles/bbsim_platform.dir/presets.cpp.o.d"
  "CMakeFiles/bbsim_platform.dir/spec.cpp.o"
  "CMakeFiles/bbsim_platform.dir/spec.cpp.o.d"
  "libbbsim_platform.a"
  "libbbsim_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
