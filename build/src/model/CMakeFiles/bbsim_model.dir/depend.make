# Empty dependencies file for bbsim_model.
# This may be replaced when dependencies are built.
