file(REMOVE_RECURSE
  "libbbsim_model.a"
)
