file(REMOVE_RECURSE
  "CMakeFiles/bbsim_model.dir/calibration.cpp.o"
  "CMakeFiles/bbsim_model.dir/calibration.cpp.o.d"
  "CMakeFiles/bbsim_model.dir/fitting.cpp.o"
  "CMakeFiles/bbsim_model.dir/fitting.cpp.o.d"
  "libbbsim_model.a"
  "libbbsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
