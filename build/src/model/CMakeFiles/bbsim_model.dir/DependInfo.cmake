
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/calibration.cpp" "src/model/CMakeFiles/bbsim_model.dir/calibration.cpp.o" "gcc" "src/model/CMakeFiles/bbsim_model.dir/calibration.cpp.o.d"
  "/root/repo/src/model/fitting.cpp" "src/model/CMakeFiles/bbsim_model.dir/fitting.cpp.o" "gcc" "src/model/CMakeFiles/bbsim_model.dir/fitting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/bbsim_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/bbsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
