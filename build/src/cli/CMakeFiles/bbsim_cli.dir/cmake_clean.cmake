file(REMOVE_RECURSE
  "CMakeFiles/bbsim_cli.dir/options.cpp.o"
  "CMakeFiles/bbsim_cli.dir/options.cpp.o.d"
  "CMakeFiles/bbsim_cli.dir/runner.cpp.o"
  "CMakeFiles/bbsim_cli.dir/runner.cpp.o.d"
  "libbbsim_cli.a"
  "libbbsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
