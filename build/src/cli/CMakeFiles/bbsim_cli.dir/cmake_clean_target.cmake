file(REMOVE_RECURSE
  "libbbsim_cli.a"
)
