# Empty dependencies file for bbsim_cli.
# This may be replaced when dependencies are built.
