
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/manager.cpp" "src/flow/CMakeFiles/bbsim_flow.dir/manager.cpp.o" "gcc" "src/flow/CMakeFiles/bbsim_flow.dir/manager.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/bbsim_flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/bbsim_flow.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/bbsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
