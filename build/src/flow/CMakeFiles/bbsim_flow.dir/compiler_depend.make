# Empty compiler generated dependencies file for bbsim_flow.
# This may be replaced when dependencies are built.
