file(REMOVE_RECURSE
  "CMakeFiles/bbsim_flow.dir/manager.cpp.o"
  "CMakeFiles/bbsim_flow.dir/manager.cpp.o.d"
  "CMakeFiles/bbsim_flow.dir/network.cpp.o"
  "CMakeFiles/bbsim_flow.dir/network.cpp.o.d"
  "libbbsim_flow.a"
  "libbbsim_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
