file(REMOVE_RECURSE
  "libbbsim_flow.a"
)
