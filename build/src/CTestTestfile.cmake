# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("stats")
subdirs("sim")
subdirs("flow")
subdirs("platform")
subdirs("storage")
subdirs("workflow")
subdirs("model")
subdirs("exec")
subdirs("testbed")
subdirs("analysis")
subdirs("cli")
