file(REMOVE_RECURSE
  "libbbsim_json.a"
)
