# Empty compiler generated dependencies file for bbsim_json.
# This may be replaced when dependencies are built.
