file(REMOVE_RECURSE
  "CMakeFiles/bbsim_json.dir/json.cpp.o"
  "CMakeFiles/bbsim_json.dir/json.cpp.o.d"
  "libbbsim_json.a"
  "libbbsim_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
