file(REMOVE_RECURSE
  "CMakeFiles/bbsim_workflow.dir/clustering.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/clustering.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/describe.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/describe.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/dot.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/dot.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/genomes.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/genomes.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/montage.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/montage.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/random_dag.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/random_dag.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/swarp.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/swarp.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/wfformat.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/wfformat.cpp.o.d"
  "CMakeFiles/bbsim_workflow.dir/workflow.cpp.o"
  "CMakeFiles/bbsim_workflow.dir/workflow.cpp.o.d"
  "libbbsim_workflow.a"
  "libbbsim_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
