
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/clustering.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/clustering.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/clustering.cpp.o.d"
  "/root/repo/src/workflow/describe.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/describe.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/describe.cpp.o.d"
  "/root/repo/src/workflow/dot.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/dot.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/dot.cpp.o.d"
  "/root/repo/src/workflow/genomes.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/genomes.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/genomes.cpp.o.d"
  "/root/repo/src/workflow/montage.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/montage.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/montage.cpp.o.d"
  "/root/repo/src/workflow/random_dag.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/random_dag.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/random_dag.cpp.o.d"
  "/root/repo/src/workflow/swarp.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/swarp.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/swarp.cpp.o.d"
  "/root/repo/src/workflow/wfformat.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/wfformat.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/wfformat.cpp.o.d"
  "/root/repo/src/workflow/workflow.cpp" "src/workflow/CMakeFiles/bbsim_workflow.dir/workflow.cpp.o" "gcc" "src/workflow/CMakeFiles/bbsim_workflow.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/bbsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
