file(REMOVE_RECURSE
  "libbbsim_workflow.a"
)
