# Empty dependencies file for bbsim_workflow.
# This may be replaced when dependencies are built.
