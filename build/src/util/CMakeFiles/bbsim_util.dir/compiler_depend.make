# Empty compiler generated dependencies file for bbsim_util.
# This may be replaced when dependencies are built.
