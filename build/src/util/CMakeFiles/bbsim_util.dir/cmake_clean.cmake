file(REMOVE_RECURSE
  "CMakeFiles/bbsim_util.dir/rng.cpp.o"
  "CMakeFiles/bbsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/bbsim_util.dir/strings.cpp.o"
  "CMakeFiles/bbsim_util.dir/strings.cpp.o.d"
  "CMakeFiles/bbsim_util.dir/units.cpp.o"
  "CMakeFiles/bbsim_util.dir/units.cpp.o.d"
  "libbbsim_util.a"
  "libbbsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
