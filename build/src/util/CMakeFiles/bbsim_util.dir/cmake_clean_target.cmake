file(REMOVE_RECURSE
  "libbbsim_util.a"
)
