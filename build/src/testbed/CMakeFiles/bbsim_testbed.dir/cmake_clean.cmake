file(REMOVE_RECURSE
  "CMakeFiles/bbsim_testbed.dir/characterize.cpp.o"
  "CMakeFiles/bbsim_testbed.dir/characterize.cpp.o.d"
  "CMakeFiles/bbsim_testbed.dir/testbed.cpp.o"
  "CMakeFiles/bbsim_testbed.dir/testbed.cpp.o.d"
  "libbbsim_testbed.a"
  "libbbsim_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
