file(REMOVE_RECURSE
  "libbbsim_testbed.a"
)
