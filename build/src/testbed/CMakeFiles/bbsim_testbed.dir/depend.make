# Empty dependencies file for bbsim_testbed.
# This may be replaced when dependencies are built.
