file(REMOVE_RECURSE
  "libbbsim_exec.a"
)
