# Empty compiler generated dependencies file for bbsim_exec.
# This may be replaced when dependencies are built.
