file(REMOVE_RECURSE
  "CMakeFiles/bbsim_exec.dir/engine.cpp.o"
  "CMakeFiles/bbsim_exec.dir/engine.cpp.o.d"
  "CMakeFiles/bbsim_exec.dir/gantt.cpp.o"
  "CMakeFiles/bbsim_exec.dir/gantt.cpp.o.d"
  "CMakeFiles/bbsim_exec.dir/pinning.cpp.o"
  "CMakeFiles/bbsim_exec.dir/pinning.cpp.o.d"
  "CMakeFiles/bbsim_exec.dir/placement.cpp.o"
  "CMakeFiles/bbsim_exec.dir/placement.cpp.o.d"
  "CMakeFiles/bbsim_exec.dir/trace.cpp.o"
  "CMakeFiles/bbsim_exec.dir/trace.cpp.o.d"
  "CMakeFiles/bbsim_exec.dir/validate.cpp.o"
  "CMakeFiles/bbsim_exec.dir/validate.cpp.o.d"
  "libbbsim_exec.a"
  "libbbsim_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
