file(REMOVE_RECURSE
  "libbbsim_stats.a"
)
