file(REMOVE_RECURSE
  "CMakeFiles/bbsim_stats.dir/metrics.cpp.o"
  "CMakeFiles/bbsim_stats.dir/metrics.cpp.o.d"
  "libbbsim_stats.a"
  "libbbsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
