# Empty dependencies file for bbsim_stats.
# This may be replaced when dependencies are built.
