file(REMOVE_RECURSE
  "libbbsim_sim.a"
)
