# Empty compiler generated dependencies file for bbsim_sim.
# This may be replaced when dependencies are built.
