file(REMOVE_RECURSE
  "CMakeFiles/bbsim_sim.dir/engine.cpp.o"
  "CMakeFiles/bbsim_sim.dir/engine.cpp.o.d"
  "libbbsim_sim.a"
  "libbbsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
