#include "resil/fault.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::resil {

using util::ConfigError;

namespace {

double to_number(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double n = std::stod(value, &used);
    if (used != value.size()) throw ConfigError("");
    return n;
  } catch (const std::exception&) {
    throw ConfigError("fault spec: bad number '" + value + "' for key '" + key + "'");
  }
}

std::uint64_t to_seed(const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw ConfigError("fault spec: bad seed '" + value + "'");
  }
}

/// Split "key=value" with validation.
std::pair<std::string, std::string> key_value(const std::string& entry,
                                              const char* what) {
  const auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ConfigError(std::string(what) + ": expected key=value, got '" + entry + "'");
  }
  return {util::trim(entry.substr(0, eq)), util::trim(entry.substr(eq + 1))};
}

void validate(const FaultSpec& spec) {
  auto check = [](bool ok, const std::string& msg) {
    if (!ok) throw ConfigError("fault spec: " + msg);
  };
  check(spec.node_mtbf >= 0.0, "node_mtbf must be >= 0");
  check(spec.bb_mtbf >= 0.0, "bb_mtbf must be >= 0");
  check(spec.pfs_mtbf >= 0.0, "pfs_mtbf must be >= 0");
  check(spec.node_shape > 0.0, "node_shape must be > 0");
  check(spec.bb_shape > 0.0, "bb_shape must be > 0");
  check(spec.pfs_shape > 0.0, "pfs_shape must be > 0");
  check(spec.node_repair >= 0.0, "node_repair must be >= 0");
  check(spec.bb_degrade > 0.0 && spec.bb_degrade <= 1.0, "bb_degrade must be in (0, 1]");
  check(spec.pfs_brownout > 0.0 && spec.pfs_brownout <= 1.0,
        "pfs_brownout must be in (0, 1]");
  check(spec.bb_duration >= 0.0, "bb_duration must be >= 0");
  check(spec.pfs_duration >= 0.0, "pfs_duration must be >= 0");
  check(spec.horizon >= 0.0, "horizon must be >= 0");
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  if (util::trim(text).empty()) return spec;
  for (const std::string& raw : util::split(text, ',')) {
    const std::string entry = util::trim(raw);
    if (entry.empty()) continue;
    const auto [key, value] = key_value(entry, "fault spec");
    if (key == "seed") {
      spec.seed = to_seed(value);
    } else if (key == "node_mtbf") {
      spec.node_mtbf = to_number(key, value);
    } else if (key == "node_shape") {
      spec.node_shape = to_number(key, value);
    } else if (key == "node_repair") {
      spec.node_repair = to_number(key, value);
    } else if (key == "bb_mtbf") {
      spec.bb_mtbf = to_number(key, value);
    } else if (key == "bb_shape") {
      spec.bb_shape = to_number(key, value);
    } else if (key == "bb_degrade") {
      spec.bb_degrade = to_number(key, value);
    } else if (key == "bb_duration") {
      spec.bb_duration = to_number(key, value);
    } else if (key == "pfs_mtbf") {
      spec.pfs_mtbf = to_number(key, value);
    } else if (key == "pfs_shape") {
      spec.pfs_shape = to_number(key, value);
    } else if (key == "pfs_brownout") {
      spec.pfs_brownout = to_number(key, value);
    } else if (key == "pfs_duration") {
      spec.pfs_duration = to_number(key, value);
    } else if (key == "horizon") {
      spec.horizon = to_number(key, value);
    } else {
      throw ConfigError("fault spec: unknown key '" + key + "'");
    }
  }
  validate(spec);
  return spec;
}

json::Value FaultSpec::to_json() const {
  json::Object o;
  o.set("seed", static_cast<double>(seed));
  o.set("node_mtbf", node_mtbf);
  o.set("node_shape", node_shape);
  o.set("node_repair", node_repair);
  o.set("bb_mtbf", bb_mtbf);
  o.set("bb_shape", bb_shape);
  o.set("bb_degrade", bb_degrade);
  o.set("bb_duration", bb_duration);
  o.set("pfs_mtbf", pfs_mtbf);
  o.set("pfs_shape", pfs_shape);
  o.set("pfs_brownout", pfs_brownout);
  o.set("pfs_duration", pfs_duration);
  o.set("horizon", horizon);
  return json::Value(std::move(o));
}

FaultSpec FaultSpec::from_json(const json::Value& v) {
  FaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(v.get_number("seed", 1.0));
  spec.node_mtbf = v.get_number("node_mtbf", 0.0);
  spec.node_shape = v.get_number("node_shape", 1.0);
  spec.node_repair = v.get_number("node_repair", 30.0);
  spec.bb_mtbf = v.get_number("bb_mtbf", 0.0);
  spec.bb_shape = v.get_number("bb_shape", 1.0);
  spec.bb_degrade = v.get_number("bb_degrade", 0.5);
  spec.bb_duration = v.get_number("bb_duration", 60.0);
  spec.pfs_mtbf = v.get_number("pfs_mtbf", 0.0);
  spec.pfs_shape = v.get_number("pfs_shape", 1.0);
  spec.pfs_brownout = v.get_number("pfs_brownout", 0.5);
  spec.pfs_duration = v.get_number("pfs_duration", 60.0);
  spec.horizon = v.get_number("horizon", 0.0);
  validate(spec);
  return spec;
}

const char* to_string(CheckpointSpec::Mode mode) {
  switch (mode) {
    case CheckpointSpec::Mode::None:
      return "none";
    case CheckpointSpec::Mode::Interval:
      return "interval";
    case CheckpointSpec::Mode::Daly:
      return "daly";
  }
  return "none";
}

CheckpointSpec CheckpointSpec::parse(const std::string& text) {
  CheckpointSpec spec;
  if (util::trim(text).empty()) return spec;
  for (const std::string& raw : util::split(text, ',')) {
    const std::string entry = util::trim(raw);
    if (entry.empty()) continue;
    if (entry == "none") {
      spec.mode = Mode::None;
      continue;
    }
    if (entry == "daly") {
      spec.mode = Mode::Daly;
      continue;
    }
    const auto [key, value] = key_value(entry, "checkpoint spec");
    if (key == "interval") {
      spec.mode = Mode::Interval;
      spec.interval = to_number(key, value);
    } else if (key == "bytes") {
      try {
        spec.bytes = util::parse_size(value);
      } catch (const std::exception&) {
        throw ConfigError("checkpoint spec: bad size '" + value + "'");
      }
    } else if (key == "fraction") {
      spec.fraction = to_number(key, value);
    } else if (key == "restart") {
      spec.restart_latency = to_number(key, value);
    } else if (key == "min_compute") {
      spec.min_compute = to_number(key, value);
    } else {
      throw ConfigError("checkpoint spec: unknown key '" + key + "'");
    }
  }
  if (spec.mode == Mode::Interval && spec.interval <= 0.0) {
    throw ConfigError("checkpoint spec: interval must be > 0");
  }
  if (spec.bytes < 0.0) throw ConfigError("checkpoint spec: bytes must be >= 0");
  if (spec.fraction < 0.0 || spec.fraction > 1.0) {
    throw ConfigError("checkpoint spec: fraction must be in [0, 1]");
  }
  if (spec.restart_latency < 0.0) {
    throw ConfigError("checkpoint spec: restart must be >= 0");
  }
  if (spec.min_compute < 0.0) {
    throw ConfigError("checkpoint spec: min_compute must be >= 0");
  }
  return spec;
}

json::Value CheckpointSpec::to_json() const {
  json::Object o;
  o.set("mode", to_string(mode));
  o.set("interval", interval);
  o.set("bytes", bytes);
  o.set("fraction", fraction);
  o.set("restart", restart_latency);
  o.set("min_compute", min_compute);
  return json::Value(std::move(o));
}

CheckpointSpec CheckpointSpec::from_json(const json::Value& v) {
  CheckpointSpec spec;
  const std::string mode = v.get_string("mode", "none");
  if (mode == "none") {
    spec.mode = Mode::None;
  } else if (mode == "interval") {
    spec.mode = Mode::Interval;
  } else if (mode == "daly") {
    spec.mode = Mode::Daly;
  } else {
    throw ConfigError("checkpoint spec: unknown mode '" + mode + "'");
  }
  spec.interval = v.get_number("interval", 0.0);
  spec.bytes = v.get_number("bytes", 0.0);
  spec.fraction = v.get_number("fraction", 0.1);
  spec.restart_latency = v.get_number("restart", 0.0);
  spec.min_compute = v.get_number("min_compute", 0.0);
  if (spec.mode == Mode::Interval && spec.interval <= 0.0) {
    throw ConfigError("checkpoint spec: interval must be > 0");
  }
  return spec;
}

FaultModel::FaultModel(const FaultSpec& spec, std::size_t host_count)
    : spec_(spec),
      bb_rng_(util::Rng(spec.seed).fork("resil.bb")),
      pfs_rng_(util::Rng(spec.seed).fork("resil.pfs")) {
  const util::Rng base(spec.seed);
  node_rng_.reserve(host_count);
  for (std::size_t h = 0; h < host_count; ++h) {
    node_rng_.push_back(base.fork("resil.node." + std::to_string(h)));
  }
}

double FaultModel::sample_gap(util::Rng& rng, double mtbf, double shape) {
  // Weibull with shape 1 is exactly the exponential distribution, so one
  // sampler covers both spec shapes. Clamp away a measure-zero 0 draw: a
  // zero gap would schedule the next fault at the current instant forever.
  return std::max(rng.weibull_mean(shape, mtbf), mtbf * 1e-12);
}

double FaultModel::next_node_gap(std::size_t host) {
  return sample_gap(node_rng_.at(host), spec_.node_mtbf, spec_.node_shape);
}

double FaultModel::next_bb_gap() {
  return sample_gap(bb_rng_, spec_.bb_mtbf, spec_.bb_shape);
}

double FaultModel::next_pfs_gap() {
  return sample_gap(pfs_rng_, spec_.pfs_mtbf, spec_.pfs_shape);
}

json::Value RunStats::to_json() const {
  json::Object o;
  o.set("schema", "bbsim.resil.v1");
  o.set("node_crashes", node_crashes);
  o.set("node_repairs", node_repairs);
  o.set("bb_degradations", bb_degradations);
  o.set("pfs_brownouts", pfs_brownouts);
  o.set("tasks_killed", tasks_killed);
  o.set("rollbacks", rollbacks);
  o.set("files_invalidated", files_invalidated);
  o.set("restarts", restarts);
  o.set("lost_core_seconds", lost_core_seconds);
  o.set("checkpoint_core_seconds", checkpoint_core_seconds);
  o.set("rework_core_seconds", rework_core_seconds);
  o.set("wasted_core_seconds", wasted_core_seconds());
  o.set("checkpoints_taken", checkpoints_taken);
  o.set("checkpoint_bytes_written", checkpoint_bytes_written);
  o.set("checkpoint_bytes_drained", checkpoint_bytes_drained);
  o.set("checkpoint_bytes_discarded", checkpoint_bytes_discarded);
  json::Object per_task;
  for (const auto& [name, t] : tasks) {
    if (t.attempts <= 1 && t.kills == 0) continue;
    json::Object entry;
    entry.set("attempts", t.attempts);
    entry.set("kills", t.kills);
    entry.set("lost_core_seconds", t.lost_core_seconds);
    entry.set("rework_core_seconds", t.rework_core_seconds);
    entry.set("first_complete_time", t.first_complete_time);
    per_task.set(name, json::Value(std::move(entry)));
  }
  o.set("tasks", json::Value(std::move(per_task)));
  return json::Value(std::move(o));
}

}  // namespace bbsim::resil
