// bbsim -- resilience layer: fault specifications and checkpoint policies.
//
// The paper models burst buffers purely as a performance tier; their
// canonical production role is checkpoint-to-BB with asynchronous drain to
// the PFS (Romanus et al., arXiv 1509.05492). This subsystem injects seeded
// failures into a simulation -- node crashes, BB degradation windows, PFS
// brownouts -- and describes when and how tasks checkpoint so recovery can
// roll them back to their last durable checkpoint instead of to zero.
//
// Everything is driven by util::Rng sub-streams derived from a single seed:
// the fault process is deterministic, so every crash/recovery schedule is
// reproducible and diffable (no wall clocks anywhere).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/rng.hpp"

namespace bbsim::resil {

/// Seeded arrival processes for the three fault classes. An `mtbf` of 0
/// disables that class; `shape` is the Weibull shape (1 = exponential,
/// < 1 = bursty with a heavy tail). Parsed from the CLI `--faults` spec:
/// a comma list of key=value pairs, e.g.
///   "node_mtbf=3600,node_repair=60,seed=7,bb_mtbf=7200,bb_duration=120".
struct FaultSpec {
  std::uint64_t seed = 1;

  // Node crashes: a crashed host loses its running tasks and its node-local
  // BB contents, and rejoins after `node_repair` seconds.
  double node_mtbf = 0.0;   ///< mean seconds between crashes per host; 0 = off
  double node_shape = 1.0;  ///< Weibull shape of the inter-crash gaps
  double node_repair = 30.0;  ///< seconds a crashed host stays down

  // BB degradation: the burst buffer's bandwidth drops to `bb_degrade` of
  // nominal for `bb_duration` seconds.
  double bb_mtbf = 0.0;
  double bb_shape = 1.0;
  double bb_degrade = 0.5;   ///< capacity scale while degraded, in (0, 1]
  double bb_duration = 60.0;

  // PFS brownouts: the PFS bandwidth drops to `pfs_brownout` of nominal.
  double pfs_mtbf = 0.0;
  double pfs_shape = 1.0;
  double pfs_brownout = 0.5;
  double pfs_duration = 60.0;

  /// No fault of any class is sampled past this simulated time (0 = no
  /// horizon). Repairs/clears still fire so nothing stays down forever.
  double horizon = 0.0;

  /// True when at least one fault class is active. A default-constructed
  /// (or all-zero-mtbf) spec leaves the engine bitwise-identical to a run
  /// without the resilience layer.
  bool enabled() const { return node_mtbf > 0.0 || bb_mtbf > 0.0 || pfs_mtbf > 0.0; }

  /// Parse a comma list of key=value pairs. Empty text -> disabled spec.
  /// Throws util::ConfigError on unknown keys or out-of-range values.
  static FaultSpec parse(const std::string& text);

  json::Value to_json() const;
  static FaultSpec from_json(const json::Value& v);
};

/// When tasks write checkpoints, how large they are, and how a failed task
/// restarts. Parsed from the CLI `--checkpoint` spec, e.g.
///   "interval=600,bytes=2g,restart=30"  (periodic) or
///   "daly,fraction=0.1,restart=30"      (Young/Daly-optimal interval).
struct CheckpointSpec {
  enum class Mode {
    None,      ///< no checkpointing: a failed task restarts from zero
    Interval,  ///< fixed period between checkpoints
    Daly,      ///< Young/Daly optimum: tau = sqrt(2 * C * MTBF)
  };

  Mode mode = Mode::None;
  double interval = 0.0;  ///< seconds between checkpoints (Interval mode)
  /// Checkpoint size: `bytes` if > 0, else `fraction` of the task's output
  /// bytes (falling back to its input bytes when it writes nothing).
  double bytes = 0.0;
  double fraction = 0.1;
  double restart_latency = 0.0;  ///< extra delay before a restarted attempt
  /// Tasks whose compute time is below this never checkpoint (the overhead
  /// cannot pay for itself).
  double min_compute = 0.0;

  bool enabled() const { return mode != Mode::None; }

  /// Parse a comma list; bare tokens "none" / "daly" select the mode,
  /// "interval=<s>" selects Interval mode with that period. Empty text ->
  /// disabled. Throws util::ConfigError on unknown keys or bad values.
  static CheckpointSpec parse(const std::string& text);

  json::Value to_json() const;
  static CheckpointSpec from_json(const json::Value& v);
};

const char* to_string(CheckpointSpec::Mode mode);

/// Deterministic fault-arrival sampler: one independent Rng sub-stream per
/// host plus one each for the BB and PFS processes, all forked from the
/// spec seed. Gap samples are inter-arrival times measured from the end of
/// the previous outage window, so windows of one class never overlap.
class FaultModel {
 public:
  FaultModel(const FaultSpec& spec, std::size_t host_count);

  const FaultSpec& spec() const { return spec_; }

  /// Next inter-crash gap for `host` (seconds; > 0).
  double next_node_gap(std::size_t host);
  /// Next inter-degradation gap for the burst buffer.
  double next_bb_gap();
  /// Next inter-brownout gap for the PFS.
  double next_pfs_gap();

 private:
  static double sample_gap(util::Rng& rng, double mtbf, double shape);

  FaultSpec spec_;
  std::vector<util::Rng> node_rng_;
  util::Rng bb_rng_;
  util::Rng pfs_rng_;
};

/// Per-task recovery accounting.
struct TaskResil {
  int attempts = 1;  ///< executions started (1 = never failed)
  int kills = 0;     ///< times a crash killed a running attempt
  double lost_core_seconds = 0.0;    ///< work discarded by kills
  double rework_core_seconds = 0.0;  ///< re-executed work after rollbacks
  /// Engine time the task first completed (-1 if it completed only once;
  /// used by the attempt-aware precedence audit: a child may start any time
  /// after the parent's *first* completion).
  double first_complete_time = -1.0;
};

/// Run-level resilience accounting, serialized as the `bbsim.resil.v1`
/// report section. Waste follows the classic decomposition: lost work
/// (killed attempts), checkpoint overhead (cores held while checkpointing),
/// and rework (re-executing work that had already run once).
struct RunStats {
  int node_crashes = 0;
  int node_repairs = 0;
  int bb_degradations = 0;
  int pfs_brownouts = 0;
  int tasks_killed = 0;
  int rollbacks = 0;          ///< completed tasks un-done by lineage loss
  int files_invalidated = 0;  ///< replicas lost to node crashes
  int restarts = 0;           ///< task attempts beyond the first

  double lost_core_seconds = 0.0;
  double checkpoint_core_seconds = 0.0;
  double rework_core_seconds = 0.0;

  int checkpoints_taken = 0;
  double checkpoint_bytes_written = 0.0;    ///< landed on the checkpoint tier
  double checkpoint_bytes_drained = 0.0;    ///< drained BB -> PFS
  double checkpoint_bytes_discarded = 0.0;  ///< dropped (task done / crash)

  /// Name-sorted (std::map) so the report serializes deterministically.
  std::map<std::string, TaskResil> tasks;

  double wasted_core_seconds() const {
    return lost_core_seconds + checkpoint_core_seconds + rework_core_seconds;
  }

  /// The `bbsim.resil.v1` document. Only tasks that were actually disturbed
  /// (attempts > 1 or kills > 0) appear in the per-task section.
  json::Value to_json() const;
};

}  // namespace bbsim::resil
