// bbsim -- workflow transformation: task clustering.
//
// Workflow systems routinely merge chains of small tasks into one scheduled
// unit to cut per-task overheads (scheduling latency, stage-in/out of tiny
// intermediates). Clustering interacts with burst-buffer placement — a
// merged chain's intermediate files never leave the node — which makes it a
// natural knob for the placement-heuristic exploration the paper proposes.
//
// `cluster_chains` merges maximal linear chains: runs of tasks where each
// link is the sole consumer of its predecessor's outputs and has no other
// parents. The merged task:
//   * sums the chain's flops (work is conserved);
//   * takes the maximum alpha and requested_cores along the chain;
//   * reads the chain head's inputs, writes the chain tail's outputs;
//   * hides the intra-chain intermediate files entirely (they become
//     node-internal and are dropped from the workflow).
#pragma once

#include <map>
#include <string>

#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct ClusteringResult {
  Workflow workflow;
  /// original task name -> merged task name (identity for unmerged tasks).
  std::map<std::string, std::string> mapping;
  std::size_t chains_merged = 0;
  std::size_t files_internalised = 0;
};

struct ClusteringOptions {
  /// Only merge across a link when every intermediate file on it is at most
  /// this large (big files may be worth exposing to the BB tier).
  double max_internal_file_bytes = 1e18;
  /// Never let a merged task exceed this much sequential work (seconds at
  /// the given reference speed); 0 disables the limit.
  double max_merged_seconds = 0.0;
  double reference_core_speed = 36.80e9;
};

/// Merges maximal linear chains; the input workflow is left untouched.
ClusteringResult cluster_chains(const Workflow& workflow,
                                const ClusteringOptions& options = {});

}  // namespace bbsim::wf
