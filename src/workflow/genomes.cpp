#include "workflow/genomes.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::wf {

Workflow make_1000genomes(const GenomesConfig& config) {
  if (config.chromosomes < 1 || config.individuals_per_chromosome < 1 ||
      config.populations < 1) {
    throw util::ConfigError("1000genomes: counts must be >= 1");
  }
  Workflow w;
  w.name = util::format("1000genomes-%dch", config.chromosomes);
  const double speed = config.reference_core_speed;

  // Global populations task: parses the raw population lists once.
  Task populations;
  populations.name = "populations";
  populations.type = "populations";
  populations.flops = config.populations_seconds * speed;
  for (int p = 0; p < config.populations; ++p) {
    const std::string raw = util::format("pop_raw_%d.txt", p);
    const std::string out = util::format("pop_%d.txt", p);
    w.add_file(File{raw, config.population_raw_size});
    w.add_file(File{out, config.population_size});
    populations.inputs.push_back(raw);
    populations.outputs.push_back(out);
  }
  w.add_task(std::move(populations));

  for (int c = 0; c < config.chromosomes; ++c) {
    Task merge;
    merge.name = util::format("individuals_merge_c%02d", c);
    merge.type = "individuals_merge";
    merge.flops = config.merge_seconds * speed;

    for (int i = 0; i < config.individuals_per_chromosome; ++i) {
      Task ind;
      ind.name = util::format("individuals_c%02d_%02d", c, i);
      ind.type = "individuals";
      ind.flops = config.individuals_seconds * speed;
      const std::string chunk = util::format("chunk_c%02d_%02d.vcf", c, i);
      const std::string out = util::format("ind_c%02d_%02d.tar.gz", c, i);
      w.add_file(File{chunk, config.chunk_size});
      w.add_file(File{out, config.individuals_out_size});
      ind.inputs.push_back(chunk);
      ind.outputs.push_back(out);
      merge.inputs.push_back(out);
      w.add_task(std::move(ind));
    }

    const std::string merged = util::format("merged_c%02d.tar.gz", c);
    w.add_file(File{merged, config.merged_size});
    merge.outputs.push_back(merged);
    w.add_task(std::move(merge));

    Task sifting;
    sifting.name = util::format("sifting_c%02d", c);
    sifting.type = "sifting";
    sifting.flops = config.sifting_seconds * speed;
    const std::string sift_in = util::format("sift_in_c%02d.vcf", c);
    const std::string sifted = util::format("sifted_c%02d.txt", c);
    w.add_file(File{sift_in, config.sifting_in_size});
    w.add_file(File{sifted, config.sifted_size});
    sifting.inputs.push_back(sift_in);
    sifting.outputs.push_back(sifted);
    w.add_task(std::move(sifting));

    for (int p = 0; p < config.populations; ++p) {
      const std::string pop = util::format("pop_%d.txt", p);

      Task pair;
      pair.name = util::format("pair_overlap_c%02d_p%d", c, p);
      pair.type = "pair_overlap";
      pair.flops = config.pair_seconds * speed;
      pair.inputs = {merged, sifted, pop};
      const std::string pair_out = util::format("pair_c%02d_p%d.tar.gz", c, p);
      w.add_file(File{pair_out, config.overlap_out_size});
      pair.outputs.push_back(pair_out);
      w.add_task(std::move(pair));

      Task freq;
      freq.name = util::format("freq_overlap_c%02d_p%d", c, p);
      freq.type = "frequency_overlap";
      freq.flops = config.freq_seconds * speed;
      freq.inputs = {merged, sifted, pop};
      const std::string freq_out = util::format("freq_c%02d_p%d.tar.gz", c, p);
      w.add_file(File{freq_out, config.overlap_out_size});
      freq.outputs.push_back(freq_out);
      w.add_task(std::move(freq));
    }
  }

  w.validate();
  return w;
}

}  // namespace bbsim::wf
