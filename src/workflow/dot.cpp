#include "workflow/dot.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::wf {

namespace {

std::string quote(const std::string& id) {
  std::string out = "\"";
  for (const char c : id) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

const char* kPalette[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                          "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};

}  // namespace

std::string to_dot(const Workflow& workflow, const DotOptions& options) {
  std::string out = "digraph " + quote(workflow.name) + " {\n";
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";

  std::map<std::string, std::size_t> type_color;
  for (const std::string& tname : workflow.task_names()) {
    const Task& t = workflow.task(tname);
    std::string attrs = "shape=box";
    if (options.color_by_type) {
      const auto [it, inserted] = type_color.emplace(t.type, type_color.size());
      attrs += util::format(",style=filled,fillcolor=\"%s\"",
                            kPalette[it->second % 8]);
    }
    attrs += util::format(",label=\"%s\\n(%s)\"", t.name.c_str(), t.type.c_str());
    out += "  " + quote(t.name) + " [" + attrs + "];\n";
  }

  if (options.show_files) {
    for (const std::string& fname : workflow.file_names()) {
      const File& f = workflow.file(fname);
      std::string label = fname;
      if (options.label_sizes) label += "\\n" + util::format_size(f.size);
      out += "  " + quote("file:" + fname) +
             " [shape=ellipse,fontsize=10,label=\"" + label + "\"];\n";
    }
    for (const std::string& fname : workflow.file_names()) {
      if (const auto producer = workflow.producer(fname)) {
        out += "  " + quote(*producer) + " -> " + quote("file:" + fname) + ";\n";
      }
      for (const std::string& consumer : workflow.consumers(fname)) {
        out += "  " + quote("file:" + fname) + " -> " + quote(consumer) + ";\n";
      }
    }
    // Control dependencies have no file vertex; draw them dashed.
    for (const std::string& tname : workflow.task_names()) {
      for (const std::string& child : workflow.children(tname)) {
        bool via_file = false;
        for (const std::string& fname : workflow.task(tname).outputs) {
          const auto consumers = workflow.consumers(fname);
          if (std::find(consumers.begin(), consumers.end(), child) != consumers.end()) {
            via_file = true;
            break;
          }
        }
        if (!via_file) {
          out += "  " + quote(tname) + " -> " + quote(child) + " [style=dashed];\n";
        }
      }
    }
  } else {
    for (const std::string& tname : workflow.task_names()) {
      for (const std::string& child : workflow.children(tname)) {
        out += "  " + quote(tname) + " -> " + quote(child) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

void save_dot(const std::string& path, const Workflow& workflow,
              const DotOptions& options) {
  std::ofstream out_file(path, std::ios::binary);
  if (!out_file) throw util::Error("cannot open DOT file for writing: '" + path + "'");
  out_file << to_dot(workflow, options);
  if (!out_file) throw util::Error("write failed: '" + path + "'");
}

}  // namespace bbsim::wf
