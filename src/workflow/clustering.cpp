#include "workflow/clustering.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace bbsim::wf {

namespace {

/// Is the link from `task` to its sole child mergeable?
/// Returns the child name, or empty when the link cannot be merged.
std::string mergeable_child(const Workflow& w, const std::string& task,
                            const ClusteringOptions& opt) {
  // Stage-in tasks get special engine treatment; never merge across them.
  if (w.task(task).type == "stage_in") return {};
  const auto children = w.children(task);
  if (children.size() != 1) return {};
  const std::string& child = children.front();
  if (w.task(child).type == "stage_in") return {};
  if (w.parents(child).size() != 1) return {};
  // Every produced file must feed only the child (or nobody: final outputs
  // are allowed and survive the merge); internalised files must be small.
  for (const std::string& f : w.task(task).outputs) {
    const auto consumers = w.consumers(f);
    if (consumers.empty()) continue;  // final product of an inner task
    if (consumers.size() != 1 || consumers.front() != child) return {};
    if (w.file(f).size > opt.max_internal_file_bytes) return {};
  }
  return child;
}

}  // namespace

ClusteringResult cluster_chains(const Workflow& workflow,
                                const ClusteringOptions& options) {
  ClusteringResult out;
  std::set<std::string> absorbed;  // tasks merged into an earlier head
  std::map<std::string, std::vector<std::string>> chain_of;  // head -> members

  // Grow maximal chains greedily in topological order.
  for (const std::string& head : workflow.topological_order()) {
    if (absorbed.count(head) > 0) continue;
    std::vector<std::string> chain{head};
    double seconds = workflow.task(head).flops / options.reference_core_speed;
    std::string current = head;
    while (true) {
      const std::string child = mergeable_child(workflow, current, options);
      if (child.empty()) break;
      const double child_seconds =
          workflow.task(child).flops / options.reference_core_speed;
      if (options.max_merged_seconds > 0 &&
          seconds + child_seconds > options.max_merged_seconds) {
        break;
      }
      chain.push_back(child);
      absorbed.insert(child);
      seconds += child_seconds;
      current = child;
    }
    chain_of[head] = std::move(chain);
  }

  // Identify internalised files: produced and consumed within one chain.
  std::set<std::string> internal_files;
  for (const auto& [head, chain] : chain_of) {
    if (chain.size() < 2) continue;
    const std::set<std::string> members(chain.begin(), chain.end());
    for (const std::string& member : chain) {
      for (const std::string& f : workflow.task(member).outputs) {
        const auto consumers = workflow.consumers(f);
        if (!consumers.empty() &&
            std::all_of(consumers.begin(), consumers.end(),
                        [&](const std::string& c) { return members.count(c) > 0; })) {
          internal_files.insert(f);
        }
      }
    }
  }
  out.files_internalised = internal_files.size();

  // Emit surviving files.
  out.workflow.name = workflow.name + "-clustered";
  for (const std::string& fname : workflow.file_names()) {
    if (internal_files.count(fname) == 0) {
      out.workflow.add_file(workflow.file(fname));
    }
  }

  // Emit merged tasks (in original creation order of heads for stability).
  for (const std::string& name : workflow.task_names()) {
    const auto it = chain_of.find(name);
    if (it == chain_of.end()) continue;  // absorbed member
    const std::vector<std::string>& chain = it->second;

    Task merged;
    const Task& head_task = workflow.task(chain.front());
    merged.name = chain.size() == 1
                      ? head_task.name
                      : util::format("%s__x%zu", head_task.name.c_str(), chain.size());
    bool homogeneous = true;
    std::set<std::string> in_set, out_set;
    for (const std::string& member : chain) {
      const Task& t = workflow.task(member);
      if (t.type != head_task.type) homogeneous = false;
      merged.flops += t.flops;
      merged.requested_cores = std::max(merged.requested_cores, t.requested_cores);
      for (const std::string& f : t.inputs) {
        if (internal_files.count(f) == 0) in_set.insert(f);
      }
      for (const std::string& f : t.outputs) {
        if (internal_files.count(f) == 0) out_set.insert(f);
      }
      out.mapping[member] = merged.name;
    }
    merged.type = homogeneous ? head_task.type : "cluster";
    // Equivalent Amdahl fraction: the chain runs its members back to back,
    // so preserve the total time at 1 core and at the merged core count:
    //   T(p) = sum_i amdahl(T1_i, p, alpha_i) = alpha_eq*T1 + (1-alpha_eq)*T1/p.
    if (merged.flops > 0 && merged.requested_cores > 1) {
      const int p = merged.requested_cores;
      double t1 = 0.0, tp = 0.0;
      for (const std::string& member : chain) {
        const Task& t = workflow.task(member);
        t1 += t.flops;
        tp += t.alpha * t.flops + (1.0 - t.alpha) * t.flops / p;
      }
      merged.alpha =
          std::clamp((tp - t1 / p) / (t1 * (1.0 - 1.0 / p)), 0.0, 1.0);
    }
    merged.inputs.assign(in_set.begin(), in_set.end());
    merged.outputs.assign(out_set.begin(), out_set.end());
    if (chain.size() > 1) ++out.chains_merged;
    out.workflow.add_task(std::move(merged));
  }

  // Re-create control dependencies between surviving tasks.
  for (const std::string& name : workflow.task_names()) {
    for (const std::string& child : workflow.children(name)) {
      const std::string& from = out.mapping.at(name);
      const std::string& to = out.mapping.at(child);
      if (from == to) continue;  // merged away
      // Only add when no file already induces the edge.
      bool via_file = false;
      for (const std::string& f : out.workflow.task(from).outputs) {
        const auto consumers = out.workflow.consumers(f);
        if (std::find(consumers.begin(), consumers.end(), to) != consumers.end()) {
          via_file = true;
          break;
        }
      }
      if (!via_file) out.workflow.add_control_dep(from, to);
    }
  }

  out.workflow.validate();
  return out;
}

}  // namespace bbsim::wf
