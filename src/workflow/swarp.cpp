#include "workflow/swarp.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::wf {

Workflow make_swarp(const SwarpConfig& config) {
  if (config.pipelines < 1 || config.images_per_pipeline < 1) {
    throw util::ConfigError("swarp: pipelines and images_per_pipeline must be >= 1");
  }
  Workflow w;
  w.name = util::format("swarp-%dp", config.pipelines);

  Task stage_in;
  if (config.with_stage_in && !config.stage_in_per_pipeline) {
    stage_in.name = "stage_in";
    stage_in.type = "stage_in";
    stage_in.flops = 0.0;
    stage_in.requested_cores = 1;  // "the stage-in task is always sequential"
  }

  for (int p = 0; p < config.pipelines; ++p) {
    Task resample;
    resample.name = util::format("resample_%03d", p);
    resample.type = "resample";
    resample.flops = config.resample_seq_seconds * config.reference_core_speed;
    resample.alpha = config.resample_alpha;
    resample.requested_cores = config.cores_per_task;

    Task combine;
    combine.name = util::format("combine_%03d", p);
    combine.type = "combine";
    combine.flops = config.combine_seq_seconds * config.reference_core_speed;
    combine.alpha = config.combine_alpha;
    combine.requested_cores = config.cores_per_task;

    for (int i = 0; i < config.images_per_pipeline; ++i) {
      const std::string img = util::format("p%03d_img_%02d.fits", p, i);
      const std::string wgt = util::format("p%03d_wgt_%02d.fits", p, i);
      const std::string rimg = util::format("p%03d_img_%02d.resamp.fits", p, i);
      const std::string rwgt = util::format("p%03d_wgt_%02d.resamp.fits", p, i);
      w.add_file(File{img, config.image_size});
      w.add_file(File{wgt, config.weight_size});
      w.add_file(File{rimg, config.image_size});
      w.add_file(File{rwgt, config.weight_size});
      resample.inputs.push_back(img);
      resample.inputs.push_back(wgt);
      resample.outputs.push_back(rimg);
      resample.outputs.push_back(rwgt);
      combine.inputs.push_back(rimg);
      combine.inputs.push_back(rwgt);
    }
    const std::string coadd = util::format("p%03d_coadd.fits", p);
    const std::string coadd_w = util::format("p%03d_coadd.weight.fits", p);
    w.add_file(File{coadd, config.combine_output_scale * config.image_size});
    w.add_file(File{coadd_w, config.combine_output_scale * config.weight_size});
    combine.outputs.push_back(coadd);
    combine.outputs.push_back(coadd_w);

    w.add_task(std::move(resample));
    w.add_task(std::move(combine));

    if (config.with_stage_in && config.stage_in_per_pipeline) {
      Task own_stage;
      own_stage.name = util::format("stage_in_%03d", p);
      own_stage.type = "stage_in";
      own_stage.flops = 0.0;
      own_stage.requested_cores = 1;
      w.add_task(std::move(own_stage));
      w.add_control_dep(util::format("stage_in_%03d", p),
                        util::format("resample_%03d", p));
    }
  }

  if (config.with_stage_in && !config.stage_in_per_pipeline) {
    w.add_task(std::move(stage_in));
    for (int p = 0; p < config.pipelines; ++p) {
      w.add_control_dep("stage_in", util::format("resample_%03d", p));
    }
  }

  w.validate();
  return w;
}

}  // namespace bbsim::wf
