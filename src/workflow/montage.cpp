#include "workflow/montage.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::wf {

Workflow make_montage(const MontageConfig& config) {
  if (config.tiles < 2) throw util::ConfigError("montage: tiles must be >= 2");
  Workflow w;
  w.name = util::format("montage-%dt", config.tiles);
  const double speed = config.reference_core_speed;

  Task concat;
  concat.name = "mConcatFit";
  concat.type = "mConcatFit";
  concat.flops = config.concat_seconds * speed;
  w.add_file({"fits.tbl", 1e6});
  concat.outputs.push_back("fits.tbl");

  Task add;
  add.name = "mAdd";
  add.type = "mAdd";
  add.flops = config.add_seconds * speed;
  add.alpha = 0.4;  // coaddition partially serialises, like SWarp's Combine
  w.add_file({"mosaic.fits", config.mosaic_size});
  add.outputs.push_back("mosaic.fits");

  for (int i = 0; i < config.tiles; ++i) {
    const std::string img = util::format("tile_%02d.fits", i);
    const std::string proj = util::format("proj_%02d.fits", i);
    const std::string corr = util::format("corr_%02d.fits", i);
    w.add_file({img, config.image_size});
    w.add_file({proj, config.projected_size});
    w.add_file({corr, config.corrected_size});

    Task project;
    project.name = util::format("mProject_%02d", i);
    project.type = "mProject";
    project.flops = config.project_seconds * speed;
    project.inputs.push_back(img);
    project.outputs.push_back(proj);
    w.add_task(std::move(project));

    Task background;
    background.name = util::format("mBackground_%02d", i);
    background.type = "mBackground";
    background.flops = config.background_seconds * speed;
    background.inputs = {proj, "fits.tbl"};
    background.outputs.push_back(corr);
    w.add_task(std::move(background));
    add.inputs.push_back(corr);
  }

  // Overlap pairs: consecutive tiles (a ring would also work; the shape is
  // what matters -- a wide diff layer feeding one global fit).
  for (int i = 0; i + 1 < config.tiles; ++i) {
    const std::string diff = util::format("diff_%02d.fits", i);
    w.add_file({diff, config.diff_size});
    Task difffit;
    difffit.name = util::format("mDiffFit_%02d", i);
    difffit.type = "mDiffFit";
    difffit.flops = config.diff_seconds * speed;
    difffit.inputs = {util::format("proj_%02d.fits", i),
                      util::format("proj_%02d.fits", i + 1)};
    difffit.outputs.push_back(diff);
    w.add_task(std::move(difffit));
    concat.inputs.push_back(diff);
  }

  w.add_task(std::move(concat));
  w.add_task(std::move(add));
  w.validate();
  return w;
}

Workflow make_cybershake(const CyberShakeConfig& config) {
  if (config.variations < 1 || config.ruptures < 1) {
    throw util::ConfigError("cybershake: counts must be >= 1");
  }
  Workflow w;
  w.name = util::format("cybershake-%dv%dr", config.variations, config.ruptures);
  const double speed = config.reference_core_speed;

  Task zip;
  zip.name = "ZipSeis";
  zip.type = "ZipSeis";
  zip.flops = config.zip_seconds * speed;
  w.add_file({"hazard.zip", 1e6});
  zip.outputs.push_back("hazard.zip");

  for (int s = 0; s < config.ruptures; ++s) {
    w.add_file({util::format("rupture_%03d.src", s), config.rupture_size});
  }

  for (int v = 0; v < config.variations; ++v) {
    const std::string sgt = util::format("sgt_%d.bin", v);
    const std::string sub = util::format("sub_sgt_%d.bin", v);
    w.add_file({sgt, config.sgt_size});
    w.add_file({sub, config.sub_sgt_size});

    Task extract;
    extract.name = util::format("ExtractSGT_%d", v);
    extract.type = "ExtractSGT";
    extract.flops = config.extract_seconds * speed;
    extract.inputs.push_back(sgt);
    extract.outputs.push_back(sub);
    w.add_task(std::move(extract));

    for (int s = 0; s < config.ruptures; ++s) {
      const std::string seis = util::format("seis_%d_%03d.grm", v, s);
      const std::string peak = util::format("peak_%d_%03d.bsa", v, s);
      w.add_file({seis, config.seismogram_size});
      w.add_file({peak, config.peak_size});

      Task seismogram;
      seismogram.name = util::format("Seismogram_%d_%03d", v, s);
      seismogram.type = "Seismogram";
      seismogram.flops = config.seismogram_seconds * speed;
      seismogram.inputs = {sub, util::format("rupture_%03d.src", s)};
      seismogram.outputs.push_back(seis);
      w.add_task(std::move(seismogram));

      Task peakval;
      peakval.name = util::format("PeakVal_%d_%03d", v, s);
      peakval.type = "PeakVal";
      peakval.flops = config.peak_seconds * speed;
      peakval.inputs.push_back(seis);
      peakval.outputs.push_back(peak);
      w.add_task(std::move(peakval));
      zip.inputs.push_back(peak);
    }
  }
  w.add_task(std::move(zip));
  w.validate();
  return w;
}

}  // namespace bbsim::wf
