#include "workflow/workflow.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace bbsim::wf {

using util::ConfigError;
using util::InvariantError;
using util::NotFoundError;

void Workflow::add_file(File file) {
  if (file.name.empty()) throw ConfigError("file with empty name");
  if (file.size < 0) throw ConfigError("file '" + file.name + "': negative size");
  const auto it = files_.find(file.name);
  if (it == files_.end()) {
    file_order_.push_back(file.name);
    files_.emplace(file.name, std::move(file));
  } else {
    it->second.size = file.size;
  }
  index_dirty_ = true;
}

void Workflow::add_task(Task task) {
  if (task.name.empty()) throw ConfigError("task with empty name");
  if (tasks_.count(task.name) > 0) throw ConfigError("duplicate task '" + task.name + "'");
  if (task.requested_cores < 1) {
    throw ConfigError("task '" + task.name + "': requested_cores must be >= 1");
  }
  if (task.flops < 0) throw ConfigError("task '" + task.name + "': negative flops");
  if (task.alpha < 0 || task.alpha > 1) {
    throw ConfigError("task '" + task.name + "': alpha must be in [0, 1]");
  }
  task_order_.push_back(task.name);
  tasks_.emplace(task.name, std::move(task));
  index_dirty_ = true;
}

void Workflow::add_control_dep(const std::string& parent, const std::string& child) {
  control_deps_.emplace_back(parent, child);
  index_dirty_ = true;
}

bool Workflow::has_file(const std::string& file_name) const {
  return files_.count(file_name) > 0;
}

bool Workflow::has_task(const std::string& task_name) const {
  return tasks_.count(task_name) > 0;
}

const File& Workflow::file(const std::string& file_name) const {
  const auto it = files_.find(file_name);
  if (it == files_.end()) throw NotFoundError("file '" + file_name + "'");
  return it->second;
}

const Task& Workflow::task(const std::string& task_name) const {
  const auto it = tasks_.find(task_name);
  if (it == tasks_.end()) throw NotFoundError("task '" + task_name + "'");
  return it->second;
}

Task& Workflow::task_mut(const std::string& task_name) {
  const auto it = tasks_.find(task_name);
  if (it == tasks_.end()) throw NotFoundError("task '" + task_name + "'");
  index_dirty_ = true;  // caller may change inputs/outputs
  return it->second;
}

const Workflow::Index& Workflow::index() const {
  if (!index_dirty_) return index_;
  index_ = Index{};
  for (const std::string& tname : task_order_) {
    const Task& t = tasks_.at(tname);
    for (const std::string& f : t.outputs) {
      const auto [it, inserted] = index_.producer_of.emplace(f, tname);
      if (!inserted && it->second != tname) {
        throw InvariantError("file '" + f + "' written by both '" + it->second +
                             "' and '" + tname + "'");
      }
    }
    for (const std::string& f : t.inputs) index_.readers[f].push_back(tname);
  }
  auto add_edge = [this](const std::string& parent, const std::string& child) {
    auto& kids = index_.child_of[parent];
    if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
      kids.push_back(child);
      index_.parent_of[child].push_back(parent);
    }
  };
  for (const std::string& tname : task_order_) {
    const Task& t = tasks_.at(tname);
    for (const std::string& f : t.inputs) {
      const auto p = index_.producer_of.find(f);
      if (p != index_.producer_of.end() && p->second != tname) add_edge(p->second, tname);
    }
  }
  for (const auto& [parent, child] : control_deps_) add_edge(parent, child);
  index_dirty_ = false;
  return index_;
}

std::optional<std::string> Workflow::producer(const std::string& file_name) const {
  const auto& idx = index();
  const auto it = idx.producer_of.find(file_name);
  if (it == idx.producer_of.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Workflow::consumers(const std::string& file_name) const {
  const auto& idx = index();
  const auto it = idx.readers.find(file_name);
  return it == idx.readers.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> Workflow::parents(const std::string& task_name) const {
  const auto& idx = index();
  const auto it = idx.parent_of.find(task_name);
  return it == idx.parent_of.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> Workflow::children(const std::string& task_name) const {
  const auto& idx = index();
  const auto it = idx.child_of.find(task_name);
  return it == idx.child_of.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> Workflow::entry_tasks() const {
  std::vector<std::string> out;
  for (const std::string& t : task_order_) {
    if (parents(t).empty()) out.push_back(t);
  }
  return out;
}

std::vector<std::string> Workflow::exit_tasks() const {
  std::vector<std::string> out;
  for (const std::string& t : task_order_) {
    if (children(t).empty()) out.push_back(t);
  }
  return out;
}

std::vector<std::string> Workflow::input_files() const {
  std::vector<std::string> out;
  const auto& idx = index();
  for (const std::string& f : file_order_) {
    if (idx.producer_of.count(f) == 0 && idx.readers.count(f) > 0) out.push_back(f);
  }
  return out;
}

std::vector<std::string> Workflow::output_files() const {
  std::vector<std::string> out;
  const auto& idx = index();
  for (const std::string& f : file_order_) {
    if (idx.producer_of.count(f) > 0 && idx.readers.count(f) == 0) out.push_back(f);
  }
  return out;
}

std::vector<std::string> Workflow::intermediate_files() const {
  std::vector<std::string> out;
  const auto& idx = index();
  for (const std::string& f : file_order_) {
    if (idx.producer_of.count(f) > 0 && idx.readers.count(f) > 0) out.push_back(f);
  }
  return out;
}

std::vector<std::string> Workflow::topological_order() const {
  std::map<std::string, std::size_t> in_degree;
  for (const std::string& t : task_order_) in_degree[t] = parents(t).size();
  std::deque<std::string> ready;
  for (const std::string& t : task_order_) {
    if (in_degree[t] == 0) ready.push_back(t);
  }
  std::vector<std::string> order;
  order.reserve(task_order_.size());
  while (!ready.empty()) {
    const std::string t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (const std::string& c : children(t)) {
      if (--in_degree[c] == 0) ready.push_back(c);
    }
  }
  if (order.size() != task_order_.size()) {
    for (const auto& [t, deg] : in_degree) {
      if (deg > 0) {
        throw InvariantError("workflow '" + name + "' has a cycle involving task '" +
                             t + "'");
      }
    }
  }
  return order;
}

void Workflow::validate() const {
  for (const std::string& tname : task_order_) {
    const Task& t = tasks_.at(tname);
    for (const std::string& f : t.inputs) {
      if (!has_file(f)) {
        throw ConfigError("task '" + tname + "' reads unknown file '" + f + "'");
      }
    }
    for (const std::string& f : t.outputs) {
      if (!has_file(f)) {
        throw ConfigError("task '" + tname + "' writes unknown file '" + f + "'");
      }
    }
    std::set<std::string> outs(t.outputs.begin(), t.outputs.end());
    for (const std::string& f : t.inputs) {
      if (outs.count(f) > 0) {
        throw ConfigError("task '" + tname + "' both reads and writes file '" + f + "'");
      }
    }
  }
  for (const auto& [parent, child] : control_deps_) {
    if (!has_task(parent) || !has_task(child)) {
      throw ConfigError("control dependency references unknown task ('" + parent +
                        "' -> '" + child + "')");
    }
  }
  (void)index();              // single-writer check
  (void)topological_order();  // acyclicity check
}

double Workflow::total_data_bytes() const {
  double total = 0;
  for (const auto& [_, f] : files_) total += f.size;
  return total;
}

double Workflow::total_flops() const {
  double total = 0;
  for (const auto& [_, t] : tasks_) total += t.flops;
  return total;
}

double Workflow::input_data_bytes() const {
  double total = 0;
  for (const std::string& f : input_files()) total += file(f).size;
  return total;
}

std::size_t Workflow::critical_path_length() const {
  std::map<std::string, std::size_t> depth;
  std::size_t longest = 0;
  for (const std::string& t : topological_order()) {
    std::size_t d = 1;
    for (const std::string& p : parents(t)) d = std::max(d, depth[p] + 1);
    depth[t] = d;
    longest = std::max(longest, d);
  }
  return longest;
}

}  // namespace bbsim::wf
