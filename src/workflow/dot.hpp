// bbsim -- Graphviz DOT export of workflows.
//
// Task vertices are boxes, file vertices (optional) are ellipses; edges run
// producer -> file -> consumer, or task -> task when files are elided.
#pragma once

#include <string>

#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct DotOptions {
  bool show_files = false;       ///< emit file vertices between tasks
  bool color_by_type = true;     ///< one fill colour per task type
  bool label_sizes = true;       ///< annotate file vertices with sizes
};

/// Renders the workflow as a DOT digraph (stable output for a given DAG).
std::string to_dot(const Workflow& workflow, const DotOptions& options = {});

/// Writes to_dot() output to a file; throws util::Error on I/O failure.
void save_dot(const std::string& path, const Workflow& workflow,
              const DotOptions& options = {});

}  // namespace bbsim::wf
