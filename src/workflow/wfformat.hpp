// bbsim -- WfCommons/WorkflowHub JSON workflow interchange.
//
// The paper's 1000Genomes case study consumes execution traces published by
// the WorkflowHub project [43,44] in the community "WfFormat". Two layouts
// exist in the wild; both are accepted:
//
//   legacy (WorkflowHub traces, used by the paper):
//     { "name": ..., "workflow": { "jobs": [
//         { "name": "t1", "type": "compute", "runtime": 12.3, "cores": 1,
//           "files": [ {"name":"f1", "size": 123, "link": "input"},
//                      {"name":"f2", "size": 456, "link": "output"} ] } ] } }
//
//   modern (WfCommons >= 1.4):
//     { "name": ..., "workflow": { "specification": {
//         "tasks": [ {"name":"t1","inputFiles":["f1"],"outputFiles":["f2"]} ],
//         "files": [ {"id":"f1","sizeInBytes":123} ] },
//       "execution": { "tasks": [ {"id":"t1","runtimeInSeconds":12.3,
//                                  "coreCount":1} ] } } }
//
// bbsim extension keys (both layouts, all optional): "flops", "alpha",
// "ioFraction". When "flops" is absent it is derived from runtime via the
// paper's Eq. (4): flops = cores * (1 - ioFraction) * runtime * ref_speed.
#pragma once

#include <string>

#include "json/json.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct WfFormatOptions {
  /// Reference core speed (flop/s) used to derive task flops from observed
  /// runtimes (paper Eq. (4)). Defaults to Cori's Table I value.
  double reference_core_speed = 36.80e9;
  /// Default observed I/O fraction when a task carries none.
  double default_io_fraction = 0.0;
};

/// Parse either layout; validates the result. Throws ParseError/ConfigError.
Workflow from_wfformat(const json::Value& doc, const WfFormatOptions& opt = {});

/// Load from a file on disk.
Workflow load_workflow(const std::string& path, const WfFormatOptions& opt = {});

/// Serialise to the legacy layout with bbsim extension keys (round-trips
/// flops/alpha exactly).
json::Value to_wfformat(const Workflow& workflow);

/// Write to a file, pretty-printed.
void save_workflow(const std::string& path, const Workflow& workflow);

}  // namespace bbsim::wf
