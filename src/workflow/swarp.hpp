// bbsim -- generator for the SWarp cosmology workflow (paper Section III-B).
//
// Structure (paper Figure 2): one sequential stage-in task feeding P
// independent pipelines; each pipeline is Resample -> Combine.
//
//   stage_in --> R_1 --> C_1
//           \--> R_2 --> C_2
//            ...
//
// Per pipeline the paper's instance has 16 input images of 32 MiB and 16
// input weight maps of 16 MiB. Resample produces one resampled image and
// one resampled weight per input pair (the intermediate files whose
// placement Figures 5/10 study); Combine coadds them into a single image
// and weight map.
//
// The compute profiles (sequential seconds at the reference core speed and
// Amdahl alpha) are bbsim calibration choices: the paper publishes only
// observed I/O fractions (0.203 / 0.260) and figure shapes. Defaults are
// chosen so the characterization benches reproduce those shapes; see
// EXPERIMENTS.md.
#pragma once

#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct SwarpConfig {
  int pipelines = 1;
  int images_per_pipeline = 16;
  double image_size = 32.0 * 1024 * 1024;   ///< bytes (32 MiB)
  double weight_size = 16.0 * 1024 * 1024;  ///< bytes (16 MiB)
  /// Output sizing: resampled files mirror their inputs; the coadded image
  /// is combine_output_scale * image_size (and likewise for the weight map).
  double combine_output_scale = 2.0;

  /// Sequential compute time (s) of one Resample at reference_core_speed.
  double resample_seq_seconds = 48.0;
  /// Sequential compute time (s) of one Combine at reference_core_speed.
  double combine_seq_seconds = 36.0;
  double reference_core_speed = 36.80e9;  ///< Cori Table I

  /// Amdahl fractions: Resample parallelises well (per-image threads);
  /// Combine's coaddition serialises on locks (paper Figure 6 discussion).
  double resample_alpha = 0.08;
  double combine_alpha = 0.85;

  int cores_per_task = 32;  ///< requested cores for Resample/Combine
  bool with_stage_in = true;
  /// One stage-in task per pipeline instead of a single shared one. This is
  /// the paper's Figure 7/8 setup: N independent one-pipeline workflow
  /// instances submitted concurrently, each with its own (sequential)
  /// stage-in that copies only that pipeline's inputs.
  bool stage_in_per_pipeline = false;
};

/// Builds the workflow. Task names: "stage_in", "resample_<p>",
/// "combine_<p>"; task types: "stage_in", "resample", "combine".
Workflow make_swarp(const SwarpConfig& config);

}  // namespace bbsim::wf
