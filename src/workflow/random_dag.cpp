#include "workflow/random_dag.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::wf {

Workflow make_random_layered(const RandomDagConfig& config, util::Rng& rng) {
  BBSIM_ASSERT(config.levels >= 1 && config.min_width >= 1 &&
                   config.max_width >= config.min_width,
               "random_dag: invalid level/width configuration");
  Workflow w;
  w.name = "random-layered";

  std::vector<std::vector<std::string>> level_outputs;  // files produced per level

  // Level-0 inputs: a pool of workflow input files.
  std::vector<std::string> inputs;
  const int n_inputs =
      static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
  for (int i = 0; i < n_inputs; ++i) {
    const std::string f = util::format("in_%02d.dat", i);
    w.add_file(File{f, rng.uniform(config.min_file_size, config.max_file_size)});
    inputs.push_back(f);
  }
  level_outputs.push_back(inputs);

  for (int level = 0; level < config.levels; ++level) {
    const int width =
        static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
    std::vector<std::string> produced;
    const std::vector<std::string>& pool = level_outputs.back();
    for (int t = 0; t < width; ++t) {
      Task task;
      task.name = util::format("t_l%02d_%02d", level, t);
      task.type = util::format("level%d", level);
      task.flops = rng.uniform(config.min_seq_seconds, config.max_seq_seconds) *
                   config.reference_core_speed;
      task.alpha = rng.uniform(0.0, 0.3);
      task.requested_cores =
          static_cast<int>(rng.uniform_int(1, config.max_requested_cores));
      for (const std::string& f : pool) {
        if (rng.chance(config.fan_in_probability)) task.inputs.push_back(f);
      }
      if (task.inputs.empty()) {
        // Keep the DAG connected level to level.
        task.inputs.push_back(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
      const std::string out = util::format("f_l%02d_%02d.dat", level, t);
      w.add_file(File{out, rng.uniform(config.min_file_size, config.max_file_size)});
      task.outputs.push_back(out);
      produced.push_back(out);
      w.add_task(std::move(task));
    }
    level_outputs.push_back(std::move(produced));
  }

  w.validate();
  return w;
}

}  // namespace bbsim::wf
