#include "workflow/random_dag.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::wf {

Workflow make_random_layered(const RandomDagConfig& config, util::Rng& rng) {
  BBSIM_ASSERT(config.levels >= 1 && config.min_width >= 1 &&
                   config.max_width >= config.min_width,
               "random_dag: invalid level/width configuration");
  Workflow w;
  w.name = "random-layered";

  std::vector<std::vector<std::string>> level_outputs;  // files produced per level

  // Level-0 inputs: a pool of workflow input files.
  std::vector<std::string> inputs;
  const int n_inputs =
      static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
  for (int i = 0; i < n_inputs; ++i) {
    const std::string f = util::format("in_%02d.dat", i);
    w.add_file(File{f, rng.uniform(config.min_file_size, config.max_file_size)});
    inputs.push_back(f);
  }
  level_outputs.push_back(inputs);

  for (int level = 0; level < config.levels; ++level) {
    const int width =
        static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
    std::vector<std::string> produced;
    const std::vector<std::string>& pool = level_outputs.back();
    for (int t = 0; t < width; ++t) {
      Task task;
      task.name = util::format("t_l%02d_%02d", level, t);
      task.type = util::format("level%d", level);
      task.flops = rng.uniform(config.min_seq_seconds, config.max_seq_seconds) *
                   config.reference_core_speed;
      task.alpha = rng.uniform(0.0, 0.3);
      task.requested_cores =
          static_cast<int>(rng.uniform_int(1, config.max_requested_cores));
      for (const std::string& f : pool) {
        if (rng.chance(config.fan_in_probability)) task.inputs.push_back(f);
      }
      if (task.inputs.empty()) {
        // Keep the DAG connected level to level.
        task.inputs.push_back(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
      const std::string out = util::format("f_l%02d_%02d.dat", level, t);
      w.add_file(File{out, rng.uniform(config.min_file_size, config.max_file_size)});
      task.outputs.push_back(out);
      produced.push_back(out);
      w.add_task(std::move(task));
    }
    level_outputs.push_back(std::move(produced));
  }

  w.validate();
  return w;
}

namespace {

/// Samples flops/alpha/cores from the config ranges (shared by all shapes).
Task sample_task(const std::string& name, const std::string& type,
                 const RandomDagConfig& config, util::Rng& rng) {
  Task task;
  task.name = name;
  task.type = type;
  task.flops = rng.uniform(config.min_seq_seconds, config.max_seq_seconds) *
               config.reference_core_speed;
  task.alpha = rng.uniform(0.0, 0.3);
  task.requested_cores =
      static_cast<int>(rng.uniform_int(1, config.max_requested_cores));
  return task;
}

std::string add_sampled_file(Workflow& w, const std::string& name,
                             const RandomDagConfig& config, util::Rng& rng) {
  w.add_file(File{name, rng.uniform(config.min_file_size, config.max_file_size)});
  return name;
}

Workflow make_chain(const RandomDagConfig& config, util::Rng& rng) {
  Workflow w;
  w.name = "random-chain";
  const int length = static_cast<int>(
      rng.uniform_int(std::max(2, config.min_width), std::max(2, config.max_width)));
  std::string carried = add_sampled_file(w, "in_00.dat", config, rng);
  for (int i = 0; i < length; ++i) {
    Task task = sample_task(util::format("chain_%02d", i), "chain", config, rng);
    task.inputs.push_back(carried);
    carried = add_sampled_file(w, util::format("f_%02d.dat", i), config, rng);
    task.outputs.push_back(carried);
    w.add_task(std::move(task));
  }
  w.validate();
  return w;
}

Workflow make_fan_out(const RandomDagConfig& config, util::Rng& rng) {
  Workflow w;
  w.name = "random-fan-out";
  const int width =
      static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
  const std::string in = add_sampled_file(w, "in_00.dat", config, rng);
  Task root = sample_task("root", "root", config, rng);
  root.inputs.push_back(in);
  // One output file per leaf: the root's writes fan out to independent
  // consumers, so staging/demotion decisions differ per file.
  std::vector<std::string> mids;
  for (int i = 0; i < width; ++i) {
    mids.push_back(add_sampled_file(w, util::format("mid_%02d.dat", i), config, rng));
    root.outputs.push_back(mids.back());
  }
  w.add_task(std::move(root));
  for (int i = 0; i < width; ++i) {
    Task leaf = sample_task(util::format("leaf_%02d", i), "leaf", config, rng);
    leaf.inputs.push_back(mids[static_cast<std::size_t>(i)]);
    leaf.outputs.push_back(
        add_sampled_file(w, util::format("out_%02d.dat", i), config, rng));
    w.add_task(std::move(leaf));
  }
  w.validate();
  return w;
}

Workflow make_fan_in(const RandomDagConfig& config, util::Rng& rng) {
  Workflow w;
  w.name = "random-fan-in";
  const int width =
      static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
  std::vector<std::string> mids;
  for (int i = 0; i < width; ++i) {
    Task src = sample_task(util::format("src_%02d", i), "source", config, rng);
    src.inputs.push_back(
        add_sampled_file(w, util::format("in_%02d.dat", i), config, rng));
    mids.push_back(add_sampled_file(w, util::format("mid_%02d.dat", i), config, rng));
    src.outputs.push_back(mids.back());
    w.add_task(std::move(src));
  }
  Task sink = sample_task("sink", "sink", config, rng);
  sink.inputs = mids;
  sink.outputs.push_back(add_sampled_file(w, "out_00.dat", config, rng));
  w.add_task(std::move(sink));
  w.validate();
  return w;
}

Workflow make_fork_join(const RandomDagConfig& config, util::Rng& rng) {
  Workflow w;
  w.name = "random-fork-join";
  const int width =
      static_cast<int>(rng.uniform_int(config.min_width, config.max_width));
  const std::string in = add_sampled_file(w, "in_00.dat", config, rng);
  Task fork = sample_task("fork", "fork", config, rng);
  fork.inputs.push_back(in);
  std::vector<std::string> forked;
  for (int i = 0; i < width; ++i) {
    forked.push_back(add_sampled_file(w, util::format("fork_%02d.dat", i), config, rng));
    fork.outputs.push_back(forked.back());
  }
  w.add_task(std::move(fork));
  std::vector<std::string> mids;
  for (int i = 0; i < width; ++i) {
    Task mid = sample_task(util::format("work_%02d", i), "work", config, rng);
    mid.inputs.push_back(forked[static_cast<std::size_t>(i)]);
    mids.push_back(add_sampled_file(w, util::format("mid_%02d.dat", i), config, rng));
    mid.outputs.push_back(mids.back());
    w.add_task(std::move(mid));
  }
  Task join = sample_task("join", "join", config, rng);
  join.inputs = mids;
  join.outputs.push_back(add_sampled_file(w, "out_00.dat", config, rng));
  w.add_task(std::move(join));
  w.validate();
  return w;
}

}  // namespace

Workflow make_scale_dag(const ScaleDagConfig& config, util::Rng& rng) {
  BBSIM_ASSERT(config.task_count >= 1 && config.width >= 1 &&
                   config.max_extra_fan_in >= 0,
               "make_scale_dag: invalid configuration");
  Workflow w;
  w.name = "scale-pipelines";

  const std::size_t width = std::min(config.width, config.task_count);
  // One carried file per pipeline: level L's task i reads prev[i].
  std::vector<std::string> prev;
  std::vector<std::string> next(width);
  prev.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    std::string f = util::format("in_%06zu.dat", i);
    w.add_file(File{f, rng.uniform(config.min_file_size, config.max_file_size)});
    prev.push_back(std::move(f));
  }

  std::size_t made = 0;
  for (int level = 0; made < config.task_count; ++level) {
    std::size_t level_width = 0;
    for (std::size_t i = 0; i < width && made < config.task_count; ++i, ++made) {
      Task task;
      task.name = util::format("t_l%04d_%06zu", level, i);
      task.type = "scale";
      task.flops = rng.uniform(config.min_seq_seconds, config.max_seq_seconds) *
                   config.reference_core_speed;
      task.alpha = rng.uniform(0.0, 0.3);
      task.requested_cores =
          static_cast<int>(rng.uniform_int(1, config.max_requested_cores));
      task.inputs.push_back(prev[i]);
      const int extra =
          static_cast<int>(rng.uniform_int(0, config.max_extra_fan_in));
      for (int e = 0; e < extra; ++e) {
        const std::size_t j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1));
        // Constant-size dedup scan: fan-in is at most 1 + max_extra_fan_in.
        if (std::find(task.inputs.begin(), task.inputs.end(), prev[j]) ==
            task.inputs.end()) {
          task.inputs.push_back(prev[j]);
        }
      }
      std::string out = util::format("f_l%04d_%06zu.dat", level, i);
      w.add_file(File{out, rng.uniform(config.min_file_size, config.max_file_size)});
      task.outputs.push_back(out);
      w.add_task(std::move(task));
      next[i] = std::move(out);
      ++level_width;
    }
    // Partial last level: untouched pipelines keep their older output.
    for (std::size_t i = 0; i < level_width; ++i) prev[i] = std::move(next[i]);
  }

  w.validate();
  return w;
}

Workflow make_shaped_dag(DagShape shape, const RandomDagConfig& config, util::Rng& rng) {
  switch (shape) {
    case DagShape::Layered:
      return make_random_layered(config, rng);
    case DagShape::Chain:
      return make_chain(config, rng);
    case DagShape::FanOut:
      return make_fan_out(config, rng);
    case DagShape::FanIn:
      return make_fan_in(config, rng);
    case DagShape::ForkJoin:
      return make_fork_join(config, rng);
  }
  BBSIM_ASSERT(false, "make_shaped_dag: unknown shape");
  return Workflow{};
}

}  // namespace bbsim::wf
