// bbsim -- random layered workflow generator.
//
// Used by property tests (engine invariants must hold on arbitrary DAGs)
// and by the data-placement heuristic study, where structure diversity
// matters more than realism.
#pragma once

#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct RandomDagConfig {
  int levels = 4;
  int min_width = 2;
  int max_width = 8;
  /// Probability that a task consumes any given file of the previous level.
  double fan_in_probability = 0.35;
  double min_file_size = 1e6;
  double max_file_size = 64e6;
  double min_seq_seconds = 1.0;
  double max_seq_seconds = 30.0;
  double reference_core_speed = 36.80e9;
  int max_requested_cores = 4;
};

/// Builds a connected layered DAG. Deterministic for a given (config, rng).
Workflow make_random_layered(const RandomDagConfig& config, util::Rng& rng);

}  // namespace bbsim::wf
