// bbsim -- random layered workflow generator.
//
// Used by property tests (engine invariants must hold on arbitrary DAGs)
// and by the data-placement heuristic study, where structure diversity
// matters more than realism.
#pragma once

#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct RandomDagConfig {
  int levels = 4;
  int min_width = 2;
  int max_width = 8;
  /// Probability that a task consumes any given file of the previous level.
  double fan_in_probability = 0.35;
  double min_file_size = 1e6;
  double max_file_size = 64e6;
  double min_seq_seconds = 1.0;
  double max_seq_seconds = 30.0;
  double reference_core_speed = 36.80e9;
  int max_requested_cores = 4;
};

/// Builds a connected layered DAG. Deterministic for a given (config, rng).
Workflow make_random_layered(const RandomDagConfig& config, util::Rng& rng);

/// Structural archetypes beyond the layered default. Chain / fan-out /
/// fan-in / fork-join are the shapes where scheduling and staging corner
/// cases concentrate (single-wide pipelines, broadcast inputs, all-to-one
/// barriers), so the differential fuzzer samples them explicitly.
enum class DagShape {
  Layered,   ///< make_random_layered
  Chain,     ///< t0 -> t1 -> ... -> tn, one file per hop
  FanOut,    ///< one producer, N independent consumers
  FanIn,     ///< N independent producers, one sink reading all outputs
  ForkJoin,  ///< fan-out then fan-in through a final join task
};

/// Builds a DAG of the requested shape; sizes/durations/core counts are
/// sampled from the same config ranges as the layered generator.
/// Deterministic for a given (shape, config, rng).
Workflow make_shaped_dag(DagShape shape, const RandomDagConfig& config, util::Rng& rng);

/// Parameters for the solver scale harness (bench/flow_solver.cpp): a
/// pipeline-parallel layered DAG big enough to stress 100k-1M-task runs.
struct ScaleDagConfig {
  std::size_t task_count = 10000;  ///< total tasks (>= 1)
  std::size_t width = 512;         ///< concurrent pipelines (tasks per level)
  /// Cross-pipeline reads per task, sampled 0..max (keeps fan-in O(1)).
  int max_extra_fan_in = 2;
  double min_file_size = 1e6;
  double max_file_size = 64e6;
  double min_seq_seconds = 1.0;
  double max_seq_seconds = 30.0;
  double reference_core_speed = 36.80e9;
  int max_requested_cores = 4;
};

/// Builds a `task_count`-task DAG of `width` parallel pipelines in
/// O(task_count) time: task i of level L reads its own pipeline's previous
/// output plus up to `max_extra_fan_in` sampled neighbours -- constant
/// fan-in per task, no O(width^2) pool scans, so generating a 1M-task DAG
/// costs seconds. Deterministic for a given (config, rng).
Workflow make_scale_dag(const ScaleDagConfig& config, util::Rng& rng);

}  // namespace bbsim::wf
