// bbsim -- the scientific workflow model.
//
// A workflow is a DAG in which vertices are tasks and edges are induced by
// the files tasks exchange (paper Section IV-A), plus optional explicit
// control dependencies. Each task carries its sequential compute work in
// flops and an Amdahl non-parallelisable fraction alpha; the calibration
// module (src/model) fills flops in from observed runtimes via the paper's
// Equations (1)-(4).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bbsim::wf {

/// A data product exchanged between tasks.
struct File {
  std::string name;
  double size = 0.0;  ///< bytes
};

/// A workflow task (vertex).
struct Task {
  std::string name;
  std::string type;  ///< category, e.g. "resample", "combine", "individuals"
  /// Sequential compute work (flop), excluding all I/O -- the paper's
  /// T_c(1) times the reference core speed.
  double flops = 0.0;
  /// Amdahl non-parallelisable fraction (paper Eq. (2)); 0 = perfect speedup.
  double alpha = 0.0;
  /// Cores the task wants when scheduled (>= 1).
  int requested_cores = 1;
  std::vector<std::string> inputs;   ///< file names read
  std::vector<std::string> outputs;  ///< file names produced (single writer)
};

/// The task/file DAG with validation and structural queries.
class Workflow {
 public:
  std::string name = "workflow";

  // ------------------------------------------------------------- mutation
  /// Adds a file; re-adding the same name overwrites its size.
  void add_file(File file);
  /// Adds a task; duplicate names throw ConfigError. All referenced files
  /// must be added (before or after); validate() checks.
  void add_task(Task task);
  /// Explicit control dependency (edge without a file).
  void add_control_dep(const std::string& parent, const std::string& child);

  // -------------------------------------------------------------- lookups
  bool has_file(const std::string& file_name) const;
  bool has_task(const std::string& task_name) const;
  const File& file(const std::string& file_name) const;
  const Task& task(const std::string& task_name) const;
  Task& task_mut(const std::string& task_name);

  /// Task names in creation order.
  const std::vector<std::string>& task_names() const { return task_order_; }
  /// File names in creation order.
  const std::vector<std::string>& file_names() const { return file_order_; }
  std::size_t task_count() const { return task_order_.size(); }
  std::size_t file_count() const { return file_order_.size(); }

  // ------------------------------------------------------------ structure
  /// Producer task of a file, or nullopt for workflow inputs.
  std::optional<std::string> producer(const std::string& file_name) const;
  /// Tasks that read the file.
  std::vector<std::string> consumers(const std::string& file_name) const;
  /// Direct predecessors (file producers + control parents), de-duplicated.
  std::vector<std::string> parents(const std::string& task_name) const;
  /// Direct successors.
  std::vector<std::string> children(const std::string& task_name) const;
  /// Tasks with no parents.
  std::vector<std::string> entry_tasks() const;
  /// Tasks with no children.
  std::vector<std::string> exit_tasks() const;
  /// Files no task produces (must be pre-staged).
  std::vector<std::string> input_files() const;
  /// Files no task consumes (final products).
  std::vector<std::string> output_files() const;
  /// Files both produced and consumed.
  std::vector<std::string> intermediate_files() const;

  /// Kahn topological order; throws InvariantError when the graph has a
  /// cycle (naming one involved task).
  std::vector<std::string> topological_order() const;

  /// Full structural validation: referenced files exist, single writer per
  /// file, control deps reference real tasks, acyclicity, positive sizes.
  /// Throws ConfigError / InvariantError.
  void validate() const;

  // ------------------------------------------------------------ aggregates
  double total_data_bytes() const;
  double total_flops() const;
  /// Sum of sizes of input_files().
  double input_data_bytes() const;

  /// Longest chain length in tasks (for scheduling lower bounds in tests).
  std::size_t critical_path_length() const;

 private:
  std::vector<std::string> task_order_;
  std::vector<std::string> file_order_;
  std::map<std::string, Task> tasks_;
  std::map<std::string, File> files_;
  std::vector<std::pair<std::string, std::string>> control_deps_;

  // Cached derived indexes, rebuilt when the structure changes.
  struct Index {
    std::map<std::string, std::string> producer_of;          // file -> task
    std::map<std::string, std::vector<std::string>> readers; // file -> tasks
    std::map<std::string, std::vector<std::string>> parent_of;
    std::map<std::string, std::vector<std::string>> child_of;
  };
  mutable Index index_;
  mutable bool index_dirty_ = true;
  const Index& index() const;
};

}  // namespace bbsim::wf
