#include "workflow/describe.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::wf {

WorkflowSummary summarize(const Workflow& workflow) {
  WorkflowSummary s;
  s.tasks = workflow.task_count();
  s.files = workflow.file_count();
  s.total_flops = workflow.total_flops();
  s.total_bytes = workflow.total_data_bytes();
  s.input_bytes = workflow.input_data_bytes();
  for (const std::string& f : workflow.output_files()) {
    s.output_bytes += workflow.file(f).size;
  }
  for (const std::string& f : workflow.intermediate_files()) {
    s.intermediate_bytes += workflow.file(f).size;
  }

  // Level structure via longest path depth.
  std::map<std::string, std::size_t> depth;
  std::map<std::size_t, std::size_t> width;
  for (const std::string& t : workflow.topological_order()) {
    std::size_t d = 1;
    for (const std::string& p : workflow.parents(t)) d = std::max(d, depth[p] + 1);
    depth[t] = d;
    ++width[d];
    s.levels = std::max(s.levels, d);
  }
  for (const auto& [_, count] : width) s.max_level_width = std::max(s.max_level_width, count);

  for (const std::string& tname : workflow.task_names()) {
    const Task& t = workflow.task(tname);
    s.max_fan_in = std::max(s.max_fan_in, t.inputs.size());
    TypeSummary& ts = s.by_type[t.type];
    ++ts.count;
    ts.total_flops += t.flops;
    ts.max_requested_cores = std::max(ts.max_requested_cores, t.requested_cores);
    for (const std::string& f : t.inputs) ts.total_input_bytes += workflow.file(f).size;
    for (const std::string& f : t.outputs) ts.total_output_bytes += workflow.file(f).size;
  }
  for (const std::string& fname : workflow.file_names()) {
    s.max_fan_out = std::max(s.max_fan_out, workflow.consumers(fname).size());
  }
  return s;
}

std::string describe(const Workflow& workflow) {
  const WorkflowSummary s = summarize(workflow);
  std::string out;
  out += util::format("workflow %s\n", workflow.name.c_str());
  out += util::format("  tasks %zu   files %zu   levels %zu (widest %zu)\n", s.tasks,
                      s.files, s.levels, s.max_level_width);
  out += util::format("  compute %.1f Tflop   data %s\n", s.total_flops / 1e12,
                      util::format_size(s.total_bytes).c_str());
  out += util::format("    inputs %s   intermediates %s   outputs %s\n",
                      util::format_size(s.input_bytes).c_str(),
                      util::format_size(s.intermediate_bytes).c_str(),
                      util::format_size(s.output_bytes).c_str());
  out += util::format("  max fan-in %zu files/task   max fan-out %zu readers/file\n",
                      s.max_fan_in, s.max_fan_out);
  out += "  task types:\n";
  for (const auto& [type, ts] : s.by_type) {
    out += util::format("    %-20s x%-5zu %8.1f Gflop/task  in %-10s out %s\n",
                        type.c_str(), ts.count,
                        ts.total_flops / ts.count / 1e9,
                        util::format_size(ts.total_input_bytes / ts.count).c_str(),
                        util::format_size(ts.total_output_bytes /
                                          std::max<std::size_t>(1, ts.count))
                            .c_str());
  }
  return out;
}

}  // namespace bbsim::wf
