// bbsim -- generator for the 1000Genomes workflow (paper Section IV-C).
//
// The paper's case study uses a WorkflowHub execution trace of the
// 1000Genomes mutation-overlap workflow: 903 tasks over 22 chromosomes,
// ~67 GB total data footprint of which ~52 GB (77%) is input data. The
// trace itself is not redistributable here, so this generator synthesises
// an instance with the published aggregate characteristics and the task
// structure of paper Figure 12:
//
//   per chromosome c:
//     individuals_c_i   (i = 1..25)  chunk_c_i(90 MB) -> ind_c_i(20 MB)
//     individuals_merge_c            all ind_c_i      -> merged_c(180 MB)
//     sifting_c                      sift_in_c(110MB) -> sifted_c(2 MB)
//     pair_overlap_c_p  (p = 1..7)   merged_c, sifted_c, pop_p -> pair out
//     freq_overlap_c_p  (p = 1..7)   merged_c, sifted_c, pop_p -> freq out
//   plus one global "populations" task producing the 7 population files.
//
//   22 * (25 + 1 + 1 + 7 + 7) + 1 = 903 tasks
//   input  = 22*25*90MB + 22*110MB + 140MB            ~ 52.0 GB
//   total  = input + 22*25*20MB + 22*180MB + ...      ~ 67   GB
#pragma once

#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct GenomesConfig {
  int chromosomes = 22;
  int individuals_per_chromosome = 25;
  int populations = 7;  ///< 5 super-populations + ALL + a columns set

  // File sizes (bytes). Defaults hit the published 52 GB / 67 GB totals.
  double chunk_size = 90e6;
  double individuals_out_size = 20e6;
  double merged_size = 180e6;
  double sifting_in_size = 110e6;
  double sifted_size = 2e6;
  double population_raw_size = 20e6;
  double population_size = 20e6;
  double overlap_out_size = 1e6;

  // Sequential compute seconds at the reference core speed (all tasks are
  // single-core in the trace).
  double individuals_seconds = 320.0;
  double merge_seconds = 60.0;
  double sifting_seconds = 24.0;
  double pair_seconds = 80.0;
  double freq_seconds = 70.0;
  double populations_seconds = 40.0;
  double reference_core_speed = 36.80e9;
};

/// Builds the workflow (task types: "individuals", "individuals_merge",
/// "sifting", "pair_overlap", "frequency_overlap", "populations").
Workflow make_1000genomes(const GenomesConfig& config);

}  // namespace bbsim::wf
