// bbsim -- generators for two further classic Pegasus workflow shapes.
//
// The paper argues SWarp's pipelines proxy "most patterns that commonly
// occur in production scientific workflows"; these generators provide the
// other canonical shapes (fan-in mosaicking and two-level post-processing)
// so placement/scheduling studies can check that claim.
//
// Montage-like (astronomy mosaicking):
//   mProject_i  : image_i -> proj_i                 (parallel, one per tile)
//   mDiffFit_k  : proj_i, proj_j -> diff_k          (one per overlapping pair)
//   mConcatFit  : all diff_k -> fits.tbl            (global fan-in)
//   mBackground_i: proj_i, fits.tbl -> corr_i       (parallel)
//   mAdd        : all corr_i -> mosaic              (global fan-in)
//
// CyberShake-like (seismic hazard):
//   ExtractSGT_v: sgt_v -> sub_v                    (one per variation)
//   Seismogram_{v,s}: sub_v, rupture_s -> seis_{v,s}  (wide middle layer)
//   PeakVal_{v,s}: seis_{v,s} -> peak_{v,s}
//   ZipSeis     : all peak_{v,s} -> hazard.zip      (global fan-in)
#pragma once

#include "workflow/workflow.hpp"

namespace bbsim::wf {

struct MontageConfig {
  int tiles = 16;
  double image_size = 16e6;
  double projected_size = 24e6;
  double diff_size = 2e6;
  double corrected_size = 24e6;
  double mosaic_size = 200e6;
  double project_seconds = 20.0;
  double diff_seconds = 4.0;
  double concat_seconds = 10.0;
  double background_seconds = 12.0;
  double add_seconds = 60.0;
  double reference_core_speed = 36.80e9;
};

/// Builds a Montage-like mosaicking workflow (overlaps = consecutive tiles).
Workflow make_montage(const MontageConfig& config);

struct CyberShakeConfig {
  int variations = 4;
  int ruptures = 20;
  double sgt_size = 400e6;
  double sub_sgt_size = 150e6;
  double rupture_size = 1e6;
  double seismogram_size = 0.2e6;
  double peak_size = 0.01e6;
  double extract_seconds = 110.0;
  double seismogram_seconds = 48.0;
  double peak_seconds = 2.0;
  double zip_seconds = 30.0;
  double reference_core_speed = 36.80e9;
};

/// Builds a CyberShake-like hazard workflow.
Workflow make_cybershake(const CyberShakeConfig& config);

}  // namespace bbsim::wf
