#include "workflow/wfformat.hpp"

#include "util/error.hpp"

namespace bbsim::wf {

using json::Value;
using util::ParseError;

namespace {

/// Derive sequential flops from an observed runtime (paper Eq. (4)):
/// T_c(1) = p * (1 - lambda_io) * T(p);  flops = T_c(1) * core_speed.
double flops_from_runtime(double runtime, double cores, double io_fraction,
                          double core_speed) {
  return cores * (1.0 - io_fraction) * runtime * core_speed;
}

void parse_legacy_job(Workflow& w, const Value& job, const WfFormatOptions& opt) {
  Task t;
  t.name = job.get_string("name", job.get_string("id", ""));
  if (t.name.empty()) throw ParseError("job without name/id");
  t.type = job.get_string("category", job.get_string("type", "compute"));
  t.requested_cores = static_cast<int>(job.get_int("cores", 1));
  t.alpha = job.get_number("alpha", 0.0);
  const double io_fraction = job.get_number("ioFraction", opt.default_io_fraction);
  if (job.contains("files")) {
    for (const Value& f : job.at("files").as_array()) {
      const std::string fname = f.get_string("name", f.get_string("id", ""));
      if (fname.empty()) throw ParseError("file without name in job '" + t.name + "'");
      const double size = f.get_number("size", f.get_number("sizeInBytes", 0.0));
      w.add_file(File{fname, size});
      const std::string link = f.get_string("link", "input");
      if (link == "output") {
        t.outputs.push_back(fname);
      } else {
        t.inputs.push_back(fname);
      }
    }
  }
  if (job.contains("flops")) {
    t.flops = job.at("flops").as_number();
  } else {
    const double runtime = job.get_number("runtime",
                                          job.get_number("runtimeInSeconds", 0.0));
    t.flops = flops_from_runtime(runtime, t.requested_cores, io_fraction,
                                 opt.reference_core_speed);
  }
  w.add_task(std::move(t));
}

Workflow parse_legacy(const Value& doc, const Value& wf_node, const WfFormatOptions& opt) {
  Workflow w;
  w.name = doc.get_string("name", "workflow");
  for (const Value& job : wf_node.at("jobs").as_array()) parse_legacy_job(w, job, opt);
  // Optional explicit dependency lists ("parents": [names]).
  for (const Value& job : wf_node.at("jobs").as_array()) {
    const std::string child = job.get_string("name", job.get_string("id", ""));
    if (job.contains("parents")) {
      for (const Value& p : job.at("parents").as_array()) {
        w.add_control_dep(p.as_string(), child);
      }
    }
  }
  return w;
}

Workflow parse_modern(const Value& doc, const Value& wf_node, const WfFormatOptions& opt) {
  Workflow w;
  w.name = doc.get_string("name", "workflow");
  const Value& spec = wf_node.at("specification");

  if (spec.contains("files")) {
    for (const Value& f : spec.at("files").as_array()) {
      const std::string fname = f.get_string("id", f.get_string("name", ""));
      if (fname.empty()) throw ParseError("file without id");
      w.add_file(File{fname, f.get_number("sizeInBytes", f.get_number("size", 0.0))});
    }
  }

  // Execution metadata (runtimes) indexed by task id.
  std::map<std::string, const Value*> exec_by_id;
  if (wf_node.contains("execution") && wf_node.at("execution").contains("tasks")) {
    for (const Value& et : wf_node.at("execution").at("tasks").as_array()) {
      exec_by_id[et.get_string("id", et.get_string("name", ""))] = &et;
    }
  }

  for (const Value& tv : spec.at("tasks").as_array()) {
    Task t;
    t.name = tv.get_string("id", tv.get_string("name", ""));
    if (t.name.empty()) throw ParseError("task without id/name");
    t.type = tv.get_string("category", tv.get_string("type", "compute"));
    t.alpha = tv.get_number("alpha", 0.0);
    if (tv.contains("inputFiles")) {
      for (const Value& f : tv.at("inputFiles").as_array()) t.inputs.push_back(f.as_string());
    }
    if (tv.contains("outputFiles")) {
      for (const Value& f : tv.at("outputFiles").as_array()) t.outputs.push_back(f.as_string());
    }
    double runtime = tv.get_number("runtimeInSeconds", 0.0);
    double cores = 1.0;
    double io_fraction = tv.get_number("ioFraction", opt.default_io_fraction);
    if (const auto it = exec_by_id.find(t.name); it != exec_by_id.end()) {
      runtime = it->second->get_number("runtimeInSeconds", runtime);
      cores = it->second->get_number("coreCount", cores);
      io_fraction = it->second->get_number("ioFraction", io_fraction);
    }
    t.requested_cores = std::max(1, static_cast<int>(cores));
    if (tv.contains("flops")) {
      t.flops = tv.at("flops").as_number();
    } else {
      t.flops = flops_from_runtime(runtime, t.requested_cores, io_fraction,
                                   opt.reference_core_speed);
    }
    w.add_task(std::move(t));
  }

  // Explicit parent/child lists (file-induced edges are derived anyway).
  for (const Value& tv : spec.at("tasks").as_array()) {
    const std::string name = tv.get_string("id", tv.get_string("name", ""));
    if (tv.contains("parents")) {
      for (const Value& p : tv.at("parents").as_array()) {
        w.add_control_dep(p.as_string(), name);
      }
    }
  }
  return w;
}

}  // namespace

Workflow from_wfformat(const Value& doc, const WfFormatOptions& opt) {
  if (!doc.contains("workflow")) throw ParseError("missing top-level 'workflow' object");
  const Value& wf_node = doc.at("workflow");
  Workflow w;
  if (wf_node.contains("jobs")) {
    w = parse_legacy(doc, wf_node, opt);
  } else if (wf_node.contains("specification")) {
    w = parse_modern(doc, wf_node, opt);
  } else {
    throw ParseError("workflow object has neither 'jobs' nor 'specification'");
  }
  w.validate();
  return w;
}

Workflow load_workflow(const std::string& path, const WfFormatOptions& opt) {
  return from_wfformat(json::parse_file(path), opt);
}

json::Value to_wfformat(const Workflow& workflow) {
  json::Object root;
  root.set("name", workflow.name);
  root.set("schemaVersion", "bbsim-legacy-1.0");
  json::Object wf_node;
  json::Array jobs;
  for (const std::string& tname : workflow.task_names()) {
    const Task& t = workflow.task(tname);
    json::Object job;
    job.set("name", t.name);
    job.set("type", t.type);
    job.set("cores", t.requested_cores);
    job.set("flops", t.flops);
    job.set("alpha", t.alpha);
    json::Array files;
    auto add_file = [&](const std::string& fname, const char* link) {
      json::Object f;
      f.set("name", fname);
      f.set("size", workflow.file(fname).size);
      f.set("link", link);
      files.push_back(Value(std::move(f)));
    };
    for (const std::string& f : t.inputs) add_file(f, "input");
    for (const std::string& f : t.outputs) add_file(f, "output");
    job.set("files", Value(std::move(files)));
    jobs.push_back(Value(std::move(job)));
  }
  wf_node.set("jobs", Value(std::move(jobs)));
  root.set("workflow", Value(std::move(wf_node)));
  return Value(std::move(root));
}

void save_workflow(const std::string& path, const Workflow& workflow) {
  json::write_file(path, to_wfformat(workflow));
}

}  // namespace bbsim::wf
