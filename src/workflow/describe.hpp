// bbsim -- structural summaries of workflows (what the paper's Table-less
// prose reports: task counts, data footprint, level structure, fan-in/out).
#pragma once

#include <map>
#include <string>

#include "workflow/workflow.hpp"

namespace bbsim::wf {

/// Per-task-type aggregate.
struct TypeSummary {
  std::size_t count = 0;
  double total_flops = 0.0;
  double total_input_bytes = 0.0;
  double total_output_bytes = 0.0;
  int max_requested_cores = 1;
};

struct WorkflowSummary {
  std::size_t tasks = 0;
  std::size_t files = 0;
  std::size_t levels = 0;          ///< critical-path length in tasks
  std::size_t max_level_width = 0; ///< most tasks at one depth
  double total_flops = 0.0;
  double total_bytes = 0.0;
  double input_bytes = 0.0;        ///< workflow inputs (pre-staged data)
  double output_bytes = 0.0;       ///< final products
  double intermediate_bytes = 0.0;
  std::size_t max_fan_in = 0;      ///< most inputs on one task
  std::size_t max_fan_out = 0;     ///< most consumers of one file
  std::map<std::string, TypeSummary> by_type;
};

/// Computes the summary (O(tasks + files)).
WorkflowSummary summarize(const Workflow& workflow);

/// Renders a human-readable multi-line report (used by bbsim_run --describe).
std::string describe(const Workflow& workflow);

}  // namespace bbsim::wf
