/// \file
/// bbsim::oracle -- structural diff between an engine run and a reference
/// replay. The comparison the differential tester is built on: per-task
/// timestamps, volumes, placements, and the run-level aggregates, all
/// within a relative/absolute tolerance that absorbs float noise without
/// hiding real timing bugs.
#pragma once

#include <string>
#include <vector>

#include "exec/trace.hpp"
#include "oracle/replay.hpp"

namespace bbsim::oracle {

/// Tolerances for the scalar comparisons. Two values agree when
/// |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
struct DiffOptions {
  double rel_tol = 1e-6;
  double abs_tol = 1e-6;
};

/// One disagreement between the engine and the reference replay.
struct Divergence {
  std::string field;  ///< e.g. "makespan", "t_end", "host"
  std::string task;   ///< empty for run-level fields
  double engine_value = 0.0;
  double reference_value = 0.0;

  std::string describe() const;
};

/// True when the two scalars agree under the tolerance (infinities must
/// match exactly; NaN never agrees).
bool values_agree(double a, double b, const DiffOptions& opts);

/// Compares an engine result against a reference replay. Returns every
/// divergence found (empty = the runs agree).
std::vector<Divergence> diff_results(const exec::Result& engine, const RefResult& reference,
                                     const DiffOptions& opts = {});

}  // namespace bbsim::oracle
