#include "oracle/maxmin_ref.hpp"

#include <limits>

#include "util/error.hpp"

namespace bbsim::oracle {

namespace {

constexpr long double kInf = std::numeric_limits<long double>::infinity();

/// Water level at which `r` saturates given the already-frozen load, or
/// infinity when the resource cannot bind this round. Everything is
/// recomputed from the frozen-rate vector -- no state is carried between
/// rounds.
long double saturation_level(const RefProblem& p, std::uint32_t r,
                             const std::vector<long double>& rate,
                             const std::vector<bool>& frozen) {
  const long double cap = p.capacities[r];
  if (cap == kInf) return kInf;
  long double frozen_load = 0.0L;
  long double unfrozen_weight = 0.0L;
  for (std::size_t f = 0; f < p.flows.size(); ++f) {
    bool crosses = false;
    for (const std::uint32_t id : p.flows[f].path) {
      if (id == r) {
        crosses = true;
        break;
      }
    }
    if (!crosses) continue;
    if (frozen[f]) {
      frozen_load += rate[f];
    } else {
      unfrozen_weight += static_cast<long double>(p.flows[f].weight);
    }
  }
  if (unfrozen_weight <= 0.0L) return kInf;
  const long double lvl = (cap - frozen_load) / unfrozen_weight;
  return lvl < 0.0L ? 0.0L : lvl;
}

/// The level at which flow `f` freezes: the minimum of its cap level and
/// the saturation level of every resource it crosses.
long double binding_level(const RefProblem& p, std::size_t f,
                          const std::vector<long double>& rate,
                          const std::vector<bool>& frozen) {
  long double lvl = static_cast<long double>(p.flows[f].rate_cap) /
                    static_cast<long double>(p.flows[f].weight);
  for (const std::uint32_t r : p.flows[f].path) {
    const long double s = saturation_level(p, r, rate, frozen);
    if (s < lvl) lvl = s;
  }
  return lvl;
}

}  // namespace

std::vector<double> reference_maxmin(const RefProblem& p) {
  const std::size_t n = p.flows.size();
  for (const RefFlow& f : p.flows) {
    BBSIM_ASSERT(f.weight > 0, "reference_maxmin: flow weight must be > 0");
    BBSIM_ASSERT(f.rate_cap > 0, "reference_maxmin: flow rate cap must be > 0");
    for (const std::uint32_t r : f.path) {
      BBSIM_ASSERT(r < p.capacities.size(), "reference_maxmin: bad resource id");
      BBSIM_ASSERT(p.capacities[r] >= 0, "reference_maxmin: negative capacity");
    }
  }

  std::vector<bool> frozen(n, false);
  std::vector<long double> rate(n, 0.0L);

  std::size_t remaining = n;
  while (remaining > 0) {
    // The global water level this round: the tightest binding constraint
    // over all unfrozen flows, each evaluated from scratch.
    long double level = kInf;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      const long double lvl = binding_level(p, f, rate, frozen);
      if (lvl < level) level = lvl;
    }

    if (level == kInf) {
      // Nothing binds: the remaining flows are unconstrained.
      for (std::size_t f = 0; f < n; ++f) {
        if (!frozen[f]) {
          rate[f] = kInf;
          frozen[f] = true;
        }
      }
      break;
    }

    // Freeze every flow whose own binding constraint sits at the level
    // (within a relative epsilon for float noise). The freeze set is
    // decided against the round-start state, then applied as a batch. At
    // least one flow always qualifies: the argmin above.
    const long double slack = 1e-12L * (level < 1.0L ? 1.0L : level);
    std::vector<std::size_t> to_freeze;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f]) continue;
      if (binding_level(p, f, rate, frozen) <= level + slack) to_freeze.push_back(f);
    }
    BBSIM_ASSERT(!to_freeze.empty(), "reference_maxmin: no progress");
    for (const std::size_t f : to_freeze) {
      const long double cap = static_cast<long double>(p.flows[f].rate_cap);
      const long double alloc = level * static_cast<long double>(p.flows[f].weight);
      rate[f] = alloc < cap ? alloc : cap;
      if (rate[f] < 0.0L) rate[f] = 0.0L;
      frozen[f] = true;
      --remaining;
    }
  }

  std::vector<double> out(n, 0.0);
  for (std::size_t f = 0; f < n; ++f) {
    out[f] = rate[f] == kInf ? std::numeric_limits<double>::infinity()
                             : static_cast<double>(rate[f]);
  }
  return out;
}

}  // namespace bbsim::oracle
