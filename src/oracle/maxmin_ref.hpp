/// \file
/// bbsim::oracle -- brute-force reference max-min solver.
///
/// A deliberately naive implementation of weighted max-min fairness with
/// per-flow rate caps: iterative bottleneck freezing that recomputes every
/// per-resource aggregate from scratch each round and accumulates in long
/// double. No incremental updates, no cached indices, no free-lists --
/// nothing shared with flow::Network::solve() beyond the mathematical
/// definition (progressive filling). It exists to be *obviously* correct so
/// the differential tester (src/fuzz) can treat it as ground truth. Roughly
/// O(F^2 * P) for F flows of path length P -- fine for test problems,
/// unusable for production sweeps.
#pragma once

#include <cstdint>
#include <vector>

namespace bbsim::oracle {

/// One flow of a reference problem. Resource ids index into the capacity
/// vector handed to reference_maxmin().
struct RefFlow {
  std::vector<std::uint32_t> path;
  double rate_cap;  ///< per-flow ceiling; infinity = uncapped
  double weight = 1.0;
};

/// A max-min problem: resource capacities (infinity = unconstrained) and
/// the flows crossing them.
struct RefProblem {
  std::vector<double> capacities;
  std::vector<RefFlow> flows;
};

/// Computes the weighted max-min fair allocation by progressive filling.
/// Returns one rate per flow, in input order; a flow with no finite
/// constraint anywhere gets rate infinity (it would complete instantly).
std::vector<double> reference_maxmin(const RefProblem& problem);

}  // namespace bbsim::oracle
