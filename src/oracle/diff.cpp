#include "oracle/diff.hpp"

#include <cmath>
#include <sstream>

namespace bbsim::oracle {

std::string Divergence::describe() const {
  std::ostringstream os;
  os << field;
  if (!task.empty()) os << "[" << task << "]";
  os << ": engine=" << engine_value << " reference=" << reference_value;
  return os.str();
}

bool values_agree(double a, double b, const DiffOptions& opts) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::isinf(a) || std::isinf(b)) return a == b;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= opts.abs_tol + opts.rel_tol * scale;
}

namespace {

void check(std::vector<Divergence>& out, const DiffOptions& opts, const std::string& field,
           const std::string& task, double engine_value, double reference_value) {
  if (!values_agree(engine_value, reference_value, opts)) {
    out.push_back(Divergence{field, task, engine_value, reference_value});
  }
}

void check_exact(std::vector<Divergence>& out, const std::string& field,
                 const std::string& task, double engine_value, double reference_value) {
  if (engine_value != reference_value) {
    out.push_back(Divergence{field, task, engine_value, reference_value});
  }
}

}  // namespace

std::vector<Divergence> diff_results(const exec::Result& engine, const RefResult& reference,
                                     const DiffOptions& opts) {
  std::vector<Divergence> out;

  check(out, opts, "makespan", "", engine.makespan, reference.makespan);
  check(out, opts, "stage_in_duration", "", engine.stage_in_duration,
        reference.stage_in_duration);
  check(out, opts, "stage_out_duration", "", engine.stage_out_duration,
        reference.stage_out_duration);
  check(out, opts, "workflow_span", "", engine.workflow_span, reference.workflow_span);
  check_exact(out, "demoted_writes", "", static_cast<double>(engine.demoted_writes),
              static_cast<double>(reference.demoted_writes));
  check_exact(out, "skipped_stage_files", "",
              static_cast<double>(engine.skipped_stage_files),
              static_cast<double>(reference.skipped_stage_files));
  check_exact(out, "evicted_files", "", static_cast<double>(engine.evicted_files),
              static_cast<double>(reference.evicted_files));

  for (const auto& [name, rec] : engine.tasks) {
    const auto it = reference.tasks.find(name);
    if (it == reference.tasks.end()) {
      out.push_back(Divergence{"task_missing_in_reference", name, 1.0, 0.0});
      continue;
    }
    const RefTask& ref = it->second;
    check_exact(out, "host", name, static_cast<double>(rec.host),
                static_cast<double>(ref.host));
    check_exact(out, "cores", name, static_cast<double>(rec.cores),
                static_cast<double>(ref.cores));
    check(out, opts, "t_ready", name, rec.t_ready, ref.t_ready);
    check(out, opts, "t_start", name, rec.t_start, ref.t_start);
    check(out, opts, "t_reads_done", name, rec.t_reads_done, ref.t_reads_done);
    check(out, opts, "t_compute_done", name, rec.t_compute_done, ref.t_compute_done);
    check(out, opts, "t_end", name, rec.t_end, ref.t_end);
    check(out, opts, "bytes_read", name, rec.bytes_read, ref.bytes_read);
    check(out, opts, "bytes_written", name, rec.bytes_written, ref.bytes_written);
  }
  for (const auto& [name, _] : reference.tasks) {
    if (engine.tasks.count(name) == 0) {
      out.push_back(Divergence{"task_missing_in_engine", name, 0.0, 1.0});
    }
  }
  return out;
}

}  // namespace bbsim::oracle
