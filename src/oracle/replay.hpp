/// \file
/// bbsim::oracle -- the straight-line reference execution replayer.
///
/// A second, independent implementation of the simulator's execution
/// semantics (paper Section IV-A), written to be simple rather than fast:
///
///   * every rate allocation is recomputed from scratch by the brute-force
///     reference max-min solver (maxmin_ref.hpp) -- no incremental solver
///     state, no flow-id recycling, no cached aggregates;
///   * transfer progress, storage occupancy and replica bookkeeping are
///     plain maps and long-double accumulators;
///   * the event loop is a flat (time, sequence)-ordered list with the same
///     FIFO tie-break contract as sim::Engine.
///
/// The replayer shares only *decision inputs* with the production engine --
/// the Workflow graph queries, the placement policy objects and the pinning
/// assignment (exec::compute_home_hosts) -- because a divergence in those
/// would make both sides pick different scenarios rather than expose a
/// timing bug. All *timing math* (flow rates, plan latencies, metadata and
/// striping costs, Amdahl compute times, completion ordering) is
/// re-derived here from the platform spec and the paper's equations.
///
/// The differential tester (src/fuzz) runs exec::Simulation and
/// reference_execute on the same scenario and diffs per-task timestamps and
/// the final makespan (diff.hpp).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "exec/engine.hpp"
#include "platform/spec.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::oracle {

/// Per-task timings recomputed by the replayer (the subset of
/// exec::TaskRecord the differential tester compares).
struct RefTask {
  std::size_t host = 0;
  int cores = 1;
  double t_ready = 0.0;
  double t_start = 0.0;
  double t_reads_done = 0.0;
  double t_compute_done = 0.0;
  double t_end = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

/// Everything a reference replay produces.
struct RefResult {
  double makespan = 0.0;
  double stage_in_duration = 0.0;
  double stage_out_duration = 0.0;
  double workflow_span = 0.0;
  std::size_t demoted_writes = 0;
  std::size_t skipped_stage_files = 0;
  std::size_t evicted_files = 0;
  std::map<std::string, RefTask> tasks;
};

/// The execution-config subset the replayer models. Matches the semantics
/// of the same-named exec::ExecutionConfig fields; testbed perturbations,
/// compute noise, metrics and auditing are deliberately out of scope (the
/// differential tester never samples them).
struct RefConfig {
  std::shared_ptr<exec::PlacementPolicy> placement;  ///< default: all_bb_policy()
  exec::StageInMode stage_in_mode = exec::StageInMode::Task;
  exec::SchedulerPolicy scheduler = exec::SchedulerPolicy::Fcfs;
  bool stage_out = false;
  bool bb_eviction = false;
  int stage_in_width = 1;
  int force_cores = 0;
  std::map<std::string, int> cores_by_type;
  bool locality_pinning = true;
  exec::PinningConfig pinning;
};

/// Runs the workflow on the platform from first principles and returns the
/// recomputed timings. Throws the same typed errors as the engine on
/// infeasible scenarios (task wider than every host, unreadable replica).
RefResult reference_execute(const platform::PlatformSpec& platform,
                            const wf::Workflow& workflow, const RefConfig& config = {});

}  // namespace bbsim::oracle
