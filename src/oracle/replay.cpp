#include "oracle/replay.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "exec/pinning.hpp"
#include "exec/placement.hpp"
#include "oracle/maxmin_ref.hpp"
#include "util/error.hpp"

namespace bbsim::oracle {

using exec::SchedulerPolicy;
using exec::StageInMode;
using exec::Tier;
using platform::BBMode;
using platform::StorageKind;
using util::ConfigError;
using util::InvariantError;
using util::NotFoundError;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr const char* kStageInType = "stage_in";

/// Amdahl's Law, re-derived from paper Eq. (2) rather than shared with
/// src/model: time = alpha * t_seq + (1 - alpha) * t_seq / cores.
double ref_amdahl(double t_seq, int cores, double alpha) {
  return alpha * t_seq + (1.0 - alpha) * t_seq / static_cast<double>(cores);
}

/// One in-flight data movement: a byte volume crossing a resource path.
struct RFlow {
  std::vector<std::uint32_t> path;
  double rate_cap = kInf;
  double volume = 0.0;
  long double remaining = 0.0L;
  double rate = 0.0;
  std::function<void()> done;
};

/// A planned I/O operation: fixed latency, then a metadata flow, then the
/// data sub-flows (mirrors storage::IoPlan from first principles).
struct RPlan {
  double latency = 0.0;
  double metadata_ops = 0.0;
  std::uint32_t metadata_res = 0;
  std::vector<std::pair<double, std::vector<std::uint32_t>>> data;  // volume, path
  double rate_cap = kInf;
};

/// Where a file's bytes live inside one storage service.
struct RReplica {
  double size = 0.0;
  int node = 0;  ///< storage node; -1 = striped over all nodes
  std::size_t creator_host = 0;
};

/// One storage service's naive state: spec pointer, resource ids, replicas.
struct RService {
  const platform::StorageSpec* spec = nullptr;
  std::vector<std::uint32_t> disk_read, disk_write, link_up, link_down;
  std::uint32_t metadata = 0;
  std::map<std::string, RReplica> replicas;
  long double used_bytes = 0.0L;
};

/// The replayer. One instance runs one scenario, straight through.
class RefSim {
 public:
  RefSim(platform::PlatformSpec platform, const wf::Workflow& workflow, RefConfig config)
      : spec_(std::move(platform)), workflow_(workflow), config_(std::move(config)) {
    if (!config_.placement) config_.placement = exec::all_bb_policy();
    spec_.validate_and_normalize();
    workflow_.validate();
    build_resources();
  }

  RefResult run();

 private:
  // ------------------------------------------------------- event kernel
  // A flat (time, sequence)-ordered map with FIFO ties, the same contract
  // as sim::Engine's priority queue.
  using EventKey = std::pair<double, std::uint64_t>;

  EventKey schedule_in(double dt, std::function<void()> fn) {
    const EventKey key{now_ + dt, next_seq_++};
    events_.emplace(key, std::move(fn));
    return key;
  }

  void cancel(const EventKey& key) { events_.erase(key); }

  void run_events() {
    while (!events_.empty()) {
      const auto it = events_.begin();
      now_ = it->first.first;
      std::function<void()> fn = std::move(it->second);
      events_.erase(it);
      fn();
    }
  }

  // --------------------------------------------------------- flow layer
  // A naive re-statement of flow::FlowManager: settle progress, recompute
  // every rate from scratch with the reference solver, scan for the next
  // completion.
  static double completion_tolerance(const RFlow& f) {
    return 1e-6 + 1e-9 * f.volume;
  }

  void start_flow(double volume, std::vector<std::uint32_t> path, double cap,
                  std::function<void()> done) {
    settle();
    RFlow f;
    f.path = std::move(path);
    f.rate_cap = cap;
    f.volume = volume;
    f.remaining = static_cast<long double>(volume);
    f.done = std::move(done);
    flows_.push_back(std::move(f));
    reschedule();
  }

  void settle() {
    const double dt = now_ - last_settle_;
    last_settle_ = now_;
    if (dt <= 0.0) return;
    for (RFlow& f : flows_) {
      if (f.rate == kInf) continue;  // zero-duration flow: no steady progress
      long double moved = static_cast<long double>(f.rate) * static_cast<long double>(dt);
      if (moved > f.remaining) moved = f.remaining;
      if (moved > 0.0L) f.remaining -= moved;
    }
  }

  void solve_rates() {
    RefProblem p;
    p.capacities = res_capacity_;
    p.flows.reserve(flows_.size());
    for (const RFlow& f : flows_) p.flows.push_back(RefFlow{f.path, f.rate_cap, 1.0});
    const std::vector<double> rates = reference_maxmin(p);
    for (std::size_t i = 0; i < flows_.size(); ++i) flows_[i].rate = rates[i];
  }

  void reschedule() {
    if (wake_scheduled_) {
      cancel(wake_key_);
      wake_scheduled_ = false;
    }
    if (flows_.empty()) return;
    solve_rates();
    double horizon = kInf;
    for (const RFlow& f : flows_) {
      const double remaining = static_cast<double>(f.remaining);
      double eta;
      if (remaining <= completion_tolerance(f) || f.rate == kInf) {
        eta = 0.0;
      } else if (f.rate <= 0.0) {
        continue;  // starved: waits for capacity to free up
      } else {
        eta = remaining / f.rate;
      }
      horizon = std::min(horizon, eta);
    }
    if (horizon == kInf) return;  // everything starved
    if (now_ + horizon == now_) horizon = 0.0;  // sub-resolution: fire now
    wake_key_ = schedule_in(horizon, [this] { on_wake(); });
    wake_scheduled_ = true;
  }

  void on_wake() {
    wake_scheduled_ = false;
    settle();
    // Collect finished flows in creation order, remove them, re-solve, then
    // run callbacks -- the same consistency contract as FlowManager.
    std::vector<std::function<void()>> callbacks;
    std::vector<RFlow> keep;
    keep.reserve(flows_.size());
    for (RFlow& f : flows_) {
      const double remaining = static_cast<double>(f.remaining);
      const bool finished = remaining <= completion_tolerance(f) || f.rate == kInf ||
                            (f.rate > 0.0 && now_ + remaining / f.rate == now_);
      if (finished) {
        callbacks.push_back(std::move(f.done));
      } else {
        keep.push_back(std::move(f));
      }
    }
    flows_ = std::move(keep);
    reschedule();
    for (std::function<void()>& cb : callbacks) {
      if (cb) cb();
    }
  }

  // ----------------------------------------------------- platform model
  std::uint32_t add_resource(double capacity) {
    res_capacity_.push_back(capacity);
    return static_cast<std::uint32_t>(res_capacity_.size() - 1);
  }

  void build_resources() {
    for (const platform::HostSpec& h : spec_.hosts) {
      nic_up_.push_back(add_resource(h.nic_bw));
      nic_down_.push_back(add_resource(h.nic_bw));
    }
    for (const platform::StorageSpec& s : spec_.storage) {
      RService svc;
      svc.spec = &s;
      for (int i = 0; i < s.num_nodes; ++i) {
        svc.disk_read.push_back(add_resource(s.disk.read_bw));
        svc.disk_write.push_back(add_resource(s.disk.write_bw));
        svc.link_up.push_back(add_resource(s.link.bandwidth));
        svc.link_down.push_back(add_resource(s.link.bandwidth));
      }
      svc.metadata = add_resource(s.metadata_ops_per_sec);
      services_.push_back(std::move(svc));
    }
  }

  // ----------------------------------------------------- storage model
  RService* pfs() {
    for (RService& s : services_) {
      if (s.spec->kind == StorageKind::PFS) return &s;
    }
    throw ConfigError("platform has no PFS service");
  }

  RService* bb() {
    for (RService& s : services_) {
      if (s.spec->kind != StorageKind::PFS) return &s;
    }
    return nullptr;
  }

  static double total_capacity(const RService& svc) {
    if (svc.spec->disk.capacity == kInf) return kInf;
    return svc.spec->disk.capacity * svc.spec->num_nodes;
  }

  static int placement_node(const RService& svc, const std::string& file_name,
                            std::size_t host_idx) {
    switch (svc.spec->kind) {
      case StorageKind::PFS:
        return static_cast<int>(std::hash<std::string>{}(file_name) %
                                static_cast<std::size_t>(svc.spec->num_nodes));
      case StorageKind::SharedBB:
        if (svc.spec->mode == BBMode::Striped) return -1;
        return static_cast<int>(host_idx % static_cast<std::size_t>(svc.spec->num_nodes));
      case StorageKind::NodeLocalBB:
        return static_cast<int>(host_idx);
    }
    return 0;
  }

  static bool readable_from(const RService& svc, const std::string& file_name,
                            std::size_t host_idx) {
    const auto it = svc.replicas.find(file_name);
    if (it == svc.replicas.end()) return false;
    switch (svc.spec->kind) {
      case StorageKind::PFS:
        return true;
      case StorageKind::SharedBB:
        return svc.spec->mode != BBMode::Private || it->second.creator_host == host_idx;
      case StorageKind::NodeLocalBB:
        return static_cast<std::size_t>(it->second.node) == host_idx;
    }
    return false;
  }

  static double metadata_ops_per_file(const RService& svc) {
    if (svc.spec->kind == StorageKind::SharedBB && svc.spec->mode == BBMode::Striped) {
      return static_cast<double>(svc.spec->num_nodes);
    }
    return 1.0;
  }

  void reserve_capacity(RService& svc, const std::string& name, double size) {
    long double delta = static_cast<long double>(size);
    const auto it = svc.replicas.find(name);
    if (it != svc.replicas.end()) delta -= static_cast<long double>(it->second.size);
    const double cap = total_capacity(svc);
    if (cap != kInf &&
        static_cast<double>(svc.used_bytes + delta) > cap * (1 + 1e-9)) {
      throw ConfigError("storage '" + svc.spec->name + "' capacity exceeded writing '" +
                        name + "'");
    }
    svc.used_bytes += delta;
  }

  void install_replica(RService& svc, const std::string& name, double size,
                       std::size_t host_idx) {
    svc.replicas[name] = RReplica{size, placement_node(svc, name, host_idx), host_idx};
  }

  void register_file(RService& svc, const std::string& name, double size,
                     std::size_t host_idx) {
    reserve_capacity(svc, name, size);
    install_replica(svc, name, size, host_idx);
  }

  void erase_file(RService& svc, const std::string& name) {
    const auto it = svc.replicas.find(name);
    if (it == svc.replicas.end()) return;
    svc.used_bytes -= static_cast<long double>(it->second.size);
    svc.replicas.erase(it);
  }

  /// Best service to read from: a readable burst-buffer replica wins over
  /// the PFS copy (mirrors StorageSystem::best_source).
  RService* best_source(const std::string& name, std::size_t host_idx) {
    RService* pfs_with_file = nullptr;
    for (RService& s : services_) {
      if (s.replicas.count(name) == 0) continue;
      if (s.spec->kind == StorageKind::PFS) {
        pfs_with_file = &s;
      } else if (readable_from(s, name, host_idx)) {
        return &s;
      }
    }
    return pfs_with_file;
  }

  std::vector<std::pair<double, std::vector<std::uint32_t>>> route_read(
      const RService& svc, const RReplica& rep, double size, std::size_t host_idx) {
    std::vector<std::pair<double, std::vector<std::uint32_t>>> out;
    switch (svc.spec->kind) {
      case StorageKind::PFS: {
        const auto n = static_cast<std::size_t>(rep.node);
        out.push_back({size, {svc.disk_read[n], svc.link_down[n], nic_down_[host_idx]}});
        break;
      }
      case StorageKind::SharedBB: {
        if (rep.node >= 0) {
          const auto n = static_cast<std::size_t>(rep.node);
          out.push_back(
              {size, {svc.disk_read[n], svc.link_down[n], nic_down_[host_idx]}});
        } else {
          const int stripes = svc.spec->num_nodes;
          for (int i = 0; i < stripes; ++i) {
            const auto n = static_cast<std::size_t>(i);
            out.push_back({size / stripes,
                           {svc.disk_read[n], svc.link_down[n], nic_down_[host_idx]}});
          }
        }
        break;
      }
      case StorageKind::NodeLocalBB: {
        const auto n = static_cast<std::size_t>(rep.node);
        out.push_back({size, {svc.disk_read[n], svc.link_down[n]}});
        break;
      }
    }
    return out;
  }

  std::vector<std::pair<double, std::vector<std::uint32_t>>> route_write(
      const RService& svc, const std::string& name, double size, std::size_t host_idx) {
    std::vector<std::pair<double, std::vector<std::uint32_t>>> out;
    const int target = placement_node(svc, name, host_idx);
    switch (svc.spec->kind) {
      case StorageKind::PFS:
      case StorageKind::SharedBB: {
        if (target >= 0) {
          const auto n = static_cast<std::size_t>(target);
          out.push_back({size, {nic_up_[host_idx], svc.link_up[n], svc.disk_write[n]}});
        } else {
          const int stripes = svc.spec->num_nodes;
          for (int i = 0; i < stripes; ++i) {
            const auto n = static_cast<std::size_t>(i);
            out.push_back({size / stripes,
                           {nic_up_[host_idx], svc.link_up[n], svc.disk_write[n]}});
          }
        }
        break;
      }
      case StorageKind::NodeLocalBB: {
        out.push_back(
            {size, {svc.link_up[host_idx], svc.disk_write[host_idx]}});
        break;
      }
    }
    return out;
  }

  RPlan plan_read(const RService& svc, const std::string& name, double size,
                  std::size_t host_idx) {
    const auto it = svc.replicas.find(name);
    if (it == svc.replicas.end()) {
      throw NotFoundError("file '" + name + "' on storage '" + svc.spec->name + "'");
    }
    if (!readable_from(svc, name, host_idx)) {
      throw InvariantError("file '" + name + "' on '" + svc.spec->name +
                           "' is not readable from host index " + std::to_string(host_idx));
    }
    RPlan plan;
    plan.latency = svc.spec->link.latency + svc.spec->base_latency;
    plan.metadata_ops = metadata_ops_per_file(svc);
    plan.metadata_res = svc.metadata;
    plan.rate_cap = svc.spec->stream_bw;
    plan.data = route_read(svc, it->second, size, host_idx);
    return plan;
  }

  RPlan plan_write(const RService& svc, const std::string& name, double size,
                   std::size_t host_idx) {
    RPlan plan;
    plan.latency = svc.spec->link.latency + svc.spec->base_latency;
    plan.metadata_ops = metadata_ops_per_file(svc);
    plan.metadata_res = svc.metadata;
    plan.rate_cap = svc.spec->stream_bw;
    plan.data = route_write(svc, name, size, host_idx);
    return plan;
  }

  /// Latency delay -> metadata flow -> concurrent data sub-flows -> done.
  void execute_plan(RPlan plan, std::function<void()> done) {
    auto shared_plan = std::make_shared<RPlan>(std::move(plan));
    auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
    auto start = [this, shared_plan, shared_done] {
      auto launch = [this, shared_plan, shared_done] {
        if (shared_plan->data.empty()) {
          if (*shared_done) (*shared_done)();
          return;
        }
        auto pending = std::make_shared<std::size_t>(shared_plan->data.size());
        for (const auto& [volume, path] : shared_plan->data) {
          start_flow(volume, path, shared_plan->rate_cap, [pending, shared_done] {
            if (--*pending == 0 && *shared_done) (*shared_done)();
          });
        }
      };
      if (shared_plan->metadata_ops > 0.0) {
        start_flow(shared_plan->metadata_ops, {shared_plan->metadata_res}, kInf, launch);
      } else {
        launch();
      }
    };
    // A zero-latency plan still defers by a zero-delay event (run-to-
    // completion semantics, like storage::execute_plan).
    schedule_in(shared_plan->latency > 0.0 ? shared_plan->latency : 0.0, start);
  }

  void svc_read(RService& svc, const std::string& name, double size,
                std::size_t host_idx, std::function<void()> done) {
    execute_plan(plan_read(svc, name, size, host_idx), std::move(done));
  }

  void svc_write(RService& svc, const std::string& name, double size,
                 std::size_t host_idx, std::function<void()> done) {
    RPlan plan = plan_write(svc, name, size, host_idx);
    reserve_capacity(svc, name, size);
    execute_plan(std::move(plan),
                 [this, &svc, name, size, host_idx, done = std::move(done)] {
                   install_replica(svc, name, size, host_idx);
                   if (done) done();
                 });
  }

  /// Fused copy between two services, throttled by the slower path
  /// (mirrors StorageSystem::transfer from first principles).
  void transfer(const std::string& name, double size, RService& from, RService& to,
                std::size_t via_host, std::function<void()> done) {
    const RPlan read = plan_read(from, name, size, via_host);
    RPlan write = plan_write(to, name, size, via_host);

    RPlan fused;
    fused.latency = read.latency + write.latency + to.spec->stage_latency;
    fused.rate_cap = std::min(read.rate_cap, write.rate_cap);
    fused.metadata_ops = read.metadata_ops + write.metadata_ops;
    fused.metadata_res = write.metadata_res;

    const auto& r = read.data;
    const auto& w = write.data;
    if (r.empty() || w.empty()) {
      throw InvariantError("transfer of '" + name + "': empty data plan");
    }
    auto concat = [](const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b) {
      std::vector<std::uint32_t> out = a;
      out.insert(out.end(), b.begin(), b.end());
      return out;
    };
    if (r.size() == 1) {
      for (const auto& [volume, path] : w) {
        fused.data.push_back({volume, concat(r[0].second, path)});
      }
    } else if (w.size() == 1) {
      for (const auto& [volume, path] : r) {
        fused.data.push_back({volume, concat(path, w[0].second)});
      }
    } else if (r.size() == w.size()) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        fused.data.push_back({w[i].first, concat(r[i].second, w[i].second)});
      }
    } else {
      throw InvariantError("transfer of '" + name + "': incompatible striping");
    }

    reserve_capacity(to, name, size);  // external-write reservation
    execute_plan(std::move(fused),
                 [this, &to, name, size, via_host, done = std::move(done)] {
                   install_replica(to, name, size, via_host);
                   if (done) done();
                 });
  }

  // ------------------------------------------------------- task replay
  struct TaskState {
    const wf::Task* task = nullptr;
    std::size_t topo_index = 0;
    double priority = 0.0;
    std::size_t remaining_parents = 0;
    int cores = 1;
    std::size_t home_host = 0;
    bool pinned = false;
    bool done = false;
    std::size_t host = 0;
    std::deque<std::string> pending_reads;
    std::deque<std::string> pending_writes;
    std::size_t inflight_io = 0;
    RefTask record;
  };

  int cores_for(const wf::Task& task) const {
    if (task.type == kStageInType) return 1;  // stage-in is always sequential
    int cores = task.requested_cores;
    if (config_.force_cores > 0) cores = config_.force_cores;
    const auto it = config_.cores_by_type.find(task.type);
    if (it != config_.cores_by_type.end()) cores = it->second;
    return std::max(1, cores);
  }

  double file_size(const std::string& name) const { return workflow_.file(name).size; }

  bool bb_has_room(double bytes) {
    const RService* bb_svc = bb();
    if (bb_svc == nullptr) return false;
    const double cap = total_capacity(*bb_svc);
    return cap == kInf || static_cast<double>(bb_svc->used_bytes) + bytes <= cap;
  }

  bool bb_restricted() {
    const RService* bb_svc = bb();
    return bb_svc != nullptr &&
           (bb_svc->spec->kind == StorageKind::NodeLocalBB ||
            (bb_svc->spec->kind == StorageKind::SharedBB &&
             bb_svc->spec->mode == BBMode::Private));
  }

  void compute_priorities() {
    switch (config_.scheduler) {
      case SchedulerPolicy::Fcfs:
        for (auto& [_, st] : states_) st.priority = 0.0;
        return;
      case SchedulerPolicy::LargestFirst:
        for (auto& [_, st] : states_) st.priority = st.task->flops;
        return;
      case SchedulerPolicy::SmallestFirst:
        for (auto& [_, st] : states_) st.priority = -st.task->flops;
        return;
      case SchedulerPolicy::CriticalPathFirst: {
        for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
          TaskState& st = states_.at(*it);
          double best_child = 0.0;
          for (const std::string& child : workflow_.children(*it)) {
            best_child = std::max(best_child, states_.at(child).priority);
          }
          st.priority = st.task->flops + best_child;
        }
        return;
      }
    }
  }

  void enqueue_ready(const std::string& task_name) {
    if (config_.scheduler == SchedulerPolicy::Fcfs) {
      ready_queue_.push_back(task_name);
      return;
    }
    const TaskState& st = states_.at(task_name);
    auto pos = ready_queue_.begin();
    for (; pos != ready_queue_.end(); ++pos) {
      const TaskState& other = states_.at(*pos);
      if (st.priority > other.priority ||
          (st.priority == other.priority && st.topo_index < other.topo_index)) {
        break;
      }
    }
    ready_queue_.insert(pos, task_name);
  }

  void prepare(bool implicit_stage_done) {
    free_cores_.clear();
    for (const platform::HostSpec& h : spec_.hosts) free_cores_.push_back(h.cores);
    int max_cores = 0;
    for (const platform::HostSpec& h : spec_.hosts) max_cores = std::max(max_cores, h.cores);

    topo_order_ = workflow_.topological_order();
    std::map<std::string, std::size_t> topo_index;
    for (std::size_t i = 0; i < topo_order_.size(); ++i) topo_index[topo_order_[i]] = i;

    const bool pin = config_.locality_pinning && bb_restricted();
    std::vector<std::size_t> homes;
    if (pin) homes = exec::compute_home_hosts(workflow_, spec_, config_.pinning);

    const auto& names = workflow_.task_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      const wf::Task& t = workflow_.task(names[i]);
      TaskState st;
      st.task = &t;
      st.topo_index = topo_index.at(t.name);
      st.remaining_parents = workflow_.parents(t.name).size();
      st.cores = cores_for(t);
      if (st.cores > max_cores) {
        throw ConfigError("task '" + t.name + "' wants " + std::to_string(st.cores) +
                          " cores but the largest host has " + std::to_string(max_cores));
      }
      st.home_host = pin ? homes[i] : 0;
      st.pinned = pin;
      st.record.cores = st.cores;
      states_.emplace(t.name, std::move(st));
    }
    tasks_remaining_ = names.size();

    RService& pfs_svc = *pfs();
    for (const std::string& f : workflow_.input_files()) {
      register_file(pfs_svc, f, file_size(f), 0);
    }

    // Staging plan. After an implicit stage-in phase the list is empty (the
    // engine swaps in a zero-fraction policy for the same effect).
    staged_files_.clear();
    RService* bb_svc = bb();
    if (bb_svc != nullptr && !implicit_stage_done) {
      staged_files_ = config_.placement->files_to_stage(workflow_);
    }
    for (const std::string& f : staged_files_) {
      std::size_t host = 0;
      const auto consumers = workflow_.consumers(f);
      if (!consumers.empty()) host = states_.at(consumers.front()).home_host;
      staged_file_host_[f] = host;
    }
    if (config_.stage_in_mode == StageInMode::Instant && bb_svc != nullptr) {
      for (const std::string& f : staged_files_) {
        const double size = file_size(f);
        if (!bb_has_room(size) && !(config_.bb_eviction && try_evict(size))) {
          ++skipped_stage_files_;
          continue;
        }
        register_file(*bb_svc, f, size, staged_file_host_[f]);
      }
    }
    build_stage_partition();

    compute_priorities();

    for (const std::string& name : topo_order_) {
      TaskState& st = states_.at(name);
      if (st.remaining_parents == 0) {
        st.record.t_ready = now_;
        enqueue_ready(name);
      }
    }
    try_schedule();
  }

  void build_stage_partition() {
    staged_by_task_.clear();
    std::vector<std::string> stage_tasks;
    for (const std::string& name : workflow_.task_names()) {
      if (workflow_.task(name).type == kStageInType) stage_tasks.push_back(name);
    }
    if (stage_tasks.empty()) return;
    if (stage_tasks.size() == 1) {
      staged_by_task_[stage_tasks.front()] = staged_files_;
      return;
    }
    std::set<std::string> assigned;
    for (const std::string& stage : stage_tasks) {
      std::set<std::string> seen{stage};
      std::deque<std::string> frontier{stage};
      std::set<std::string> wanted;
      while (!frontier.empty()) {
        const std::string task = frontier.front();
        frontier.pop_front();
        for (const std::string& child : workflow_.children(task)) {
          if (seen.insert(child).second) frontier.push_back(child);
        }
        for (const std::string& f : workflow_.task(task).inputs) wanted.insert(f);
      }
      std::vector<std::string>& mine = staged_by_task_[stage];
      for (const std::string& f : staged_files_) {
        if (wanted.count(f) > 0 && assigned.insert(f).second) mine.push_back(f);
      }
    }
    for (const std::string& f : staged_files_) {
      if (assigned.insert(f).second) staged_by_task_[stage_tasks.front()].push_back(f);
    }
  }

  void try_schedule() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = ready_queue_.begin(); it != ready_queue_.end(); ++it) {
        TaskState& st = states_.at(*it);
        auto chosen = static_cast<std::size_t>(-1);
        if (st.pinned) {
          if (spec_.hosts[st.home_host].cores >= st.cores) {
            if (free_cores_[st.home_host] >= st.cores) chosen = st.home_host;
          } else {
            for (std::size_t h = 0; h < free_cores_.size(); ++h) {
              if (free_cores_[h] >= st.cores) {
                chosen = h;
                break;
              }
            }
          }
        } else {
          int best_free = -1;
          for (std::size_t h = 0; h < free_cores_.size(); ++h) {
            if (free_cores_[h] >= st.cores && free_cores_[h] > best_free) {
              best_free = free_cores_[h];
              chosen = h;
            }
          }
        }
        if (chosen == static_cast<std::size_t>(-1)) continue;
        const std::string name = *it;
        ready_queue_.erase(it);
        start_task(states_.at(name), chosen);
        progressed = true;
        break;  // iterators invalidated; rescan
      }
    }
  }

  void start_task(TaskState& ts, std::size_t host) {
    ts.host = host;
    ts.record.host = host;
    free_cores_[host] -= ts.cores;
    ts.record.t_start = now_;

    if (ts.task->type == kStageInType) {
      run_stage_in(ts);
      return;
    }
    for (const std::string& f : ts.task->inputs) ts.pending_reads.push_back(f);
    issue_reads(ts);
  }

  // ---------------------------------------------------------- stage-in
  struct StageChain {
    TaskState* ts = nullptr;  ///< nullptr for the implicit pre-phase
    const std::vector<std::string>* files = nullptr;
    std::size_t next = 0;
    std::size_t inflight = 0;
  };

  void run_stage_in(TaskState& ts) {
    if (!stage_in_seen_ || now_ < stage_in_start_) stage_in_start_ = now_;
    stage_in_seen_ = true;
    const auto it = staged_by_task_.find(ts.task->name);
    const std::vector<std::string>* files =
        it != staged_by_task_.end() ? &it->second : nullptr;
    if (config_.stage_in_mode == StageInMode::Instant || files == nullptr ||
        files->empty() || bb() == nullptr) {
      schedule_in(0.0, [this, &ts] {
        ts.record.t_reads_done = now_;
        ts.record.t_compute_done = now_;
        stage_in_end_ = std::max(stage_in_end_, now_);
        finish_task(ts);
      });
      return;
    }
    auto chain = std::make_shared<StageChain>();
    chain->ts = &ts;
    chain->files = files;
    pump_stage_chain(chain);
  }

  void pump_stage_chain(const std::shared_ptr<StageChain>& chain) {
    const auto width = static_cast<std::size_t>(std::max(1, config_.stage_in_width));
    while (chain->next < chain->files->size() && chain->inflight < width) {
      const std::string& fname = (*chain->files)[chain->next++];
      const double size = file_size(fname);
      if (!bb_has_room(size) && !(config_.bb_eviction && try_evict(size))) {
        ++skipped_stage_files_;
        continue;
      }
      const std::size_t via_host = staged_file_host_.at(fname);
      if (chain->ts != nullptr) {
        chain->ts->record.bytes_read += size;
        chain->ts->record.bytes_written += size;
      }
      ++chain->inflight;
      transfer(fname, size, *pfs(), *bb(), via_host, [this, chain] {
        --chain->inflight;
        pump_stage_chain(chain);
      });
    }
    if (chain->next >= chain->files->size() && chain->inflight == 0) {
      stage_in_end_ = std::max(stage_in_end_, now_);
      if (chain->ts != nullptr) {
        chain->ts->record.t_reads_done = now_;
        chain->ts->record.t_compute_done = now_;
        finish_task(*chain->ts);
      }
    }
  }

  // ------------------------------------------------------------- reads
  void issue_reads(TaskState& ts) {
    const auto window = static_cast<std::size_t>(ts.cores);
    while (!ts.pending_reads.empty() && ts.inflight_io < window) {
      const std::string fname = ts.pending_reads.front();
      ts.pending_reads.pop_front();
      RService* src = best_source(fname, ts.host);
      if (src == nullptr) {
        throw InvariantError("task '" + ts.task->name + "' cannot read file '" + fname +
                             "' from host " + std::to_string(ts.host) +
                             " (no readable replica)");
      }
      last_access_[fname] = now_;
      const double size = file_size(fname);
      ts.record.bytes_read += size;
      ++ts.inflight_io;
      svc_read(*src, fname, size, ts.host, [this, &ts] {
        --ts.inflight_io;
        if (ts.pending_reads.empty() && ts.inflight_io == 0) {
          on_reads_done(ts);
        } else {
          issue_reads(ts);
        }
      });
    }
    if (ts.pending_reads.empty() && ts.inflight_io == 0 && ts.task->inputs.empty()) {
      on_reads_done(ts);
    }
  }

  void on_reads_done(TaskState& ts) {
    ts.record.t_reads_done = now_;
    double duration = 0.0;
    if (ts.task->flops > 0.0) {
      const double core_speed = spec_.hosts[ts.host].core_speed;
      duration = ref_amdahl(ts.task->flops / core_speed, ts.cores, ts.task->alpha);
    }
    schedule_in(duration, [this, &ts] { on_compute_done(ts); });
  }

  void on_compute_done(TaskState& ts) {
    ts.record.t_compute_done = now_;
    for (const std::string& f : ts.task->outputs) ts.pending_writes.push_back(f);
    if (ts.pending_writes.empty()) {
      finish_task(ts);
      return;
    }
    issue_writes(ts);
  }

  // ------------------------------------------------------------ writes
  Tier output_tier(const TaskState& ts, const std::string& file_name) {
    const Tier tier = config_.placement->place_output(workflow_, ts.task->name, file_name);
    if (tier != Tier::BurstBuffer) return tier;
    if (bb() == nullptr) return Tier::PFS;
    if (bb_restricted()) {
      for (const std::string& consumer : workflow_.consumers(file_name)) {
        const TaskState& cs = states_.at(consumer);
        const std::size_t consumer_host = cs.pinned ? cs.home_host : ts.host;
        if (consumer_host != ts.host) return Tier::PFS;
      }
    }
    return Tier::BurstBuffer;
  }

  void issue_writes(TaskState& ts) {
    const auto window = static_cast<std::size_t>(ts.cores);
    while (!ts.pending_writes.empty() && ts.inflight_io < window) {
      const std::string fname = ts.pending_writes.front();
      ts.pending_writes.pop_front();
      const Tier requested =
          config_.placement->place_output(workflow_, ts.task->name, fname);
      Tier tier = output_tier(ts, fname);
      const double size = file_size(fname);
      if (tier == Tier::BurstBuffer) {
        if (!bb_has_room(size) && !(config_.bb_eviction && try_evict(size))) {
          tier = Tier::PFS;
        }
      }
      if (requested == Tier::BurstBuffer && tier == Tier::PFS) ++demoted_writes_;
      RService& dst = tier == Tier::BurstBuffer ? *bb() : *pfs();
      ts.record.bytes_written += size;
      ++ts.inflight_io;
      svc_write(dst, fname, size, ts.host, [this, &ts] {
        --ts.inflight_io;
        if (ts.pending_writes.empty() && ts.inflight_io == 0) {
          finish_task(ts);
        } else {
          issue_writes(ts);
        }
      });
    }
  }

  // ---------------------------------------------------------- finish
  void finish_task(TaskState& ts) {
    ts.record.t_end = now_;
    ts.done = true;
    free_cores_[ts.host] += ts.cores;
    --tasks_remaining_;

    for (const std::string& child : workflow_.children(ts.task->name)) {
      TaskState& cs = states_.at(child);
      if (--cs.remaining_parents == 0) {
        cs.record.t_ready = now_;
        enqueue_ready(child);
      }
    }
    if (tasks_remaining_ == 0 && config_.stage_out) {
      run_stage_out();
      return;
    }
    try_schedule();
  }

  void run_stage_out() {
    RService* bb_svc = bb();
    if (bb_svc == nullptr) return;
    auto files = std::make_shared<std::vector<std::string>>();
    for (const std::string& f : workflow_.output_files()) {
      if (bb_svc->replicas.count(f) > 0 && pfs()->replicas.count(f) == 0) {
        files->push_back(f);
      }
    }
    if (files->empty()) return;
    const double start = now_;
    auto drain = std::make_shared<std::function<void(std::size_t)>>();
    *drain = [this, files, start, drain, bb_svc](std::size_t index) {
      if (index >= files->size()) {
        stage_out_duration_ = now_ - start;
        return;
      }
      const std::string& fname = (*files)[index];
      const auto rep = bb_svc->replicas.find(fname);
      const std::size_t via_host =
          rep != bb_svc->replicas.end() ? rep->second.creator_host : 0;
      transfer(fname, file_size(fname), *bb_svc, *pfs(), via_host,
               [drain, index] { (*drain)(index + 1); });
    };
    (*drain)(0);
  }

  bool try_evict(double bytes) {
    RService* bb_svc = bb();
    if (bb_svc == nullptr) return false;
    struct Candidate {
      std::string file;
      double last_access;
    };
    std::vector<Candidate> candidates;
    for (const std::string& f : staged_files_) {
      if (bb_svc->replicas.count(f) == 0) continue;
      const auto it = last_access_.find(f);
      candidates.push_back({f, it == last_access_.end() ? 0.0 : it->second});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.last_access < b.last_access;
                     });
    for (const Candidate& c : candidates) {
      if (bb_has_room(bytes)) return true;
      erase_file(*bb_svc, c.file);
      ++evicted_files_;
    }
    return bb_has_room(bytes);
  }

  // ------------------------------------------------------------ members
  platform::PlatformSpec spec_;
  wf::Workflow workflow_;
  RefConfig config_;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::map<EventKey, std::function<void()>> events_;

  std::vector<double> res_capacity_;
  std::vector<RFlow> flows_;
  bool wake_scheduled_ = false;
  EventKey wake_key_{};
  double last_settle_ = 0.0;

  std::vector<std::uint32_t> nic_up_, nic_down_;
  std::vector<RService> services_;

  std::map<std::string, TaskState> states_;
  std::vector<std::string> topo_order_;
  std::vector<int> free_cores_;
  std::deque<std::string> ready_queue_;
  std::vector<std::string> staged_files_;
  std::map<std::string, std::vector<std::string>> staged_by_task_;
  std::map<std::string, std::size_t> staged_file_host_;
  std::size_t tasks_remaining_ = 0;
  std::size_t demoted_writes_ = 0;
  std::size_t skipped_stage_files_ = 0;
  std::size_t evicted_files_ = 0;
  double stage_in_start_ = 0.0;
  double stage_in_end_ = 0.0;
  bool stage_in_seen_ = false;
  double stage_out_duration_ = 0.0;
  std::map<std::string, double> last_access_;
};

RefResult RefSim::run() {
  // Implicit stage-in: Task mode on a workflow without a stage-in task
  // stages everything up front, before entry tasks become ready.
  bool has_stage_task = false;
  for (const std::string& name : workflow_.task_names()) {
    if (workflow_.task(name).type == kStageInType) {
      has_stage_task = true;
      break;
    }
  }

  bool implicit_done = false;
  if (config_.stage_in_mode == StageInMode::Task && !has_stage_task && bb() != nullptr &&
      !config_.placement->files_to_stage(workflow_).empty()) {
    staged_files_ = config_.placement->files_to_stage(workflow_);
    RService& pfs_svc = *pfs();
    for (const std::string& f : workflow_.input_files()) {
      register_file(pfs_svc, f, file_size(f), 0);
    }
    // Home hosts for staged-file placement (the engine computes these
    // unconditionally on this path).
    std::map<std::string, std::size_t> home_by_task;
    {
      const auto homes = exec::compute_home_hosts(workflow_, spec_, config_.pinning);
      const auto& names = workflow_.task_names();
      for (std::size_t i = 0; i < names.size(); ++i) home_by_task[names[i]] = homes[i];
    }
    for (const std::string& f : staged_files_) {
      std::size_t host = 0;
      const auto consumers = workflow_.consumers(f);
      if (!consumers.empty()) host = home_by_task.at(consumers.front());
      staged_file_host_[f] = host;
    }
    stage_in_start_ = 0.0;
    stage_in_seen_ = true;
    auto chain = std::make_shared<StageChain>();
    chain->files = &staged_files_;
    pump_stage_chain(chain);
    run_events();
    implicit_done = true;
  }

  prepare(implicit_done);
  run_events();

  if (tasks_remaining_ > 0) {
    for (const auto& [name, st] : states_) {
      if (!st.done) {
        throw InvariantError("reference execution stalled: task '" + name +
                             "' never completed");
      }
    }
  }

  RefResult r;
  for (const auto& [name, st] : states_) {
    r.tasks.emplace(name, st.record);
    r.makespan = std::max(r.makespan, st.record.t_end);
  }
  r.stage_out_duration = stage_out_duration_;
  r.makespan += stage_out_duration_;
  r.stage_in_duration = std::max(0.0, stage_in_end_ - stage_in_start_);
  r.workflow_span = r.makespan - r.stage_in_duration - r.stage_out_duration;
  r.demoted_writes = demoted_writes_;
  r.skipped_stage_files = skipped_stage_files_;
  r.evicted_files = evicted_files_;
  return r;
}

}  // namespace

RefResult reference_execute(const platform::PlatformSpec& platform,
                            const wf::Workflow& workflow, const RefConfig& config) {
  RefSim sim(platform, workflow, config);
  return sim.run();
}

}  // namespace bbsim::oracle
