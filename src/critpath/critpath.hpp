// Causal critical-path extraction and makespan blame attribution.
//
// During a run the engine feeds a Recorder with the causal facts the final
// task records cannot reconstruct on their own: why each task became ready
// (workflow start, a parent's completion, a requeue after a crash, a
// rollback), which attempts were aborted and when, how each attempt's bytes
// split between burst buffer and PFS, and how long checkpoint writes stalled
// compute. A post-run pass (`analyze`) walks backwards from the task that
// determines the makespan and partitions [0, makespan] into contiguous
// segments, each charged to exactly one blame class — so the critical-path
// length and the per-class blame totals both equal the makespan by
// construction, which the auditor cross-checks at 1e-9.
//
// The same per-task decomposition doubles as a replayable graph: `analyze`
// re-walks it with one blame class scaled (e.g. BB transfer x0 = "infinite
// BB bandwidth") to estimate makespan sensitivity without re-simulating.
// With every scale at 1 the replay reproduces the observed makespan exactly;
// that identity is a fuzz oracle.
//
// The library only depends on json/util so storage, exec, and batch can all
// layer on top of it (same position in the DAG as src/stats and src/trace).

#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace bbsim::critpath {

/// Blame classes. The set is fixed and part of the bbsim.critpath.v1 schema;
/// reports always emit all six in this order, zero or not.
enum class Blame {
  kCompute,         ///< CPU work (checkpoint stalls excluded)
  kBbTransfer,      ///< bytes moving to/from a burst buffer
  kPfsTransfer,     ///< bytes moving to/from the PFS (incl. staging)
  kBbCapacityWait,  ///< waiting for BB space (batch BB-blocked head)
  kQueueWait,       ///< ready but not running: cores, queue position
  kRecoveryRework,  ///< attempts lost to faults, restart latency
};

inline constexpr std::size_t kBlameCount = 6;

inline constexpr std::array<Blame, kBlameCount> kAllBlames = {
    Blame::kCompute,        Blame::kBbTransfer,     Blame::kPfsTransfer,
    Blame::kBbCapacityWait, Blame::kQueueWait,      Blame::kRecoveryRework,
};

const char* to_string(Blame blame);

/// Why a task became ready (one record per readiness event).
struct ReadyCause {
  enum class Kind {
    kWorkflowStart,  ///< entry task, ready when the run began
    kParent,         ///< the named parent's completion unblocked it
    kRequeue,        ///< a crash killed the attempt and requeued the task
    kRollback,       ///< lineage loss rolled the task back
  };
  Kind kind = Kind::kWorkflowStart;
  std::string parent;  ///< kParent only: the triggering parent task
};

struct ReadyEvent {
  double time = 0.0;
  ReadyCause cause;
};

/// One aborted attempt: the task waited over [t_ready, t_start] and did work
/// over [t_start, t_until] that a fault then threw away.
struct AbortedAttempt {
  double t_ready = 0.0;
  double t_start = 0.0;
  double t_until = 0.0;
};

/// Everything recorded about one task during the run.
struct TaskTrace {
  std::vector<ReadyEvent> ready;        ///< chronological
  std::vector<AbortedAttempt> aborted;  ///< chronological
  // Byte tier split of the surviving attempt (reset when an attempt dies).
  // Op counts break ties when a window is all metadata (zero bytes).
  double read_bb_bytes = 0.0;
  double read_pfs_bytes = 0.0;
  double write_bb_bytes = 0.0;
  double write_pfs_bytes = 0.0;
  std::size_t read_bb_ops = 0;
  std::size_t read_pfs_ops = 0;
  std::size_t write_bb_ops = 0;
  std::size_t write_pfs_ops = 0;
  // Restart latency paid at the start of the surviving attempt.
  double restart_delay_seconds = 0.0;
  // Compute-phase seconds the surviving attempt spent blocked on
  // checkpoint writes, by destination tier.
  double ckpt_bb_seconds = 0.0;
  double ckpt_pfs_seconds = 0.0;
};

/// Run-time event sink. Nullable-observer like stats::MetricsRegistry and
/// trace::TimelineRecorder: the engine holds a pointer that is null unless
/// `--critpath` is on, and every call site is wrapped in BBSIM_CRITPATH_HOOK
/// so a -DBBSIM_CRITPATH=OFF build compiles the calls out entirely.
class Recorder {
 public:
  void record_ready(const std::string& task, double time, ReadyCause cause);
  /// Called when a fault aborts an attempt, before the engine resets the
  /// task record. Also discards the attempt-scoped byte/stall tallies.
  void record_abort(const std::string& task, double t_ready, double t_start,
                    double t_until);
  void record_read_bytes(const std::string& task, double bytes,
                         bool burst_buffer);
  void record_write_bytes(const std::string& task, double bytes,
                          bool burst_buffer);
  void record_ckpt_stall(const std::string& task, double seconds,
                         bool burst_buffer);
  /// Latency the platform charges before a restarted attempt's reads begin.
  void record_restart_delay(const std::string& task, double seconds);
  /// Implicit whole-workflow stage-in window (stage_in_mode "implicit"):
  /// entry tasks are only ready once it completes.
  void record_implicit_stage(double start, double end);

  const TaskTrace* find(const std::string& task) const;
  bool has_implicit_stage() const { return implicit_; }
  double implicit_stage_start() const { return implicit_start_; }
  double implicit_stage_end() const { return implicit_end_; }

 private:
  TaskTrace& trace(const std::string& task) { return tasks_[task]; }

  std::map<std::string, TaskTrace> tasks_;  // name-ordered: deterministic
  bool implicit_ = false;
  double implicit_start_ = 0.0;
  double implicit_end_ = 0.0;
};

/// Final timings of one executed task, as the engine's records carry them.
struct TaskTimes {
  std::string name;
  bool stage_in = false;  ///< a stage-in pseudo-task (pure PFS->BB copy)
  double t_ready = 0.0;
  double t_start = 0.0;
  double t_reads_done = 0.0;
  double t_compute_done = 0.0;
  double t_end = 0.0;
  std::vector<std::string> parents;  ///< workflow dependency edges
};

/// One contiguous slice of the critical path, charged to one blame class.
struct Segment {
  std::string task;   ///< task name, or "implicit_stage_in" / "stage_out"
  std::string phase;  ///< wait | read | compute | ckpt_stall | write |
                      ///< rework | stage | stage_out
  Blame blame = Blame::kCompute;
  double start = 0.0;
  double end = 0.0;
  double duration() const { return end - start; }
};

/// Replay result for one scenario (one vector of per-class scales).
struct WhatIf {
  std::string scenario;
  std::array<double, kBlameCount> scale{};
  double makespan = 0.0;
};

struct Report {
  double makespan = 0.0;
  std::vector<Segment> path;                 ///< chronological, contiguous
  std::array<double, kBlameCount> blame{};   ///< per-class path seconds
  std::map<std::string, double> slack;       ///< per task, name-ordered
  std::vector<WhatIf> what_ifs;

  double path_length() const;
  double blame_total() const;
  /// Re-derive the per-class blame totals from the path segments. Used by
  /// producers (exec, batch) that assemble `path` themselves.
  void set_blame_from_path();
  /// Deterministic bbsim.critpath.v1 report section.
  json::Value to_json() const;
};

/// Inputs `analyze` needs beyond the Recorder.
struct AnalyzeInput {
  std::vector<TaskTimes> tasks;
  double makespan = 0.0;            ///< includes any trailing stage-out
  double stage_out_duration = 0.0;  ///< explicit stage-out drain tail
};

/// Extract the critical path, attribute blame, compute per-task slack, and
/// run the standard what-if scenarios. Pure function of its inputs, so the
/// report is byte-identical across repeated runs and worker counts.
Report analyze(const Recorder& recorder, const AnalyzeInput& input);

}  // namespace bbsim::critpath
