#include "critpath/critpath.hpp"

#include <algorithm>
#include <deque>
#include <initializer_list>
#include <iterator>
#include <utility>

namespace bbsim::critpath {

namespace {

constexpr const char* kImplicitStageName = "implicit_stage_in";
constexpr const char* kStageOutName = "stage_out";

std::size_t blame_index(Blame blame) { return static_cast<std::size_t>(blame); }

}  // namespace

const char* to_string(Blame blame) {
  switch (blame) {
    case Blame::kCompute:
      return "compute";
    case Blame::kBbTransfer:
      return "bb_transfer";
    case Blame::kPfsTransfer:
      return "pfs_transfer";
    case Blame::kBbCapacityWait:
      return "bb_capacity_wait";
    case Blame::kQueueWait:
      return "queue_wait";
    case Blame::kRecoveryRework:
      return "recovery_rework";
  }
  return "unknown";
}

void Recorder::record_ready(const std::string& task, double time,
                            ReadyCause cause) {
  trace(task).ready.push_back(ReadyEvent{time, std::move(cause)});
}

void Recorder::record_abort(const std::string& task, double t_ready,
                            double t_start, double t_until) {
  TaskTrace& tr = trace(task);
  tr.aborted.push_back(AbortedAttempt{t_ready, t_start, t_until});
  // The attempt-scoped tallies describe the attempt that just died; the
  // surviving attempt starts from scratch.
  tr.read_bb_bytes = tr.read_pfs_bytes = 0.0;
  tr.write_bb_bytes = tr.write_pfs_bytes = 0.0;
  tr.read_bb_ops = tr.read_pfs_ops = 0;
  tr.write_bb_ops = tr.write_pfs_ops = 0;
  tr.ckpt_bb_seconds = tr.ckpt_pfs_seconds = 0.0;
  tr.restart_delay_seconds = 0.0;
}

void Recorder::record_read_bytes(const std::string& task, double bytes,
                                 bool burst_buffer) {
  TaskTrace& tr = trace(task);
  if (burst_buffer) {
    tr.read_bb_bytes += bytes;
    ++tr.read_bb_ops;
  } else {
    tr.read_pfs_bytes += bytes;
    ++tr.read_pfs_ops;
  }
}

void Recorder::record_write_bytes(const std::string& task, double bytes,
                                  bool burst_buffer) {
  TaskTrace& tr = trace(task);
  if (burst_buffer) {
    tr.write_bb_bytes += bytes;
    ++tr.write_bb_ops;
  } else {
    tr.write_pfs_bytes += bytes;
    ++tr.write_pfs_ops;
  }
}

void Recorder::record_ckpt_stall(const std::string& task, double seconds,
                                 bool burst_buffer) {
  TaskTrace& tr = trace(task);
  if (burst_buffer) {
    tr.ckpt_bb_seconds += seconds;
  } else {
    tr.ckpt_pfs_seconds += seconds;
  }
}

void Recorder::record_restart_delay(const std::string& task, double seconds) {
  trace(task).restart_delay_seconds += seconds;
}

void Recorder::record_implicit_stage(double start, double end) {
  implicit_ = true;
  implicit_start_ = start;
  implicit_end_ = end;
}

const TaskTrace* Recorder::find(const std::string& task) const {
  auto it = tasks_.find(task);
  return it == tasks_.end() ? nullptr : &it->second;
}

double Report::path_length() const {
  double total = 0.0;
  for (const Segment& seg : path) total += seg.duration();
  return total;
}

double Report::blame_total() const {
  double total = 0.0;
  for (double b : blame) total += b;
  return total;
}

void Report::set_blame_from_path() {
  blame.fill(0.0);
  for (const Segment& seg : path) blame[blame_index(seg.blame)] += seg.duration();
}

json::Value Report::to_json() const {
  json::Object root;
  root.set("schema", "bbsim.critpath.v1");
  root.set("makespan", makespan);
  root.set("path_length", path_length());
  json::Object blame_obj;
  json::Object frac_obj;
  for (Blame b : kAllBlames) {
    const double seconds = blame[blame_index(b)];
    blame_obj.set(to_string(b), seconds);
    frac_obj.set(to_string(b), makespan > 0.0 ? seconds / makespan : 0.0);
  }
  root.set("blame", std::move(blame_obj));
  root.set("blame_fractions", std::move(frac_obj));
  json::Array path_arr;
  for (const Segment& seg : path) {
    json::Object s;
    s.set("task", seg.task);
    s.set("phase", seg.phase);
    s.set("class", to_string(seg.blame));
    s.set("start", seg.start);
    s.set("end", seg.end);
    s.set("duration", seg.duration());
    path_arr.push_back(std::move(s));
  }
  root.set("path", std::move(path_arr));
  json::Array slack_arr;
  for (const auto& [task, value] : slack) {
    json::Object s;
    s.set("task", task);
    s.set("slack", value);
    slack_arr.push_back(std::move(s));
  }
  root.set("slack", std::move(slack_arr));
  json::Array what_if_arr;
  for (const WhatIf& w : what_ifs) {
    json::Object s;
    s.set("scenario", w.scenario);
    s.set("makespan", w.makespan);
    s.set("speedup", w.makespan > 0.0 ? makespan / w.makespan
                                      : (makespan > 0.0 ? 0.0 : 1.0));
    what_if_arr.push_back(std::move(s));
  }
  root.set("what_if", std::move(what_if_arr));
  return json::Value(std::move(root));
}

namespace {

// One task's slice of the causal chain: its segments from the terminating
// readiness event (cause kParent or kWorkflowStart) up to t_end, in
// chronological order, plus how the chain continues upstream.
struct ChainWalk {
  std::vector<Segment> segments;
  ReadyCause terminal;   // kParent or kWorkflowStart
  double arrival = 0.0;  // time of the terminating readiness event
};

void push_segment(std::vector<Segment>& out, const std::string& task,
                  const char* phase, Blame blame, double start, double end) {
  if (end > start) out.push_back(Segment{task, phase, blame, start, end});
}

// Split window [start, end] into tier sub-segments proportional to the byte
// (or, when byteless, op-count) mix, with an optional leading rework slice.
void split_transfer_window(std::vector<Segment>& out, const std::string& task,
                           const char* phase, double start, double end,
                           double rework, double bb_amount, double pfs_amount) {
  if (end <= start) return;
  double cursor = start;
  if (rework > 0.0) {
    const double rework_end = std::min(end, start + rework);
    push_segment(out, task, "rework", Blame::kRecoveryRework, cursor,
                 rework_end);
    cursor = rework_end;
  }
  if (cursor >= end) return;
  const double total = bb_amount + pfs_amount;
  if (total <= 0.0) {
    // No recorded transfers at all: a pure latency window, charged to the
    // PFS class (metadata round-trips hit the slowest tier's latency).
    push_segment(out, task, phase, Blame::kPfsTransfer, cursor, end);
    return;
  }
  const double mid = cursor + (end - cursor) * (bb_amount / total);
  push_segment(out, task, phase, Blame::kBbTransfer, cursor, mid);
  push_segment(out, task, phase, Blame::kPfsTransfer, mid, end);
}

ChainWalk walk_task(const TaskTimes& task, const TaskTrace* trace) {
  ChainWalk walk;
  // Final-attempt phases, chronological. For stage-in pseudo tasks the whole
  // active span is a PFS->BB copy.
  push_segment(walk.segments, task.name, "wait", Blame::kQueueWait,
               task.t_ready, task.t_start);
  if (task.stage_in) {
    push_segment(walk.segments, task.name, "stage", Blame::kPfsTransfer,
                 task.t_start, task.t_end);
  } else {
    double read_bb = 0.0;
    double read_pfs = 0.0;
    double write_bb = 0.0;
    double write_pfs = 0.0;
    double ckpt_bb = 0.0;
    double ckpt_pfs = 0.0;
    double restart_delay = 0.0;
    if (trace != nullptr) {
      read_bb = trace->read_bb_bytes > 0.0 || trace->read_pfs_bytes > 0.0
                    ? trace->read_bb_bytes
                    : static_cast<double>(trace->read_bb_ops);
      read_pfs = trace->read_bb_bytes > 0.0 || trace->read_pfs_bytes > 0.0
                     ? trace->read_pfs_bytes
                     : static_cast<double>(trace->read_pfs_ops);
      write_bb = trace->write_bb_bytes > 0.0 || trace->write_pfs_bytes > 0.0
                     ? trace->write_bb_bytes
                     : static_cast<double>(trace->write_bb_ops);
      write_pfs = trace->write_bb_bytes > 0.0 || trace->write_pfs_bytes > 0.0
                      ? trace->write_pfs_bytes
                      : static_cast<double>(trace->write_pfs_ops);
      ckpt_bb = trace->ckpt_bb_seconds;
      ckpt_pfs = trace->ckpt_pfs_seconds;
      restart_delay = trace->restart_delay_seconds;
    }
    split_transfer_window(walk.segments, task.name, "read", task.t_start,
                          task.t_reads_done, restart_delay, read_bb, read_pfs);
    // Compute window: productive compute first, then the checkpoint-write
    // stalls (checkpoints close compute segments), each charged to the
    // destination tier's transfer class.
    const double compute_span = task.t_compute_done - task.t_reads_done;
    if (compute_span > 0.0) {
      double stall_bb = std::min(ckpt_bb, compute_span);
      double stall_pfs = std::min(ckpt_pfs, compute_span - stall_bb);
      double cursor = task.t_reads_done;
      const double compute_end =
          task.t_compute_done - stall_bb - stall_pfs;
      push_segment(walk.segments, task.name, "compute", Blame::kCompute,
                   cursor, compute_end);
      cursor = std::max(cursor, compute_end);
      push_segment(walk.segments, task.name, "ckpt_stall", Blame::kBbTransfer,
                   cursor, cursor + stall_bb);
      cursor = std::min(task.t_compute_done, cursor + stall_bb);
      push_segment(walk.segments, task.name, "ckpt_stall", Blame::kPfsTransfer,
                   cursor, task.t_compute_done);
    }
    split_transfer_window(walk.segments, task.name, "write",
                          task.t_compute_done, task.t_end, 0.0, write_bb,
                          write_pfs);
  }

  // Walk readiness events backwards through aborted attempts until the
  // chain leaves the task (a parent edge or the workflow start). A requeue
  // or rollback readiness event is always recorded immediately after its
  // abort, so the abort cursor stays aligned even when an un-readied task
  // (parent rollback) added a readiness event with no matching abort.
  walk.terminal = ReadyCause{};
  walk.arrival = task.t_ready;
  if (trace == nullptr || trace->ready.empty()) return walk;
  std::size_t i = trace->ready.size() - 1;
  std::size_t remaining_aborts = trace->aborted.size();
  std::vector<Segment> prior;  // reverse chronological
  for (;;) {
    const ReadyEvent& event = trace->ready[i];
    const bool resumed = event.cause.kind == ReadyCause::Kind::kRequeue ||
                         event.cause.kind == ReadyCause::Kind::kRollback;
    if (!resumed || i == 0 || remaining_aborts == 0) {
      walk.terminal = event.cause;
      walk.arrival = event.time;
      break;
    }
    const AbortedAttempt& attempt = trace->aborted[--remaining_aborts];
    push_segment(prior, task.name, "rework", Blame::kRecoveryRework,
                 attempt.t_start, event.time);
    push_segment(prior, task.name, "wait", Blame::kQueueWait, attempt.t_ready,
                 attempt.t_start);
    --i;
  }
  walk.segments.insert(walk.segments.begin(),
                       std::make_move_iterator(prior.rbegin()),
                       std::make_move_iterator(prior.rend()));
  return walk;
}

std::array<double, kBlameCount> components_of(
    const std::vector<Segment>& segments) {
  std::array<double, kBlameCount> comps{};
  for (const Segment& seg : segments) {
    comps[blame_index(seg.blame)] += seg.duration();
  }
  return comps;
}

struct Scenario {
  const char* name;
  std::array<double, kBlameCount> scale;
};

std::array<double, kBlameCount> scale_all_but(
    std::initializer_list<Blame> zeroed) {
  std::array<double, kBlameCount> scale;
  scale.fill(1.0);
  for (Blame b : zeroed) scale[blame_index(b)] = 0.0;
  return scale;
}

}  // namespace

Report analyze(const Recorder& recorder, const AnalyzeInput& input) {
  Report report;
  report.makespan = input.makespan;
  if (input.tasks.empty()) {
    report.what_ifs.push_back(
        WhatIf{"baseline", scale_all_but({}), input.makespan});
    return report;
  }

  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < input.tasks.size(); ++i) {
    by_name.emplace(input.tasks[i].name, i);
  }

  // Per-task chain walks, computed once and shared by the path extraction,
  // the slack pass, and the what-if replay.
  std::vector<ChainWalk> walks;
  walks.reserve(input.tasks.size());
  for (const TaskTimes& task : input.tasks) {
    walks.push_back(walk_task(task, recorder.find(task.name)));
  }

  // --- Critical path: back-walk from the task that sets the makespan. ---
  std::size_t sink = 0;
  for (std::size_t i = 1; i < input.tasks.size(); ++i) {
    const TaskTimes& cand = input.tasks[i];
    const TaskTimes& best = input.tasks[sink];
    if (cand.t_end > best.t_end ||
        (cand.t_end == best.t_end && cand.name < best.name)) {
      sink = i;
    }
  }
  std::vector<Segment> rev_path;
  if (input.stage_out_duration > 0.0) {
    push_segment(rev_path, kStageOutName, "stage_out", Blame::kPfsTransfer,
                 input.tasks[sink].t_end, input.makespan);
  }
  std::size_t current = sink;
  for (;;) {
    const ChainWalk& walk = walks[current];
    rev_path.insert(rev_path.end(), walk.segments.rbegin(),
                    walk.segments.rend());
    if (walk.terminal.kind == ReadyCause::Kind::kParent) {
      auto it = by_name.find(walk.terminal.parent);
      if (it == by_name.end()) break;  // defensive: unknown parent
      current = it->second;
      continue;
    }
    // Workflow start. Any remaining head time is the implicit stage-in
    // window if one was recorded, otherwise a start gap kept as queue wait
    // so the partition of [0, makespan] stays exact.
    if (walk.arrival > 0.0) {
      if (recorder.has_implicit_stage()) {
        push_segment(rev_path, kImplicitStageName, "stage",
                     Blame::kPfsTransfer, 0.0, walk.arrival);
      } else {
        push_segment(rev_path, input.tasks[current].name, "wait",
                     Blame::kQueueWait, 0.0, walk.arrival);
      }
    }
    break;
  }
  report.path.assign(rev_path.rbegin(), rev_path.rend());
  report.set_blame_from_path();

  // --- Slack: classic CPM latest-finish over the recorded chain graph. ---
  // LF(t) = min(makespan - stage_out, min over children c of
  // LF(c) - chaindur(c)); slack(t) = LF(t) - t_end(t). Chains are treated
  // as rigid, so this is a conservative (lower-bound) slack.
  std::vector<std::vector<std::size_t>> children(input.tasks.size());
  std::vector<std::size_t> child_count(input.tasks.size(), 0);
  for (std::size_t i = 0; i < input.tasks.size(); ++i) {
    for (const std::string& parent : input.tasks[i].parents) {
      auto it = by_name.find(parent);
      if (it != by_name.end()) {
        children[it->second].push_back(i);
        ++child_count[it->second];
      }
    }
  }
  std::vector<double> chain_dur(input.tasks.size(), 0.0);
  for (std::size_t i = 0; i < input.tasks.size(); ++i) {
    for (const Segment& seg : walks[i].segments) {
      chain_dur[i] += seg.duration();
    }
  }
  // Reverse topological order: repeatedly peel tasks whose children are all
  // resolved. by_name iteration keeps tie-breaks name-deterministic.
  std::vector<double> latest_finish(input.tasks.size(),
                                    input.makespan - input.stage_out_duration);
  {
    std::vector<std::size_t> pending = child_count;
    std::deque<std::size_t> frontier;
    for (const auto& [name, idx] : by_name) {
      (void)name;
      if (pending[idx] == 0) frontier.push_back(idx);
    }
    while (!frontier.empty()) {
      const std::size_t idx = frontier.front();
      frontier.pop_front();
      for (std::size_t child : children[idx]) {
        latest_finish[idx] = std::min(latest_finish[idx],
                                      latest_finish[child] - chain_dur[child]);
      }
      for (const std::string& parent : input.tasks[idx].parents) {
        auto it = by_name.find(parent);
        if (it != by_name.end() && --pending[it->second] == 0) {
          frontier.push_back(it->second);
        }
      }
    }
  }
  for (std::size_t i = 0; i < input.tasks.size(); ++i) {
    report.slack[input.tasks[i].name] =
        std::max(0.0, latest_finish[i] - input.tasks[i].t_end);
  }

  // --- What-if replay: re-walk the recorded graph with scaled classes. ---
  std::vector<std::array<double, kBlameCount>> comps(input.tasks.size());
  for (std::size_t i = 0; i < input.tasks.size(); ++i) {
    comps[i] = components_of(walks[i].segments);
  }
  const Scenario scenarios[] = {
      {"baseline", scale_all_but({})},
      {"infinite_bb_bandwidth", scale_all_but({Blame::kBbTransfer})},
      {"infinite_pfs_bandwidth", scale_all_but({Blame::kPfsTransfer})},
      {"no_queue_wait",
       scale_all_but({Blame::kQueueWait, Blame::kBbCapacityWait})},
      {"no_faults", scale_all_but({Blame::kRecoveryRework})},
  };
  // Forward topological order over parent edges.
  std::vector<std::size_t> topo;
  topo.reserve(input.tasks.size());
  {
    std::vector<std::size_t> pending(input.tasks.size(), 0);
    for (std::size_t i = 0; i < input.tasks.size(); ++i) {
      for (const std::string& parent : input.tasks[i].parents) {
        if (by_name.count(parent) != 0) ++pending[i];
      }
    }
    std::deque<std::size_t> frontier;
    for (const auto& [name, idx] : by_name) {
      (void)name;
      if (pending[idx] == 0) frontier.push_back(idx);
    }
    while (!frontier.empty()) {
      const std::size_t idx = frontier.front();
      frontier.pop_front();
      topo.push_back(idx);
      for (std::size_t child : children[idx]) {
        if (--pending[child] == 0) frontier.push_back(child);
      }
    }
  }
  for (const Scenario& scenario : scenarios) {
    std::vector<double> finish(input.tasks.size(), 0.0);
    double latest = 0.0;
    for (std::size_t idx : topo) {
      const ChainWalk& walk = walks[idx];
      double base = 0.0;
      if (walk.terminal.kind == ReadyCause::Kind::kWorkflowStart &&
          walk.arrival > 0.0) {
        // Virtual head node: the implicit stage-in window is a PFS
        // transfer; a bare start gap scales with queue wait.
        const Blame head = recorder.has_implicit_stage()
                               ? Blame::kPfsTransfer
                               : Blame::kQueueWait;
        base = scenario.scale[blame_index(head)] * walk.arrival;
      }
      for (const std::string& parent : input.tasks[idx].parents) {
        auto it = by_name.find(parent);
        if (it != by_name.end()) {
          base = std::max(base, finish[it->second]);
        }
      }
      double work = 0.0;
      for (std::size_t c = 0; c < kBlameCount; ++c) {
        work += scenario.scale[c] * comps[idx][c];
      }
      finish[idx] = base + work;
      latest = std::max(latest, finish[idx]);
    }
    const double tail =
        scenario.scale[blame_index(Blame::kPfsTransfer)] *
        input.stage_out_duration;
    report.what_ifs.push_back(
        WhatIf{scenario.name, scenario.scale, latest + tail});
  }
  return report;
}

}  // namespace bbsim::critpath
