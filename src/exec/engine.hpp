// bbsim -- the workflow execution engine (the simulated WMS).
//
// Mirrors the execution semantics of the paper's WRENCH simulator:
//
//   * workflow input files start on the PFS; the placement policy selects
//     files to stage into the burst buffer -- either by a sequential
//     stage-in task (SWarp, Figure 2) or instantly at t=0 (the 1000Genomes
//     case study, where staging is outside the measured makespan);
//   * ready tasks are scheduled FCFS onto hosts with enough free cores
//     (locality-pinned when the BB restricts access by node);
//   * a task reads all inputs (at most `cores` files concurrently -- the
//     paper's assumption that I/O parallelism scales with cores), computes
//     for amdahl_time(flops / core_speed, cores, alpha), then writes all
//     outputs to the tier chosen by the placement policy;
//   * every byte moved is a flow through the platform's shared resources,
//     so contention between concurrent pipelines emerges from max-min
//     bandwidth sharing.
//
// The same engine runs both the paper's simple model (default spec: no
// per-stream caps, no metadata limits, no noise) and the high-fidelity
// testbed emulator (src/testbed installs caps/latency/noise hooks).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/probes.hpp"
#include "critpath/critpath.hpp"
#include "exec/placement.hpp"
#include "exec/pinning.hpp"
#include "exec/trace.hpp"
#include "model/calibration.hpp"
#include "platform/fabric.hpp"
#include "resil/fault.hpp"
#include "sim/engine.hpp"
#include "stats/metrics.hpp"
#include "storage/system.hpp"
#include "trace/profiler.hpp"
#include "trace/timeline.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::exec {

/// How staged input files reach the burst buffer.
enum class StageInMode {
  Task,     ///< a sequential stage-in task copies them (counted in makespan)
  Instant,  ///< pre-staged at t=0 at no cost (stage-in outside the makespan)
};

/// Order in which ready tasks are dispatched onto free cores.
enum class SchedulerPolicy {
  Fcfs,               ///< by readiness time (submission order on ties)
  CriticalPathFirst,  ///< highest upward rank (longest downstream work) first
  LargestFirst,       ///< most sequential work first (LPT)
  SmallestFirst,      ///< least sequential work first (SPT)
};

const char* to_string(SchedulerPolicy policy);

struct ExecutionConfig {
  std::shared_ptr<PlacementPolicy> placement;  ///< default: all_bb_policy()
  StageInMode stage_in_mode = StageInMode::Task;
  SchedulerPolicy scheduler = SchedulerPolicy::Fcfs;
  /// Drain final products that landed in the BB back to the PFS when the
  /// last task finishes (sequential transfers, reported as stage-out time).
  bool stage_out = false;
  /// When the BB is full, evict least-recently-used *staged input* files
  /// (safe: their PFS copy remains) to make room for new writes/stages.
  bool bb_eviction = false;
  /// Concurrent transfers per stage-in task. The paper's stage-in is
  /// sequential (width 1); DataWarp can overlap several stage requests.
  int stage_in_width = 1;
  /// Override requested cores for every task (0 = honour task settings).
  int force_cores = 0;
  /// Per-type core overrides (applied after force_cores).
  std::map<std::string, int> cores_by_type;
  /// Pin producer/consumer chains to hosts when the BB restricts access by
  /// node. Auto-enabled for node-local and private-mode shared BBs.
  bool locality_pinning = true;
  PinningConfig pinning;
  /// Record the full event trace (disable for large sweeps).
  bool collect_trace = true;
  /// Collect runtime metrics (engine/solver counters, per-resource
  /// utilization, BB occupancy, task breakdown aggregates) into a
  /// MetricsRegistry, exported as Result::metrics. Off by default: sweeps
  /// that run thousands of simulations should not pay for sampling.
  bool collect_metrics = false;
  /// Record the structured virtual-time timeline (task phase spans, flow
  /// transfer spans, occupancy / bandwidth / queue-depth counter tracks)
  /// into a trace::TimelineRecorder, exported as Result::timeline
  /// (Perfetto JSON via Timeline::to_perfetto). Off by default for the
  /// same reason as collect_metrics.
  bool collect_timeline = false;
  /// Aggregate wall-clock self-profiling (solver, event dispatch,
  /// placement) into a trace::Profiler, exported as Result::profile.
  /// The profile is non-deterministic by nature; everything else in the
  /// Result stays byte-stable. Off by default.
  bool profile = false;
  /// Attach the invariant auditor: engine/storage probes run during the
  /// simulation, the flow network is certified max-min fair after every
  /// solve, and the finished Result is cross-checked. Violations are
  /// collected (never thrown) and exported as Result::audit (schema
  /// bbsim.audit.v1). Requires a build with BBSIM_AUDIT=ON (the default);
  /// ignored otherwise.
  bool audit = false;
  /// Record the causal event graph (readiness causes, aborted attempts,
  /// per-tier byte mixes, checkpoint stalls) into a critpath::Recorder and
  /// run the post-run critical-path / blame-attribution pass, exported as
  /// Result::critpath (schema bbsim.critpath.v1). Requires a build with
  /// BBSIM_CRITPATH=ON (the default); ignored otherwise. Off by default:
  /// a run without it is bitwise-identical to one predating the layer.
  bool critpath = false;
  /// Multiplier applied to every compute duration (testbed noise hook).
  std::function<double(const wf::Task&, std::size_t host)> compute_noise;
  /// Failure injection: seeded node-crash / BB-degradation / PFS-brownout
  /// arrival processes (src/resil). A disabled spec (the default) leaves
  /// the run bitwise-identical to an engine without the resilience layer.
  resil::FaultSpec faults;
  /// Checkpoint-to-BB policy: how running tasks snapshot progress so a
  /// crash rolls them back to their last *drained* checkpoint instead of
  /// to zero. Meaningful on its own too (pure-overhead measurement).
  resil::CheckpointSpec checkpoint;
};

/// One simulated execution of one workflow on one platform.
class Simulation {
 public:
  Simulation(platform::PlatformSpec platform, const wf::Workflow& workflow,
             ExecutionConfig config = {});
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Access for hooks (perturbations) before run().
  platform::Fabric& fabric() { return fabric_; }
  storage::StorageSystem& storage() { return storage_; }
  const wf::Workflow& workflow() const { return workflow_; }
  const ExecutionConfig& config() const { return config_; }
  /// The live metrics registry; nullptr unless config.collect_metrics.
  stats::MetricsRegistry* metrics() { return metrics_.get(); }
  /// The live timeline recorder; nullptr unless config.collect_timeline.
  trace::TimelineRecorder* timeline_recorder() { return timeline_rec_.get(); }
  /// The live wall-clock profiler; nullptr unless config.profile.
  trace::Profiler* profiler() { return profiler_.get(); }
  /// The live invariant auditor; nullptr unless config.audit (or when the
  /// build compiled the hooks out, BBSIM_AUDIT=OFF).
  audit::Auditor* auditor() { return auditor_.get(); }
  /// The live critical-path recorder; nullptr unless config.critpath (or
  /// when the build compiled the hooks out, BBSIM_CRITPATH=OFF).
  critpath::Recorder* critpath_recorder() { return critpath_.get(); }

  /// Runs to completion and returns the records. Callable once.
  Result run();

 private:
  // ------------------------------------------------------ per-task state
  struct TaskState {
    const wf::Task* task = nullptr;
    std::size_t topo_index = 0;
    double priority = 0.0;  ///< scheduler key (upward rank / work)
    std::size_t remaining_parents = 0;
    int cores = 1;
    std::size_t home_host = 0;   ///< preferred host (locality pinning)
    bool pinned = false;         ///< must run on home_host
    bool ready = false;
    bool running = false;
    bool done = false;
    std::size_t host = 0;
    // I/O bookkeeping
    std::deque<std::string> pending_reads;
    std::deque<std::string> pending_writes;
    std::size_t inflight_io = 0;
    TaskRecord record;
    // Resilience bookkeeping (only touched when the resil layer is active).
    int attempt = 0;                 ///< restarts so far (0 = first attempt)
    bool event_pending = false;      ///< pending_event below is live
    sim::EventId pending_event = 0;  ///< in-flight compute / restart event
    bool reading = false;            ///< between dispatch and reads-done
    bool in_segment = false;         ///< a compute segment is running
    std::vector<storage::IoHandle> io_ops;  ///< cancellable in-flight I/O
    storage::IoHandle ckpt_op;   ///< blocking checkpoint write in flight
    storage::IoHandle drain_op;  ///< async checkpoint drain BB -> PFS
    double compute_total = 0.0;  ///< full compute time of this attempt
    double compute_done = 0.0;   ///< compute seconds already banked
    double segment_start = 0.0;  ///< engine time the running segment began
    double ckpt_durable = 0.0;   ///< progress recoverable from the PFS
    double ckpt_size = 0.0;      ///< bytes of the last checkpoint written
    double ckpt_write_start = 0.0;
  };

  wf::Workflow workflow_;
  ExecutionConfig config_;
  platform::Fabric fabric_;
  storage::StorageSystem storage_;
  std::unique_ptr<stats::MetricsRegistry> metrics_;  ///< set iff collect_metrics
  std::unique_ptr<trace::TimelineRecorder> timeline_rec_;  ///< iff collect_timeline
  std::unique_ptr<trace::Profiler> profiler_;              ///< iff profile
  trace::ProfileSection* placement_profile_ = nullptr;     ///< iff profile
  // Invariant auditing (set iff config.audit and the build has the hooks).
  std::unique_ptr<audit::Auditor> auditor_;
  std::unique_ptr<audit::EngineProbe> engine_probe_;
  std::unique_ptr<audit::StorageProbe> storage_probe_;
  /// Causal event recorder (set iff config.critpath and the build has the
  /// hooks). Every call site is wrapped in BBSIM_CRITPATH_HOOK.
  std::unique_ptr<critpath::Recorder> critpath_;

  std::map<std::string, TaskState> states_;
  std::vector<std::string> topo_order_;
  std::vector<int> free_cores_;
  std::deque<std::string> ready_queue_;
  std::vector<std::string> staged_files_;
  /// Which staged files each stage-in task copies (the whole list for a
  /// single stage-in; partitioned by descendant consumers otherwise).
  std::map<std::string, std::vector<std::string>> staged_by_task_;
  std::map<std::string, std::size_t> staged_file_host_;  ///< file -> home host
  std::size_t tasks_remaining_ = 0;
  std::size_t demoted_writes_ = 0;
  std::size_t skipped_stage_files_ = 0;
  std::vector<TraceEvent> trace_;
  double stage_in_start_ = 0.0;
  double stage_in_end_ = 0.0;
  bool stage_in_seen_ = false;
  double stage_out_duration_ = 0.0;
  std::size_t evicted_files_ = 0;
  std::map<std::string, double> last_access_;  ///< file -> last read time (LRU)
  bool ran_ = false;

  /// Live state of the failure injector / checkpoint machinery. Null unless
  /// config.faults or config.checkpoint enabled it -- every resil branch in
  /// the engine is gated on this pointer, so a disabled run replays the
  /// exact event sequence of an engine without the layer.
  struct ResilState {
    ResilState(const resil::FaultSpec& spec, std::size_t host_count)
        : model(spec, host_count), host_up(host_count, 1) {}
    resil::FaultModel model;
    resil::RunStats stats;
    std::vector<char> host_up;  ///< 0 while a host is crashed
    trace::TrackId hosts_down_track = 0;
    bool has_track = false;
  };
  std::unique_ptr<ResilState> resil_;

  // ------------------------------------------------------------- phases
  void prepare();                 ///< initial placement, pinning, readiness
  void try_schedule();            ///< drain the ready queue onto free cores
  void start_task(TaskState& ts, std::size_t host);
  void run_stage_in(TaskState& ts);
  /// In-flight bookkeeping for one stage-in task's transfer window.
  struct StageChain {
    TaskState* ts = nullptr;  ///< nullptr for the implicit pre-phase
    const std::vector<std::string>* files = nullptr;
    std::size_t next = 0;
    std::size_t inflight = 0;
  };
  void pump_stage_chain(const std::shared_ptr<StageChain>& chain);
  void finish_stage_chain(const StageChain& chain);
  /// Partition staged_files_ among the workflow's stage-in tasks.
  void build_stage_partition();
  void issue_reads(TaskState& ts);
  void on_reads_done(TaskState& ts);
  void on_compute_done(TaskState& ts);
  void issue_writes(TaskState& ts);
  void finish_task(TaskState& ts);
  /// Compute scheduler priorities for every task (policy-dependent).
  void compute_priorities();
  /// Insert into the ready queue respecting the scheduler policy.
  void enqueue_ready(const std::string& task_name);
  /// Drain BB-resident final outputs to the PFS (stage_out option).
  void run_stage_out();
  /// Evict LRU staged inputs until `bytes` fit (bb_eviction option).
  bool try_evict(double bytes);

  // ------------------------------------------------ resilience (src/resil)
  void setup_resil();  ///< create ResilState + seed the fault arrival events
  void schedule_node_crash(std::size_t host, double at);
  void on_node_crash(std::size_t host);
  void on_node_repair(std::size_t host);
  void schedule_bb_fault(double at);
  void on_bb_degrade();
  void schedule_pfs_fault(double at);
  void on_pfs_brownout();
  /// Abort a running attempt: cancel its compute event and in-flight I/O,
  /// roll capacity reservations back, free its cores and account the lost
  /// work. With `requeue` the task re-enters the ready queue immediately;
  /// without, the caller re-wires its dependence edges first (rollback).
  void kill_task(TaskState& ts, bool requeue);
  /// Un-do a *completed* task whose output was lost with a crashed node:
  /// it re-runs, non-done children wait for it again, and lost inputs of
  /// its own are re-produced recursively.
  void rollback_task(TaskState& ts);
  /// Re-produce `fname` if no replica survives anywhere (lineage recovery).
  void ensure_file_available(const std::string& fname);
  /// A burst-buffer-only workflow file vanished with its node.
  void on_file_lost(const std::string& fname);
  bool host_available(std::size_t host) const;
  /// Queue the task's input reads (start_task tail; split out so a restart
  /// delay can precede it).
  void begin_reads(TaskState& ts);
  /// Schedule the next compute segment (the whole remainder when the task
  /// does not checkpoint), then checkpoint or finish.
  void run_compute_segment(TaskState& ts);
  void take_checkpoint(TaskState& ts);
  /// Checkpoint image size for this task (0 = never checkpoint).
  double checkpoint_bytes(const TaskState& ts) const;
  /// Seconds of compute between checkpoints (0 = no checkpointing).
  double checkpoint_interval(const TaskState& ts);
  /// Drop the task's checkpoint replicas and cancel its in-flight drain.
  void cleanup_checkpoints(TaskState& ts);
  void sample_hosts_down();

  // ------------------------------------------------------------ helpers
  int cores_for(const wf::Task& task) const;
  Tier output_tier(const TaskState& ts, const std::string& file_name) const;
  /// True when the BB has room for `bytes` more.
  bool bb_has_room(double bytes);
  storage::StorageService* bb() { return storage_.burst_buffer(); }
  void trace(TraceEventKind kind, const std::string& task, std::string detail = "");
  /// Increment a named metrics counter (no-op when metrics are off).
  void bump(const char* counter_name, double delta = 1.0);
  double compute_duration(const TaskState& ts) const;
  Result collect_result();
};

}  // namespace bbsim::exec
