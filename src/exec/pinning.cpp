#include "exec/pinning.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace bbsim::exec {

namespace {

/// Union-find over task indexes with per-root component weight (flops).
class UnionFind {
 public:
  explicit UnionFind(std::vector<double> weights)
      : parent_(weights.size()), weight_(std::move(weights)) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    parent_[a] = b;
    weight_[b] += weight_[a];
  }
  double weight(std::size_t x) { return weight_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> weight_;
};

}  // namespace

std::vector<std::size_t> compute_home_hosts(const wf::Workflow& workflow,
                                            const platform::PlatformSpec& platform,
                                            const PinningConfig& config) {
  const std::vector<std::string>& names = workflow.task_names();
  const std::size_t n = names.size();
  const std::size_t hosts = platform.hosts.size();

  std::map<std::string, std::size_t> task_index;
  std::vector<double> task_weight(n, 0.0);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    task_index[names[i]] = i;
    task_weight[i] = workflow.task(names[i]).flops;
    total_weight += task_weight[i];
  }

  // Capacity-aware clustering: glue producer/consumer chains together, but
  // never let one component exceed a fair host share -- otherwise a few
  // widely-shared files (population lists, reference tables) would collapse
  // the whole workflow onto one node. Files are considered from the
  // strongest locality signal (fewest readers) upward.
  struct GlueFile {
    const std::string* name;
    std::size_t consumers;
  };
  std::vector<GlueFile> glue;
  for (const std::string& fname : workflow.file_names()) {
    const std::size_t consumers = workflow.consumers(fname).size();
    if (consumers == 0) continue;
    if (consumers > config.broadcast_threshold) continue;  // broadcast file
    glue.push_back({&fname, consumers});
  }
  std::stable_sort(glue.begin(), glue.end(),
                   [](const GlueFile& a, const GlueFile& b) {
                     return a.consumers < b.consumers;
                   });

  double max_task = 0.0;
  for (const double w : task_weight) max_task = std::max(max_task, w);
  const double limit =
      std::max(1.3 * total_weight / static_cast<double>(hosts), max_task);

  UnionFind uf(task_weight);
  for (const GlueFile& g : glue) {
    std::vector<std::size_t> touching;
    for (const std::string& c : workflow.consumers(*g.name)) {
      touching.push_back(task_index.at(c));
    }
    if (const auto prod = workflow.producer(*g.name)) {
      touching.push_back(task_index.at(*prod));
    }
    if (touching.size() <= 1) continue;
    // Weight of the union if we glued everything this file touches.
    std::map<std::size_t, double> roots;
    for (const std::size_t t : touching) roots[uf.find(t)] = uf.weight(t);
    double combined = 0.0;
    for (const auto& [_, w] : roots) combined += w;
    if (roots.size() > 1 && combined > limit && hosts > 1) continue;  // too heavy
    for (std::size_t k = 1; k < touching.size(); ++k) {
      uf.unite(touching[0], touching[k]);
    }
  }

  // Collect components and deal them largest-first onto the least-loaded
  // host (LPT balancing).
  std::map<std::size_t, std::vector<std::size_t>> components;
  std::map<std::size_t, double> weight;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    components[root].push_back(i);
    weight[root] += task_weight[i];
  }
  std::vector<std::size_t> roots;
  roots.reserve(components.size());
  for (const auto& [root, _] : components) roots.push_back(root);
  std::stable_sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    return weight[a] > weight[b];
  });

  std::vector<double> host_load(hosts, 0.0);
  std::vector<std::size_t> home(n, 0);
  for (const std::size_t root : roots) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(host_load.begin(), host_load.end()) - host_load.begin());
    for (const std::size_t i : components[root]) home[i] = target;
    host_load[target] += weight[root];
  }
  return home;
}

}  // namespace bbsim::exec
