// bbsim -- ASCII Gantt rendering of an execution Result.
//
// Renders per-task bars over simulated time, with I/O phases distinguished
// from compute:  r = reading inputs, # = computing, w = writing outputs.
// Useful for eyeballing schedules in examples and bug reports.
#pragma once

#include <string>

#include "exec/trace.hpp"

namespace bbsim::exec {

struct GanttOptions {
  int width = 72;          ///< characters available for the time axis
  std::size_t max_rows = 64;  ///< truncate very large workflows
  bool show_host = true;
};

/// Renders the tasks of `result` (sorted by start time) as an ASCII chart.
std::string render_gantt(const Result& result, const GanttOptions& options = {});

}  // namespace bbsim::exec
