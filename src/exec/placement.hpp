// bbsim -- data placement policies: which files live in the burst buffer.
//
// The paper sweeps the fraction of input files staged into the BB and the
// tier holding intermediate files (Figures 4, 5, 10, 13). Its stated future
// direction is exploring the heuristic space of placement policies; the
// extra policies here (size threshold, locality, bandwidth-aware greedy)
// implement that exploration (see examples/placement_heuristics.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workflow/workflow.hpp"

namespace bbsim::exec {

/// Storage tier for a file.
enum class Tier { PFS, BurstBuffer };

const char* to_string(Tier tier);

/// Strategy interface: selects the input files to stage into the BB and the
/// tier of every produced file.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;

  /// Workflow input files to stage into the BB, in stage-in order.
  virtual std::vector<std::string> files_to_stage(const wf::Workflow& w) const = 0;

  /// Tier for an output of `task_name`. The engine may demote BB choices to
  /// the PFS when the file would be unreachable (node-local devices).
  virtual Tier place_output(const wf::Workflow& w, const std::string& task_name,
                            const std::string& file_name) const = 0;
};

/// The paper's experimental knob: stage the first ceil(fraction * N) input
/// files; put intermediates on `intermediate_tier` and final outputs on
/// `output_tier` (final products conventionally land on the PFS).
class FractionPolicy final : public PlacementPolicy {
 public:
  FractionPolicy(double input_fraction, Tier intermediate_tier,
                 Tier output_tier = Tier::PFS);
  std::string name() const override;
  std::vector<std::string> files_to_stage(const wf::Workflow& w) const override;
  Tier place_output(const wf::Workflow& w, const std::string& task_name,
                    const std::string& file_name) const override;

  double input_fraction() const { return fraction_; }

 private:
  double fraction_;
  Tier intermediate_tier_;
  Tier output_tier_;
};

/// Everything on the PFS (the paper's baseline scenario).
std::shared_ptr<PlacementPolicy> all_pfs_policy();

/// All inputs staged, intermediates in the BB, final outputs on the PFS.
std::shared_ptr<PlacementPolicy> all_bb_policy();

/// Files with size <= threshold go to the BB (small files benefit most from
/// the low-latency tier); larger files stream from the PFS. `invert` flips
/// the comparison for the ablation.
class SizeThresholdPolicy final : public PlacementPolicy {
 public:
  explicit SizeThresholdPolicy(double threshold_bytes, bool invert = false);
  std::string name() const override;
  std::vector<std::string> files_to_stage(const wf::Workflow& w) const override;
  Tier place_output(const wf::Workflow& w, const std::string& task_name,
                    const std::string& file_name) const override;

 private:
  double threshold_;
  bool invert_;
  bool prefers_bb(double size) const;
};

/// Producer-consumer locality: intermediates with a single consumer go to
/// the BB (they stay on one node's pipeline); widely shared files go to the
/// PFS. Inputs consumed by a single task are staged.
class LocalityPolicy final : public PlacementPolicy {
 public:
  explicit LocalityPolicy(std::size_t max_consumers_for_bb = 1);
  std::string name() const override;
  std::vector<std::string> files_to_stage(const wf::Workflow& w) const override;
  Tier place_output(const wf::Workflow& w, const std::string& task_name,
                    const std::string& file_name) const override;

 private:
  std::size_t max_consumers_;
};

/// Bandwidth-aware greedy: stage inputs by descending (size * consumers)
/// -- the bytes the BB will actually serve -- until a byte budget is
/// exhausted. Intermediates go to the BB while the budget allows.
class GreedyBytesPolicy final : public PlacementPolicy {
 public:
  explicit GreedyBytesPolicy(double byte_budget);
  std::string name() const override;
  std::vector<std::string> files_to_stage(const wf::Workflow& w) const override;
  Tier place_output(const wf::Workflow& w, const std::string& task_name,
                    const std::string& file_name) const override;

 private:
  double budget_;
};

}  // namespace bbsim::exec
