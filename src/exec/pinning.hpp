// bbsim -- task-to-host pinning for locality-constrained burst buffers.
//
// On node-local (Summit) and private-mode shared (Cori) burst buffers, a
// file in the BB is readable only from one compute node. To exploit such
// buffers across multiple nodes, the engine pre-assigns each task a "home"
// host so that producer/consumer chains stay co-located:
//
//   1. Build connected components over tasks that share files, ignoring
//      "broadcast" files read by more than `broadcast_threshold` tasks
//      (those go to the PFS anyway).
//   2. Deal components onto hosts round-robin, largest first.
//
// This mirrors how the paper's workflows behave in practice: each SWarp
// pipeline, or each 1000Genomes chromosome subtree, lands on one node.
#pragma once

#include <string>
#include <vector>

#include "platform/spec.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::exec {

struct PinningConfig {
  /// Files read by more than this many tasks do not glue components.
  std::size_t broadcast_threshold = 16;
};

/// home[i] = host index of workflow.task_names()[i].
std::vector<std::size_t> compute_home_hosts(const wf::Workflow& workflow,
                                            const platform::PlatformSpec& platform,
                                            const PinningConfig& config = {});

}  // namespace bbsim::exec
