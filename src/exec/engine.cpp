#include "exec/engine.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "exec/validate.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::exec {

using platform::StorageKind;
using util::ConfigError;
using util::InvariantError;

namespace {
constexpr const char* kStageInType = "stage_in";
/// Checkpoint files are "<task>.ckpt": outside the workflow's file set, so
/// byte-conservation audits (which track declared files) ignore them.
constexpr const char* kCkptSuffix = ".ckpt";
}

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::Fcfs: return "fcfs";
    case SchedulerPolicy::CriticalPathFirst: return "critical_path";
    case SchedulerPolicy::LargestFirst: return "largest_first";
    case SchedulerPolicy::SmallestFirst: return "smallest_first";
  }
  return "?";
}

Simulation::Simulation(platform::PlatformSpec platform, const wf::Workflow& workflow,
                       ExecutionConfig config)
    : workflow_(workflow),
      config_(std::move(config)),
      fabric_(std::move(platform)),
      storage_(fabric_) {
  if (!config_.placement) config_.placement = all_bb_policy();
  workflow_.validate();
  if (config_.collect_metrics) {
    metrics_ = std::make_unique<stats::MetricsRegistry>();
    fabric_.engine().set_metrics(metrics_.get());
    fabric_.flows().set_metrics(metrics_.get());
    storage_.set_metrics(metrics_.get());
  }
  if (config_.collect_timeline) {
    timeline_rec_ = std::make_unique<trace::TimelineRecorder>();
    std::vector<std::string> host_names;
    host_names.reserve(fabric_.spec().hosts.size());
    for (const auto& h : fabric_.spec().hosts) host_names.push_back(h.name);
    timeline_rec_->set_host_names(std::move(host_names));
    fabric_.engine().set_timeline(timeline_rec_.get());
    fabric_.flows().set_timeline(timeline_rec_.get());
    storage_.set_timeline(timeline_rec_.get());
  }
  if (config_.collect_metrics || config_.collect_timeline) {
    // One achieved-bandwidth group per storage service (its read + write
    // disk channels): the time-resolved Figure 9 signal, published into
    // the metrics registry and/or the timeline by the flow manager.
    for (std::size_t s = 0; s < fabric_.spec().storage.size(); ++s) {
      const auto& res = fabric_.storage_resources(s);
      std::vector<flow::ResourceId> group(res.disk_read);
      group.insert(group.end(), res.disk_write.begin(), res.disk_write.end());
      fabric_.flows().register_bandwidth_group(fabric_.spec().storage[s].name,
                                               std::move(group));
    }
  }
  if (config_.profile) {
    profiler_ = std::make_unique<trace::Profiler>();
    fabric_.engine().set_profiler(profiler_.get());
    fabric_.flows().set_profiler(profiler_.get());
    placement_profile_ = profiler_->section("exec.placement");
  }
#if defined(BBSIM_AUDIT_ENABLED)
  if (config_.audit) {
    auditor_ = std::make_unique<audit::Auditor>();
    engine_probe_ = std::make_unique<audit::EngineProbe>(*auditor_);
    storage_probe_ = std::make_unique<audit::StorageProbe>(
        *auditor_, [this] { return fabric_.engine().now(); });
    for (const std::string& f : workflow_.file_names()) {
      storage_probe_->set_expected_size(f, workflow_.file(f).size);
    }
    fabric_.engine().set_observer(engine_probe_.get());
    storage_.set_observer(storage_probe_.get());
    fabric_.flows().network().set_post_solve_hook(
        [this](const flow::Network& net, int /*rounds*/) {
          audit::audit_flow_network(*auditor_, net, fabric_.engine().now());
        });
    if (metrics_) auditor_->set_metrics(metrics_.get());
  }
#endif
#if defined(BBSIM_CRITPATH_ENABLED)
  if (config_.critpath) {
    critpath_ = std::make_unique<critpath::Recorder>();
  }
#endif
}

void Simulation::bump(const char* counter_name, double delta) {
  if (metrics_) metrics_->counter(counter_name).add(delta);
}

int Simulation::cores_for(const wf::Task& task) const {
  if (task.type == kStageInType) return 1;  // always sequential (paper Sec. III-D)
  int cores = task.requested_cores;
  if (config_.force_cores > 0) cores = config_.force_cores;
  const auto it = config_.cores_by_type.find(task.type);
  if (it != config_.cores_by_type.end()) cores = it->second;
  return std::max(1, cores);
}

void Simulation::trace(TraceEventKind kind, const std::string& task,
                       std::string detail) {
  if (!config_.collect_trace) return;
  trace_.push_back(TraceEvent{fabric_.engine().now(), kind, task, std::move(detail)});
}

void Simulation::prepare() {
  const auto& hosts = fabric_.spec().hosts;
  free_cores_.clear();
  for (const auto& h : hosts) free_cores_.push_back(h.cores);
  int max_cores = 0;
  for (const auto& h : hosts) max_cores = std::max(max_cores, h.cores);

  topo_order_ = workflow_.topological_order();
  std::map<std::string, std::size_t> topo_index;
  for (std::size_t i = 0; i < topo_order_.size(); ++i) topo_index[topo_order_[i]] = i;

  // Locality pinning when the burst buffer restricts reads by node.
  storage::StorageService* bb_svc = bb();
  const bool restricted =
      bb_svc != nullptr &&
      (bb_svc->kind() == StorageKind::NodeLocalBB ||
       (bb_svc->kind() == StorageKind::SharedBB &&
        bb_svc->spec().mode == platform::BBMode::Private));
  const bool pin = config_.locality_pinning && restricted;
  std::vector<std::size_t> homes;
  if (pin) homes = compute_home_hosts(workflow_, fabric_.spec(), config_.pinning);

  const auto& names = workflow_.task_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const wf::Task& t = workflow_.task(names[i]);
    TaskState st;
    st.task = &t;
    st.topo_index = topo_index.at(t.name);
    st.remaining_parents = workflow_.parents(t.name).size();
    st.cores = cores_for(t);
    if (st.cores > max_cores) {
      throw ConfigError("task '" + t.name + "' wants " + std::to_string(st.cores) +
                        " cores but the largest host has " + std::to_string(max_cores));
    }
    st.home_host = pin ? homes[i] : 0;
    st.pinned = pin;
    st.record.name = t.name;
    st.record.type = t.type;
    st.record.cores = st.cores;
    states_.emplace(t.name, std::move(st));
  }
  tasks_remaining_ = names.size();

  // Initial dataset: all workflow inputs on the PFS.
  storage::StorageService& pfs = storage_.pfs();
  for (const std::string& f : workflow_.input_files()) {
    pfs.register_file(storage::FileRef{f, workflow_.file(f).size}, 0);
  }

  // Staging plan.
  staged_files_.clear();
  if (bb_svc != nullptr) {
    const trace::ScopedTimer timer(placement_profile_);
    staged_files_ = config_.placement->files_to_stage(workflow_);
  }
  for (const std::string& f : staged_files_) {
    std::size_t host = 0;
    const auto consumers = workflow_.consumers(f);
    if (!consumers.empty()) host = states_.at(consumers.front()).home_host;
    staged_file_host_[f] = host;
  }
  if (config_.stage_in_mode == StageInMode::Instant && bb_svc != nullptr) {
    for (const std::string& f : staged_files_) {
      const double size = workflow_.file(f).size;
      if (!bb_has_room(size) && !(config_.bb_eviction && try_evict(size))) {
        ++skipped_stage_files_;
        bump("storage.skipped_stage_ins");
        continue;
      }
      bb_svc->register_file(storage::FileRef{f, size}, staged_file_host_[f]);
    }
  }
  build_stage_partition();

  compute_priorities();

  // Mark entry tasks ready.
  for (const std::string& name : topo_order_) {
    TaskState& st = states_.at(name);
    if (st.remaining_parents == 0) {
      st.ready = true;
      st.record.t_ready = fabric_.engine().now();
      enqueue_ready(name);
      trace(TraceEventKind::TaskReady, name);
      BBSIM_CRITPATH_HOOK(if (critpath_) {
        critpath_->record_ready(
            name, st.record.t_ready,
            {critpath::ReadyCause::Kind::kWorkflowStart, {}});
      });
    }
  }
  setup_resil();
  try_schedule();
}

void Simulation::compute_priorities() {
  switch (config_.scheduler) {
    case SchedulerPolicy::Fcfs:
      for (auto& [_, st] : states_) st.priority = 0.0;
      return;
    case SchedulerPolicy::LargestFirst:
      for (auto& [_, st] : states_) st.priority = st.task->flops;
      return;
    case SchedulerPolicy::SmallestFirst:
      for (auto& [_, st] : states_) st.priority = -st.task->flops;
      return;
    case SchedulerPolicy::CriticalPathFirst: {
      // Upward rank: a task's sequential work plus the heaviest downstream
      // chain (HEFT's rank_u without communication terms).
      for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
        TaskState& st = states_.at(*it);
        double best_child = 0.0;
        for (const std::string& child : workflow_.children(*it)) {
          best_child = std::max(best_child, states_.at(child).priority);
        }
        st.priority = st.task->flops + best_child;
      }
      return;
    }
  }
}

void Simulation::enqueue_ready(const std::string& task_name) {
  if (config_.scheduler == SchedulerPolicy::Fcfs) {
    ready_queue_.push_back(task_name);
    return;
  }
  const TaskState& st = states_.at(task_name);
  auto pos = ready_queue_.begin();
  for (; pos != ready_queue_.end(); ++pos) {
    const TaskState& other = states_.at(*pos);
    if (st.priority > other.priority ||
        (st.priority == other.priority && st.topo_index < other.topo_index)) {
      break;
    }
  }
  ready_queue_.insert(pos, task_name);
}

void Simulation::try_schedule() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = ready_queue_.begin(); it != ready_queue_.end(); ++it) {
      TaskState& st = states_.at(*it);
      std::size_t chosen = static_cast<std::size_t>(-1);
      if (st.pinned) {
        // Wait for the home host unless it can never fit the request.
        if (fabric_.spec().hosts[st.home_host].cores >= st.cores) {
          if (host_available(st.home_host) && free_cores_[st.home_host] >= st.cores) {
            chosen = st.home_host;
          }
        } else {
          for (std::size_t h = 0; h < free_cores_.size(); ++h) {
            if (host_available(h) && free_cores_[h] >= st.cores) { chosen = h; break; }
          }
        }
      } else {
        // Least-loaded host with room (ties -> lowest index).
        int best_free = -1;
        for (std::size_t h = 0; h < free_cores_.size(); ++h) {
          if (host_available(h) && free_cores_[h] >= st.cores &&
              free_cores_[h] > best_free) {
            best_free = free_cores_[h];
            chosen = h;
          }
        }
      }
      if (chosen == static_cast<std::size_t>(-1)) continue;
      const std::string name = *it;
      ready_queue_.erase(it);
      start_task(states_.at(name), chosen);
      progressed = true;
      break;  // iterators invalidated; rescan
    }
  }
}

void Simulation::start_task(TaskState& ts, std::size_t host) {
  ts.running = true;
  ts.host = host;
  ts.record.host = host;
  free_cores_[host] -= ts.cores;
  ts.record.t_start = fabric_.engine().now();
  trace(TraceEventKind::TaskStart, ts.task->name,
        util::format("host=%zu cores=%d", host, ts.cores));

  if (ts.task->type == kStageInType) {
    run_stage_in(ts);
    return;
  }
  if (resil_ != nullptr && ts.attempt > 0) {
    trace(TraceEventKind::TaskRestart, ts.task->name,
          util::format("attempt=%d", ts.attempt + 1));
    const double delay = config_.checkpoint.restart_latency;
    if (delay > 0.0) {
      // Restart overhead: re-launch plus reading the checkpoint image back.
      BBSIM_CRITPATH_HOOK(if (critpath_) {
        critpath_->record_restart_delay(ts.task->name, delay);
      });
      ts.event_pending = true;
      ts.pending_event = fabric_.engine().schedule_in(delay, [this, &ts] {
        ts.event_pending = false;
        begin_reads(ts);
      });
      return;
    }
  }
  begin_reads(ts);
}

void Simulation::begin_reads(TaskState& ts) {
  ts.reading = true;
  for (const std::string& f : ts.task->inputs) ts.pending_reads.push_back(f);
  issue_reads(ts);
}

void Simulation::build_stage_partition() {
  staged_by_task_.clear();
  std::vector<std::string> stage_tasks;
  for (const std::string& name : workflow_.task_names()) {
    if (workflow_.task(name).type == kStageInType) stage_tasks.push_back(name);
  }
  if (stage_tasks.empty()) return;
  if (stage_tasks.size() == 1) {
    staged_by_task_[stage_tasks.front()] = staged_files_;
    return;
  }
  // Several stage-in tasks (one workflow instance per pipeline): each one
  // copies the staged files its descendants consume.
  std::set<std::string> assigned;
  for (const std::string& stage : stage_tasks) {
    // BFS over descendants.
    std::set<std::string> seen{stage};
    std::deque<std::string> frontier{stage};
    std::set<std::string> wanted;
    while (!frontier.empty()) {
      const std::string task = frontier.front();
      frontier.pop_front();
      for (const std::string& child : workflow_.children(task)) {
        if (seen.insert(child).second) frontier.push_back(child);
      }
      for (const std::string& f : workflow_.task(task).inputs) wanted.insert(f);
    }
    std::vector<std::string>& mine = staged_by_task_[stage];
    for (const std::string& f : staged_files_) {
      if (wanted.count(f) > 0 && assigned.insert(f).second) mine.push_back(f);
    }
  }
  // Leftovers (staged files no stage-in task covers) go to the first task.
  for (const std::string& f : staged_files_) {
    if (assigned.insert(f).second) staged_by_task_[stage_tasks.front()].push_back(f);
  }
}

void Simulation::run_stage_in(TaskState& ts) {
  const double now = fabric_.engine().now();
  if (!stage_in_seen_ || now < stage_in_start_) stage_in_start_ = now;
  stage_in_seen_ = true;
  const auto it = staged_by_task_.find(ts.task->name);
  const std::vector<std::string>* files =
      it != staged_by_task_.end() ? &it->second : nullptr;
  if (config_.stage_in_mode == StageInMode::Instant || files == nullptr ||
      files->empty() || bb() == nullptr) {
    // Nothing to move (pre-staged or no BB): finish via a zero-delay event.
    fabric_.engine().schedule_in(0.0, [this, &ts] {
      const double t = fabric_.engine().now();
      ts.record.t_reads_done = t;
      ts.record.t_compute_done = t;
      stage_in_end_ = std::max(stage_in_end_, t);
      finish_task(ts);
    });
    return;
  }
  auto chain = std::make_shared<StageChain>();
  chain->ts = &ts;
  chain->files = files;
  pump_stage_chain(chain);
}

void Simulation::finish_stage_chain(const StageChain& chain) {
  const double now = fabric_.engine().now();
  stage_in_end_ = std::max(stage_in_end_, now);
  if (chain.ts != nullptr) {
    chain.ts->record.t_reads_done = now;
    chain.ts->record.t_compute_done = now;
    finish_task(*chain.ts);
  }
}

void Simulation::pump_stage_chain(const std::shared_ptr<StageChain>& chain) {
  const std::size_t width =
      static_cast<std::size_t>(std::max(1, config_.stage_in_width));
  while (chain->next < chain->files->size() && chain->inflight < width) {
    const std::string& fname = (*chain->files)[chain->next++];
    const storage::FileRef file{fname, workflow_.file(fname).size};
    if (!bb_has_room(file.size) && !(config_.bb_eviction && try_evict(file.size))) {
      // The allocation is full: the file stays on the PFS (and is counted).
      ++skipped_stage_files_;
      bump("storage.skipped_stage_ins");
      trace(TraceEventKind::StageSkipped,
            chain->ts != nullptr ? chain->ts->task->name : "implicit_stage_in", fname);
      continue;
    }
    const std::size_t via_host = staged_file_host_.at(fname);
    if (chain->ts != nullptr) {
      chain->ts->record.bytes_read += file.size;
      chain->ts->record.bytes_written += file.size;
    }
    trace(TraceEventKind::StageFile,
          chain->ts != nullptr ? chain->ts->task->name : "implicit_stage_in",
          util::format("%s -> bb (host %zu)", fname.c_str(), via_host));
    ++chain->inflight;
    storage_.transfer(file, storage_.pfs(), *bb(), via_host, [this, chain] {
      --chain->inflight;
      pump_stage_chain(chain);
    });
  }
  if (chain->next >= chain->files->size() && chain->inflight == 0) {
    finish_stage_chain(*chain);
  }
}

void Simulation::issue_reads(TaskState& ts) {
  const std::size_t window = static_cast<std::size_t>(ts.cores);
  while (!ts.pending_reads.empty() && ts.inflight_io < window) {
    const std::string fname = ts.pending_reads.front();
    ts.pending_reads.pop_front();
    storage::StorageService* src = storage_.best_source(fname, ts.host);
    if (src == nullptr) {
      throw InvariantError("task '" + ts.task->name + "' cannot read file '" + fname +
                           "' from host " + std::to_string(ts.host) +
                           " (no readable replica)");
    }
    last_access_[fname] = fabric_.engine().now();  // LRU bookkeeping
    const storage::FileRef file{fname, workflow_.file(fname).size};
    ts.record.bytes_read += file.size;
    BBSIM_CRITPATH_HOOK(if (critpath_) {
      critpath_->record_read_bytes(ts.task->name, file.size,
                                   src != &storage_.pfs());
    });
    if (metrics_) {
      // How long this transfer waited in the task's pending queue (the
      // paper's I/O window is `cores` concurrent files).
      metrics_->histogram("flow.queue_wait_seconds")
          .record(fabric_.engine().now() - ts.record.t_start);
    }
    ++ts.inflight_io;
    auto done = [this, &ts] {
      --ts.inflight_io;
      if (ts.pending_reads.empty() && ts.inflight_io == 0) {
        on_reads_done(ts);
      } else {
        issue_reads(ts);
      }
    };
    // read_cancellable() issues the exact event/flow sequence of read();
    // keeping the handle just lets kill_task() abort the attempt's I/O.
    if (resil_ != nullptr) {
      ts.io_ops.push_back(src->read_cancellable(file, ts.host, std::move(done)));
    } else {
      src->read(file, ts.host, std::move(done));
    }
  }
  if (ts.pending_reads.empty() && ts.inflight_io == 0 && ts.task->inputs.empty()) {
    on_reads_done(ts);
  }
}

double Simulation::compute_duration(const TaskState& ts) const {
  const wf::Task& t = *ts.task;
  if (t.flops <= 0.0) return 0.0;
  const double core_speed = fabric_.spec().hosts[ts.host].core_speed;
  const double t_seq = t.flops / core_speed;
  double duration = model::amdahl_time(t_seq, ts.cores, t.alpha);
  if (config_.compute_noise) duration *= config_.compute_noise(t, ts.host);
  return duration;
}

void Simulation::on_reads_done(TaskState& ts) {
  ts.record.t_reads_done = fabric_.engine().now();
  ts.reading = false;
  trace(TraceEventKind::ReadsDone, ts.task->name);
  if (resil_ == nullptr) {
    const double duration = compute_duration(ts);
    fabric_.engine().schedule_in(duration, [this, &ts] { on_compute_done(ts); });
    return;
  }
  ts.compute_total = compute_duration(ts);
  // A restarted attempt resumes from its last durable (drained) checkpoint.
  ts.compute_done = std::min(ts.ckpt_durable, ts.compute_total);
  run_compute_segment(ts);
}

void Simulation::run_compute_segment(TaskState& ts) {
  const double remaining = std::max(0.0, ts.compute_total - ts.compute_done);
  const double tau = checkpoint_interval(ts);
  const bool will_checkpoint = tau > 0.0 && remaining > tau;
  const double seg = will_checkpoint ? tau : remaining;
  ts.in_segment = true;
  ts.segment_start = fabric_.engine().now();
  ts.event_pending = true;
  ts.pending_event =
      fabric_.engine().schedule_in(seg, [this, &ts, will_checkpoint, seg] {
        ts.event_pending = false;
        ts.in_segment = false;
        ts.compute_done += seg;
        if (will_checkpoint) {
          take_checkpoint(ts);
        } else {
          on_compute_done(ts);
        }
      });
}

double Simulation::checkpoint_bytes(const TaskState& ts) const {
  const resil::CheckpointSpec& ck = config_.checkpoint;
  if (ck.bytes > 0.0) return ck.bytes;
  double base = 0.0;
  for (const std::string& f : ts.task->outputs) base += workflow_.file(f).size;
  if (base <= 0.0) {
    for (const std::string& f : ts.task->inputs) base += workflow_.file(f).size;
  }
  return ck.fraction * base;
}

double Simulation::checkpoint_interval(const TaskState& ts) {
  const resil::CheckpointSpec& ck = config_.checkpoint;
  if (!ck.enabled()) return 0.0;
  if (ts.task->type == kStageInType) return 0.0;
  if (ts.compute_total < ck.min_compute) return 0.0;
  const double bytes = checkpoint_bytes(ts);
  if (bytes <= 0.0) return 0.0;
  if (ck.mode == resil::CheckpointSpec::Mode::Interval) return ck.interval;
  // Young/Daly optimum tau = sqrt(2 C M): estimate the checkpoint cost C
  // from the checkpoint tier's nominal per-node disk write bandwidth.
  const double mtbf = config_.faults.node_mtbf;
  if (mtbf <= 0.0) return 0.0;  // no crash process: nothing to optimize for
  const storage::StorageService* dst = storage_.burst_buffer();
  if (dst == nullptr) dst = &storage_.pfs();
  const double bw = dst->spec().disk.write_bw;
  const double cost = bw > 0.0 && bw != platform::kUnlimited ? bytes / bw : 0.0;
  if (cost <= 0.0) return 0.0;  // free checkpoints would fire continuously
  return std::sqrt(2.0 * cost * mtbf);
}

void Simulation::take_checkpoint(TaskState& ts) {
  resil::RunStats& stats = resil_->stats;
  if (ts.drain_op != nullptr) {
    // The previous image is superseded before it finished draining.
    ts.drain_op->cancel();
    ts.drain_op.reset();
    stats.checkpoint_bytes_discarded += ts.ckpt_size;
  }
  const double bytes = checkpoint_bytes(ts);
  const storage::FileRef file{ts.task->name + kCkptSuffix, bytes};
  storage::StorageService* bb_svc = bb();
  const bool to_bb = bb_svc != nullptr && bb_has_room(bytes);
  storage::StorageService& dst = to_bb ? *bb_svc : storage_.pfs();
  ts.ckpt_size = bytes;
  ts.ckpt_write_start = fabric_.engine().now();
  trace(TraceEventKind::Checkpoint, ts.task->name,
        util::format("%s -> %s", file.name.c_str(), dst.name().c_str()));
  bump("resil.checkpoints");
  const double progress = ts.compute_done;
  ts.ckpt_op = dst.write_cancellable(
      file, ts.host, [this, &ts, progress, bytes, to_bb, file] {
        ts.ckpt_op.reset();
        resil::RunStats& s = resil_->stats;
        ++s.checkpoints_taken;
        s.checkpoint_bytes_written += bytes;
        s.checkpoint_core_seconds +=
            ts.cores * (fabric_.engine().now() - ts.ckpt_write_start);
        BBSIM_CRITPATH_HOOK(if (critpath_) {
          critpath_->record_ckpt_stall(
              ts.task->name, fabric_.engine().now() - ts.ckpt_write_start,
              to_bb);
        });
        if (to_bb) {
          // Asynchronous drain: the image only protects against node loss
          // once its PFS copy exists; compute resumes immediately.
          ts.drain_op = storage_.transfer_cancellable(
              file, *bb(), storage_.pfs(), ts.host, [this, &ts, progress, bytes] {
                ts.drain_op.reset();
                resil_->stats.checkpoint_bytes_drained += bytes;
                ts.ckpt_durable = progress;
                trace(TraceEventKind::CheckpointDrained, ts.task->name);
              });
        } else {
          ts.ckpt_durable = progress;  // written straight to the PFS
        }
        run_compute_segment(ts);
      });
}

void Simulation::on_compute_done(TaskState& ts) {
  ts.record.t_compute_done = fabric_.engine().now();
  trace(TraceEventKind::ComputeDone, ts.task->name);
  for (const std::string& f : ts.task->outputs) ts.pending_writes.push_back(f);
  if (ts.pending_writes.empty()) {
    finish_task(ts);
    return;
  }
  issue_writes(ts);
}

bool Simulation::bb_has_room(double bytes) {
  const storage::StorageService* bb_svc = storage_.burst_buffer();
  if (bb_svc == nullptr) return false;
  const double cap = bb_svc->total_capacity();
  return cap == platform::kUnlimited || bb_svc->used_bytes() + bytes <= cap;
}

Tier Simulation::output_tier(const TaskState& ts, const std::string& file_name) const {
  Tier tier = config_.placement->place_output(workflow_, ts.task->name, file_name);
  if (tier != Tier::BurstBuffer) return tier;
  const storage::StorageService* bb_svc = storage_.burst_buffer();
  if (bb_svc == nullptr) return Tier::PFS;
  // Demotion 1: a consumer pinned to another node could never read the
  // replica on a node-restricted BB.
  const bool restricted =
      bb_svc->kind() == StorageKind::NodeLocalBB ||
      (bb_svc->kind() == StorageKind::SharedBB &&
       bb_svc->spec().mode == platform::BBMode::Private);
  if (restricted) {
    for (const std::string& consumer : workflow_.consumers(file_name)) {
      const TaskState& cs = states_.at(consumer);
      const std::size_t consumer_host = cs.pinned ? cs.home_host : ts.host;
      if (consumer_host != ts.host) return Tier::PFS;
    }
  }
  return Tier::BurstBuffer;
}

void Simulation::issue_writes(TaskState& ts) {
  const std::size_t window = static_cast<std::size_t>(ts.cores);
  while (!ts.pending_writes.empty() && ts.inflight_io < window) {
    const std::string fname = ts.pending_writes.front();
    ts.pending_writes.pop_front();
    Tier requested = Tier::PFS;
    Tier tier = Tier::PFS;
    {
      // The placement decision (policy + demotion rules) is what the
      // profiler attributes to "exec.placement"; issuing the write is not.
      const trace::ScopedTimer placement_timer(placement_profile_);
      requested = config_.placement->place_output(workflow_, ts.task->name, fname);
      tier = output_tier(ts, fname);
      if (tier == Tier::BurstBuffer) {
        // Demotion 2: the BB is full (optionally evict staged inputs first).
        const double size = workflow_.file(fname).size;
        if (!bb_has_room(size) && !(config_.bb_eviction && try_evict(size))) {
          tier = Tier::PFS;
        }
      }
    }
    if (requested == Tier::BurstBuffer && tier == Tier::PFS) {
      ++demoted_writes_;
      bump("exec.demoted_writes");
    }
    storage::StorageService& dst =
        tier == Tier::BurstBuffer ? *storage_.burst_buffer() : storage_.pfs();
    const storage::FileRef file{fname, workflow_.file(fname).size};
    ts.record.bytes_written += file.size;
    BBSIM_CRITPATH_HOOK(if (critpath_) {
      critpath_->record_write_bytes(ts.task->name, file.size,
                                    tier == Tier::BurstBuffer);
    });
    if (metrics_) {
      metrics_->histogram("flow.queue_wait_seconds")
          .record(fabric_.engine().now() - ts.record.t_compute_done);
    }
    trace(TraceEventKind::Write, ts.task->name,
          util::format("%s -> %s", fname.c_str(), dst.name().c_str()));
    ++ts.inflight_io;
    auto done = [this, &ts] {
      --ts.inflight_io;
      if (ts.pending_writes.empty() && ts.inflight_io == 0) {
        finish_task(ts);
      } else {
        issue_writes(ts);
      }
    };
    if (resil_ != nullptr) {
      ts.io_ops.push_back(dst.write_cancellable(file, ts.host, std::move(done)));
    } else {
      dst.write(file, ts.host, std::move(done));
    }
  }
}

void Simulation::finish_task(TaskState& ts) {
  ts.record.t_end = fabric_.engine().now();
  ts.running = false;
  ts.done = true;
  free_cores_[ts.host] += ts.cores;
  --tasks_remaining_;
  trace(TraceEventKind::TaskEnd, ts.task->name);
  bump("exec.tasks_completed");
  bump("exec.task_wait_time", ts.record.t_start - ts.record.t_ready);
  bump("exec.task_read_time", ts.record.read_time());
  bump("exec.task_compute_time", ts.record.compute_time());
  bump("exec.task_write_time", ts.record.write_time());
  if (resil_ != nullptr) {
    ts.io_ops.clear();  // all completed; drop the (inert) handles
    cleanup_checkpoints(ts);
    resil::TaskResil& tr = resil_->stats.tasks[ts.task->name];
    tr.attempts = ts.attempt + 1;
    if (tr.first_complete_time < 0.0) tr.first_complete_time = ts.record.t_end;
  }

  for (const std::string& child : workflow_.children(ts.task->name)) {
    TaskState& cs = states_.at(child);
    // A child that finished before this parent was rolled back keeps its
    // result; re-completing the parent must not unblock it twice.
    if (cs.done) continue;
    if (--cs.remaining_parents == 0) {
      cs.ready = true;
      cs.record.t_ready = fabric_.engine().now();
      enqueue_ready(child);
      trace(TraceEventKind::TaskReady, child);
      BBSIM_CRITPATH_HOOK(if (critpath_) {
        critpath_->record_ready(
            child, cs.record.t_ready,
            {critpath::ReadyCause::Kind::kParent, ts.task->name});
      });
    }
  }
  if (tasks_remaining_ == 0 && config_.stage_out) {
    run_stage_out();
    return;
  }
  try_schedule();
}

void Simulation::run_stage_out() {
  // Drain every final product still (only) in the burst buffer back to the
  // PFS, sequentially -- the mirror image of the stage-in task.
  storage::StorageService* bb_svc = bb();
  if (bb_svc == nullptr) return;
  auto files = std::make_shared<std::vector<std::string>>();
  for (const std::string& f : workflow_.output_files()) {
    if (bb_svc->has_file(f) && !storage_.pfs().has_file(f)) files->push_back(f);
  }
  if (files->empty()) return;
  const double start = fabric_.engine().now();
  auto drain = std::make_shared<std::function<void(std::size_t)>>();
  *drain = [this, files, start, drain, bb_svc](std::size_t index) {
    if (index >= files->size()) {
      stage_out_duration_ = fabric_.engine().now() - start;
      return;
    }
    const std::string& fname = (*files)[index];
    const storage::StorageService::Replica* rep = bb_svc->replica(fname);
    const std::size_t via_host = rep != nullptr ? rep->creator_host : 0;
    trace(TraceEventKind::StageOut, "stage_out", fname);
    storage_.transfer(storage::FileRef{fname, workflow_.file(fname).size}, *bb_svc,
                      storage_.pfs(), via_host,
                      [drain, index] { (*drain)(index + 1); });
  };
  (*drain)(0);
}

bool Simulation::try_evict(double bytes) {
  storage::StorageService* bb_svc = bb();
  if (bb_svc == nullptr) return false;
  // Eviction candidates: staged *input* files (their PFS master copy makes
  // eviction safe), least recently read first.
  struct Candidate {
    std::string file;
    double last_access;
    double size;
  };
  std::vector<Candidate> candidates;
  for (const std::string& f : staged_files_) {
    if (!bb_svc->has_file(f)) continue;
    const auto it = last_access_.find(f);
    candidates.push_back({f, it == last_access_.end() ? 0.0 : it->second,
                          workflow_.file(f).size});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.last_access < b.last_access;
                   });
  for (const Candidate& c : candidates) {
    if (bb_has_room(bytes)) return true;
    bb_svc->erase_file(c.file);
    ++evicted_files_;
    bump("storage.evictions");
    trace(TraceEventKind::Evict, "", c.file);
  }
  return bb_has_room(bytes);
}

// --------------------------------------------------------------- resilience

bool Simulation::host_available(std::size_t host) const {
  return resil_ == nullptr || resil_->host_up[host] != 0;
}

void Simulation::sample_hosts_down() {
  if (resil_ == nullptr || !resil_->has_track || timeline_rec_ == nullptr) return;
  double down = 0.0;
  for (const char up : resil_->host_up) {
    if (up == 0) down += 1.0;
  }
  timeline_rec_->counter_sample(resil_->hosts_down_track, fabric_.engine().now(),
                                down);
}

void Simulation::setup_resil() {
  if (!config_.faults.enabled() && !config_.checkpoint.enabled()) return;
  resil_ = std::make_unique<ResilState>(config_.faults, fabric_.spec().hosts.size());
  if (timeline_rec_ != nullptr) {
    resil_->hosts_down_track =
        timeline_rec_->counter_track("resil.hosts_down", "hosts");
    resil_->has_track = true;
    sample_hosts_down();
  }
  const resil::FaultSpec& spec = config_.faults;
  const double now = fabric_.engine().now();
  if (spec.node_mtbf > 0.0) {
    for (std::size_t h = 0; h < resil_->host_up.size(); ++h) {
      schedule_node_crash(h, now + resil_->model.next_node_gap(h));
    }
  }
  if (spec.bb_mtbf > 0.0 && bb() != nullptr) {
    schedule_bb_fault(now + resil_->model.next_bb_gap());
  }
  if (spec.pfs_mtbf > 0.0) schedule_pfs_fault(now + resil_->model.next_pfs_gap());
}

void Simulation::schedule_node_crash(std::size_t host, double at) {
  const double horizon = config_.faults.horizon;
  if (horizon > 0.0 && at > horizon) return;
  fabric_.engine().schedule_at(at, [this, host] { on_node_crash(host); });
}

void Simulation::on_node_crash(std::size_t host) {
  // Once the workflow is done nothing is left to disturb; stop feeding the
  // event queue so the engine can drain.
  if (tasks_remaining_ == 0) return;
  ResilState& st = *resil_;
  st.host_up[host] = 0;
  ++st.stats.node_crashes;
  bump("resil.node_crashes");
  trace(TraceEventKind::NodeCrash, "", util::format("host=%zu", host));
  sample_hosts_down();
  // Running attempts on the host die. Stage-in pseudo-tasks model the
  // platform's data-movement service, not node-bound work; they survive.
  for (auto& [name, ts] : states_) {
    if (ts.running && ts.host == host && ts.task->type != kStageInType) {
      kill_task(ts, /*requeue=*/true);
    }
  }
  // Node-local BB replicas on the host are gone. (A shared-BB appliance
  // survives node crashes.)
  storage::StorageService* bb_svc = bb();
  if (bb_svc != nullptr && bb_svc->kind() == StorageKind::NodeLocalBB) {
    for (const std::string& f : bb_svc->file_names()) {
      const storage::StorageService::Replica* rep = bb_svc->replica(f);
      if (rep == nullptr || rep->node != static_cast<int>(host)) continue;
      bb_svc->erase_file(f);
      ++st.stats.files_invalidated;
      bump("resil.files_invalidated");
      if (workflow_.has_file(f)) {
        // Staged inputs and drained outputs keep a PFS master copy; only a
        // BB-only intermediate forces lineage recovery.
        if (!storage_.pfs().has_file(f)) on_file_lost(f);
      } else if (f.size() > std::string(kCkptSuffix).size() &&
                 f.rfind(kCkptSuffix) == f.size() - std::string(kCkptSuffix).size()) {
        // A checkpoint image died with its node: a drain still reading it
        // can never complete, and its progress is no longer recoverable
        // from the BB (the PFS copy, if drained, still is).
        const std::string owner = f.substr(0, f.size() - std::string(kCkptSuffix).size());
        const auto it = states_.find(owner);
        if (it != states_.end() && it->second.drain_op != nullptr) {
          it->second.drain_op->cancel();
          it->second.drain_op.reset();
          st.stats.checkpoint_bytes_discarded += it->second.ckpt_size;
        }
      }
    }
  }
  const double now = fabric_.engine().now();
  fabric_.engine().schedule_at(now + config_.faults.node_repair,
                               [this, host] { on_node_repair(host); });
  try_schedule();
}

void Simulation::on_node_repair(std::size_t host) {
  ResilState& st = *resil_;
  if (st.host_up[host] != 0) return;
  st.host_up[host] = 1;
  ++st.stats.node_repairs;
  trace(TraceEventKind::NodeRepair, "", util::format("host=%zu", host));
  sample_hosts_down();
  // The next crash gap is measured from the end of the repair window, so
  // down-windows of one host never overlap.
  if (tasks_remaining_ > 0 && config_.faults.node_mtbf > 0.0) {
    schedule_node_crash(host,
                        fabric_.engine().now() + st.model.next_node_gap(host));
  }
  try_schedule();
}

void Simulation::schedule_bb_fault(double at) {
  const double horizon = config_.faults.horizon;
  if (horizon > 0.0 && at > horizon) return;
  fabric_.engine().schedule_at(at, [this] { on_bb_degrade(); });
}

void Simulation::on_bb_degrade() {
  if (tasks_remaining_ == 0) return;
  const resil::FaultSpec& spec = config_.faults;
  ++resil_->stats.bb_degradations;
  bump("resil.bb_degradations");
  const std::size_t idx = bb()->storage_index();
  fabric_.scale_storage_capacity(idx, spec.bb_degrade);
  trace(TraceEventKind::BbDegraded, "",
        util::format("scale=%.3f duration=%.1f", spec.bb_degrade, spec.bb_duration));
  const double end = fabric_.engine().now() + spec.bb_duration;
  fabric_.engine().schedule_at(end, [this, idx] {
    // Restoring with factor 1.0 rescales from the spec nominal, so the
    // capacities come back exactly (no compounding of float error).
    fabric_.scale_storage_capacity(idx, 1.0);
    trace(TraceEventKind::FaultCleared, "", "bb");
    if (tasks_remaining_ > 0) {
      schedule_bb_fault(fabric_.engine().now() + resil_->model.next_bb_gap());
    }
  });
}

void Simulation::schedule_pfs_fault(double at) {
  const double horizon = config_.faults.horizon;
  if (horizon > 0.0 && at > horizon) return;
  fabric_.engine().schedule_at(at, [this] { on_pfs_brownout(); });
}

void Simulation::on_pfs_brownout() {
  if (tasks_remaining_ == 0) return;
  const resil::FaultSpec& spec = config_.faults;
  ++resil_->stats.pfs_brownouts;
  bump("resil.pfs_brownouts");
  const std::size_t idx = storage_.pfs().storage_index();
  fabric_.scale_storage_capacity(idx, spec.pfs_brownout);
  trace(TraceEventKind::PfsBrownout, "",
        util::format("scale=%.3f duration=%.1f", spec.pfs_brownout,
                     spec.pfs_duration));
  const double end = fabric_.engine().now() + spec.pfs_duration;
  fabric_.engine().schedule_at(end, [this, idx] {
    fabric_.scale_storage_capacity(idx, 1.0);
    trace(TraceEventKind::FaultCleared, "", "pfs");
    if (tasks_remaining_ > 0) {
      schedule_pfs_fault(fabric_.engine().now() + resil_->model.next_pfs_gap());
    }
  });
}

void Simulation::kill_task(TaskState& ts, bool requeue) {
  resil::RunStats& stats = resil_->stats;
  const double now = fabric_.engine().now();
  // Compute progress of this attempt at the moment of death; everything
  // past the last durable checkpoint is lost work.
  double progress = ts.compute_done;
  if (ts.in_segment) progress += now - ts.segment_start;
  const double lost =
      ts.cores * std::max(0.0, progress - std::min(ts.ckpt_durable, progress));
  stats.lost_core_seconds += lost;
  ++stats.tasks_killed;
  ++stats.restarts;
  bump("resil.tasks_killed");
  resil::TaskResil& tr = stats.tasks[ts.task->name];
  ++tr.kills;
  tr.lost_core_seconds += lost;
  BBSIM_CRITPATH_HOOK(if (critpath_) {
    critpath_->record_abort(ts.task->name, ts.record.t_ready,
                            ts.record.t_start, now);
  });
  if (ts.event_pending) {
    fabric_.engine().cancel(ts.pending_event);
    ts.event_pending = false;
  }
  ts.in_segment = false;
  for (const storage::IoHandle& op : ts.io_ops) op->cancel();
  ts.io_ops.clear();
  if (ts.ckpt_op != nullptr) {
    ts.ckpt_op->cancel();  // rolls the capacity reservation back
    ts.ckpt_op.reset();
  }
  if (ts.drain_op != nullptr) {
    ts.drain_op->cancel();
    ts.drain_op.reset();
    stats.checkpoint_bytes_discarded += ts.ckpt_size;
  }
  ts.pending_reads.clear();
  ts.pending_writes.clear();
  ts.inflight_io = 0;
  ts.reading = false;
  ts.compute_done = 0.0;
  // The record describes the final attempt only; the byte counters restart
  // with it so the post-run conservation audit still balances.
  ts.record.bytes_read = 0.0;
  ts.record.bytes_written = 0.0;
  free_cores_[ts.host] += ts.cores;
  ts.running = false;
  ++ts.attempt;
  trace(TraceEventKind::TaskKilled, ts.task->name,
        util::format("host=%zu attempt=%d", ts.host, ts.attempt));
  if (requeue) {
    ts.ready = true;
    ts.record.t_ready = now;
    enqueue_ready(ts.task->name);
    trace(TraceEventKind::TaskReady, ts.task->name);
    BBSIM_CRITPATH_HOOK(if (critpath_) {
      critpath_->record_ready(ts.task->name, now,
                              {critpath::ReadyCause::Kind::kRequeue, {}});
    });
  } else {
    ts.ready = false;
  }
}

void Simulation::rollback_task(TaskState& ts) {
  resil::RunStats& stats = resil_->stats;
  const double now = fabric_.engine().now();
  ts.done = false;
  ++tasks_remaining_;
  ++stats.rollbacks;
  ++stats.restarts;
  bump("resil.rollbacks");
  // The whole measured compute phase (checkpoint stalls included) will run
  // again; its first execution becomes rework.
  const double compute =
      std::max(0.0, ts.record.t_compute_done - ts.record.t_reads_done);
  stats.rework_core_seconds += ts.cores * compute;
  resil::TaskResil& tr = stats.tasks[ts.task->name];
  tr.rework_core_seconds += ts.cores * compute;
  ++ts.attempt;
  ts.ckpt_durable = 0.0;  // its checkpoints were deleted when it finished
  ts.compute_done = 0.0;
  BBSIM_CRITPATH_HOOK(if (critpath_) {
    // The completed attempt (and the dead time until this crash) becomes
    // rework on the causal chain.
    critpath_->record_abort(ts.task->name, ts.record.t_ready,
                            ts.record.t_start, now);
  });
  ts.record.bytes_read = 0.0;
  ts.record.bytes_written = 0.0;
  trace(TraceEventKind::Rollback, ts.task->name,
        util::format("attempt=%d", ts.attempt + 1));
  // Non-done children must wait for the re-run; done children keep their
  // results (their bytes were consumed before the crash).
  for (const std::string& child : workflow_.children(ts.task->name)) {
    TaskState& cs = states_.at(child);
    if (cs.done) continue;
    ++cs.remaining_parents;
    if (cs.running) {
      kill_task(cs, /*requeue=*/false);
    } else if (cs.ready) {
      const auto pos = std::find(ready_queue_.begin(), ready_queue_.end(), child);
      if (pos != ready_queue_.end()) ready_queue_.erase(pos);
    }
    cs.ready = false;
  }
  // Ready again once every parent is done (a parent rolled back later will
  // re-claim this task through its own children sweep above).
  ts.remaining_parents = 0;
  for (const std::string& parent : workflow_.parents(ts.task->name)) {
    if (!states_.at(parent).done) ++ts.remaining_parents;
  }
  if (ts.remaining_parents == 0) {
    ts.ready = true;
    ts.record.t_ready = now;
    enqueue_ready(ts.task->name);
    trace(TraceEventKind::TaskReady, ts.task->name);
    BBSIM_CRITPATH_HOOK(if (critpath_) {
      critpath_->record_ready(ts.task->name, now,
                              {critpath::ReadyCause::Kind::kRollback, {}});
    });
  } else {
    ts.ready = false;
  }
  // Inputs lost with the same crash must be re-produced too.
  for (const std::string& f : ts.task->inputs) ensure_file_available(f);
}

void Simulation::ensure_file_available(const std::string& fname) {
  if (!storage_.replicas_of(fname).empty()) return;
  const auto producer = workflow_.producer(fname);
  if (!producer) return;  // workflow inputs keep their PFS master copy
  TaskState& ps = states_.at(*producer);
  // Running or queued producers will (re)write the file when they execute.
  if (ps.done) rollback_task(ps);
}

void Simulation::on_file_lost(const std::string& fname) {
  // Consumers mid-read of the dead replica must retry against a re-produced
  // copy; consumers past their read phase already hold the bytes in memory.
  for (const std::string& consumer : workflow_.consumers(fname)) {
    TaskState& cs = states_.at(consumer);
    if (cs.running && cs.reading) kill_task(cs, /*requeue=*/true);
  }
  bool needed = false;
  for (const std::string& consumer : workflow_.consumers(fname)) {
    if (!states_.at(consumer).done) {
      needed = true;
      break;
    }
  }
  if (!needed) return;  // every consumer already has its result
  const auto producer = workflow_.producer(fname);
  if (!producer) return;
  TaskState& ps = states_.at(*producer);
  if (ps.done) rollback_task(ps);
}

void Simulation::cleanup_checkpoints(TaskState& ts) {
  resil::RunStats& stats = resil_->stats;
  if (ts.drain_op != nullptr) {
    ts.drain_op->cancel();
    ts.drain_op.reset();
    stats.checkpoint_bytes_discarded += ts.ckpt_size;
  }
  const std::string fname = ts.task->name + kCkptSuffix;
  storage::StorageService* bb_svc = bb();
  if (bb_svc != nullptr && bb_svc->has_file(fname)) {
    stats.checkpoint_bytes_discarded += bb_svc->replica(fname)->size;
    bb_svc->erase_file(fname);
  }
  storage::StorageService& pfs = storage_.pfs();
  if (pfs.has_file(fname)) {
    stats.checkpoint_bytes_discarded += pfs.replica(fname)->size;
    pfs.erase_file(fname);
  }
  ts.ckpt_durable = 0.0;
  ts.ckpt_size = 0.0;
}

Result Simulation::collect_result() {
  Result r;
  for (const auto& [name, st] : states_) {
    r.tasks.emplace(name, st.record);
    r.makespan = std::max(r.makespan, st.record.t_end);
  }
  r.stage_out_duration = stage_out_duration_;
  r.makespan += stage_out_duration_;  // the drain runs after the last task
  r.stage_in_duration = std::max(0.0, stage_in_end_ - stage_in_start_);
  r.workflow_span = r.makespan - r.stage_in_duration - r.stage_out_duration;
  r.trace = std::move(trace_);
  r.demoted_writes = demoted_writes_;
  r.skipped_stage_files = skipped_stage_files_;
  r.evicted_files = evicted_files_;
  if (const storage::StorageService* bb_svc = storage_.burst_buffer()) {
    r.bb_peak_bytes = bb_svc->peak_used_bytes();
  }

  const flow::Network& net = fabric_.flows().network();
  for (std::size_t s = 0; s < fabric_.spec().storage.size(); ++s) {
    const auto& res = fabric_.storage_resources(s);
    StorageCounters c;
    c.service = fabric_.spec().storage[s].name;
    for (const flow::ResourceId id : res.disk_read) {
      c.bytes_served += net.resource(id).bytes_served;
      c.busy_time = std::max(c.busy_time, net.resource(id).busy_time);
    }
    for (const flow::ResourceId id : res.disk_write) {
      c.bytes_served += net.resource(id).bytes_served;
      c.busy_time = std::max(c.busy_time, net.resource(id).busy_time);
    }
    r.storage.push_back(std::move(c));
  }
  if (metrics_) {
    // Mirror each storage service's achieved-bandwidth time series (sampled
    // by the flow manager's bandwidth groups) into its counters entry.
    for (StorageCounters& c : r.storage) {
      const stats::TimeSeries* series =
          metrics_->find_series("storage." + c.service + ".achieved_bandwidth");
      if (series == nullptr) continue;
      c.bandwidth_series.reserve(series->samples().size());
      for (const stats::Sample& smp : series->samples()) {
        c.bandwidth_series.emplace_back(smp.time, smp.value);
      }
    }
  }
  if (critpath_) {
    // Before the profiler publishes (so profile.critpath.* lands in the
    // registry) and before the timeline finishes (so the critical-path
    // links make it into the Perfetto export).
    const trace::ScopedTimer critpath_timer(
        profiler_ ? profiler_->section("critpath") : nullptr);
    critpath::AnalyzeInput input;
    input.makespan = r.makespan;
    input.stage_out_duration = stage_out_duration_;
    input.tasks.reserve(states_.size());
    for (const auto& [name, st] : states_) {
      critpath::TaskTimes t;
      t.name = name;
      t.stage_in = st.task->type == kStageInType;
      t.t_ready = st.record.t_ready;
      t.t_start = st.record.t_start;
      t.t_reads_done = st.record.t_reads_done;
      t.t_compute_done = st.record.t_compute_done;
      t.t_end = st.record.t_end;
      t.parents = workflow_.parents(name);
      input.tasks.push_back(std::move(t));
    }
    const critpath::Report report = critpath::analyze(*critpath_, input);
    r.critpath = report.to_json();
    if (auditor_) {
      const double tol = 1e-9 * std::max(1.0, r.makespan);
      BBSIM_AUDIT_CHECK(*auditor_,
                        std::abs(report.path_length() - r.makespan) <= tol,
                        audit::Code::kAttributionMismatch, audit::kPostRun,
                        "critpath",
                        util::format("critical-path length %.12g != makespan %.12g",
                                     report.path_length(), r.makespan));
      BBSIM_AUDIT_CHECK(*auditor_,
                        std::abs(report.blame_total() - r.makespan) <= tol,
                        audit::Code::kAttributionMismatch, audit::kPostRun,
                        "critpath",
                        util::format("blame classes sum %.12g != makespan %.12g",
                                     report.blame_total(), r.makespan));
    }
    if (timeline_rec_) {
      // Flow-event links between consecutive on-path tasks (synthetic
      // stage nodes have no timeline span to anchor to).
      std::string last_task;
      for (const critpath::Segment& seg : report.path) {
        if (seg.task == "implicit_stage_in" || seg.task == "stage_out") {
          continue;
        }
        if (!last_task.empty() && seg.task != last_task) {
          timeline_rec_->add_critpath_link(last_task, seg.task, seg.start);
        }
        last_task = seg.task;
      }
    }
  }
  if (profiler_) {
    if (metrics_) profiler_->publish(*metrics_);
    r.profile = profiler_->to_json();
  }
  if (timeline_rec_) {
    // states_ is a name-sorted map, so task spans enter in a deterministic
    // order; finish() re-sorts by (host, start) for lane assignment.
    for (const auto& [name, st] : states_) {
      trace::TaskSpan span;
      span.name = name;
      span.type = st.record.type;
      span.host = st.record.host;
      span.cores = st.record.cores;
      span.t_ready = st.record.t_ready;
      span.t_start = st.record.t_start;
      span.t_reads_done = st.record.t_reads_done;
      span.t_compute_done = st.record.t_compute_done;
      span.t_end = st.record.t_end;
      span.bytes_read = st.record.bytes_read;
      span.bytes_written = st.record.bytes_written;
      timeline_rec_->add_task(std::move(span));
    }
    r.timeline = std::make_shared<const trace::Timeline>(timeline_rec_->finish());
  }
  if (metrics_) r.metrics = metrics_->to_json();
  if (resil_) r.resil_stats = std::make_shared<resil::RunStats>(resil_->stats);
  if (auditor_) {
    storage_probe_->finalize();
    audit_result(r, workflow_, fabric_.spec(), *auditor_);
    r.audit = auditor_->to_json();
    r.audit_violations = auditor_->total();
  }
  return r;
}

Result Simulation::run() {
  if (ran_) throw InvariantError("Simulation::run() called twice");
  ran_ = true;

  // Implicit stage-in: a Task-mode plan on a workflow without a stage-in
  // task stages everything up-front, before entry tasks become ready.
  const bool has_stage_task = [this] {
    for (const std::string& name : workflow_.task_names()) {
      if (workflow_.task(name).type == kStageInType) return true;
    }
    return false;
  }();

  if (config_.stage_in_mode == StageInMode::Task && !has_stage_task &&
      bb() != nullptr && !config_.placement->files_to_stage(workflow_).empty()) {
    // Run the implicit staging first, then release the workflow.
    staged_files_ = config_.placement->files_to_stage(workflow_);
    // prepare() would re-derive the same list; set a flag via a small dance:
    // stage files sequentially, then prepare the rest of the run.
    storage::StorageService& pfs_svc = storage_.pfs();
    for (const std::string& f : workflow_.input_files()) {
      pfs_svc.register_file(storage::FileRef{f, workflow_.file(f).size}, 0);
    }
    // Home hosts are needed for placement of staged files; compute a
    // lightweight pinning (same as prepare() will).
    std::map<std::string, std::size_t> home_by_task;
    {
      const auto homes = compute_home_hosts(workflow_, fabric_.spec(), config_.pinning);
      const auto& names = workflow_.task_names();
      for (std::size_t i = 0; i < names.size(); ++i) home_by_task[names[i]] = homes[i];
    }
    for (const std::string& f : staged_files_) {
      std::size_t host = 0;
      const auto consumers = workflow_.consumers(f);
      if (!consumers.empty()) host = home_by_task.at(consumers.front());
      staged_file_host_[f] = host;
    }
    stage_in_start_ = 0.0;
    stage_in_seen_ = true;
    auto chain = std::make_shared<StageChain>();
    chain->files = &staged_files_;
    pump_stage_chain(chain);
    fabric_.engine().run();
    BBSIM_CRITPATH_HOOK(if (critpath_) {
      critpath_->record_implicit_stage(0.0, fabric_.engine().now());
    });
    // Inputs are now placed; continue with the normal preparation, but make
    // sure prepare() does not re-register/re-stage.
    auto placement_backup = config_.placement;
    config_.placement = std::make_shared<FractionPolicy>(0.0, Tier::BurstBuffer);
    // Note: intermediates should still follow the original policy.
    prepare();
    config_.placement = placement_backup;
  } else {
    prepare();
  }

  fabric_.engine().run();

  if (tasks_remaining_ > 0) {
    for (const auto& [name, st] : states_) {
      if (!st.done) {
        throw InvariantError("execution stalled: task '" + name + "' never completed (" +
                             std::to_string(tasks_remaining_) + " remaining)");
      }
    }
  }
  return collect_result();
}

}  // namespace bbsim::exec
