#include "exec/trace.hpp"

#include "resil/fault.hpp"

namespace bbsim::exec {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskReady: return "task_ready";
    case TraceEventKind::TaskStart: return "task_start";
    case TraceEventKind::ReadsDone: return "reads_done";
    case TraceEventKind::ComputeDone: return "compute_done";
    case TraceEventKind::Write: return "write";
    case TraceEventKind::TaskEnd: return "task_end";
    case TraceEventKind::StageFile: return "stage_file";
    case TraceEventKind::StageSkipped: return "stage_skipped";
    case TraceEventKind::StageOut: return "stage_out";
    case TraceEventKind::Evict: return "evict";
    case TraceEventKind::NodeCrash: return "node_crash";
    case TraceEventKind::NodeRepair: return "node_repair";
    case TraceEventKind::BbDegraded: return "bb_degraded";
    case TraceEventKind::PfsBrownout: return "pfs_brownout";
    case TraceEventKind::FaultCleared: return "fault_cleared";
    case TraceEventKind::TaskKilled: return "task_killed";
    case TraceEventKind::TaskRestart: return "task_restart";
    case TraceEventKind::Rollback: return "rollback";
    case TraceEventKind::Checkpoint: return "checkpoint";
    case TraceEventKind::CheckpointDrained: return "checkpoint_drained";
  }
  return "?";
}

std::vector<const TaskRecord*> Result::records_of(const std::string& type) const {
  std::vector<const TaskRecord*> out;
  for (const auto& [_, rec] : tasks) {
    if (rec.type == type) out.push_back(&rec);
  }
  return out;
}

double Result::mean_duration(const std::string& type) const {
  const auto recs = records_of(type);
  if (recs.empty()) return 0.0;
  double sum = 0.0;
  for (const TaskRecord* r : recs) sum += r->duration();
  return sum / static_cast<double>(recs.size());
}

double Result::mean_lambda(const std::string& type) const {
  const auto recs = records_of(type);
  if (recs.empty()) return 0.0;
  double sum = 0.0;
  for (const TaskRecord* r : recs) sum += r->lambda_io();
  return sum / static_cast<double>(recs.size());
}

json::Value Result::to_json() const {
  json::Object root;
  root.set("schema", "bbsim.run.v1");
  root.set("makespan", makespan);
  root.set("stage_in_duration", stage_in_duration);
  root.set("stage_out_duration", stage_out_duration);
  root.set("workflow_span", workflow_span);
  root.set("demoted_writes", demoted_writes);
  root.set("skipped_stage_files", skipped_stage_files);
  root.set("evicted_files", evicted_files);

  json::Array task_arr;
  for (const auto& [_, rec] : tasks) {
    json::Object t;
    t.set("name", rec.name);
    t.set("type", rec.type);
    t.set("host", rec.host);
    t.set("cores", rec.cores);
    t.set("t_ready", rec.t_ready);
    t.set("t_start", rec.t_start);
    t.set("t_reads_done", rec.t_reads_done);
    t.set("t_compute_done", rec.t_compute_done);
    t.set("t_end", rec.t_end);
    t.set("bytes_read", rec.bytes_read);
    t.set("bytes_written", rec.bytes_written);
    t.set("lambda_io", rec.lambda_io());
    task_arr.push_back(json::Value(std::move(t)));
  }
  root.set("tasks", json::Value(std::move(task_arr)));

  json::Array storage_arr;
  for (const StorageCounters& s : storage) {
    json::Object o;
    o.set("service", s.service);
    o.set("bytes_served", s.bytes_served);
    o.set("busy_time", s.busy_time);
    o.set("achieved_bandwidth", s.achieved_bandwidth());
    if (!s.bandwidth_series.empty()) {
      json::Array series;
      for (const auto& [t, bw] : s.bandwidth_series) {
        json::Array point;
        point.push_back(json::Value(t));
        point.push_back(json::Value(bw));
        series.push_back(json::Value(std::move(point)));
      }
      o.set("bandwidth_series", json::Value(std::move(series)));
    }
    storage_arr.push_back(json::Value(std::move(o)));
  }
  root.set("storage", json::Value(std::move(storage_arr)));

  json::Array trace_arr;
  for (const TraceEvent& e : trace) {
    json::Object o;
    o.set("time", e.time);
    o.set("kind", to_string(e.kind));
    o.set("task", e.task);
    o.set("detail", e.detail);
    trace_arr.push_back(json::Value(std::move(o)));
  }
  root.set("trace", json::Value(std::move(trace_arr)));
  if (!metrics.is_null()) root.set("metrics", metrics);
  if (!audit.is_null()) root.set("audit", audit);
  if (!profile.is_null()) root.set("profile", profile);
  if (resil_stats) root.set("resil", resil_stats->to_json());
  if (!critpath.is_null()) root.set("critpath", critpath);
  return json::Value(std::move(root));
}

}  // namespace bbsim::exec
