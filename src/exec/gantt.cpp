#include "exec/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace bbsim::exec {

std::string render_gantt(const Result& result, const GanttOptions& options) {
  std::vector<const TaskRecord*> tasks;
  for (const auto& [_, rec] : result.tasks) tasks.push_back(&rec);
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const TaskRecord* a, const TaskRecord* b) {
                     if (a->t_start != b->t_start) return a->t_start < b->t_start;
                     return a->name < b->name;
                   });

  const double horizon = std::max(result.makespan, 1e-9);
  const int width = std::max(10, options.width);
  const double per_col = horizon / width;

  std::size_t label_width = 4;
  for (const TaskRecord* t : tasks) label_width = std::max(label_width, t->name.size());
  label_width = std::min<std::size_t>(label_width, 24);

  std::string out;
  out += util::format("time: 0 .. %s  (one column = %s)\n",
                      util::format_time(horizon).c_str(),
                      util::format_time(per_col).c_str());
  out += util::format("legend: r=read  #=compute  w=write   makespan %s\n",
                      util::format_time(result.makespan).c_str());

  std::size_t rows = 0;
  for (const TaskRecord* t : tasks) {
    if (rows++ >= options.max_rows) {
      out += util::format("... (%zu more tasks)\n", tasks.size() - options.max_rows);
      break;
    }
    std::string name = t->name.substr(0, label_width);
    name.resize(label_width, ' ');
    std::string bar(width, ' ');
    auto col = [&](double time) {
      return std::clamp(static_cast<int>(time / per_col), 0, width - 1);
    };
    auto paint = [&](double from, double to, char c) {
      if (to < from) return;
      for (int i = col(from); i <= col(to); ++i) {
        if (bar[i] == ' ' || c == '#') bar[i] = c;
      }
    };
    paint(t->t_start, t->t_reads_done, 'r');
    paint(t->t_compute_done, t->t_end, 'w');
    paint(t->t_reads_done, t->t_compute_done, '#');
    out += name;
    out += " |";
    out += bar;
    out += "|";
    if (options.show_host) out += util::format(" h%zu x%d", t->host, t->cores);
    out += '\n';
  }
  return out;
}

}  // namespace bbsim::exec
