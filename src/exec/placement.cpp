#include "exec/placement.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::exec {

const char* to_string(Tier tier) {
  return tier == Tier::PFS ? "pfs" : "bb";
}

namespace {
/// True when `file_name` is a final product (no consumer).
bool is_final_output(const wf::Workflow& w, const std::string& file_name) {
  return w.consumers(file_name).empty();
}
}  // namespace

// ----------------------------------------------------------- FractionPolicy

FractionPolicy::FractionPolicy(double input_fraction, Tier intermediate_tier,
                               Tier output_tier)
    : fraction_(input_fraction),
      intermediate_tier_(intermediate_tier),
      output_tier_(output_tier) {
  if (fraction_ < 0.0 || fraction_ > 1.0) {
    throw util::ConfigError("FractionPolicy: fraction must be in [0, 1]");
  }
}

std::string FractionPolicy::name() const {
  return util::format("fraction(%.0f%%,int=%s,out=%s)", fraction_ * 100.0,
                      to_string(intermediate_tier_), to_string(output_tier_));
}

std::vector<std::string> FractionPolicy::files_to_stage(const wf::Workflow& w) const {
  // Spread the selection evenly over the input list (Bresenham-style) so a
  // 50% staging fraction stages every other file rather than the first
  // half -- "a fraction of the files" should not mean "one half of the
  // workflow's pipelines".
  const std::vector<std::string> inputs = w.input_files();
  std::vector<std::string> out;
  double accumulator = 0.0;
  for (const std::string& f : inputs) {
    accumulator += fraction_;
    if (accumulator >= 1.0 - 1e-12) {
      accumulator -= 1.0;
      out.push_back(f);
    }
  }
  return out;
}

Tier FractionPolicy::place_output(const wf::Workflow& w, const std::string&,
                                  const std::string& file_name) const {
  return is_final_output(w, file_name) ? output_tier_ : intermediate_tier_;
}

std::shared_ptr<PlacementPolicy> all_pfs_policy() {
  return std::make_shared<FractionPolicy>(0.0, Tier::PFS, Tier::PFS);
}

std::shared_ptr<PlacementPolicy> all_bb_policy() {
  return std::make_shared<FractionPolicy>(1.0, Tier::BurstBuffer, Tier::PFS);
}

// ------------------------------------------------------ SizeThresholdPolicy

SizeThresholdPolicy::SizeThresholdPolicy(double threshold_bytes, bool invert)
    : threshold_(threshold_bytes), invert_(invert) {
  if (threshold_ < 0) throw util::ConfigError("SizeThresholdPolicy: negative threshold");
}

bool SizeThresholdPolicy::prefers_bb(double size) const {
  return invert_ ? size > threshold_ : size <= threshold_;
}

std::string SizeThresholdPolicy::name() const {
  return util::format("size_threshold(%s%.0fMB)", invert_ ? ">" : "<=", threshold_ / 1e6);
}

std::vector<std::string> SizeThresholdPolicy::files_to_stage(const wf::Workflow& w) const {
  std::vector<std::string> out;
  for (const std::string& f : w.input_files()) {
    if (prefers_bb(w.file(f).size)) out.push_back(f);
  }
  return out;
}

Tier SizeThresholdPolicy::place_output(const wf::Workflow& w, const std::string&,
                                       const std::string& file_name) const {
  if (is_final_output(w, file_name)) return Tier::PFS;
  return prefers_bb(w.file(file_name).size) ? Tier::BurstBuffer : Tier::PFS;
}

// ------------------------------------------------------------ LocalityPolicy

LocalityPolicy::LocalityPolicy(std::size_t max_consumers_for_bb)
    : max_consumers_(max_consumers_for_bb) {}

std::string LocalityPolicy::name() const {
  return util::format("locality(max_consumers=%zu)", max_consumers_);
}

std::vector<std::string> LocalityPolicy::files_to_stage(const wf::Workflow& w) const {
  std::vector<std::string> out;
  for (const std::string& f : w.input_files()) {
    if (w.consumers(f).size() <= max_consumers_) out.push_back(f);
  }
  return out;
}

Tier LocalityPolicy::place_output(const wf::Workflow& w, const std::string&,
                                  const std::string& file_name) const {
  const std::size_t consumers = w.consumers(file_name).size();
  if (consumers == 0) return Tier::PFS;  // final output
  return consumers <= max_consumers_ ? Tier::BurstBuffer : Tier::PFS;
}

// --------------------------------------------------------- GreedyBytesPolicy

GreedyBytesPolicy::GreedyBytesPolicy(double byte_budget) : budget_(byte_budget) {
  if (budget_ < 0) throw util::ConfigError("GreedyBytesPolicy: negative budget");
}

std::string GreedyBytesPolicy::name() const {
  return util::format("greedy_bytes(%.1fGB)", budget_ / 1e9);
}

std::vector<std::string> GreedyBytesPolicy::files_to_stage(const wf::Workflow& w) const {
  struct Candidate {
    std::string file;
    double benefit;  // bytes the BB would serve: size * consumer count
    double size;
  };
  std::vector<Candidate> candidates;
  for (const std::string& f : w.input_files()) {
    const double size = w.file(f).size;
    candidates.push_back({f, size * static_cast<double>(w.consumers(f).size()), size});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.benefit > b.benefit;
                   });
  std::vector<std::string> out;
  double used = 0;
  for (const Candidate& c : candidates) {
    if (used + c.size > budget_) continue;
    used += c.size;
    out.push_back(c.file);
  }
  return out;
}

Tier GreedyBytesPolicy::place_output(const wf::Workflow& w, const std::string&,
                                     const std::string& file_name) const {
  if (is_final_output(w, file_name)) return Tier::PFS;
  // Intermediates ride the BB when small relative to the budget; the
  // engine's capacity accounting is the hard backstop.
  return w.file(file_name).size <= budget_ * 0.05 ? Tier::BurstBuffer : Tier::PFS;
}

}  // namespace bbsim::exec
