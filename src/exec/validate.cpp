#include "exec/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "resil/fault.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::exec {

std::vector<ValidationIssue> validate_result(const Result& result,
                                             const wf::Workflow& workflow,
                                             const platform::PlatformSpec& platform) {
  std::vector<ValidationIssue> issues;
  auto complain = [&issues](std::string what, IssueCode code) {
    issues.push_back(ValidationIssue{std::move(what), code});
  };

  // --- every task ran exactly once, with ordered phases -------------------
  for (const std::string& name : workflow.task_names()) {
    const auto it = result.tasks.find(name);
    if (it == result.tasks.end()) {
      complain("task '" + name + "' has no record", IssueCode::kMissingRecord);
      continue;
    }
    const TaskRecord& r = it->second;
    if (!(r.t_ready <= r.t_start + 1e-9)) {
      complain(util::format("task '%s': started (%.6f) before ready (%.6f)",
                            name.c_str(), r.t_start, r.t_ready),
               IssueCode::kPhaseOrder);
    }
    if (!(r.t_start <= r.t_reads_done + 1e-9) ||
        !(r.t_reads_done <= r.t_compute_done + 1e-9) ||
        !(r.t_compute_done <= r.t_end + 1e-9)) {
      complain("task '" + name + "': phase timestamps out of order",
               IssueCode::kPhaseOrder);
    }
    if (r.host >= platform.hosts.size()) {
      complain("task '" + name + "': host index out of range", IssueCode::kHostRange);
      continue;
    }
    if (r.cores < 1 || r.cores > platform.hosts[r.host].cores) {
      complain(util::format("task '%s': %d cores exceed host capacity %d",
                            name.c_str(), r.cores, platform.hosts[r.host].cores),
               IssueCode::kCoreBudget);
    }
  }
  for (const auto& [name, _] : result.tasks) {
    if (!workflow.has_task(name)) {
      complain("record for unknown task '" + name + "'", IssueCode::kUnknownTask);
    }
  }
  if (!issues.empty()) return issues;  // later checks assume complete records

  // --- precedence ---------------------------------------------------------
  // Attempt-aware under the resil layer: when a crash rolled a parent back
  // and re-ran it *after* a child had already consumed its output, the
  // record's t_end describes the re-run. The child only had to start after
  // the parent's FIRST completion, which the resil stats carry.
  const auto parent_done_by = [&result](const std::string& name,
                                        const TaskRecord& rec) {
    if (result.resil_stats) {
      const auto it = result.resil_stats->tasks.find(name);
      if (it != result.resil_stats->tasks.end() &&
          it->second.first_complete_time >= 0.0) {
        return std::min(rec.t_end, it->second.first_complete_time);
      }
    }
    return rec.t_end;
  };
  for (const std::string& name : workflow.task_names()) {
    const TaskRecord& child = result.tasks.at(name);
    for (const std::string& p : workflow.parents(name)) {
      const TaskRecord& parent = result.tasks.at(p);
      const double done = parent_done_by(p, parent);
      if (done > child.t_start + 1e-9) {
        complain(util::format("precedence violated: '%s' ended %.6f after "
                              "child '%s' started %.6f",
                              p.c_str(), done, name.c_str(), child.t_start),
                 IssueCode::kPrecedence);
      }
    }
  }

  // --- host core budget (sweep-line over start/end events) ----------------
  struct Event {
    double time;
    int delta;  // +cores at start, -cores at end
  };
  std::map<std::size_t, std::vector<Event>> per_host;
  for (const auto& [_, r] : result.tasks) {
    per_host[r.host].push_back({r.t_start, r.cores});
    per_host[r.host].push_back({r.t_end, -r.cores});
  }
  for (auto& [host, events] : per_host) {
    std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // process releases before acquisitions on ties
    });
    int in_use = 0;
    const int capacity = platform.hosts[host].cores;
    for (const Event& e : events) {
      in_use += e.delta;
      if (in_use > capacity) {
        complain(util::format("host %zu oversubscribed: %d cores in use at t=%.6f "
                              "(capacity %d)",
                              host, in_use, e.time, capacity),
                 IssueCode::kOversubscribed);
        break;  // one report per host suffices
      }
    }
  }

  // --- makespan covers everything -----------------------------------------
  double last_end = 0.0;
  for (const auto& [_, r] : result.tasks) last_end = std::max(last_end, r.t_end);
  if (result.makespan + 1e-9 < last_end) {
    complain(util::format("makespan %.6f < last task end %.6f", result.makespan,
                          last_end),
             IssueCode::kMakespan);
  }
  return issues;
}

namespace {

constexpr const char* kStageInType = "stage_in";
constexpr double kBytesTolerance = 1e-6;

audit::Code audit_code_of(IssueCode code) {
  switch (code) {
    case IssueCode::kMissingRecord:
    case IssueCode::kUnknownTask:
    case IssueCode::kPhaseOrder:
    case IssueCode::kHostRange:
      return audit::Code::kTaskLifecycle;
    case IssueCode::kCoreBudget:
    case IssueCode::kOversubscribed:
      return audit::Code::kCoreOversubscription;
    case IssueCode::kPrecedence:
      return audit::Code::kPrecedence;
    case IssueCode::kMakespan:
      return audit::Code::kResultInconsistent;
  }
  return audit::Code::kResultInconsistent;  // unreachable
}

bool bytes_close(double a, double b) {
  return std::abs(a - b) <= kBytesTolerance * std::max(1.0, std::max(a, b));
}

}  // namespace

void audit_result(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform, audit::Auditor& auditor) {
  // Schedule legality: reuse the validator and translate each issue.
  for (const ValidationIssue& issue : validate_result(result, workflow, platform)) {
    auditor.report(audit_code_of(issue.code), audit::kPostRun, "result", issue.what);
  }

  // Byte conservation between the records and the workflow declaration:
  // a stage-in task moves data (reads what it writes); every other task
  // reads exactly its declared inputs and writes exactly its declared
  // outputs (paper Section IV-A's file-induced dependencies).
  for (const auto& [name, rec] : result.tasks) {
    if (!workflow.has_task(name)) continue;  // already reported above
    const wf::Task& task = workflow.task(name);
    if (task.type == kStageInType) {
      if (!bytes_close(rec.bytes_read, rec.bytes_written)) {
        auditor.report(audit::Code::kByteConservation, audit::kPostRun, name,
                       util::format("stage-in read %.0f bytes but wrote %.0f",
                                    rec.bytes_read, rec.bytes_written));
      }
      continue;
    }
    double expect_read = 0.0;
    double expect_written = 0.0;
    for (const std::string& f : task.inputs) expect_read += workflow.file(f).size;
    for (const std::string& f : task.outputs) expect_written += workflow.file(f).size;
    if (!bytes_close(rec.bytes_read, expect_read)) {
      auditor.report(audit::Code::kByteConservation, audit::kPostRun, name,
                     util::format("read %.0f bytes, inputs declare %.0f",
                                  rec.bytes_read, expect_read));
    }
    if (!bytes_close(rec.bytes_written, expect_written)) {
      auditor.report(audit::Code::kByteConservation, audit::kPostRun, name,
                     util::format("wrote %.0f bytes, outputs declare %.0f",
                                  rec.bytes_written, expect_written));
    }
  }
}

void expect_valid(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform) {
  const auto issues = validate_result(result, workflow, platform);
  if (issues.empty()) return;
  std::string msg = "execution result failed validation:";
  for (std::size_t i = 0; i < issues.size() && i < 5; ++i) {
    msg += "\n  - " + issues[i].what;
  }
  if (issues.size() > 5) {
    msg += util::format("\n  (and %zu more)", issues.size() - 5);
  }
  BBSIM_ASSERT(false, msg);
}

}  // namespace bbsim::exec
