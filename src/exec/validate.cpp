#include "exec/validate.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace bbsim::exec {

std::vector<ValidationIssue> validate_result(const Result& result,
                                             const wf::Workflow& workflow,
                                             const platform::PlatformSpec& platform) {
  std::vector<ValidationIssue> issues;
  auto complain = [&issues](std::string what) {
    issues.push_back(ValidationIssue{std::move(what)});
  };

  // --- every task ran exactly once, with ordered phases -------------------
  for (const std::string& name : workflow.task_names()) {
    const auto it = result.tasks.find(name);
    if (it == result.tasks.end()) {
      complain("task '" + name + "' has no record");
      continue;
    }
    const TaskRecord& r = it->second;
    if (!(r.t_ready <= r.t_start + 1e-9)) {
      complain(util::format("task '%s': started (%.6f) before ready (%.6f)",
                            name.c_str(), r.t_start, r.t_ready));
    }
    if (!(r.t_start <= r.t_reads_done + 1e-9) ||
        !(r.t_reads_done <= r.t_compute_done + 1e-9) ||
        !(r.t_compute_done <= r.t_end + 1e-9)) {
      complain("task '" + name + "': phase timestamps out of order");
    }
    if (r.host >= platform.hosts.size()) {
      complain("task '" + name + "': host index out of range");
      continue;
    }
    if (r.cores < 1 || r.cores > platform.hosts[r.host].cores) {
      complain(util::format("task '%s': %d cores exceed host capacity %d",
                            name.c_str(), r.cores, platform.hosts[r.host].cores));
    }
  }
  for (const auto& [name, _] : result.tasks) {
    if (!workflow.has_task(name)) {
      complain("record for unknown task '" + name + "'");
    }
  }
  if (!issues.empty()) return issues;  // later checks assume complete records

  // --- precedence ---------------------------------------------------------
  for (const std::string& name : workflow.task_names()) {
    const TaskRecord& child = result.tasks.at(name);
    for (const std::string& p : workflow.parents(name)) {
      const TaskRecord& parent = result.tasks.at(p);
      if (parent.t_end > child.t_start + 1e-9) {
        complain(util::format("precedence violated: '%s' ended %.6f after "
                              "child '%s' started %.6f",
                              p.c_str(), parent.t_end, name.c_str(), child.t_start));
      }
    }
  }

  // --- host core budget (sweep-line over start/end events) ----------------
  struct Event {
    double time;
    int delta;  // +cores at start, -cores at end
  };
  std::map<std::size_t, std::vector<Event>> per_host;
  for (const auto& [_, r] : result.tasks) {
    per_host[r.host].push_back({r.t_start, r.cores});
    per_host[r.host].push_back({r.t_end, -r.cores});
  }
  for (auto& [host, events] : per_host) {
    std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // process releases before acquisitions on ties
    });
    int in_use = 0;
    const int capacity = platform.hosts[host].cores;
    for (const Event& e : events) {
      in_use += e.delta;
      if (in_use > capacity) {
        complain(util::format("host %zu oversubscribed: %d cores in use at t=%.6f "
                              "(capacity %d)",
                              host, in_use, e.time, capacity));
        break;  // one report per host suffices
      }
    }
  }

  // --- makespan covers everything -----------------------------------------
  double last_end = 0.0;
  for (const auto& [_, r] : result.tasks) last_end = std::max(last_end, r.t_end);
  if (result.makespan + 1e-9 < last_end) {
    complain(util::format("makespan %.6f < last task end %.6f", result.makespan,
                          last_end));
  }
  return issues;
}

void expect_valid(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform) {
  const auto issues = validate_result(result, workflow, platform);
  if (issues.empty()) return;
  std::string msg = "execution result failed validation:";
  for (std::size_t i = 0; i < issues.size() && i < 5; ++i) {
    msg += "\n  - " + issues[i].what;
  }
  if (issues.size() > 5) {
    msg += util::format("\n  (and %zu more)", issues.size() - 5);
  }
  throw util::InvariantError(msg);
}

}  // namespace bbsim::exec
