// bbsim -- execution records: the time-stamped event trace and per-task
// timings a simulation run produces (paper Section IV-A: "the simulator ...
// outputs a time-stamped event trace").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "json/json.hpp"

namespace bbsim::trace {
struct Timeline;
}  // namespace bbsim::trace

namespace bbsim::resil {
struct RunStats;
}  // namespace bbsim::resil

namespace bbsim::exec {

/// The closed set of event kinds the execution engine records. Serialised
/// by to_string() -- the JSON wire format is the same snake_case string the
/// trace always carried; the enum just makes producers typo-proof.
enum class TraceEventKind {
  TaskReady,     ///< all parents finished; the task entered the ready queue
  TaskStart,     ///< dispatched onto a host (detail: host, cores)
  ReadsDone,     ///< last input byte arrived; compute begins
  ComputeDone,   ///< compute finished; writes begin
  Write,         ///< one output write issued (detail: file -> service)
  TaskEnd,       ///< last output byte landed; cores released
  StageFile,     ///< one file staged PFS -> BB (detail: file, via host)
  StageSkipped,  ///< staging skipped: BB full (detail: file)
  StageOut,      ///< one file drained BB -> PFS (detail: file)
  Evict,         ///< one staged input evicted from the BB (detail: file)
  // Resilience events (src/resil; only emitted when faults/checkpointing
  // are configured, so fault-free traces are unchanged).
  NodeCrash,          ///< a host went down (detail: host)
  NodeRepair,         ///< a host rejoined after repair (detail: host)
  BbDegraded,         ///< BB bandwidth degradation window opened
  PfsBrownout,        ///< PFS brownout window opened
  FaultCleared,       ///< a BB/PFS window closed (detail: which)
  TaskKilled,         ///< a running attempt was killed (detail: host, attempt)
  TaskRestart,        ///< a restarted attempt was dispatched (detail: attempt)
  Rollback,           ///< a completed task was un-done by lineage loss
  Checkpoint,         ///< one checkpoint write issued (detail: file -> tier)
  CheckpointDrained,  ///< an async checkpoint drain reached the PFS
};

/// Wire name of a kind ("task_ready", "task_start", ...).
const char* to_string(TraceEventKind kind);

/// Every kind, in declaration order (tests assert the set is exhaustive).
inline constexpr TraceEventKind kAllTraceEventKinds[] = {
    TraceEventKind::TaskReady,    TraceEventKind::TaskStart,
    TraceEventKind::ReadsDone,    TraceEventKind::ComputeDone,
    TraceEventKind::Write,        TraceEventKind::TaskEnd,
    TraceEventKind::StageFile,    TraceEventKind::StageSkipped,
    TraceEventKind::StageOut,     TraceEventKind::Evict,
    TraceEventKind::NodeCrash,    TraceEventKind::NodeRepair,
    TraceEventKind::BbDegraded,   TraceEventKind::PfsBrownout,
    TraceEventKind::FaultCleared, TraceEventKind::TaskKilled,
    TraceEventKind::TaskRestart,  TraceEventKind::Rollback,
    TraceEventKind::Checkpoint,   TraceEventKind::CheckpointDrained,
};

/// One line of the event trace.
struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::TaskReady;
  std::string task;
  std::string detail;  ///< free-form (host, file, tier...)
};

/// Timings and volumes for one executed task.
struct TaskRecord {
  std::string name;
  std::string type;
  std::size_t host = 0;
  int cores = 1;
  double t_ready = 0.0;
  double t_start = 0.0;
  double t_reads_done = 0.0;
  double t_compute_done = 0.0;
  double t_end = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  double duration() const { return t_end - t_start; }
  double read_time() const { return t_reads_done - t_start; }
  double compute_time() const { return t_compute_done - t_reads_done; }
  double write_time() const { return t_end - t_compute_done; }
  double io_time() const { return read_time() + write_time(); }
  /// Observed I/O fraction of this task (the lambda of paper Eq. (1)).
  double lambda_io() const {
    const double d = duration();
    return d > 0 ? io_time() / d : 0.0;
  }
};

/// Per-storage-service achieved throughput (paper Figure 9).
struct StorageCounters {
  std::string service;
  double bytes_served = 0.0;
  double busy_time = 0.0;
  /// (time, bytes/s) achieved-bandwidth samples over the run -- the
  /// time-resolved counterpart of achieved_bandwidth(). Filled from the
  /// metrics registry when ExecutionConfig::collect_metrics is on.
  std::vector<std::pair<double, double>> bandwidth_series;
  double achieved_bandwidth() const {
    return busy_time > 0 ? bytes_served / busy_time : 0.0;
  }
};

/// Everything a run produces.
struct Result {
  /// Date of the last event = last task completion (includes stage-in when
  /// the workflow has a stage-in task and it is counted).
  double makespan = 0.0;
  /// Duration of the stage-in phase (0 when none ran).
  double stage_in_duration = 0.0;
  /// Makespan excluding the stage-in phase.
  double workflow_span = 0.0;

  std::map<std::string, TaskRecord> tasks;
  std::vector<TraceEvent> trace;
  std::vector<StorageCounters> storage;
  /// BB writes demoted to the PFS because a consumer on another node could
  /// not have read them (node-local / private-mode restriction).
  std::size_t demoted_writes = 0;
  /// Input files that were selected for staging but did not fit in the
  /// burst buffer's remaining capacity (they are read from the PFS instead).
  std::size_t skipped_stage_files = 0;
  /// Duration of the final BB -> PFS drain (stage_out option; 0 otherwise).
  /// Included in `makespan`.
  double stage_out_duration = 0.0;
  /// Staged input files evicted from the BB to make room (bb_eviction).
  std::size_t evicted_files = 0;
  /// Peak burst-buffer occupancy over the run in bytes (0 when the platform
  /// has no BB). The batch layer audits per-job reservations against this.
  double bb_peak_bytes = 0.0;
  /// Snapshot of the metrics registry (ExecutionConfig::collect_metrics);
  /// null when metrics were not collected.
  json::Value metrics;
  /// Invariant-audit report, schema bbsim.audit.v1 (ExecutionConfig::audit);
  /// null when the run was not audited.
  json::Value audit;
  /// Violations the auditor recorded (0 when auditing was off or the run
  /// was clean -- check `audit.is_null()` to tell the two apart).
  std::size_t audit_violations = 0;
  /// The run's sealed virtual-time timeline (ExecutionConfig::
  /// collect_timeline); nullptr when not recorded. Export with
  /// Timeline::to_perfetto(). Shared so Result stays copyable.
  std::shared_ptr<const trace::Timeline> timeline;
  /// Wall-clock self-profile (ExecutionConfig::profile); null when
  /// profiling was off. NON-DETERMINISTIC: carries a "nondeterministic"
  /// marker and must be excluded from golden comparisons.
  json::Value profile;
  /// Resilience accounting, serialized into to_json() as the "resil"
  /// section (schema bbsim.resil.v1); nullptr unless the run had the
  /// resilience layer active (ExecutionConfig::faults / ::checkpoint).
  /// Shared so Result stays copyable.
  std::shared_ptr<const resil::RunStats> resil_stats;
  /// Critical-path / blame-attribution report, schema bbsim.critpath.v1
  /// (ExecutionConfig::critpath); null when the pass was off.
  json::Value critpath;

  /// Mean observed duration of tasks of `type` (0 when none).
  double mean_duration(const std::string& type) const;
  /// Mean observed I/O fraction of tasks of `type` (paper's lambda_io).
  double mean_lambda(const std::string& type) const;
  /// All records of a type, in name order.
  std::vector<const TaskRecord*> records_of(const std::string& type) const;

  /// Serialise the trace + records for offline analysis.
  json::Value to_json() const;
};

}  // namespace bbsim::exec
