// bbsim -- post-run validation of an execution Result.
//
// Checks invariants that must hold for ANY correct simulated execution:
//   * every workflow task ran exactly once, with consistent phase ordering;
//   * precedence: each parent finished before its child started;
//   * no host was oversubscribed: at every instant the cores of tasks
//     running on a host sum to at most the host's core count;
//   * the makespan covers every task.
//
// Used by tests and available to users as a cheap sanity check after
// experiments with custom policies/schedulers.
#pragma once

#include <string>
#include <vector>

#include "exec/trace.hpp"
#include "platform/spec.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::exec {

/// One violated invariant.
struct ValidationIssue {
  std::string what;
};

/// Returns all violations found (empty = the run is consistent).
std::vector<ValidationIssue> validate_result(const Result& result,
                                             const wf::Workflow& workflow,
                                             const platform::PlatformSpec& platform);

/// Convenience: throws InvariantError listing the first issues when any
/// violation is found.
void expect_valid(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform);

}  // namespace bbsim::exec
