// bbsim -- post-run validation of an execution Result.
//
// Checks invariants that must hold for ANY correct simulated execution:
//   * every workflow task ran exactly once, with consistent phase ordering;
//   * precedence: each parent finished before its child started;
//   * no host was oversubscribed: at every instant the cores of tasks
//     running on a host sum to at most the host's core count;
//   * the makespan covers every task.
//
// Used by tests and available to users as a cheap sanity check after
// experiments with custom policies/schedulers.
#pragma once

#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "exec/trace.hpp"
#include "platform/spec.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::exec {

/// Which invariant a ValidationIssue violates (machine-readable; the audit
/// layer maps these onto audit::Code categories).
enum class IssueCode {
  kMissingRecord,    ///< a workflow task has no execution record
  kUnknownTask,      ///< a record exists for a task not in the workflow
  kPhaseOrder,       ///< ready/start/reads/compute/end timestamps disordered
  kHostRange,        ///< record names a host index outside the platform
  kCoreBudget,       ///< a task's cores exceed its host's core count
  kPrecedence,       ///< a child started before a parent finished
  kOversubscribed,   ///< concurrent tasks exceeded a host's cores
  kMakespan,         ///< the makespan does not cover every task
};

/// One violated invariant.
struct ValidationIssue {
  std::string what;
  IssueCode code = IssueCode::kMissingRecord;
};

/// Returns all violations found (empty = the run is consistent).
std::vector<ValidationIssue> validate_result(const Result& result,
                                             const wf::Workflow& workflow,
                                             const platform::PlatformSpec& platform);

/// Records every validation issue into `auditor` (schedule legality:
/// lifecycle, precedence, core non-overlap), then cross-checks byte
/// conservation between each task's recorded I/O volumes and the
/// workflow's declared file sizes. Used by audited runs after the engine
/// drains; detection times are audit::kPostRun.
void audit_result(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform, audit::Auditor& auditor);

/// Convenience: throws InvariantError listing the first issues when any
/// violation is found.
void expect_valid(const Result& result, const wf::Workflow& workflow,
                  const platform::PlatformSpec& platform);

}  // namespace bbsim::exec
