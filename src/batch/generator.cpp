#include "batch/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bbsim::batch {

using util::ConfigError;

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Weibull: return "weibull";
  }
  return "poisson";
}

ArrivalProcess arrival_process_from_string(const std::string& text) {
  if (text == "poisson") return ArrivalProcess::Poisson;
  if (text == "weibull") return ArrivalProcess::Weibull;
  throw ConfigError("unknown arrival process '" + text + "' (expected poisson|weibull)");
}

JobStream make_stream(const StreamConfig& config) {
  if (config.job_count == 0) throw ConfigError("stream generator: job_count must be >= 1");
  if (config.machine_nodes < 1) throw ConfigError("stream generator: machine_nodes must be >= 1");
  if (config.machine_bb_bytes <= 0) {
    throw ConfigError("stream generator: machine_bb_bytes must be positive");
  }
  if (config.load <= 0) throw ConfigError("stream generator: load must be positive");
  if (config.estimate_factor < 1.0) {
    throw ConfigError("stream generator: estimate_factor must be >= 1");
  }
  if (config.max_job_nodes < 1 || config.max_job_nodes > config.machine_nodes) {
    throw ConfigError("stream generator: max_job_nodes must be in [1, machine_nodes]");
  }

  // Independent sub-streams per dimension: adding a knob to one dimension
  // never perturbs the draws of another.
  util::Rng size_rng = util::Rng(config.seed).fork("sizes");
  util::Rng bb_rng = util::Rng(config.seed).fork("bb");
  util::Rng arrival_rng = util::Rng(config.seed).fork("arrivals");

  JobStream stream;
  stream.name = config.name;
  stream.seed = config.seed;
  stream.jobs.reserve(config.job_count);

  // Pass 1: sizes. Node counts are log2-heavy (many 1-node jobs, few big
  // ones); runtimes log-normal truncated; estimates overshoot uniformly.
  const int max_log2 =
      static_cast<int>(std::floor(std::log2(static_cast<double>(config.max_job_nodes))));
  double total_node_seconds = 0.0;
  for (std::size_t i = 0; i < config.job_count; ++i) {
    Job job;
    job.id = i;
    job.name = "job" + std::to_string(i);
    job.nodes = 1 << size_rng.uniform_int(0, max_log2);
    job.walltime_actual = std::clamp(
        size_rng.lognormal_mean(config.runtime_mean, config.runtime_sigma),
        config.runtime_min, config.runtime_max);
    job.walltime_estimate =
        job.walltime_actual * size_rng.uniform(1.0, config.estimate_factor);

    // BB demand: none / modest log-normal / hog slice of the machine.
    if (bb_rng.chance(config.bb_none_fraction)) {
      job.bb_bytes = 0.0;
    } else if (bb_rng.chance(config.bb_hog_fraction)) {
      job.bb_bytes = std::min(
          config.machine_bb_bytes,
          bb_rng.lognormal_mean(config.bb_hog_share * config.machine_bb_bytes, 0.3));
    } else {
      job.bb_bytes =
          std::min(config.machine_bb_bytes,
                   bb_rng.lognormal_mean(config.bb_mean_bytes, config.bb_sigma));
    }

    total_node_seconds += static_cast<double>(job.nodes) * job.walltime_actual;
    stream.jobs.push_back(std::move(job));
  }

  // Pass 2: arrivals. The horizon that makes the offered work equal
  // `load` x machine capacity fixes the mean gap.
  const double horizon =
      total_node_seconds / (static_cast<double>(config.machine_nodes) * config.load);
  const double mean_gap = horizon / static_cast<double>(config.job_count);
  double t = 0.0;
  for (Job& job : stream.jobs) {
    job.submit = t;
    const double gap = config.arrivals == ArrivalProcess::Poisson
                           ? arrival_rng.exponential(mean_gap)
                           : arrival_rng.weibull_mean(config.weibull_shape, mean_gap);
    t += gap;
  }

  validate_stream(stream, config.machine_nodes, config.machine_bb_bytes);
  return stream;
}

}  // namespace bbsim::batch
