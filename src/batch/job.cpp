#include "batch/job.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bbsim::batch {

using util::ConfigError;

const char* to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::None: return "none";
    case PayloadKind::Scale: return "scale";
    case PayloadKind::Layered: return "layered";
    case PayloadKind::Chain: return "chain";
    case PayloadKind::FanOut: return "fan_out";
    case PayloadKind::FanIn: return "fan_in";
    case PayloadKind::ForkJoin: return "fork_join";
  }
  return "none";
}

PayloadKind payload_kind_from_string(const std::string& text) {
  if (text == "none") return PayloadKind::None;
  if (text == "scale") return PayloadKind::Scale;
  if (text == "layered") return PayloadKind::Layered;
  if (text == "chain") return PayloadKind::Chain;
  if (text == "fan_out") return PayloadKind::FanOut;
  if (text == "fan_in") return PayloadKind::FanIn;
  if (text == "fork_join") return PayloadKind::ForkJoin;
  throw ConfigError("unknown payload shape '" + text +
                    "' (expected none|scale|layered|chain|fan_out|fan_in|fork_join)");
}

void validate_stream(JobStream& stream, int machine_nodes, double machine_bb_bytes) {
  std::stable_sort(stream.jobs.begin(), stream.jobs.end(),
                   [](const Job& a, const Job& b) {
                     if (a.submit != b.submit) return a.submit < b.submit;
                     return a.id < b.id;
                   });
  std::vector<std::size_t> ids;
  ids.reserve(stream.jobs.size());
  for (Job& job : stream.jobs) {
    if (job.name.empty()) job.name = "job" + std::to_string(job.id);
    const std::string who = "job '" + job.name + "' (id " + std::to_string(job.id) + ")";
    if (job.submit < 0) throw ConfigError(who + ": negative submit time");
    if (job.nodes < 1) throw ConfigError(who + ": nodes must be >= 1");
    if (job.walltime_estimate <= 0) {
      throw ConfigError(who + ": walltime_estimate must be positive");
    }
    if (job.walltime_actual <= 0 && job.payload.kind == PayloadKind::None) {
      throw ConfigError(who + ": walltime_actual missing and no payload to derive it");
    }
    if (job.bb_bytes < 0) throw ConfigError(who + ": negative bb_bytes");
    if (job.payload.kind != PayloadKind::None && job.payload.tasks == 0) {
      throw ConfigError(who + ": payload tasks must be >= 1");
    }
    if (machine_nodes > 0 && job.nodes > machine_nodes) {
      throw ConfigError(who + ": requests " + std::to_string(job.nodes) +
                        " nodes but the machine has " + std::to_string(machine_nodes));
    }
    if (machine_bb_bytes > 0 && job.bb_bytes > machine_bb_bytes) {
      throw ConfigError(who + ": BB request exceeds the machine's capacity");
    }
    ids.push_back(job.id);
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    throw ConfigError("job stream '" + stream.name + "': duplicate job ids");
  }
}

json::Value stream_to_json(const JobStream& stream) {
  json::Object root;
  root.set("schema", "bbsim.jobs.v1");
  root.set("name", stream.name);
  root.set("seed", static_cast<std::size_t>(stream.seed));
  json::Array jobs;
  for (const Job& job : stream.jobs) {
    json::Object o;
    o.set("id", job.id);
    o.set("name", job.name);
    o.set("submit", job.submit);
    o.set("nodes", job.nodes);
    o.set("walltime_estimate", job.walltime_estimate);
    if (job.walltime_actual > 0) o.set("walltime_actual", job.walltime_actual);
    o.set("bb_bytes", job.bb_bytes);
    if (job.payload.kind != PayloadKind::None) {
      json::Object p;
      p.set("shape", to_string(job.payload.kind));
      p.set("tasks", job.payload.tasks);
      p.set("width", job.payload.width);
      o.set("payload", json::Value(std::move(p)));
    }
    jobs.push_back(json::Value(std::move(o)));
  }
  root.set("jobs", json::Value(std::move(jobs)));
  return json::Value(std::move(root));
}

JobStream stream_from_json(const json::Value& doc) {
  if (!doc.is_object()) throw ConfigError("job stream: document must be an object");
  const std::string schema = doc.get_string("schema", "");
  if (schema != "bbsim.jobs.v1") {
    throw ConfigError("job stream: expected schema bbsim.jobs.v1, got '" + schema + "'");
  }
  JobStream stream;
  stream.name = doc.get_string("name", "");
  stream.seed = static_cast<std::uint64_t>(doc.get_number("seed", 0.0));
  const json::Value* jobs = doc.as_object().find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    throw ConfigError("job stream: missing 'jobs' array");
  }
  std::size_t fallback_id = 0;
  for (const json::Value& entry : jobs->as_array()) {
    if (!entry.is_object()) throw ConfigError("job stream: job entries must be objects");
    Job job;
    job.id = static_cast<std::size_t>(entry.get_number("id", static_cast<double>(fallback_id)));
    job.name = entry.get_string("name", "");
    job.submit = entry.get_number("submit", 0.0);
    job.nodes = static_cast<int>(entry.get_int("nodes", 1));
    job.walltime_estimate = entry.get_number("walltime_estimate", 0.0);
    job.walltime_actual = entry.get_number("walltime_actual", 0.0);
    job.bb_bytes = entry.get_number("bb_bytes", 0.0);
    if (const json::Value* p = entry.as_object().find("payload")) {
      job.payload.kind = payload_kind_from_string(p->get_string("shape", "none"));
      job.payload.tasks = static_cast<std::size_t>(p->get_number("tasks", 16.0));
      job.payload.width = static_cast<std::size_t>(p->get_number("width", 4.0));
    }
    stream.jobs.push_back(std::move(job));
    ++fallback_id;
  }
  validate_stream(stream);
  return stream;
}

JobStream load_jobs_file(const std::string& path) {
  return stream_from_json(json::parse_file(path));
}

}  // namespace bbsim::batch
