#include "batch/payload.hpp"

#include <algorithm>

#include "exec/engine.hpp"
#include "platform/presets.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workflow/random_dag.hpp"
#include "workflow/workflow.hpp"

namespace bbsim::batch {

using util::ConfigError;

namespace {

wf::Workflow build_payload_dag(const Job& job, util::Rng& rng) {
  const Payload& p = job.payload;
  const std::size_t width = std::max<std::size_t>(1, p.width);
  switch (p.kind) {
    case PayloadKind::None:
      throw ConfigError("job '" + job.name + "': no payload to build");
    case PayloadKind::Scale: {
      wf::ScaleDagConfig cfg;
      cfg.task_count = p.tasks;
      cfg.width = width;
      return wf::make_scale_dag(cfg, rng);
    }
    case PayloadKind::Layered: {
      wf::RandomDagConfig cfg;
      cfg.levels = std::max<int>(1, static_cast<int>(p.tasks / width));
      cfg.min_width = 1;
      cfg.max_width = static_cast<int>(width);
      return wf::make_random_layered(cfg, rng);
    }
    case PayloadKind::Chain:
    case PayloadKind::FanOut:
    case PayloadKind::FanIn:
    case PayloadKind::ForkJoin: {
      wf::RandomDagConfig cfg;
      cfg.levels = std::max<int>(1, static_cast<int>(p.tasks / width));
      cfg.min_width = static_cast<int>(width);
      cfg.max_width = static_cast<int>(width);
      const wf::DagShape shape = p.kind == PayloadKind::Chain     ? wf::DagShape::Chain
                                 : p.kind == PayloadKind::FanOut  ? wf::DagShape::FanOut
                                 : p.kind == PayloadKind::FanIn   ? wf::DagShape::FanIn
                                                                  : wf::DagShape::ForkJoin;
      return wf::make_shaped_dag(shape, cfg, rng);
    }
  }
  throw ConfigError("job '" + job.name + "': unknown payload kind");
}

}  // namespace

std::size_t resolve_payloads(JobStream& stream, const PayloadSimOptions& options) {
  if (options.cores_per_node < 1) {
    throw ConfigError("payload sim: cores_per_node must be >= 1");
  }
  std::size_t resolved = 0;
  const util::Rng base = util::Rng(stream.seed == 0 ? 1 : stream.seed).fork("payload");
  for (Job& job : stream.jobs) {
    if (job.walltime_actual > 0 || job.payload.kind == PayloadKind::None) continue;

    util::Rng rng = base.fork(job.id);
    const wf::Workflow dag = build_payload_dag(job, rng);

    // A Cori-like slice of exactly the job's request: its nodes, one
    // DataWarp allocation of its reserved size (striped: every node
    // reads), and the paper's Table I bandwidths.
    platform::PresetOptions popt;
    popt.compute_nodes = job.nodes;
    popt.bb_nodes = 1;
    popt.bb_mode = platform::BBMode::Striped;
    platform::PlatformSpec slice = platform::cori_platform(popt);
    for (platform::HostSpec& host : slice.hosts) {
      host.cores = options.cores_per_node;
    }
    const bool use_bb = job.bb_bytes > 0;
    if (use_bb) {
      for (platform::StorageSpec& svc : slice.storage) {
        if (svc.kind == platform::StorageKind::SharedBB) {
          svc.disk.capacity = job.bb_bytes;
        }
      }
    }

    exec::ExecutionConfig cfg;
    cfg.placement = use_bb ? exec::all_bb_policy() : exec::all_pfs_policy();
    cfg.stage_in_mode = exec::StageInMode::Task;
    cfg.collect_trace = false;
    // The BB slice is exactly the reservation; spill gracefully when the
    // DAG's working set outgrows it instead of failing the job.
    cfg.bb_eviction = use_bb;

    const exec::Result r = exec::Simulation(std::move(slice), dag, cfg).run();
    job.walltime_actual = std::max(options.min_runtime, r.makespan);
    ++resolved;
  }
  return resolved;
}

}  // namespace bbsim::batch
