/// \file
/// bbsim::batch -- the multi-tenant job-stream model: what one queued job
/// asks the machine for, and the `bbsim.jobs.v1` operator-facing format a
/// whole stream serialises to.
///
/// The paper models a single workflow that owns the entire platform; the
/// real Cori deployment it studies ran thousands of queued jobs competing
/// for compute nodes *and* DataWarp burst-buffer capacity (the regime of
/// Kopanski & Rzadca, arXiv 2109.00082). A batch::Job is the unit of that
/// competition: it arrives at `submit`, asks for `nodes` compute nodes and
/// `bb_bytes` of burst-buffer reservation, declares a walltime estimate
/// (what the user told the scheduler) and carries the actual runtime --
/// either given directly or derived by simulating an attached workflow
/// payload on a right-sized slice of the machine (payload.hpp).
///
/// Kill-at-estimate semantics: a job is terminated when it exceeds its
/// estimate, so the executed runtime is min(actual, estimate). This is how
/// production schedulers behave and it is what makes backfilling sound:
/// a reservation computed from estimates can never be pushed back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace bbsim::batch {

/// Shape of a job's optional workflow payload (resolved by payload.hpp
/// into the wf:: generators).
enum class PayloadKind {
  None,      ///< no payload: walltime_actual must be given
  Scale,     ///< wf::make_scale_dag (pipeline-parallel layered DAG)
  Layered,   ///< wf::make_random_layered
  Chain,     ///< wf::make_shaped_dag(DagShape::Chain)
  FanOut,    ///< wf::make_shaped_dag(DagShape::FanOut)
  FanIn,     ///< wf::make_shaped_dag(DagShape::FanIn)
  ForkJoin,  ///< wf::make_shaped_dag(DagShape::ForkJoin)
};

/// Stable snake_case identifier ("none", "scale", "fan_out", ...), part of
/// the bbsim.jobs.v1 schema.
const char* to_string(PayloadKind kind);
/// Inverse of to_string; throws util::ConfigError on unknown names.
PayloadKind payload_kind_from_string(const std::string& text);

/// An optional workflow attached to a job. When the job's walltime_actual
/// is not given (<= 0), batch::resolve_payloads simulates this workflow on
/// a platform slice matching the job's request and uses the resulting
/// makespan as the actual runtime.
struct Payload {
  PayloadKind kind = PayloadKind::None;
  std::size_t tasks = 16;  ///< total task budget of the generated DAG
  std::size_t width = 4;   ///< parallel pipelines (Scale) / level width cap
};

/// One job of the stream: everything the batch scheduler knows about it.
struct Job {
  std::size_t id = 0;     ///< unique within the stream
  std::string name;       ///< display label; defaults to "job<id>"
  double submit = 0.0;    ///< arrival time in seconds since stream start
  int nodes = 1;          ///< compute nodes requested (exclusive)
  double walltime_estimate = 0.0;  ///< user-declared limit, seconds (> 0)
  /// True runtime in seconds. The executed runtime is
  /// min(walltime_actual, walltime_estimate) -- kill-at-estimate. A value
  /// <= 0 means "derive from the payload" (resolve_payloads fills it in).
  double walltime_actual = 0.0;
  double bb_bytes = 0.0;  ///< burst-buffer reservation requested (>= 0)
  Payload payload;        ///< optional workflow behind the runtime
};

/// A whole arrival stream, ordered by (submit, id).
struct JobStream {
  std::string name;          ///< study label, carried into reports
  std::uint64_t seed = 0;    ///< generator seed (0 for hand-written streams)
  std::vector<Job> jobs;
};

/// Structural validation against a machine of `machine_nodes` nodes and
/// `machine_bb_bytes` of burst buffer (pass 0 to skip the fit checks):
/// unique ids, non-negative submits, positive nodes/estimates, jobs that
/// could ever start (nodes and bb fit the machine), and actual runtimes
/// present unless a payload will provide them. Sorts jobs by (submit, id).
/// Throws util::ConfigError with the offending job named.
void validate_stream(JobStream& stream, int machine_nodes = 0,
                     double machine_bb_bytes = 0.0);

/// Serialise to the operator-facing format:
///   { "schema": "bbsim.jobs.v1", "name": ..., "seed": ...,
///     "jobs": [ { "id", "name", "submit", "nodes", "walltime_estimate",
///                 "walltime_actual"?, "bb_bytes",
///                 "payload"?: {"shape","tasks","width"} } ] }
/// Deterministic: jobs appear in (submit, id) order, keys in fixed order.
json::Value stream_to_json(const JobStream& stream);

/// Parse a bbsim.jobs.v1 document (validates structurally, not against a
/// machine). Throws util::ParseError / util::ConfigError.
JobStream stream_from_json(const json::Value& doc);

/// Parse a bbsim.jobs.v1 file.
JobStream load_jobs_file(const std::string& path);

}  // namespace bbsim::batch
