/// \file
/// bbsim::batch -- fleet accounting: per-policy summaries and the
/// `bbsim.batch.v1` report.
///
/// The metrics vocabulary of the multi-tenant layer (docs/batch.md defines
/// each precisely):
///
///   wait              start - submit
///   response          end - submit
///   bounded slowdown  max(1, (wait + runtime) / max(runtime, tau)),
///                     tau = 10 s by default -- the standard floor that
///                     keeps second-long jobs from dominating the mean
///   node/BB utilization    time-weighted busy fraction over [0, makespan]
///   BB internal fragmentation   (allocated - requested) byte-seconds over
///                     allocated byte-seconds (granule rounding waste)
///   bb_blocked_fraction    fraction of the makespan the queue head fit on
///                     nodes but was blocked by the BB dimension alone
///
/// Report layout (deterministic: fixed key order, runs in input order):
///   { "schema": "bbsim.batch.v1",
///     "stream": {"name","seed","jobs"},
///     "machine": {"nodes","bb_capacity_bytes","bb_granule_bytes"},
///     "tau": ...,
///     "runs": [ { "policy", "makespan", "summary": {...},
///                 "jobs"?: [...], "metrics"?, "audit"? } ],
///     "comparison": { "mean_bounded_slowdown": {policy: value, ...},
///                     "best_policy": ... } }    // when >= 2 runs
#pragma once

#include <string>
#include <vector>

#include "batch/job.hpp"
#include "batch/scheduler.hpp"
#include "json/json.hpp"

namespace bbsim::batch {

/// Exact (not histogram-approximated) distribution summary of one run.
struct FleetSummary {
  std::size_t jobs = 0;
  double makespan = 0.0;
  double wait_mean = 0.0, wait_p95 = 0.0, wait_max = 0.0;
  double bsld_mean = 0.0, bsld_p95 = 0.0, bsld_max = 0.0;
  double response_mean = 0.0;
  double node_utilization = 0.0;
  double bb_utilization = 0.0;
  double bb_internal_fragmentation = 0.0;
  double bb_blocked_fraction = 0.0;
  double mean_queue_depth = 0.0;
  std::size_t backfilled_jobs = 0;
  std::size_t killed_jobs = 0;
};

/// Compute the summary of one finished run.
FleetSummary summarize(const FleetResult& result, const MachineSpec& machine,
                       double tau);

/// Build the bbsim.batch.v1 report over one or more policy runs of the
/// same stream. `include_jobs` embeds the per-job records (id, start, end,
/// wait, bounded_slowdown, bb_alloc, backfilled, killed) in each run;
/// `include_critpath` embeds batch_critpath(run) per run as "critpath".
json::Value batch_report(const JobStream& stream, const MachineSpec& machine,
                         double tau, const std::vector<FleetResult>& runs,
                         bool include_jobs = false,
                         bool include_critpath = false);

/// Critical-path decomposition of one run's makespan (bbsim.critpath.v1).
/// Walks the blocking chain backward from the job that finishes last: each
/// job on the chain contributes its run ([start, end] -> compute), its wait
/// split into BB-capacity blockage (JobOutcome::bb_wait_seconds ->
/// bb_capacity_wait), outage rework (lost wall time of killed attempts ->
/// recovery_rework) and plain queue wait, and the arrival gap back to the
/// predecessor completion that most recently preceded its submit. The
/// segments partition [0, makespan] exactly, so path length and total blame
/// equal the makespan -- same invariant as the exec-layer report. Purely a
/// function of the outcomes; no run-time hooks are involved.
json::Value batch_critpath(const FleetResult& run);

}  // namespace bbsim::batch
