/// \file
/// bbsim::batch -- payload resolution: turning a job's attached workflow
/// into its actual runtime by simulating it on a right-sized slice of the
/// machine.
///
/// A bbsim.jobs.v1 job may omit walltime_actual and instead carry a
/// payload (a paper-style DAG shape and task budget). resolve_payloads
/// builds the workflow with the wf:: generators, carves out a Cori-like
/// platform of exactly the job's node count with a burst buffer sized to
/// the job's reservation, runs the full exec::Simulation on it, and uses
/// the resulting makespan as walltime_actual. The inner run is the paper's
/// single-tenant model; the batch layer stacks the multi-tenant queueing
/// on top -- so the fleet's runtimes inherit every modeled effect
/// (stage-in, BB bandwidth, contention inside the job).
#pragma once

#include "batch/job.hpp"

namespace bbsim::batch {

/// Options of the inner per-job simulations.
struct PayloadSimOptions {
  /// Cores per simulated node (Cori Haswell default).
  int cores_per_node = 32;
  /// Floor for the derived runtime in seconds (a degenerate payload must
  /// still produce a schedulable job).
  double min_runtime = 1.0;
};

/// Fill in walltime_actual for every job whose payload demands it (kind !=
/// None and walltime_actual <= 0). Jobs with explicit runtimes are left
/// untouched; walltime_estimate always stays the user's declaration (the
/// scheduler needs it before the payload "runs"). Deterministic: the DAG
/// of job j is built from the stream seed forked by the job id. Returns
/// the number of jobs resolved. Throws util::ConfigError on impossible
/// payloads.
std::size_t resolve_payloads(JobStream& stream, const PayloadSimOptions& options = {});

}  // namespace bbsim::batch
