#include "batch/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/error.hpp"

namespace bbsim::batch {

using util::ConfigError;

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::Fcfs: return "fcfs";
    case Policy::Easy: return "easy";
    case Policy::Conservative: return "conservative";
    case Policy::PlanBased: return "plan";
  }
  return "fcfs";
}

Policy policy_from_string(const std::string& text) {
  if (text == "fcfs") return Policy::Fcfs;
  if (text == "easy") return Policy::Easy;
  if (text == "conservative") return Policy::Conservative;
  if (text == "plan" || text == "plan_based") return Policy::PlanBased;
  throw ConfigError("unknown policy '" + text + "' (expected fcfs|easy|conservative|plan)");
}

double MachineSpec::bb_alloc(double bytes) const {
  if (bytes <= 0) return 0.0;
  if (bb_granule <= 0) return bytes;
  return std::ceil(bytes / bb_granule - kEps) * bb_granule;
}

double JobOutcome::bounded_slowdown(double tau) const {
  const double denom = std::max(runtime, tau);
  if (denom <= 0) return 1.0;
  return std::max(1.0, (wait() + runtime) / denom);
}

double FleetResult::node_utilization(const MachineSpec& machine) const {
  if (makespan <= 0 || machine.nodes < 1) return 0.0;
  return node_seconds / (static_cast<double>(machine.nodes) * makespan);
}

double FleetResult::bb_utilization(const MachineSpec& machine) const {
  if (makespan <= 0 || machine.bb_bytes <= 0) return 0.0;
  return bb_byte_seconds / (machine.bb_bytes * makespan);
}

double FleetResult::bb_internal_fragmentation() const {
  if (bb_byte_seconds <= 0) return 0.0;
  return (bb_byte_seconds - bb_req_byte_seconds) / bb_byte_seconds;
}

double FleetResult::bb_blocked_fraction() const {
  if (makespan <= 0) return 0.0;
  return bb_blocked_seconds / makespan;
}

namespace {

/// Step-function availability profile over [t0, inf): free nodes and free
/// BB bytes per segment. Segment i spans [times[i], times[i+1]); the last
/// segment extends to infinity. Reservations subtract over a window.
class Profile {
 public:
  Profile(double t0, int nodes, double bb)
      : bb_eps_(std::max(kEps, bb * 1e-12)),
        times_{t0},
        free_nodes_{nodes},
        free_bb_{bb} {}

  /// Earliest t >= t_min such that `nodes`/`bb` are free over the whole
  /// window [t, t + duration). Returns infinity only if the request never
  /// fits (a job larger than the machine -- excluded by validation).
  double earliest_start(double t_min, double duration, int nodes, double bb) const {
    double t = std::max(t_min, times_.front());
    std::size_t i = segment_at(t);
    for (;;) {
      const double end = t + duration;
      std::size_t j = i;
      bool ok = true;
      for (;;) {
        if (free_nodes_[j] < nodes || free_bb_[j] < bb - bb_eps_) {
          ok = false;
          break;
        }
        if (j + 1 >= times_.size() || times_[j + 1] >= end - kEps) break;
        ++j;
      }
      if (ok) return t;
      if (j + 1 >= times_.size()) return kInf;
      t = times_[j + 1];
      i = j + 1;
    }
  }

  /// Subtract a reservation over [start, start + duration).
  void commit(double start, double duration, int nodes, double bb) {
    if (duration <= 0) return;
    const std::size_t first = split_at(start);
    const std::size_t last = split_at(start + duration);  // first unaffected
    for (std::size_t i = first; i < last; ++i) {
      free_nodes_[i] -= nodes;
      free_bb_[i] -= bb;
    }
  }

 private:
  std::size_t segment_at(double t) const {
    std::size_t i = times_.size();
    while (i > 0 && times_[i - 1] > t + kEps) --i;
    return i > 0 ? i - 1 : 0;
  }

  /// Ensure a breakpoint exists at `t`; returns its segment index.
  std::size_t split_at(double t) {
    const std::size_t i = segment_at(t);
    if (std::abs(times_[i] - t) <= kEps) return i;
    // t falls inside segment i: split it.
    times_.insert(times_.begin() + static_cast<std::ptrdiff_t>(i) + 1, t);
    free_nodes_.insert(free_nodes_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       free_nodes_[i]);
    free_bb_.insert(free_bb_.begin() + static_cast<std::ptrdiff_t>(i) + 1, free_bb_[i]);
    return i + 1;
  }

  /// BB quantities reach 1e12+ bytes, where double rounding error dwarfs
  /// any absolute epsilon: fit comparisons must use a relative tolerance.
  double bb_eps_;
  std::vector<double> times_;
  std::vector<int> free_nodes_;
  std::vector<double> free_bb_;
};

/// The fleet simulation: one policy, one stream, one machine.
class FleetSim {
 public:
  FleetSim(const MachineSpec& machine, const JobStream& stream,
           const SchedulerConfig& config)
      : machine_(machine), stream_(stream), config_(config) {}

  FleetResult run();

 private:
  // ------------------------------------------------------------ helpers
  const Job& job(std::size_t idx) const { return stream_.jobs[idx]; }
  double alloc(std::size_t idx) const { return alloc_[idx]; }
  double exec_runtime(std::size_t idx) const { return exec_runtime_[idx]; }
  double end_estimate(std::size_t idx) const {
    return outcomes_[idx].start + job(idx).walltime_estimate;
  }
  /// Fit tolerance for BB byte quantities. Pools reach 1e12+ bytes, where
  /// one double ulp is ~1e-4: an absolute 1e-9 epsilon would make a job
  /// whose reservation equals the whole free pool "never fit" on rounding
  /// noise alone (a deadlock, since the machine can free no more).
  double bb_eps() const { return std::max(kEps, machine_.bb_bytes * 1e-12); }
  bool fits_now(std::size_t idx) const {
    return job(idx).nodes <= free_nodes_ && alloc(idx) <= free_bb_ + bb_eps();
  }

  void start_job(std::size_t idx, bool backfilled);
  void promise(std::size_t idx, double start) {
    if (outcomes_[idx].reserved_start < 0) outcomes_[idx].reserved_start = start;
  }

  // ------------------------------------------------- per-policy passes
  void schedule_pass();
  void pass_fcfs();
  void pass_easy();
  void pass_profile(Policy policy);  ///< conservative + plan-based
  /// Build the availability profile of the running jobs (estimates).
  Profile running_profile() const;
  /// Place `order` onto a copy of the running profile; returns the total
  /// estimated bounded slowdown, filling `starts` (parallel to `order`).
  double plan_cost(const std::vector<std::size_t>& order,
                   std::vector<double>* starts) const;

  // ----------------------------------------------------- observability
  void integrate_to(double t);
  void sample();
  void audit_ledger();
  void audit_outcome(const JobOutcome& out);

  const MachineSpec& machine_;
  const JobStream& stream_;
  const SchedulerConfig& config_;

  FleetResult result_;
  std::vector<JobOutcome> outcomes_;   ///< by stream index
  std::vector<double> alloc_;          ///< granule-rounded BB per job
  std::vector<double> exec_runtime_;   ///< min(actual, estimate)
  std::deque<std::size_t> queue_;      ///< waiting, arrival order
  std::vector<std::size_t> running_;   ///< running stream indices
  double now_ = 0.0;
  int free_nodes_ = 0;
  double free_bb_ = 0.0;
  std::size_t next_arrival_ = 0;

  // ------------------------------------------------------- node outages
  /// One active outage: `node` is out until `repair_end`. Sorted insertion
  /// is not needed -- the vector stays tiny (bounded by machine nodes).
  struct Outage {
    std::size_t node = 0;
    double repair_end = 0.0;
  };
  int down_nodes() const { return static_cast<int>(down_.size()); }
  /// Next crash time for `node` measured from `from`; kInf past the horizon.
  double sample_crash(std::size_t node, double from);
  /// Process repairs then crashes due at now_ (kill-and-resubmit).
  void apply_outages();
  std::unique_ptr<resil::FaultModel> fault_model_;  ///< null = faults off
  std::vector<double> next_crash_;  ///< per node; kInf while down / past horizon
  std::vector<Outage> down_;        ///< active outages

  std::unique_ptr<stats::MetricsRegistry> metrics_;
  std::unique_ptr<trace::TimelineRecorder> timeline_;
  trace::TrackId track_free_nodes_ = 0;
  trace::TrackId track_bb_used_ = 0;
  trace::TrackId track_down_nodes_ = 0;
  std::unique_ptr<audit::Auditor> auditor_;
};

void FleetSim::start_job(std::size_t idx, bool backfilled) {
  JobOutcome& out = outcomes_[idx];
  out.start = now_;
  out.runtime = exec_runtime(idx);
  out.end = now_ + out.runtime;
  out.killed = job(idx).walltime_actual > job(idx).walltime_estimate + kEps;
  out.backfilled = backfilled;
  free_nodes_ -= job(idx).nodes;
  free_bb_ -= alloc(idx);
  running_.push_back(idx);
  if (backfilled) ++result_.backfilled_jobs;
  if (out.killed) ++result_.killed_jobs;
  if (metrics_) {
    metrics_->counter("batch.jobs_started").add();
    if (backfilled) metrics_->counter("batch.jobs_backfilled").add();
    if (out.killed) metrics_->counter("batch.jobs_killed").add();
    // BB-allocation wait absorbed before this start: the seconds the job
    // spent as a node-feasible queue head blocked by the BB pool alone.
    metrics_->series("storage.bb.alloc_wait_seconds")
        .sample(now_, out.bb_wait_seconds);
  }
}

double FleetSim::sample_crash(std::size_t node, double from) {
  const double at = from + fault_model_->next_node_gap(node);
  const resil::FaultSpec& spec = fault_model_->spec();
  if (spec.horizon > 0.0 && at > spec.horizon) return kInf;
  return at;
}

void FleetSim::apply_outages() {
  if (!fault_model_) return;
  // Repairs first: a node repaired at the same instant another crashes is
  // available to absorb the loss. Repairs sweep in outage order, crashes in
  // node-index order -- both fixed, so the run is deterministic.
  for (std::size_t i = 0; i < down_.size();) {
    if (down_[i].repair_end <= now_ + kEps) {
      const std::size_t node = down_[i].node;
      down_.erase(down_.begin() + static_cast<std::ptrdiff_t>(i));
      ++free_nodes_;
      next_crash_[node] = sample_crash(node, now_);
    } else {
      ++i;
    }
  }
  for (std::size_t node = 0; node < next_crash_.size(); ++node) {
    if (next_crash_[node] > now_ + kEps) continue;
    next_crash_[node] = kInf;  // re-armed when the repair fires
    down_.push_back({node, now_ + config_.faults.node_repair});
    ++result_.node_outages;
    if (metrics_) metrics_->counter("batch.node_outages").add();
    if (free_nodes_ > 0) {
      --free_nodes_;  // the crash landed on an idle node
      continue;
    }
    // Every node is busy: the crash lands on a running job. Kill the most
    // recently started one (least sunk work; ties break to the highest id)
    // and resubmit it at the queue tail -- the batch-system response to
    // node loss when the application cannot survive it.
    std::size_t victim = running_.front();
    for (const std::size_t r : running_) {
      const double rs = outcomes_[r].start;
      const double vs = outcomes_[victim].start;
      if (rs > vs + kEps || (std::abs(rs - vs) <= kEps && job(r).id > job(victim).id)) {
        victim = r;
      }
    }
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    const double lost = (now_ - outcomes_[victim].start) * job(victim).nodes;
    outcomes_[victim].resubmits += 1;
    outcomes_[victim].lost_node_seconds += lost;
    result_.lost_node_seconds += lost;
    ++result_.resubmitted_jobs;
    free_nodes_ += job(victim).nodes - 1;  // its nodes free up; one is now down
    // Resync the BB pool from the ledger (same drift defense as completions).
    double reserved = 0.0;
    for (const std::size_t r : running_) reserved += alloc(r);
    free_bb_ = machine_.bb_bytes - reserved;
    queue_.push_back(victim);
    if (metrics_) metrics_->counter("batch.jobs_resubmitted").add();
  }
}

void FleetSim::pass_fcfs() {
  while (!queue_.empty() && fits_now(queue_.front())) {
    start_job(queue_.front(), false);
    queue_.pop_front();
  }
}

void FleetSim::pass_easy() {
  bool progress = true;
  while (progress) {
    progress = false;
    while (!queue_.empty() && fits_now(queue_.front())) {
      start_job(queue_.front(), false);
      queue_.pop_front();
      progress = true;
    }
    if (queue_.empty()) return;

    // Head blocked: find the shadow time -- the earliest instant the
    // running jobs' *estimated* completions (and, under faults, down-node
    // repairs, which release a node exactly like a completion) free both of
    // its dimensions.
    const std::size_t head = queue_.front();
    struct Release {
      double end = 0.0;
      int nodes = 0;
      double bb = 0.0;
      bool phantom = false;  ///< a repair, not a job completion
      std::size_t id = 0;    ///< job id, or node index for phantoms
    };
    std::vector<Release> releases;
    releases.reserve(running_.size() + down_.size());
    for (const std::size_t r : running_) {
      releases.push_back({end_estimate(r), job(r).nodes, alloc(r), false, job(r).id});
    }
    for (const Outage& o : down_) {
      releases.push_back({o.repair_end, 1, 0.0, true, o.node});
    }
    std::sort(releases.begin(), releases.end(), [](const Release& a, const Release& b) {
      // Exact compare: a strict-weak-order tie-break, not a tolerance test.
      if (a.end != b.end) return a.end < b.end;  // NOLINT(bbsim-float-equality)
      if (a.phantom != b.phantom) return !a.phantom;
      return a.id < b.id;
    });
    double shadow = kInf;
    int nodes_at_shadow = free_nodes_;
    double bb_at_shadow = free_bb_;
    {
      int na = free_nodes_;
      double ba = free_bb_;
      for (std::size_t k = 0; k < releases.size(); ++k) {
        na += releases[k].nodes;
        ba += releases[k].bb;
        if (na >= job(head).nodes && ba >= alloc(head) - bb_eps()) {
          shadow = releases[k].end;
          // Fold in later completions at the same instant: they free more
          // resources at the shadow without moving it.
          for (std::size_t m = k + 1;
               m < releases.size() && releases[m].end <= shadow + kEps; ++m) {
            na += releases[m].nodes;
            ba += releases[m].bb;
          }
          nodes_at_shadow = na;
          bb_at_shadow = ba;
          break;
        }
      }
    }
    promise(head, shadow);

    // Resources a backfill may take without touching the head's claim:
    // min(free now, free at the shadow after the head is placed).
    const int spare_nodes =
        std::min(free_nodes_, nodes_at_shadow - job(head).nodes);
    const double spare_bb = std::min(free_bb_, bb_at_shadow - alloc(head));

    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      const std::size_t cand = *it;
      if (!fits_now(cand)) continue;
      const bool ends_before_shadow = now_ + job(cand).walltime_estimate <= shadow + kEps;
      const bool inside_spare =
          job(cand).nodes <= spare_nodes && alloc(cand) <= spare_bb + bb_eps();
      if (ends_before_shadow || inside_spare) {
        start_job(cand, true);
        queue_.erase(it);
        progress = true;
        break;  // resources changed: recompute the shadow
      }
    }
  }
}

Profile FleetSim::running_profile() const {
  Profile prof(now_, machine_.nodes, machine_.bb_bytes);
  for (const std::size_t r : running_) {
    // Reserve until the *estimated* end: the sound bound under
    // kill-at-estimate (the job cannot run longer).
    prof.commit(now_, end_estimate(r) - now_, job(r).nodes, alloc(r));
  }
  for (const Outage& o : down_) {
    // A down node is a one-node phantom job that "completes" at its repair.
    prof.commit(now_, o.repair_end - now_, 1, 0.0);
  }
  return prof;
}

double FleetSim::plan_cost(const std::vector<std::size_t>& order,
                           std::vector<double>* starts) const {
  Profile prof = running_profile();
  double total = 0.0;
  starts->clear();
  starts->reserve(order.size());
  for (const std::size_t idx : order) {
    const double est = job(idx).walltime_estimate;
    const double s = prof.earliest_start(now_, est, job(idx).nodes, alloc(idx));
    prof.commit(s, est, job(idx).nodes, alloc(idx));
    starts->push_back(s);
    const double denom = std::max(est, config_.tau);
    total += std::max(1.0, (s - job(idx).submit + est) / denom);
  }
  return total;
}

void FleetSim::pass_profile(Policy policy) {
  if (queue_.empty()) return;

  std::vector<std::size_t> order(queue_.begin(), queue_.end());
  if (policy == Policy::PlanBased && order.size() > 1) {
    // Candidate orderings: arrival, shortest-estimate, smallest area,
    // smallest BB ask. Cheapest total estimated bounded slowdown wins;
    // ties keep the earlier (more arrival-faithful) candidate.
    std::vector<std::vector<std::size_t>> candidates;
    candidates.push_back(order);
    auto sorted_by = [&](auto key) {
      std::vector<std::size_t> c(order);
      std::stable_sort(c.begin(), c.end(),
                       [&](std::size_t a, std::size_t b) { return key(a) < key(b); });
      return c;
    };
    candidates.push_back(
        sorted_by([&](std::size_t i) { return job(i).walltime_estimate; }));
    candidates.push_back(sorted_by(
        [&](std::size_t i) { return job(i).nodes * job(i).walltime_estimate; }));
    candidates.push_back(sorted_by([&](std::size_t i) { return alloc(i); }));

    double best_cost = kInf;
    std::vector<double> starts;
    for (const std::vector<std::size_t>& cand : candidates) {
      const double cost = plan_cost(cand, &starts);
      if (cost < best_cost - kEps) {
        best_cost = cost;
        order = cand;
      }
    }
  }

  // Conservative placement of the chosen order: every queued job gets a
  // reservation; the ones whose reservation is "now" start.
  Profile prof = running_profile();
  std::vector<std::size_t> started;
  bool someone_waits = false;
  for (const std::size_t idx : order) {
    const double est = job(idx).walltime_estimate;
    const double s = prof.earliest_start(now_, est, job(idx).nodes, alloc(idx));
    prof.commit(s, est, job(idx).nodes, alloc(idx));
    // Plan-based re-orders the queue on every pass, so its tentative starts
    // are not promises; only conservative's reservations are binding.
    if (policy == Policy::Conservative) promise(idx, s);
    if (s <= now_ + kEps) {
      // Backfilled = an earlier-queued job is (or stays) blocked ahead.
      start_job(idx, someone_waits);
      started.push_back(idx);
    } else {
      someone_waits = true;
    }
  }
  for (const std::size_t idx : started) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), idx));
  }
}

void FleetSim::schedule_pass() {
  switch (config_.policy) {
    case Policy::Fcfs: pass_fcfs(); return;
    case Policy::Easy: pass_easy(); return;
    case Policy::Conservative: pass_profile(Policy::Conservative); return;
    case Policy::PlanBased: pass_profile(Policy::PlanBased); return;
  }
}

void FleetSim::integrate_to(double t) {
  const double dt = t - now_;
  if (dt <= 0) return;
  // Down nodes are neither free nor serving a job: they count toward
  // neither utilization nor the free pool.
  const int used_nodes = machine_.nodes - free_nodes_ - down_nodes();
  const double used_bb = machine_.bb_bytes - free_bb_;
  result_.node_seconds += used_nodes * dt;
  result_.down_node_seconds += static_cast<double>(down_nodes()) * dt;
  result_.bb_byte_seconds += used_bb * dt;
  double req = 0.0;
  for (const std::size_t r : running_) req += job(r).bb_bytes;
  result_.bb_req_byte_seconds += req * dt;
  result_.queue_job_seconds += static_cast<double>(queue_.size()) * dt;
  if (!queue_.empty()) {
    const std::size_t head = queue_.front();
    if (job(head).nodes <= free_nodes_ && alloc(head) > free_bb_ + bb_eps()) {
      result_.bb_blocked_seconds += dt;
      outcomes_[head].bb_wait_seconds += dt;
    }
  }
}

void FleetSim::sample() {
  if (metrics_) {
    metrics_->series("batch.queue_depth").sample(now_, static_cast<double>(queue_.size()));
    metrics_->series("batch.free_nodes").sample(now_, static_cast<double>(free_nodes_));
    metrics_->series("batch.bb_used_bytes").sample(now_, machine_.bb_bytes - free_bb_);
    if (fault_model_) {
      metrics_->series("batch.down_nodes").sample(now_, static_cast<double>(down_nodes()));
    }
  }
  if (timeline_) {
    timeline_->counter_sample(track_free_nodes_, now_, static_cast<double>(free_nodes_));
    timeline_->counter_sample(track_bb_used_, now_, machine_.bb_bytes - free_bb_);
    if (fault_model_) {
      timeline_->counter_sample(track_down_nodes_, now_, static_cast<double>(down_nodes()));
    }
  }
}

void FleetSim::audit_ledger() {
  if (!auditor_) return;
  // Re-derive the reservation ledger from the running set and compare
  // against the scheduler's own free counters.
  int nodes_ledger = 0;
  double bb_ledger = 0.0;
  for (const std::size_t r : running_) {
    nodes_ledger += job(r).nodes;
    bb_ledger += alloc(r);
  }
  const int accounted = machine_.nodes - free_nodes_ - down_nodes();
  if (nodes_ledger != accounted) {
    auditor_->report(audit::Code::kReservationImbalance, now_, "nodes",
                     "node ledger " + std::to_string(nodes_ledger) +
                         " != accounted " + std::to_string(accounted));
  }
  if (std::abs(bb_ledger - (machine_.bb_bytes - free_bb_)) > 1.0) {
    auditor_->report(audit::Code::kReservationImbalance, now_, "bb",
                     "BB ledger " + std::to_string(bb_ledger) + " != accounted " +
                         std::to_string(machine_.bb_bytes - free_bb_));
  }
  if (free_bb_ < -1.0 || free_nodes_ < 0) {
    auditor_->report(audit::Code::kCapacityExceeded, now_, "machine",
                     "reservations exceed machine capacity (free nodes " +
                         std::to_string(free_nodes_) + ", free BB " +
                         std::to_string(free_bb_) + ")");
  }
}

void FleetSim::audit_outcome(const JobOutcome& out) {
  if (!auditor_) return;
  if (out.start < out.submit - kEps || out.end < out.start - kEps) {
    auditor_->report(audit::Code::kJobLifecycle, out.end, out.name,
                     "disordered times: submit " + std::to_string(out.submit) +
                         ", start " + std::to_string(out.start) + ", end " +
                         std::to_string(out.end));
  }
  if (out.runtime < 0 || std::abs(out.end - out.start - out.runtime) > kEps) {
    auditor_->report(audit::Code::kJobLifecycle, out.end, out.name,
                     "runtime does not match start/end");
  }
}

FleetResult FleetSim::run() {
  const std::size_t n = stream_.jobs.size();
  outcomes_.resize(n);
  alloc_.resize(n);
  exec_runtime_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Job& j = stream_.jobs[i];
    if (j.walltime_actual <= 0) {
      throw ConfigError("job '" + j.name +
                        "': walltime_actual unresolved (run resolve_payloads first)");
    }
    if (j.nodes > machine_.nodes) {
      throw ConfigError("job '" + j.name + "' can never run: " +
                        std::to_string(j.nodes) + " nodes > machine");
    }
    alloc_[i] = machine_.bb_alloc(j.bb_bytes);
    if (alloc_[i] > machine_.bb_bytes + bb_eps()) {
      throw ConfigError("job '" + j.name +
                        "' can never run: BB request (after granule rounding) "
                        "exceeds the machine");
    }
    exec_runtime_[i] = std::min(j.walltime_actual, j.walltime_estimate);
    JobOutcome& out = outcomes_[i];
    out.id = j.id;
    out.name = j.name;
    out.submit = j.submit;
    out.nodes = j.nodes;
    out.bb_bytes = j.bb_bytes;
    out.bb_alloc = alloc_[i];
    out.estimate = j.walltime_estimate;
  }

  result_.policy = config_.policy;
  free_nodes_ = machine_.nodes;
  free_bb_ = machine_.bb_bytes;

  if (config_.faults.node_mtbf > 0.0) {
    result_.faults_enabled = true;
    fault_model_ = std::make_unique<resil::FaultModel>(
        config_.faults, static_cast<std::size_t>(machine_.nodes));
    next_crash_.resize(static_cast<std::size_t>(machine_.nodes));
    for (std::size_t node = 0; node < next_crash_.size(); ++node) {
      next_crash_[node] = sample_crash(node, 0.0);
    }
  }

  if (config_.collect_metrics) metrics_ = std::make_unique<stats::MetricsRegistry>();
  if (config_.collect_timeline) {
    timeline_ = std::make_unique<trace::TimelineRecorder>();
    timeline_->set_host_names({"machine"});
    timeline_->set_wait_spans(true);
    track_free_nodes_ = timeline_->counter_track("batch.free_nodes", "nodes");
    track_bb_used_ = timeline_->counter_track("batch.bb_used_bytes", "bytes");
    if (fault_model_) {
      track_down_nodes_ = timeline_->counter_track("batch.down_nodes", "nodes");
    }
  }
  if (config_.audit) {
    auditor_ = std::make_unique<audit::Auditor>();
    if (metrics_) auditor_->set_metrics(metrics_.get());
  }

  // Under faults a kill can empty the running set while jobs still wait on
  // a repair -- the queue-plus-outage clause keeps the loop alive until the
  // repairs land and the queue drains.
  while (next_arrival_ < n || !running_.empty() ||
         (!queue_.empty() && !down_.empty())) {
    double t_next = kInf;
    if (next_arrival_ < n) t_next = stream_.jobs[next_arrival_].submit;
    for (const std::size_t r : running_) t_next = std::min(t_next, outcomes_[r].end);
    for (const Outage& o : down_) t_next = std::min(t_next, o.repair_end);
    if (fault_model_) {
      for (const double c : next_crash_) t_next = std::min(t_next, c);
    }

    integrate_to(t_next);
    now_ = t_next;

    // Completions first (resources free before new work is considered),
    // in (end, id) order for determinism.
    std::vector<std::size_t> done;
    for (const std::size_t r : running_) {
      if (outcomes_[r].end <= now_ + kEps) done.push_back(r);
    }
    std::sort(done.begin(), done.end(),
              [&](std::size_t a, std::size_t b) { return job(a).id < job(b).id; });
    for (const std::size_t r : done) {
      running_.erase(std::find(running_.begin(), running_.end(), r));
      free_nodes_ += job(r).nodes;
      result_.makespan = std::max(result_.makespan, outcomes_[r].end);
      if (metrics_) {
        metrics_->histogram("batch.wait_seconds").record(outcomes_[r].wait());
        metrics_->histogram("batch.bounded_slowdown")
            .record(outcomes_[r].bounded_slowdown(config_.tau));
      }
      audit_outcome(outcomes_[r]);
    }
    if (!done.empty()) {
      // Resync the free pool from the reservation ledger instead of adding
      // the freed bytes back incrementally: repeated += / -= of 1e12-scale
      // doubles accumulates drift across thousands of events, and a pool
      // that drifts a hair below a full-machine reservation deadlocks the
      // queue. One fresh summation has bounded, non-accumulating error.
      double reserved = 0.0;
      for (const std::size_t r : running_) reserved += alloc(r);
      free_bb_ = machine_.bb_bytes - reserved;
    }

    apply_outages();

    while (next_arrival_ < n && stream_.jobs[next_arrival_].submit <= now_ + kEps) {
      queue_.push_back(next_arrival_);
      ++next_arrival_;
    }

    schedule_pass();
    audit_ledger();
    sample();
  }

  if (auditor_ && !queue_.empty()) {
    auditor_->report(audit::Code::kJobLifecycle, audit::kPostRun, "queue",
                     std::to_string(queue_.size()) + " jobs never started");
  }

  result_.jobs = std::move(outcomes_);
  std::sort(result_.jobs.begin(), result_.jobs.end(),
            [](const JobOutcome& a, const JobOutcome& b) { return a.id < b.id; });
  if (timeline_) {
    for (const JobOutcome& out : result_.jobs) {
      trace::TaskSpan span;
      span.name = out.name;
      span.type = "job";
      span.host = 0;
      span.cores = out.nodes;
      span.t_ready = out.submit;
      span.t_start = out.start;
      span.t_reads_done = out.start;
      span.t_compute_done = out.end;
      span.t_end = out.end;
      timeline_->add_task(span);
    }
    result_.timeline =
        std::make_shared<const trace::Timeline>(timeline_->finish());
  }
  if (metrics_) result_.metrics = metrics_->to_json();
  if (auditor_) {
    result_.audit = auditor_->to_json();
    result_.audit_violations = auditor_->total();
  }
  return result_;
}

}  // namespace

FleetResult run_scheduler(const MachineSpec& machine, const JobStream& stream,
                          const SchedulerConfig& config) {
  if (machine.nodes < 1) throw ConfigError("machine: nodes must be >= 1");
  if (machine.bb_bytes < 0) throw ConfigError("machine: negative BB capacity");
  return FleetSim(machine, stream, config).run();
}

}  // namespace bbsim::batch
