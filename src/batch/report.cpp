#include "batch/report.hpp"

#include <algorithm>
#include <cmath>

#include "critpath/critpath.hpp"

namespace bbsim::batch {

namespace {

/// Exact q-quantile of a sorted sample (linear interpolation between
/// order statistics -- the same convention as numpy's default).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

FleetSummary summarize(const FleetResult& result, const MachineSpec& machine,
                       double tau) {
  FleetSummary s;
  s.jobs = result.jobs.size();
  s.makespan = result.makespan;
  s.backfilled_jobs = result.backfilled_jobs;
  s.killed_jobs = result.killed_jobs;
  s.node_utilization = result.node_utilization(machine);
  s.bb_utilization = result.bb_utilization(machine);
  s.bb_internal_fragmentation = result.bb_internal_fragmentation();
  s.bb_blocked_fraction = result.bb_blocked_fraction();
  if (result.makespan > 0) {
    s.mean_queue_depth = result.queue_job_seconds / result.makespan;
  }
  if (result.jobs.empty()) return s;

  std::vector<double> waits, bslds;
  waits.reserve(result.jobs.size());
  bslds.reserve(result.jobs.size());
  double wait_sum = 0.0, bsld_sum = 0.0, response_sum = 0.0;
  for (const JobOutcome& j : result.jobs) {
    const double w = j.wait();
    const double b = j.bounded_slowdown(tau);
    waits.push_back(w);
    bslds.push_back(b);
    wait_sum += w;
    bsld_sum += b;
    response_sum += j.response();
  }
  std::sort(waits.begin(), waits.end());
  std::sort(bslds.begin(), bslds.end());
  const double n = static_cast<double>(result.jobs.size());
  s.wait_mean = wait_sum / n;
  s.wait_p95 = quantile_sorted(waits, 0.95);
  s.wait_max = waits.back();
  s.bsld_mean = bsld_sum / n;
  s.bsld_p95 = quantile_sorted(bslds, 0.95);
  s.bsld_max = bslds.back();
  s.response_mean = response_sum / n;
  return s;
}

json::Value batch_critpath(const FleetResult& run) {
  critpath::Report report;
  report.makespan = run.makespan;
  const auto blame_of = [](critpath::Blame b) {
    return static_cast<std::size_t>(b);
  };
  if (!run.jobs.empty()) {
    // Sink: the job whose completion is the makespan (tie -> lowest id,
    // which is first in the id-ordered outcome vector).
    const JobOutcome* sink = &run.jobs.front();
    for (const JobOutcome& j : run.jobs) {
      if (j.end > sink->end) sink = &j;
    }
    // Backward blocking-chain walk. Runtimes are strictly positive, so
    // pred->end <= cur->submit < cur->end makes the chain's completion
    // times strictly decrease: the walk terminates.
    std::vector<critpath::Segment> rpath;  // reverse chronological
    const auto push = [&rpath](const std::string& job, const char* phase,
                               critpath::Blame blame, double start, double end) {
      if (end - start <= 0.0) return;
      rpath.push_back(critpath::Segment{job, phase, blame, start, end});
    };
    const JobOutcome* cur = sink;
    for (;;) {
      push(cur->name, "run", critpath::Blame::kCompute, cur->start, cur->end);
      const double wait = cur->start - cur->submit;
      const double bb = std::min(std::max(cur->bb_wait_seconds, 0.0), wait);
      double rework = 0.0;
      if (cur->resubmits > 0 && cur->nodes > 0) {
        // Wall time the failed attempts of this job burned inside its wait
        // window (lost_node_seconds is wall time x nodes).
        rework = std::min(cur->lost_node_seconds / cur->nodes, wait - bb);
      }
      push(cur->name, "bb_wait", critpath::Blame::kBbCapacityWait,
           cur->start - bb, cur->start);
      push(cur->name, "rework", critpath::Blame::kRecoveryRework,
           cur->start - bb - rework, cur->start - bb);
      push(cur->name, "wait", critpath::Blame::kQueueWait, cur->submit,
           cur->start - bb - rework);
      const double boundary = cur->submit;
      if (boundary <= 0.0) break;
      const JobOutcome* pred = nullptr;
      for (const JobOutcome& j : run.jobs) {
        if (&j == cur || j.end > boundary) continue;
        if (pred == nullptr || j.end > pred->end) pred = &j;
      }
      if (pred == nullptr) {
        // Nothing finished before this job arrived: the head of the chain
        // is the stream's own arrival serialization.
        push(cur->name, "arrival", critpath::Blame::kQueueWait, 0.0, boundary);
        break;
      }
      push(cur->name, "arrival", critpath::Blame::kQueueWait, pred->end,
           boundary);
      cur = pred;
    }
    report.path.assign(rpath.rbegin(), rpath.rend());
    report.set_blame_from_path();
  }
  // Subtractive what-ifs: removing a wait class from a chain shortens the
  // makespan by exactly that class's path seconds (lower bound: the rest
  // of the fleet is assumed not to re-pack).
  const double bb = report.blame[blame_of(critpath::Blame::kBbCapacityWait)];
  const double queue = report.blame[blame_of(critpath::Blame::kQueueWait)];
  const double rework = report.blame[blame_of(critpath::Blame::kRecoveryRework)];
  report.what_ifs.push_back(critpath::WhatIf{"baseline", {}, run.makespan});
  report.what_ifs.push_back(
      critpath::WhatIf{"infinite_bb_capacity", {}, run.makespan - bb});
  report.what_ifs.push_back(
      critpath::WhatIf{"no_queue_wait", {}, run.makespan - queue - bb});
  report.what_ifs.push_back(
      critpath::WhatIf{"no_faults", {}, run.makespan - rework});
  return report.to_json();
}

json::Value batch_report(const JobStream& stream, const MachineSpec& machine,
                         double tau, const std::vector<FleetResult>& runs,
                         bool include_jobs, bool include_critpath) {
  json::Object root;
  root.set("schema", "bbsim.batch.v1");

  json::Object stream_obj;
  stream_obj.set("name", stream.name);
  stream_obj.set("seed", static_cast<std::size_t>(stream.seed));
  stream_obj.set("jobs", stream.jobs.size());
  root.set("stream", json::Value(std::move(stream_obj)));

  json::Object machine_obj;
  machine_obj.set("nodes", machine.nodes);
  machine_obj.set("bb_capacity_bytes", machine.bb_bytes);
  machine_obj.set("bb_granule_bytes", machine.bb_granule);
  root.set("machine", json::Value(std::move(machine_obj)));
  root.set("tau", tau);

  json::Array runs_arr;
  for (const FleetResult& run : runs) {
    const FleetSummary s = summarize(run, machine, tau);
    json::Object r;
    r.set("policy", to_string(run.policy));
    r.set("makespan", run.makespan);

    json::Object sum;
    sum.set("jobs", s.jobs);
    json::Object wait;
    wait.set("mean", s.wait_mean);
    wait.set("p95", s.wait_p95);
    wait.set("max", s.wait_max);
    sum.set("wait_seconds", json::Value(std::move(wait)));
    json::Object bsld;
    bsld.set("mean", s.bsld_mean);
    bsld.set("p95", s.bsld_p95);
    bsld.set("max", s.bsld_max);
    sum.set("bounded_slowdown", json::Value(std::move(bsld)));
    sum.set("response_mean_seconds", s.response_mean);
    sum.set("node_utilization", s.node_utilization);
    sum.set("bb_utilization", s.bb_utilization);
    sum.set("bb_internal_fragmentation", s.bb_internal_fragmentation);
    sum.set("bb_blocked_fraction", s.bb_blocked_fraction);
    sum.set("mean_queue_depth", s.mean_queue_depth);
    sum.set("backfilled_jobs", s.backfilled_jobs);
    sum.set("killed_jobs", s.killed_jobs);
    if (run.faults_enabled) {
      // Present whenever the outage process was armed -- even all-zero --
      // so fault-sweep consumers need not special-case quiet runs.
      json::Object outages;
      outages.set("node_outages", run.node_outages);
      outages.set("resubmitted_jobs", run.resubmitted_jobs);
      outages.set("lost_node_seconds", run.lost_node_seconds);
      outages.set("down_node_seconds", run.down_node_seconds);
      sum.set("outages", json::Value(std::move(outages)));
    }
    r.set("summary", json::Value(std::move(sum)));

    if (include_jobs) {
      json::Array jobs;
      for (const JobOutcome& j : run.jobs) {
        json::Object o;
        o.set("id", j.id);
        o.set("name", j.name);
        o.set("submit", j.submit);
        o.set("nodes", j.nodes);
        o.set("bb_bytes", j.bb_bytes);
        o.set("bb_alloc", j.bb_alloc);
        o.set("start", j.start);
        o.set("end", j.end);
        o.set("wait", j.wait());
        o.set("bounded_slowdown", j.bounded_slowdown(tau));
        o.set("backfilled", j.backfilled);
        o.set("killed", j.killed);
        if (j.reserved_start >= 0) o.set("reserved_start", j.reserved_start);
        if (j.resubmits > 0) {
          o.set("resubmits", j.resubmits);
          o.set("lost_node_seconds", j.lost_node_seconds);
        }
        jobs.push_back(json::Value(std::move(o)));
      }
      r.set("jobs", json::Value(std::move(jobs)));
    }
    if (include_critpath) r.set("critpath", batch_critpath(run));
    if (!run.metrics.is_null()) r.set("metrics", run.metrics);
    if (!run.audit.is_null()) r.set("audit", run.audit);
    runs_arr.push_back(json::Value(std::move(r)));
  }
  root.set("runs", json::Value(std::move(runs_arr)));

  if (runs.size() >= 2) {
    json::Object comparison;
    json::Object means;
    std::string best;
    double best_mean = 0.0;
    for (const FleetResult& run : runs) {
      const FleetSummary s = summarize(run, machine, tau);
      means.set(to_string(run.policy), s.bsld_mean);
      if (best.empty() || s.bsld_mean < best_mean) {
        best = to_string(run.policy);
        best_mean = s.bsld_mean;
      }
    }
    comparison.set("mean_bounded_slowdown", json::Value(std::move(means)));
    comparison.set("best_policy", best);
    root.set("comparison", json::Value(std::move(comparison)));
  }
  return json::Value(std::move(root));
}

}  // namespace bbsim::batch
