/// \file
/// bbsim::batch -- the two-resource batch scheduler: FCFS, EASY
/// backfilling, conservative backfilling and a plan-based lookahead
/// policy, all with burst-buffer capacity as a first-class second
/// dimension. A job starts only when BOTH its node count and its BB
/// reservation fit -- the central constraint of Kopanski & Rzadca's
/// shared-burst-buffer scheduling model (arXiv 2109.00082).
///
/// Policy semantics (docs/batch.md has the worked examples):
///
///   Fcfs          strict arrival order; the queue head blocks everyone
///                 behind it until both of its resources fit.
///   Easy          the head gets a reservation at the *shadow time* (the
///                 earliest instant running-job estimates free both its
///                 nodes and its BB). A later job may backfill now iff it
///                 fits now and either (a) it ends -- by its estimate --
///                 before the shadow, or (b) it needs no resource the head
///                 reservation will: it fits inside min(free now, free at
///                 shadow minus the head's claim) in both dimensions.
///   Conservative  every queued job holds a profile reservation, assigned
///                 in arrival order; a job starts when its reserved start
///                 is now. No job is ever delayed past the promise it was
///                 given when it entered the queue (estimates exact).
///   PlanBased     lookahead: candidate queue orderings (arrival, shortest
///                 job, smallest area, smallest BB) are each placed onto
///                 the availability profile; the ordering with the lowest
///                 total estimated bounded slowdown wins and is executed
///                 conservative-style. The paper-family result is that
///                 planning beats greedy backfilling under BB contention.
///
/// Kill-at-estimate: the executed runtime is min(actual, estimate), so
/// every reservation computed from estimates is sound -- backfilled jobs
/// can never push a reservation back. JobOutcome::reserved_start records
/// the first promise each job received; with exact estimates,
/// start <= reserved_start is an invariant (tests/batch_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "batch/job.hpp"
#include "resil/fault.hpp"
#include "stats/metrics.hpp"
#include "trace/timeline.hpp"

namespace bbsim::batch {

/// The scheduling policies the fleet simulator implements.
enum class Policy {
  Fcfs,          ///< first-come first-served, no skipping
  Easy,          ///< EASY backfilling (one shadow reservation for the head)
  Conservative,  ///< conservative backfilling (a reservation per queued job)
  PlanBased,     ///< ordering lookahead over the reservation profile
};

/// Stable identifier ("fcfs", "easy", "conservative", "plan"), part of the
/// bbsim.batch.v1 schema.
const char* to_string(Policy policy);
/// Inverse of to_string; throws util::ConfigError on unknown names.
Policy policy_from_string(const std::string& text);
/// Every policy, in declaration order (CLI "--policy all" iterates this).
inline constexpr Policy kAllPolicies[] = {Policy::Fcfs, Policy::Easy,
                                          Policy::Conservative, Policy::PlanBased};

/// The machine the fleet shares: homogeneous nodes plus one burst-buffer
/// pool, reserved wholesale per job (DataWarp-style).
struct MachineSpec {
  int nodes = 32;
  double bb_bytes = 6.4e12;
  /// Allocation granule of the BB pool (DataWarp allocates in fixed-size
  /// chunks; Cori's was ~20 GiB). Requests round up to a whole number of
  /// granules -- the gap is *internal fragmentation*, reported per run.
  /// 0 disables rounding.
  double bb_granule = 0.0;

  /// Bytes actually allocated for a request of `bytes` (granule rounding).
  double bb_alloc(double bytes) const;
};

/// Scheduler run options.
struct SchedulerConfig {
  Policy policy = Policy::Fcfs;
  /// Bounded-slowdown runtime floor in seconds (the standard tau = 10 s):
  /// BSLD = max(1, (wait + runtime) / max(runtime, tau)). The floor keeps
  /// tiny jobs from dominating the mean.
  double tau = 10.0;
  /// Collect fleet metrics (queue depth, free nodes, BB occupancy series;
  /// wait / slowdown histograms) into FleetResult::metrics.
  bool collect_metrics = false;
  /// Record a per-job timeline (wait + run spans on machine lanes, free-node
  /// and BB-occupancy counter tracks) into FleetResult::timeline.
  bool collect_timeline = false;
  /// Audit the run: the per-job reservation ledger is re-derived at every
  /// event and checked against the scheduler's own accounting
  /// (reservation_imbalance), BB occupancy against capacity
  /// (capacity_exceeded), and each outcome's times for legality
  /// (job_lifecycle). Violations land in FleetResult::audit
  /// (schema bbsim.audit.v1), never thrown.
  bool audit = false;
  /// Node-outage process (only the node_* / seed / horizon keys of the spec
  /// are meaningful at fleet scale). Each machine node carries its own
  /// seeded crash stream; an outage takes one node down for node_repair
  /// seconds. If every node is busy when the crash lands, the most recently
  /// started running job is killed and resubmitted to the queue tail
  /// (kill-and-resubmit, the standard batch-system response to node loss).
  /// Disabled (the default) leaves every FleetResult bitwise-identical to a
  /// build without this feature.
  resil::FaultSpec faults;
};

/// What happened to one job.
struct JobOutcome {
  std::size_t id = 0;
  std::string name;
  double submit = 0.0;
  int nodes = 1;
  double bb_bytes = 0.0;     ///< requested
  double bb_alloc = 0.0;     ///< allocated (granule-rounded)
  double estimate = 0.0;
  double start = 0.0;
  double end = 0.0;
  double runtime = 0.0;      ///< executed: min(actual, estimate)
  bool killed = false;       ///< actual exceeded the estimate
  bool backfilled = false;   ///< started ahead of an earlier-arrived job
  /// First start-time promise this job received while queued (-1 = no
  /// promise was ever made: the job started without blocking, or the
  /// policy makes none). Easy promises the head its shadow time;
  /// Conservative promises every queued job its reservation. With exact
  /// estimates, start <= reserved_start is an invariant for both.
  /// PlanBased leaves this at -1 (its tentative starts are re-negotiated).
  double reserved_start = -1.0;
  /// Times this job was killed by a node outage and re-queued. start/end/
  /// runtime describe the final (successful) attempt; submit stays at the
  /// original arrival, so wait() and slowdown absorb the lost attempts.
  int resubmits = 0;
  /// Node-seconds of work this job lost to outage kills across all failed
  /// attempts: sum over kills of (kill_time - attempt_start) * nodes.
  double lost_node_seconds = 0.0;
  /// Seconds this job spent as the queue head fitting on nodes but blocked
  /// by the BB dimension alone -- its share of bb_blocked_seconds. Feeds
  /// the bb_capacity_wait blame class of the batch critical-path report
  /// and the storage.bb.alloc_wait_seconds metrics series.
  double bb_wait_seconds = 0.0;

  double wait() const { return start - submit; }
  double response() const { return end - submit; }
  double bounded_slowdown(double tau) const;
};

/// The finished fleet simulation of one policy over one stream.
struct FleetResult {
  Policy policy = Policy::Fcfs;
  double makespan = 0.0;  ///< last job completion
  std::vector<JobOutcome> jobs;  ///< in job-id order

  // Time-weighted accounting over [0, makespan].
  double node_seconds = 0.0;      ///< sum over time of busy nodes
  double bb_byte_seconds = 0.0;   ///< sum over time of allocated BB bytes
  double bb_req_byte_seconds = 0.0;  ///< same, but requested (un-rounded)
  /// Seconds during which the queue head fit on nodes but was blocked by
  /// the BB dimension alone -- the direct price of BB contention.
  double bb_blocked_seconds = 0.0;
  double queue_job_seconds = 0.0;  ///< integral of queue depth over time
  std::size_t backfilled_jobs = 0;
  std::size_t killed_jobs = 0;

  // Node-outage accounting (all zero unless SchedulerConfig::faults enables
  // the outage process).
  bool faults_enabled = false;       ///< the outage process was armed
  std::size_t node_outages = 0;      ///< crash events that took a node down
  std::size_t resubmitted_jobs = 0;  ///< outage kills (job re-queue events)
  double lost_node_seconds = 0.0;    ///< work destroyed by outage kills
  double down_node_seconds = 0.0;    ///< integral of down nodes over time

  /// Metrics snapshot (bbsim.metrics.v1); null unless collect_metrics.
  json::Value metrics;
  /// Audit report (bbsim.audit.v1); null unless SchedulerConfig::audit.
  json::Value audit;
  std::size_t audit_violations = 0;
  /// Sealed timeline (wait spans on); nullptr unless collect_timeline.
  std::shared_ptr<const trace::Timeline> timeline;

  double node_utilization(const MachineSpec& machine) const;
  double bb_utilization(const MachineSpec& machine) const;
  /// Time-weighted internal fragmentation: (allocated - requested) /
  /// allocated byte-seconds. 0 when no granule rounding happened.
  double bb_internal_fragmentation() const;
  double bb_blocked_fraction() const;
};

/// Run one policy over one stream on one machine. The stream must be
/// validated (validate_stream) and every job must carry a positive
/// walltime_actual (resolve_payloads first when payloads are in play).
/// Deterministic: same inputs, same FleetResult, bit for bit.
FleetResult run_scheduler(const MachineSpec& machine, const JobStream& stream,
                          const SchedulerConfig& config);

}  // namespace bbsim::batch
