/// \file
/// bbsim::batch -- synthetic arrival-stream generator.
///
/// Builds job streams with the statistical shape of production HPC
/// workloads (Feitelson's workload-archive regularities, the Cori traces
/// Kopanski & Rzadca replay): Poisson or bursty Weibull interarrivals,
/// log-normal runtimes, log2-heavy node counts (many small jobs, few big
/// ones), user walltime estimates that overshoot the actual runtime by a
/// uniform factor, and a burst-buffer demand mix where most jobs ask for
/// little or nothing and a "hog" minority reserves a large slice -- the
/// contention pattern that separates one scheduling policy from another.
///
/// The generator is load-targeted: per-job sizes are drawn first, then the
/// mean interarrival gap is set so the offered load (node-seconds per
/// machine-node-second) matches `load`. Deterministic for a given
/// (config, seed): streams regenerate bit-identically.
#pragma once

#include "batch/job.hpp"
#include "util/rng.hpp"

namespace bbsim::batch {

/// Interarrival-gap process.
enum class ArrivalProcess {
  Poisson,  ///< exponential gaps (memoryless)
  Weibull,  ///< Weibull gaps; shape < 1 gives bursty clumped arrivals
};

const char* to_string(ArrivalProcess process);
ArrivalProcess arrival_process_from_string(const std::string& text);

/// Knobs of the synthetic stream. Defaults model a small Cori-like
/// partition under heavy BB contention.
struct StreamConfig {
  std::string name = "synthetic";
  std::size_t job_count = 500;

  // The machine the stream targets (sizes are clamped to fit it).
  int machine_nodes = 32;
  double machine_bb_bytes = 6.4e12;  ///< one Cori DataWarp node

  /// Offered load: sum(nodes x actual runtime) over the arrival horizon,
  /// as a fraction of machine capacity. > 1 overloads the machine.
  double load = 0.85;
  ArrivalProcess arrivals = ArrivalProcess::Poisson;
  double weibull_shape = 0.6;  ///< gap shape when arrivals == Weibull

  // Runtime distribution (seconds): log-normal, truncated to the range.
  double runtime_mean = 600.0;
  double runtime_sigma = 1.2;
  double runtime_min = 30.0;
  double runtime_max = 14400.0;
  /// Estimates overshoot: estimate = actual x uniform[1, estimate_factor].
  /// 1.0 gives exact estimates (the property-test regime).
  double estimate_factor = 3.0;

  /// Node counts: 2^uniform_int[0, log2(max_job_nodes)] -- log2-heavy.
  int max_job_nodes = 16;

  // Burst-buffer demand mix.
  double bb_none_fraction = 0.3;  ///< jobs with no BB reservation at all
  double bb_mean_bytes = 400e9;   ///< log-normal mean of the modest majority
  double bb_sigma = 1.0;
  double bb_hog_fraction = 0.1;   ///< jobs asking for a large slice...
  double bb_hog_share = 0.5;      ///< ...this fraction of machine BB, mean

  std::uint64_t seed = 42;
};

/// Generate the stream. Throws util::ConfigError on nonsensical knobs
/// (zero jobs, non-positive load/machine). The result is validated against
/// the configured machine and sorted by (submit, id).
JobStream make_stream(const StreamConfig& config);

}  // namespace bbsim::batch
