#include "sweep/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace bbsim::sweep {

int effective_jobs(int requested) {
  if (requested < 0) throw util::ConfigError("jobs must be >= 0");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {
  (void)effective_jobs(options_.jobs);  // validate early
}

namespace {

/// Shared between the workers of one run() call. The work queue is just an
/// atomic index into the spec vector; outcomes are written by index, which
/// is what makes result order independent of completion order.
struct SweepState {
  const std::vector<RunSpec>* specs = nullptr;
  std::vector<RunOutcome>* outcomes = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex progress_mutex;
  std::size_t finished = 0;
};

void execute_one(const RunSpec& spec, RunOutcome& out) {
  out.name = spec.name;
  // Host wall time feeds RunOutcome::wall_seconds, which reaches a report
  // only under the opt-in include_timings flag (sweep/report.hpp) -- the
  // deterministic report surface never contains it.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(bbsim-nondeterminism-source)
  try {
    if (!spec.body) throw util::ConfigError("run '" + spec.name + "' has no body");
    out.result = spec.body();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)  // NOLINT(bbsim-nondeterminism-source)
                         .count();
}

void worker_loop(SweepState& state, const SweepOptions& options) {
  const std::size_t total = state.specs->size();
  for (;;) {
    const std::size_t i = state.next.fetch_add(1);
    if (i >= total) return;
    RunOutcome& out = (*state.outcomes)[i];
    if (options.cancel_on_error && state.cancelled.load()) {
      out.name = (*state.specs)[i].name;
      out.skipped = true;
    } else {
      execute_one((*state.specs)[i], out);
      if (!out.ok) state.cancelled.store(true);
    }
    std::lock_guard<std::mutex> lock(state.progress_mutex);
    ++state.finished;
    if (options.on_progress) {
      Progress p;
      p.finished = state.finished;
      p.total = total;
      p.name = out.name;
      p.ok = out.ok;
      options.on_progress(p);
    }
  }
}

}  // namespace

std::vector<RunOutcome> SweepRunner::run(const std::vector<RunSpec>& specs) const {
  std::vector<RunOutcome> outcomes(specs.size());
  if (specs.empty()) return outcomes;

  SweepState state;
  state.specs = &specs;
  state.outcomes = &outcomes;

  const int jobs = effective_jobs(options_.jobs);
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), specs.size());
  if (workers <= 1) {
    worker_loop(state, options_);
    return outcomes;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&state, this] { worker_loop(state, options_); });
  }
  for (std::thread& t : pool) t.join();
  return outcomes;
}

}  // namespace bbsim::sweep
