/// \file
/// bbsim::sweep -- aggregation of sweep outcomes into one JSON report.
///
/// A sweep produces one exec::Result (or one failure) per configuration;
/// the report flattens them into a single deterministic JSON document
/// (schema "bbsim.sweep.v1") suitable for offline analysis of a whole
/// campaign -- the artefact a paper figure (e.g. Figure 10's measured
/// series) is plotted from.
///
/// Determinism: runs appear in spec order and every field is derived from
/// simulated quantities, so serial and parallel executions of the same
/// spec serialise byte-identically. Host wall times are nondeterministic
/// by nature and are therefore only included when `include_timings` is
/// explicitly requested.
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"
#include "sweep/runner.hpp"

namespace bbsim::sweep {

/// Build the sweep report:
///   { "schema": "bbsim.sweep.v1",
///     "name": ...,
///     "runs": [ {"name", "ok", ("error"|"skipped")?, "makespan",
///                "stage_in", "workflow_span", "stage_out", "tasks",
///                "demoted_writes", "evicted_files", "skipped_stage_files",
///                "storage": [{"service","bytes_served","busy_time"}],
///                "metrics"?, "wall_seconds"?} ],
///     "summary": {"total","ok","failed","skipped",
///                 "makespan": {"min","mean","max"}?} }
/// `metrics` is embedded per run when the run collected metrics.
json::Value sweep_report(const std::string& sweep_name,
                         const std::vector<RunOutcome>& outcomes,
                         bool include_timings = false);

}  // namespace bbsim::sweep
