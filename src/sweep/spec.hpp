/// \file
/// bbsim::sweep -- JSON sweep specifications and their expansion.
///
/// A sweep spec describes a multi-configuration study (the shape of the
/// paper's Figures 10-11 validation and 13-14 case-study campaigns) as a
/// base configuration plus named axes. Expansion takes the cross product
/// of the axes and yields one flat settings object per run, in a
/// deterministic order (axes vary in declaration order, the last axis
/// fastest; repetitions fastest of all). The keys are interpreted by the
/// consumer -- bbsim_sweep maps them onto bbsim_run command-line flags
/// (see docs/sweeps.md for the schema).
///
/// Example:
///   {
///     "name": "swarp-validation",
///     "base": { "workflow": "swarp", "cores": 32 },
///     "axes": { "testbed": ["cori-private", "summit"],
///               "policy": ["fraction:0", "fraction:0.5", "fraction:1"] },
///     "repetitions": 3
///   }
/// expands to 2 x 3 x 3 = 18 runs named e.g.
///   "testbed=cori-private,policy=fraction:0.5#rep1".
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"

namespace bbsim::sweep {

/// One axis of the sweep: a setting key and the values it takes.
struct Axis {
  std::string key;
  json::Array values;
};

/// A parsed (but not yet expanded) sweep specification.
struct SweepSpec {
  std::string name;        ///< study label (report header)
  json::Object base;       ///< settings shared by every run
  std::vector<Axis> axes;  ///< cross-product dimensions, declaration order
  int repetitions = 1;     ///< each point duplicated with "#repK" suffixes
};

/// One expanded run: its deterministic name, its flat settings (base
/// overridden by this point's axis values), and its repetition index.
struct ExpandedRun {
  std::string name;
  json::Object settings;
  int repetition = 0;
};

/// Parse a sweep spec document. Accepted keys: "name" (string), "base"
/// (object), "axes" (object of arrays), "repetitions" (int >= 1). Throws
/// util::ParseError / util::ConfigError on malformed input.
SweepSpec parse_sweep_spec(const json::Value& doc);

/// Parse a sweep spec from a file.
SweepSpec load_sweep_spec(const std::string& path);

/// Expand the cross product. Deterministic: same spec -> same runs in the
/// same order, independent of how they will be scheduled.
std::vector<ExpandedRun> expand(const SweepSpec& spec);

/// Render a settings value the way run names and CLI flags need it
/// (numbers without a trailing ".0", strings verbatim, bools as 1/0).
std::string settings_value_to_string(const json::Value& value);

}  // namespace bbsim::sweep
